// Package repro is the public façade of the reproduction of "Lightweight
// Snapshots and System-level Backtracking" (Bugnion, Chipounov, Candea —
// HotOS 2013): lightweight immutable execution snapshots integrated with a
// simulated virtual-memory subsystem, plus sys_guess/sys_guess_fail/
// sys_guess_strategy system-level backtracking for both native SVX64 guests
// and hosted step machines.
//
// The façade re-exports the assembled system; the implementation lives in
// internal/ packages:
//
//	mem        persistent CoW page tables, address spaces (the VM subsystem)
//	snapshot   partial candidates: snapshot trees, capture/restore
//	vm, guest  the SVX64 CPU, assembler, and loader
//	core       the backtracking engine and syscall interposition
//	search     DFS/BFS/A*/SM-A*/Random/External strategies
//	solver     incremental CDCL SAT (the Z3 stand-in)
//	symexec    the S2E-style multi-path symbolic executor
//	wam        the Prolog comparator
//	checkpoint full-copy/incremental checkpoint and eager-fork baselines
//	service    the §3.2 multi-path solver service: a sharded, LRU-evicting
//	           reference table over the snapshot tree, served concurrently
//	           by cmd/solversvc (stdin/stdout or TCP with -listen)
//	bench      the E1–E13 experiment harness
//
// # Quickstart
//
//	alloc := repro.NewFrameAllocator(0)
//	root, _ := repro.NewHostedContext(alloc, 4096)
//	eng := repro.NewEngine(repro.NewHostedMachine(step), repro.WithWorkers(4))
//	res, _ := eng.Run(ctx, root)
//
// where step is a repro.StepFunc calling env.Guess / env.Fail / env.Exit
// and ctx is a context.Context: cancelling it (or a repro.WithTimeout /
// repro.WithDeadline option) stops the search within one extension step,
// releases every retained snapshot, and returns the partial Result with
// ctx.Err().
//
// Solutions stream as they surface — either push-based through
// repro.WithOnSolution / repro.WithObserver, or pull-based:
//
//	for sol, err := range eng.Solutions(ctx, root) {
//	    if err != nil { ... }
//	    use(sol)
//	    break // stops workers and releases all snapshots
//	}
//
// See examples/ for complete programs, DESIGN.md for the system inventory,
// and EXPERIMENTS.md for the paper-vs-measured record.
package repro

import (
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/guest"
	"repro/internal/mem"
	"repro/internal/search"
	"repro/internal/snapshot"
	"repro/internal/vm"
)

// Re-exported core types: the engine is the system-level backtracking
// scheduler; Machine abstracts native vs hosted guest execution.
type (
	// Engine evaluates candidate extension steps under a search strategy.
	Engine = core.Engine
	// Config tunes an Engine (strategy, workers, limits).
	Config = core.Config
	// Result reports a completed search.
	Result = core.Result
	// Solution is one surfaced answer (exit or print-then-fail emission).
	Solution = core.Solution
	// Machine runs candidate extension steps.
	Machine = core.Machine
	// StepFunc is a hosted candidate-extension step.
	StepFunc = core.StepFunc
	// Env is the system-call surface hosted steps use.
	Env = core.Env
	// Stats aggregates engine-level counters for one run.
	Stats = core.Stats
	// Decision is returned by solution hooks (Continue or Stop).
	Decision = core.Decision
	// Observer receives engine telemetry (OnGuess/OnFail/OnSolution/
	// OnSnapshot/OnStepStats) from the hot loop.
	Observer = core.Observer
	// FuncObserver adapts optional callbacks to Observer.
	FuncObserver = core.FuncObserver
	// Strategy is a search-scheduling policy (see DFS/BFS/AStar/Random).
	Strategy = core.Strategy
	// Context is the mutable execution state of one candidate.
	Context = snapshot.Context
	// State is a partial candidate: a lightweight immutable snapshot.
	State = snapshot.State
	// Tree tracks snapshot identity and liveness.
	Tree = snapshot.Tree
	// Image is a linked SVX64 program.
	Image = guest.Image
	// Registers is the SVX64 register file.
	Registers = vm.Registers
	// FrameAllocator bounds and recycles physical frames.
	FrameAllocator = mem.FrameAllocator
)

// HostedHeapBase is where NewHostedContext maps the hosted state heap.
const HostedHeapBase = core.HostedHeapBase

// Solution-hook decisions.
const (
	// Continue keeps searching after a streamed solution.
	Continue = core.Continue
	// Stop halts the search, draining queues and releasing snapshots.
	Stop = core.Stop
)

// ErrEngineReused is returned by Run when an Engine is asked to drive a
// second search; construct a fresh Engine per run.
var ErrEngineReused = core.ErrEngineReused

// NewEngine returns a backtracking engine running guests on m, tuned by
// functional options (see With*). With no options it behaves like the
// zero Config: DFS, one worker, explore everything.
func NewEngine(m Machine, opts ...Option) *Engine {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	return core.New(m, cfg)
}

// DFS returns a depth-first strategy (the paper's default policy).
func DFS() Strategy { return search.NewDFS[*snapshot.State]() }

// BFS returns a breadth-first strategy.
func BFS() Strategy { return search.NewBFS[*snapshot.State]() }

// AStar returns a best-first strategy over depth + guest hints.
func AStar() Strategy { return search.NewAStar[*snapshot.State]() }

// Random returns a reproducible randomized strategy.
func Random(seed uint64) Strategy { return search.NewRandom[*snapshot.State](seed) }

// NewHostedMachine runs hosted step machines (Go extension steps whose
// cross-step state lives in simulated memory).
func NewHostedMachine(step StepFunc) Machine { return core.NewHostedMachine(step) }

// NewVMMachine runs native SVX64 guests with fuel instructions per
// extension step (0 = unlimited).
func NewVMMachine(fuel int64) Machine { return core.NewVMMachine(fuel) }

// NewFrameAllocator returns a frame allocator bounded to limit live frames
// (0 = unbounded).
func NewFrameAllocator(limit int64) *FrameAllocator { return mem.NewFrameAllocator(limit) }

// NewHostedContext builds a root context for hosted guests with a zeroed
// read-write heap of heapBytes at HostedHeapBase.
func NewHostedContext(alloc *FrameAllocator, heapBytes uint64) (*Context, error) {
	return core.NewHostedContext(alloc, heapBytes)
}

// Assemble builds an SVX64 image from assembly text (see internal/guest
// for the dialect).
func Assemble(src string) (*Image, error) { return guest.AssembleImage(src) }

// LoadImage maps img into a fresh address space and returns the root
// context for NewEngine(...).Run.
func LoadImage(img *Image, alloc *FrameAllocator) (*Context, error) {
	as, regs, err := guest.Load(img, alloc, guest.LoadOptions{})
	if err != nil {
		return nil, err
	}
	return &Context{Mem: as, FS: fs.New(), Regs: regs}, nil
}
