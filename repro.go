// Package repro is the public façade of the reproduction of "Lightweight
// Snapshots and System-level Backtracking" (Bugnion, Chipounov, Candea —
// HotOS 2013): lightweight immutable execution snapshots integrated with a
// simulated virtual-memory subsystem, plus sys_guess/sys_guess_fail/
// sys_guess_strategy system-level backtracking for both native SVX64 guests
// and hosted step machines.
//
// The façade re-exports the assembled system; the implementation lives in
// internal/ packages:
//
//	mem        persistent CoW page tables, address spaces (the VM subsystem)
//	snapshot   partial candidates: snapshot trees, capture/restore
//	vm, guest  the SVX64 CPU, assembler, and loader
//	core       the backtracking engine and syscall interposition
//	search     DFS/BFS/A*/SM-A*/Random/External strategies
//	solver     incremental CDCL SAT (the Z3 stand-in)
//	symexec    the S2E-style multi-path symbolic executor
//	wam        the Prolog comparator
//	checkpoint full-copy/incremental checkpoint and eager-fork baselines
//	bench      the E1–E10 experiment harness
//
// # Quickstart
//
//	alloc := repro.NewFrameAllocator(0)
//	ctx, _ := repro.NewHostedContext(alloc, 4096)
//	eng := repro.NewEngine(repro.NewHostedMachine(step), repro.Config{})
//	res, _ := eng.Run(ctx)
//
// where step is a repro.StepFunc calling env.Guess / env.Fail / env.Exit.
// See examples/ for complete programs, DESIGN.md for the system inventory,
// and EXPERIMENTS.md for the paper-vs-measured record.
package repro

import (
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/guest"
	"repro/internal/mem"
	"repro/internal/snapshot"
	"repro/internal/vm"
)

// Re-exported core types: the engine is the system-level backtracking
// scheduler; Machine abstracts native vs hosted guest execution.
type (
	// Engine evaluates candidate extension steps under a search strategy.
	Engine = core.Engine
	// Config tunes an Engine (strategy, workers, limits).
	Config = core.Config
	// Result reports a completed search.
	Result = core.Result
	// Solution is one surfaced answer (exit or print-then-fail emission).
	Solution = core.Solution
	// Machine runs candidate extension steps.
	Machine = core.Machine
	// StepFunc is a hosted candidate-extension step.
	StepFunc = core.StepFunc
	// Env is the system-call surface hosted steps use.
	Env = core.Env
	// Context is the mutable execution state of one candidate.
	Context = snapshot.Context
	// State is a partial candidate: a lightweight immutable snapshot.
	State = snapshot.State
	// Tree tracks snapshot identity and liveness.
	Tree = snapshot.Tree
	// Image is a linked SVX64 program.
	Image = guest.Image
	// Registers is the SVX64 register file.
	Registers = vm.Registers
	// FrameAllocator bounds and recycles physical frames.
	FrameAllocator = mem.FrameAllocator
)

// HostedHeapBase is where NewHostedContext maps the hosted state heap.
const HostedHeapBase = core.HostedHeapBase

// NewEngine returns a backtracking engine running guests on m.
func NewEngine(m Machine, cfg Config) *Engine { return core.New(m, cfg) }

// NewHostedMachine runs hosted step machines (Go extension steps whose
// cross-step state lives in simulated memory).
func NewHostedMachine(step StepFunc) Machine { return core.NewHostedMachine(step) }

// NewVMMachine runs native SVX64 guests with fuel instructions per
// extension step (0 = unlimited).
func NewVMMachine(fuel int64) Machine { return core.NewVMMachine(fuel) }

// NewFrameAllocator returns a frame allocator bounded to limit live frames
// (0 = unbounded).
func NewFrameAllocator(limit int64) *FrameAllocator { return mem.NewFrameAllocator(limit) }

// NewHostedContext builds a root context for hosted guests with a zeroed
// read-write heap of heapBytes at HostedHeapBase.
func NewHostedContext(alloc *FrameAllocator, heapBytes uint64) (*Context, error) {
	return core.NewHostedContext(alloc, heapBytes)
}

// Assemble builds an SVX64 image from assembly text (see internal/guest
// for the dialect).
func Assemble(src string) (*Image, error) { return guest.AssembleImage(src) }

// LoadImage maps img into a fresh address space and returns the root
// context for NewEngine(...).Run.
func LoadImage(img *Image, alloc *FrameAllocator) (*Context, error) {
	as, regs, err := guest.Load(img, alloc, guest.LoadOptions{})
	if err != nil {
		return nil, err
	}
	return &Context{Mem: as, FS: fs.New(), Regs: regs}, nil
}
