// Command loadgen measures solversvc's binary protocol under load: a
// windowed generator drives a configurable matrix of connections ×
// pipeline depth with a weighted branch/touch/release mix, and reports
// requests/sec with p50/p99/p999 latency per matrix point.
//
// With -addr it targets a running `solversvc -listen` server; without,
// it spins up an in-process loopback server (the same wire.Serve and
// dispatch path the real server uses) so a single command demonstrates
// the pipelining win:
//
//	loadgen -conns 1,2 -depth 1,8 -requests 2000
//
// Depth 1 is strict request/reply; deeper windows keep the connection's
// solve pipeline full, which is the protocol's reason to exist.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/loadgen"
	"repro/internal/service"
	"repro/internal/service/wire"
	"repro/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	addr := flag.String("addr", "", "target server (host:port); empty = in-process loopback server")
	connsFlag := flag.String("conns", "1,2", "comma list of connection counts to sweep")
	depthFlag := flag.String("depth", "1,8", "comma list of pipeline depths to sweep (1 = serial request/reply)")
	requests := flag.Int("requests", 2000, "requests per matrix point")
	mixFlag := flag.String("mix", loadgen.DefaultMix.String(), "op weights")
	seed := flag.Int64("seed", 1, "generator seed")
	knownCap := flag.Int("known-cap", 32, "per-connection cap on parked references")
	vars := flag.Int("vars", 16, "variable universe for generated clauses")
	writeTimeout := flag.Duration("write-timeout", 5*time.Second, "in-process server per-reply write deadline (0 disables)")
	flag.Parse()

	mix, err := loadgen.ParseMix(*mixFlag)
	if err != nil {
		fatal(err)
	}
	conns, err := parseList(*connsFlag)
	if err != nil {
		fatal(fmt.Errorf("-conns: %w", err))
	}
	depths, err := parseList(*depthFlag)
	if err != nil {
		fatal(fmt.Errorf("-depth: %w", err))
	}

	target := *addr
	var svc *service.Service
	if target == "" {
		svc = service.New()
		defer svc.Close()
		var shutdown func()
		target, shutdown, err = loadgen.ServeInProc(ctx, svc, wire.ServeOptions{WriteTimeout: *writeTimeout})
		if err != nil {
			fatal(err)
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "loadgen: in-process server on %s\n", target)
	}

	tbl := &trace.Table{
		Title:   "loadgen: binary protocol throughput and tail latency",
		Note:    fmt.Sprintf("mix %s, %d requests per point, seed %d", mix, *requests, *seed),
		Columns: []string{"conns", "depth", "requests", "errors", "req/s", "p50", "p99", "p999"},
	}
	for _, c := range conns {
		for _, d := range depths {
			res, err := loadgen.Run(ctx, loadgen.Config{
				Addr:     target,
				Conns:    c,
				Depth:    d,
				Requests: *requests,
				Mix:      mix,
				Seed:     *seed,
				KnownCap: *knownCap,
				Vars:     *vars,
			})
			if err != nil {
				fatal(fmt.Errorf("conns=%d depth=%d: %w", c, d, err))
			}
			tbl.AddRow(c, d, res.Requests, res.Errors,
				fmt.Sprintf("%.0f", res.RPS),
				trace.FormatDuration(res.P50),
				trace.FormatDuration(res.P99),
				trace.FormatDuration(res.P999))
		}
	}
	fmt.Print(tbl.Render())

	if svc != nil {
		if live := svc.LiveSnapshots(); live != 1 {
			fatal(fmt.Errorf("in-process server holds %d live snapshots after the sweep; want 1 (root)", live))
		}
	}
}

func parseList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("%q: want a positive integer", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
