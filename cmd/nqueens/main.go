// Command nqueens runs the paper's Figure 1 workload on every
// implementation in the reproduction and reports solutions and timings.
//
// Usage:
//
//	nqueens -n 8                  all implementations, count solutions
//	nqueens -n 8 -impl native -v  native SVX64 guest, print the boards
//	nqueens -n 8 -first           stop at the first solution
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/guest"
	"repro/internal/mem"
	"repro/internal/queens"
	"repro/internal/snapshot"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// First signal: the engine backends stop gracefully with partial
	// counts. Restoring default handling lets a second signal (or a first
	// one during the ctx-unaware hand/prolog arms) kill immediately.
	go func() { <-ctx.Done(); stop() }()
	n := flag.Int("n", 8, "board size")
	impl := flag.String("impl", "all", "hand | hosted | native | prolog | all")
	first := flag.Bool("first", false, "stop at the first solution")
	verbose := flag.Bool("v", false, "print solutions")
	workers := flag.Int("workers", 1, "engine workers (hosted backend)")
	flag.Parse()

	run := func(name string, fn func() (int, string, error)) {
		if *impl != "all" && *impl != name {
			return
		}
		start := time.Now()
		count, out, err := fn()
		dur := time.Since(start)
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "%s: interrupted after %v (%d solutions so far)\n",
				name, dur.Round(time.Microsecond), count)
			os.Exit(130)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("%-8s n=%d  solutions=%-6d %v\n", name, *n, count, dur.Round(time.Microsecond))
		if *verbose && out != "" {
			fmt.Print(out)
		}
	}

	maxSol := 0
	if *first {
		maxSol = 1
	}

	// partial counts the solutions found before an interrupted run stopped.
	partial := func(res *core.Result) int {
		if res == nil {
			return 0
		}
		return len(res.Solutions)
	}

	run("hand", func() (int, string, error) {
		var sb strings.Builder
		count := queens.HandCoded(*n, func(cols []int) {
			if *verbose {
				fmt.Fprintf(&sb, "%v\n", cols)
			}
		})
		return count, sb.String(), nil
	})

	run("hosted", func() (int, string, error) {
		alloc := mem.NewFrameAllocator(0)
		hctx, err := queens.NewHostedContext(alloc, *n)
		if err != nil {
			return 0, "", err
		}
		eng := core.New(core.NewHostedMachine(queens.HostedStep(*first)),
			core.Config{MaxSolutions: maxSol, Workers: *workers})
		res, err := eng.Run(ctx, hctx)
		if err != nil {
			return partial(res), "", err
		}
		var sb strings.Builder
		for _, s := range res.Solutions {
			sb.Write(s.Out)
		}
		return len(res.Solutions), sb.String(), nil
	})

	run("native", func() (int, string, error) {
		img, err := queens.Asm(*n)
		if err != nil {
			return 0, "", err
		}
		as, regs, err := guest.Load(img, mem.NewFrameAllocator(0), guest.LoadOptions{})
		if err != nil {
			return 0, "", err
		}
		eng := core.New(core.NewVMMachine(0), core.Config{MaxSolutions: maxSol})
		res, err := eng.Run(ctx, &snapshot.Context{Mem: as, FS: fs.New(), Regs: regs})
		if err != nil {
			return partial(res), "", err
		}
		if res.FirstPathError != nil {
			return 0, "", res.FirstPathError
		}
		var sb strings.Builder
		for _, s := range res.Solutions {
			sb.Write(s.Out)
		}
		return len(res.Solutions), sb.String(), nil
	})

	run("prolog", func() (int, string, error) {
		m, err := queens.NewPrologMachine()
		if err != nil {
			return 0, "", err
		}
		var sb strings.Builder
		count, err := m.SolveQuery(fmt.Sprintf("queens(%d, Qs)", *n),
			func(b map[string]string) bool {
				if *verbose {
					fmt.Fprintf(&sb, "%s\n", b["Qs"])
				}
				return !*first
			})
		return count, sb.String(), err
	})
}
