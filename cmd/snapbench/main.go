// Command snapbench regenerates the reproduction's experiment tables
// (E1–E16 in DESIGN.md / EXPERIMENTS.md).
//
// Usage:
//
//	snapbench                 run every experiment at full scale
//	snapbench -e 4            run one experiment
//	snapbench -e 11,12,14     run a comma-separated subset, in order
//	snapbench -quick          small sizes (seconds instead of minutes)
//	snapbench -json FILE      also write machine-readable results to FILE
//	snapbench -list           print the experiment index
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
)

// jsonResult is the machine-readable run summary written by -json: enough
// environment to interpret the numbers (CI archives these across commits)
// plus each experiment's table verbatim.
type jsonResult struct {
	GoVersion   string           `json:"go_version"`
	GOOS        string           `json:"goos"`
	GOARCH      string           `json:"goarch"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	Quick       bool             `json:"quick"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	ID      int        `json:"id"`
	Name    string     `json:"name"`
	Claim   string     `json:"claim"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Seconds float64    `json:"seconds"`
}

// parseIDs expands a comma-separated -e value ("11,12,14") into
// experiments, preserving order. "0" or "" means all.
func parseIDs(spec string) ([]bench.Experiment, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "0" {
		return bench.All(), nil
	}
	var out []bench.Experiment
	for _, part := range strings.Split(spec, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad experiment id %q", part)
		}
		e, err := bench.ByID(id)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// First signal: finish the current experiment, skip the rest. Restore
	// default handling so a second signal kills immediately.
	go func() { <-ctx.Done(); stop() }()
	ids := flag.String("e", "", "experiment ids (1-16), comma-separated; empty or 0 runs all")
	quick := flag.Bool("quick", false, "reduced problem sizes")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonPath := flag.String("json", "", "write machine-readable results to this file")
	flag.Parse()

	if *list {
		fmt.Println("id  name                 claim")
		for _, e := range bench.All() {
			fmt.Printf("%-3d %-20s %s\n", e.ID, e.Name, e.Claim)
		}
		return
	}

	toRun, err := parseIDs(*ids)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	opts := bench.Options{Quick: *quick}
	result := jsonResult{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      *quick,
	}

	for _, e := range toRun {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "interrupted; remaining experiments skipped")
			os.Exit(130)
		}
		start := time.Now()
		tb, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "E%d (%s): %v\n", e.ID, e.Name, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		fmt.Printf("# E%d — %s\n", e.ID, e.Claim)
		fmt.Println(tb.Render())
		fmt.Printf("(completed in %s)\n\n", elapsed.Round(time.Millisecond))
		result.Experiments = append(result.Experiments, jsonExperiment{
			ID:      e.ID,
			Name:    e.Name,
			Claim:   e.Claim,
			Columns: tb.Columns,
			Rows:    tb.Rows,
			Seconds: elapsed.Seconds(),
		})
	}

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(result, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encode json: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d experiments)\n", *jsonPath, len(result.Experiments))
	}
}
