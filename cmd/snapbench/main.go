// Command snapbench regenerates the reproduction's experiment tables
// (E1–E14 in DESIGN.md / EXPERIMENTS.md).
//
// Usage:
//
//	snapbench            run every experiment at full scale
//	snapbench -e 4       run one experiment
//	snapbench -quick     small sizes (seconds instead of minutes)
//	snapbench -list      print the experiment index
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/bench"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// First signal: finish the current experiment, skip the rest. Restore
	// default handling so a second signal kills immediately.
	go func() { <-ctx.Done(); stop() }()
	id := flag.Int("e", 0, "experiment id (1-14); 0 runs all")
	quick := flag.Bool("quick", false, "reduced problem sizes")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		fmt.Println("id  name                 claim")
		for _, e := range bench.All() {
			fmt.Printf("%-3d %-20s %s\n", e.ID, e.Name, e.Claim)
		}
		return
	}

	opts := bench.Options{Quick: *quick}
	var toRun []bench.Experiment
	if *id == 0 {
		toRun = bench.All()
	} else {
		e, err := bench.ByID(*id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		toRun = []bench.Experiment{e}
	}

	for _, e := range toRun {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "interrupted; remaining experiments skipped")
			os.Exit(130)
		}
		start := time.Now()
		tb, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "E%d (%s): %v\n", e.ID, e.Name, err)
			os.Exit(1)
		}
		fmt.Printf("# E%d — %s\n", e.ID, e.Claim)
		fmt.Println(tb.Render())
		fmt.Printf("(completed in %s)\n\n", time.Since(start).Round(time.Millisecond))
	}
}
