// Command benchdiff compares a fresh BENCH_ci.json against the
// committed BENCH_seed.json and fails on performance regressions:
//
//	go run ./cmd/benchdiff -seed BENCH_seed.json -ci BENCH_ci.json -json BENCH_diff.json
//
// Rows are matched across the two files by experiment id plus the
// values of the rule's key columns, so reordering or adding rows never
// silently shifts a comparison. Thresholds are deliberately generous —
// CI hardware differs from the machine that recorded the seed, so only
// multiple-x regressions (a lost fast path, an accidental O(n) in a
// hot loop) should trip, never scheduler jitter. A rule that matches
// zero rows is a hard error, not a silent pass: renaming a workload
// must break the gate loudly so the rule is updated with the rename.
//
// Exit status: 0 within thresholds, 1 regression, 2 malformed input or
// a rule that no longer matches anything.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// benchFile mirrors cmd/snapbench's -json output.
type benchFile struct {
	GoVersion   string       `json:"go_version"`
	GOOS        string       `json:"goos"`
	GOARCH      string       `json:"goarch"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Quick       bool         `json:"quick"`
	Experiments []experiment `json:"experiments"`
}

type experiment struct {
	ID      int        `json:"id"`
	Name    string     `json:"name"`
	Claim   string     `json:"claim"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Seconds float64    `json:"seconds"`
}

// direction is how a rule compares ci against seed.
type direction int

const (
	// atMost: ci <= seed * factor (lower is better: latency).
	atMost direction = iota
	// atLeast: ci >= seed * factor (higher is better: throughput).
	atLeast
	// withinPP: ci >= seed - slack, both percentages.
	withinPP
	// exact: ci == seed numerically (deterministic counters: spill and
	// reload counts, dedup ratios — machine-independent policy outputs).
	exact
	// equalParts: the cell is "<a> == <b>" and a must equal b in the ci
	// file (a correctness identity, not a performance number).
	equalParts
)

// rule is one per-experiment threshold.
type rule struct {
	exp     int
	column  string
	keyCols []string
	// only filters rows by their key-column values; nil = every row.
	only func(key map[string]string) bool
	// part selects a "/"-separated fragment of the cell ("p50 / p99"),
	// 0-based; -1 means the whole cell.
	part   int
	dir    direction
	factor float64
	slack  float64 // percentage points, withinPP only
	why    string
}

// rules is the gate. Factors are wide (3x time, 1/3 throughput, 10x
// tail latency) because seed and CI machines differ; the gate exists
// to catch lost fast paths, not jitter.
var rules = []rule{
	{
		exp: 11, column: "tlb ns/op", keyCols: []string{"workload", "pages"},
		only: func(k map[string]string) bool {
			return k["workload"] == "write-loop" && (k["pages"] == "1" || k["pages"] == "64")
		},
		part: -1, dir: atMost, factor: 3.0,
		why: "TLB-resident writes must stay O(1)-fast (§4)",
	},
	{
		exp: 11, column: "hit rate", keyCols: []string{"workload", "pages"},
		only: func(k map[string]string) bool {
			return k["workload"] == "write-loop" && (k["pages"] == "1" || k["pages"] == "64")
		},
		part: -1, dir: withinPP, slack: 5.0,
		why: "hit rate on the resident loops is a determinism check, not a speed check",
	},
	{
		exp: 12, column: "knodes/s", keyCols: []string{"workload", "workers", "sched"},
		part: -1, dir: atLeast, factor: 1.0 / 3,
		why: "search throughput (Fig.2) must not collapse",
	},
	{
		// Only the restart phase: the fsync-bound phases (chains,
		// siblings) swing 20x with the host's disk sync latency, so
		// their wall-clock is not a portable gate — their deterministic
		// policy counters below are.
		exp: 14, column: "ext/s", keyCols: []string{"phase"},
		only: func(k map[string]string) bool { return k["phase"] == "restart" },
		part: -1, dir: atLeast, factor: 1.0 / 3,
		why: "cold-reload throughput (§3.2); fsync phases gated by counters instead",
	},
	{
		exp: 14, column: "spills", keyCols: []string{"phase"},
		part: -1, dir: exact,
		why: "spill decisions are deterministic store policy, not timing",
	},
	{
		exp: 14, column: "reloads", keyCols: []string{"phase"},
		part: -1, dir: exact,
		why: "reload counts are deterministic store policy, not timing",
	},
	{
		exp: 14, column: "dedup", keyCols: []string{"phase"},
		part: -1, dir: exact,
		why: "content-dedup ratio is a function of the workload alone",
	},
	{
		exp: 15, column: "value", keyCols: []string{"phase", "config"},
		only: func(k map[string]string) bool { return k["phase"] == "writer-throughput" },
		part: -1, dir: atLeast, factor: 1.0 / 3,
		why: "mutators must not stall under capture storms (§1)",
	},
	{
		exp: 15, column: "value", keyCols: []string{"phase", "config"},
		only: func(k map[string]string) bool { return k["phase"] == "capture-latency" },
		part: 0, dir: atMost, factor: 10.0,
		why: "capture p50 is an O(1) epoch bump; 10x headroom for CI jitter",
	},
	{
		exp: 15, column: "value", keyCols: []string{"phase", "config"},
		only: func(k map[string]string) bool { return k["phase"] == "verdict-identity" },
		part: -1, dir: equalParts,
		why: "backtracking verdicts must be identical to the synchronous baseline",
	},
	{
		exp: 16, column: "req/s", keyCols: []string{"phase", "conns", "depth"},
		only: func(k map[string]string) bool { return k["phase"] == "pipeline" },
		part: -1, dir: atLeast, factor: 1.0 / 3,
		why: "wire-protocol throughput (§3.2 as a service) must not collapse",
	},
	{
		exp: 16, column: "p99", keyCols: []string{"phase", "conns", "depth"},
		only: func(k map[string]string) bool { return k["phase"] == "pipeline" },
		part: -1, dir: atMost, factor: 20.0,
		why: "reply tail latency on loopback; 20x headroom for CI jitter",
	},
	{
		exp: 16, column: "check", keyCols: []string{"phase"},
		only: func(k map[string]string) bool { return strings.HasPrefix(k["phase"], "verdict-identity") },
		part: -1, dir: equalParts,
		why: "pipelined and batched verdict streams must match the serial ground truth",
	},
}

// rowResult is one row comparison in the diff report.
type rowResult struct {
	Experiment int     `json:"experiment"`
	Key        string  `json:"key"`
	Column     string  `json:"column"`
	Seed       string  `json:"seed"`
	CI         string  `json:"ci"`
	Ratio      float64 `json:"ratio,omitempty"`
	OK         bool    `json:"ok"`
	Why        string  `json:"why"`
}

type diffReport struct {
	SeedGo  string      `json:"seed_go"`
	CIGo    string      `json:"ci_go"`
	Rows    []rowResult `json:"rows"`
	Failed  int         `json:"failed"`
	Skipped []string    `json:"skipped,omitempty"`
}

func main() {
	seedPath := flag.String("seed", "BENCH_seed.json", "committed baseline")
	ciPath := flag.String("ci", "BENCH_ci.json", "fresh bench output")
	jsonPath := flag.String("json", "", "write the per-row diff report to this file")
	flag.Parse()

	seed, err := readBench(*seedPath)
	if err != nil {
		fail(err)
	}
	ci, err := readBench(*ciPath)
	if err != nil {
		fail(err)
	}

	rep, err := evaluate(seed, ci, rules)
	if err != nil {
		fail(err)
	}

	for _, r := range rep.Rows {
		status := "ok  "
		if !r.OK {
			status = "FAIL"
		}
		fmt.Printf("%s e%-2d %-34s %-12s seed=%-18s ci=%-18s\n",
			status, r.Experiment, r.Key, r.Column, r.Seed, r.CI)
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fail(fmt.Errorf("benchdiff: writing %s: %w", *jsonPath, err))
		}
	}
	if rep.Failed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d row(s) regressed beyond threshold\n", rep.Failed)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchdiff: %d row(s) within thresholds\n", len(rep.Rows))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

func readBench(path string) (*benchFile, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchdiff: %w", err)
	}
	var b benchFile
	if err := json.Unmarshal(buf, &b); err != nil {
		return nil, fmt.Errorf("benchdiff: parse %s: %w", path, err)
	}
	return &b, nil
}

// evaluate applies every rule, matching rows across the two files by
// experiment id + key-column values.
func evaluate(seed, ci *benchFile, rules []rule) (*diffReport, error) {
	rep := &diffReport{SeedGo: seed.GoVersion, CIGo: ci.GoVersion}
	for _, r := range rules {
		se := findExp(seed, r.exp)
		ce := findExp(ci, r.exp)
		if se == nil {
			return nil, fmt.Errorf("benchdiff: experiment %d missing from seed", r.exp)
		}
		if ce == nil {
			return nil, fmt.Errorf("benchdiff: experiment %d missing from ci run", r.exp)
		}
		seedRows, err := indexRows(se, r)
		if err != nil {
			return nil, err
		}
		ciRows, err := indexRows(ce, r)
		if err != nil {
			return nil, err
		}
		matched := 0
		for key, sv := range seedRows {
			cv, ok := ciRows[key]
			if !ok {
				return nil, fmt.Errorf("benchdiff: e%d row %q in seed but not in ci run (workload renamed? update the rule)", r.exp, key)
			}
			matched++
			res, err := compareCell(r, key, sv, cv)
			if err != nil {
				return nil, err
			}
			if !res.OK {
				rep.Failed++
			}
			rep.Rows = append(rep.Rows, res)
		}
		if matched == 0 {
			return nil, fmt.Errorf("benchdiff: rule on e%d %q matched zero rows — a silent gate is no gate; update the rule", r.exp, r.column)
		}
	}
	return rep, nil
}

func findExp(b *benchFile, id int) *experiment {
	for i := range b.Experiments {
		if b.Experiments[i].ID == id {
			return &b.Experiments[i]
		}
	}
	return nil
}

// indexRows maps each matching row's key to the rule's column value.
func indexRows(e *experiment, r rule) (map[string]string, error) {
	col := -1
	keyIdx := make([]int, 0, len(r.keyCols))
	for _, kc := range r.keyCols {
		i := columnIndex(e.Columns, kc)
		if i < 0 {
			return nil, fmt.Errorf("benchdiff: e%d has no column %q (columns: %v)", e.ID, kc, e.Columns)
		}
		keyIdx = append(keyIdx, i)
	}
	if col = columnIndex(e.Columns, r.column); col < 0 {
		return nil, fmt.Errorf("benchdiff: e%d has no column %q (columns: %v)", e.ID, r.column, e.Columns)
	}
	out := map[string]string{}
	for _, row := range e.Rows {
		if len(row) != len(e.Columns) {
			return nil, fmt.Errorf("benchdiff: e%d row %v has %d cells for %d columns", e.ID, row, len(row), len(e.Columns))
		}
		key := map[string]string{}
		parts := make([]string, 0, len(keyIdx))
		for j, i := range keyIdx {
			key[r.keyCols[j]] = row[i]
			parts = append(parts, row[i])
		}
		if r.only != nil && !r.only(key) {
			continue
		}
		out[strings.Join(parts, "/")] = row[col]
	}
	return out, nil
}

func columnIndex(cols []string, name string) int {
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	return -1
}

// compareCell applies one rule to one matched row pair.
func compareCell(r rule, key, seedCell, ciCell string) (rowResult, error) {
	res := rowResult{Experiment: r.exp, Key: key, Column: r.column,
		Seed: seedCell, CI: ciCell, Why: r.why}

	if r.dir == equalParts {
		res.OK = identityHolds(ciCell)
		return res, nil
	}

	sv, ok := parseValue(cellPart(seedCell, r.part))
	if !ok {
		return res, fmt.Errorf("benchdiff: e%d %s: unparseable seed cell %q", r.exp, key, seedCell)
	}
	cv, ok := parseValue(cellPart(ciCell, r.part))
	if !ok {
		return res, fmt.Errorf("benchdiff: e%d %s: unparseable ci cell %q", r.exp, key, ciCell)
	}
	if sv != 0 {
		res.Ratio = cv / sv
	}
	switch r.dir {
	case atMost:
		res.OK = cv <= sv*r.factor
	case atLeast:
		res.OK = cv >= sv*r.factor
	case withinPP:
		res.OK = cv >= sv-r.slack
	case exact:
		res.OK = cv == sv
	}
	return res, nil
}

// identityHolds checks an "<a> == <b>" correctness cell.
func identityHolds(cell string) bool {
	a, b, ok := strings.Cut(cell, "==")
	return ok && strings.TrimSpace(a) != "" && strings.TrimSpace(a) == strings.TrimSpace(b)
}

// cellPart selects a "/"-separated fragment ("334ns / 3.901µs"), or
// the whole cell for part < 0.
func cellPart(cell string, part int) string {
	if part < 0 {
		return cell
	}
	frags := strings.Split(cell, "/")
	if part >= len(frags) {
		return ""
	}
	return strings.TrimSpace(frags[part])
}

// parseValue turns a bench table cell into a comparable float:
// durations normalize to seconds ("3.44ms", "334ns", "3.901µs"),
// magnitudes expand ("77.98M", "1.2k"), and "%"/"x" decorations strip.
// "-" (no measurement) is not a value.
func parseValue(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	if s == "" || s == "-" {
		return 0, false
	}
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "ns"):
		mult, s = 1e-9, strings.TrimSuffix(s, "ns")
	case strings.HasSuffix(s, "µs"):
		mult, s = 1e-6, strings.TrimSuffix(s, "µs")
	case strings.HasSuffix(s, "us"):
		mult, s = 1e-6, strings.TrimSuffix(s, "us")
	case strings.HasSuffix(s, "ms"):
		mult, s = 1e-3, strings.TrimSuffix(s, "ms")
	case strings.HasSuffix(s, "s") && len(s) > 1 && (s[len(s)-2] >= '0' && s[len(s)-2] <= '9' || s[len(s)-2] == '.'):
		mult, s = 1, strings.TrimSuffix(s, "s")
	case strings.HasSuffix(s, "%"):
		s = strings.TrimSuffix(s, "%")
	case strings.HasSuffix(s, "x"):
		s = strings.TrimSuffix(s, "x")
	case strings.HasSuffix(s, "k"):
		mult, s = 1e3, strings.TrimSuffix(s, "k")
	case strings.HasSuffix(s, "K"):
		mult, s = 1e3, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1e6, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "G"):
		mult, s = 1e9, strings.TrimSuffix(s, "G")
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, false
	}
	return v * mult, true
}
