package main

import (
	"strings"
	"testing"
)

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"6.6", 6.6, true},
		{"100.0%", 100.0, true},
		{"5.51x", 5.51, true},
		{"3.44ms", 3.44e-3, true},
		{"334ns", 334e-9, true},
		{"3.901µs", 3.901e-6, true},
		{"12us", 12e-6, true},
		{"1.5s", 1.5, true},
		{"77.98M", 77.98e6, true},
		{"1.2k", 1200, true},
		{"2G", 2e9, true},
		{"-", 0, false},
		{"", 0, false},
		{"fast", 0, false},
	}
	for _, c := range cases {
		got, ok := parseValue(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("parseValue(%q) = %v, %v; want %v, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestIdentityHolds(t *testing.T) {
	for cell, want := range map[string]bool{
		"4 == 4":   true,
		"4 == 5":   false,
		"4":        false,
		" == ":     false,
		"ab == ab": true,
	} {
		if got := identityHolds(cell); got != want {
			t.Errorf("identityHolds(%q) = %v, want %v", cell, got, want)
		}
	}
}

func TestCellPart(t *testing.T) {
	if got := cellPart("334ns / 3.901µs", 0); got != "334ns" {
		t.Errorf("part 0 = %q", got)
	}
	if got := cellPart("334ns / 3.901µs", 1); got != "3.901µs" {
		t.Errorf("part 1 = %q", got)
	}
	if got := cellPart("whole", -1); got != "whole" {
		t.Errorf("part -1 = %q", got)
	}
	if got := cellPart("a / b", 5); got != "" {
		t.Errorf("out of range = %q", got)
	}
}

// bench builds a one-experiment file for evaluate tests.
func bench(rows ...[]string) *benchFile {
	return &benchFile{
		GoVersion: "go1.24.0",
		Experiments: []experiment{{
			ID:      99,
			Name:    "synthetic",
			Columns: []string{"workload", "ns/op"},
			Rows:    rows,
		}},
	}
}

var latencyRule = []rule{{
	exp: 99, column: "ns/op", keyCols: []string{"workload"},
	part: -1, dir: atMost, factor: 3.0, why: "test",
}}

func TestEvaluatePass(t *testing.T) {
	seed := bench([]string{"loop", "10"})
	ci := bench([]string{"loop", "29"}) // under 3x
	rep, err := evaluate(seed, ci, latencyRule)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 || len(rep.Rows) != 1 || !rep.Rows[0].OK {
		t.Fatalf("want clean pass, got %+v", rep)
	}
}

func TestEvaluateRegression(t *testing.T) {
	seed := bench([]string{"loop", "10"})
	ci := bench([]string{"loop", "31"}) // over 3x
	rep, err := evaluate(seed, ci, latencyRule)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 || rep.Rows[0].OK {
		t.Fatalf("want one regression, got %+v", rep)
	}
}

func TestEvaluateThroughputDirection(t *testing.T) {
	rules := []rule{{
		exp: 99, column: "ns/op", keyCols: []string{"workload"},
		part: -1, dir: atLeast, factor: 1.0 / 3, why: "test",
	}}
	seed := bench([]string{"loop", "300"})
	ci := bench([]string{"loop", "99"}) // below seed/3
	rep, err := evaluate(seed, ci, rules)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 {
		t.Fatalf("want throughput regression, got %+v", rep)
	}
}

func TestEvaluateExact(t *testing.T) {
	rules := []rule{{
		exp: 99, column: "ns/op", keyCols: []string{"workload"},
		part: -1, dir: exact, why: "test",
	}}
	seed := bench([]string{"loop", "13"})
	if rep, err := evaluate(seed, bench([]string{"loop", "13"}), rules); err != nil || rep.Failed != 0 {
		t.Fatalf("equal counters must pass: %v %+v", err, rep)
	}
	if rep, err := evaluate(seed, bench([]string{"loop", "14"}), rules); err != nil || rep.Failed != 1 {
		t.Fatalf("drifted counter must fail: %v %+v", err, rep)
	}
}

// A rule whose filter matches nothing must be a hard error, not a
// silently green gate.
func TestEvaluateZeroRowsIsError(t *testing.T) {
	rules := []rule{{
		exp: 99, column: "ns/op", keyCols: []string{"workload"},
		only: func(k map[string]string) bool { return k["workload"] == "renamed-away" },
		part: -1, dir: atMost, factor: 3.0, why: "test",
	}}
	_, err := evaluate(bench([]string{"loop", "10"}), bench([]string{"loop", "10"}), rules)
	if err == nil || !strings.Contains(err.Error(), "zero rows") {
		t.Fatalf("want zero-rows error, got %v", err)
	}
}

// A seed row missing from the CI run (renamed workload) must error.
func TestEvaluateMissingCIRow(t *testing.T) {
	_, err := evaluate(bench([]string{"loop", "10"}), bench([]string{"loop2", "10"}), latencyRule)
	if err == nil || !strings.Contains(err.Error(), "not in ci run") {
		t.Fatalf("want missing-row error, got %v", err)
	}
}

func TestEvaluateMissingExperiment(t *testing.T) {
	ci := &benchFile{Experiments: []experiment{{ID: 98}}}
	_, err := evaluate(bench([]string{"loop", "10"}), ci, latencyRule)
	if err == nil || !strings.Contains(err.Error(), "missing from ci") {
		t.Fatalf("want missing-experiment error, got %v", err)
	}
}

// The committed rules must hold against the committed seed compared to
// itself: identity is the weakest sanity bar for every threshold, and
// it exercises the real column names against the real file.
func TestRulesAgainstSeed(t *testing.T) {
	seed, err := readBench("../../BENCH_seed.json")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := evaluate(seed, seed, rules)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("seed vs itself must pass every rule, got %+v", rep.Rows)
	}
	if len(rep.Rows) < 20 {
		t.Fatalf("expected the full rule fan-out over the seed (got %d rows)", len(rep.Rows))
	}
}
