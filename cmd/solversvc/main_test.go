package main

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/store"
)

// session runs input through one stdio-style session and returns the output.
func session(t *testing.T, svc *service.Service, input string) string {
	t.Helper()
	var sb strings.Builder
	out := bufio.NewWriter(&sb)
	if err := runSession(context.Background(), svc, strings.NewReader(input), out, config{}); err != nil {
		t.Fatalf("runSession: %v", err)
	}
	out.Flush()
	return sb.String()
}

// TestLongExtendLine is the regression for the silent >64KiB drop: the
// default bufio.Scanner buffer made a long extend line end the session
// with no diagnostic. The grown buffer must carry it through the parser
// and solver.
func TestLongExtendLine(t *testing.T) {
	svc := service.New()
	defer svc.Close()

	// ~120 KiB of clauses: (v ∨ v+1) for v in 1..10000, trivially sat.
	var sb strings.Builder
	sb.WriteString("extend 0")
	for v := 1; v <= 10000; v++ {
		fmt.Fprintf(&sb, " %d %d 0", v, v+1)
	}
	sb.WriteString("\nrefs\n")
	if sb.Len() < 64*1024 {
		t.Fatalf("test line only %d bytes; must exceed the 64KiB default", sb.Len())
	}

	got := session(t, svc, sb.String())
	if !strings.Contains(got, "id=1 verdict=sat") {
		t.Fatalf("long extend line dropped; output: %.200s", got)
	}
	if !strings.Contains(got, "refs=2") {
		t.Errorf("reference not parked after long extend: %.200s", got)
	}
}

// TestOverlongLineSurfacesScannerError: a line beyond maxLineBytes must
// produce a visible read error, not a silent session end.
func TestOverlongLineSurfacesScannerError(t *testing.T) {
	svc := service.New()
	defer svc.Close()

	input := "extend 0 " + strings.Repeat("1 ", maxLineBytes/2) + "0\n"
	var sb strings.Builder
	out := bufio.NewWriter(&sb)
	err := runSession(context.Background(), svc, strings.NewReader(input), out, config{})
	out.Flush()
	if err == nil {
		t.Fatal("overlong line: runSession returned nil error")
	}
	if !strings.Contains(sb.String(), "err: read:") {
		t.Errorf("no client-visible diagnostic for overlong line: %.200s", sb.String())
	}
}

func TestProtocolRootAndEviction(t *testing.T) {
	svc := service.NewWithConfig(service.Config{Capacity: 2})
	defer svc.Close()

	got := session(t, svc, strings.Join([]string{
		"release 0",    // refused: root is permanent
		"extend 0 1 0", // id=1
		"extend 0 2 0", // id=2
		"pin 1",        // protect id=1
		"extend 0 3 0", // id=3
		"extend 0 4 0", // id=4 → evicts LRU unpinned (id=2)
		"touch 2",      // evicted
		"touch 1",      // pinned survivor
		"stats",
		"help",
		"quit",
	}, "\n")+"\n")

	for _, want := range []string{
		"err: service: root reference 0 is permanent",
		"id=1 verdict=sat",
		"evicted by capacity limit",
		"extends=4",
		"evictions=",
		"shared-ratio=",
		"reference 0 is the permanent empty base problem",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// touch 1 must have answered ok (pinned ref not evicted).
	if strings.Contains(got, "err: service: reference 1") {
		t.Errorf("pinned reference 1 was evicted:\n%s", got)
	}
}

// TestTCPSessionsShareTree starts the TCP server, connects two clients,
// and branches a reference parked by the first from the second — the
// cross-client sharing the server exists for — then exercises graceful
// drain: cancelling the context closes the listener and every connection,
// and serveTCP returns with all sessions ended.
func TestTCPSessionsShareTree(t *testing.T) {
	svc := service.New()
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		serveTCP(ctx, svc, ln, config{reqTimeout: 10 * time.Second})
		close(done)
	}()

	dial := func() (net.Conn, *bufio.Reader) {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		br := bufio.NewReader(conn)
		if _, err := br.ReadString('\n'); err != nil { // banner
			t.Fatal(err)
		}
		return conn, br
	}
	send := func(conn net.Conn, br *bufio.Reader, cmd string) string {
		if _, err := fmt.Fprintln(conn, cmd); err != nil {
			t.Fatal(err)
		}
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(line)
	}

	connA, brA := dial()
	defer connA.Close()
	connB, brB := dial()
	defer connB.Close()

	if got := send(connA, brA, "extend 0 1 2 0"); !strings.HasPrefix(got, "id=1 verdict=sat") {
		t.Fatalf("client A extend: %q", got)
	}
	// Client B branches client A's reference: one shared snapshot tree.
	if got := send(connB, brB, "extend 1 -1 0"); !strings.HasPrefix(got, "id=2 verdict=sat") {
		t.Fatalf("client B extend of A's ref: %q", got)
	}
	if got := send(connB, brB, "refs"); !strings.Contains(got, "refs=3") {
		t.Fatalf("shared table: %q", got)
	}

	// Graceful drain: cancel, server must close conns and return.
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("serveTCP did not drain after cancel")
	}
	if _, err := brA.ReadString('\n'); err == nil {
		t.Error("client A connection still open after drain")
	}
}

// TestStoreRestartRecoversSession simulates two server generations over
// one -store directory: generation 1 parks a chain under a tiny cap and
// shuts down (demoting everything); generation 2 opens the same
// directory and must answer the old ids — including one that was
// demoted mid-run — with working extends, while a service WITHOUT the
// store answers "evicted"/"unknown" for the same protocol exchange.
func TestStoreRestartRecoversSession(t *testing.T) {
	dir := t.TempDir()

	open := func() (*store.Store, *service.Service) {
		cold, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return cold, service.NewWithConfig(service.Config{Capacity: 2, Store: cold})
	}

	// Generation 1: park a three-step chain (cap 2 forces demotion of the
	// early links while the process is still alive).
	cold1, svc1 := open()
	out1 := session(t, svc1, "extend 0 1 2 0\nextend 1 -1 0\nextend 2 3 0\nstats\n")
	if !strings.Contains(out1, "id=3 verdict=sat") {
		t.Fatalf("generation 1 chain failed: %.300s", out1)
	}
	if !strings.Contains(out1, "spills=") || strings.Contains(out1, "spills=0 ") {
		t.Fatalf("no demotion under cap 2: %.300s", out1)
	}
	svc1.Close() // the solversvc shutdown path: demote all, then close store
	if live := svc1.LiveSnapshots(); live != 0 {
		t.Fatalf("%d snapshots leaked at generation-1 shutdown", live)
	}
	if err := cold1.Close(); err != nil {
		t.Fatal(err)
	}

	// Generation 2: same directory, fresh process state. Old ids 1..3
	// must answer; the recovered chain must extend with the right verdict
	// (id 2 asserted -1, so forcing 1 must go unsat), and fresh ids must
	// not collide with recovered ones.
	cold2, svc2 := open()
	defer cold2.Close()
	out2 := session(t, svc2, "touch 3\nextend 2 1 0\nextend 3 4 0\n")
	lines := strings.Split(strings.TrimSpace(out2), "\n")
	if len(lines) != 3 {
		t.Fatalf("generation 2 output: %q", out2)
	}
	if lines[0] != "ok" {
		t.Errorf("touch of recovered id: %q", lines[0])
	}
	if !strings.Contains(lines[1], "verdict=unsat") {
		t.Errorf("recovered id 2 lost its -1 assertion: %q", lines[1])
	}
	if !strings.Contains(lines[2], "verdict=sat") || strings.Contains(lines[2], "id=1 ") ||
		strings.Contains(lines[2], "id=2 ") || strings.Contains(lines[2], "id=3 ") {
		t.Errorf("fresh id collides or wrong verdict: %q", lines[2])
	}
	svc2.Close()
	if live := svc2.LiveSnapshots(); live != 0 {
		t.Fatalf("%d snapshots leaked at generation-2 shutdown", live)
	}

	// Contrast: a storeless restart forgets everything.
	bare := service.New()
	defer bare.Close()
	out3 := session(t, bare, "touch 3\n")
	if !strings.Contains(out3, "unknown") {
		t.Errorf("storeless service answered a forgotten id: %q", out3)
	}
}
