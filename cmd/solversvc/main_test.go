package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/service/wire"
	"repro/internal/solver"
	"repro/internal/store"
)

// session runs input through one stdio-style session and returns the output.
func session(t *testing.T, svc *service.Service, input string) string {
	t.Helper()
	var sb strings.Builder
	out := bufio.NewWriter(&sb)
	if err := runSession(context.Background(), svc, strings.NewReader(input), out, config{}); err != nil {
		t.Fatalf("runSession: %v", err)
	}
	out.Flush()
	return sb.String()
}

// TestLongExtendLine is the regression for the silent >64KiB drop: the
// default bufio.Scanner buffer made a long extend line end the session
// with no diagnostic. The grown buffer must carry it through the parser
// and solver.
func TestLongExtendLine(t *testing.T) {
	svc := service.New()
	defer svc.Close()

	// ~120 KiB of clauses: (v ∨ v+1) for v in 1..10000, trivially sat.
	var sb strings.Builder
	sb.WriteString("extend 0")
	for v := 1; v <= 10000; v++ {
		fmt.Fprintf(&sb, " %d %d 0", v, v+1)
	}
	sb.WriteString("\nrefs\n")
	if sb.Len() < 64*1024 {
		t.Fatalf("test line only %d bytes; must exceed the 64KiB default", sb.Len())
	}

	got := session(t, svc, sb.String())
	if !strings.Contains(got, "id=1 verdict=sat") {
		t.Fatalf("long extend line dropped; output: %.200s", got)
	}
	if !strings.Contains(got, "refs=2") {
		t.Errorf("reference not parked after long extend: %.200s", got)
	}
}

// TestOverlongLineSurfacesScannerError: a line beyond maxLineBytes must
// produce a visible read error, not a silent session end.
func TestOverlongLineSurfacesScannerError(t *testing.T) {
	svc := service.New()
	defer svc.Close()

	input := "extend 0 " + strings.Repeat("1 ", maxLineBytes/2) + "0\n"
	var sb strings.Builder
	out := bufio.NewWriter(&sb)
	err := runSession(context.Background(), svc, strings.NewReader(input), out, config{})
	out.Flush()
	if err == nil {
		t.Fatal("overlong line: runSession returned nil error")
	}
	if !strings.Contains(sb.String(), "err: read:") {
		t.Errorf("no client-visible diagnostic for overlong line: %.200s", sb.String())
	}
}

func TestProtocolRootAndEviction(t *testing.T) {
	svc := service.NewWithConfig(service.Config{Capacity: 2})
	defer svc.Close()

	got := session(t, svc, strings.Join([]string{
		"release 0",    // refused: root is permanent
		"extend 0 1 0", // id=1
		"extend 0 2 0", // id=2
		"pin 1",        // protect id=1
		"extend 0 3 0", // id=3
		"extend 0 4 0", // id=4 → evicts LRU unpinned (id=2)
		"touch 2",      // evicted
		"touch 1",      // pinned survivor
		"stats",
		"help",
		"quit",
	}, "\n")+"\n")

	for _, want := range []string{
		"err: service: root reference 0 is permanent",
		"id=1 verdict=sat",
		"evicted by capacity limit",
		"extends=4",
		"evictions=",
		"shared-ratio=",
		"reference 0 is the permanent empty base problem",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// touch 1 must have answered ok (pinned ref not evicted).
	if strings.Contains(got, "err: service: reference 1") {
		t.Errorf("pinned reference 1 was evicted:\n%s", got)
	}
}

// TestTCPSessionsShareTree starts the TCP server, connects two clients,
// and branches a reference parked by the first from the second — the
// cross-client sharing the server exists for — then exercises graceful
// drain: cancelling the context closes the listener and every connection,
// and serveTCP returns with all sessions ended.
func TestTCPSessionsShareTree(t *testing.T) {
	svc := service.New()
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		serveTCP(ctx, svc, ln, config{reqTimeout: 10 * time.Second})
		close(done)
	}()

	dial := func() (net.Conn, *bufio.Reader) {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		br := bufio.NewReader(conn)
		if _, err := br.ReadString('\n'); err != nil { // banner
			t.Fatal(err)
		}
		return conn, br
	}
	send := func(conn net.Conn, br *bufio.Reader, cmd string) string {
		if _, err := fmt.Fprintln(conn, cmd); err != nil {
			t.Fatal(err)
		}
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(line)
	}

	connA, brA := dial()
	defer connA.Close()
	connB, brB := dial()
	defer connB.Close()

	if got := send(connA, brA, "extend 0 1 2 0"); !strings.HasPrefix(got, "id=1 verdict=sat") {
		t.Fatalf("client A extend: %q", got)
	}
	// Client B branches client A's reference: one shared snapshot tree.
	if got := send(connB, brB, "extend 1 -1 0"); !strings.HasPrefix(got, "id=2 verdict=sat") {
		t.Fatalf("client B extend of A's ref: %q", got)
	}
	if got := send(connB, brB, "refs"); !strings.Contains(got, "refs=3") {
		t.Fatalf("shared table: %q", got)
	}

	// Graceful drain: cancel, server must close conns and return.
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("serveTCP did not drain after cancel")
	}
	if _, err := brA.ReadString('\n'); err == nil {
		t.Error("client A connection still open after drain")
	}
}

// TestStoreRestartRecoversSession simulates two server generations over
// one -store directory: generation 1 parks a chain under a tiny cap and
// shuts down (demoting everything); generation 2 opens the same
// directory and must answer the old ids — including one that was
// demoted mid-run — with working extends, while a service WITHOUT the
// store answers "evicted"/"unknown" for the same protocol exchange.
func TestStoreRestartRecoversSession(t *testing.T) {
	dir := t.TempDir()

	open := func() (*store.Store, *service.Service) {
		cold, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return cold, service.NewWithConfig(service.Config{Capacity: 2, Store: cold})
	}

	// Generation 1: park a three-step chain (cap 2 forces demotion of the
	// early links while the process is still alive).
	cold1, svc1 := open()
	out1 := session(t, svc1, "extend 0 1 2 0\nextend 1 -1 0\nextend 2 3 0\nstats\n")
	if !strings.Contains(out1, "id=3 verdict=sat") {
		t.Fatalf("generation 1 chain failed: %.300s", out1)
	}
	if !strings.Contains(out1, "spills=") || strings.Contains(out1, "spills=0 ") {
		t.Fatalf("no demotion under cap 2: %.300s", out1)
	}
	svc1.Close() // the solversvc shutdown path: demote all, then close store
	if live := svc1.LiveSnapshots(); live != 0 {
		t.Fatalf("%d snapshots leaked at generation-1 shutdown", live)
	}
	if err := cold1.Close(); err != nil {
		t.Fatal(err)
	}

	// Generation 2: same directory, fresh process state. Old ids 1..3
	// must answer; the recovered chain must extend with the right verdict
	// (id 2 asserted -1, so forcing 1 must go unsat), and fresh ids must
	// not collide with recovered ones.
	cold2, svc2 := open()
	defer cold2.Close()
	out2 := session(t, svc2, "touch 3\nextend 2 1 0\nextend 3 4 0\n")
	lines := strings.Split(strings.TrimSpace(out2), "\n")
	if len(lines) != 3 {
		t.Fatalf("generation 2 output: %q", out2)
	}
	if lines[0] != "ok" {
		t.Errorf("touch of recovered id: %q", lines[0])
	}
	if !strings.Contains(lines[1], "verdict=unsat") {
		t.Errorf("recovered id 2 lost its -1 assertion: %q", lines[1])
	}
	if !strings.Contains(lines[2], "verdict=sat") || strings.Contains(lines[2], "id=1 ") ||
		strings.Contains(lines[2], "id=2 ") || strings.Contains(lines[2], "id=3 ") {
		t.Errorf("fresh id collides or wrong verdict: %q", lines[2])
	}
	svc2.Close()
	if live := svc2.LiveSnapshots(); live != 0 {
		t.Fatalf("%d snapshots leaked at generation-2 shutdown", live)
	}

	// Contrast: a storeless restart forgets everything.
	bare := service.New()
	defer bare.Close()
	out3 := session(t, bare, "touch 3\n")
	if !strings.Contains(out3, "unknown") {
		t.Errorf("storeless service answered a forgotten id: %q", out3)
	}
}

// failingWriter accepts `allow` bytes and then fails every write — the
// shape of a peer that closed its read side mid-session.
type failingWriter struct {
	allow int
}

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.allow <= 0 {
		return 0, errors.New("synthetic write failure")
	}
	n := len(p)
	if n > w.allow {
		n = w.allow
	}
	w.allow -= n
	if n < len(p) {
		return n, errors.New("synthetic write failure")
	}
	return n, nil
}

// TestSessionEndsOnWriteFailure is the regression for the ignored
// out.Flush() errors: a session whose peer stopped reading used to keep
// executing every remaining command into a dead writer. Now the first
// failed flush terminates the session.
func TestSessionEndsOnWriteFailure(t *testing.T) {
	svc := service.New()
	defer svc.Close()

	// 20 extends; the writer dies on the very first reply.
	var in strings.Builder
	for i := 0; i < 20; i++ {
		in.WriteString("extend 0 1 0\n")
	}
	out := bufio.NewWriter(&failingWriter{allow: 0})
	err := runSession(context.Background(), svc, strings.NewReader(in.String()), out, config{})
	if err == nil || !strings.Contains(err.Error(), "write:") {
		t.Fatalf("runSession after write failure: err=%v, want write error", err)
	}
	if n := svc.Stats().Extends; n != 1 {
		t.Errorf("session executed %d extends into a dead writer; want 1 (the command whose reply failed)", n)
	}
}

// TestStalledReaderWriteTimeout: with -write-timeout set, a reply to a
// peer that never reads must fail with a deadline error instead of
// parking the session goroutine in a blocking write forever. net.Pipe is
// unbuffered, so the very first reply write blocks until the deadline.
func TestStalledReaderWriteTimeout(t *testing.T) {
	svc := service.New()
	defer svc.Close()

	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	errc := make(chan error, 1)
	go func() {
		out := bufio.NewWriter(&deadlineWriter{conn: server, timeout: 50 * time.Millisecond})
		errc <- runSession(context.Background(), svc, server, out, config{writeTimeout: 50 * time.Millisecond})
	}()
	// Send one command, then stall: never read the reply.
	if _, err := fmt.Fprintln(client, "refs"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		var nerr net.Error
		if !errors.As(err, &nerr) || !nerr.Timeout() {
			t.Fatalf("stalled reader: err=%v, want a net timeout", err)
		}
		if !strings.Contains(err.Error(), "write:") {
			t.Errorf("stalled reader error not attributed to the write path: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("session still blocked on a stalled reader after 5s; write deadline did not fire")
	}
}

// TestBinaryNegotiationTCP covers the protocol upgrade end to end: a
// binary client negotiates and runs a batched extend, a plain text client
// coexists on the same server, and a malformed hello falls back to a
// working text session (the reply to the hello is a text error line —
// the same fallback signal a pre-binary server gives).
func TestBinaryNegotiationTCP(t *testing.T) {
	svc := service.New()
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		serveTCP(ctx, svc, ln, config{reqTimeout: 10 * time.Second, writeTimeout: 5 * time.Second})
		close(done)
	}()
	defer func() {
		cancel()
		<-done
	}()

	// Binary client: one batched extend, three sibling groups of parent 0.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cli, err := wire.Handshake(conn)
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	defer cli.Close()
	groups := [][][]int{
		{{1, 2}},    // sat
		{{-1}},      // sat
		{{3}, {-3}}, // unsat
	}
	res, err := cli.Extend(context.Background(), 0, groups)
	if err != nil {
		t.Fatalf("batched extend: %v", err)
	}
	wantVerdicts := []solver.Status{solver.Sat, solver.Sat, solver.Unsat}
	seen := map[uint64]bool{}
	for i, r := range res {
		if r.ID == 0 || seen[r.ID] {
			t.Errorf("result %d: id %d zero or duplicated", i, r.ID)
		}
		seen[r.ID] = true
		if r.Verdict != wantVerdicts[i] {
			t.Errorf("result %d: verdict %v, want %v", i, r.Verdict, wantVerdicts[i])
		}
		if (r.Verdict == solver.Sat) != (r.Model != nil) {
			t.Errorf("result %d: model presence inconsistent with verdict %v", i, r.Verdict)
		}
	}

	// Text client coexists and sees the binary client's references.
	tconn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer tconn.Close()
	tbr := bufio.NewReader(tconn)
	if _, err := tbr.ReadString('\n'); err != nil { // banner
		t.Fatal(err)
	}
	fmt.Fprintln(tconn, "refs")
	line, err := tbr.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "refs=4") { // root + 3 batch siblings
		t.Errorf("text client does not see binary client's references: %q", line)
	}

	// Malformed hello: answered with a text error, session stays text.
	fconn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer fconn.Close()
	fbr := bufio.NewReader(fconn)
	fmt.Fprintln(fconn, "binary nope")              // sent before reading the banner: fine, TCP buffers it
	if _, err := fbr.ReadString('\n'); err != nil { // banner
		t.Fatal(err)
	}
	line, err = fbr.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "err:") {
		t.Fatalf("malformed hello not answered with a text error: %q", line)
	}
	fmt.Fprintln(fconn, "refs")
	line, err = fbr.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "refs=") {
		t.Errorf("text session unusable after fallback: %q", line)
	}
}

// TestBinaryCommandMidSessionIsRefused: "binary" anywhere but a TCP
// session's first line (here: a stdio session) gets an explanatory error.
func TestBinaryCommandMidSessionIsRefused(t *testing.T) {
	svc := service.New()
	defer svc.Close()
	got := session(t, svc, "binary 1\n")
	if !strings.Contains(got, "err: binary negotiation") {
		t.Errorf("stdio binary command: %q", got)
	}
}
