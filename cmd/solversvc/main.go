// Command solversvc runs the multi-path incremental SAT solver service of
// the paper's §3.2 over a line protocol on stdin/stdout. Each solved
// problem is parked behind an opaque reference backed by a lightweight
// snapshot; clients branch any reference with additional clauses.
//
// SIGINT/SIGTERM shut the service down gracefully: the in-flight command
// finishes, every parked snapshot is released, and the process exits after
// verifying no snapshots leaked.
//
// Protocol (one command per line):
//
//	extend <id> <lit ... 0 [lit ... 0 ...]>   extend problem <id>; prints "id=N verdict=..."
//	model <id-less>                            n/a — models print with extend
//	release <id>                               drop a reference
//	refs                                       print live reference count
//	quit                                       exit
//
// Example session:
//
//	extend 0 1 2 0          → id=1 verdict=sat model=...
//	extend 1 -1 0           → id=2 verdict=sat model=...
//	extend 2 -2 0           → id=3 verdict=unsat
package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/service"
	"repro/internal/solver"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// First signal: graceful shutdown below. Restore default handling so a
	// second signal kills immediately if teardown wedges.
	go func() { <-ctx.Done(); stop() }()

	svc := service.New()
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	// Scan stdin on its own goroutine so a signal interrupts a blocked
	// read: the main loop selects between lines and ctx.Done().
	lines := make(chan string)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			case <-ctx.Done():
				return
			}
		}
	}()

	fmt.Fprintln(out, "solversvc ready; problem 0 is empty (see -h for protocol)")
	out.Flush()
	serve(ctx, svc, out, lines)

	// Graceful teardown: release every parked snapshot and verify none leak.
	interrupted := ctx.Err() != nil
	svc.Close()
	live := svc.LiveSnapshots()
	if interrupted {
		fmt.Fprintf(out, "signal received; shut down gracefully (live-snapshots=%d)\n", live)
	}
	out.Flush()
	if live != 0 {
		fmt.Fprintf(os.Stderr, "solversvc: %d snapshots leaked at shutdown\n", live)
		os.Exit(1)
	}
}

// serve runs the command loop until EOF, quit, or ctx cancellation.
func serve(ctx context.Context, svc *service.Service, out *bufio.Writer, lines <-chan string) {
loop:
	for {
		var line string
		var ok bool
		select {
		case <-ctx.Done():
			break loop
		case line, ok = <-lines:
			if !ok {
				break loop
			}
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			break loop
		case "refs":
			fmt.Fprintf(out, "refs=%d live-snapshots=%d\n", svc.Refs(), svc.LiveSnapshots())
		case "release":
			if len(fields) != 2 {
				fmt.Fprintln(out, "err: release <id>")
				break
			}
			id, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				fmt.Fprintf(out, "err: %v\n", err)
				break
			}
			if err := svc.Release(id); err != nil {
				fmt.Fprintf(out, "err: %v\n", err)
			} else {
				fmt.Fprintln(out, "ok")
			}
		case "extend":
			if len(fields) < 2 {
				fmt.Fprintln(out, "err: extend <id> <lit ... 0 ...>")
				break
			}
			id, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				fmt.Fprintf(out, "err: %v\n", err)
				break
			}
			var clauses [][]int
			var cur []int
			bad := false
			for _, f := range fields[2:] {
				v, err := strconv.Atoi(f)
				if err != nil {
					fmt.Fprintf(out, "err: bad literal %q\n", f)
					bad = true
					break
				}
				if v == 0 {
					clauses = append(clauses, cur)
					cur = nil
					continue
				}
				cur = append(cur, v)
			}
			if bad {
				break
			}
			if len(cur) > 0 {
				clauses = append(clauses, cur)
			}
			res, err := svc.Extend(ctx, id, clauses)
			if err != nil {
				fmt.Fprintf(out, "err: %v\n", err)
				break
			}
			fmt.Fprintf(out, "id=%d verdict=%s", res.ID, res.Verdict)
			if res.Verdict == solver.Sat {
				fmt.Fprint(out, " model=")
				for v := 1; v < len(res.Model); v++ {
					if v > 1 {
						fmt.Fprint(out, ",")
					}
					if res.Model[v] {
						fmt.Fprintf(out, "%d", v)
					} else {
						fmt.Fprintf(out, "-%d", v)
					}
				}
			}
			fmt.Fprintln(out)
		default:
			fmt.Fprintf(out, "err: unknown command %q\n", fields[0])
		}
		out.Flush()
	}
}
