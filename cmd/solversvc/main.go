// Command solversvc runs the multi-path incremental SAT solver service of
// the paper's §3.2 over a line protocol — on stdin/stdout by default, or
// as a TCP server with -listen, where every connection gets its own
// session goroutine against the one shared snapshot tree. That sharing is
// the point: a reference parked by one client can be branched by another,
// and siblings physically share all unmodified state.
//
// TCP sessions can upgrade to a length-prefixed binary protocol
// (internal/service/wire): a client whose first line is "binary <maxver>"
// gets "proto binary <ver>" back and the connection switches to framed
// requests with client-chosen request ids, pipelining with out-of-order
// completion, and batched extends (N clause groups → N sibling ids in
// one round trip). Anything else on the first line — including the
// "err: unknown command" an older server would answer — keeps the
// session in the text protocol, so clients degrade gracefully.
// Per-reply write deadlines (-write-timeout) terminate a session whose
// peer has stopped reading instead of wedging its goroutine in a write.
//
// SIGINT/SIGTERM shut the service down gracefully: the listener stops
// accepting, in-flight commands finish (their solves are cancelled via
// the request context), every parked snapshot is released, and the
// process exits after verifying no snapshots leaked.
//
// Protocol (one command per line; see `help`):
//
//	extend <id> <lit ... 0 [lit ... 0 ...]>   extend problem <id>; prints "id=N verdict=..."
//	release <id>                              drop a reference (id 0 is permanent)
//	pin <id> | unpin <id>                     exempt from / re-expose to eviction
//	touch <id>                                LRU keep-alive / liveness probe
//	refs | stats                              table and service counters
//	quit                                      end the session
//
// Reference 0 is the permanent empty root problem: it can be neither
// released nor evicted, so `extend 0 ...` always works. With -cap N the
// service keeps at most N unpinned references; older ones are LRU-evicted
// and answer "evicted" errors afterwards. With -store DIR, eviction
// demotes to a content-addressed on-disk tier instead of dropping:
// demoted ids transparently reload on access, shutdown demotes every
// parked reference, and a restarted server with the same -store answers
// the ids a previous process parked.
//
// Example session:
//
//	extend 0 1 2 0          → id=1 verdict=sat model=...
//	extend 1 -1 0           → id=2 verdict=sat model=...
//	extend 2 -2 0           → id=3 verdict=unsat
package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/service/wire"
	"repro/internal/solver"
	"repro/internal/store"
)

// maxLineBytes bounds one protocol line (a large extend carries many
// clauses; 64 variables per clause × thousands of clauses easily exceeds
// bufio.Scanner's 64 KiB default). Longer lines fail loudly with a read
// error instead of silently ending the session.
const maxLineBytes = 8 << 20

// config carries the per-session serving knobs.
type config struct {
	reqTimeout   time.Duration // per-request deadline for extend; 0 = none
	writeTimeout time.Duration // per-reply write deadline; 0 = none
}

const banner = "solversvc ready; problem 0 is the permanent empty root (send `help` for the protocol)"

const helpText = `commands:
  extend <id> <lit ... 0 [lit ... 0 ...]>  solve states[id] ∧ clauses, park result, print new id
  release <id>                             drop a reference (reference 0 is permanent: refused)
  pin <id> / unpin <id>                    pinned references are never evicted by -cap
  touch <id>                               LRU keep-alive; errors if evicted/unknown
  refs                                     live reference and snapshot counts
  stats                                    extends, evictions, refs, live snapshots, sharing footprint
  help                                     this text
  quit                                     end the session
  binary <maxver>                          (first line of a TCP session only) switch to the
                                           length-prefixed binary protocol: pipelined framed
                                           requests with client-chosen ids and batched extends
rules: reference 0 is the permanent empty base problem — it can be neither
released nor evicted, so every session can branch from it. With -cap N at
most N unpinned references stay parked; the least recently used beyond
that are evicted and answer "evicted" errors afterwards — unless -store
DIR is set, in which case they demote to disk and reload on access, and a
restarted server recovers every previously-parked reference.`

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// First signal: graceful shutdown below. Restore default handling so a
	// second signal kills immediately if teardown wedges.
	go func() { <-ctx.Done(); stop() }()

	listen := flag.String("listen", "", "serve on a TCP address (e.g. :7333) instead of stdin/stdout")
	capacity := flag.Int("cap", 0, "max parked unpinned references; 0 = unbounded; LRU-evicted beyond")
	shards := flag.Int("shards", 0, "reference-table lock shards (0 = default)")
	reqTimeout := flag.Duration("req-timeout", 30*time.Second, "per-request deadline for extend (0 disables)")
	writeTimeout := flag.Duration("write-timeout", 5*time.Second, "per-reply write deadline: a peer that stops reading fails its session instead of wedging it (0 disables)")
	storeDir := flag.String("store", "", "persistence directory: evictions demote to disk instead of dropping, and a restart recovers previously-parked ids")
	flag.Parse()

	var cold *store.Store
	if *storeDir != "" {
		var err error
		cold, err = store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "solversvc:", err)
			os.Exit(1)
		}
		if ids := cold.IDs(); len(ids) > 0 {
			fmt.Fprintf(os.Stderr, "solversvc: recovered %d parked reference(s) from %s (max id %d)\n",
				len(ids), *storeDir, ids[len(ids)-1])
		}
	}
	svc := service.NewWithConfig(service.Config{Capacity: *capacity, Shards: *shards, Store: cold})
	cfg := config{reqTimeout: *reqTimeout, writeTimeout: *writeTimeout}

	var sessionErr error
	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "solversvc:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "solversvc: listening on %s\n", ln.Addr())
		serveTCP(ctx, svc, ln, cfg)
	} else {
		out := bufio.NewWriter(os.Stdout)
		fmt.Fprintln(out, banner)
		if err := out.Flush(); err != nil {
			sessionErr = fmt.Errorf("write: %w", err)
		} else {
			sessionErr = runSession(ctx, svc, os.Stdin, out, cfg)
		}
		if sessionErr != nil {
			fmt.Fprintf(os.Stderr, "solversvc: %v\n", sessionErr)
		}
	}

	// Graceful teardown: release every parked snapshot (demoting each one
	// to the store first, when -store is set, so a restart can answer the
	// ids this process parked) and verify none leak.
	interrupted := ctx.Err() != nil
	svc.Close()
	if cold != nil {
		if n := svc.Stats().SpillFailures; n > 0 {
			fmt.Fprintf(os.Stderr, "solversvc: %d reference(s) could not be demoted to the store and were dropped\n", n)
		}
		if err := cold.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "solversvc: closing store: %v\n", err)
		}
	}
	live := svc.LiveSnapshots()
	if interrupted {
		fmt.Fprintf(os.Stderr, "solversvc: signal received; shut down gracefully (live-snapshots=%d)\n", live)
	}
	if live != 0 {
		fmt.Fprintf(os.Stderr, "solversvc: %d snapshots leaked at shutdown\n", live)
		os.Exit(1)
	}
	if sessionErr != nil {
		// The session aborted mid-stream (e.g. an overlong line): fail
		// the process so drivers can tell, after the clean drain above.
		os.Exit(1)
	}
}

// serveTCP accepts connections until ctx is cancelled, running one session
// goroutine per connection against the shared service — cross-client
// physical sharing of the snapshot tree is the whole point. Shutdown is a
// drain: the listener closes, open connections are closed to unblock
// their readers, in-flight commands observe the cancelled context, and
// serveTCP returns only when every session goroutine has exited.
func serveTCP(ctx context.Context, svc *service.Service, ln net.Listener, cfg config) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	conns := make(map[net.Conn]struct{})
	go func() {
		<-ctx.Done()
		ln.Close()
		mu.Lock()
		for c := range conns {
			c.Close()
		}
		mu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				break
			}
			// Transient failure (e.g. EMFILE under connection load): log,
			// back off briefly, and keep serving rather than silently
			// taking the whole server down.
			fmt.Fprintf(os.Stderr, "solversvc: accept: %v (retrying)\n", err)
			select {
			case <-ctx.Done():
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		mu.Lock()
		conns[conn] = struct{}{}
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				conn.Close()
				mu.Lock()
				delete(conns, conn)
				mu.Unlock()
			}()
			serveConn(ctx, svc, conn, cfg)
		}()
	}
	wg.Wait()
}

// serveConn runs one TCP connection: banner, then protocol selection.
// A first line of "binary <maxver>" negotiates the binary protocol and
// hands the connection to wire.Serve; anything else (including a first
// command too long to be a hello) replays the consumed bytes into the
// text session, so pre-binary clients see exactly the old behavior.
func serveConn(ctx context.Context, svc *service.Service, conn net.Conn, cfg config) {
	br := bufio.NewReader(conn)
	out := bufio.NewWriter(&deadlineWriter{conn: conn, timeout: cfg.writeTimeout})
	fmt.Fprintln(out, banner)
	if err := out.Flush(); err != nil {
		return
	}
	line, isHello, consumed := peekHello(br)
	if isHello {
		if maxVer, ok := wire.ParseHello(line); ok {
			ver, _ := wire.Negotiate(maxVer) // ParseHello guarantees maxVer ≥ 1
			fmt.Fprintln(out, wire.Accept(ver))
			if err := out.Flush(); err != nil {
				return
			}
			err := wire.Serve(ctx, svc, conn, br, wire.ServeOptions{
				ReqTimeout:   cfg.reqTimeout,
				WriteTimeout: cfg.writeTimeout,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "solversvc: binary session %s: %v\n", conn.RemoteAddr(), err)
			}
			return
		}
		// "binary <garbage>": not a negotiation we speak. Fall through to
		// the text session, which answers with a text error — the same
		// fallback signal a pre-binary server gives a newer client.
	}
	r := io.MultiReader(bytes.NewReader(consumed), br)
	if err := runSession(ctx, svc, r, out, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "solversvc: session %s: %v\n", conn.RemoteAddr(), err)
	}
}

// peekHello reads just enough of a session's first bytes to decide
// whether the client is negotiating the binary protocol. It matches the
// "binary " prefix byte-at-a-time — never reading past the first
// divergence — so a short text first command ("refs\n") is replayed
// immediately instead of blocking a prefix-sized read. On any read
// error the bytes consumed so far are replayed and the error resurfaces
// from the underlying reader.
func peekHello(br *bufio.Reader) (line string, isHello bool, consumed []byte) {
	const prefix = "binary "
	for i := 0; i < len(prefix); i++ {
		b, err := br.ReadByte()
		if err != nil {
			return "", false, consumed
		}
		consumed = append(consumed, b)
		if b != prefix[i] {
			return "", false, consumed
		}
	}
	// Prefix matched: a hello line is short, so anything long is a text
	// command that merely starts with "binary " and gets replayed.
	const maxHello = 64
	for {
		b, err := br.ReadByte()
		if err != nil {
			return "", false, consumed
		}
		consumed = append(consumed, b)
		if b == '\n' {
			return string(consumed[:len(consumed)-1]), true, consumed
		}
		if len(consumed) > maxHello {
			return "", false, consumed
		}
	}
}

// deadlineWriter arms conn's write deadline before every chunk the
// session writes: a peer that stops reading (half-closed socket, wedged
// consumer) fails the next Flush with a timeout instead of parking the
// session goroutine in a blocking write forever.
type deadlineWriter struct {
	conn    net.Conn
	timeout time.Duration
}

func (w *deadlineWriter) Write(p []byte) (int, error) {
	if w.timeout > 0 {
		if err := w.conn.SetWriteDeadline(time.Now().Add(w.timeout)); err != nil {
			return 0, err
		}
	}
	return w.conn.Write(p)
}

// scanMsg is one unit from the session reader: a line or a terminal error.
type scanMsg struct {
	line string
	err  error
}

// runSession runs the command loop for one client until EOF, quit, ctx
// cancellation, or a read error (which is both reported to the client and
// returned). The scanner buffer is grown to maxLineBytes so large clause
// batches arrive intact, and scanner errors surface instead of silently
// ending the session.
func runSession(ctx context.Context, svc *service.Service, r io.Reader, out *bufio.Writer, cfg config) error {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Read on a separate goroutine so cancellation interrupts a session
	// blocked on input (TCP conns are additionally closed by serveTCP).
	lines := make(chan scanMsg)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 64*1024), maxLineBytes)
		for sc.Scan() {
			select {
			case lines <- scanMsg{line: sc.Text()}:
			case <-sctx.Done():
				return
			}
		}
		if err := sc.Err(); err != nil {
			select {
			case lines <- scanMsg{err: err}:
			case <-sctx.Done():
			}
		}
	}()

	for {
		var msg scanMsg
		var open bool
		select {
		case <-ctx.Done():
			return nil
		case msg, open = <-lines:
			if !open {
				return nil // clean EOF
			}
		}
		if msg.err != nil {
			if ctx.Err() != nil {
				// Drain-induced: the server closed this connection to
				// unblock the reader. Not a session failure.
				return nil
			}
			err := fmt.Errorf("read: %w", msg.err)
			fmt.Fprintf(out, "err: %v\n", err)
			out.Flush()
			return err
		}
		quit := handle(ctx, svc, out, strings.Fields(msg.line), cfg)
		if err := out.Flush(); err != nil {
			// The peer stopped reading (closed its read side, or stalled past
			// the write deadline): terminate instead of solving into a broken
			// pipe command after command.
			return fmt.Errorf("write: %w", err)
		}
		if quit {
			return nil
		}
	}
}

// handle executes one command, writing the reply; returns true on quit.
func handle(ctx context.Context, svc *service.Service, out *bufio.Writer, fields []string, cfg config) bool {
	if len(fields) == 0 {
		return false
	}
	parseID := func() (uint64, bool) {
		if len(fields) != 2 {
			fmt.Fprintf(out, "err: %s <id>\n", fields[0])
			return 0, false
		}
		id, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			fmt.Fprintf(out, "err: %v\n", err)
			return 0, false
		}
		return id, true
	}
	switch fields[0] {
	case "quit", "exit":
		return true
	case "help":
		fmt.Fprintln(out, helpText)
	case "refs":
		fmt.Fprintf(out, "refs=%d live-snapshots=%d\n", svc.Refs(), svc.LiveSnapshots())
	case "stats":
		fmt.Fprintln(out, svc.Stats().Line())
	case "binary":
		fmt.Fprintln(out, "err: binary negotiation: expected `binary <maxver>` as the first line of a TCP session (-listen)")
	case "release", "pin", "unpin", "touch":
		id, ok := parseID()
		if !ok {
			break
		}
		var err error
		switch fields[0] {
		case "release":
			err = svc.Release(id)
		case "pin":
			err = svc.Pin(id)
		case "unpin":
			err = svc.Unpin(id)
		case "touch":
			err = svc.Touch(id)
		}
		if err != nil {
			fmt.Fprintf(out, "err: %v\n", err)
		} else {
			fmt.Fprintln(out, "ok")
		}
	case "extend":
		if len(fields) < 2 {
			fmt.Fprintln(out, "err: extend <id> <lit ... 0 ...>")
			break
		}
		id, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			fmt.Fprintf(out, "err: %v\n", err)
			break
		}
		var clauses [][]int
		var cur []int
		for _, f := range fields[2:] {
			v, err := strconv.Atoi(f)
			if err != nil {
				fmt.Fprintf(out, "err: bad literal %q\n", f)
				return false
			}
			if v == 0 {
				clauses = append(clauses, cur)
				cur = nil
				continue
			}
			cur = append(cur, v)
		}
		if len(cur) > 0 {
			clauses = append(clauses, cur)
		}
		rctx, cancel := ctx, func() {}
		if cfg.reqTimeout > 0 {
			rctx, cancel = context.WithTimeout(ctx, cfg.reqTimeout)
		}
		res, err := svc.Extend(rctx, id, clauses)
		cancel()
		if err != nil {
			fmt.Fprintf(out, "err: %v\n", err)
			break
		}
		fmt.Fprintf(out, "id=%d verdict=%s", res.ID, res.Verdict)
		if res.Verdict == solver.Sat {
			fmt.Fprint(out, " model=")
			for v := 1; v < len(res.Model); v++ {
				if v > 1 {
					fmt.Fprint(out, ",")
				}
				if res.Model[v] {
					fmt.Fprintf(out, "%d", v)
				} else {
					fmt.Fprintf(out, "-%d", v)
				}
			}
		}
		fmt.Fprintln(out)
	default:
		fmt.Fprintf(out, "err: unknown command %q\n", fields[0])
	}
	return false
}
