//go:build reprolint_xtools

package main

// With the reprolint_xtools tag, reprolint also runs the four standard
// go/analysis checkers most relevant to this codebase's bug classes:
// nilness (nil-pointer flows), lostcancel (leaked context cancels),
// copylocks (mutexes copied by value) and unusedwrite (dead stores to
// struct fields). They need golang.org/x/tools in the module cache —
// the offline CI image does not have it, so they are gated behind this
// tag rather than stubbed at runtime.

import (
	"os"

	"golang.org/x/tools/go/analysis/multichecker"
	"golang.org/x/tools/go/analysis/passes/copylock"
	"golang.org/x/tools/go/analysis/passes/lostcancel"
	"golang.org/x/tools/go/analysis/passes/nilness"
	"golang.org/x/tools/go/analysis/passes/unusedwrite"
)

// runExtra hands the remaining work to x/tools' multichecker, which
// resolves each analyzer's Requires graph (buildssa, ctrlflow, inspect)
// and exits with its own status — it does not return.
func runExtra(dir string, patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if err := os.Chdir(dir); err != nil {
		os.Stderr.WriteString("reprolint(xtools): " + err.Error() + "\n")
		return 2
	}
	os.Args = append([]string{"reprolint"}, patterns...)
	multichecker.Main(
		nilness.Analyzer,
		lostcancel.Analyzer,
		copylock.Analyzer,
		unusedwrite.Analyzer,
	)
	return 0 // unreachable
}
