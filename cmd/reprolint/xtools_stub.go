//go:build !reprolint_xtools

package main

// runExtra is a no-op without the reprolint_xtools build tag: the
// build environment has no module cache for golang.org/x/tools, so the
// standard analyzers are opt-in for developers who have it.
func runExtra(dir string, patterns []string) int { return 0 }
