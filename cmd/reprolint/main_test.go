package main

import (
	"bytes"
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/reprolint"
)

// runSuite runs the full analyzer lineup over dir and returns the exit
// code plus everything printed to stdout.
func runSuite(t *testing.T, dir string, opts reprolint.Options) (int, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := reprolint.MainOpts(&stdout, &stderr, dir, suite(), []string{"./..."}, opts)
	if code == 2 {
		t.Fatalf("loader/analyzer failure:\n%s%s", stderr.String(), stdout.String())
	}
	return code, stdout.String()
}

// writeModule materializes a one-package module so the seeded-defect
// tests exercise the real loader path end to end.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmpmod\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// assertFinds runs the suite over a seeded-defect module and checks the
// expected analyzer convicts it.
func assertFinds(t *testing.T, src, analyzer string) {
	t.Helper()
	code, out := runSuite(t, writeModule(t, src), reprolint.Options{})
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, analyzer+":") {
		t.Fatalf("no %s finding in output:\n%s", analyzer, out)
	}
}

// TestSeededDoubleReleaseChain: a second release routed through a
// must-release helper chain is a double release.
func TestSeededDoubleReleaseChain(t *testing.T) {
	assertFinds(t, `package tmpmod

type Res struct{ n int }

func (r *Res) Release() {}

func Alloc() *Res { return &Res{n: 1} }

func dispose(r *Res) { r.Release() }

func disposeVia(r *Res) { dispose(r) }

func use() int {
	r := Alloc()
	n := r.n
	r.Release()
	disposeVia(r)
	return n
}
`, "releasecheck")
}

// TestSeededLockInversion: two ranked shard classes acquired out of
// order in one body.
func TestSeededLockInversion(t *testing.T) {
	assertFinds(t, `package tmpmod

import "sync"

type shardA struct {
	mu sync.Mutex // lock_rank: 10
}

type shardB struct {
	mu sync.Mutex // lock_rank: 20
}

func crossShard(a *shardA, b *shardB) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}
`, "lockorder")
}

// TestSeededAtomicPlainRead: a field written with sync/atomic must not
// be read with a plain load.
func TestSeededAtomicPlainRead(t *testing.T) {
	assertFinds(t, `package tmpmod

import "sync/atomic"

type gauge struct{ v int64 }

func (g *gauge) inc() { atomic.AddInt64(&g.v, 1) }

func (g *gauge) peek() int64 { return g.v }
`, "atomicfield")
}

// TestSeededHotPathBlocking: a hot_path function acquiring a mutex it
// did not declare with locks= is a blocking hot path.
func TestSeededHotPathBlocking(t *testing.T) {
	assertFinds(t, `package tmpmod

import "sync"

type tab struct {
	mu sync.Mutex
	n  int
}

// hot_path: lookup fast path.
func (t *tab) get() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}
`, "hotpath")
}

// TestSeededHotPathAllocation: a heap-allocation site in a hot_path
// function is a finding even when nothing blocks.
func TestSeededHotPathAllocation(t *testing.T) {
	assertFinds(t, `package tmpmod

type node struct{ next *node }

// hot_path: the push fast path.
func push(head *node) *node {
	return &node{next: head}
}
`, "hotpath")
}

// TestJSONReport: -json writes a machine-readable report with the
// finding's analyzer, position, and message.
func TestJSONReport(t *testing.T) {
	dir := writeModule(t, `package tmpmod

import "sync/atomic"

type gauge struct{ v int64 }

func (g *gauge) inc() { atomic.AddInt64(&g.v, 1) }

func (g *gauge) peek() int64 { return g.v }

func (g *gauge) quiet() int64 {
	//lint:ignore atomicfield test fixture reads under an external barrier
	return g.v
}
`)
	path := filepath.Join(t.TempDir(), "report.json")
	code, _ := runSuite(t, dir, reprolint.Options{JSONPath: path})
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep struct {
		Findings []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Message  string `json:"message"`
		} `json:"findings"`
		Suppressed int      `json:"suppressed"`
		Packages   int      `json:"packages"`
		Analyzers  []string `json:"analyzers"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, data)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %+v, want exactly one", rep.Findings)
	}
	f := rep.Findings[0]
	if f.Analyzer != "atomicfield" || !strings.HasSuffix(f.File, "p.go") ||
		f.Line == 0 || !strings.Contains(f.Message, "plain access") {
		t.Errorf("finding = %+v, want atomicfield plain-access at p.go:<line>", f)
	}
	if rep.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1 (the lint:ignore in quiet)", rep.Suppressed)
	}
	if rep.Packages == 0 || len(rep.Analyzers) != len(suite()) {
		t.Errorf("inventory packages=%d analyzers=%v", rep.Packages, rep.Analyzers)
	}
}

// copyRepo copies the module (go.mod plus every non-testdata .go file)
// into a temp dir so the negative controls can mutate it freely.
func copyRepo(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	dst := t.TempDir()
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if filepath.Ext(path) != ".go" && d.Name() != "go.mod" {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// mutate applies one textual edit to rel inside dir and returns an undo
// function. The anchor must occur exactly once so a refactor that moves
// the seeded-defect site fails loudly instead of silently passing.
func mutate(t *testing.T, dir, rel, old, new string) func() {
	t.Helper()
	path := filepath.Join(dir, rel)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(orig), old); n != 1 {
		t.Fatalf("%s: anchor %q occurs %d times, want 1", rel, old, n)
	}
	mutated := strings.Replace(string(orig), old, new, 1)
	if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	return func() {
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestNegativeControls deletes one load-bearing statement at a time
// from a copy of the real tree — a snapshot Release, the Fork epoch
// bump, the manifest-log Sync — and asserts the gate convicts each
// mutant while passing the unmutated copy.
func TestNegativeControls(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree loads are slow; skipped in -short")
	}
	dir := copyRepo(t)

	if code, out := runSuite(t, dir, reprolint.Options{}); code != 0 {
		t.Fatalf("unmutated copy: exit = %d, want 0; output:\n%s", code, out)
	}

	controls := []struct {
		name     string
		rel      string
		old, new string
		analyzer string
	}{
		{
			name:     "deleted snapshot release",
			rel:      filepath.Join("internal", "service", "service.go"),
			old:      "\tdefer cand.Release()\n",
			new:      "",
			analyzer: "releasecheck",
		},
		{
			name:     "deleted fork epoch bump",
			rel:      filepath.Join("internal", "mem", "addrspace.go"),
			old:      "\tas.AdvanceEpoch()\n\tif as.pt.root != nil {",
			new:      "\tif as.pt.root != nil {",
			analyzer: "flushcheck",
		},
		{
			name:     "allocation seeded into the TLB read hot path",
			rel:      filepath.Join("internal", "mem", "addrspace.go"),
			old:      "\t\tif f, ok := as.tlb.readFrame(vpn); ok {",
			new:      "\t\t_ = fmt.Sprintf(\"hot %d\", vpn)\n\t\tif f, ok := as.tlb.readFrame(vpn); ok {",
			analyzer: "hotpath",
		},
		{
			name: "deleted manifest log sync",
			rel:  filepath.Join("internal", "store", "store.go"),
			old: "\tif err := s.log.Sync(); err != nil {\n" +
				"\t\treturn fmt.Errorf(\"store: sync log: %w\", err)\n" +
				"\t}\n",
			new:      "",
			analyzer: "fsyncorder",
		},
	}
	for _, c := range controls {
		t.Run(c.name, func(t *testing.T) {
			undo := mutate(t, dir, c.rel, c.old, c.new)
			defer undo()
			code, out := runSuite(t, dir, reprolint.Options{})
			if code != 1 {
				t.Fatalf("exit = %d, want 1 (mutation undetected)", code)
			}
			if !strings.Contains(out, c.analyzer+":") {
				t.Fatalf("no %s finding for the mutation; output:\n%s", c.analyzer, out)
			}
		})
	}
}
