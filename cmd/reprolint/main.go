// Command reprolint runs the project's static invariant checkers over
// the module:
//
//	go run ./cmd/reprolint ./...
//
// Exit status 0 means the tree upholds every checked invariant, 1 means
// findings were printed, 2 means the loader or an analyzer failed. CI
// runs this as a hard gate; see DESIGN.md "Static analysis &
// invariants" for the annotation grammar the checkers understand.
//
// Flags:
//
//	-json FILE   write a machine-readable report (findings, suppressed
//	             count, package/analyzer inventory) to FILE
//	-time        print per-analyzer cumulative wall time to stderr
//	-jobs N      bound the per-package worker pool (default GOMAXPROCS)
//
// Build with -tags reprolint_xtools (requires a populated module cache
// for golang.org/x/tools) to also run the standard nilness, lostcancel,
// copylocks and unusedwrite analyzers.
package main

import (
	"flag"
	"os"

	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/flushcheck"
	"repro/internal/analysis/fsyncorder"
	"repro/internal/analysis/lockguard"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/releasecheck"
	"repro/internal/analysis/reprolint"
)

// suite is the full analyzer lineup the gate runs; the negative-control
// tests run the same list so a mutation that slips past them would also
// slip past CI.
func suite() []*reprolint.Analyzer {
	return []*reprolint.Analyzer{
		releasecheck.Analyzer,
		lockguard.Analyzer,
		flushcheck.Analyzer,
		fsyncorder.Analyzer,
		lockorder.Analyzer,
		atomicfield.Analyzer,
	}
}

func main() {
	var opts reprolint.Options
	fs := flag.NewFlagSet("reprolint", flag.ExitOnError)
	fs.StringVar(&opts.JSONPath, "json", "", "write a JSON report to this file")
	fs.BoolVar(&opts.Time, "time", false, "print per-analyzer wall time to stderr")
	fs.IntVar(&opts.Jobs, "jobs", 0, "per-package worker pool size (0 = GOMAXPROCS)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}

	analyzers := suite()
	dir, err := os.Getwd()
	if err != nil {
		os.Stderr.WriteString("reprolint: " + err.Error() + "\n")
		os.Exit(2)
	}
	code := reprolint.MainOpts(os.Stdout, os.Stderr, dir, analyzers, fs.Args(), opts)
	if code == 0 {
		code = runExtra(dir, fs.Args())
	}
	os.Exit(code)
}
