// Command reprolint runs the project's static invariant checkers over
// the module:
//
//	go run ./cmd/reprolint ./...
//
// Exit status 0 means the tree upholds every checked invariant, 1 means
// findings were printed, 2 means the loader or an analyzer failed. CI
// runs this as a hard gate; see DESIGN.md "Static analysis &
// invariants" for the annotation grammar the checkers understand.
//
// Build with -tags reprolint_xtools (requires a populated module cache
// for golang.org/x/tools) to also run the standard nilness, lostcancel,
// copylocks and unusedwrite analyzers.
package main

import (
	"os"

	"repro/internal/analysis/flushcheck"
	"repro/internal/analysis/fsyncorder"
	"repro/internal/analysis/lockguard"
	"repro/internal/analysis/releasecheck"
	"repro/internal/analysis/reprolint"
)

func main() {
	analyzers := []*reprolint.Analyzer{
		releasecheck.Analyzer,
		lockguard.Analyzer,
		flushcheck.Analyzer,
		fsyncorder.Analyzer,
	}
	dir, err := os.Getwd()
	if err != nil {
		os.Stderr.WriteString("reprolint: " + err.Error() + "\n")
		os.Exit(2)
	}
	code := reprolint.Main(os.Stdout, os.Stderr, dir, analyzers, os.Args[1:])
	if code == 0 {
		code = runExtra(dir, os.Args[1:])
	}
	os.Exit(code)
}
