// Command reprolint runs the project's static invariant checkers over
// the module:
//
//	go run ./cmd/reprolint ./...
//
// Exit status 0 means the tree upholds every checked invariant, 1 means
// findings were printed, 2 means the loader or an analyzer failed. CI
// runs this as a hard gate; see DESIGN.md "Static analysis &
// invariants" for the annotation grammar the checkers understand.
//
// Flags:
//
//	-json FILE   write a machine-readable report (findings, suppressed
//	             count, package/analyzer inventory) to FILE
//	-time        print per-analyzer cumulative wall time to stderr
//	-jobs N      bound the per-package worker pool (default GOMAXPROCS)
//
//	-escape                  also run escapegate: rebuild the module with
//	                         -gcflags=-json and cross-check hot_path:/inline:
//	                         annotations against the compiler's escape and
//	                         inlining verdicts
//	-escape-baseline FILE    golden allowlist to diff against (empty =
//	                         pure violation mode)
//	-escape-report FILE      write the full escapegate report JSON
//	-write-escape-baseline   regenerate the golden file instead of
//	                         checking against it
//
// Build with -tags reprolint_xtools (requires a populated module cache
// for golang.org/x/tools) to also run the standard nilness, lostcancel,
// copylocks and unusedwrite analyzers.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/escapegate"
	"repro/internal/analysis/flushcheck"
	"repro/internal/analysis/fsyncorder"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/lockguard"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/releasecheck"
	"repro/internal/analysis/reprolint"
)

// suite is the full analyzer lineup the gate runs; the negative-control
// tests run the same list so a mutation that slips past them would also
// slip past CI.
func suite() []*reprolint.Analyzer {
	return []*reprolint.Analyzer{
		releasecheck.Analyzer,
		lockguard.Analyzer,
		flushcheck.Analyzer,
		fsyncorder.Analyzer,
		lockorder.Analyzer,
		atomicfield.Analyzer,
		hotpath.Analyzer,
	}
}

func main() {
	var opts reprolint.Options
	var escape, writeBaseline bool
	var escapeBaseline, escapeReport string
	fs := flag.NewFlagSet("reprolint", flag.ExitOnError)
	fs.StringVar(&opts.JSONPath, "json", "", "write a JSON report to this file")
	fs.BoolVar(&opts.Time, "time", false, "print per-analyzer wall time to stderr")
	fs.IntVar(&opts.Jobs, "jobs", 0, "per-package worker pool size (0 = GOMAXPROCS)")
	fs.BoolVar(&escape, "escape", false, "cross-check hot_path:/inline: annotations against the compiler (escapegate)")
	fs.StringVar(&escapeBaseline, "escape-baseline", "", "escapegate golden allowlist JSON (empty = violation mode)")
	fs.StringVar(&escapeReport, "escape-report", "", "write the full escapegate report JSON to this file")
	fs.BoolVar(&writeBaseline, "write-escape-baseline", false, "regenerate the escapegate baseline and exit")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}

	analyzers := suite()
	dir, err := os.Getwd()
	if err != nil {
		os.Stderr.WriteString("reprolint: " + err.Error() + "\n")
		os.Exit(2)
	}

	if writeBaseline {
		os.Exit(regenBaseline(dir, fs.Args(), escapeBaseline))
	}

	code := reprolint.MainOpts(os.Stdout, os.Stderr, dir, analyzers, fs.Args(), opts)
	if code == 0 {
		code = runExtra(dir, fs.Args())
	}
	if escape && code != 2 {
		if ecode := runEscapegate(dir, fs.Args(), escapeBaseline, escapeReport); ecode > code {
			code = ecode
		}
	}
	os.Exit(code)
}

// runEscapegate drives the compiler-grounded checker and prints its
// findings in the same file:line format as the AST analyzers.
func runEscapegate(dir string, patterns []string, baseline, report string) int {
	res, err := escapegate.Run(escapegate.Options{
		Dir:      dir,
		Patterns: patterns,
		Baseline: baseline,
		Report:   report,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, d := range res.Findings {
		fmt.Fprintln(os.Stdout, d)
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "escapegate: %d finding(s)\n", len(res.Findings))
		return 1
	}
	return 0
}

// regenBaseline records the compiler's current verdicts as the new
// golden file (default ESCAPE_baseline.json).
func regenBaseline(dir string, patterns []string, path string) int {
	if path == "" {
		path = "ESCAPE_baseline.json"
	}
	res, err := escapegate.Run(escapegate.Options{Dir: dir, Patterns: patterns})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if err := escapegate.WriteBaseline(path, res); err != nil {
		fmt.Fprintln(os.Stderr, "escapegate: "+err.Error())
		return 2
	}
	fmt.Fprintf(os.Stderr, "escapegate: wrote %s (%d annotated functions)\n", path, len(res.Functions))
	return 0
}
