package repro_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro"
)

// TestFacadeHosted exercises the public API end to end on a hosted guest.
func TestFacadeHosted(t *testing.T) {
	step := func(env *repro.Env) error {
		m := env.Mem()
		started, _ := m.ReadU64(repro.HostedHeapBase)
		if started == 0 {
			m.WriteU64(repro.HostedHeapBase, 1)
			env.Guess(3)
			return nil
		}
		if env.Choice() == 1 {
			env.Printf("found %d", env.Choice())
			env.Exit(0)
			return nil
		}
		env.Fail()
		return nil
	}
	alloc := repro.NewFrameAllocator(0)
	ctx, err := repro.NewHostedContext(alloc, 4096)
	if err != nil {
		t.Fatal(err)
	}
	eng := repro.NewEngine(repro.NewHostedMachine(step))
	res, err := eng.Run(context.Background(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 || string(res.Solutions[0].Out) != "found 1" {
		t.Fatalf("solutions = %v", res.Solutions)
	}
}

// TestFacadeNative assembles and runs a native guest through the façade.
func TestFacadeNative(t *testing.T) {
	img, err := repro.Assemble(`
_start:
    mov rax, 500        ; sys_guess(4)
    mov rdi, 4
    syscall
    cmp rax, 2
    jne reject
    mov rbx, rax
    add rbx, 48         ; '0' + guess
    mov rcx, =buf
    storeb rbx, [rcx]
    mov rax, 1          ; write(1, buf, 1)
    mov rdi, 1
    mov rsi, =buf
    mov rdx, 1
    syscall
    mov rax, 60
    mov rdi, 0
    syscall
reject:
    mov rax, 501
    syscall
.data
buf: .space 1
`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := repro.LoadImage(img, repro.NewFrameAllocator(0))
	if err != nil {
		t.Fatal(err)
	}
	eng := repro.NewEngine(repro.NewVMMachine(0))
	res, err := eng.Run(context.Background(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstPathError != nil {
		t.Fatalf("path error: %v", res.FirstPathError)
	}
	if len(res.Solutions) != 1 || strings.TrimSpace(string(res.Solutions[0].Out)) != "2" {
		t.Fatalf("solutions = %+v", res.Solutions)
	}
	if res.Stats.Guesses != 1 || res.Stats.Fails != 3 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestFacadeAssembleError(t *testing.T) {
	if _, err := repro.Assemble("_start:\n  bogus rax"); err == nil {
		t.Error("bad assembly accepted")
	}
}

// queensStep is a façade-level N-Queens hosted guest. Heap layout:
// [0]=placed count, [8..8+n*8)=columns, [8+n*8]=started.
func queensStep(n uint64) repro.StepFunc {
	return func(env *repro.Env) error {
		m := env.Mem()
		const base = repro.HostedHeapBase
		offStarted := 8 + n*8
		started, _ := m.ReadU64(base + offStarted)
		if started == 0 {
			m.WriteU64(base+offStarted, 1)
			env.Guess(n)
			return nil
		}
		placed, _ := m.ReadU64(base)
		col := env.Choice()
		for r := uint64(0); r < placed; r++ {
			c, _ := m.ReadU64(base + 8 + r*8)
			d := placed - r
			if c == col || c+d == col || c == col+d {
				env.Fail()
				return nil
			}
		}
		m.WriteU64(base+8+placed*8, col)
		placed++
		m.WriteU64(base, placed)
		if placed == n {
			for r := uint64(0); r < n; r++ {
				c, _ := m.ReadU64(base + 8 + r*8)
				env.Printf("%d", c)
			}
			env.Fail() // enumerate all boards
			return nil
		}
		env.Guess(n)
		return nil
	}
}

// TestFacadeStreamingFirstSolution is the acceptance check: a streaming
// caller obtains the first N-Queens solution without waiting for the full
// search, and the early break leaves zero live snapshots and frames.
func TestFacadeStreamingFirstSolution(t *testing.T) {
	alloc := repro.NewFrameAllocator(0)
	root, err := repro.NewHostedContext(alloc, 4096)
	if err != nil {
		t.Fatal(err)
	}
	eng := repro.NewEngine(repro.NewHostedMachine(queensStep(8)), repro.WithWorkers(2))
	var first string
	for sol, err := range eng.Solutions(context.Background(), root) {
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		first = string(sol.Out)
		break
	}
	if len(first) != 8 {
		t.Fatalf("first board = %q, want 8 columns", first)
	}
	if live := eng.Tree().Live(); live != 0 {
		t.Errorf("snapshot leak after early break: %d", live)
	}
	if live := alloc.Live(); live != 0 {
		t.Errorf("frame leak after early break: %d", live)
	}
}

// TestFacadeOptions exercises the functional-option construction path:
// strategy, workers, solution cap, and observer all arrive in the engine.
func TestFacadeOptions(t *testing.T) {
	alloc := repro.NewFrameAllocator(0)
	root, err := repro.NewHostedContext(alloc, 4096)
	if err != nil {
		t.Fatal(err)
	}
	var seen int
	eng := repro.NewEngine(repro.NewHostedMachine(queensStep(6)),
		repro.WithStrategy(repro.BFS()),
		repro.WithWorkers(1),
		repro.WithMaxSolutions(2),
		repro.WithOnSolution(func(repro.Solution) repro.Decision { seen++; return repro.Continue }),
	)
	res, err := eng.Run(context.Background(), root)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "bfs" {
		t.Errorf("strategy = %q, want bfs", res.Strategy)
	}
	if len(res.Solutions) != 2 || seen != 2 {
		t.Errorf("solutions = %d, hook saw %d; want 2/2", len(res.Solutions), seen)
	}
}

// TestFacadeSchedulerOptions drives the work-stealing scheduler and its
// single-queue baseline through the façade: same answers either way, and
// the scheduling counters only move for the stealing build.
func TestFacadeSchedulerOptions(t *testing.T) {
	run := func(opts ...repro.Option) *repro.Result {
		t.Helper()
		alloc := repro.NewFrameAllocator(0)
		root, err := repro.NewHostedContext(alloc, 4096)
		if err != nil {
			t.Fatal(err)
		}
		eng := repro.NewEngine(repro.NewHostedMachine(queensStep(6)), opts...)
		res, err := eng.Run(context.Background(), root)
		if err != nil {
			t.Fatal(err)
		}
		if live := eng.Tree().Live(); live != 0 {
			t.Fatalf("snapshot leak: %d", live)
		}
		return res
	}
	steal := run(repro.WithWorkers(4), repro.WithRandomSeed(7))
	global := run(repro.WithWorkers(4), repro.WithNoSteal())
	if len(steal.Solutions) != len(global.Solutions) {
		t.Errorf("stealing found %d solutions, global %d",
			len(steal.Solutions), len(global.Solutions))
	}
	if steal.Stats.Steals+steal.Stats.LocalPops == 0 {
		t.Error("stealing run recorded no scheduler pops")
	}
	if global.Stats.Steals != 0 || global.Stats.LocalPops != 0 {
		t.Error("global-queue run recorded stealing counters")
	}
}

// TestFacadeTimeout bounds an exhaustive 10-queens run far below its
// runtime; the partial result must come back with DeadlineExceeded.
func TestFacadeTimeout(t *testing.T) {
	alloc := repro.NewFrameAllocator(0)
	root, err := repro.NewHostedContext(alloc, 4096)
	if err != nil {
		t.Fatal(err)
	}
	eng := repro.NewEngine(repro.NewHostedMachine(queensStep(10)),
		repro.WithTimeout(20*time.Millisecond))
	res, err := eng.Run(context.Background(), root)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res == nil || res.Stats.Nodes == 0 {
		t.Fatalf("want partial progress, got %+v", res)
	}
	if live := alloc.Live(); live != 0 {
		t.Errorf("frame leak after timeout: %d", live)
	}
}
