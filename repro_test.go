package repro_test

import (
	"strings"
	"testing"

	"repro"
)

// TestFacadeHosted exercises the public API end to end on a hosted guest.
func TestFacadeHosted(t *testing.T) {
	step := func(env *repro.Env) error {
		m := env.Mem()
		started, _ := m.ReadU64(repro.HostedHeapBase)
		if started == 0 {
			m.WriteU64(repro.HostedHeapBase, 1)
			env.Guess(3)
			return nil
		}
		if env.Choice() == 1 {
			env.Printf("found %d", env.Choice())
			env.Exit(0)
			return nil
		}
		env.Fail()
		return nil
	}
	alloc := repro.NewFrameAllocator(0)
	ctx, err := repro.NewHostedContext(alloc, 4096)
	if err != nil {
		t.Fatal(err)
	}
	eng := repro.NewEngine(repro.NewHostedMachine(step), repro.Config{})
	res, err := eng.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 || string(res.Solutions[0].Out) != "found 1" {
		t.Fatalf("solutions = %v", res.Solutions)
	}
}

// TestFacadeNative assembles and runs a native guest through the façade.
func TestFacadeNative(t *testing.T) {
	img, err := repro.Assemble(`
_start:
    mov rax, 500        ; sys_guess(4)
    mov rdi, 4
    syscall
    cmp rax, 2
    jne reject
    mov rbx, rax
    add rbx, 48         ; '0' + guess
    mov rcx, =buf
    storeb rbx, [rcx]
    mov rax, 1          ; write(1, buf, 1)
    mov rdi, 1
    mov rsi, =buf
    mov rdx, 1
    syscall
    mov rax, 60
    mov rdi, 0
    syscall
reject:
    mov rax, 501
    syscall
.data
buf: .space 1
`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := repro.LoadImage(img, repro.NewFrameAllocator(0))
	if err != nil {
		t.Fatal(err)
	}
	eng := repro.NewEngine(repro.NewVMMachine(0), repro.Config{})
	res, err := eng.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstPathError != nil {
		t.Fatalf("path error: %v", res.FirstPathError)
	}
	if len(res.Solutions) != 1 || strings.TrimSpace(string(res.Solutions[0].Out)) != "2" {
		t.Fatalf("solutions = %+v", res.Solutions)
	}
	if res.Stats.Guesses != 1 || res.Stats.Fails != 3 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestFacadeAssembleError(t *testing.T) {
	if _, err := repro.Assemble("_start:\n  bogus rax"); err == nil {
		t.Error("bad assembly accepted")
	}
}
