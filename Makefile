# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml) so a green `make check` locally predicts a
# green pipeline.

.PHONY: build test race lint bench-ci check

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/mem/ ./internal/core/ ./internal/search/ ./internal/service/ ./internal/store/ ./internal/checkpoint/ ./internal/analysis/... .

# lint runs reprolint, the repo's own go/analysis suite enforcing the
# snapshot-lifecycle, lock-guard, lock-order/no_block, atomic-access,
# TLB-flush, and fsync-ordering invariants (see DESIGN.md "Static
# analysis & invariants"). Any diagnostic is a hard failure; -time
# prints per-analyzer wall time so a slow checker is visible here
# before it slows CI.
lint:
	go run ./cmd/reprolint -time ./...

# bench-ci emits the machine-readable quick-scale numbers CI archives
# per commit: TLB locality (E11), work-stealing scaling (E12), the
# persistent store (E14), and asynchronous capture (E15).
# BENCH_seed.json is the committed baseline from the PR that introduced
# the trajectory; diff new artifacts against it.
bench-ci:
	go run ./cmd/snapbench -quick -e 11,12,14,15 -json BENCH_ci.json

check: build lint test race
