# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml) so a green `make check` locally predicts a
# green pipeline.

.PHONY: build test race lint escape-baseline bench-ci bench-diff check

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/mem/ ./internal/core/ ./internal/search/ ./internal/service/ ./internal/service/wire/ ./internal/loadgen/ ./internal/store/ ./internal/checkpoint/ ./internal/analysis/... .

# lint runs reprolint, the repo's own go/analysis suite enforcing the
# snapshot-lifecycle, lock-guard, lock-order/no_block, atomic-access,
# TLB-flush, fsync-ordering and hot-path performance invariants (see
# DESIGN.md "Static analysis & invariants" and "Performance
# invariants"). -escape additionally rebuilds the module with
# -gcflags=-json and diffs the compiler's escape/inlining verdicts on
# hot_path:/inline: functions against the committed golden baseline.
# Any diagnostic is a hard failure; -time prints per-analyzer wall time
# so a slow checker is visible here before it slows CI.
lint:
	go run ./cmd/reprolint -time -escape -escape-baseline ESCAPE_baseline.json -escape-report ESCAPE_report.json ./...

# escape-baseline re-records the compiler's current escape/inlining
# verdicts on every hot_path:/inline: function. Run it when lint
# reports escapegate drift, then review and commit the diff — the diff
# IS the review surface for a performance-relevant compiler-behavior
# change.
escape-baseline:
	go run ./cmd/reprolint -write-escape-baseline -escape-baseline ESCAPE_baseline.json ./...

# bench-ci emits the machine-readable quick-scale numbers CI archives
# per commit: TLB locality (E11), work-stealing scaling (E12), the
# persistent store (E14), asynchronous capture (E15), and wire-protocol
# pipelining (E16). BENCH_seed.json is the committed baseline from the
# PR that introduced the trajectory; diff new artifacts against it.
bench-ci:
	go run ./cmd/snapbench -quick -e 11,12,14,15,16 -json BENCH_ci.json

# bench-diff gates the fresh bench-ci artifact against the committed
# seed: generous cross-machine thresholds (3x latency, 1/3 throughput)
# catch lost fast paths, not scheduler jitter. A rule matching zero
# rows fails loudly so a renamed workload cannot silently skip its
# gate. BENCH_diff.json is the per-row report CI uploads.
bench-diff:
	go run ./cmd/benchdiff -seed BENCH_seed.json -ci BENCH_ci.json -json BENCH_diff.json

check: build lint test race
