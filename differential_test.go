package repro_test

import (
	"context"
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"repro"
)

// diffCSP is one seeded random finite-domain constraint problem: nVars
// variables over domain [0,domain), constrained by randomly drawn
// forbidden (var_i=a, var_j=b) pairs. The instance is fixed before the
// engines run, so every strategy explores the same search space.
type diffCSP struct {
	nVars, domain int
	// forbidden[i][j*domain*domain + a*domain + b] for j<i: assignment
	// (j=b, i=a) is disallowed. Flat and immutable: read-only host data
	// shared by all workers.
	forbidden map[uint64]bool
}

func newDiffCSP(nVars, domain int, density float64, seed int64) *diffCSP {
	rng := rand.New(rand.NewSource(seed))
	p := &diffCSP{nVars: nVars, domain: domain, forbidden: make(map[uint64]bool)}
	for i := 1; i < nVars; i++ {
		for j := 0; j < i; j++ {
			for a := 0; a < domain; a++ {
				for b := 0; b < domain; b++ {
					if rng.Float64() < density {
						p.forbidden[p.key(i, a, j, b)] = true
					}
				}
			}
		}
	}
	return p
}

func (p *diffCSP) key(i, a, j, b int) uint64 {
	return uint64(((i*p.nVars+j)*p.domain+a)*p.domain + b)
}

// hosted state layout: [pos][assignment x nVars] as u64 words.
func (p *diffCSP) step(env *repro.Env) error {
	m := env.Mem()
	base := repro.HostedHeapBase
	pos, err := m.ReadU64(base)
	if err != nil {
		return err
	}
	if pos == 0 {
		if err := m.WriteU64(base, 1); err != nil {
			return err
		}
		env.Guess(uint64(p.domain))
		return nil
	}
	i := int(pos) - 1
	a := int(env.Choice())
	for j := 0; j < i; j++ {
		b, err := m.ReadU64(base + 8 + uint64(j)*8)
		if err != nil {
			return err
		}
		if p.forbidden[p.key(i, a, j, int(b))] {
			env.Fail()
			return nil
		}
	}
	if err := m.WriteU64(base+8+uint64(i)*8, uint64(a)); err != nil {
		return err
	}
	if int(pos) == p.nVars {
		// Leaf: encode the full assignment as a base-domain integer.
		id := uint64(0)
		for j := 0; j < p.nVars; j++ {
			v, err := m.ReadU64(base + 8 + uint64(j)*8)
			if err != nil {
				return err
			}
			id = id*uint64(p.domain) + v
		}
		env.Exit(id)
		return nil
	}
	if err := m.WriteU64(base, pos+1); err != nil {
		return err
	}
	env.Guess(uint64(p.domain))
	return nil
}

// solve runs the CSP under one engine configuration and returns the
// sorted solution set.
func (p *diffCSP) solve(t *testing.T, opts ...repro.Option) []uint64 {
	t.Helper()
	alloc := repro.NewFrameAllocator(0)
	root, err := repro.NewHostedContext(alloc, uint64(8*(p.nVars+1)))
	if err != nil {
		t.Fatal(err)
	}
	eng := repro.NewEngine(repro.NewHostedMachine(p.step), opts...)
	res, err := eng.Run(context.Background(), root)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Tree().Live() != 0 || alloc.Live() != 0 {
		t.Fatalf("leak: %d snapshots, %d frames", eng.Tree().Live(), alloc.Live())
	}
	ids := make([]uint64, 0, len(res.Solutions))
	for _, s := range res.Solutions {
		ids = append(ids, s.Status)
	}
	slices.Sort(ids)
	return ids
}

// TestDifferentialStrategies explores one seeded random finite-domain
// problem under every strategy × worker-count × scheduler combination:
// DFS/BFS/Random × Workers∈{1,4} × steal/NoSteal. The solution sets must
// be identical — a divergence means a scheduler or policy bug (lost
// frame, double pop, mis-ordered release), not a legitimate result.
// Runs under -race in CI, where the 4-worker rows double as a data-race
// probe over the shared read-only problem and the per-path CoW state.
func TestDifferentialStrategies(t *testing.T) {
	// ~6^5 raw leaves pruned by ~35%-dense binary constraints: a few
	// dozen surviving solutions, enough structure for strategies to visit
	// states in very different orders.
	p := newDiffCSP(5, 6, 0.35, 20260726)

	want := p.solve(t, repro.WithStrategy(repro.DFS()), repro.WithWorkers(1))
	if len(want) == 0 {
		t.Fatal("seeded instance has no solutions; differential run is vacuous")
	}
	t.Logf("reference solution set: %d solutions", len(want))

	strategies := []struct {
		name string
		mk   func() repro.Strategy
	}{
		{"dfs", repro.DFS},
		{"bfs", repro.BFS},
		{"random", func() repro.Strategy { return repro.Random(7) }},
	}
	for _, st := range strategies {
		for _, workers := range []int{1, 4} {
			for _, noSteal := range []bool{false, true} {
				name := fmt.Sprintf("%s/w%d/nosteal=%v", st.name, workers, noSteal)
				t.Run(name, func(t *testing.T) {
					opts := []repro.Option{
						repro.WithStrategy(st.mk()),
						repro.WithWorkers(workers),
						repro.WithRandomSeed(99),
					}
					if noSteal {
						opts = append(opts, repro.WithNoSteal())
					}
					got := p.solve(t, opts...)
					if !slices.Equal(got, want) {
						t.Errorf("solution set diverged: %d solutions vs %d reference", len(got), len(want))
					}
				})
			}
		}
	}
}
