package repro_test

import (
	"context"
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"testing"

	"repro"
)

// diffCSP is one seeded random finite-domain constraint problem: nVars
// variables over domain [0,domain), constrained by randomly drawn
// forbidden (var_i=a, var_j=b) pairs. The instance is fixed before the
// engines run, so every strategy explores the same search space.
type diffCSP struct {
	nVars, domain int
	// forbidden[i][j*domain*domain + a*domain + b] for j<i: assignment
	// (j=b, i=a) is disallowed. Flat and immutable: read-only host data
	// shared by all workers.
	forbidden map[uint64]bool
}

func newDiffCSP(nVars, domain int, density float64, seed int64) *diffCSP {
	rng := rand.New(rand.NewSource(seed))
	p := &diffCSP{nVars: nVars, domain: domain, forbidden: make(map[uint64]bool)}
	for i := 1; i < nVars; i++ {
		for j := 0; j < i; j++ {
			for a := 0; a < domain; a++ {
				for b := 0; b < domain; b++ {
					if rng.Float64() < density {
						p.forbidden[p.key(i, a, j, b)] = true
					}
				}
			}
		}
	}
	return p
}

func (p *diffCSP) key(i, a, j, b int) uint64 {
	return uint64(((i*p.nVars+j)*p.domain+a)*p.domain + b)
}

// hosted state layout: [pos][assignment x nVars] as u64 words.
func (p *diffCSP) step(env *repro.Env) error {
	m := env.Mem()
	base := repro.HostedHeapBase
	pos, err := m.ReadU64(base)
	if err != nil {
		return err
	}
	if pos == 0 {
		if err := m.WriteU64(base, 1); err != nil {
			return err
		}
		env.Guess(uint64(p.domain))
		return nil
	}
	i := int(pos) - 1
	a := int(env.Choice())
	for j := 0; j < i; j++ {
		b, err := m.ReadU64(base + 8 + uint64(j)*8)
		if err != nil {
			return err
		}
		if p.forbidden[p.key(i, a, j, int(b))] {
			env.Fail()
			return nil
		}
	}
	if err := m.WriteU64(base+8+uint64(i)*8, uint64(a)); err != nil {
		return err
	}
	if int(pos) == p.nVars {
		// Leaf: encode the full assignment as a base-domain integer.
		id := uint64(0)
		for j := 0; j < p.nVars; j++ {
			v, err := m.ReadU64(base + 8 + uint64(j)*8)
			if err != nil {
				return err
			}
			id = id*uint64(p.domain) + v
		}
		env.Exit(id)
		return nil
	}
	if err := m.WriteU64(base, pos+1); err != nil {
		return err
	}
	env.Guess(uint64(p.domain))
	return nil
}

// solve runs the CSP under one engine configuration and returns the
// sorted solution set.
func (p *diffCSP) solve(t *testing.T, opts ...repro.Option) []uint64 {
	t.Helper()
	alloc := repro.NewFrameAllocator(0)
	root, err := repro.NewHostedContext(alloc, uint64(8*(p.nVars+1)))
	if err != nil {
		t.Fatal(err)
	}
	eng := repro.NewEngine(repro.NewHostedMachine(p.step), opts...)
	res, err := eng.Run(context.Background(), root)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Tree().Live() != 0 || alloc.Live() != 0 {
		t.Fatalf("leak: %d snapshots, %d frames", eng.Tree().Live(), alloc.Live())
	}
	ids := make([]uint64, 0, len(res.Solutions))
	for _, s := range res.Solutions {
		ids = append(ids, s.Status)
	}
	slices.Sort(ids)
	return ids
}

// TestDifferentialStrategies explores one seeded random finite-domain
// problem under every strategy × worker-count × scheduler combination:
// DFS/BFS/Random × Workers∈{1,4} × steal/NoSteal. The solution sets must
// be identical — a divergence means a scheduler or policy bug (lost
// frame, double pop, mis-ordered release), not a legitimate result.
// Runs under -race in CI, where the 4-worker rows double as a data-race
// probe over the shared read-only problem and the per-path CoW state.
// TestDifferentialCaptureStorm re-solves the same seeded instance while
// storm goroutines concurrently restore, mutate, and re-capture every
// final state the search surfaces — the asynchronous-capture protocol
// under fire. Captures are epoch bumps, not freezes, so the storm must
// not perturb the search: the solution set stays identical to the
// undisturbed reference and nothing leaks. Runs under -race in CI, where
// it doubles as a race probe over Capture/Restore against live workers.
func TestDifferentialCaptureStorm(t *testing.T) {
	p := newDiffCSP(5, 6, 0.35, 20260726)
	want := p.solve(t, repro.WithStrategy(repro.DFS()), repro.WithWorkers(1))
	if len(want) == 0 {
		t.Fatal("seeded instance has no solutions; differential run is vacuous")
	}

	alloc := repro.NewFrameAllocator(0)
	root, err := repro.NewHostedContext(alloc, uint64(8*(p.nVars+1)))
	if err != nil {
		t.Fatal(err)
	}
	states := make(chan *repro.State, 64)
	eng := repro.NewEngine(repro.NewHostedMachine(p.step),
		repro.WithWorkers(4),
		repro.WithKeepExitSnapshots(),
		repro.WithOnSolution(func(sol repro.Solution) repro.Decision {
			if sol.Final != nil {
				// Retain before the select, release on the default arm: a
				// select evaluates the send value even when it picks
				// default, so `ch <- s.Retain()` would leak skipped states.
				s := sol.Final.Retain()
				select {
				case states <- s:
				default: // storm saturated; this state skips the storm
					s.Release()
				}
			}
			return repro.Continue
		}))
	var wg sync.WaitGroup
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range states {
				// Branch the sealed final state, scribble on the branch,
				// re-capture it, and read it back through the new sealed
				// view — a full epoch round-trip racing the live search.
				ctx := s.Restore()
				if err := ctx.Mem.WriteU64(repro.HostedHeapBase, 0xdead); err != nil {
					t.Error(err)
				} else {
					snap := eng.Tree().Capture(ctx, s)
					if v, err := snap.Mem().ReadU64(repro.HostedHeapBase); err != nil || v != 0xdead {
						t.Errorf("storm re-capture read %#x, %v", v, err)
					}
					snap.Release()
				}
				ctx.Release()
				s.Release()
			}
		}()
	}
	res, err := eng.Run(context.Background(), root)
	close(states)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	got := make([]uint64, 0, len(res.Solutions))
	for _, s := range res.Solutions {
		got = append(got, s.Status)
	}
	slices.Sort(got)
	res.Release()
	if !slices.Equal(got, want) {
		t.Errorf("solution set diverged under capture storm: %d solutions vs %d reference", len(got), len(want))
	}
	if eng.Tree().Live() != 0 || alloc.Live() != 0 {
		t.Fatalf("leak under capture storm: %d snapshots, %d frames", eng.Tree().Live(), alloc.Live())
	}
}

func TestDifferentialStrategies(t *testing.T) {
	// ~6^5 raw leaves pruned by ~35%-dense binary constraints: a few
	// dozen surviving solutions, enough structure for strategies to visit
	// states in very different orders.
	p := newDiffCSP(5, 6, 0.35, 20260726)

	want := p.solve(t, repro.WithStrategy(repro.DFS()), repro.WithWorkers(1))
	if len(want) == 0 {
		t.Fatal("seeded instance has no solutions; differential run is vacuous")
	}
	t.Logf("reference solution set: %d solutions", len(want))

	strategies := []struct {
		name string
		mk   func() repro.Strategy
	}{
		{"dfs", repro.DFS},
		{"bfs", repro.BFS},
		{"random", func() repro.Strategy { return repro.Random(7) }},
	}
	for _, st := range strategies {
		for _, workers := range []int{1, 4} {
			for _, noSteal := range []bool{false, true} {
				name := fmt.Sprintf("%s/w%d/nosteal=%v", st.name, workers, noSteal)
				t.Run(name, func(t *testing.T) {
					opts := []repro.Option{
						repro.WithStrategy(st.mk()),
						repro.WithWorkers(workers),
						repro.WithRandomSeed(99),
					}
					if noSteal {
						opts = append(opts, repro.WithNoSteal())
					}
					got := p.solve(t, opts...)
					if !slices.Equal(got, want) {
						t.Errorf("solution set diverged: %d solutions vs %d reference", len(got), len(want))
					}
				})
			}
		}
	}
}
