package repro

import "time"

// Option tunes an Engine at construction. Options wrap (rather than
// replace) core.Config: WithConfig seeds the whole struct and later
// options override individual fields, so existing Config-based callers
// migrate with NewEngine(m, WithConfig(cfg)).
type Option func(*Config)

// WithConfig replaces the engine configuration wholesale. Apply it first;
// later options override its fields.
func WithConfig(cfg Config) Option { return func(c *Config) { *c = cfg } }

// WithStrategy schedules extension evaluation with st (default: DFS).
func WithStrategy(st Strategy) Option { return func(c *Config) { c.Strategy = st } }

// WithWorkers evaluates extensions on n simulated CPU cores (Fig. 2).
// Order-insensitive strategies (DFS, Random) are scheduled over n
// work-stealing deques, one per worker; order-sensitive ones share a
// single queue under a dedicated scheduler lock.
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithNoSteal forces the single global queue even for order-insensitive
// strategies — the measured baseline for worker-scaling experiments and
// an escape hatch when strict single-queue pop order matters.
func WithNoSteal() Option { return func(c *Config) { c.NoSteal = true } }

// WithSMACapacity bounds the SM-A* queue selected by a guest's
// sys_guess_strategy (default 65536). Evictions surface in
// Stats.Evicted and Observer.OnEvict.
func WithSMACapacity(n int) Option { return func(c *Config) { c.SMACapacity = n } }

// WithRandomSeed seeds the Random strategy when a guest selects it, and
// the per-worker pop streams of the sharded scheduler.
func WithRandomSeed(seed uint64) Option { return func(c *Config) { c.RandomSeed = seed } }

// WithMaxSolutions stops the search after n recorded solutions. Prefer
// Engine.Solutions with an early break when "first answer" is the goal.
func WithMaxSolutions(n int) Option { return func(c *Config) { c.MaxSolutions = n } }

// WithMaxNodes bounds evaluated extension steps (a safety net).
func WithMaxNodes(n int64) Option { return func(c *Config) { c.MaxNodes = n } }

// WithTimeout bounds the whole run; on expiry Run returns the partial
// Result with context.DeadlineExceeded.
func WithTimeout(d time.Duration) Option { return func(c *Config) { c.Timeout = d } }

// WithDeadline is the absolute-time form of WithTimeout.
func WithDeadline(t time.Time) Option { return func(c *Config) { c.Deadline = t } }

// WithObserver streams engine telemetry (guesses, fails, solutions,
// snapshots) to o — the hook point for metrics export. o must be cheap
// and safe for concurrent calls.
func WithObserver(o Observer) Option { return func(c *Config) { c.Observer = o } }

// WithOnSolution delivers each solution to fn as it surfaces; returning
// Stop halts the search (queues drained, snapshots released).
func WithOnSolution(fn func(Solution) Decision) Option {
	return func(c *Config) { c.OnSolution = fn }
}

// WithKeepExitSnapshots captures a final snapshot for every exiting path
// (released via Result.Release).
func WithKeepExitSnapshots() Option { return func(c *Config) { c.KeepExitSnapshots = true } }
