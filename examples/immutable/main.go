// The address space as an immutable data structure (§5): a versioned
// key-value store where every commit is a lightweight snapshot. Old
// versions stay readable forever, branches are O(1), and unchanged pages
// are physically shared between all versions — functional programming's
// persistent data structures, provided by the memory subsystem.
//
//	go run ./examples/immutable
package main

import (
	"fmt"
	"log"

	"repro/internal/fs"
	"repro/internal/mem"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// store is a fixed-capacity open-addressing hash table laid out in a
// simulated address space: bucket i at base + i*16 holds (key, value).
type store struct {
	ctx  *snapshot.Context
	tree *snapshot.Tree
}

const (
	base    = uint64(0x100000)
	buckets = 1 << 16 // 64Ki buckets ⇒ a 1 MiB table
)

func newStore() (*store, error) {
	as := mem.NewAddressSpace(mem.NewFrameAllocator(0))
	if err := as.Map(base, buckets*16, mem.PermRW, "kv"); err != nil {
		return nil, err
	}
	return &store{ctx: &snapshot.Context{Mem: as, FS: fs.New()}, tree: snapshot.NewTree()}, nil
}

func slot(key uint64) uint64 { return (key * 0x9e3779b97f4a7c15) % buckets }

func (s *store) put(key, val uint64) {
	i := slot(key)
	for {
		k, _ := s.ctx.Mem.ReadU64(base + i*16)
		if k == 0 || k == key {
			s.ctx.Mem.WriteU64(base+i*16, key)
			s.ctx.Mem.WriteU64(base+i*16+8, val)
			return
		}
		i = (i + 1) % buckets
	}
}

// commit freezes the current contents as an immutable version.
func (s *store) commit(parent *snapshot.State) *snapshot.State {
	return s.tree.Capture(s.ctx, parent)
}

// get reads key from an immutable version without materializing anything.
func get(v *snapshot.State, key uint64) (uint64, bool) {
	i := slot(key)
	for {
		k, _ := v.Mem().ReadU64(base + i*16)
		if k == 0 {
			return 0, false
		}
		if k == key {
			val, _ := v.Mem().ReadU64(base + i*16 + 8)
			return val, true
		}
		i = (i + 1) % buckets
	}
}

func main() {
	s, err := newStore()
	if err != nil {
		log.Fatal(err)
	}
	// Version 1: keys 1..1000 → squares.
	for k := uint64(1); k <= 1000; k++ {
		s.put(k, k*k)
	}
	v1 := s.commit(nil)

	// Version 2: overwrite a handful of keys.
	for k := uint64(1); k <= 10; k++ {
		s.put(k, 0xdead0000+k)
	}
	v2 := s.commit(v1)

	// A branch taken from v1's contents? The live context already moved
	// on, but v1 itself can be restored and mutated independently.
	branchCtx := v1.Restore()
	bs := &store{ctx: branchCtx, tree: s.tree}
	bs.put(5, 5555)
	v3 := bs.commit(v1)

	show := func(name string, v *snapshot.State, keys ...uint64) {
		fmt.Printf("%s:", name)
		for _, k := range keys {
			val, ok := get(v, k)
			if !ok {
				fmt.Printf("  %d=∅", k)
				continue
			}
			fmt.Printf("  %d=%#x", k, val)
		}
		fmt.Println()
	}
	show("v1 (squares)      ", v1, 1, 5, 1000)
	show("v2 (overwrites)   ", v2, 1, 5, 1000)
	show("v3 (branch of v1) ", v3, 1, 5, 1000)

	fp1, fp2, fp3 := v1.Footprint(), v2.Footprint(), v3.Footprint()
	fmt.Printf("\nphysical sharing (1 MiB logical table per version):\n")
	fmt.Printf("  v1: %s private, %s shared\n", trace.FormatBytes(fp1.PrivateBytes()), trace.FormatBytes(fp1.SharedBytes()))
	fmt.Printf("  v2: %s private, %s shared\n", trace.FormatBytes(fp2.PrivateBytes()), trace.FormatBytes(fp2.SharedBytes()))
	fmt.Printf("  v3: %s private, %s shared\n", trace.FormatBytes(fp3.PrivateBytes()), trace.FormatBytes(fp3.SharedBytes()))

	branchCtx.Release()
	s.ctx.Release()
	v1.Release()
	v2.Release()
	v3.Release()
	fmt.Printf("live snapshots after release: %d\n", s.tree.Live())
}
