// Sudoku with system-level backtracking: a hosted guest stores the grid in
// its simulated address space; each extension step fills the next empty
// cell with the guessed digit, failing on rule violations. The engine's
// snapshot tree is the entire backtracking machinery.
//
//	go run ./examples/sudoku
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

// A medium 9x9 puzzle (0 = empty).
var puzzle = [81]uint64{
	5, 3, 0, 0, 7, 0, 0, 0, 0,
	6, 0, 0, 1, 9, 5, 0, 0, 0,
	0, 9, 8, 0, 0, 0, 0, 6, 0,
	8, 0, 0, 0, 6, 0, 0, 0, 3,
	4, 0, 0, 8, 0, 3, 0, 0, 1,
	7, 0, 0, 0, 2, 0, 0, 0, 6,
	0, 6, 0, 0, 0, 0, 2, 8, 0,
	0, 0, 0, 4, 1, 9, 0, 0, 5,
	0, 0, 0, 0, 8, 0, 0, 7, 9,
}

// Heap layout: [0]=cursor (cells scanned), [8..8+81*8)=grid, [728]=started.
const (
	offCursor  = 0
	offGrid    = 8
	offStarted = 8 + 81*8
)

func legal(grid *[81]uint64, cell int, d uint64) bool {
	r, c := cell/9, cell%9
	for i := 0; i < 9; i++ {
		if grid[r*9+i] == d || grid[i*9+c] == d {
			return false
		}
	}
	br, bc := r/3*3, c/3*3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if grid[(br+i)*9+bc+j] == d {
				return false
			}
		}
	}
	return true
}

func loadGrid(env *repro.Env) *[81]uint64 {
	var g [81]uint64
	for i := range g {
		g[i], _ = env.Mem().ReadU64(repro.HostedHeapBase + offGrid + uint64(i)*8)
	}
	return &g
}

// advance moves the cursor to the next empty cell; returns 81 when solved.
func advance(grid *[81]uint64, from uint64) uint64 {
	for int(from) < 81 && grid[from] != 0 {
		from++
	}
	return from
}

func step(env *repro.Env) error {
	m := env.Mem()
	const base = repro.HostedHeapBase
	started, _ := m.ReadU64(base + offStarted)
	if started == 0 {
		m.WriteU64(base+offStarted, 1)
		for i, d := range puzzle {
			m.WriteU64(base+offGrid+uint64(i)*8, d)
		}
		grid := &puzzle
		cur := advance(grid, 0)
		m.WriteU64(base+offCursor, cur)
		if cur == 81 {
			env.Exit(0)
			return nil
		}
		env.Guess(9)
		return nil
	}
	grid := loadGrid(env)
	cur, _ := m.ReadU64(base + offCursor)
	d := env.Choice() + 1
	if !legal(grid, int(cur), d) {
		env.Fail()
		return nil
	}
	grid[cur] = d
	m.WriteU64(base+offGrid+cur*8, d)
	next := advance(grid, cur+1)
	m.WriteU64(base+offCursor, next)
	if next == 81 {
		for r := 0; r < 9; r++ {
			for c := 0; c < 9; c++ {
				env.Printf("%d", grid[r*9+c])
				if c != 8 {
					env.Printf(" ")
				}
			}
			env.Printf("\n")
		}
		env.Exit(0)
		return nil
	}
	env.Guess(9)
	return nil
}

func main() {
	alloc := repro.NewFrameAllocator(0)
	ctx, err := repro.NewHostedContext(alloc, 4096)
	if err != nil {
		log.Fatal(err)
	}
	// Stream solutions and break after the first: the iterator cancels the
	// run, drains the queues, and releases every snapshot — no MaxSolutions
	// guesswork needed.
	eng := repro.NewEngine(repro.NewHostedMachine(step))
	found := false
	for sol, err := range eng.Solutions(context.Background(), ctx) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(string(sol.Out))
		found = true
		break
	}
	if !found {
		log.Fatal("no solution found")
	}
	fmt.Printf("(%d live snapshots after early break)\n", eng.Tree().Live())
}
