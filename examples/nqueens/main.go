// Figure 1 of the paper, reproduced on the native backend: an SVX64
// machine-code program uses sys_guess_strategy(DFS), sys_guess, and
// sys_guess_fail to enumerate all n-queens boards with zero backtracking
// bookkeeping of its own — the libOS (the engine) restores snapshots and
// re-delivers guesses.
//
//	go run ./examples/nqueens [-n 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/queens"
)

func main() {
	n := flag.Int("n", 8, "board size (1..9 for the native printer)")
	show := flag.Bool("show", false, "render each board")
	flag.Parse()

	img, err := queens.Asm(*n)
	if err != nil {
		log.Fatal(err)
	}
	ctx, err := repro.LoadImage(img, repro.NewFrameAllocator(0))
	if err != nil {
		log.Fatal(err)
	}
	eng := repro.NewEngine(repro.NewVMMachine(0), repro.Config{})
	start := time.Now()
	res, err := eng.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if res.FirstPathError != nil {
		log.Fatalf("guest crashed: %v", res.FirstPathError)
	}
	fmt.Printf("n=%d: %d solutions in %v (strategy %s)\n",
		*n, len(res.Solutions), time.Since(start).Round(time.Microsecond), res.Strategy)
	fmt.Printf("extension steps=%d snapshots=%d CoW page copies=%d\n",
		res.Stats.Nodes, res.Stats.Snapshots, res.Stats.CowCopies)
	if *show {
		for _, s := range res.Solutions {
			board := string(s.Out)
			for _, col := range board[:len(board)-1] {
				for c := 0; c < *n; c++ {
					if int(col-'0') == c {
						fmt.Print("Q ")
					} else {
						fmt.Print(". ")
					}
				}
				fmt.Println()
			}
			fmt.Println()
		}
	}
}
