// Figure 1 of the paper, reproduced on the native backend: an SVX64
// machine-code program uses sys_guess_strategy(DFS), sys_guess, and
// sys_guess_fail to enumerate all n-queens boards with zero backtracking
// bookkeeping of its own — the libOS (the engine) restores snapshots and
// re-delivers guesses.
//
//	go run ./examples/nqueens [-n 8]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
	"repro/internal/queens"
)

func main() {
	n := flag.Int("n", 8, "board size (1..9 for the native printer)")
	show := flag.Bool("show", false, "render each board as it surfaces")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	img, err := queens.Asm(*n)
	if err != nil {
		log.Fatal(err)
	}
	root, err := repro.LoadImage(img, repro.NewFrameAllocator(0))
	if err != nil {
		log.Fatal(err)
	}

	// Boards stream through the OnSolution hook the moment the guest prints
	// them — no waiting for the full search; Ctrl-C stops cleanly with the
	// partial count. The observer watches the engine's snapshot churn live.
	var liveSnapshots atomic.Int64
	eng := repro.NewEngine(repro.NewVMMachine(0),
		repro.WithObserver(&repro.FuncObserver{
			Snapshot: func(id uint64, depth int) { liveSnapshots.Add(1) },
		}),
		repro.WithOnSolution(func(s repro.Solution) repro.Decision {
			if *show {
				board := string(s.Out)
				for _, col := range board[:len(board)-1] {
					for c := 0; c < *n; c++ {
						if int(col-'0') == c {
							fmt.Print("Q ")
						} else {
							fmt.Print(". ")
						}
					}
					fmt.Println()
				}
				fmt.Println()
			}
			return repro.Continue
		}))
	start := time.Now()
	res, err := eng.Run(ctx, root)
	if err != nil && res == nil {
		log.Fatal(err)
	}
	if res.FirstPathError != nil {
		log.Fatalf("guest crashed: %v", res.FirstPathError)
	}
	status := "complete"
	if err != nil {
		status = "interrupted"
	}
	fmt.Printf("n=%d: %d solutions in %v (strategy %s, %s)\n",
		*n, len(res.Solutions), time.Since(start).Round(time.Microsecond), res.Strategy, status)
	fmt.Printf("extension steps=%d snapshots=%d (observer saw %d) CoW page copies=%d\n",
		res.Stats.Nodes, res.Stats.Snapshots, liveSnapshots.Load(), res.Stats.CowCopies)
}
