// Quickstart: system-level backtracking in ~40 lines.
//
// The program searches for every strictly increasing 3-digit code (digits
// 1..6) whose digits sum to 12. Each call to env.Guess(6) looks like the
// operating system magically guessing the right digit; conflicting paths
// just call env.Fail() — no undo logic anywhere.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

// Heap layout: [0]=count of digits placed, [8..]=digits, [32]=started.
func step(env *repro.Env) error {
	m := env.Mem()
	const base = repro.HostedHeapBase
	started, _ := m.ReadU64(base + 32)
	if started == 0 { // the root step: main() up to the first guess
		m.WriteU64(base+32, 1)
		env.Guess(6)
		return nil
	}
	n, _ := m.ReadU64(base)
	digit := env.Choice() + 1 // 1..6
	if n > 0 {
		prev, _ := m.ReadU64(base + 8 + (n-1)*8)
		if digit <= prev { // not strictly increasing: backtrack
			env.Fail()
			return nil
		}
	}
	m.WriteU64(base+8+n*8, digit)
	n++
	m.WriteU64(base, n)
	if n < 3 {
		env.Guess(6)
		return nil
	}
	var sum uint64
	for i := uint64(0); i < 3; i++ {
		d, _ := m.ReadU64(base + 8 + i*8)
		sum += d
	}
	if sum != 12 {
		env.Fail()
		return nil
	}
	a, _ := m.ReadU64(base + 8)
	b, _ := m.ReadU64(base + 16)
	c, _ := m.ReadU64(base + 24)
	env.Printf("%d-%d-%d\n", a, b, c)
	env.Fail() // enumerate all answers, Prolog-style
	return nil
}

func main() {
	alloc := repro.NewFrameAllocator(0)
	ctx, err := repro.NewHostedContext(alloc, 4096)
	if err != nil {
		log.Fatal(err)
	}
	eng := repro.NewEngine(repro.NewHostedMachine(step))
	res, err := eng.Run(context.Background(), ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("codes with increasing digits summing to 12:\n")
	for _, s := range res.Solutions {
		fmt.Print(string(s.Out))
	}
	fmt.Printf("(%d solutions, %d extension steps, %d snapshots)\n",
		len(res.Solutions), res.Stats.Nodes, res.Stats.Snapshots)
}
