// The incremental-solver pattern of §2/§3.2: solve p once, then branch it
// three different ways — each extension restores p's lightweight snapshot
// (with the solver's learned clauses and phases serialized inside) instead
// of re-solving from scratch, and the branches physically share p's state.
//
//	go run ./examples/incremental
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/service"
	"repro/internal/solver"
)

func main() {
	ctx := context.Background()
	svc := service.New()
	defer svc.Close()

	// p: a 150-variable random 3-SAT instance.
	base := solver.Random3SAT(150, 520, 7)
	start := time.Now()
	p, err := svc.Extend(ctx, 0, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("p: %d clauses solved: %s in %v (ref %d, %d learned clauses)\n",
		len(base), p.Verdict, time.Since(start).Round(time.Microsecond), p.ID, p.Learned)

	// Three incompatible extensions of the SAME solved p.
	branches := []struct {
		name    string
		clauses [][]int
	}{
		{"q1: force x1..x4 true", [][]int{{1}, {2}, {3}, {4}}},
		{"q2: force x1..x4 false", [][]int{{-1}, {-2}, {-3}, {-4}}},
		{"q3: add 40 random clauses", solver.Random3SAT(150, 40, 8)},
	}
	for _, b := range branches {
		start := time.Now()
		r, err := svc.Extend(ctx, p.ID, b.clauses)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("p∧%-28s %s in %v (ref %d)\n",
			b.name+":", r.Verdict, time.Since(start).Round(time.Microsecond), r.ID)
	}

	// Contrast: p∧q3 from scratch, without p's retained state.
	start = time.Now()
	s := solver.New(150)
	for _, cl := range base {
		s.AddClause(cl...)
	}
	for _, cl := range branches[2].clauses {
		s.AddClause(cl...)
	}
	verdict := s.Solve(0)
	fmt.Printf("p∧q3 from scratch:            %s in %v\n",
		verdict, time.Since(start).Round(time.Microsecond))
	st := svc.Stats()
	fmt.Printf("\nlive problem references: %d (snapshot tree shares their common state)\n", st.Refs)
	fmt.Printf("parked footprint: %d bytes private, %d bytes shared (%.0f%% of parked state is physically shared)\n",
		st.PrivateBytes, st.SharedBytes, 100*st.SharedRatio())
}
