// S2E in miniature: multi-path symbolic execution of an SVX64 binary with
// a hidden bug. The explorer marks an input symbolic, forks VM state at
// every input-dependent branch using lightweight snapshots, decides arm
// feasibility with the CDCL solver, and emits one concrete test case per
// path — including the one that reaches the buried failure.
//
//	go run ./examples/symexec
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/symexec"
)

// The target: a license-key checker with a subtle dead-branch bug.
// exit(0)=rejected, exit(1)=accepted, exit(42)=internal assertion reached.
const target = `
_start:
    mov rax, 600            ; key = make_symbolic()
    mov rdi, 0
    syscall
    mov r12, rax

    mov rbx, r12            ; checksum = (key ^ (key >> 16)) & 0xffff
    shr rbx, 16
    xor rbx, r12
    and rbx, 0xffff
    cmp rbx, 0xbeef
    jne reject

    mov rcx, r12            ; class = key & 7
    and rcx, 7
    cmp rcx, 3
    je vip
    cmp rcx, 7
    je impossible           ; dead? key&7==7 and checksum ok CAN coexist: bug
    mov rdi, 1              ; ordinary accept
    mov rax, 60
    syscall
vip:
    mov rdi, 1
    mov rax, 60
    syscall
impossible:
    mov rdi, 42             ; the buried assertion failure
    mov rax, 60
    syscall
reject:
    mov rdi, 0
    mov rax, 60
    syscall
`

func main() {
	img, err := repro.Assemble(target)
	if err != nil {
		log.Fatal(err)
	}
	ex, err := symexec.NewExplorer(img, symexec.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := ex.Run()
	if err != nil {
		log.Fatal(err)
	}

	sort.Slice(rep.Paths, func(i, j int) bool {
		return rep.Paths[i].ExitStatus < rep.Paths[j].ExitStatus
	})
	fmt.Printf("explored %d paths (%d forks, %d solver calls)\n\n",
		len(rep.Paths), rep.Stats.Forks, rep.Stats.SolverCalls)
	for _, p := range rep.Paths {
		if p.Status != symexec.PathExited {
			fmt.Printf("  [%s] %v\n", p.Status, p.Err)
			continue
		}
		fmt.Printf("  exit=%-3d test-case key=%#016x  (%d constraints)\n",
			p.ExitStatus, p.Inputs["in0"], len(p.Constraints))
	}
	bugs := rep.Bugs()
	fmt.Println()
	for _, b := range bugs {
		if b.ExitStatus == 42 {
			fmt.Printf("BUG reproduced: key %#x drives the \"impossible\" branch\n",
				b.Inputs["in0"])
		}
	}
	if len(bugs) == 0 {
		fmt.Println("no bug found (unexpected)")
	}
}
