package fs

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestWriteReadFile(t *testing.T) {
	s := New()
	defer s.Release()
	s.WriteFile("/in.txt", []byte("hello"))
	got, err := s.ReadFile("/in.txt")
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if _, err := s.ReadFile("/missing"); err != ErrNotExist {
		t.Errorf("missing file error = %v", err)
	}
	if sz, err := s.Stat("/in.txt"); err != nil || sz != 5 {
		t.Errorf("Stat = %d, %v", sz, err)
	}
}

func TestOpenReadWriteSeekClose(t *testing.T) {
	s := New()
	defer s.Release()
	fd, err := s.Open("/f", OCreate|ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if fd != FirstFD {
		t.Errorf("first fd = %d, want %d", fd, FirstFD)
	}
	if n, err := s.Write(fd, []byte("abcdef")); n != 6 || err != nil {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if off, err := s.Seek(fd, 2, SeekSet); off != 2 || err != nil {
		t.Fatalf("Seek = %d, %v", off, err)
	}
	buf := make([]byte, 3)
	if n, err := s.Read(fd, buf); n != 3 || err != nil || string(buf) != "cde" {
		t.Fatalf("Read = %d %q, %v", n, buf, err)
	}
	if off, err := s.Seek(fd, -1, SeekEnd); off != 5 || err != nil {
		t.Fatalf("SeekEnd = %d, %v", off, err)
	}
	if off, err := s.Seek(fd, 1, SeekCur); off != 6 || err != nil {
		t.Fatalf("SeekCur = %d, %v", off, err)
	}
	if _, err := s.Read(fd, buf); err != io.EOF {
		t.Fatalf("read at EOF = %v", err)
	}
	if err := s.Close(fd); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(fd, buf); err != ErrBadFD {
		t.Errorf("read after close = %v", err)
	}
	// fd slot is reused.
	fd2, err := s.Open("/f", ORdOnly)
	if err != nil || fd2 != fd {
		t.Errorf("reopened fd = %d, %v; want %d", fd2, err, fd)
	}
}

func TestOpenFlags(t *testing.T) {
	s := New()
	defer s.Release()
	if _, err := s.Open("/nope", ORdOnly); err != ErrNotExist {
		t.Errorf("open missing = %v", err)
	}
	s.WriteFile("/f", []byte("0123456789"))
	// O_TRUNC empties it.
	fd, err := s.Open("/f", OWrOnly|OTrunc)
	if err != nil {
		t.Fatal(err)
	}
	if sz, _ := s.Stat("/f"); sz != 0 {
		t.Errorf("size after trunc = %d", sz)
	}
	// Write-only fd cannot read.
	if _, err := s.Read(fd, make([]byte, 1)); err != ErrPerm {
		t.Errorf("read on wronly = %v", err)
	}
	// Read-only fd cannot write.
	rfd, _ := s.Open("/f", ORdOnly)
	if _, err := s.Write(rfd, []byte("x")); err != ErrPerm {
		t.Errorf("write on rdonly = %v", err)
	}
	// O_APPEND writes at the end regardless of seeks.
	afd, _ := s.Open("/f", OWrOnly|OAppend)
	s.Write(afd, []byte("ab"))
	s.Seek(afd, 0, SeekSet)
	s.Write(afd, []byte("cd"))
	got, _ := s.ReadFile("/f")
	if string(got) != "abcd" {
		t.Errorf("append content = %q", got)
	}
}

func TestUnlink(t *testing.T) {
	s := New()
	defer s.Release()
	s.WriteFile("/f", []byte("x"))
	if err := s.Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	if err := s.Unlink("/f"); err != ErrNotExist {
		t.Errorf("double unlink = %v", err)
	}
	if got := s.List(); len(got) != 0 {
		t.Errorf("List after unlink = %v", got)
	}
}

func TestSparseFileHoles(t *testing.T) {
	s := New()
	defer s.Release()
	fd, _ := s.Open("/sparse", OCreate|ORdWr)
	if _, err := s.Seek(fd, 3*BlockSize+10, SeekSet); err != nil {
		t.Fatal(err)
	}
	s.Write(fd, []byte("tail"))
	got, _ := s.ReadFile("/sparse")
	if len(got) != 3*BlockSize+14 {
		t.Fatalf("sparse size = %d", len(got))
	}
	for i := 0; i < 3*BlockSize+10; i++ {
		if got[i] != 0 {
			t.Fatalf("hole byte %d = %#x", i, got[i])
		}
	}
	if string(got[3*BlockSize+10:]) != "tail" {
		t.Errorf("tail = %q", got[3*BlockSize+10:])
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := New()
	defer s.Release()
	s.WriteFile("/data", bytes.Repeat([]byte("a"), 2*BlockSize))
	snap := s.Snapshot()
	defer snap.Release()

	// Mutate the live view: first block only.
	fd, _ := s.Open("/data", ORdWr)
	s.Write(fd, []byte("MUTATED"))
	s.WriteFile("/new", []byte("post-snapshot"))
	s.Unlink("/data") // even unlink must not affect the snapshot

	got, err := snap.ReadFile("/data")
	if err != nil {
		t.Fatalf("snapshot lost /data: %v", err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte("a"), 2*BlockSize)) {
		t.Error("snapshot content mutated")
	}
	if _, err := snap.ReadFile("/new"); err != ErrNotExist {
		t.Error("snapshot sees post-snapshot file")
	}
	if files := snap.Files(); len(files) != 1 || files[0] != "/data" {
		t.Errorf("snapshot files = %v", files)
	}
}

func TestMaterializeIsIndependent(t *testing.T) {
	s := New()
	defer s.Release()
	s.WriteFile("/f", []byte("base"))
	fd, _ := s.Open("/f", ORdWr)
	s.Seek(fd, 4, SeekSet)
	snap := s.Snapshot()
	defer snap.Release()

	v1 := snap.Materialize()
	defer v1.Release()
	v2 := snap.Materialize()
	defer v2.Release()

	// FD table was captured: same descriptor, same offset.
	if n, err := v1.Write(fd, []byte("+v1")); n != 3 || err != nil {
		t.Fatalf("v1 write through captured fd: %v", err)
	}
	if n, err := v2.Write(fd, []byte("+v2")); n != 3 || err != nil {
		t.Fatalf("v2 write: %v", err)
	}
	g1, _ := v1.ReadFile("/f")
	g2, _ := v2.ReadFile("/f")
	g0, _ := snap.ReadFile("/f")
	if string(g1) != "base+v1" || string(g2) != "base+v2" || string(g0) != "base" {
		t.Errorf("views not isolated: %q %q %q", g1, g2, g0)
	}
}

func TestBlockCoWGranularity(t *testing.T) {
	s := New()
	defer s.Release()
	s.WriteFile("/big", make([]byte, 8*BlockSize))
	snap := s.Snapshot()
	defer snap.Release()
	v := snap.Materialize()
	defer v.Release()
	fd, _ := v.Open("/big", ORdWr)
	v.Write(fd, []byte{1}) // touches exactly one block
	// The file object was cloned but 7 of 8 blocks stay shared; verify by
	// checking the snapshot still reads zeroes everywhere and the view sees
	// its write.
	got, _ := v.ReadFile("/big")
	if got[0] != 1 {
		t.Error("view write lost")
	}
	sg, _ := snap.ReadFile("/big")
	if sg[0] != 0 {
		t.Error("snapshot saw view write")
	}
}

func TestPathCleaning(t *testing.T) {
	s := New()
	defer s.Release()
	s.WriteFile("a//b/../c", []byte("x"))
	if _, err := s.ReadFile("/a/c"); err != nil {
		t.Errorf("cleaned path lookup failed: %v", err)
	}
}

func TestOpenFDsCount(t *testing.T) {
	s := New()
	defer s.Release()
	fd1, _ := s.Open("/a", OCreate|ORdWr)
	s.Open("/b", OCreate|ORdWr)
	if got := s.OpenFDs(); got != 2 {
		t.Errorf("OpenFDs = %d", got)
	}
	s.Close(fd1)
	if got := s.OpenFDs(); got != 1 {
		t.Errorf("OpenFDs after close = %d", got)
	}
}

// TestOffsetValidation is the regression suite for guest-controlled
// offsets: before validation, Seek near MaxInt64 followed by Write
// wrapped end = off + len(p) negative and panicked indexing a huge
// block number, and a merely-large offset made writeAt allocate block
// pointers for the whole sparse span.
func TestOffsetValidation(t *testing.T) {
	s := New()
	defer s.Release()
	fd, _ := s.Open("/f", OCreate|ORdWr)
	s.Write(fd, []byte("seed"))

	const maxInt64 = int64(^uint64(0) >> 1)
	if _, err := s.Seek(fd, maxInt64-1, SeekSet); !errors.Is(err, ErrInvalid) {
		t.Errorf("Seek(MaxInt64-1) = %v, want ErrInvalid", err)
	}
	if _, err := s.Seek(fd, MaxFileSize+1, SeekSet); !errors.Is(err, ErrInvalid) {
		t.Errorf("Seek(MaxFileSize+1) = %v, want ErrInvalid", err)
	}
	if _, err := s.Seek(fd, -5, SeekSet); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative Seek = %v, want ErrInvalid", err)
	}
	if _, err := s.Seek(fd, -maxInt64, SeekCur); !errors.Is(err, ErrInvalid) {
		t.Errorf("Seek(-MaxInt64, cur) = %v, want ErrInvalid", err)
	}
	if _, err := s.Seek(fd, 0, 99); !errors.Is(err, ErrInvalid) {
		t.Errorf("bad whence = %v, want ErrInvalid", err)
	}

	// A rejected seek must leave the descriptor's offset untouched.
	if off, err := s.Seek(fd, 0, SeekCur); off != 4 || err != nil {
		t.Fatalf("offset after rejected seeks = %d, %v; want 4", off, err)
	}

	// The boundary itself is seekable, but writing there exceeds the cap.
	if off, err := s.Seek(fd, MaxFileSize, SeekSet); off != MaxFileSize || err != nil {
		t.Fatalf("Seek(MaxFileSize) = %d, %v", off, err)
	}
	if _, err := s.Write(fd, []byte("x")); !errors.Is(err, ErrTooBig) {
		t.Errorf("Write at MaxFileSize = %v, want ErrTooBig", err)
	}
	// Reads past EOF at a valid offset still just hit EOF.
	if _, err := s.Read(fd, make([]byte, 8)); err != io.EOF {
		t.Errorf("Read at MaxFileSize = %v, want io.EOF", err)
	}
	// The rejected write must not have grown the file.
	if sz, _ := s.Stat("/f"); sz != 4 {
		t.Errorf("size after rejected write = %d, want 4", sz)
	}

	// O_APPEND computes the cap against the file end, not the fd offset:
	// an append through a descriptor parked at MaxFileSize still lands at
	// the (tiny) file size and succeeds.
	afd, _ := s.Open("/f", OWrOnly|OAppend)
	if _, err := s.Seek(afd, MaxFileSize, SeekSet); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(afd, []byte("ok")); err != nil {
		t.Errorf("append within bound = %v", err)
	}
	if sz, _ := s.Stat("/f"); sz != 6 {
		t.Errorf("size after append = %d, want 6", sz)
	}
}

func TestWriteFileBound(t *testing.T) {
	s := New()
	defer s.Release()
	s.WriteFile("/keep", []byte("intact"))

	// MaxFileSize+1 bytes of untouched zero pages: the slice is virtual
	// until written, and WriteFile must reject it before writing anything.
	huge := make([]byte, MaxFileSize+1)
	if err := s.WriteFile("/keep", huge); !errors.Is(err, ErrTooBig) {
		t.Fatalf("oversized WriteFile = %v, want ErrTooBig", err)
	}
	// The rejected write must not have replaced or truncated the file.
	if b, err := s.ReadFile("/keep"); err != nil || string(b) != "intact" {
		t.Errorf("file after rejected WriteFile = %q, %v; want intact", b, err)
	}
	if err := s.WriteFile("/new", huge); !errors.Is(err, ErrTooBig) {
		t.Fatalf("oversized WriteFile (new path) = %v, want ErrTooBig", err)
	}
	if _, err := s.Stat("/new"); !errors.Is(err, ErrNotExist) {
		t.Errorf("rejected WriteFile created the file: %v", err)
	}

	// A normal-sized WriteFile still succeeds after the rejections.
	if err := s.WriteFile("/small", huge[:4]); err != nil {
		t.Errorf("small WriteFile = %v", err)
	}
}

// TestSnapshotExportAndFDs covers the persistence tier's view of a frozen
// image: per-file block export (holes included) and the descriptor table.
func TestSnapshotExportAndFDs(t *testing.T) {
	v := New()
	if err := v.WriteFile("/a", bytes.Repeat([]byte{1}, BlockSize+10)); err != nil {
		t.Fatal(err)
	}
	if err := v.WriteFile("/empty", nil); err != nil {
		t.Fatal(err)
	}
	fd, err := v.Open("/a", ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Seek(fd, 5, SeekSet); err != nil {
		t.Fatal(err)
	}
	sn := v.Snapshot()
	defer sn.Release()
	defer v.Release()

	imgs := sn.Export()
	if len(imgs) != 2 || imgs[0].Path != "/a" || imgs[1].Path != "/empty" {
		t.Fatalf("export = %+v", imgs)
	}
	a := imgs[0]
	if a.Size != BlockSize+10 || len(a.Blocks) != 2 || a.Blocks[0] == nil || a.Blocks[1] == nil {
		t.Fatalf("/a image: size=%d blocks=%d", a.Size, len(a.Blocks))
	}
	if a.Blocks[0][0] != 1 || a.Blocks[1][9] != 1 || a.Blocks[1][10] != 0 {
		t.Error("/a block content wrong")
	}
	if e := imgs[1]; e.Size != 0 || len(e.Blocks) != 0 {
		t.Fatalf("/empty image: %+v", e)
	}
	fds := sn.FDs()
	if len(fds) != 1 || fds[0].Path != "/a" || fds[0].Off != 5 || !fds[0].Open {
		t.Fatalf("fds = %+v", fds)
	}

	// SetFDs rebuilds an equivalent descriptor table on a fresh view.
	re := New()
	if err := re.WriteFile("/a", bytes.Repeat([]byte{1}, BlockSize+10)); err != nil {
		t.Fatal(err)
	}
	re.SetFDs(fds)
	defer re.Release()
	if n, err := re.Seek(3, 0, SeekCur); err != nil || n != 5 {
		t.Errorf("restored fd offset = %d, %v", n, err)
	}
}

// TestImportFilePreservesHoles: ImportFile is Export's inverse — holes
// stay holes (resident footprint unchanged), content round-trips, and a
// malformed block table is rejected.
func TestImportFilePreservesHoles(t *testing.T) {
	src := New()
	fd, err := src.Open("/sparse", OWrOnly|OCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Seek(fd, 3*BlockSize, SeekSet); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Write(fd, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	sn := src.Snapshot()
	imgs := sn.Export()
	if len(imgs) != 1 || imgs[0].Blocks[0] != nil || imgs[0].Blocks[3] == nil {
		t.Fatalf("export shape: %+v", imgs)
	}

	dst := New()
	if err := dst.ImportFile(imgs[0]); err != nil {
		t.Fatal(err)
	}
	dst.SetFDs(sn.FDs()) // as store.Load does, so the images compare whole
	want, _ := src.ReadFile("/sparse")
	got, err := dst.ReadFile("/sparse")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("content round-trip: %d vs %d bytes, %v", len(got), len(want), err)
	}
	dsn := dst.Snapshot()
	sp, ss := sn.Footprint()
	dp, ds := dsn.Footprint()
	if sp+ss != dp+ds {
		t.Errorf("resident bytes changed across import: %d vs %d (hole materialized?)", sp+ss, dp+ds)
	}
	if sn.ContentHash() != dsn.ContentHash() {
		t.Error("content hash changed across import")
	}
	dsn.Release()
	sn.Release()
	src.Release()
	dst.Release()

	bad := New()
	defer bad.Release()
	if err := bad.ImportFile(FileImage{Path: "/x", Size: 2 * BlockSize, Blocks: make([]*[BlockSize]byte, 1)}); err == nil {
		t.Error("inconsistent block table accepted")
	}
	if err := bad.ImportFile(FileImage{Path: "/x", Size: MaxFileSize + 1}); err == nil {
		t.Error("oversized import accepted")
	}
}

// TestContentHashHoleEqualsZeroBlock: a hole and a resident all-zero
// block are guest-indistinguishable, so they must hash identically —
// the "equal iff a guest could not tell them apart" contract.
func TestContentHashHoleEqualsZeroBlock(t *testing.T) {
	hash := func(build func(*FS)) [32]byte {
		v := New()
		defer v.Release()
		build(v)
		sn := v.Snapshot()
		defer sn.Release()
		return sn.ContentHash()
	}
	// Hole in block 0: seek past it, write block 1.
	holey := hash(func(v *FS) {
		fd, _ := v.Open("/f", OWrOnly|OCreate)
		v.Seek(fd, BlockSize, SeekSet)
		v.Write(fd, []byte("data"))
	})
	// Same logical bytes with block 0 resident (explicit zeroes), ending
	// in the identical fd state.
	dense := hash(func(v *FS) {
		fd, _ := v.Open("/f", OWrOnly|OCreate)
		v.Seek(fd, BlockSize, SeekSet)
		v.Write(fd, []byte("data"))
		v.Seek(fd, 0, SeekSet)
		v.Write(fd, make([]byte, BlockSize))
		v.Seek(fd, BlockSize+4, SeekSet)
	})
	if holey != dense {
		t.Error("hole and resident zero block hash differently")
	}
}

// TestSnapshotContentHash: equal logical content hashes equal; any
// observable difference — bytes, size, fd state — changes the hash.
func TestSnapshotContentHash(t *testing.T) {
	build := func(mutate func(*FS)) [32]byte {
		v := New()
		defer v.Release()
		if err := v.WriteFile("/f", []byte("hello world")); err != nil {
			t.Fatal(err)
		}
		if mutate != nil {
			mutate(v)
		}
		sn := v.Snapshot()
		defer sn.Release()
		return sn.ContentHash()
	}
	base := build(nil)
	if again := build(nil); again != base {
		t.Error("identical images hash differently")
	}
	if got := build(func(v *FS) { v.WriteFile("/f", []byte("hello worlD")) }); got == base {
		t.Error("content change not reflected in hash")
	}
	if got := build(func(v *FS) { v.WriteFile("/g", nil) }); got == base {
		t.Error("extra file not reflected in hash")
	}
	if got := build(func(v *FS) { v.Open("/f", ORdOnly) }); got == base {
		t.Error("descriptor table not reflected in hash")
	}
}
