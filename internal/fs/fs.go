// Package fs implements the simulated file layer that lightweight snapshots
// capture: regular files stored as refcounted copy-on-write blocks, plus a
// per-candidate file-descriptor table. A snapshot takes a logical copy of
// the whole filesystem and of every open descriptor; extension steps that
// write files version them privately, so file side effects stay contained
// within a partial candidate exactly as the paper's interposition layer
// requires.
package fs

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"path"
	"sort"
	"sync"
	"sync/atomic"
)

// BlockSize is the CoW granularity for file content.
const BlockSize = 4096

type block struct {
	ref  atomic.Int32
	data [BlockSize]byte
}

func newBlock() *block {
	b := &block{}
	b.ref.Store(1)
	return b
}

// File is a regular file. Files referenced by more than one filesystem view
// (or snapshot) are frozen; mutating views clone them first.
type File struct {
	ref    atomic.Int32
	blocks []*block
	size   int64
}

func newFile() *File {
	f := &File{}
	f.ref.Store(1)
	return f
}

// Size returns the file length in bytes.
func (f *File) Size() int64 { return f.size }

func (f *File) retain() { f.ref.Add(1) }

func (f *File) release() {
	if f.ref.Add(-1) != 0 {
		return
	}
	for _, b := range f.blocks {
		if b != nil {
			b.ref.Add(-1)
		}
	}
	f.blocks = nil
}

// clone returns a private copy sharing all blocks CoW.
func (f *File) clone() *File {
	c := newFile()
	c.size = f.size
	c.blocks = make([]*block, len(f.blocks))
	copy(c.blocks, f.blocks)
	for _, b := range c.blocks {
		if b != nil {
			b.ref.Add(1)
		}
	}
	return c
}

// readAt copies up to len(p) bytes from offset off. Holes read as zeroes.
func (f *File) readAt(p []byte, off int64) int {
	if off >= f.size {
		return 0
	}
	n := int(min(int64(len(p)), f.size-off))
	for done := 0; done < n; {
		bi := int((off + int64(done)) / BlockSize)
		bo := int((off + int64(done)) % BlockSize)
		chunk := min(BlockSize-bo, n-done)
		if bi < len(f.blocks) && f.blocks[bi] != nil {
			copy(p[done:done+chunk], f.blocks[bi].data[bo:bo+chunk])
		} else {
			clear(p[done : done+chunk])
		}
		done += chunk
	}
	return n
}

// writeAt stores p at offset off, growing the file and CoW-copying shared
// blocks. The receiver must be exclusively owned (ref==1).
func (f *File) writeAt(p []byte, off int64) {
	end := off + int64(len(p))
	needBlocks := int((end + BlockSize - 1) / BlockSize)
	for len(f.blocks) < needBlocks {
		f.blocks = append(f.blocks, nil)
	}
	for done := 0; done < len(p); {
		bi := int((off + int64(done)) / BlockSize)
		bo := int((off + int64(done)) % BlockSize)
		chunk := min(BlockSize-bo, len(p)-done)
		b := f.blocks[bi]
		switch {
		case b == nil:
			b = newBlock()
			f.blocks[bi] = b
		case b.ref.Load() > 1:
			nb := newBlock()
			nb.data = b.data
			b.ref.Add(-1)
			f.blocks[bi] = nb
			b = nb
		}
		copy(b.data[bo:bo+chunk], p[done:done+chunk])
		done += chunk
	}
	if end > f.size {
		f.size = end
	}
}

// truncate sets the file size; the receiver must be exclusively owned.
func (f *File) truncate(size int64) {
	if size < f.size {
		keep := int((size + BlockSize - 1) / BlockSize)
		for i := keep; i < len(f.blocks); i++ {
			if f.blocks[i] != nil {
				f.blocks[i].ref.Add(-1)
				f.blocks[i] = nil
			}
		}
		f.blocks = f.blocks[:keep]
		// Zero the tail of the boundary block so regrowth reads zeroes.
		if keep > 0 && f.blocks[keep-1] != nil && size%BlockSize != 0 {
			b := f.blocks[keep-1]
			if b.ref.Load() > 1 {
				nb := newBlock()
				nb.data = b.data
				b.ref.Add(-1)
				f.blocks[keep-1] = nb
				b = nb
			}
			clear(b.data[size%BlockSize:])
		}
	}
	f.size = size
}

// Open flags (a deliberately small POSIX subset).
const (
	ORdOnly = 0x0
	OWrOnly = 0x1
	ORdWr   = 0x2
	OCreate = 0x40
	OTrunc  = 0x200
	OAppend = 0x400

	accessMask = 0x3
)

// FD is one open-file description: path-addressed so CoW file replacement
// under the descriptor stays coherent.
type FD struct {
	Path  string
	Off   int64
	Flags int
	Open  bool
}

// Errors mirroring the errno the interposition layer reports to guests.
var (
	ErrNotExist = fmt.Errorf("fs: no such file")
	ErrBadFD    = fmt.Errorf("fs: bad file descriptor")
	ErrPerm     = fmt.Errorf("fs: operation not permitted")
	ErrInvalid  = fmt.Errorf("fs: invalid offset")
	ErrTooBig   = fmt.Errorf("fs: file too large")
)

// MaxFileSize bounds a regular file's logical size (1 GiB). Offsets are
// guest-controlled (Seek then Write through the interposition layer), so
// they must be rejected here before block arithmetic can overflow int64.
// The block table is dense, so this bound also caps what a single sparse
// guest write can make the host allocate (~2 MiB of block pointers).
const MaxFileSize = int64(1) << 30

// FS is one mutable filesystem view, owned by a single execution context.
// FD numbers 0..2 are reserved for the stdio streams handled by the
// interposition layer; file descriptors start at 3.
type FS struct {
	inodes map[string]*File
	fds    []FD // index 0 ↔ fd 3
}

// New returns an empty filesystem.
func New() *FS {
	return &FS{inodes: make(map[string]*File)}
}

// FirstFD is the lowest fd number Open can return.
const FirstFD = 3

func cleanPath(p string) string { return path.Clean("/" + p) }

// WriteFile creates (or replaces) a file with the given content — the host
// API for seeding inputs before a run and for parking serialized state
// inside a candidate (service layer). It enforces the same MaxFileSize
// bound as the fd-based Write path: oversized content is rejected with
// ErrTooBig before any mutation, so a failed WriteFile leaves the view
// untouched.
func (s *FS) WriteFile(name string, data []byte) error {
	if int64(len(data)) > MaxFileSize {
		return ErrTooBig
	}
	name = cleanPath(name)
	if old, ok := s.inodes[name]; ok {
		old.release()
	}
	f := newFile()
	f.writeAt(data, 0)
	f.truncate(int64(len(data)))
	s.inodes[name] = f
	return nil
}

// UpdateFile replaces name's content with data, rewriting only the blocks
// whose bytes actually change. Unmodified blocks stay physically shared
// with snapshots that hold the previous version — the path the service
// layer uses to park serialized solver state, where an extension changes
// a suffix of the file and the common prefix keeps being shared by the
// whole sibling set. Enforces the MaxFileSize bound like WriteFile; on
// failure the view is untouched. Creates the file if absent.
func (s *FS) UpdateFile(name string, data []byte) error {
	if int64(len(data)) > MaxFileSize {
		return ErrTooBig
	}
	name = cleanPath(name)
	f, ok := s.inodes[name]
	if !ok {
		return s.WriteFile(name, data)
	}
	f = s.exclusive(name, f)
	for off := 0; off < len(data); off += BlockSize {
		chunk := data[off:min(off+BlockSize, len(data))]
		bi := off / BlockSize
		if bi < len(f.blocks) && f.blocks[bi] != nil &&
			bytes.Equal(f.blocks[bi].data[:len(chunk)], chunk) {
			continue // identical: keep sharing the old block
		}
		f.writeAt(chunk, int64(off))
	}
	f.truncate(int64(len(data)))
	return nil
}

// ReadFile returns the full content of a file — the host inspection API.
func (s *FS) ReadFile(name string) ([]byte, error) {
	f, ok := s.inodes[cleanPath(name)]
	if !ok {
		return nil, ErrNotExist
	}
	out := make([]byte, f.size)
	f.readAt(out, 0)
	return out, nil
}

// List returns all file paths in sorted order.
func (s *FS) List() []string {
	out := make([]string, 0, len(s.inodes))
	for p := range s.inodes {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Stat returns the size of a file.
func (s *FS) Stat(name string) (int64, error) {
	f, ok := s.inodes[cleanPath(name)]
	if !ok {
		return 0, ErrNotExist
	}
	return f.size, nil
}

// Unlink removes a file.
func (s *FS) Unlink(name string) error {
	name = cleanPath(name)
	f, ok := s.inodes[name]
	if !ok {
		return ErrNotExist
	}
	f.release()
	delete(s.inodes, name)
	return nil
}

// Open opens name and returns an fd number (>= FirstFD).
func (s *FS) Open(name string, flags int) (int, error) {
	name = cleanPath(name)
	f, exists := s.inodes[name]
	if !exists {
		if flags&OCreate == 0 {
			return 0, ErrNotExist
		}
		f = newFile()
		s.inodes[name] = f
	} else if flags&OTrunc != 0 && flags&accessMask != ORdOnly {
		s.exclusive(name, f).truncate(0)
	}
	fd := FD{Path: name, Flags: flags, Open: true}
	for i := range s.fds {
		if !s.fds[i].Open {
			s.fds[i] = fd
			return i + FirstFD, nil
		}
	}
	s.fds = append(s.fds, fd)
	return len(s.fds) - 1 + FirstFD, nil
}

func (s *FS) fd(n int) (*FD, error) {
	i := n - FirstFD
	if i < 0 || i >= len(s.fds) || !s.fds[i].Open {
		return nil, ErrBadFD
	}
	return &s.fds[i], nil
}

// exclusive returns a privately owned File for name, cloning a shared one.
func (s *FS) exclusive(name string, f *File) *File {
	if f.ref.Load() > 1 {
		c := f.clone()
		f.release()
		s.inodes[name] = c
		return c
	}
	return f
}

// Read reads from an open descriptor, advancing its offset.
func (s *FS) Read(fdnum int, p []byte) (int, error) {
	fd, err := s.fd(fdnum)
	if err != nil {
		return 0, err
	}
	if fd.Flags&accessMask == OWrOnly {
		return 0, ErrPerm
	}
	if fd.Off < 0 {
		return 0, ErrInvalid
	}
	f, ok := s.inodes[fd.Path]
	if !ok {
		return 0, ErrNotExist
	}
	n := f.readAt(p, fd.Off)
	fd.Off += int64(n)
	if n == 0 && len(p) > 0 {
		return 0, io.EOF
	}
	return n, nil
}

// Write writes to an open descriptor, advancing its offset. The write is
// contained in this view: snapshots and other views keep the old content.
func (s *FS) Write(fdnum int, p []byte) (int, error) {
	fd, err := s.fd(fdnum)
	if err != nil {
		return 0, err
	}
	if fd.Flags&accessMask == ORdOnly {
		return 0, ErrPerm
	}
	f, ok := s.inodes[fd.Path]
	if !ok {
		return 0, ErrNotExist
	}
	off := fd.Off
	if fd.Flags&OAppend != 0 {
		off = f.size
	}
	// Validate before cloning: a rejected write must not dirty the view.
	if off < 0 {
		return 0, ErrInvalid
	}
	if int64(len(p)) > MaxFileSize-off {
		return 0, ErrTooBig
	}
	f = s.exclusive(fd.Path, f)
	f.writeAt(p, off)
	fd.Off = off + int64(len(p))
	return len(p), nil
}

// Seek whence values.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Seek repositions an open descriptor.
func (s *FS) Seek(fdnum int, off int64, whence int) (int64, error) {
	fd, err := s.fd(fdnum)
	if err != nil {
		return 0, err
	}
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = fd.Off
	case SeekEnd:
		f, ok := s.inodes[fd.Path]
		if !ok {
			return 0, ErrNotExist
		}
		base = f.size
	default:
		return 0, fmt.Errorf("fs: bad whence %d: %w", whence, ErrInvalid)
	}
	// base is in [0, MaxFileSize], so base+off overflows int64 only when
	// off is near MaxInt64 — and any such position is far beyond
	// MaxFileSize anyway. Checking against the bound with subtraction
	// keeps the arithmetic overflow-free.
	if off < -base || off > MaxFileSize-base {
		return 0, ErrInvalid
	}
	fd.Off = base + off
	return fd.Off, nil
}

// Close closes an open descriptor.
func (s *FS) Close(fdnum int) error {
	fd, err := s.fd(fdnum)
	if err != nil {
		return err
	}
	fd.Open = false
	return nil
}

// OpenFDs returns the number of open descriptors (diagnostics).
func (s *FS) OpenFDs() int {
	n := 0
	for _, fd := range s.fds {
		if fd.Open {
			n++
		}
	}
	return n
}

// SetFDs replaces the descriptor table wholesale (index 0 ↔ fd 3) — the
// reload path of the persistence tier, which rebuilds a view file by file
// and then restores the open-descriptor state the manifest recorded.
func (s *FS) SetFDs(fds []FD) {
	s.fds = make([]FD, len(fds))
	copy(s.fds, fds)
}

// Release drops this view's references. The view must not be used after.
func (s *FS) Release() {
	for _, f := range s.inodes {
		f.release()
	}
	s.inodes = nil
	s.fds = nil
}

// Snapshot captures an immutable logical copy of the filesystem and of the
// descriptor table. Cost is O(#files) pointer copies; content is shared
// copy-on-write.
func (s *FS) Snapshot() *Snapshot {
	inodes := make(map[string]*File, len(s.inodes))
	for p, f := range s.inodes {
		f.retain()
		inodes[p] = f
	}
	fds := make([]FD, len(s.fds))
	copy(fds, s.fds)
	return &Snapshot{inodes: inodes, fds: fds}
}

// Snapshot is a frozen filesystem image: part of a partial candidate.
type Snapshot struct {
	inodes map[string]*File
	fds    []FD

	// ContentHash memoization: the image is frozen, so the hash is
	// computed at most once no matter how many spills consult it (every
	// demotion records its own and its parent's image hash).
	hashOnce sync.Once
	hash     [32]byte
}

// ImportFile installs (or replaces) a file from its exported image form:
// logical size plus resident blocks in index order, nil meaning a hole.
// The inverse of Snapshot.Export, used by the persistence tier to rebuild
// a demoted image — unlike WriteFile it never materializes holes, so a
// sparse file reloads at its resident footprint, not its logical size.
// Block contents are copied. Enforces the MaxFileSize bound and the dense
// block-table shape decodeManifest guarantees; on error the view is
// untouched.
func (s *FS) ImportFile(img FileImage) error {
	if img.Size < 0 || img.Size > MaxFileSize {
		return ErrTooBig
	}
	if int64(len(img.Blocks)) != (img.Size+BlockSize-1)/BlockSize {
		return fmt.Errorf("fs: import %q: %d blocks inconsistent with size %d: %w",
			img.Path, len(img.Blocks), img.Size, ErrInvalid)
	}
	f := newFile()
	f.size = img.Size
	f.blocks = make([]*block, len(img.Blocks))
	for i, src := range img.Blocks {
		if src == nil {
			continue
		}
		b := newBlock()
		b.data = *src
		f.blocks[i] = b
	}
	// Keep truncate's invariant: the final block's tail past size reads
	// (and stays) zero. Exported images already satisfy it; hand-built
	// ones may not.
	if k := len(f.blocks); k > 0 && f.blocks[k-1] != nil && img.Size%BlockSize != 0 {
		clear(f.blocks[k-1].data[img.Size%BlockSize:])
	}
	name := cleanPath(img.Path)
	if old, ok := s.inodes[name]; ok {
		old.release()
	}
	s.inodes[name] = f
	return nil
}

// Materialize builds a fresh mutable view seeded from the snapshot.
func (sn *Snapshot) Materialize() *FS {
	inodes := make(map[string]*File, len(sn.inodes))
	for p, f := range sn.inodes {
		f.retain()
		inodes[p] = f
	}
	fds := make([]FD, len(sn.fds))
	copy(fds, sn.fds)
	return &FS{inodes: inodes, fds: fds}
}

// ReadFile reads a file out of the frozen image (solution extraction).
func (sn *Snapshot) ReadFile(name string) ([]byte, error) {
	f, ok := sn.inodes[cleanPath(name)]
	if !ok {
		return nil, ErrNotExist
	}
	out := make([]byte, f.size)
	f.readAt(out, 0)
	return out, nil
}

// Footprint reports the resident bytes of the frozen image, split into
// bytes backed by storage physically shared with other views or snapshots
// and privately owned bytes. A file whose inode is referenced by several
// images is shared wholesale; a privately cloned inode still shares every
// block it has not rewritten (block-level CoW).
func (sn *Snapshot) Footprint() (privateBytes, sharedBytes int64) {
	for _, f := range sn.inodes {
		wholeFileShared := f.ref.Load() > 1
		for _, b := range f.blocks {
			if b == nil {
				continue
			}
			if wholeFileShared || b.ref.Load() > 1 {
				sharedBytes += BlockSize
			} else {
				privateBytes += BlockSize
			}
		}
	}
	return privateBytes, sharedBytes
}

// FDs returns a copy of the frozen descriptor table (index 0 ↔ fd 3).
// The persistence tier serializes it so a reloaded candidate resumes with
// the same open files and offsets.
func (sn *Snapshot) FDs() []FD {
	out := make([]FD, len(sn.fds))
	copy(out, sn.fds)
	return out
}

// FileImage is one file of an exported frozen image: its logical size and
// its resident blocks in index order (nil = hole, reads as zeroes). Block
// contents are the snapshot's own backing arrays — callers must treat them
// as read-only and must not hold them past the snapshot's Release.
type FileImage struct {
	Path   string
	Size   int64
	Blocks []*[BlockSize]byte
}

// Export walks the frozen image in path order — the block-level view the
// persistence tier chunks and content-hashes when a snapshot is demoted to
// disk. O(#files + #blocks) pointer work; no content is copied.
func (sn *Snapshot) Export() []FileImage {
	out := make([]FileImage, 0, len(sn.inodes))
	for _, p := range sn.Files() {
		f := sn.inodes[p]
		img := FileImage{Path: p, Size: f.size, Blocks: make([]*[BlockSize]byte, len(f.blocks))}
		for i, b := range f.blocks {
			if b != nil {
				img.Blocks[i] = &b.data
			}
		}
		out = append(out, img)
	}
	return out
}

// zeroBlock is the all-zero block content, for hole-equivalence checks.
var zeroBlock [BlockSize]byte

// ContentHash returns a stable SHA-256 over the frozen image's logical
// content: paths, sizes, block residency and bytes, and the descriptor
// table. Two snapshots hash equal iff a guest could not tell them apart
// through the file API — the identity the persistence tier records as a
// manifest's parent hash and verifies after a reload round-trip. Because
// a hole and a resident all-zero block read identically, the hash treats
// them identically too (all-zero blocks are skipped like holes); without
// that, guest-indistinguishable images could hash apart. The image is
// frozen, so the result is memoized.
func (sn *Snapshot) ContentHash() [32]byte {
	sn.hashOnce.Do(func() { sn.hash = sn.contentHash() })
	return sn.hash
}

func (sn *Snapshot) contentHash() [32]byte {
	h := sha256.New()
	var word [8]byte
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(word[:], v)
		h.Write(word[:])
	}
	for _, p := range sn.Files() {
		f := sn.inodes[p]
		putU64(uint64(len(p)))
		io.WriteString(h, p)
		putU64(uint64(f.size))
		for i, b := range f.blocks {
			// Only bytes within the logical size are observable; the last
			// block's tail past f.size is zeroed by truncate, so hashing
			// full resident blocks stays content-stable.
			if b == nil || b.data == zeroBlock {
				continue
			}
			putU64(uint64(i))
			h.Write(b.data[:])
		}
	}
	putU64(uint64(len(sn.fds)))
	for _, fd := range sn.fds {
		putU64(uint64(len(fd.Path)))
		io.WriteString(h, fd.Path)
		putU64(uint64(fd.Off))
		putU64(uint64(fd.Flags))
		open := uint64(0)
		if fd.Open {
			open = 1
		}
		putU64(open)
	}
	var sum [32]byte
	h.Sum(sum[:0])
	return sum
}

// Files returns the sorted list of paths in the frozen image.
func (sn *Snapshot) Files() []string {
	out := make([]string, 0, len(sn.inodes))
	for p := range sn.inodes {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Release drops the snapshot's references.
func (sn *Snapshot) Release() {
	for _, f := range sn.inodes {
		f.release()
	}
	sn.inodes = nil
	sn.fds = nil
}
