package lockguard_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/lockguard"
)

func TestLockguard(t *testing.T) {
	antest.Run(t, "../testdata", lockguard.Analyzer, "locktest")
}
