// Package lockguard implements reprolint's `guarded_by` annotation
// checker. A struct field annotated `// guarded_by: mu` names a sibling
// mutex field; every read or write of the annotated field must occur
// either
//
//   - in a function annotated `// locks_held: mu` (the caller contract
//     — used for helpers documented "callers hold sh.mu"), or
//   - at a program point where the mutex is held on every incoming
//     control-flow path: a `base.mu.Lock()` / `base.mu.RLock()` on the
//     same base expression, with no later non-deferred Unlock/RUnlock
//     on that path.
//
// Held-state is tracked path-sensitively over the function's CFG, so
// the common `if err { sh.mu.Unlock(); return err }` early-exit does
// not poison the fall-through path. Matching is syntactic per base
// expression (`sh.mu.Lock()` guards `sh.entries` because both bases
// print as "sh"), deferred unlocks never clear held state, and function
// literals are independent scopes — except that a literal inherits the
// locks_held contract of the declaration it is defined in, for the
// synchronous-callback idiom. A literal handed to a `go` statement is
// excluded from that inheritance: it runs on another goroutine, after
// the caller may have released everything the contract promised, so
// its guarded accesses must re-acquire the mutex (or carry a
// //lint:ignore with the reason the schedule is safe). Syntactic lock
// state still never crosses into any literal. This catches the real bug class — a
// new code path touching a sharded map without taking the shard lock —
// without attempting whole-program alias analysis. Accesses whose guard
// the checker cannot see (a lock taken under a different name for the
// same object, single-threaded constructors) are silenced with
// `//lint:ignore lockguard <reason>`.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis/astcfg"
	"repro/internal/analysis/reprolint"
)

// Analyzer is the lockguard analyzer.
var Analyzer = &reprolint.Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated guarded_by must be accessed with their mutex held",
	Run:  run,
}

func run(pass *reprolint.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		escaped := goEscapedLits(file)
		for _, scope := range reprolint.FuncScopes(file) {
			checkScope(pass, scope, guards, escaped)
		}
	}
	return nil
}

// goEscapedLits collects the function literals handed to a go
// statement — as the spawned function or as one of its arguments.
// These run asynchronously, so the enclosing declaration's locks_held
// contract must not extend into them.
func goEscapedLits(file *ast.File) map[*ast.FuncLit]bool {
	out := map[*ast.FuncLit]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
			out[lit] = true
		}
		for _, a := range g.Call.Args {
			if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
				out[lit] = true
			}
		}
		return true
	})
	return out
}

// collectGuards maps each annotated field's types.Var to the mutex field
// names guarding it.
func collectGuards(pass *reprolint.Pass) map[*types.Var][]string {
	out := map[*types.Var][]string{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				names := reprolint.FieldGuards(f)
				if len(names) == 0 {
					continue
				}
				for _, id := range f.Names {
					if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
						out[v] = names
					}
				}
			}
			return true
		})
	}
	return out
}

// lockEvent is one syntactic mutex transition inside a scope.
type lockEvent struct {
	pos      token.Pos
	base     string // printed base expression owning the mutex
	mu       string // mutex field name
	acquire  bool   // Lock/RLock vs Unlock/RUnlock
	deferred bool
}

// access is one read/write of a guarded field.
type access struct {
	sel  *ast.SelectorExpr
	base string
	mus  []string
}

func checkScope(pass *reprolint.Pass, scope reprolint.FuncScope, guards map[*types.Var][]string, escaped map[*ast.FuncLit]bool) {
	encl := scope.Encl
	if scope.Lit != nil && escaped[scope.Lit] {
		// The literal runs on another goroutine; by the time it does,
		// the caller may have released everything locks_held promised.
		encl = nil
	}
	contract := map[string]bool{} // locks_held: mutex held for any base
	for _, fd := range []*ast.FuncDecl{scope.Decl, encl} {
		if fd == nil {
			continue
		}
		for _, mu := range reprolint.FuncAnnotation(fd).LocksHeld {
			contract[mu] = true
		}
	}

	var accesses []access
	reprolint.InspectShallow(scope.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if !ok {
			return true
		}
		if mus, guarded := guards[v]; guarded {
			accesses = append(accesses, access{
				sel:  sel,
				base: reprolint.ExprString(pass.Fset, sel.X),
				mus:  mus,
			})
		}
		return true
	})
	if len(accesses) == 0 {
		return
	}

	events := collectLockEvents(pass, scope)
	graph := astcfg.Build(scope.Body)

	for _, a := range accesses {
		ok := false
		for _, mu := range a.mus {
			if contract[mu] || alwaysHeldAt(graph, events, a.sel.Pos(), a.base, mu) {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(a.sel.Pos(), "access to %s.%s (guarded_by: %s) without holding the mutex in %s",
				a.base, a.sel.Sel.Name, a.mus[0], scope.Name())
		}
	}
}

// collectLockEvents finds every `<base>.<mu>.Lock()`-family call in the
// scope, excluding nested function literals.
func collectLockEvents(pass *reprolint.Pass, scope reprolint.FuncScope) []lockEvent {
	var events []lockEvent
	record := func(call *ast.CallExpr, deferred bool) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		var acquire bool
		switch sel.Sel.Name {
		case "Lock", "RLock":
			acquire = true
		case "Unlock", "RUnlock":
			acquire = false
		default:
			return
		}
		muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return
		}
		events = append(events, lockEvent{
			pos:      call.Pos(),
			base:     reprolint.ExprString(pass.Fset, muSel.X),
			mu:       muSel.Sel.Name,
			acquire:  acquire,
			deferred: deferred,
		})
	}
	reprolint.InspectShallow(scope.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			record(n.Call, true)
			return false // args of the deferred call can't lock anything here
		case *ast.CallExpr:
			record(n, false)
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

// alwaysHeldAt reports whether base.mu is held at pos on every
// control-flow path from function entry. Each CFG block is explored at
// most once per incoming held-state (two states per block, so the walk
// terminates); a path that reaches the access position with the mutex
// not held refutes the claim. Deferred unlocks run at function exit and
// never clear held state mid-body.
func alwaysHeldAt(g *astcfg.Graph, events []lockEvent, pos token.Pos, base, mu string) bool {
	// relevant returns the scope events for this base.mu inside [lo, hi].
	relevant := func(lo, hi token.Pos) []lockEvent {
		var out []lockEvent
		for _, e := range events {
			if e.pos >= lo && e.pos <= hi && e.base == base && e.mu == mu && !e.deferred {
				out = append(out, e)
			}
		}
		return out
	}

	type key struct {
		blk  *astcfg.Block
		held bool
	}
	visited := map[key]bool{}
	var walk func(blk *astcfg.Block, held bool) bool // true = unheld arrival found
	walk = func(blk *astcfg.Block, held bool) bool {
		k := key{blk, held}
		if visited[k] {
			return false
		}
		visited[k] = true
		for _, n := range blk.Nodes {
			lo, hi := n.Pos(), n.End()
			if lo <= pos && pos <= hi {
				// The access lives in this node: apply the node's events
				// that precede it, then test.
				h := held
				for _, e := range relevant(lo, hi) {
					if e.pos < pos {
						h = e.acquire
					}
				}
				if !h {
					return true
				}
			}
			for _, e := range relevant(lo, hi) {
				held = e.acquire
			}
		}
		if blk.Return != nil || blk.Panics || blk.Exit {
			return false
		}
		for _, s := range blk.Succs {
			if walk(s, held) {
				return true
			}
		}
		return false
	}
	return !walk(g.Entry, false)
}
