package lockorder_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	antest.Run(t, "../testdata", lockorder.Analyzer, "lockordertest")
}
