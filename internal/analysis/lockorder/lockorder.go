// Package lockorder implements reprolint's whole-program deadlock
// analyzer. It derives a global lock-acquisition graph and enforces
// three disciplines over it:
//
//  1. Cycle freedom. Every mutex in the program belongs to a lock
//     *class* — a (struct type, field) pair for mutex fields, a package
//     variable, or a function-local declaration. While class A is
//     syntactically held, acquiring class B adds the edge A→B; calling a
//     function that (transitively, over the call graph) may acquire B
//     adds the same edge. A cycle among classes — including a self-edge,
//     i.e. re-acquiring a class already held — is a potential deadlock
//     and is reported at a witnessing acquisition site.
//
//  2. Rank order. A `// lock_rank: <int>` directive on a mutex
//     declaration fixes the class's position in the global acquisition
//     order. While a lock of rank r is held, only locks of strictly
//     greater rank may be acquired. Unranked classes are exempt from the
//     rank rule but still participate in cycle detection.
//
//  3. No blocking under fast-path locks. A `// no_block: <reason>`
//     directive on a mutex declaration promises its critical sections
//     never block: no channel send/receive (outside a select with a
//     default), no select without a default, no further Lock/RLock of
//     any class, no Wait or Sleep — directly or through any resolved
//     callee.
//
// Soundness holes, deliberate and documented in DESIGN.md: the held-set
// walk is syntactic (a lock passed by pointer and locked through an
// alias is a different class), deferred and goroutine-spawned calls do
// not propagate acquisition or blocking facts, immediately-invoked
// function literals are not charged to their caller's held set, and
// unresolved callees (function values, externals) contribute no facts —
// lockorder under-approximates there rather than drowning the build in
// false positives. Findings are suppressed with
// `//lint:ignore lockorder <reason>`.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/astcfg"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/reprolint"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &reprolint.Analyzer{
	Name:       "lockorder",
	Doc:        "global lock-acquisition graph: cycles, rank inversions, and blocking under no_block locks",
	RunProgram: run,
}

// class is one lock class.
type class struct {
	name    string // display name, e.g. "service.Service.mu"
	rank    int
	hasRank bool
	noBlock bool
}

// edge is a witnessed held→acquired pair.
type edge struct {
	from, to *class
	pos      token.Pos // acquisition (or call) site establishing it
}

type analysis struct {
	pass    *reprolint.ProgramPass
	graph   *callgraph.Graph
	classes map[types.Object]*class            // mutex object → class
	fields  map[types.Object]map[string]*class // struct TypeName → field name → class
	mayAcq  map[*callgraph.Node]map[*class]bool
	mayBlk  map[*callgraph.Node]bool
	edges   map[*class]map[*class]token.Pos
}

func run(pass *reprolint.ProgramPass) error {
	a := &analysis{
		pass:    pass,
		graph:   callgraph.Build(pass.Prog),
		classes: map[types.Object]*class{},
		fields:  map[types.Object]map[string]*class{},
		edges:   map[*class]map[*class]token.Pos{},
	}
	a.collectClasses()
	a.computeMayAcquire()
	a.computeMayBlock()
	for _, n := range a.graph.Nodes {
		a.walkNode(n)
	}
	a.reportRanks()
	a.reportCycles()
	return nil
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// collectClasses registers every mutex-typed struct field and
// package-level variable in the program, parsing lock_rank/no_block
// directives from the attached comments.
func (a *analysis) collectClasses() {
	for _, pkg := range a.pass.Prog.Pkgs {
		info := pkg.TypesInfo
		pkgName := pkg.Types.Name()
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						st, ok := sp.Type.(*ast.StructType)
						if !ok {
							continue
						}
						typeObj := info.Defs[sp.Name]
						if typeObj == nil {
							continue
						}
						for _, field := range st.Fields.List {
							tv, ok := info.Types[field.Type]
							if !ok || !isMutexType(tv.Type) {
								continue
							}
							ann := reprolint.LockAnnotation(field.Doc, field.Comment)
							for _, name := range field.Names {
								obj := info.Defs[name]
								if obj == nil {
									continue
								}
								c := &class{
									name:    fmt.Sprintf("%s.%s.%s", pkgName, sp.Name.Name, name.Name),
									rank:    ann.Rank,
									hasRank: ann.HasRank,
									noBlock: ann.NoBlock,
								}
								a.classes[obj] = c
								if a.fields[typeObj] == nil {
									a.fields[typeObj] = map[string]*class{}
								}
								a.fields[typeObj][name.Name] = c
							}
						}
					case *ast.ValueSpec:
						if gd.Tok != token.VAR {
							continue
						}
						ann := reprolint.LockAnnotation(gd.Doc, sp.Doc, sp.Comment)
						for _, name := range sp.Names {
							obj := info.Defs[name]
							if obj == nil || !isMutexType(obj.Type()) {
								continue
							}
							a.classes[obj] = &class{
								name:    fmt.Sprintf("%s.%s", pkgName, name.Name),
								rank:    ann.Rank,
								hasRank: ann.HasRank,
								noBlock: ann.NoBlock,
							}
						}
					}
				}
			}
		}
	}
}

// classOf resolves the receiver expression of a Lock/Unlock call to its
// lock class, creating a class on demand for function-local mutexes.
func (a *analysis) classOf(info *types.Info, expr ast.Expr) *class {
	var obj types.Object
	switch x := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[x.Sel] // package-qualified var
		}
	case *ast.Ident:
		obj = info.Uses[x]
	}
	if obj == nil || !isMutexType(obj.Type()) {
		return nil
	}
	if c, ok := a.classes[obj]; ok {
		return c
	}
	pos := a.pass.Prog.Fset.Position(obj.Pos())
	c := &class{name: fmt.Sprintf("%s (local, %s:%d)", obj.Name(), pos.Filename, pos.Line)}
	a.classes[obj] = c
	return c
}

// lockEvent is one Lock/Unlock-family call inside a statement.
type lockEvent struct {
	pos     token.Pos
	class   *class
	acquire bool
	read    bool
}

var acquireNames = map[string]bool{"Lock": true, "RLock": true}
var releaseNames = map[string]bool{"Unlock": true, "RUnlock": true}

// stmtOps gathers, in position order, the lock events and resolved call
// edges inside one CFG statement node, without descending into nested
// function literals (their bodies are other call-graph nodes).
type stmtOp struct {
	pos   token.Pos
	lock  *lockEvent
	call  *ast.CallExpr // non-lock call site, for interprocedural facts
	block string        // non-empty: a directly blocking construct (description)
}

func (a *analysis) stmtOps(info *types.Info, n ast.Node, nonBlocking map[ast.Node]bool) []stmtOp {
	var ops []stmtOp
	var walk func(m ast.Node)
	walk = func(m ast.Node) {
		if m == nil {
			return
		}
		switch x := m.(type) {
		case *ast.FuncLit:
			return
		case *ast.SelectStmt:
			if !hasDefault(x) {
				ops = append(ops, stmtOp{pos: x.Pos(), block: "select without default"})
			}
			return // comm clauses are separate CFG nodes
		case *ast.SendStmt:
			if !nonBlocking[ast.Node(x)] {
				ops = append(ops, stmtOp{pos: x.Pos(), block: "channel send"})
			}
			walk(x.Chan)
			walk(x.Value)
			return
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !nonBlocking[ast.Node(x)] {
				ops = append(ops, stmtOp{pos: x.Pos(), block: "channel receive"})
			}
			walk(x.X)
			return
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				name := sel.Sel.Name
				if (acquireNames[name] || releaseNames[name]) && len(x.Args) == 0 {
					if c := a.classOf(info, sel.X); c != nil {
						ops = append(ops, stmtOp{pos: x.Pos(), lock: &lockEvent{
							pos: x.Pos(), class: c, acquire: acquireNames[name], read: name == "RLock" || name == "RUnlock",
						}})
						walk(sel.X)
						return
					}
				}
				if name == "Wait" || name == "Sleep" {
					ops = append(ops, stmtOp{pos: x.Pos(), block: "call to " + reprolint.ExprString(a.pass.Prog.Fset, x.Fun)})
					walk(sel.X)
					for _, arg := range x.Args {
						walk(arg)
					}
					return
				}
			}
			ops = append(ops, stmtOp{pos: x.Pos(), call: x})
			walk(x.Fun)
			for _, arg := range x.Args {
				walk(arg)
			}
			return
		}
		ast.Inspect(m, func(k ast.Node) bool {
			if k == nil || k == m {
				return k == m
			}
			walk(k)
			return false
		})
	}
	walk(n)
	sort.Slice(ops, func(i, j int) bool { return ops[i].pos < ops[j].pos })
	return ops
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// nonBlockingOps marks the comm statements of select-with-default
// clauses: those channel operations never block.
func nonBlockingOps(body ast.Node) map[ast.Node]bool {
	out := map[ast.Node]bool{}
	ast.Inspect(body, func(m ast.Node) bool {
		sel, ok := m.(*ast.SelectStmt)
		if !ok || !hasDefault(sel) {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			switch comm := cc.Comm.(type) {
			case *ast.SendStmt:
				out[comm] = true
			case *ast.ExprStmt:
				out[unparenRecv(comm.X)] = true
			case *ast.AssignStmt:
				for _, r := range comm.Rhs {
					out[unparenRecv(r)] = true
				}
			}
		}
		return true
	})
	return out
}

func unparenRecv(e ast.Expr) ast.Node {
	return ast.Node(ast.Unparen(e))
}

// directFacts scans a node body once for its direct acquisitions and
// directly blocking operations.
func (a *analysis) directFacts(n *callgraph.Node) (map[*class]bool, bool) {
	acq := map[*class]bool{}
	blocks := false
	info := n.Pkg.TypesInfo
	nb := nonBlockingOps(n.Body)
	var walk func(m ast.Node)
	walk = func(m ast.Node) {
		if m == nil {
			return
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return
		}
		if sel, ok := m.(*ast.SelectStmt); ok && !hasDefault(sel) {
			blocks = true
		}
		if send, ok := m.(*ast.SendStmt); ok && !nb[ast.Node(send)] {
			blocks = true
		}
		if un, ok := m.(*ast.UnaryExpr); ok && un.Op == token.ARROW && !nb[ast.Node(un)] {
			blocks = true
		}
		if call, ok := m.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				switch {
				case acquireNames[sel.Sel.Name] && len(call.Args) == 0:
					if c := a.classOf(info, sel.X); c != nil {
						acq[c] = true
						blocks = true // acquiring any lock can block
					}
				case sel.Sel.Name == "Wait" || sel.Sel.Name == "Sleep":
					blocks = true
				}
			}
		}
		ast.Inspect(m, func(k ast.Node) bool {
			if k == nil || k == m {
				return k == m
			}
			walk(k)
			return false
		})
	}
	walk(n.Body)
	return acq, blocks
}

// computeMayAcquire finds, for every function, the lock classes it may
// acquire transitively over resolved non-go non-defer call edges.
func (a *analysis) computeMayAcquire() {
	a.mayAcq = map[*callgraph.Node]map[*class]bool{}
	a.mayBlk = map[*callgraph.Node]bool{}
	for _, n := range a.graph.Nodes {
		acq, blocks := a.directFacts(n)
		a.mayAcq[n] = acq
		a.mayBlk[n] = blocks
	}
	for changed := true; changed; {
		changed = false
		for _, n := range a.graph.Nodes {
			mine := a.mayAcq[n]
			for _, e := range n.Calls {
				if e.Go || e.Defer {
					continue
				}
				for _, callee := range e.Callees {
					for c := range a.mayAcq[callee] {
						if !mine[c] {
							mine[c] = true
							changed = true
						}
					}
					if a.mayBlk[callee] && !a.mayBlk[n] {
						a.mayBlk[n] = true
						changed = true
					}
				}
			}
		}
	}
}

// computeMayBlock is folded into computeMayAcquire (one fixpoint).
func (a *analysis) computeMayBlock() {}

// entryHeld resolves a locks_held annotation to classes of the
// receiver's struct fields.
func (a *analysis) entryHeld(n *callgraph.Node) map[*class]token.Pos {
	held := map[*class]token.Pos{}
	if n.Decl == nil || n.Decl.Recv == nil || len(n.Decl.Recv.List) == 0 {
		return held
	}
	ann := reprolint.FuncAnnotation(n.Decl)
	if len(ann.LocksHeld) == 0 {
		return held
	}
	t := n.Pkg.TypesInfo.TypeOf(n.Decl.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return held
	}
	byName := a.fields[named.Obj()]
	for _, name := range ann.LocksHeld {
		if c, ok := byName[name]; ok {
			held[c] = n.Decl.Pos()
		}
	}
	return held
}

// walkNode runs the held-set walk over one function body, recording
// acquisition edges and no_block violations.
func (a *analysis) walkNode(n *callgraph.Node) {
	info := n.Pkg.TypesInfo
	edgeOf := map[*ast.CallExpr]callgraph.Edge{}
	for _, e := range n.Calls {
		edgeOf[e.Site] = e
	}
	nb := nonBlockingOps(n.Body)
	g := astcfg.Build(n.Body)
	entry := a.entryHeld(n)

	type visitKey struct {
		b  *astcfg.Block
		fp string
	}
	visited := map[visitKey]bool{}
	reported := map[token.Pos]bool{}

	fingerprint := func(held map[*class]token.Pos) string {
		names := make([]string, 0, len(held))
		for c := range held {
			names = append(names, c.name)
		}
		sort.Strings(names)
		return strings.Join(names, "|")
	}

	noBlockHeld := func(held map[*class]token.Pos) *class {
		for c := range held {
			if c.noBlock {
				return c
			}
		}
		return nil
	}

	var walk func(b *astcfg.Block, held map[*class]token.Pos)
	walk = func(b *astcfg.Block, held map[*class]token.Pos) {
		key := visitKey{b, fingerprint(held)}
		if visited[key] {
			return
		}
		visited[key] = true
		// Copy on write below.
		cur := held
		cloned := false
		mut := func() {
			if !cloned {
				c := make(map[*class]token.Pos, len(cur))
				for k, v := range cur {
					c[k] = v
				}
				cur, cloned = c, true
			}
		}
		for _, stmt := range b.Nodes {
			if _, isDefer := stmt.(*ast.DeferStmt); isDefer {
				continue // runs at exit; does not affect the held walk
			}
			for _, op := range a.stmtOps(info, stmt, nb) {
				switch {
				case op.lock != nil:
					ev := op.lock
					if ev.acquire {
						if nbc := noBlockHeld(cur); nbc != nil && !reported[op.pos] {
							reported[op.pos] = true
							a.pass.Reportf(op.pos, "acquiring %s while holding no_block lock %s", ev.class.name, nbc.name)
						}
						for h := range cur {
							a.addEdge(h, ev.class, op.pos)
						}
						mut()
						if _, already := cur[ev.class]; !already {
							cur[ev.class] = op.pos
						}
					} else {
						mut()
						delete(cur, ev.class)
					}
				case op.call != nil:
					e, ok := edgeOf[op.call]
					if !ok {
						continue
					}
					if e.Go || e.Defer {
						continue
					}
					nbc := noBlockHeld(cur)
					for _, callee := range e.Callees {
						for c := range a.mayAcq[callee] {
							for h := range cur {
								a.addEdge(h, c, op.pos)
							}
						}
						if nbc != nil && a.mayBlk[callee] && !reported[op.pos] {
							reported[op.pos] = true
							a.pass.Reportf(op.pos, "call to %s may block while holding no_block lock %s", calleeName(callee), nbc.name)
						}
					}
				case op.block != "":
					if nbc := noBlockHeld(cur); nbc != nil && !reported[op.pos] {
						reported[op.pos] = true
						a.pass.Reportf(op.pos, "%s while holding no_block lock %s", op.block, nbc.name)
					}
				}
			}
		}
		for _, succ := range b.Succs {
			walk(succ, cur)
		}
	}
	walk(g.Entry, entry)
}

func calleeName(n *callgraph.Node) string {
	if n.Func != nil {
		return n.Func.Name()
	}
	return "function literal"
}

func (a *analysis) addEdge(from, to *class, pos token.Pos) {
	m := a.edges[from]
	if m == nil {
		m = map[*class]token.Pos{}
		a.edges[from] = m
	}
	if old, ok := m[to]; !ok || pos < old {
		m[to] = pos
	}
}

// reportRanks flags every edge that violates the strictly-increasing
// rank rule, and every same-class self-edge.
func (a *analysis) reportRanks() {
	for from, m := range a.edges {
		for to, pos := range m {
			switch {
			case from == to:
				a.pass.Reportf(pos, "%s acquired while an instance of the same class is already held (self-deadlock on a single instance; //lint:ignore lockorder with the instance-ordering argument if distinct instances are ordered)", from.name)
			case from.hasRank && to.hasRank && to.rank <= from.rank:
				a.pass.Reportf(pos, "acquiring %s (lock_rank %d) while holding %s (lock_rank %d); ranks must strictly increase", to.name, to.rank, from.name, from.rank)
			}
		}
	}
}

// reportCycles runs Tarjan's SCC over the class graph and reports each
// component with more than one class as a potential deadlock (self-edges
// are reported by reportRanks).
func (a *analysis) reportCycles() {
	index := map[*class]int{}
	low := map[*class]int{}
	onStack := map[*class]bool{}
	var stack []*class
	next := 0

	// Deterministic iteration order.
	var all []*class
	seen := map[*class]bool{}
	for from, m := range a.edges {
		if !seen[from] {
			seen[from] = true
			all = append(all, from)
		}
		for to := range m {
			if !seen[to] {
				seen[to] = true
				all = append(all, to)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })

	succs := func(c *class) []*class {
		var out []*class
		for to := range a.edges[c] {
			out = append(out, to)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
		return out
	}

	var strongconnect func(c *class)
	strongconnect = func(c *class) {
		index[c] = next
		low[c] = next
		next++
		stack = append(stack, c)
		onStack[c] = true
		for _, to := range succs(c) {
			if _, ok := index[to]; !ok {
				strongconnect(to)
				if low[to] < low[c] {
					low[c] = low[to]
				}
			} else if onStack[to] && index[to] < low[c] {
				low[c] = index[to]
			}
		}
		if low[c] == index[c] {
			var comp []*class
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				comp = append(comp, top)
				if top == c {
					break
				}
			}
			if len(comp) > 1 {
				a.reportCycle(comp)
			}
		}
	}
	for _, c := range all {
		if _, ok := index[c]; !ok {
			strongconnect(c)
		}
	}
}

func (a *analysis) reportCycle(comp []*class) {
	sort.Slice(comp, func(i, j int) bool { return comp[i].name < comp[j].name })
	names := make([]string, len(comp))
	inComp := map[*class]bool{}
	for i, c := range comp {
		names[i] = c.name
		inComp[c] = true
	}
	// Witness position: the smallest edge position inside the component.
	pos := token.NoPos
	for _, c := range comp {
		for to, p := range a.edges[c] {
			if inComp[to] && (pos == token.NoPos || p < pos) {
				pos = p
			}
		}
	}
	a.pass.Reportf(pos, "lock-order cycle among {%s}: two goroutines taking these locks in different orders can deadlock", strings.Join(names, ", "))
}
