package escapegate_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/escapegate"
)

// writeModule lays out a throwaway module the gate can compile.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const goMod = "module egtest\n\ngo 1.24\n"

// leakSrc has one hot function with one deterministic escape.
const leakSrc = `package egtest

// hot_path:
func Leak() *int {
	return new(int)
}
`

// leakMoreSrc adds a second, distinct escape to the same function.
const leakMoreSrc = `package egtest

var sink []int

// hot_path:
func Leak() *int {
	sink = make([]int, 4)
	return new(int)
}
`

const noinlineSrc = `package egtest

// inline:
//
//go:noinline
func Spin() int { return 1 }
`

func run(t *testing.T, dir, baseline string) *escapegate.Result {
	t.Helper()
	res, err := escapegate.Run(escapegate.Options{Dir: dir, Baseline: baseline})
	if err != nil {
		t.Fatalf("escapegate.Run: %v", err)
	}
	return res
}

func assertFinding(t *testing.T, res *escapegate.Result, want string) {
	t.Helper()
	for _, d := range res.Findings {
		if strings.Contains(d.Message, want) {
			return
		}
	}
	t.Fatalf("no finding contains %q; got %v", want, res.Findings)
}

func TestViolationEscape(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a module")
	}
	dir := writeModule(t, map[string]string{"go.mod": goMod, "leak.go": leakSrc})
	res := run(t, dir, "")
	if len(res.Findings) != 1 {
		t.Fatalf("want exactly 1 finding, got %v", res.Findings)
	}
	assertFinding(t, res, "escape in hot path egtest.Leak")
}

func TestViolationInlineDeclined(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a module")
	}
	dir := writeModule(t, map[string]string{"go.mod": goMod, "spin.go": noinlineSrc})
	res := run(t, dir, "")
	assertFinding(t, res, "compiler declined to inline egtest.Spin")
}

func TestSuppression(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a module")
	}
	src := `package egtest

// hot_path:
func Leak() *int {
	//lint:ignore escapegate documented one-time allocation
	return new(int)
}
`
	dir := writeModule(t, map[string]string{"go.mod": goMod, "leak.go": src})
	res := run(t, dir, "")
	if len(res.Findings) != 0 {
		t.Fatalf("suppressed finding survived: %v", res.Findings)
	}
	if res.Suppressed != 1 {
		t.Fatalf("want 1 suppressed, got %d", res.Suppressed)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a module")
	}
	dir := writeModule(t, map[string]string{
		"go.mod": goMod, "leak.go": leakSrc, "spin.go": noinlineSrc,
	})
	res := run(t, dir, "")
	if len(res.Findings) == 0 {
		t.Fatal("violation mode should flag the seeded module")
	}
	baseline := filepath.Join(dir, "baseline.json")
	if err := escapegate.WriteBaseline(baseline, res); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	res2 := run(t, dir, baseline)
	if len(res2.Findings) != 0 {
		t.Fatalf("baseline should absorb the known verdicts, got %v", res2.Findings)
	}
}

func TestBaselineCatchesNewEscape(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a module")
	}
	dir := writeModule(t, map[string]string{"go.mod": goMod, "leak.go": leakSrc})
	baseline := filepath.Join(t.TempDir(), "baseline.json")
	if err := escapegate.WriteBaseline(baseline, run(t, dir, "")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "leak.go"), []byte(leakMoreSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	res := run(t, dir, baseline)
	assertFinding(t, res, "new escape in hot path egtest.Leak")
}

func TestBaselineCatchesDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a module")
	}
	// Baseline knows only Leak; the tree grows an annotated Spin.
	dir := writeModule(t, map[string]string{"go.mod": goMod, "leak.go": leakSrc})
	baseline := filepath.Join(t.TempDir(), "baseline.json")
	if err := escapegate.WriteBaseline(baseline, run(t, dir, "")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "spin.go"), []byte(noinlineSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	res := run(t, dir, baseline)
	assertFinding(t, res, "egtest.Spin (inline) is not in the baseline")

	// And the reverse: re-baseline with Spin (Result.Functions always
	// holds the current verdicts), then delete it from the tree.
	if err := escapegate.WriteBaseline(baseline, res); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "spin.go")); err != nil {
		t.Fatal(err)
	}
	res = run(t, dir, baseline)
	assertFinding(t, res, "baseline entry egtest.Spin no longer exists")
}
