// Package escapegate cross-checks the performance annotations against
// the real compiler. hotpath proves the absence of *syntactic*
// allocation and blocking in `// hot_path:` functions; escapegate asks
// gc itself — via -gcflags=-json structured diagnostics (logopt) —
// whether anything in those functions still escapes to the heap, and
// whether every `// inline:` function is in fact inlinable.
//
// The contract is a committed golden baseline (ESCAPE_baseline.json,
// regenerated with `make escape-baseline`): the compiler's current
// verdicts are diffed against it, so any drift — a new escape in a hot
// function, an inlining decision withdrawn, an annotated function
// added or removed without refreshing the baseline — is a finding and
// a reviewable diff, never a silent regression. With no baseline,
// escapegate runs in pure violation mode: any escape in a hot_path
// function and any declined inline: is a finding (this is the
// bootstrap and test mode).
//
// Findings respect //lint:ignore escapegate suppressions on the
// escaping line (or the line above), via the same annotation machinery
// as the AST analyzers.
package escapegate

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/analysis/reprolint"
)

// Name is the analyzer name findings carry (and //lint:ignore targets).
const Name = "escapegate"

// Options configures one escapegate run.
type Options struct {
	// Dir is the module directory the patterns resolve in.
	Dir string
	// Patterns selects the packages whose annotations are checked
	// (default ./...). The compiler always builds the whole module.
	Patterns []string
	// Baseline is the committed allowlist JSON; empty means pure
	// violation mode (every escape/declined-inline is a finding).
	Baseline string
	// Report, when non-empty, writes the full per-function report JSON
	// (CI archives it as an artifact).
	Report string
}

// FuncReport is the compiler's verdict on one annotated function.
type FuncReport struct {
	// Annotation is "hot_path", "inline" or "hot_path,inline".
	Annotation string `json:"annotation"`
	// File is the module-relative source file (informational; functions
	// are keyed by their type-checker FullName).
	File string `json:"file"`
	// CanInline records whether gc reported canInlineFunction.
	CanInline bool `json:"can_inline"`
	// InlineNote is gc's cannotInlineFunction reason, if any.
	InlineNote string `json:"inline_note,omitempty"`
	// Escapes are the distinct escape-analysis messages inside the
	// function body, sorted (line numbers deliberately omitted so the
	// baseline does not churn when code above moves).
	Escapes []string `json:"escapes,omitempty"`
}

// Baseline is the committed golden file.
type Baseline struct {
	Go        string                 `json:"go"`
	Functions map[string]*FuncReport `json:"functions"`
}

// Result is what a run produced.
type Result struct {
	GoVersion  string
	Findings   []reprolint.Diagnostic
	Suppressed int
	Functions  map[string]*FuncReport
}

// report is the -escape-report payload.
type report struct {
	Go         string                 `json:"go"`
	Baseline   string                 `json:"baseline,omitempty"`
	Findings   []string               `json:"findings"`
	Suppressed int                    `json:"suppressed"`
	Functions  map[string]*FuncReport `json:"functions"`
}

// annFn is one annotated function with its source extent.
type annFn struct {
	name     string // types.Func FullName
	file     string // absolute, cleaned
	declLine int    // line of the func keyword
	endLine  int
	hot      bool
	inline   bool
	pos      token.Position
}

// compilerDiag is one logopt diagnostic mapped into a source file.
type compilerDiag struct {
	line int
	code string
	msg  string
}

// Run loads the annotated functions, rebuilds the module with logopt
// enabled, and diffs the compiler's verdicts against the baseline.
func Run(opts Options) (*Result, error) {
	patterns := opts.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := reprolint.Load(opts.Dir, patterns...)
	if err != nil {
		return nil, err
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("escapegate: no packages match %v", patterns)
	}
	fset := pkgs[0].Fset

	var fns []*annFn
	var allFiles []*ast.File
	for _, pkg := range pkgs {
		allFiles = append(allFiles, pkg.Files...)
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				a := reprolint.FuncAnnotation(fd)
				if !a.HotPath && !a.Inline {
					continue
				}
				obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				pos := fset.Position(fd.Pos())
				fns = append(fns, &annFn{
					name:     obj.FullName(),
					file:     filepath.Clean(pos.Filename),
					declLine: pos.Line,
					endLine:  fset.Position(fd.End()).Line,
					hot:      a.HotPath,
					inline:   a.Inline,
					pos:      pos,
				})
			}
		}
	}

	diags, err := compile(opts.Dir)
	if err != nil {
		return nil, err
	}

	res := &Result{GoVersion: runtime.Version(), Functions: map[string]*FuncReport{}}
	events := map[string][]compilerDiag{} // fn name -> escape events (with lines)
	for _, fn := range fns {
		fr := &FuncReport{Annotation: annString(fn), File: relTo(opts.Dir, fn.file)}
		seen := map[string]bool{}
		for _, d := range diags[fn.file] {
			if d.line < fn.declLine || d.line > fn.endLine {
				continue
			}
			switch {
			case isEscapeCode(d.code):
				if d.msg == "" || seen[d.msg] {
					continue // logopt emits empty/duplicate escape entries
				}
				seen[d.msg] = true
				fr.Escapes = append(fr.Escapes, d.msg)
				events[fn.name] = append(events[fn.name], d)
			case d.code == "canInlineFunction" && d.line == fn.declLine:
				fr.CanInline = true
			case d.code == "cannotInlineFunction" && d.line == fn.declLine:
				fr.InlineNote = d.msg
			}
		}
		sort.Strings(fr.Escapes)
		res.Functions[fn.name] = fr
	}

	if opts.Baseline != "" {
		base, err := readBaseline(opts.Baseline)
		if err != nil {
			return nil, err
		}
		res.Findings = diffBaseline(base, opts.Baseline, fns, res.Functions, events)
	} else {
		res.Findings = violations(fns, res.Functions, events)
	}

	ann := reprolint.CollectAnnotations(fset, allFiles)
	res.Findings, res.Suppressed = ann.Filter(res.Findings)
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i].Pos, res.Findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})

	if opts.Report != "" {
		if err := writeReport(opts.Report, opts.Baseline, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// violations is pure violation mode: no baseline, every bad verdict is
// a finding.
func violations(fns []*annFn, cur map[string]*FuncReport, events map[string][]compilerDiag) []reprolint.Diagnostic {
	var out []reprolint.Diagnostic
	for _, fn := range fns {
		fr := cur[fn.name]
		if fn.hot {
			for _, e := range events[fn.name] {
				out = append(out, diagAt(fn.file, e.line,
					"compiler reports an escape in hot path %s: %s", fn.name, e.msg))
			}
		}
		if fn.inline && !fr.CanInline {
			out = append(out, reprolint.Diagnostic{
				Pos: fn.pos, Analyzer: Name,
				Message: declinedMsg(fn.name, fr),
			})
		}
	}
	return out
}

// diffBaseline compares the compiler's current verdicts against the
// committed golden file. New escapes and withdrawn inlines are
// regressions; any other mismatch is drift that must be re-baselined,
// so it shows up as a diff in review rather than rotting silently.
func diffBaseline(base *Baseline, basePath string, fns []*annFn, cur map[string]*FuncReport, events map[string][]compilerDiag) []reprolint.Diagnostic {
	var out []reprolint.Diagnostic
	refresh := "; run `make escape-baseline` and commit the diff"
	for _, fn := range fns {
		fr := cur[fn.name]
		b, ok := base.Functions[fn.name]
		if !ok {
			out = append(out, reprolint.Diagnostic{Pos: fn.pos, Analyzer: Name,
				Message: fmt.Sprintf("%s (%s) is not in the baseline%s", fn.name, fr.Annotation, refresh)})
			continue
		}
		if b.Annotation != fr.Annotation {
			out = append(out, reprolint.Diagnostic{Pos: fn.pos, Analyzer: Name,
				Message: fmt.Sprintf("%s annotation changed from %q to %q%s", fn.name, b.Annotation, fr.Annotation, refresh)})
		}
		if fn.hot {
			allowed := map[string]bool{}
			for _, m := range b.Escapes {
				allowed[m] = true
			}
			now := map[string]bool{}
			for _, e := range events[fn.name] {
				now[e.msg] = true
				if !allowed[e.msg] {
					out = append(out, diagAt(fn.file, e.line,
						"new escape in hot path %s not in the baseline: %s", fn.name, e.msg))
				}
			}
			for _, m := range b.Escapes {
				if !now[m] {
					out = append(out, reprolint.Diagnostic{Pos: fn.pos, Analyzer: Name,
						Message: fmt.Sprintf("baseline lists an escape no longer reported in %s (%q) — stale baseline%s", fn.name, m, refresh)})
				}
			}
		}
		if fn.inline {
			switch {
			case b.CanInline && !fr.CanInline:
				out = append(out, reprolint.Diagnostic{Pos: fn.pos, Analyzer: Name,
					Message: declinedMsg(fn.name, fr) + " (baseline says it was inlinable)"})
			case !b.CanInline && fr.CanInline:
				out = append(out, reprolint.Diagnostic{Pos: fn.pos, Analyzer: Name,
					Message: fmt.Sprintf("%s is now inlinable — stale baseline%s", fn.name, refresh)})
			}
		}
	}
	for name := range base.Functions {
		if _, ok := cur[name]; !ok {
			out = append(out, reprolint.Diagnostic{
				Pos: token.Position{Filename: basePath}, Analyzer: Name,
				Message: fmt.Sprintf("baseline entry %s no longer exists or lost its annotation%s", name, refresh)})
		}
	}
	return out
}

func declinedMsg(name string, fr *FuncReport) string {
	msg := fmt.Sprintf("compiler declined to inline %s", name)
	if fr.InlineNote != "" {
		msg += ": " + fr.InlineNote
	}
	return msg
}

func diagAt(file string, line int, format string, args ...any) reprolint.Diagnostic {
	return reprolint.Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Analyzer: Name,
		Message:  fmt.Sprintf(format, args...),
	}
}

// isEscapeCode reports whether a logopt code is an escape-analysis
// heap verdict. "leak" (a parameter leaking to its caller) is not an
// allocation in this function and is deliberately excluded.
func isEscapeCode(code string) bool {
	return code == "escape" || code == "escapes"
}

func annString(fn *annFn) string {
	switch {
	case fn.hot && fn.inline:
		return "hot_path,inline"
	case fn.hot:
		return "hot_path"
	default:
		return "inline"
	}
}

// compile rebuilds the whole module with logopt enabled into a fresh
// temp dir (a fresh dir changes the cache key, defeating the build
// cache's diagnostic suppression) and parses every emitted JSON file.
func compile(dir string) (map[string][]compilerDiag, error) {
	mod, err := goListModule(dir)
	if err != nil {
		return nil, err
	}
	tmp, err := os.MkdirTemp("", "escapegate-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	cmd := exec.Command("go", "build", "-gcflags="+mod+"/...=-json=0,"+tmp, "./...")
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("escapegate: go build -gcflags=-json: %v\n%s", err, stderr.String())
	}

	diags := map[string][]compilerDiag{}
	err = filepath.WalkDir(tmp, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".json") {
			return err
		}
		return parseLogopt(path, diags)
	})
	if err != nil {
		return nil, fmt.Errorf("escapegate: reading logopt output: %w", err)
	}
	return diags, nil
}

// parseLogopt reads one per-source-file logopt stream: a header line
// naming the source file, then one LSP-style diagnostic per line.
func parseLogopt(path string, out map[string][]compilerDiag) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var srcFile string
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if srcFile == "" {
			var hdr struct {
				File string `json:"file"`
			}
			if err := json.Unmarshal(line, &hdr); err != nil || hdr.File == "" {
				return fmt.Errorf("escapegate: %s: malformed logopt header", path)
			}
			srcFile = filepath.Clean(hdr.File)
			continue
		}
		var d struct {
			Code    string `json:"code"`
			Message string `json:"message"`
			Range   struct {
				Start struct {
					Line int `json:"line"`
				} `json:"start"`
			} `json:"range"`
		}
		if err := json.Unmarshal(line, &d); err != nil {
			continue // tolerate future logopt record shapes
		}
		out[srcFile] = append(out[srcFile], compilerDiag{
			line: d.Range.Start.Line,
			code: d.Code,
			msg:  d.Message,
		})
	}
	return sc.Err()
}

func goListModule(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("escapegate: go list -m: %v\n%s", err, stderr.String())
	}
	return strings.TrimSpace(string(out)), nil
}

func readBaseline(path string) (*Baseline, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("escapegate: %w (run `make escape-baseline` to create it)", err)
	}
	var b Baseline
	if err := json.Unmarshal(buf, &b); err != nil {
		return nil, fmt.Errorf("escapegate: parse %s: %w", path, err)
	}
	if b.Functions == nil {
		b.Functions = map[string]*FuncReport{}
	}
	return &b, nil
}

// WriteBaseline writes the run's per-function verdicts as the new
// golden file.
func WriteBaseline(path string, res *Result) error {
	buf, err := json.MarshalIndent(Baseline{Go: res.GoVersion, Functions: res.Functions}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func writeReport(path, baseline string, res *Result) error {
	rep := report{
		Go:         res.GoVersion,
		Baseline:   baseline,
		Findings:   []string{},
		Suppressed: res.Suppressed,
		Functions:  res.Functions,
	}
	for _, d := range res.Findings {
		rep.Findings = append(rep.Findings, d.String())
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func relTo(dir, path string) string {
	if rel, err := filepath.Rel(dir, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return path
}
