// Package atomicfield implements reprolint's atomic-access analyzer.
// Two invariants, both whole-program (the atomic access and the plain
// access are often in different packages):
//
//  1. Mixed access. A struct field or package-level variable whose
//     address is ever passed to a sync/atomic function
//     (atomic.LoadUint64(&s.gen), atomic.AddInt64(&ops, 1), ...) is an
//     atomic location: every other mention of it must also be through
//     sync/atomic. A plain read or write — even a seemingly innocent
//     `s.gen++` on an "initialization" path — is a data race the race
//     detector only catches when the schedule cooperates; this check
//     catches it structurally. Taking the address for any other purpose
//     is flagged too, since the alias escapes the discipline.
//
//  2. Value copies. Typed atomics (atomic.Int64, atomic.Bool,
//     atomic.Pointer[T], ...) must never be copied by value: a copy
//     snapshots the bits but forks the location, so updates through the
//     copy are invisible to readers of the original. Assignments,
//     arguments, returns, composite-literal elements, channel sends and
//     range clauses are reported — `for _, c := range counters` copies
//     every element, atomics and all, even when the element merely
//     *contains* an atomic several structs deep. Ranging by index (or
//     keeping pointers in the container) is the fix.
//
// Suppress with `//lint:ignore atomicfield <reason>` — e.g. for a plain
// read inside a constructor before the value is published.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/reprolint"
)

// Analyzer is the atomicfield analyzer.
var Analyzer = &reprolint.Analyzer{
	Name:       "atomicfield",
	Doc:        "fields accessed via sync/atomic must never see plain loads/stores; typed atomics must not be copied",
	RunProgram: run,
}

func run(pass *reprolint.ProgramPass) error {
	// Pass 1: find every location whose address flows into a sync/atomic
	// call, remembering one witnessing position per location and the
	// exact AST nodes that are sanctioned atomic accesses.
	atomicAt := map[types.Object]token.Pos{}
	sanctioned := map[ast.Node]bool{}
	for _, pkg := range pass.Prog.Pkgs {
		info := pkg.TypesInfo
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicFunc(info, call) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					inner := ast.Unparen(un.X)
					obj := refObj(info, inner)
					if obj == nil {
						continue
					}
					if _, seen := atomicAt[obj]; !seen {
						atomicAt[obj] = call.Pos()
					}
					sanctioned[inner] = true
				}
				return true
			})
		}
	}

	// Pass 2: every other mention of an atomic location is a finding,
	// and every by-value use of a typed atomic is a copy.
	for _, pkg := range pass.Prog.Pkgs {
		info := pkg.TypesInfo
		for _, f := range pkg.Files {
			checkMixed(pass, info, f, atomicAt, sanctioned)
			checkCopies(pass, info, f)
		}
	}
	return nil
}

// isAtomicFunc reports whether call invokes a function from sync/atomic
// (atomic.AddInt64, atomic.CompareAndSwapPointer, ...).
func isAtomicFunc(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	_, isFunc := obj.(*types.Func)
	return isFunc && obj.Pkg().Path() == "sync/atomic"
}

// refObj resolves an expression to the field or variable object it
// names: `s.gen` to the gen field, `ops` to the package var. Index
// expressions and pointer chains resolve to the final selected object.
func refObj(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			return sel.Obj()
		}
		return info.Uses[x.Sel]
	case *ast.Ident:
		if obj := info.Uses[x]; obj != nil {
			if _, isVar := obj.(*types.Var); isVar {
				return obj
			}
		}
	}
	return nil
}

// checkMixed reports plain mentions of atomic locations.
func checkMixed(pass *reprolint.ProgramPass, info *types.Info, f *ast.File, atomicAt map[types.Object]token.Pos, sanctioned map[ast.Node]bool) {
	if len(atomicAt) == 0 {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		if sanctioned[n] {
			// The &x.f operand of a sync/atomic call: skip it and its
			// children (the selector's idents would otherwise re-match).
			return false
		}
		var obj types.Object
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok {
				obj = sel.Obj()
			}
		case *ast.Ident:
			obj = info.Uses[x]
			if _, isVar := obj.(*types.Var); !isVar {
				obj = nil
			}
			// Field idents inside an unsanctioned selector are reported
			// at the selector; declaration-site idents are fine.
		}
		if obj == nil {
			return true
		}
		if witness, ok := atomicAt[obj]; ok {
			pass.Reportf(n.Pos(), "plain access to %s, which is accessed atomically (e.g. at %s); use sync/atomic for every access",
				obj.Name(), pass.Prog.Fset.Position(witness))
			return false
		}
		return true
	})
}

// checkCopies reports by-value uses of typed sync/atomic values.
func checkCopies(pass *reprolint.ProgramPass, info *types.Info, f *ast.File) {
	copyCheck := func(e ast.Expr) {
		if e == nil {
			return
		}
		e = ast.Unparen(e)
		if _, isLit := e.(*ast.CompositeLit); isLit {
			return // a freshly built value, not a copy of a live one
		}
		tv, ok := info.Types[e]
		if !ok || !isTypedAtomic(tv.Type) {
			return
		}
		pass.Reportf(e.Pos(), "copying %s value: the copy forks the atomic location, so updates through one are invisible through the other; share a pointer instead",
			tv.Type.String())
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, r := range x.Rhs {
				copyCheck(r)
			}
		case *ast.ValueSpec:
			for _, v := range x.Values {
				copyCheck(v)
			}
		case *ast.CallExpr:
			if isConversion(info, x) {
				return true
			}
			for _, arg := range x.Args {
				copyCheck(arg)
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				copyCheck(r)
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				copyCheck(el)
			}
		case *ast.SendStmt:
			copyCheck(x.Value)
		case *ast.RangeStmt:
			checkRangeCopy(pass, info, x)
		}
		return true
	})
}

// checkRangeCopy reports range clauses whose per-iteration variable
// copies a typed atomic out of the container: the element (or map
// key/value) is assigned by value each iteration, forking every atomic
// it contains, however deeply nested. `for i := range xs` is clean —
// the index copies nothing.
func checkRangeCopy(pass *reprolint.ProgramPass, info *types.Info, rng *ast.RangeStmt) {
	tv, ok := info.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	t := tv.Type.Underlying()
	if p, ok := t.(*types.Pointer); ok { // *[N]T ranges like the array
		t = p.Elem().Underlying()
	}
	check := func(v ast.Expr, elem types.Type, what string) {
		if v == nil {
			return
		}
		if id, ok := ast.Unparen(v).(*ast.Ident); ok && id.Name == "_" {
			return
		}
		if at := findTypedAtomic(elem, nil); at != nil {
			pass.Reportf(v.Pos(), "range clause copies %s %s containing %s: the copy forks the atomic location, so updates through one are invisible through the other; range by index or store pointers",
				what, elem.String(), at.String())
		}
	}
	switch t := t.(type) {
	case *types.Slice:
		check(rng.Value, t.Elem(), "element")
	case *types.Array:
		check(rng.Value, t.Elem(), "element")
	case *types.Map:
		check(rng.Key, t.Key(), "key")
		check(rng.Value, t.Elem(), "value")
	case *types.Chan:
		check(rng.Key, t.Elem(), "element")
	}
}

// findTypedAtomic returns a typed sync/atomic type reachable by value
// inside t — t itself, a struct field, an array element, recursively —
// or nil. Pointers, slices and maps share their referent rather than
// copying it, so the search does not descend through them.
func findTypedAtomic(t types.Type, seen map[types.Type]bool) types.Type {
	if t == nil {
		return nil
	}
	if isTypedAtomic(t) {
		return t
	}
	if seen[t] {
		return nil
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if at := findTypedAtomic(u.Field(i).Type(), seen); at != nil {
				return at
			}
		}
	case *types.Array:
		return findTypedAtomic(u.Elem(), seen)
	}
	return nil
}

// isTypedAtomic reports whether t is a named value type from
// sync/atomic (Int64, Uint32, Bool, Value, Pointer[T], ...).
func isTypedAtomic(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// isConversion reports whether call is a type conversion, not a call.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}
