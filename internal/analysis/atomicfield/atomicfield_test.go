package atomicfield_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/atomicfield"
)

func TestAtomicfield(t *testing.T) {
	antest.Run(t, "../testdata", atomicfield.Analyzer, "atomictest")
}
