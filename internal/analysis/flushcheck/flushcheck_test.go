package flushcheck_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/flushcheck"
)

func TestFlushcheck(t *testing.T) {
	antest.Run(t, "../testdata", flushcheck.Analyzer, "flushtest")
}

func TestFlushcheckEpochBoundary(t *testing.T) {
	antest.Run(t, "../testdata", flushcheck.Analyzer, "epochtest")
}
