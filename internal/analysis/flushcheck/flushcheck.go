// Package flushcheck implements reprolint's TLB-invalidation checker.
// It enforces two invalidation obligations:
//
//   - Functions annotated `// sharing_boundary` change page-sharing
//     relationships in ways that make every cached translation suspect
//     (unmap, protect, heap shrink, release, seal): stale entries read or
//     write pages the address space no longer owns. Every success path
//     must pass a TLB invalidation — a call whose method name is flush,
//     or a call to a function annotated `// flushes_tlb` (or itself
//     sharing_boundary, which must flush by induction).
//
//   - Functions annotated `// epoch_boundary` make privately-owned pages
//     shared (fork/capture) without invalidating the whole TLB: the
//     write entries go stale via the snapshot-epoch tag instead. Every
//     success path must therefore advance the epoch — a call whose
//     method name is AdvanceEpoch, or a call to a function annotated
//     `// bumps_epoch` (or itself epoch_boundary, by induction).
//     Deleting the epoch bump from a capture path silently resurrects
//     the stop-the-mutator bug class this protocol replaced — privately
//     cached write entries surviving into the shared era — so the rule
//     is a hard gate, not a style check.
//
// Error paths are exempt: a return whose error-result expression is
// non-nil abandoned the operation before the sharing change took
// effect. Implicit end-of-body returns and naked returns count as
// successes (strict). Deferred flushes/bumps discharge every exit after
// them.
package flushcheck

import (
	"go/ast"

	"repro/internal/analysis/astcfg"
	"repro/internal/analysis/reprolint"
)

// Analyzer is the flushcheck analyzer.
var Analyzer = &reprolint.Analyzer{
	Name: "flushcheck",
	Doc:  "sharing_boundary functions must invalidate the TLB, epoch_boundary functions must advance the snapshot epoch, on every success path",
	Run:  run,
}

// flushMethodNames are method/function names whose call is itself a TLB
// invalidation. flushWrite is the retired pre-epoch write-flush; keeping
// it recognized lets testdata and any out-of-tree callers stay honest.
var flushMethodNames = map[string]bool{
	"flush":      true,
	"flushWrite": true,
}

// epochMethodNames are method/function names whose call is itself a
// snapshot-epoch advance.
var epochMethodNames = map[string]bool{
	"AdvanceEpoch": true,
	"advanceEpoch": true,
}

func run(pass *reprolint.Pass) error {
	decls := reprolint.FuncDeclMap(pass)
	// anns caches the annotation of every declared function so callee
	// resolution is O(1) inside the discharge predicates.
	anns := map[*ast.FuncDecl]reprolint.FuncAnn{}
	for _, fd := range decls {
		anns[fd] = reprolint.FuncAnnotation(fd)
	}

	// discharges builds the predicate for one obligation: a call is a
	// discharge when its name is on the method list or its resolved callee
	// carries (or inductively owes) the corresponding annotation.
	discharges := func(names map[string]bool, ann func(reprolint.FuncAnn) bool) func(ast.Node) bool {
		return func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return false
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				if names[fun.Name] {
					return true
				}
			case *ast.SelectorExpr:
				if names[fun.Sel.Name] {
					return true
				}
			}
			if fn := reprolint.CalleeFunc(pass.TypesInfo, call); fn != nil {
				if fd, ok := decls[fn]; ok {
					return ann(anns[fd])
				}
			}
			return false
		}
	}
	isFlush := discharges(flushMethodNames, func(a reprolint.FuncAnn) bool {
		return a.FlushesTLB || a.SharingBoundary
	})
	isBump := discharges(epochMethodNames, func(a reprolint.FuncAnn) bool {
		return a.BumpsEpoch || a.EpochBoundary
	})

	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ann := reprolint.FuncAnnotation(fd)
			if ann.SharingBoundary {
				checkBoundary(pass, fd, isFlush, "TLB invalidation", "sharing_boundary")
			}
			if ann.EpochBoundary {
				checkBoundary(pass, fd, isBump, "snapshot-epoch advance", "epoch_boundary")
			}
		}
	}
	return nil
}

func checkBoundary(pass *reprolint.Pass, fd *ast.FuncDecl, isFlush func(ast.Node) bool, obligation, directive string) {
	graph := astcfg.Build(fd.Body)
	for _, d := range graph.Defers {
		flushed := false
		ast.Inspect(d, func(n ast.Node) bool {
			if flushed {
				return false
			}
			if isFlush(n) {
				flushed = true
			}
			return !flushed
		})
		if flushed {
			return // a deferred flush covers every exit
		}
	}
	var sig = reprolint.ScopeSignature(pass.TypesInfo, reprolint.FuncScope{Decl: fd, Body: fd.Body})
	bad := func(n ast.Node) bool {
		if n == nil {
			return true // implicit end-of-body return: a success exit
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return false
		}
		return reprolint.SuccessReturn(ret, sig)
	}
	stop := func(n ast.Node) bool {
		// Only a call node itself flushes; expressions containing a
		// flush call deeper are found because PathTo tests every node.
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if found {
				return false
			}
			if isFlush(m) {
				found = true
			}
			return !found
		})
		return found
	}
	if leak, ok := graph.PathTo(nil, bad, stop); ok {
		where := "the end of the function"
		if ret, isRet := leak.(*ast.ReturnStmt); isRet && ret != nil {
			where = pass.Fset.Position(ret.Pos()).String()
		}
		pass.Reportf(fd.Pos(),
			"%s function %s has a success path (reaching %s) with no %s",
			directive, fd.Name.Name, where, obligation)
	}
}
