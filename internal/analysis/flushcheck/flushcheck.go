// Package flushcheck implements reprolint's TLB-invalidation checker.
// Functions annotated `// sharing_boundary` change page-sharing
// relationships (fork, unmap, protect, heap shrink, release, CoW
// resolution): stale translations cached past them read or write pages
// the address space no longer owns. The check: every success path
// through a sharing_boundary function must pass a TLB invalidation —
// a call whose method name is flush/flushWrite, or a call to a function
// annotated `// flushes_tlb` (or itself sharing_boundary, which must
// flush by induction).
//
// Error paths are exempt: a return whose error-result expression is
// non-nil abandoned the operation before the sharing change took
// effect. Implicit end-of-body returns and naked returns count as
// successes (strict). Deferred flushes discharge every exit after them.
package flushcheck

import (
	"go/ast"

	"repro/internal/analysis/astcfg"
	"repro/internal/analysis/reprolint"
)

// Analyzer is the flushcheck analyzer.
var Analyzer = &reprolint.Analyzer{
	Name: "flushcheck",
	Doc:  "sharing_boundary functions must invalidate the TLB on every success path",
	Run:  run,
}

// flushMethodNames are method/function names whose call is itself a TLB
// invalidation.
var flushMethodNames = map[string]bool{
	"flush":      true,
	"flushWrite": true,
}

func run(pass *reprolint.Pass) error {
	decls := reprolint.FuncDeclMap(pass)
	// anns caches the annotation of every declared function so callee
	// resolution is O(1) inside the flush predicate.
	anns := map[*ast.FuncDecl]reprolint.FuncAnn{}
	for _, fd := range decls {
		anns[fd] = reprolint.FuncAnnotation(fd)
	}

	isFlush := func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if flushMethodNames[fun.Name] {
				return true
			}
		case *ast.SelectorExpr:
			if flushMethodNames[fun.Sel.Name] {
				return true
			}
		}
		if fn := reprolint.CalleeFunc(pass.TypesInfo, call); fn != nil {
			if fd, ok := decls[fn]; ok {
				a := anns[fd]
				return a.FlushesTLB || a.SharingBoundary
			}
		}
		return false
	}

	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !reprolint.FuncAnnotation(fd).SharingBoundary {
				continue
			}
			checkBoundary(pass, fd, isFlush)
		}
	}
	return nil
}

func checkBoundary(pass *reprolint.Pass, fd *ast.FuncDecl, isFlush func(ast.Node) bool) {
	graph := astcfg.Build(fd.Body)
	for _, d := range graph.Defers {
		flushed := false
		ast.Inspect(d, func(n ast.Node) bool {
			if flushed {
				return false
			}
			if isFlush(n) {
				flushed = true
			}
			return !flushed
		})
		if flushed {
			return // a deferred flush covers every exit
		}
	}
	var sig = reprolint.ScopeSignature(pass.TypesInfo, reprolint.FuncScope{Decl: fd, Body: fd.Body})
	bad := func(n ast.Node) bool {
		if n == nil {
			return true // implicit end-of-body return: a success exit
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return false
		}
		return reprolint.SuccessReturn(ret, sig)
	}
	stop := func(n ast.Node) bool {
		// Only a call node itself flushes; expressions containing a
		// flush call deeper are found because PathTo tests every node.
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if found {
				return false
			}
			if isFlush(m) {
				found = true
			}
			return !found
		})
		return found
	}
	if leak, ok := graph.PathTo(nil, bad, stop); ok {
		where := "the end of the function"
		if ret, isRet := leak.(*ast.ReturnStmt); isRet && ret != nil {
			where = pass.Fset.Position(ret.Pos()).String()
		}
		pass.Reportf(fd.Pos(),
			"sharing_boundary function %s has a success path (reaching %s) with no TLB invalidation",
			fd.Name.Name, where)
	}
}
