package astcfg

import (
	"go/ast"
	"testing"
)

// blockOf returns the block holding a statement matched by pred.
func blockOf(t *testing.T, g *Graph, pred func(ast.Node) bool, what string) *Block {
	t.Helper()
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if pred(n) {
				return blk
			}
		}
	}
	t.Fatalf("no block contains %s", what)
	return nil
}

// reaches reports whether to is reachable from from along Succs edges
// (following zero or more edges; a block trivially reaches itself only
// via a real cycle when proper is set).
func reaches(from, to *Block, proper bool) bool {
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == to && (b != from || !proper || seen[b]) {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if s == to {
				return true
			}
		}
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// TestGotoIntoLoopBody: a forward goto that jumps into the middle of a
// loop body. The jumped-to statement must be reachable from entry via
// the goto edge, and must still sit on the loop's cycle so a second
// iteration re-executes it.
func TestGotoIntoLoopBody(t *testing.T) {
	g := buildFunc(t, `func f() {
	goto inner
	for {
	inner:
		work()
		if c {
			return
		}
	}
}`)
	workBlk := blockOf(t, g, isCall("work"), "work()")
	if !reaches(g.Entry, workBlk, false) {
		t.Error("goto target inside the loop is unreachable from entry")
	}
	if !reaches(workBlk, workBlk, true) {
		t.Error("goto target is not on the loop's cycle (no back edge)")
	}
	// The only exit is the guarded return; the loop itself never falls
	// through, so every path from work() to an exit passes the return.
	if _, leak := g.PathTo(nil, anyExit, isCall("work")); leak {
		t.Error("an exit is reachable without executing the goto target")
	}
}

// TestLabeledBreakContinueInSelect: break and continue with the loop's
// label, written inside select arms, must target the loop — not the
// select. The break arm reaches after() without re-entering the loop;
// the continue arm loops back without reaching after() on that edge.
func TestLabeledBreakContinueInSelect(t *testing.T) {
	g := buildFunc(t, `func f() {
loop:
	for {
		pre()
		select {
		case <-a:
			exitArm()
			break loop
		case <-b:
			againArm()
			continue loop
		case <-c:
			work()
		}
	}
	after()
}`)
	preBlk := blockOf(t, g, isCall("pre"), "pre()")
	exitBlk := blockOf(t, g, isCall("exitArm"), "exitArm()")
	againBlk := blockOf(t, g, isCall("againArm"), "againArm()")
	afterBlk := blockOf(t, g, isCall("after"), "after()")

	if !reaches(exitBlk, afterBlk, false) {
		t.Error("break loop: select arm does not reach the statement after the loop")
	}
	if reaches(exitBlk, preBlk, false) {
		t.Error("break loop: arm can re-enter the loop (break resolved to the select, not the loop)")
	}
	if !reaches(againBlk, preBlk, false) {
		t.Error("continue loop: select arm does not loop back to the loop body")
	}
	if !preBlk.Succs[0].Exit && !reaches(preBlk, preBlk, true) {
		t.Error("loop head lost its cycle")
	}
	// The plain arm falls through the select back into the loop.
	workBlk := blockOf(t, g, isCall("work"), "work()")
	if !reaches(workBlk, preBlk, false) {
		t.Error("plain select arm does not continue the loop")
	}
}

// TestDeferInLoop: a defer inside a loop body is collected once, sits
// on the loop's cycle, and PathTo's stop predicate can still see it —
// the every-path treatment of defers is Defers-list based, so the
// CFG must not hoist or drop the statement.
func TestDeferInLoop(t *testing.T) {
	g := buildFunc(t, `func f() {
	for i := 0; i < n; i++ {
		defer cleanup()
		work()
	}
	after()
}`)
	if len(g.Defers) != 1 {
		t.Fatalf("defers = %d, want 1 (the in-loop defer, collected once)", len(g.Defers))
	}
	isDefer := func(n ast.Node) bool { _, ok := n.(*ast.DeferStmt); return ok }
	deferBlk := blockOf(t, g, isDefer, "defer cleanup()")
	if !reaches(deferBlk, deferBlk, true) {
		t.Error("in-loop defer is not on the loop's cycle")
	}
	afterBlk := blockOf(t, g, isCall("after"), "after()")
	if !reaches(deferBlk, afterBlk, false) {
		t.Error("loop body does not reach the statement after the loop")
	}
	// A zero-iteration run skips the defer entirely: the exit must be
	// reachable without passing the defer statement.
	if _, leak := g.PathTo(nil, anyExit, isDefer); !leak {
		t.Error("exit unreachable without the defer — loop body treated as unconditional")
	}
}
