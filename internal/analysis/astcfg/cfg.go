// Package astcfg builds a small intraprocedural control-flow graph over a
// function body's AST. It exists so reprolint's every-path analyses
// (releasecheck's "every path releases", flushcheck's "every path
// flushes", fsyncorder's "no path commits before syncing") can reason
// about early returns, branches and loops without a dependency on
// golang.org/x/tools/go/cfg, which the build environment cannot fetch.
//
// The graph is statement-granular: each block holds a run of statements
// with no internal control transfer, and edges follow Go's structured
// control flow (if/for/range/switch/type-switch/select, break/continue
// with labels, goto, fallthrough). Defers are collected per function —
// they run at every exit, which is exactly the granularity the ownership
// analysis needs. Calls to the panic-family (panic, os.Exit, log.Fatal*,
// runtime.Goexit) terminate their block: paths that end in a crash are
// not "returns" for an every-path obligation.
package astcfg

import (
	"go/ast"
	"go/token"
)

// Block is one straight-line run of statements.
type Block struct {
	// Nodes are the statements (and for/if conditions) executed in order.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
	// Return is the return statement ending this block, if any.
	Return *ast.ReturnStmt
	// Panics marks a block ending in panic/os.Exit/log.Fatal: control
	// never reaches a successor or a normal return.
	Panics bool
	// Exit marks the function's synthetic exit block: reached by falling
	// off the end of the body and by every return.
	Exit bool
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Entry  *Block
	Blocks []*Block
	// Defers are the defer statements seen anywhere in the body, in
	// source order. A deferred call runs at every function exit reached
	// after the defer executes; every-path analyses treat them as
	// running at all exits (sound for the defer-at-function-top idiom,
	// and at worst over-lenient, never over-strict, elsewhere).
	Defers []*ast.DeferStmt
}

type builder struct {
	g      *Graph
	cur    *Block
	breaks []*target // innermost-first stack of break targets
	conts  []*target // innermost-first stack of continue targets
	labels map[string]*labelInfo
	gotos  []pendingGoto
	// pendingLabel is the label naming the next loop/switch statement,
	// set by the enclosing LabeledStmt so break/continue with that label
	// resolve to the right targets.
	pendingLabel string
	// selectMode tells the next switchBody call it is wiring a select,
	// which (without a default) blocks instead of falling through.
	selectMode bool
}

type target struct {
	label string
	block *Block
}

type labelInfo struct {
	block *Block // block the labeled statement starts in
}

type pendingGoto struct {
	from  *Block
	label string
}

// Build constructs the CFG for a function body. A nil body (declared
// externally) yields a graph whose entry is also its exit.
func Build(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: map[string]*labelInfo{}}
	entry := b.newBlock()
	g.Entry = entry
	b.cur = entry
	exit := b.newBlock()
	exit.Exit = true
	if body != nil {
		b.stmtList(body.List)
	}
	// Fall off the end of the body.
	b.jump(exit)
	// Returns and resolved gotos.
	for _, blk := range g.Blocks {
		if blk.Return != nil {
			blk.Succs = append(blk.Succs, exit)
		}
	}
	for _, pg := range b.gotos {
		if li, ok := b.labels[pg.label]; ok && li.block != nil {
			pg.from.Succs = append(pg.from.Succs, li.block)
		}
	}
	return g
}

func (b *builder) newBlock() *Block {
	blk := &Block{}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// jump ends the current block with an edge to next and makes next
// current. A terminated block (return/panic/branch already taken, cur ==
// nil) just switches to next.
func (b *builder) jump(next *Block) {
	if b.cur != nil && b.cur.Return == nil && !b.cur.Panics {
		b.cur.Succs = append(b.cur.Succs, next)
	}
	b.cur = next
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock() // unreachable code after return/branch
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		thenBlk := b.newBlock()
		joinBlk := b.newBlock()
		b.cur = thenBlk
		condBlk.Succs = append(condBlk.Succs, thenBlk)
		b.stmtList(s.Body.List)
		b.jumpOnly(joinBlk)
		if s.Else != nil {
			elseBlk := b.newBlock()
			condBlk.Succs = append(condBlk.Succs, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			b.jumpOnly(joinBlk)
		} else {
			condBlk.Succs = append(condBlk.Succs, joinBlk)
		}
		b.cur = joinBlk
	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		condBlk := b.newBlock()
		bodyBlk := b.newBlock()
		postBlk := b.newBlock()
		exitBlk := b.newBlock()
		b.jump(condBlk)
		if s.Cond != nil {
			b.add(s.Cond)
			condBlk.Succs = append(condBlk.Succs, bodyBlk, exitBlk)
		} else {
			condBlk.Succs = append(condBlk.Succs, bodyBlk)
		}
		b.pushLoop(label, exitBlk, postBlk)
		b.cur = bodyBlk
		b.stmtList(s.Body.List)
		b.popLoop()
		b.jumpOnly(postBlk)
		b.cur = postBlk
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.jump(condBlk)
		b.cur = exitBlk
	case *ast.RangeStmt:
		label := b.takeLabel()
		condBlk := b.newBlock()
		bodyBlk := b.newBlock()
		exitBlk := b.newBlock()
		b.add(s.X)
		b.jump(condBlk)
		condBlk.Succs = append(condBlk.Succs, bodyBlk, exitBlk)
		b.pushLoop(label, exitBlk, condBlk)
		b.cur = bodyBlk
		b.stmtList(s.Body.List)
		b.popLoop()
		b.jumpOnly(condBlk)
		b.cur = exitBlk
	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(label, s.Body, nil)
	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(label, s.Body, nil)
	case *ast.SelectStmt:
		b.selectMode = true
		b.switchBody(b.takeLabel(), s.Body, func(c ast.Stmt) ast.Node {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				return cc.Comm
			}
			return nil
		})
	case *ast.ReturnStmt:
		b.add(s)
		b.cur.Return = s
		b.cur = nil
	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(b.breaks, s.Label); t != nil {
				b.cur.Succs = append(b.cur.Succs, t)
			}
			b.cur = nil
		case token.CONTINUE:
			if t := b.findTarget(b.conts, s.Label); t != nil {
				b.cur.Succs = append(b.cur.Succs, t)
			}
			b.cur = nil
		case token.GOTO:
			if s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// handled structurally by switchBody (clause bodies are
			// chained when they end in fallthrough)
		}
	case *ast.LabeledStmt:
		lbl := b.newBlock()
		b.jump(lbl)
		b.labels[s.Label.Name] = &labelInfo{block: lbl}
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)
	case *ast.ExprStmt:
		b.add(s)
		if isTerminatingCall(s.X) {
			b.cur.Panics = true
			b.cur = nil
		}
	case *ast.EmptyStmt:
	default:
		// Assign/Decl/IncDec/Send/Go and anything else: straight-line.
		b.add(s)
	}
}

// jumpOnly adds an edge to next without making it current (used to close
// a branch arm into a join block).
func (b *builder) jumpOnly(next *Block) {
	if b.cur != nil && b.cur.Return == nil && !b.cur.Panics {
		b.cur.Succs = append(b.cur.Succs, next)
	}
	b.cur = nil
}

// switchBody wires the clauses of a switch/type-switch/select. comm, when
// non-nil, extracts a per-clause communication node to record.
func (b *builder) switchBody(label string, body *ast.BlockStmt, comm func(ast.Stmt) ast.Node) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	joinBlk := b.newBlock()
	b.pushSwitch(label, joinBlk)
	hasDefault := false
	var clauseBlks []*Block
	var clauses []ast.Stmt
	for _, c := range body.List {
		blk := b.newBlock()
		head.Succs = append(head.Succs, blk)
		clauseBlks = append(clauseBlks, blk)
		clauses = append(clauses, c)
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			}
		}
	}
	for i, c := range clauses {
		b.cur = clauseBlks[i]
		var list []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				b.add(e)
			}
			list = cc.Body
		case *ast.CommClause:
			if comm != nil {
				if n := comm(c); n != nil {
					b.add(n)
				}
			}
			list = cc.Body
		}
		fallsThrough := false
		if n := len(list); n > 0 {
			if br, ok := list[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
		}
		b.stmtList(list)
		if fallsThrough && i+1 < len(clauseBlks) {
			b.jumpOnly(clauseBlks[i+1])
		} else {
			b.jumpOnly(joinBlk)
		}
	}
	isSelect := b.selectMode
	b.selectMode = false
	if !isSelect && (!hasDefault || len(clauses) == 0) {
		// No default: the switch may match nothing and fall through. A
		// select without a default instead blocks until a case fires, so
		// it gets no skip edge.
		head.Succs = append(head.Succs, joinBlk)
	}
	b.popSwitch()
	b.cur = joinBlk
}

func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, &target{label: label, block: brk})
	b.conts = append(b.conts, &target{label: label, block: cont})
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.conts = b.conts[:len(b.conts)-1]
}

func (b *builder) pushSwitch(label string, brk *Block) {
	b.breaks = append(b.breaks, &target{label: label, block: brk})
}

func (b *builder) popSwitch() {
	b.breaks = b.breaks[:len(b.breaks)-1]
}

func (b *builder) findTarget(stack []*target, label *ast.Ident) *Block {
	if label == nil {
		if len(stack) == 0 {
			return nil
		}
		return stack[len(stack)-1].block
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label.Name {
			return stack[i].block
		}
	}
	return nil
}

// takeLabel consumes the label set by an immediately-enclosing
// LabeledStmt: `loop: for ...` must answer break/continue to "loop".
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// Exit returns the function's synthetic exit block.
func (g *Graph) Exit() *Block {
	for _, b := range g.Blocks {
		if b.Exit {
			return b
		}
	}
	return nil
}

// isTerminatingCall reports whether e is a call that never returns:
// panic(...), os.Exit, log.Fatal*, runtime.Goexit, (testing helpers are
// not analyzed). Purely syntactic — good enough for lint purposes.
func isTerminatingCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fn.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fn.Sel.Name {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}
