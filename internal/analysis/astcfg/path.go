package astcfg

import "go/ast"

// PathTo searches for a control-flow path that starts just after `from`
// (or at function entry when from is nil), reaches a node satisfying
// `bad`, and passes through no node satisfying `stop` on the way. It
// returns the offending node and true when such a path exists.
//
// Reaching the synthetic exit block (falling off the end of the body)
// consults bad(nil), so callers can treat an implicit return as a
// reportable end point. A block that panics closes its path. stop is
// consulted before bad on each node, so a statement that both discharges
// an obligation and exits (e.g. `return x` transferring ownership of x)
// counts as discharged.
//
// This is the one query all of reprolint's flow checks reduce to:
//   - releasecheck:  bad = non-exempt exit, stop = release/transfer of x
//   - flushcheck:    bad = success return,  stop = TLB flush call
//   - fsyncorder:    bad = log commit,      stop = sync call
func (g *Graph) PathTo(from ast.Node, bad, stop func(ast.Node) bool) (ast.Node, bool) {
	startBlk := g.Entry
	startIdx := 0
	if from != nil {
		startBlk = nil
	search:
		for _, blk := range g.Blocks {
			for i, n := range blk.Nodes {
				if n == from {
					startBlk, startIdx = blk, i+1
					break search
				}
			}
		}
		if startBlk == nil {
			// from is nested inside a block node (e.g. a call expression
			// in an if-init statement): match by position containment.
		containment:
			for _, blk := range g.Blocks {
				for i, n := range blk.Nodes {
					if n.Pos() <= from.Pos() && from.End() <= n.End() {
						startBlk, startIdx = blk, i+1
						break containment
					}
				}
			}
		}
		if startBlk == nil {
			return nil, false
		}
	}
	visited := map[*Block]bool{startBlk: true}
	var walk func(blk *Block, idx int) (ast.Node, bool)
	walk = func(blk *Block, idx int) (ast.Node, bool) {
		for i := idx; i < len(blk.Nodes); i++ {
			n := blk.Nodes[i]
			if stop != nil && stop(n) {
				return nil, false
			}
			if bad(n) {
				return n, true
			}
		}
		if blk.Panics {
			return nil, false
		}
		if blk.Return != nil {
			// The return node itself was already tested against stop/bad
			// in the loop above; don't fall through to the exit block,
			// which models only the implicit end-of-body return.
			return nil, false
		}
		if blk.Exit {
			if bad(nil) {
				return nil, true
			}
			return nil, false
		}
		for _, s := range blk.Succs {
			if visited[s] {
				continue
			}
			visited[s] = true
			if n, ok := walk(s, 0); ok {
				return n, ok
			}
		}
		return nil, false
	}
	return walk(startBlk, startIdx)
}
