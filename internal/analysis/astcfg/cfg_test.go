package astcfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFunc parses src as the body of a single function declaration and
// returns its CFG.
func buildFunc(t *testing.T, src string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return Build(fd.Body)
		}
	}
	t.Fatal("no func decl")
	return nil
}

// isCall reports whether n is a statement calling the named function.
func isCall(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
}

// anyExit matches any function exit: a return statement or the implicit
// end of body (nil).
func anyExit(n ast.Node) bool {
	if n == nil {
		return true
	}
	_, ok := n.(*ast.ReturnStmt)
	return ok
}

func TestEveryPathThroughCall(t *testing.T) {
	cases := []struct {
		name string
		src  string
		leak bool // an exit reachable without passing through stop()
	}{
		{"linear", `func f() { acq(); stop() }`, false},
		{"missing", `func f() { acq() }`, true},
		{"early-return", `func f() { acq(); if c { return }; stop() }`, true},
		{"both-arms", `func f() { acq(); if c { stop(); return }; stop() }`, false},
		{"else-arm", `func f() { acq(); if c { stop() } else { stop() } }`, false},
		{"else-missing", `func f() { acq(); if c { stop() } else { } }`, true},
		{"loop-break", `func f() { acq(); for { if c { break }; stop() } }`, true},
		{"loop-post-stop", `func f() { acq(); for { if c { break } }; stop() }`, false},
		{"switch-default", `func f() { acq(); switch x { case 1: stop(); default: stop() } }`, false},
		{"switch-no-default", `func f() { acq(); switch x { case 1: stop() } }`, true},
		{"switch-fallthrough", `func f() { acq(); switch x { case 1: fallthrough; case 2: stop(); default: stop() } }`, false},
		{"panic-path", `func f() { acq(); if c { panic("x") }; stop() }`, false},
		{"osexit-path", `func f() { acq(); if c { os.Exit(1) }; stop() }`, false},
		{"labeled-break", "func f() { acq()\nouter: for { for { break outer }; stop() } }", true},
		{"goto-skips", "func f() { acq(); goto end; stop()\nend: return }", true},
		{"range", `func f() { acq(); for range xs { stop() } }`, true},
		{"select-all-arms", `func f() { acq(); select { case <-a: stop(); case <-b: stop() } }`, false},
		{"select-one-arm", `func f() { acq(); select { case <-a: stop(); case <-b: } }`, true},
		{"type-switch", `func f() { acq(); switch x.(type) { case int: stop(); default: stop() } }`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := buildFunc(t, tc.src)
			// Find the acq() statement as the path start.
			var from ast.Node
			for _, blk := range g.Blocks {
				for _, n := range blk.Nodes {
					if isCall("acq")(n) {
						from = n
					}
				}
			}
			if from == nil {
				t.Fatal("acq() statement not found in graph")
			}
			_, leak := g.PathTo(from, anyExit, isCall("stop"))
			if leak != tc.leak {
				t.Errorf("leak = %v, want %v", leak, tc.leak)
			}
		})
	}
}

func TestPathToCommitOrdering(t *testing.T) {
	// fsyncorder shape: a path from publish() to commit() that skips
	// sync() must be detected; syncing on every such path must not.
	bad := isCall("commit")
	stop := isCall("sync")
	find := func(g *Graph) ast.Node {
		for _, blk := range g.Blocks {
			for _, n := range blk.Nodes {
				if isCall("publish")(n) {
					return n
				}
			}
		}
		return nil
	}
	g := buildFunc(t, `func f() { publish(); sync(); commit() }`)
	if _, ok := g.PathTo(find(g), func(n ast.Node) bool { return n != nil && bad(n) }, stop); ok {
		t.Error("synced publish→commit reported")
	}
	g = buildFunc(t, `func f() { publish(); if c { sync() }; commit() }`)
	if _, ok := g.PathTo(find(g), func(n ast.Node) bool { return n != nil && bad(n) }, stop); !ok {
		t.Error("conditionally-synced publish→commit not reported")
	}
}

func TestDefersCollected(t *testing.T) {
	g := buildFunc(t, `func f() { defer cleanup(); if c { return }; defer later() }`)
	if len(g.Defers) != 2 {
		t.Fatalf("defers = %d, want 2", len(g.Defers))
	}
}

func TestNilBody(t *testing.T) {
	g := Build(nil)
	if g.Entry == nil || g.Exit() == nil {
		t.Fatal("nil body graph missing entry/exit")
	}
	if _, ok := g.PathTo(nil, anyExit, nil); !ok {
		t.Fatal("entry should reach implicit exit")
	}
}
