// Package hotpath enforces the repo's performance invariants on the
// functions that carry them: the paper's pitch only holds if capture
// and page access stay at hardware speed, so the TLB hit paths, the
// epoch bump, the sharded deque and the service shard lookup must not
// regress into allocation or blocking without the diff saying so.
//
// A function annotated `// hot_path:` may contain
//
//   - no heap-allocation site: new/make, append (growth is a heap
//     operation; provably amortized growth carries a //lint:ignore),
//     &composite and slice/map literals, escaping closure literals,
//     method-value bindings, interface boxing at assignments,
//     arguments, returns and conversions, string concatenation or
//     string<->[]byte/[]rune conversion, and variadic calls (the
//     argument slice allocates — this is what keeps fmt out);
//   - no defer, except a deferred Unlock/RUnlock of a lock class the
//     annotation allows via locks=;
//   - no blocking op: channel send/receive outside a select with a
//     default, select without default, ranging over a channel, go
//     statements, WaitGroup/Cond waits, time.Sleep, and mutex
//     acquisition unless the class is named in locks=.
//
// The discipline is transitive: every resolved callee must itself be
// hot_path:, cheap:, or on the small stdlib allowlist (sync/atomic,
// math/bits, encoding/binary, WaitGroup.Add/Done, runtime.KeepAlive).
// A `// cheap:` function is trusted to be amortized-cheap — it may
// allocate (the CoW fault path allocates the private copy by design)
// and its callees are not chased, but direct blocking ops in it are
// still findings. Arguments to panic are exempt from the boxing rules:
// a panicking execution has already left the hot path.
//
// Known soundness holes, deliberate and documented (DESIGN.md
// "Performance invariants"): cheap bodies are trusted, not measured
// (escapegate and the AllocsPerOp gates are the dynamic backstop);
// calls through function values resolve to no callee and are reported
// as unresolvable rather than traced; map writes of interface values
// and implicit conversions in composite-literal elements are not
// boxing-checked.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/reprolint"
)

// Analyzer is the hot-path performance-invariant checker.
var Analyzer = &reprolint.Analyzer{
	Name:       "hotpath",
	Doc:        "hot_path: functions must not allocate, defer, or block; callees must be hot_path, cheap, or allowlisted",
	RunProgram: run,
}

// cheapPkgs are stdlib packages whose functions and methods are
// allocation-free and non-blocking for our call patterns.
var cheapPkgs = map[string]bool{
	"sync/atomic":     true,
	"math/bits":       true,
	"encoding/binary": true,
}

// cheapFuncs are individually allowlisted stdlib functions.
var cheapFuncs = map[string]bool{
	"(*sync.WaitGroup).Add":  true,
	"(*sync.WaitGroup).Done": true,
	"runtime.KeepAlive":      true,
}

// blockingFuncs block the calling goroutine outright.
var blockingFuncs = map[string]bool{
	"(*sync.WaitGroup).Wait": true,
	"(*sync.Cond).Wait":      true,
	"(*sync.Once).Do":        true,
	"time.Sleep":             true,
}

// acquireFuncs block until the lock is free; allowed only for locks=
// classes. TryLock/TryRLock never block and are not listed.
var acquireFuncs = map[string]bool{
	"(*sync.Mutex).Lock":    true,
	"(*sync.RWMutex).Lock":  true,
	"(*sync.RWMutex).RLock": true,
}

// releaseFuncs are the unlock methods the defer exemption recognizes.
var releaseFuncs = map[string]bool{
	"(*sync.Mutex).Unlock":    true,
	"(*sync.RWMutex).Unlock":  true,
	"(*sync.RWMutex).RUnlock": true,
}

type checker struct {
	pass *reprolint.ProgramPass
	g    *callgraph.Graph
	ann  map[*callgraph.Node]reprolint.FuncAnn
}

func run(pass *reprolint.ProgramPass) error {
	c := &checker{
		pass: pass,
		g:    callgraph.Build(pass.Prog),
		ann:  map[*callgraph.Node]reprolint.FuncAnn{},
	}
	for _, n := range c.g.Nodes {
		if n.Decl != nil {
			c.ann[n] = reprolint.FuncAnnotation(n.Decl)
		}
	}
	for _, n := range c.g.Nodes {
		a := c.ann[n]
		locks := nameSet(a.HotLocks)
		switch {
		case a.HotPath:
			c.checkHot(n, locks)
		case a.Cheap:
			c.checkCheap(n, locks)
		}
	}
	return nil
}

func nameSet(names []string) map[string]bool {
	if len(names) == 0 {
		return nil
	}
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// checkHot enforces the full hot-path discipline on n's body. locks is
// the set of lock-field classes the annotation allows acquiring.
func (c *checker) checkHot(n *callgraph.Node, locks map[string]bool) {
	info := n.Pkg.TypesInfo
	name := n.Name()
	edges := make(map[*ast.CallExpr]callgraph.Edge, len(n.Calls))
	for _, e := range n.Calls {
		edges[e.Site] = e
	}
	nonBlock := nonBlockingOps(n.Body)
	// invoked marks immediately-invoked literals (checked through their
	// own node, with the same lock context) and the selector expressions
	// serving as call funs (so x.m() is not a method-value binding).
	invoked := map[*ast.FuncLit]bool{}
	callFuns := map[ast.Expr]bool{}
	var walk func(root ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if m == root {
					return true
				}
				if !invoked[m] {
					c.pass.Reportf(m.Pos(), "closure literal in hot path %s escapes (allocates); only an immediately-invoked literal is exempt", name)
				}
				return false // the literal's body is its own node
			case *ast.GoStmt:
				callFuns[ast.Unparen(m.Call.Fun)] = true
				c.pass.Reportf(m.Pos(), "go statement in hot path %s: spawning a goroutine allocates and hands off to the scheduler", name)
			case *ast.DeferStmt:
				callFuns[ast.Unparen(m.Call.Fun)] = true
				if !c.deferredUnlock(info, m.Call, locks) {
					c.pass.Reportf(m.Pos(), "defer in hot path %s; only a deferred Unlock of a locks= class is exempt", name)
				}
			case *ast.SendStmt:
				if !nonBlock[m] {
					c.pass.Reportf(m.Pos(), "channel send in hot path %s blocks", name)
				}
			case *ast.UnaryExpr:
				if m.Op == token.ARROW && !nonBlock[m] {
					c.pass.Reportf(m.Pos(), "channel receive in hot path %s blocks", name)
				}
				if m.Op == token.AND {
					if _, ok := ast.Unparen(m.X).(*ast.CompositeLit); ok {
						c.pass.Reportf(m.Pos(), "heap allocation in hot path %s: &composite literal", name)
					}
				}
			case *ast.SelectStmt:
				if !hasDefault(m) {
					c.pass.Reportf(m.Pos(), "select without default in hot path %s blocks", name)
				}
			case *ast.RangeStmt:
				if t := info.Types[m.X].Type; t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						c.pass.Reportf(m.Pos(), "ranging over a channel in hot path %s blocks", name)
					}
				}
			case *ast.CompositeLit:
				if t := info.Types[m].Type; t != nil {
					switch t.Underlying().(type) {
					case *types.Slice:
						c.pass.Reportf(m.Pos(), "heap allocation in hot path %s: slice literal", name)
					case *types.Map:
						c.pass.Reportf(m.Pos(), "heap allocation in hot path %s: map literal", name)
					}
				}
			case *ast.BinaryExpr:
				if m.Op == token.ADD && isStringType(info.Types[m].Type) && info.Types[m].Value == nil {
					c.pass.Reportf(m.Pos(), "string concatenation in hot path %s allocates", name)
				}
			case *ast.SelectorExpr:
				if sel, ok := info.Selections[m]; ok && sel.Kind() == types.MethodVal && !callFuns[m] {
					c.pass.Reportf(m.Pos(), "method value binding in hot path %s allocates a closure", name)
				}
			case *ast.AssignStmt:
				if m.Tok == token.ASSIGN && len(m.Lhs) == len(m.Rhs) {
					for i, lhs := range m.Lhs {
						if t := info.Types[lhs].Type; c.boxes(info, t, m.Rhs[i]) {
							c.pass.Reportf(m.Rhs[i].Pos(), "interface boxing in hot path %s: assignment allocates", name)
						}
					}
				}
				if m.Tok == token.ADD_ASSIGN && isStringType(info.Types[m.Lhs[0]].Type) {
					c.pass.Reportf(m.Pos(), "string concatenation in hot path %s allocates", name)
				}
			case *ast.ValueSpec:
				for i, v := range m.Values {
					if i < len(m.Names) {
						if obj := info.Defs[m.Names[i]]; obj != nil && c.boxes(info, obj.Type(), v) {
							c.pass.Reportf(v.Pos(), "interface boxing in hot path %s: declaration allocates", name)
						}
					}
				}
			case *ast.ReturnStmt:
				sig := c.signatureOf(n)
				if sig != nil && len(m.Results) == sig.Results().Len() {
					for i, r := range m.Results {
						if c.boxes(info, sig.Results().At(i).Type(), r) {
							c.pass.Reportf(r.Pos(), "interface boxing in hot path %s: return allocates", name)
						}
					}
				}
			case *ast.CallExpr:
				callFuns[ast.Unparen(m.Fun)] = true
				c.checkCall(n, m, edges, locks, invoked, name)
			}
			return true
		})
	}
	walk(n.Body)
}

// checkCall applies the allocation and call-discipline rules to one
// callsite in a hot function.
func (c *checker) checkCall(n *callgraph.Node, call *ast.CallExpr, edges map[*ast.CallExpr]callgraph.Edge, locks map[string]bool, invoked map[*ast.FuncLit]bool, name string) {
	info := n.Pkg.TypesInfo
	fun := ast.Unparen(call.Fun)

	// Builtins: the allocating ones are findings, the rest are free.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "new":
				c.pass.Reportf(call.Pos(), "heap allocation in hot path %s: new", name)
			case "make":
				c.pass.Reportf(call.Pos(), "heap allocation in hot path %s: make", name)
			case "append":
				c.pass.Reportf(call.Pos(), "append in hot path %s may grow its backing array", name)
			}
			return
		}
	}

	// Conversions: string<->bytes allocates; converting a concrete value
	// to an interface type boxes. Constant-folded conversions are free.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 || info.Types[call].Value != nil {
			return
		}
		dst, src := tv.Type, info.Types[call.Args[0]].Type
		if src == nil {
			return
		}
		if isStringType(dst) != isStringType(src) && (isStringType(dst) || isStringType(src)) {
			c.pass.Reportf(call.Pos(), "string conversion in hot path %s allocates", name)
		}
		if c.boxes(info, dst, call.Args[0]) {
			c.pass.Reportf(call.Pos(), "interface boxing in hot path %s: conversion allocates", name)
		}
		return
	}

	// Immediately-invoked literal: its body runs here, under the same
	// lock context, through its own call-graph node.
	if lit, ok := fun.(*ast.FuncLit); ok {
		invoked[lit] = true
		if ln, ok := c.g.ByLit[lit]; ok {
			c.checkHot(ln, locks)
		}
		c.checkCallBoxing(info, call, name)
		return
	}

	e, ok := edges[call]
	if !ok {
		return
	}
	if e.Go || e.Defer {
		return // reported by the go/defer rules
	}
	// A call to a generic function resolves to the instantiated method
	// object (the graph keys the generic origin), and a cross-package
	// call resolves to an export-data object (the graph keys the
	// source-checked one); bridge both before declaring it external.
	if len(e.Callees) == 0 && e.Func != nil {
		orig := e.Func.Origin()
		if target, ok := c.g.ByFunc[orig]; ok {
			e.Callees = []*callgraph.Node{target}
		} else if target, ok := c.g.ByName[orig.FullName()]; ok {
			e.Callees = []*callgraph.Node{target}
		}
	}

	if e.Func != nil {
		full := e.Func.FullName()
		switch {
		case blockingFuncs[full]:
			c.pass.Reportf(call.Pos(), "%s in hot path %s blocks", full, name)
			return
		case acquireFuncs[full]:
			if cls := lockClass(fun); !locks[cls] {
				c.pass.Reportf(call.Pos(), "acquiring %s in hot path %s blocks; name it in the annotation (hot_path: locks=%s) if this short critical section is part of the contract", cls, name, cls)
			}
			return
		case releaseFuncs[full]:
			return // releasing never blocks; acquisition is the witness
		case cheapFuncs[full]:
			c.checkCallBoxing(info, call, name)
			return
		}
		if pkg := e.Func.Pkg(); pkg != nil && cheapPkgs[pkg.Path()] {
			c.checkCallBoxing(info, call, name)
			return
		}
	}

	switch {
	case len(e.Callees) > 0:
		for _, callee := range e.Callees {
			if callee.Lit != nil {
				continue // literals are flagged at their definition site
			}
			ca := c.ann[callee]
			if !ca.HotPath && !ca.Cheap {
				c.pass.Reportf(call.Pos(), "hot path %s calls %s, which is neither hot_path: nor cheap:", name, callee.Name())
			}
		}
	case e.Func != nil:
		c.pass.Reportf(call.Pos(), "hot path %s calls %s, which is outside the program and not on the cheap allowlist", name, e.Func.FullName())
	default:
		c.pass.Reportf(call.Pos(), "call through a function value in hot path %s: callee unresolvable, cannot prove it cheap", name)
	}
	c.checkCallBoxing(info, call, name)
}

// checkCallBoxing reports arguments that box into interface parameters
// and variadic calls (whose argument slice allocates). Arguments to
// panic never reach here (panic is a builtin).
func (c *checker) checkCallBoxing(info *types.Info, call *ast.CallExpr, name string) {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	fixed := params.Len()
	if sig.Variadic() {
		fixed--
		if call.Ellipsis == token.NoPos && len(call.Args) > fixed {
			c.pass.Reportf(call.Pos(), "variadic call in hot path %s allocates its argument slice", name)
		}
	}
	for i, arg := range call.Args {
		if i >= fixed {
			break // variadic tail already reported as a slice allocation
		}
		if c.boxes(info, params.At(i).Type(), arg) {
			c.pass.Reportf(arg.Pos(), "interface boxing in hot path %s: argument allocates", name)
		}
	}
}

// boxes reports whether passing src into a slot of type dst converts a
// concrete value to an interface (which allocates). Type parameters are
// skipped: their instantiations are checked at concrete callsites.
func (c *checker) boxes(info *types.Info, dst types.Type, src ast.Expr) bool {
	if dst == nil {
		return false
	}
	if _, isTP := types.Unalias(dst).(*types.TypeParam); isTP {
		return false
	}
	if !types.IsInterface(dst) {
		return false
	}
	tv, ok := info.Types[src]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	st := tv.Type
	if _, isTP := types.Unalias(st).(*types.TypeParam); isTP {
		return false
	}
	return !types.IsInterface(st)
}

// checkCheap trusts n's body to be amortized-cheap but still rejects
// direct blocking operations in it.
func (c *checker) checkCheap(n *callgraph.Node, locks map[string]bool) {
	info := n.Pkg.TypesInfo
	name := n.Name()
	nonBlock := nonBlockingOps(n.Body)
	ast.Inspect(n.Body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false // a literal is its own node; cheap does not extend
		case *ast.SendStmt:
			if !nonBlock[m] {
				c.pass.Reportf(m.Pos(), "channel send in cheap function %s blocks", name)
			}
		case *ast.UnaryExpr:
			if m.Op == token.ARROW && !nonBlock[m] {
				c.pass.Reportf(m.Pos(), "channel receive in cheap function %s blocks", name)
			}
		case *ast.SelectStmt:
			if !hasDefault(m) {
				c.pass.Reportf(m.Pos(), "select without default in cheap function %s blocks", name)
			}
		case *ast.RangeStmt:
			if t := info.Types[m.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					c.pass.Reportf(m.Pos(), "ranging over a channel in cheap function %s blocks", name)
				}
			}
		case *ast.CallExpr:
			if fn := reprolint.CalleeFunc(info, m); fn != nil {
				full := fn.FullName()
				switch {
				case blockingFuncs[full]:
					c.pass.Reportf(m.Pos(), "%s in cheap function %s blocks", full, name)
				case acquireFuncs[full]:
					if cls := lockClass(ast.Unparen(m.Fun)); !locks[cls] {
						c.pass.Reportf(m.Pos(), "acquiring %s in cheap function %s blocks; name it in the annotation (cheap: locks=%s) if intended", cls, name, cls)
					}
				}
			}
		}
		return true
	})
}

// deferredUnlock reports whether call is `<lock>.Unlock()`/`RUnlock()`
// on a locks= class — the one defer hot paths are allowed.
func (c *checker) deferredUnlock(info *types.Info, call *ast.CallExpr, locks map[string]bool) bool {
	fn := reprolint.CalleeFunc(info, call)
	if fn == nil || !releaseFuncs[fn.FullName()] {
		return false
	}
	return locks[lockClass(ast.Unparen(call.Fun))]
}

// lockClass names the lock a Lock/Unlock call is on: the final selector
// component (or identifier) of the receiver expression.
func lockClass(fun ast.Expr) string {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch recv := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		return recv.Sel.Name
	case *ast.Ident:
		return recv.Name
	}
	return ""
}

func (c *checker) signatureOf(n *callgraph.Node) *types.Signature {
	if n.Func != nil {
		if sig, ok := n.Func.Type().(*types.Signature); ok {
			return sig
		}
	}
	if n.Lit != nil {
		if tv, ok := n.Pkg.TypesInfo.Types[n.Lit]; ok {
			if sig, ok := tv.Type.(*types.Signature); ok {
				return sig
			}
		}
	}
	return nil
}

// nonBlockingOps marks the send/receive operations appearing as the
// comm clauses of a select that has a default: they poll, not block.
func nonBlockingOps(body ast.Node) map[ast.Node]bool {
	m := map[ast.Node]bool{}
	ast.Inspect(body, func(x ast.Node) bool {
		sel, ok := x.(*ast.SelectStmt)
		if !ok || !hasDefault(sel) {
			return true
		}
		for _, cl := range sel.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ast.Inspect(cc.Comm, func(y ast.Node) bool {
				switch y := y.(type) {
				case *ast.SendStmt:
					m[y] = true
				case *ast.UnaryExpr:
					if y.Op == token.ARROW {
						m[y] = true
					}
				}
				return true
			})
		}
		return true
	})
	return m
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
