package hotpath_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	antest.Run(t, "../testdata", hotpath.Analyzer, "hotpathtest")
}
