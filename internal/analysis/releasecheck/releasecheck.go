// Package releasecheck implements reprolint's ownership analyzer: a
// flow-sensitive (per-function, CFG-based) check that every value
// obtained from a snapshot/frame acquisition function reaches a Release
// or an ownership transfer on every control-flow path — early
// `return err` paths included.
//
// Acquisitions are calls to functions/methods on the acquisition name
// list (Capture, CaptureAtDepth, Retain, Restore, Fork, Alloc, clone,
// Materialize, Snapshot, Load, Get) whose first result is a pointer to a
// struct — the shape of snapshot.State, snapshot.Context,
// mem.AddressSpace, mem.Frame, fs.FS and fs.Snapshot handles. The
// refcount arithmetic itself (N retains for N queue items) is runtime
// business — the tree's Live counters and the -race suites own it; this
// checker owns the structural property that no path simply forgets the
// value.
//
// An obligation is discharged by, on every path to an exit:
//   - a call to a releasing method on the value (Release, Close),
//   - a transfer: the value passed as a call argument, placed in a
//     composite literal, returned, assigned (ownership moves with the
//     value), sent on a channel, address-taken, or captured by a
//     function literal,
//   - a deferred statement mentioning the value (defers run at every
//     exit), or
//   - the path being unreachable on success: returns inside an
//     `if err != nil` guard of the acquisition's own error are exempt,
//     as are returns that propagate that error.
//
// A deliberate hand-off the analyzer cannot see is silenced with
// `//lint:ownership transferred <why>` on the acquisition line or the
// line above. A discarded acquisition result (`tree.Capture(ctx, p)` as
// a bare statement) is reported unconditionally; a bare `x.Retain()`
// statement is the blessed refcount-bump idiom and is neither an
// acquisition nor a discharge.
package releasecheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/astcfg"
	"repro/internal/analysis/reprolint"
)

// Analyzer is the releasecheck analyzer.
var Analyzer = &reprolint.Analyzer{
	Name: "releasecheck",
	Doc:  "acquired snapshots/frames must be released or transferred on every path",
	Run:  run,
}

// acqNames are the function/method names whose pointer-to-struct results
// carry an ownership obligation.
var acqNames = map[string]bool{
	"Capture":        true,
	"CaptureAtDepth": true,
	"Retain":         true,
	"Restore":        true,
	"Fork":           true,
	"Alloc":          true,
	"clone":          true,
	"Materialize":    true,
	"Snapshot":       true,
	"Load":           true,
	"Get":            true,
}

// releaseNames are methods whose call on the value discharges it.
var releaseNames = map[string]bool{
	"Release": true,
	"Close":   true,
	"release": true,
	"Free":    true,
}

func run(pass *reprolint.Pass) error {
	for _, file := range pass.Files {
		for _, scope := range reprolint.FuncScopes(file) {
			checkScope(pass, scope)
		}
	}
	return nil
}

type obligation struct {
	varObj  types.Object // the local the acquired value is bound to
	errObj  types.Object // the paired error result, if any
	acqStmt ast.Stmt     // the statement performing the acquisition
	callee  string       // acquisition name, for the message
}

func checkScope(pass *reprolint.Pass, scope reprolint.FuncScope) {
	var graph *astcfg.Graph // built lazily: most functions acquire nothing
	var obls []obligation

	reprolint.InspectShallow(scope.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			name, acq := isAcquisition(pass.TypesInfo, call)
			if !acq {
				return true
			}
			lhs, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident)
			if !ok {
				// Assignment into a field, map or slice element: the
				// value is stored somewhere that outlives the function —
				// a transfer, not a discard.
				return true
			}
			if lhs.Name == "_" {
				if name != "Retain" && hasReleaseMethod(pass.TypesInfo, call) {
					pass.Reportf(n.Pos(), "result of %s is discarded; the acquired value can never be released", name)
				}
				return true
			}
			varObj := pass.TypesInfo.Defs[lhs]
			if varObj == nil {
				varObj = pass.TypesInfo.Uses[lhs]
			}
			if varObj == nil {
				return true
			}
			var errObj types.Object
			for _, l := range n.Lhs[1:] {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name != "_" {
					obj := pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = pass.TypesInfo.Uses[id]
					}
					if obj != nil && reprolint.IsErrorType(obj.Type()) {
						errObj = obj
					}
				}
			}
			obls = append(obls, obligation{varObj: varObj, errObj: errObj, acqStmt: n, callee: name})
		case *ast.ExprStmt:
			call, ok := ast.Unparen(n.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, acq := isAcquisition(pass.TypesInfo, call); acq && name != "Retain" && hasReleaseMethod(pass.TypesInfo, call) {
				pass.Reportf(n.Pos(), "result of %s is discarded; the acquired value can never be released", name)
			}
		}
		return true
	})

	if len(obls) == 0 {
		return
	}
	graph = astcfg.Build(scope.Body)

	for _, o := range obls {
		if deferConsumes(graph, pass.TypesInfo, o.varObj) {
			continue
		}
		exempt := reprolint.ErrGuardedNodes(scope.Body, pass.TypesInfo, o.errObj)
		stop := func(n ast.Node) bool {
			return consumes(pass.TypesInfo, n, o.varObj)
		}
		bad := func(n ast.Node) bool {
			if n == nil {
				return true // implicit end-of-body return
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return false
			}
			if exempt[ret] {
				return false // the acquisition failed; nothing to release
			}
			if o.errObj != nil && mentionsObj(pass.TypesInfo, ret, o.errObj) {
				return false // propagating the paired error
			}
			return true
		}
		if leak, ok := graph.PathTo(o.acqStmt, bad, stop); ok {
			where := "the end of the function"
			if ret, isRet := leak.(*ast.ReturnStmt); isRet && ret != nil {
				where = pass.Fset.Position(ret.Pos()).String()
			}
			pass.Reportf(o.acqStmt.Pos(),
				"%s obtained from %s is neither released nor transferred on the path reaching %s",
				o.varObj.Name(), o.callee, where)
		}
	}
}

// isAcquisition reports whether call is an ownership-creating call: its
// callee name is on the acquisition list and its first result is a
// pointer to a struct type.
func isAcquisition(info *types.Info, call *ast.CallExpr) (string, bool) {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		// sync/atomic receivers are lock-free publication, not resource
		// acquisition: atomic.Pointer[T].Load returns a *T the caller
		// never owns (the sealed-read TLB loads entries this way).
		if recv, ok := info.Types[fun.X]; ok && isAtomicType(recv.Type) {
			return "", false
		}
	default:
		return "", false
	}
	if !acqNames[name] {
		return "", false
	}
	tv, ok := info.Types[call]
	if !ok {
		return "", false
	}
	first := tv.Type
	if tuple, ok := first.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return "", false
		}
		first = tuple.At(0).Type()
	}
	ptr, ok := first.Underlying().(*types.Pointer)
	if !ok {
		return "", false
	}
	_, isStruct := ptr.Elem().Underlying().(*types.Struct)
	return name, isStruct
}

// isAtomicType reports whether t (possibly behind a pointer) is declared
// in sync/atomic.
func isAtomicType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if ok {
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync/atomic" {
			return true
		}
	}
	return false
}

// hasReleaseMethod reports whether the call's first result type has a
// release-family method in its method set. Discard reports are gated on
// it so that builder-style chaining APIs (every method returns the
// receiver) are not mistaken for dropped acquisitions.
func hasReleaseMethod(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	t := tv.Type
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(0).Type()
	}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if releaseNames[ms.At(i).Obj().Name()] {
			return true
		}
	}
	return false
}

// consumes reports whether executing node n discharges the obligation on
// obj: a releasing method call, or any transfer of the value.
func consumes(info *types.Info, n ast.Node, obj types.Object) bool {
	if n == nil {
		return false
	}
	found := false
	var walk func(node ast.Node)
	usesObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && (info.Uses[id] == obj || info.Defs[id] == obj)
	}
	walk = func(node ast.Node) {
		if found || node == nil {
			return
		}
		switch x := node.(type) {
		case *ast.CallExpr:
			// x.Release() / x.Close(): releasing method on the value.
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if releaseNames[sel.Sel.Name] && usesObj(sel.X) {
					found = true
					return
				}
			}
			// The value as an argument to any call: transfer.
			for _, arg := range x.Args {
				if usesObj(arg) {
					found = true
					return
				}
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if usesObj(v) {
					found = true
					return
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if usesObj(r) {
					found = true
					return
				}
			}
		case *ast.AssignStmt:
			// Ownership moves with the value: x on the RHS hands it to
			// another owner; x on the LHS ends this binding's lifetime
			// (the previous value must have been consumed before — the
			// checker stops tracking rather than guessing).
			for _, r := range x.Rhs {
				if usesObj(r) {
					found = true
					return
				}
			}
			for _, l := range x.Lhs {
				if usesObj(l) {
					found = true
					return
				}
			}
		case *ast.SendStmt:
			if usesObj(x.Value) {
				found = true
				return
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND && usesObj(x.X) {
				found = true
				return
			}
		case *ast.FuncLit:
			// Captured by a closure: the closure owns it now.
			if mentionsObj(info, x.Body, obj) {
				found = true
			}
			return // do not descend: inner uses were just accounted
		}
		// Generic descent.
		switch node.(type) {
		case ast.Expr, ast.Stmt:
			ast.Inspect(node, func(m ast.Node) bool {
				if found || m == nil {
					return false
				}
				if m == node {
					return true
				}
				walk(m)
				return false
			})
		}
	}
	walk(n)
	return found
}

// deferConsumes reports whether any defer in the graph mentions obj —
// deferred cleanups run at every exit reached after them, and the
// defer-at-acquisition idiom dominates this codebase.
func deferConsumes(g *astcfg.Graph, info *types.Info, obj types.Object) bool {
	for _, d := range g.Defers {
		if mentionsObj(info, d, obj) {
			return true
		}
	}
	return false
}

// mentionsObj reports whether any identifier under n resolves to obj.
func mentionsObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
			found = true
		}
		return !found
	})
	return found
}
