// Package releasecheck implements reprolint's ownership analyzer. Since
// PR 8 it is whole-program: a CHA call graph (internal/analysis/callgraph)
// and bottom-up ownership summaries let it see through helper chains, so
// helpers that release or transfer their arguments are inferred instead
// of annotated.
//
// Three diagnostics, all flow-sensitive over the per-function CFG:
//
//  1. Leak: a value obtained from a snapshot/frame acquisition function
//     (Capture, Fork, Retain, Alloc, ... — callgraph.AcqNames) reaches a
//     function exit on some path without being released or transferred.
//     Passing the value to a callee whose summary says it merely
//     *borrows* the matching parameter discharges nothing — only calls
//     that release or store the value (or calls the graph cannot
//     resolve, conservatively) do.
//  2. Double release: a path releases the same value twice — directly,
//     or through a helper chain whose summary releases the matching
//     parameter.
//  3. Use after release: a path mentions the value after a release event
//     (rebinding the variable resets tracking; transfers end it).
//
// An obligation is discharged by, on every path to an exit:
//   - a call to a releasing method on the value (Release, Close),
//   - a transfer: the value returned, stored in a composite literal /
//     field / channel / another variable, address-taken, captured by a
//     closure, or passed to a callee that releases or stores it,
//   - a deferred statement mentioning the value (defers run at every
//     exit), or
//   - the path being unreachable on success: returns inside an
//     `if err != nil` guard of the acquisition's own error are exempt,
//     as are returns that propagate that error.
//
// A deliberate hand-off the analyzer cannot see is silenced with
// `//lint:ownership transferred <why>` on the acquisition line or the
// line above; double-release/use-after-release findings honor the
// general `//lint:ignore releasecheck <why>`. A discarded acquisition
// result (`tree.Capture(ctx, p)` as a bare statement) is reported
// unconditionally; a bare `x.Retain()` statement is the blessed
// refcount-bump idiom and is neither an acquisition nor a discharge.
package releasecheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/astcfg"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/reprolint"
)

// Analyzer is the releasecheck analyzer.
var Analyzer = &reprolint.Analyzer{
	Name:       "releasecheck",
	Doc:        "acquired snapshots/frames must be released or transferred exactly once on every path",
	RunProgram: run,
}

func run(pass *reprolint.ProgramPass) error {
	g := callgraph.Build(pass.Prog)
	sums := g.Summaries()
	for _, n := range g.Nodes {
		checkNode(pass, n, sums)
	}
	return nil
}

type obligation struct {
	varObj  types.Object // the local the acquired value is bound to
	errObj  types.Object // the paired error result, if any
	acqStmt ast.Stmt     // the statement performing the acquisition
	callee  string       // acquisition name, for the message
}

// checkNode runs the leak check and the release-state machine over one
// function body.
func checkNode(pass *reprolint.ProgramPass, node *callgraph.Node, sums map[*callgraph.Node]*callgraph.Summary) {
	info := node.Pkg.TypesInfo
	edgeOf := map[*ast.CallExpr]callgraph.Edge{}
	for _, e := range node.Calls {
		edgeOf[e.Site] = e
	}

	var obls []obligation
	reprolint.InspectShallow(node.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			name, acq := isAcquisition(info, call)
			if !acq {
				return true
			}
			lhs, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident)
			if !ok {
				// Assignment into a field, map or slice element: the
				// value is stored somewhere that outlives the function —
				// a transfer, not a discard.
				return true
			}
			if lhs.Name == "_" {
				if name != "Retain" && hasReleaseMethod(info, call) {
					pass.Reportf(n.Pos(), "result of %s is discarded; the acquired value can never be released", name)
				}
				return true
			}
			varObj := info.Defs[lhs]
			if varObj == nil {
				varObj = info.Uses[lhs]
			}
			if varObj == nil {
				return true
			}
			var errObj types.Object
			for _, l := range n.Lhs[1:] {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name != "_" {
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj != nil && reprolint.IsErrorType(obj.Type()) {
						errObj = obj
					}
				}
			}
			obls = append(obls, obligation{varObj: varObj, errObj: errObj, acqStmt: n, callee: name})
		case *ast.ExprStmt:
			call, ok := ast.Unparen(n.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, acq := isAcquisition(info, call); acq && name != "Retain" && hasReleaseMethod(info, call) {
				pass.Reportf(n.Pos(), "result of %s is discarded; the acquired value can never be released", name)
			}
		}
		return true
	})

	// The state machine also tracks reference-like parameters: a helper
	// that releases its argument twice, or touches it after handing it
	// to a releasing callee, is a bug whether or not the value was
	// acquired here.
	params := referenceParams(node)

	if len(obls) == 0 && len(params) == 0 {
		return
	}
	graph := astcfg.Build(node.Body)

	for _, o := range obls {
		checkFlow(pass, node, graph, o, edgeOf, sums)
	}
	sm := &stateMachine{pass: pass, node: node, graph: graph, edgeOf: edgeOf, sums: sums}
	for _, o := range obls {
		if refcounted(info, node.Body, o.varObj) {
			continue
		}
		sm.check(o.varObj, o.acqStmt)
	}
	for _, p := range params {
		if refcounted(info, node.Body, p) {
			continue
		}
		sm.check(p, nil)
	}
}

// retainNames are the refcount-bump method names.
var retainNames = map[string]bool{
	"Retain": true, "retain": true, "Ref": true, "IncRef": true,
}

// refcounted reports whether obj's refcount is bumped somewhere in the
// body. Multiple releases of such a handle each drop one reference —
// counting them is beyond the automaton, so the double-release and
// use-after-release checks stand down (the leak check still runs).
func refcounted(info *types.Info, body ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !retainNames[sel.Sel.Name] {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
			found = true
		}
		return !found
	})
	return found
}

// checkFlow is the leak check: a path from the acquisition to a
// non-exempt exit with no consuming node.
func checkFlow(pass *reprolint.ProgramPass, node *callgraph.Node, graph *astcfg.Graph, o obligation, edgeOf map[*ast.CallExpr]callgraph.Edge, sums map[*callgraph.Node]*callgraph.Summary) {
	info := node.Pkg.TypesInfo
	if deferConsumes(graph, info, o.varObj) {
		return
	}
	exempt := reprolint.ErrGuardedNodes(node.Body, info, o.errObj)
	stop := func(n ast.Node) bool {
		return consumes(info, n, o.varObj, edgeOf, sums)
	}
	bad := func(n ast.Node) bool {
		if n == nil {
			return true // implicit end-of-body return
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return false
		}
		if exempt[ret] {
			return false // the acquisition failed; nothing to release
		}
		if o.errObj != nil && mentionsObj(info, ret, o.errObj) {
			return false // propagating the paired error
		}
		return true
	}
	if leak, ok := graph.PathTo(o.acqStmt, bad, stop); ok {
		where := "the end of the function"
		if ret, isRet := leak.(*ast.ReturnStmt); isRet && ret != nil {
			where = pass.Prog.Fset.Position(ret.Pos()).String()
		}
		pass.Reportf(o.acqStmt.Pos(),
			"%s obtained from %s is neither released nor transferred on the path reaching %s",
			o.varObj.Name(), o.callee, where)
	}
}

// referenceParams returns the node's parameter/receiver objects whose
// types are reference-like (carry a release-family method).
func referenceParams(node *callgraph.Node) []types.Object {
	sig := node.Signature()
	if sig == nil {
		return nil
	}
	var out []types.Object
	add := func(v *types.Var) {
		if v != nil && v.Name() != "" && v.Name() != "_" && callgraph.ReferenceLike(v.Type()) {
			out = append(out, v)
		}
	}
	add(sig.Recv())
	for i := 0; i < sig.Params().Len(); i++ {
		add(sig.Params().At(i))
	}
	return out
}

// isAcquisition reports whether call is an ownership-creating call: its
// callee name is on the acquisition list and its first result is a
// pointer to a struct type.
func isAcquisition(info *types.Info, call *ast.CallExpr) (string, bool) {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		// sync/atomic receivers are lock-free publication, not resource
		// acquisition: atomic.Pointer[T].Load returns a *T the caller
		// never owns (the sealed-read TLB loads entries this way).
		if recv, ok := info.Types[fun.X]; ok && isAtomicType(recv.Type) {
			return "", false
		}
	default:
		return "", false
	}
	if !callgraph.AcqNames[name] {
		return "", false
	}
	tv, ok := info.Types[call]
	if !ok {
		return "", false
	}
	first := tv.Type
	if tuple, ok := first.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return "", false
		}
		first = tuple.At(0).Type()
	}
	ptr, ok := first.Underlying().(*types.Pointer)
	if !ok {
		return "", false
	}
	_, isStruct := ptr.Elem().Underlying().(*types.Struct)
	return name, isStruct
}

// isAtomicType reports whether t (possibly behind a pointer) is declared
// in sync/atomic.
func isAtomicType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if ok {
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync/atomic" {
			return true
		}
	}
	return false
}

// hasReleaseMethod reports whether the call's first result type has a
// release-family method in its method set. Discard reports are gated on
// it so that builder-style chaining APIs (every method returns the
// receiver) are not mistaken for dropped acquisitions.
func hasReleaseMethod(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	t := tv.Type
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(0).Type()
	}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if callgraph.ReleaseNames[ms.At(i).Obj().Name()] {
			return true
		}
	}
	return false
}

// consumes reports whether executing node n discharges the obligation on
// obj: a releasing method call, or any transfer of the value. Passing
// the value to a callee whose summary borrows the matching parameter is
// NOT a discharge — the interprocedural upgrade over the per-function
// analyzer.
func consumes(info *types.Info, n ast.Node, obj types.Object, edgeOf map[*ast.CallExpr]callgraph.Edge, sums map[*callgraph.Node]*callgraph.Summary) bool {
	if n == nil {
		return false
	}
	found := false
	var walk func(node ast.Node)
	usesObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && (info.Uses[id] == obj || info.Defs[id] == obj)
	}
	walk = func(node ast.Node) {
		if found || node == nil {
			return
		}
		switch x := node.(type) {
		case *ast.CallExpr:
			// x.Release() / x.Close(): releasing method on the value.
			// Only zero-argument forms release their receiver — with
			// arguments the call releases the arguments instead
			// (`fa.release(frame)`), handled below.
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if callgraph.ReleaseNames[sel.Sel.Name] && len(x.Args) == 0 && usesObj(sel.X) {
					found = true
					return
				}
			}
			// The value as an argument: a transfer only when the callee
			// may release or store it (or cannot be resolved).
			for ai, arg := range x.Args {
				if usesObj(arg) {
					rel, esc := callgraph.ArgFate(info, edgeOf[x], x, ai, sums)
					if rel || esc {
						found = true
						return
					}
				}
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if usesObj(v) {
					found = true
					return
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if usesObj(r) {
					found = true
					return
				}
			}
		case *ast.AssignStmt:
			// Ownership moves with the value: x on the RHS hands it to
			// another owner; x on the LHS ends this binding's lifetime
			// (the previous value must have been consumed before — the
			// checker stops tracking rather than guessing).
			for _, r := range x.Rhs {
				if usesObj(r) {
					found = true
					return
				}
			}
			for _, l := range x.Lhs {
				if usesObj(l) {
					found = true
					return
				}
			}
		case *ast.SendStmt:
			if usesObj(x.Value) {
				found = true
				return
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND && usesObj(x.X) {
				found = true
				return
			}
		case *ast.FuncLit:
			// Captured by a closure: the closure owns it now.
			if mentionsObj(info, x.Body, obj) {
				found = true
			}
			return // do not descend: inner uses were just accounted
		}
		// Generic descent.
		switch node.(type) {
		case ast.Expr, ast.Stmt:
			ast.Inspect(node, func(m ast.Node) bool {
				if found || m == nil {
					return false
				}
				if m == node {
					return true
				}
				walk(m)
				return false
			})
		}
	}
	walk(n)
	return found
}

// deferConsumes reports whether any defer in the graph mentions obj —
// deferred cleanups run at every exit reached after them, and the
// defer-at-acquisition idiom dominates this codebase.
func deferConsumes(g *astcfg.Graph, info *types.Info, obj types.Object) bool {
	for _, d := range g.Defers {
		if mentionsObj(info, d, obj) {
			return true
		}
	}
	return false
}

// mentionsObj reports whether any identifier under n resolves to obj.
func mentionsObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
			found = true
		}
		return !found
	})
	return found
}
