package releasecheck_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/releasecheck"
)

func TestReleasecheck(t *testing.T) {
	antest.Run(t, "../testdata", releasecheck.Analyzer, "releasetest")
}
