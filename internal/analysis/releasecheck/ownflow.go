package releasecheck

// ownflow.go: the release-state machine behind releasecheck's
// double-release and use-after-release diagnostics. Each tracked value
// (an acquired local, or a reference-like parameter) is run through a
// three-state automaton over the function CFG:
//
//	live --release--> released --release--> REPORT double release
//	live --transfer-> (tracking ends: someone else owns it)
//	released --use/transfer--> REPORT use after release
//	released --rebind--> live (the variable now names a fresh value)
//
// "Release" includes passing the value to a callee whose ownership
// summary releases the matching parameter — that is what catches the
// double-release-through-helper-chain shape. Deferred statements are
// excluded (they run at exits, in reverse order, and modeling that
// precisely buys nothing here), so `defer st.Release()` followed by an
// explicit release is a known miss, not a false positive.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis/astcfg"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/reprolint"
)

type evKind int

const (
	evUse evKind = iota
	evRelease
	evTransfer
	evKill // the variable is rebound; previous value no longer reachable through it
)

type event struct {
	pos  token.Pos
	kind evKind
}

type ownState int

const (
	stLive ownState = iota
	stReleased
)

type stateMachine struct {
	pass   *reprolint.ProgramPass
	node   *callgraph.Node
	graph  *astcfg.Graph
	edgeOf map[*ast.CallExpr]callgraph.Edge
	sums   map[*callgraph.Node]*callgraph.Summary

	obj      types.Object
	events   map[ast.Node][]event // per-CFG-node cache for the current obj
	reported map[token.Pos]bool
	visited  map[*astcfg.Block]uint8
}

// check runs the automaton for obj. A non-nil acqStmt starts tracking
// just after that statement; nil means obj is a parameter, live on
// entry.
func (sm *stateMachine) check(obj types.Object, acqStmt ast.Stmt) {
	sm.obj = obj
	sm.events = map[ast.Node][]event{}
	sm.reported = map[token.Pos]bool{}
	sm.visited = map[*astcfg.Block]uint8{}

	if acqStmt == nil {
		sm.walk(sm.graph.Entry, 0, stLive, token.NoPos)
		return
	}
	for _, b := range sm.graph.Blocks {
		for i, n := range b.Nodes {
			if n == acqStmt {
				sm.runBlock(b, i+1, stLive, token.NoPos)
				return
			}
		}
	}
}

// walk processes block b from its first node in the given state, with
// cycle protection keyed on (block, state kind).
func (sm *stateMachine) walk(b *astcfg.Block, start int, st ownState, relPos token.Pos) {
	if start == 0 {
		bit := uint8(1) << uint(st)
		if sm.visited[b]&bit != 0 {
			return
		}
		sm.visited[b] |= bit
	}
	sm.runBlock(b, start, st, relPos)
}

// runBlock applies b.Nodes[start:]'s events, then recurses into the
// successors.
func (sm *stateMachine) runBlock(b *astcfg.Block, start int, st ownState, relPos token.Pos) {
	for _, n := range b.Nodes[start:] {
		for _, ev := range sm.eventsFor(n) {
			switch st {
			case stLive:
				switch ev.kind {
				case evRelease:
					st, relPos = stReleased, ev.pos
				case evTransfer:
					return // a new owner; this binding's story ends
				}
			case stReleased:
				switch ev.kind {
				case evRelease:
					sm.report(ev.pos, "%s is released again here (already released at %s)", relPos)
					return
				case evUse, evTransfer:
					sm.report(ev.pos, "%s is used after being released at %s", relPos)
					return
				case evKill:
					st, relPos = stLive, token.NoPos
				}
			}
		}
	}
	for _, succ := range b.Succs {
		sm.walk(succ, 0, st, relPos)
	}
}

func (sm *stateMachine) report(pos token.Pos, format string, relPos token.Pos) {
	if sm.reported[pos] {
		return
	}
	sm.reported[pos] = true
	sm.pass.Reportf(pos, format, sm.obj.Name(), sm.pass.Prog.Fset.Position(relPos))
}

// eventsFor extracts the ordered ownership events node n performs on the
// tracked object.
func (sm *stateMachine) eventsFor(n ast.Node) []event {
	if evs, ok := sm.events[n]; ok {
		return evs
	}
	var evs []event
	sm.extract(n, &evs)
	sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	sm.events[n] = evs
	return evs
}

func (sm *stateMachine) extract(n ast.Node, evs *[]event) {
	if n == nil {
		return
	}
	info := sm.node.Pkg.TypesInfo
	isObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && (info.Uses[id] == sm.obj || info.Defs[id] == sm.obj)
	}
	switch x := n.(type) {
	case *ast.DeferStmt:
		return // runs at exits; excluded by design (see file comment)
	case *ast.GoStmt:
		// The spawned goroutine owns whatever it captures or receives.
		if mentionsObj(info, x.Call, sm.obj) {
			*evs = append(*evs, event{pos: x.Pos(), kind: evTransfer})
		}
		return
	case *ast.CallExpr:
		// Zero-argument release-family call on the tracked value: a
		// definite release of the receiver.
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			if callgraph.ReleaseNames[sel.Sel.Name] && len(x.Args) == 0 && isObj(sel.X) {
				*evs = append(*evs, event{pos: x.Pos(), kind: evRelease})
				return
			}
		}
		sm.extract(x.Fun, evs)
		for ai, arg := range x.Args {
			if isObj(arg) {
				// Only a must-releasing callee arms the automaton; a
				// callee that releases on some paths (or stores the
				// value) makes the value's fate ambiguous, so tracking
				// ends instead of guessing.
				kind := evUse
				if callgraph.ArgMustRelease(info, sm.edgeOf[x], x, ai, sm.sums) {
					kind = evRelease
				} else if rel, esc := callgraph.ArgFate(info, sm.edgeOf[x], x, ai, sm.sums); rel || esc {
					kind = evTransfer
				}
				*evs = append(*evs, event{pos: arg.Pos(), kind: kind})
				continue
			}
			sm.extract(arg, evs)
		}
		return
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			if isObj(r) {
				*evs = append(*evs, event{pos: r.Pos(), kind: evTransfer})
				continue
			}
			sm.extract(r, evs)
		}
		for _, l := range x.Lhs {
			if isObj(l) {
				*evs = append(*evs, event{pos: l.Pos(), kind: evKill})
				continue
			}
			sm.extract(l, evs)
		}
		return
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			if isObj(r) {
				*evs = append(*evs, event{pos: r.Pos(), kind: evTransfer})
				continue
			}
			sm.extract(r, evs)
		}
		return
	case *ast.SendStmt:
		sm.extract(x.Chan, evs)
		if isObj(x.Value) {
			*evs = append(*evs, event{pos: x.Value.Pos(), kind: evTransfer})
			return
		}
		sm.extract(x.Value, evs)
		return
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if isObj(v) {
				*evs = append(*evs, event{pos: v.Pos(), kind: evTransfer})
				continue
			}
			sm.extract(v, evs)
		}
		return
	case *ast.UnaryExpr:
		if x.Op == token.AND && isObj(x.X) {
			*evs = append(*evs, event{pos: x.Pos(), kind: evTransfer})
			return
		}
	case *ast.FuncLit:
		if mentionsObj(info, x.Body, sm.obj) {
			*evs = append(*evs, event{pos: x.Pos(), kind: evTransfer})
		}
		return
	case *ast.Ident:
		if isObj(x) {
			*evs = append(*evs, event{pos: x.Pos(), kind: evUse})
		}
		return
	}
	// Generic descent over direct children.
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil || m == n {
			return m == n
		}
		sm.extract(m, evs)
		return false
	})
}
