package fsyncorder_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/fsyncorder"
)

func TestFsyncorder(t *testing.T) {
	antest.Run(t, "../testdata", fsyncorder.Analyzer, "fsynctest")
}
