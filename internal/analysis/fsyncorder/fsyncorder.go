// Package fsyncorder implements reprolint's durability-ordering checker
// for the persistent snapshot store. The store's crash-safety argument
// is an ordering argument: a chunk file must be durable (fsync'd, and
// its directory entry fsync'd) before the manifest log references it,
// and the log append must itself be synced before the operation reports
// success. A publish (rename, create, O_CREATE open, mkdir, file write)
// that reaches a manifest-log append or a success return with no
// intervening sync is a torn-crash window.
//
// Three checks per function (package internal/store by default, via the
// driver's DirFilter):
//
//  1. publish → appendRecord with no Sync/syncDir between: the log
//     would reference a chunk that a crash can erase.
//  2. publish → success return with no Sync/syncDir between: the caller
//     is told the data is durable when it is not.
//  3. a `.Sync()` or `.Close()` call on an *os.File whose error result
//     is discarded on a write path: the one error that reports a failed
//     write-back is thrown away. Deferred Close on read-only files
//     (from os.Open) is the accepted idiom and not flagged.
//
// Calls to functions annotated `// durable: publishes-synced` (e.g. a
// helper that writes, syncs, renames and syncs the directory
// internally) are treated as already-durable publishes.
package fsyncorder

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/astcfg"
	"repro/internal/analysis/reprolint"
)

// Analyzer is the fsyncorder analyzer.
var Analyzer = &reprolint.Analyzer{
	Name:      "fsyncorder",
	Doc:       "chunk/manifest publishes must be fsync'd before the log references them",
	DirFilter: []string{"internal/store"},
	Run:       run,
}

// publishNames are os-package calls that create or move directory
// entries or write file contents.
var publishNames = map[string]bool{
	"Rename":     true,
	"Create":     true,
	"CreateTemp": true,
	"MkdirAll":   true,
	"Mkdir":      true,
}

// commitNames are the manifest-log append entry points: once one of
// these runs, the log references whatever was published before it.
var commitNames = map[string]bool{
	"appendRecord": true,
}

func run(pass *reprolint.Pass) error {
	decls := reprolint.FuncDeclMap(pass)
	anns := map[*ast.FuncDecl]reprolint.FuncAnn{}
	for _, fd := range decls {
		anns[fd] = reprolint.FuncAnnotation(fd)
	}

	durableCall := func(call *ast.CallExpr) bool {
		if fn := reprolint.CalleeFunc(pass.TypesInfo, call); fn != nil {
			if fd, ok := decls[fn]; ok {
				return anns[fd].DurablePublish
			}
		}
		return false
	}

	for _, file := range pass.Files {
		for _, scope := range reprolint.FuncScopes(file) {
			checkOrdering(pass, scope, durableCall)
			checkDiscardedSync(pass, scope)
		}
	}
	return nil
}

// calleeName returns the bare selector/ident name of a call.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isOSCall reports whether call is os.<name> for a name in set.
func isOSCall(info *types.Info, call *ast.CallExpr, set map[string]bool) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !set[sel.Sel.Name] {
		return false
	}
	fn := reprolint.CalleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "os"
}

// isFileWrite reports whether call is a Write/WriteString/WriteAt on an
// *os.File — content publishes that need a Sync before commit.
func isFileWrite(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, "Write") {
		return false
	}
	return isOSFile(info, sel.X)
}

// isOSFile reports whether e's type is *os.File.
func isOSFile(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "os" && named.Obj().Name() == "File"
}

// isOpenFileCreate reports whether call is os.OpenFile(..., flags, ...)
// with O_CREATE in the (syntactic) flag expression.
func isOpenFileCreate(info *types.Info, call *ast.CallExpr) bool {
	if !isOSCall(info, call, map[string]bool{"OpenFile": true}) {
		return false
	}
	if len(call.Args) < 2 {
		return false
	}
	has := false
	ast.Inspect(call.Args[1], func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "O_CREATE" {
			has = true
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == "O_CREATE" {
			has = true
		}
		return !has
	})
	return has
}

// checkOrdering runs the two path queries: publish→commit and
// publish→success-return, each demanding an intervening sync.
func checkOrdering(pass *reprolint.Pass, scope reprolint.FuncScope, durableCall func(*ast.CallExpr) bool) {
	type publish struct {
		node ast.Node
		what string
	}
	var publishes []publish

	isPublishCall := func(call *ast.CallExpr) (string, bool) {
		if durableCall(call) {
			return "", false // internally synced
		}
		if isOSCall(pass.TypesInfo, call, publishNames) {
			return "os." + calleeName(call), true
		}
		if isOpenFileCreate(pass.TypesInfo, call) {
			return "os.OpenFile(O_CREATE)", true
		}
		if isFileWrite(pass.TypesInfo, call) {
			return "file " + calleeName(call), true
		}
		return "", false
	}

	reprolint.InspectShallow(scope.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if what, ok := isPublishCall(call); ok {
			publishes = append(publishes, publish{node: call, what: what})
		}
		return true
	})
	if len(publishes) == 0 {
		return
	}

	graph := astcfg.Build(scope.Body)
	sig := reprolint.ScopeSignature(pass.TypesInfo, scope)

	isSync := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if found {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if name == "Sync" || name == "syncDir" {
				found = true
				return false
			}
			if durableCall(call) {
				found = true
				return false
			}
			return true
		})
		return found
	}

	for _, p := range publishes {
		// Check 1: publish reaches a manifest-log commit unsynced. The
		// commit call may be nested in the statement node (if-init,
		// return expression), so search the whole node.
		badCommit := func(n ast.Node) bool {
			if n == nil {
				return false
			}
			found := false
			ast.Inspect(n, func(m ast.Node) bool {
				if found {
					return false
				}
				if call, ok := m.(*ast.CallExpr); ok && commitNames[calleeName(call)] {
					found = true
				}
				return !found
			})
			return found
		}
		if hit, ok := graph.PathTo(p.node, badCommit, isSync); ok {
			pass.Reportf(p.node.Pos(),
				"%s reaches the manifest-log append at %s with no Sync/syncDir between: a crash can leave the log referencing unsynced data",
				p.what, pass.Fset.Position(hit.Pos()))
			continue // one report per publish site
		}
		// Check 2: publish reaches a success return unsynced.
		badSuccess := func(n ast.Node) bool {
			if n == nil {
				return true
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return false
			}
			return reprolint.SuccessReturn(ret, sig)
		}
		if hit, ok := graph.PathTo(p.node, badSuccess, isSync); ok {
			where := "the end of the function"
			if ret, isRet := hit.(*ast.ReturnStmt); isRet && ret != nil {
				where = pass.Fset.Position(ret.Pos()).String()
			}
			pass.Reportf(p.node.Pos(),
				"%s reaches a success return (%s) with no Sync/syncDir between: durability is reported before it exists",
				p.what, where)
		}
	}
}

// checkDiscardedSync flags `.Sync()` / `.Close()` calls on *os.File
// whose error is discarded — as a bare ExprStmt or `_ =` — on write
// paths. A deferred Close is exempt (the non-deferred Close before the
// rename is the one whose error matters, and the store keeps that
// pattern); so is any discard inside a block that ends by returning a
// non-nil error (cleanup-after-failure, where the original error wins).
func checkDiscardedSync(pass *reprolint.Pass, scope reprolint.FuncScope) {
	var check func(stmts []ast.Stmt, inFailureBlock bool)
	discardedCall := func(s ast.Stmt) *ast.CallExpr {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				return call
			}
		case *ast.AssignStmt:
			if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
				if id, ok := s.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
					if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
						return call
					}
				}
			}
		}
		return nil
	}
	check = func(stmts []ast.Stmt, inFailureBlock bool) {
		// A block whose last statement returns a non-nil error is a
		// cleanup path: discards there lose to the original error.
		failure := inFailureBlock
		if n := len(stmts); n > 0 {
			if ret, ok := stmts[n-1].(*ast.ReturnStmt); ok {
				sig := reprolint.ScopeSignature(pass.TypesInfo, scope)
				if sig != nil && !reprolint.SuccessReturn(ret, sig) {
					failure = true
				}
			}
		}
		for _, s := range stmts {
			if call := discardedCall(s); call != nil && !failure {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					name := sel.Sel.Name
					if (name == "Sync" || name == "Close") && isOSFile(pass.TypesInfo, sel.X) {
						pass.Reportf(s.Pos(),
							"error from %s.%s() is discarded on a write path: a failed write-back would go unnoticed",
							reprolint.ExprString(pass.Fset, sel.X), name)
					}
				}
			}
			// Recurse into nested blocks, skipping defers and FuncLits.
			switch s := s.(type) {
			case *ast.BlockStmt:
				check(s.List, failure)
			case *ast.IfStmt:
				check(s.Body.List, failure)
				if blk, ok := s.Else.(*ast.BlockStmt); ok {
					check(blk.List, failure)
				} else if elif, ok := s.Else.(*ast.IfStmt); ok {
					check([]ast.Stmt{elif}, failure)
				}
			case *ast.ForStmt:
				check(s.Body.List, failure)
			case *ast.RangeStmt:
				check(s.Body.List, failure)
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						check(cc.Body, failure)
					}
				}
			case *ast.TypeSwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						check(cc.Body, failure)
					}
				}
			case *ast.SelectStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						check(cc.Body, failure)
					}
				}
			case *ast.LabeledStmt:
				check([]ast.Stmt{s.Stmt}, failure)
			}
		}
	}
	check(scope.Body.List, false)
}
