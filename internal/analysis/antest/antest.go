// Package antest is a miniature analysistest: it loads a package from a
// testdata/src tree, typechecks it against the real standard library
// (via compiler export data, so it works offline), runs one reprolint
// analyzer, and compares the diagnostics against `// want "regexp"`
// comments in the sources.
//
// Expectation syntax, on the line the diagnostic is anchored to:
//
//	x := acquire() // want `neither released nor transferred`
//	y := acquire() // want "released" "second-pattern"
//
// Every diagnostic must match a want on its line, and every want must
// be matched by a diagnostic — both directions fail the test.
package antest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis/reprolint"
)

// Run loads testdata/src/<pkg> relative to the test's working directory
// and checks analyzer a against the package's want comments.
func Run(t *testing.T, testdata string, a *reprolint.Analyzer, pkgpath string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgpath))
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("antest: no sources in %s (%v)", dir, err)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("antest: parse: %v", err)
		}
		files = append(files, f)
	}

	info := reprolint.NewTypesInfo()
	conf := types.Config{
		Importer: stdImporter(fset),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(pkgpath, fset, files, info)
	if err != nil {
		t.Fatalf("antest: typecheck %s: %v", pkgpath, err)
	}
	pkg := &reprolint.Package{
		ImportPath: pkgpath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}

	diags, err := reprolint.RunAnalyzers(pkg, []*reprolint.Analyzer{a})
	if err != nil {
		t.Fatalf("antest: run %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, files)
	checkExpectations(t, diags, wants)
}

// want is one expectation: a compiled pattern at a file:line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("antest: %s: bad want pattern %q: %v", pos, raw, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants
}

func checkExpectations(t *testing.T, diags []reprolint.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

// stdImporter returns an importer that resolves standard-library import
// paths through the installed compiler's export data, located lazily
// with `go list -export`. Results are cached process-wide.
func stdImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", lookupExport)
}

var exportCache sync.Map // import path -> export file path or error string

func lookupExport(path string) (io.ReadCloser, error) {
	if v, ok := exportCache.Load(path); ok {
		switch v := v.(type) {
		case string:
			return os.Open(v)
		case error:
			return nil, v
		}
	}
	out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
	if err != nil {
		e := fmt.Errorf("antest: no export data for %q: %v", path, err)
		exportCache.Store(path, e)
		return nil, e
	}
	file := strings.TrimSpace(string(out))
	if file == "" {
		e := fmt.Errorf("antest: empty export path for %s", strconv.Quote(path))
		exportCache.Store(path, e)
		return nil, e
	}
	exportCache.Store(path, file)
	return os.Open(file)
}
