package antest

import (
	"go/ast"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis/reprolint"
)

// funcNamed is a toy analyzer: it reports every function whose name
// starts with "bad", which is exactly enough to drive the harness's
// want-matching in both directions.
var funcNamed = &reprolint.Analyzer{
	Name: "funcnamed",
	Doc:  "reports functions named bad*",
	Run: func(pass *reprolint.Pass) error {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && len(fd.Name.Name) >= 3 && fd.Name.Name[:3] == "bad" {
					pass.Reportf(fd.Pos(), "function %s is bad", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

// TestRunMatchesWants: the harness typechecks a real (std-importing)
// package, runs the analyzer, and matches diagnostics against want
// comments — backtick and quoted forms both.
func TestRunMatchesWants(t *testing.T) {
	dir := t.TempDir()
	pkgDir := filepath.Join(dir, "src", "tiny")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package tiny

import "strings"

func badUpper(s string) string { return strings.ToUpper(s) } // want ` + "`function badUpper is bad`" + `

func badLower(s string) string { return strings.ToLower(s) } // want "badLower"

func goodNoop(s string) string { return s }
`
	if err := os.WriteFile(filepath.Join(pkgDir, "tiny.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	Run(t, dir, funcNamed, "tiny")
}
