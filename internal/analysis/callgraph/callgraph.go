// Package callgraph builds a whole-program call graph over every
// package reprolint loads, in the class-hierarchy-analysis (CHA) style:
// a call through an interface method is resolved to the matching method
// of every concrete type in the program that implements the interface.
// On top of the graph it computes bottom-up, SCC-ordered ownership
// summaries (see summary.go) that classify each function's receiver,
// parameters and results as acquiring, releasing, borrowing or
// transferring snapshot/frame references — the substrate releasecheck's
// interprocedural mode and lockorder's held-lock propagation run on.
//
// Soundness holes, deliberate and documented (DESIGN.md "Static
// analysis & invariants"):
//
//   - Calls through function values (fields, parameters, method values)
//     resolve to no callee. They are recorded as unknown callsites so
//     clients can stay conservative (releasecheck treats an argument to
//     an unknown callee as transferred; lockorder propagates nothing).
//   - A function literal is its own node. Only a literal invoked at its
//     definition site (`func(){...}()`) gets a resolved edge; a literal
//     that escapes into a variable and is called later is an unknown
//     callsite at the call and an unreached node in between.
//   - `go f(...)` runs f on another goroutine: the edge is recorded but
//     tagged, and lock-state clients must not propagate the caller's
//     held set across it. `defer f(...)` similarly runs at exit, not at
//     the callsite, and is tagged.
//   - CHA overapproximates dispatch: every implementer of an interface
//     is a possible callee, including types never stored behind that
//     interface. Clients own the resulting precision/noise trade.
package callgraph

import (
	"go/ast"
	"go/types"
	"sort"

	"repro/internal/analysis/reprolint"
)

// Node is one analyzable function: a declaration or a function literal.
type Node struct {
	// Func is the declared function or method object; nil for literals.
	Func *types.Func
	// Decl is the declaration; nil for literals.
	Decl *ast.FuncDecl
	// Lit is the literal; nil for declarations.
	Lit *ast.FuncLit
	// Encl is the function declaration a literal is defined inside, if
	// any (annotation contracts extend to enclosed literals).
	Encl *ast.FuncDecl
	// Pkg is the package the node's body lives in.
	Pkg *reprolint.Package
	// Body is the function body (never nil; bodiless declarations get
	// no node).
	Body *ast.BlockStmt
	// Calls are the node's callsites in source order.
	Calls []Edge

	index, lowlink int // Tarjan state
	onStack        bool
	scc            int
}

// Edge is one callsite inside a node.
type Edge struct {
	// Site is the call expression.
	Site *ast.CallExpr
	// Callees are the possible targets with bodies in the program. For a
	// static call it has one element; for an interface call, one per
	// CHA-resolved implementer; empty for unknown/external callees.
	Callees []*Node
	// Func identifies the callee even when its body is outside the
	// program (standard library, export-data-only); nil when the callee
	// is not a named function at all (function values).
	Func *types.Func
	// Unknown marks a call whose target set may be incomplete: a call
	// through a function value, or to a function without a body here.
	Unknown bool
	// Go marks `go f(...)`: f runs on another goroutine.
	Go bool
	// Defer marks `defer f(...)`: f runs at function exit.
	Defer bool
}

// Graph is the program call graph.
type Graph struct {
	Prog *reprolint.Program
	// Nodes in deterministic order: packages in load order, declarations
	// and literals in source order within each.
	Nodes []*Node
	// ByFunc resolves a declared function object to its node.
	ByFunc map[*types.Func]*Node
	// ByName resolves a declared function by FullName. The loader
	// typechecks each package against export data, so a caller's view of
	// a cross-package callee is a distinct *types.Func from the
	// source-checked one and misses ByFunc; the FullName bridges them.
	ByName map[string]*Node
	// ByLit resolves a literal to its node.
	ByLit map[*ast.FuncLit]*Node

	sccs [][]*Node
}

// Build constructs the call graph of prog.
func Build(prog *reprolint.Program) *Graph {
	g := &Graph{
		Prog:   prog,
		ByFunc: map[*types.Func]*Node{},
		ByName: map[string]*Node{},
		ByLit:  map[*ast.FuncLit]*Node{},
	}
	// Pass 1: nodes for every function body in the program.
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				n := &Node{Decl: fd, Pkg: pkg, Body: fd.Body}
				if obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					n.Func = obj
					g.ByFunc[obj] = n
					g.ByName[obj.FullName()] = n
				}
				g.Nodes = append(g.Nodes, n)
				g.addLits(pkg, fd.Body, fd)
			}
			// Literals in package-level initializers.
			for _, d := range file.Decls {
				if gd, ok := d.(*ast.GenDecl); ok {
					g.addLits(pkg, gd, nil)
				}
			}
		}
	}
	ifaceImpls := g.collectImplementers()
	// Pass 2: edges.
	for _, n := range g.Nodes {
		g.resolveCalls(n, ifaceImpls)
	}
	g.computeSCCs()
	return g
}

// addLits creates a node for every function literal under root that is
// not nested inside another literal (nested ones are found when their
// enclosing literal's node is created — exactly once each, because the
// walk stops at the first literal boundary).
func (g *Graph) addLits(pkg *reprolint.Package, root ast.Node, encl *ast.FuncDecl) {
	ast.Inspect(root, func(m ast.Node) bool {
		lit, ok := m.(*ast.FuncLit)
		if !ok {
			return true
		}
		if _, seen := g.ByLit[lit]; seen {
			return false
		}
		n := &Node{Lit: lit, Encl: encl, Pkg: pkg, Body: lit.Body}
		g.ByLit[lit] = n
		g.Nodes = append(g.Nodes, n)
		g.addLits(pkg, lit.Body, encl)
		return false
	})
}

// collectImplementers maps each interface method (interface type +
// method name) to the program methods satisfying it. Keyed lazily by
// the *types.Interface identity at resolution time instead: we build
// the full named-type list once and match per callsite.
func (g *Graph) collectImplementers() []*types.Named {
	var named []*types.Named
	for _, pkg := range g.Prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if nt, ok := tn.Type().(*types.Named); ok {
				named = append(named, nt)
			}
		}
	}
	return named
}

// resolveCalls walks n's body (stopping at nested literals, which own
// their statements) and records one Edge per call expression.
func (g *Graph) resolveCalls(n *Node, named []*types.Named) {
	info := n.Pkg.TypesInfo
	var walk func(root ast.Node, inGo, inDefer bool)
	record := func(call *ast.CallExpr, isGo, isDefer bool) {
		e := Edge{Site: call, Go: isGo, Defer: isDefer}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.FuncLit:
			// Immediately-invoked literal: resolved to its own node.
			if ln, ok := g.ByLit[fun]; ok {
				e.Callees = []*Node{ln}
			}
		case *ast.Ident, *ast.SelectorExpr:
			if fn := reprolint.CalleeFunc(info, call); fn != nil {
				e.Func = fn
				if iface := interfaceReceiver(info, call); iface != nil {
					e.Callees = implementersOf(g, named, iface, fn.Name())
					e.Unknown = true // CHA: the set may still be incomplete
				} else if target, ok := g.ByFunc[fn]; ok {
					e.Callees = []*Node{target}
				} else {
					e.Unknown = true // body outside the program
				}
			} else {
				// A function-typed value (parameter, field, var) — or a
				// conversion/builtin. Conversions and builtins are not
				// calls worth an edge.
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
						return
					}
					if _, isType := info.Uses[id].(*types.TypeName); isType {
						return
					}
				}
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					if _, isType := info.Uses[sel.Sel].(*types.TypeName); isType {
						return
					}
				}
				if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
					return
				}
				e.Unknown = true
			}
		default:
			// Conversions like (func())(x), array index of func slice, ...
			if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
				return
			}
			e.Unknown = true
		}
		n.Calls = append(n.Calls, e)
	}
	walk = func(root ast.Node, inGo, inDefer bool) {
		ast.Inspect(root, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return m == root // literal bodies belong to their own node
			case *ast.GoStmt:
				record(m.Call, true, false)
				for _, a := range m.Call.Args {
					walk(a, false, false)
				}
				walk(m.Call.Fun, false, false)
				return false
			case *ast.DeferStmt:
				record(m.Call, false, true)
				for _, a := range m.Call.Args {
					walk(a, false, false)
				}
				walk(m.Call.Fun, false, false)
				return false
			case *ast.CallExpr:
				record(m, inGo, inDefer)
			}
			return true
		})
	}
	walk(n.Body, false, false)
}

// interfaceReceiver returns the interface type a method call dispatches
// through, or nil for static calls.
func interfaceReceiver(info *types.Info, call *ast.CallExpr) *types.Interface {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return nil
	}
	if iface, ok := selection.Recv().Underlying().(*types.Interface); ok {
		return iface
	}
	return nil
}

// implementersOf resolves an interface method to the in-program methods
// of every named type implementing the interface.
func implementersOf(g *Graph, named []*types.Named, iface *types.Interface, method string) []*Node {
	var out []*Node
	for _, nt := range named {
		if types.IsInterface(nt) {
			continue
		}
		var impl types.Type = nt
		if !types.Implements(impl, iface) {
			impl = types.NewPointer(nt)
			if !types.Implements(impl, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, nt.Obj().Pkg(), method)
		if fn, ok := obj.(*types.Func); ok {
			if target, ok := g.ByFunc[fn]; ok {
				out = append(out, target)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Body.Pos() < out[j].Body.Pos() })
	return out
}

// Name returns a diagnostic-friendly name for the node.
func (n *Node) Name() string {
	if n.Decl != nil {
		return n.Decl.Name.Name
	}
	return "func literal"
}

// SCCs returns the strongly-connected components of the graph in
// bottom-up (callees-before-callers) order, so a fixpoint over each
// component in sequence sees every callee summary already computed.
func (g *Graph) SCCs() [][]*Node { return g.sccs }

// computeSCCs runs Tarjan's algorithm iteratively-enough for lint-sized
// programs (recursion depth = call-chain depth).
func (g *Graph) computeSCCs() {
	index := 1
	var stack []*Node
	var strongconnect func(v *Node)
	strongconnect = func(v *Node) {
		v.index, v.lowlink = index, index
		index++
		stack = append(stack, v)
		v.onStack = true
		for _, e := range v.Calls {
			for _, w := range e.Callees {
				if w.index == 0 {
					strongconnect(w)
					if w.lowlink < v.lowlink {
						v.lowlink = w.lowlink
					}
				} else if w.onStack && w.index < v.lowlink {
					v.lowlink = w.index
				}
			}
		}
		if v.lowlink == v.index {
			var comp []*Node
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				w.onStack = false
				w.scc = len(g.sccs)
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			g.sccs = append(g.sccs, comp)
		}
	}
	for _, n := range g.Nodes {
		if n.index == 0 {
			strongconnect(n)
		}
	}
	// Tarjan emits components in reverse topological order of the
	// condensation — which for a call graph is exactly callees first.
}
