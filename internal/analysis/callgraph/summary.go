// Ownership summaries: a bottom-up, SCC-ordered classification of how
// each function treats snapshot/frame references flowing through its
// receiver, parameters and results.
//
// Per parameter (receiver first for methods) the summary records two
// monotone facts:
//
//   - Releases: some path through the function calls a release-family
//     method (Release, Close, Free, release) on the parameter, directly
//     or by passing it to a callee that does.
//   - Escapes: some path stores the parameter beyond the call frame —
//     into a field, composite literal, channel, another variable, a
//     return value, a closure — or passes it to a callee whose matching
//     parameter escapes, or to an unknown callee (conservative).
//
// A parameter with neither fact is *borrowed*: the function reads it and
// hands it back, so passing a tracked value there discharges nothing.
// Only reference-like parameters — types whose method set contains a
// release-family method — are classified; everything else is trivially
// borrowed and skipped.
//
// Per result, Acquires records that the function hands its caller a
// fresh ownership obligation: the result position is (on some path) the
// direct result of an acquisition-family call or of a callee that
// itself acquires.
//
// The fixpoint is monotone (facts only flip false→true), so iterating
// each SCC until quiescence terminates.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/astcfg"
)

// AcqNames are the function/method names whose pointer-to-struct results
// carry an ownership obligation (the list releasecheck enforces).
var AcqNames = map[string]bool{
	"Capture":        true,
	"CaptureAtDepth": true,
	"Retain":         true,
	"Restore":        true,
	"Fork":           true,
	"Alloc":          true,
	"clone":          true,
	"Materialize":    true,
	"Snapshot":       true,
	"Load":           true,
	"Get":            true,
}

// ReleaseNames are the method names whose call discharges (and consumes)
// a reference.
var ReleaseNames = map[string]bool{
	"Release": true,
	"Close":   true,
	"release": true,
	"Free":    true,
}

// ParamSummary classifies one parameter.
type ParamSummary struct {
	// Releases: the function may call a release-family method on it.
	Releases bool
	// MustRelease: every non-panicking path through the function releases
	// it (directly, via a deferred release, or by passing it to a callee
	// that must-release). May-facts feed the leak check (a possible
	// discharge is enough to stay quiet); the must-fact feeds the
	// double-release automaton (only a definite release arms it).
	MustRelease bool
	// Escapes: the function may store it beyond the call frame.
	Escapes bool
}

// Borrowed reports that the function neither releases nor stores the
// parameter: passing a tracked value here is not a discharge.
func (p ParamSummary) Borrowed() bool { return !p.Releases && !p.Escapes }

// Summary is one function's ownership behavior.
type Summary struct {
	// Params has one entry per signature parameter, receiver first for
	// methods.
	Params []ParamSummary
	// Acquires has one entry per result: true when the result carries a
	// fresh ownership obligation.
	Acquires []bool
}

// Summaries computes the ownership summary of every node, bottom-up
// over SCCs so callee facts are available at each callsite (mutually
// recursive functions iterate to a fixpoint within their component).
func (g *Graph) Summaries() map[*Node]*Summary {
	out := map[*Node]*Summary{}
	for _, n := range g.Nodes {
		out[n] = &Summary{
			Params:   make([]ParamSummary, len(paramObjs(n))),
			Acquires: make([]bool, numResults(n)),
		}
	}
	cfgs := map[*Node]*astcfg.Graph{}
	for _, comp := range g.sccs {
		for changed := true; changed; {
			changed = false
			for _, n := range comp {
				if summarizeNode(n, out, cfgs) {
					changed = true
				}
			}
		}
	}
	return out
}

// SummaryFor returns the summary of a resolved callee at a callsite
// edge, merged across CHA candidates: a fact holds if it holds for any
// candidate. Returns nil when the edge has no resolved callees.
func MergedParamSummary(sums map[*Node]*Summary, e Edge, param int) (ParamSummary, bool) {
	var merged ParamSummary
	found := false
	for _, callee := range e.Callees {
		s := sums[callee]
		if s == nil || param >= len(s.Params) {
			continue
		}
		found = true
		merged.Releases = merged.Releases || s.Params[param].Releases
		merged.Escapes = merged.Escapes || s.Params[param].Escapes
	}
	return merged, found
}

// paramObjs returns the node's parameter objects, receiver first.
func paramObjs(n *Node) []*types.Var {
	sig := n.Signature()
	if sig == nil {
		return nil
	}
	var out []*types.Var
	if recv := sig.Recv(); recv != nil {
		out = append(out, recv)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

func numResults(n *Node) int {
	sig := n.Signature()
	if sig == nil {
		return 0
	}
	return sig.Results().Len()
}

// Signature returns the node's type signature.
func (n *Node) Signature() *types.Signature {
	if n.Func != nil {
		if sig, ok := n.Func.Type().(*types.Signature); ok {
			return sig
		}
		return nil
	}
	if tv, ok := n.Pkg.TypesInfo.Types[n.Lit]; ok {
		if sig, ok := tv.Type.(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// ReferenceLike reports whether t's method set (or its pointer's)
// contains a release-family method — the gate for ownership tracking.
func ReferenceLike(t types.Type) bool {
	if t == nil {
		return false
	}
	for _, mt := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(mt)
		for i := 0; i < ms.Len(); i++ {
			if ReleaseNames[ms.At(i).Obj().Name()] {
				return true
			}
		}
	}
	return false
}

// summarizeNode recomputes n's summary against current callee facts and
// reports whether anything changed.
func summarizeNode(n *Node, sums map[*Node]*Summary, cfgs map[*Node]*astcfg.Graph) bool {
	s := sums[n]
	params := paramObjs(n)
	info := n.Pkg.TypesInfo
	changed := false
	set := func(b *bool) {
		if !*b {
			*b = true
			changed = true
		}
	}

	// Map each callsite to its edge for argument classification.
	edgeOf := map[*ast.CallExpr]Edge{}
	for _, e := range n.Calls {
		edgeOf[e.Site] = e
	}

	for pi, p := range params {
		if !ReferenceLike(p.Type()) {
			continue
		}
		if !s.Params[pi].Releases || !s.Params[pi].Escapes {
			rel, esc := classifyObj(n, info, p, edgeOf, sums)
			if rel {
				set(&s.Params[pi].Releases)
			}
			if esc {
				set(&s.Params[pi].Escapes)
			}
		}
		// The must-fact starts false and only flips true (the fixpoint
		// underapproximates "must", which is the sound direction).
		if s.Params[pi].Releases && !s.Params[pi].MustRelease {
			if mustRelease(n, info, p, edgeOf, sums, cfgs) {
				set(&s.Params[pi].MustRelease)
			}
		}
	}

	// Result acquisition: `return acq(...)` directly, or through the
	// one-hop `v := acq(...); ...; return v` idiom.
	acqVars := acquiringVars(n, info, edgeOf, sums)
	inspectOwn(n.Body, func(m ast.Node) bool {
		ret, ok := m.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for ri, res := range ret.Results {
			if ri >= len(s.Acquires) {
				break
			}
			if callAcquires(info, res, edgeOf, sums) {
				set(&s.Acquires[ri])
				continue
			}
			if id, ok := ast.Unparen(res).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && acqVars[obj] {
					set(&s.Acquires[ri])
				}
			}
		}
		return true
	})
	return changed
}

// classifyObj scans n's body for how obj is treated: released and/or
// escaped. The walk mirrors releasecheck's consume classification so
// caller and summary agree on what a discharge is.
func classifyObj(n *Node, info *types.Info, obj types.Object, edgeOf map[*ast.CallExpr]Edge, sums map[*Node]*Summary) (rel, esc bool) {
	usesObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && (info.Uses[id] == obj || info.Defs[id] == obj)
	}
	inspectOwn(n.Body, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.CallExpr:
			// A zero-argument release-family call releases its receiver
			// (`s.Release()`); with arguments it releases the arguments
			// instead (`fa.release(frame)` frees the frame, not the
			// allocator), which the args loop below classifies.
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if ReleaseNames[sel.Sel.Name] && len(x.Args) == 0 && usesObj(sel.X) {
					rel = true
					return true
				}
			}
			for ai, arg := range x.Args {
				if !usesObj(arg) {
					continue
				}
				r, e := ArgFate(info, edgeOf[x], x, ai, sums)
				rel = rel || r
				esc = esc || e
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if usesObj(v) {
					esc = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if usesObj(r) {
					esc = true
				}
			}
		case *ast.AssignStmt:
			for _, r := range x.Rhs {
				if usesObj(r) {
					esc = true
				}
			}
			for _, l := range x.Lhs {
				if usesObj(l) {
					esc = true // rebinding: the old value's fate is opaque
				}
			}
		case *ast.SendStmt:
			if usesObj(x.Value) {
				esc = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND && usesObj(x.X) {
				esc = true
			}
		case *ast.FuncLit:
			if mentions(info, x.Body, obj) {
				esc = true
			}
			return false
		}
		return true
	})
	return rel, esc
}

// ArgFate classifies what happens to argument ai of callsite call: may
// the callee release it, may it escape. Unknown callees escape
// (conservative). The receiver of a method call is parameter 0 of the
// callee's summary, so argument i maps to summary index i+1 when the
// callee has a receiver; variadic tails collapse onto the last
// parameter.
func ArgFate(info *types.Info, e Edge, call *ast.CallExpr, ai int, sums map[*Node]*Summary) (rel, esc bool) {
	if e.Site != call || (e.Unknown && len(e.Callees) == 0) {
		return false, true // unresolved: assume transferred (today's behavior)
	}
	if len(e.Callees) == 0 {
		return false, true
	}
	found := false
	for _, callee := range e.Callees {
		s := sums[callee]
		sig := callee.Signature()
		if s == nil || sig == nil {
			continue
		}
		idx := ai
		if sig.Recv() != nil {
			idx++
		}
		if idx >= len(s.Params) {
			if len(s.Params) == 0 {
				continue
			}
			idx = len(s.Params) - 1 // variadic tail
		}
		found = true
		rel = rel || s.Params[idx].Releases
		esc = esc || s.Params[idx].Escapes
	}
	if !found {
		return false, true
	}
	if e.Unknown {
		esc = true // CHA set may be incomplete
	}
	return rel, esc
}

// mustRelease reports whether every non-panicking path through n
// releases obj: a deferred release covers all exits, otherwise no
// entry-to-exit CFG path may avoid a definite-release statement.
func mustRelease(n *Node, info *types.Info, obj types.Object, edgeOf map[*ast.CallExpr]Edge, sums map[*Node]*Summary, cfgs map[*Node]*astcfg.Graph) bool {
	g := cfgs[n]
	if g == nil {
		g = astcfg.Build(n.Body)
		cfgs[n] = g
	}
	for _, d := range g.Defers {
		if mustReleasesIn(info, d.Call, obj, edgeOf, sums) {
			return true
		}
	}
	bad := func(m ast.Node) bool {
		if m == nil {
			return true // implicit end-of-body return
		}
		_, isRet := m.(*ast.ReturnStmt)
		return isRet
	}
	stop := func(m ast.Node) bool {
		return mustReleasesIn(info, m, obj, edgeOf, sums)
	}
	_, escapePath := g.PathTo(nil, bad, stop)
	return !escapePath
}

// mustReleasesIn reports whether executing statement m definitely
// releases obj: a zero-argument release-family call on it, or passing it
// to a callee whose matching parameter must-releases.
func mustReleasesIn(info *types.Info, m ast.Node, obj types.Object, edgeOf map[*ast.CallExpr]Edge, sums map[*Node]*Summary) bool {
	if m == nil {
		return false
	}
	found := false
	ast.Inspect(m, func(k ast.Node) bool {
		if found {
			return false
		}
		switch x := k.(type) {
		case *ast.FuncLit:
			return k == m // nested literal bodies run at some other time
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if ReleaseNames[sel.Sel.Name] && len(x.Args) == 0 {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
						found = true
						return false
					}
				}
			}
			for ai, arg := range x.Args {
				id, ok := ast.Unparen(arg).(*ast.Ident)
				if !ok || (info.Uses[id] != obj && info.Defs[id] != obj) {
					continue
				}
				if ArgMustRelease(info, edgeOf[x], x, ai, sums) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// ArgMustRelease reports whether argument ai of callsite call is
// definitely released by the callee: the edge is fully resolved (no
// unknown component) and every CHA candidate's matching parameter
// must-releases.
func ArgMustRelease(info *types.Info, e Edge, call *ast.CallExpr, ai int, sums map[*Node]*Summary) bool {
	if e.Site != call || e.Unknown || len(e.Callees) == 0 {
		return false
	}
	for _, callee := range e.Callees {
		s := sums[callee]
		sig := callee.Signature()
		if s == nil || sig == nil {
			return false
		}
		idx := ai
		if sig.Recv() != nil {
			idx++
		}
		if idx >= len(s.Params) {
			if len(s.Params) == 0 {
				return false
			}
			idx = len(s.Params) - 1 // variadic tail
		}
		if !s.Params[idx].MustRelease {
			return false
		}
	}
	return true
}

// callAcquires reports whether expr is a call that hands back a fresh
// obligation in its first result: an acquisition-family name, or a
// resolved callee whose summary acquires.
func callAcquires(info *types.Info, expr ast.Expr, edgeOf map[*ast.CallExpr]Edge, sums map[*Node]*Summary) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if AcqNames[fun.Name] {
			return true
		}
	case *ast.SelectorExpr:
		if AcqNames[fun.Sel.Name] {
			return true
		}
	}
	if e, ok := edgeOf[call]; ok {
		for _, callee := range e.Callees {
			if s := sums[callee]; s != nil && len(s.Acquires) > 0 && s.Acquires[0] {
				return true
			}
		}
	}
	return false
}

// acquiringVars finds locals bound directly to an acquiring call
// (`v := acq(...)`), for the return-a-named-result idiom.
func acquiringVars(n *Node, info *types.Info, edgeOf map[*ast.CallExpr]Edge, sums map[*Node]*Summary) map[types.Object]bool {
	out := map[types.Object]bool{}
	inspectOwn(n.Body, func(m ast.Node) bool {
		as, ok := m.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		if !callAcquires(info, as.Rhs[0], edgeOf, sums) {
			return true
		}
		if id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// inspectOwn walks root without descending into nested function
// literals (their statements belong to other nodes) — except that the
// callback still sees the literal itself.
func inspectOwn(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != root {
			return fn(m) && false
		}
		return fn(m)
	})
}

// mentions reports whether any identifier under n resolves to obj.
func mentions(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
			found = true
		}
		return !found
	})
	return found
}
