package callgraph_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/reprolint"
)

// load typechecks one import-free source file into a one-package
// Program.
func load(t *testing.T, src string) *reprolint.Program {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := reprolint.NewTypesInfo()
	conf := types.Config{}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return reprolint.NewProgram([]*reprolint.Package{{
		ImportPath: "p",
		Fset:       fset,
		Files:      []*ast.File{f},
		Types:      tpkg,
		TypesInfo:  info,
	}})
}

func nodeByName(t *testing.T, g *callgraph.Graph, name string) *callgraph.Node {
	t.Helper()
	for fn, n := range g.ByFunc {
		if fn.Name() == name {
			return n
		}
	}
	t.Fatalf("no node %q", name)
	return nil
}

// calleeNames flattens a node's resolved callee names.
func calleeNames(n *callgraph.Node) map[string]bool {
	out := map[string]bool{}
	for _, e := range n.Calls {
		for _, c := range e.Callees {
			if c.Func != nil {
				out[c.Func.Name()] = true
			}
		}
	}
	return out
}

// TestDirectAndMethodCalls: plain calls and method calls resolve to
// their single static callee.
func TestDirectAndMethodCalls(t *testing.T) {
	prog := load(t, `package p

type T struct{}

func (t *T) M() {}

func helper() {}

func top(t *T) {
	helper()
	t.M()
}
`)
	g := callgraph.Build(prog)
	names := calleeNames(nodeByName(t, g, "top"))
	for _, want := range []string{"helper", "M"} {
		if !names[want] {
			t.Errorf("top is missing resolved callee %q (got %v)", want, names)
		}
	}
}

// TestInterfaceDispatchCHA: an interface method call resolves to every
// in-program implementer (class-hierarchy analysis).
func TestInterfaceDispatchCHA(t *testing.T) {
	prog := load(t, `package p

type Closer interface{ Close() }

type FileLike struct{}

func (f *FileLike) Close() {}

type ConnLike struct{}

func (c *ConnLike) Close() {}

type NotACloser struct{}

func (n *NotACloser) Open() {}

func shutdown(c Closer) {
	c.Close()
}
`)
	g := callgraph.Build(prog)
	n := nodeByName(t, g, "shutdown")
	if len(n.Calls) != 1 {
		t.Fatalf("shutdown has %d call edges, want 1", len(n.Calls))
	}
	owners := map[string]bool{}
	for _, c := range n.Calls[0].Callees {
		sig := c.Func.Type().(*types.Signature)
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		owners[recv.(*types.Named).Obj().Name()] = true
	}
	if !owners["FileLike"] || !owners["ConnLike"] || len(owners) != 2 {
		t.Errorf("CHA candidates = %v, want exactly {FileLike, ConnLike}", owners)
	}
}

// TestGoDeferFlags: go and defer callsites carry their flags, so lock
// and ownership state is not propagated across them.
func TestGoDeferFlags(t *testing.T) {
	prog := load(t, `package p

func work() {}

func spawn() {
	go work()
	defer work()
	work()
}
`)
	g := callgraph.Build(prog)
	n := nodeByName(t, g, "spawn")
	var goEdges, deferEdges, plain int
	for _, e := range n.Calls {
		switch {
		case e.Go:
			goEdges++
		case e.Defer:
			deferEdges++
		default:
			plain++
		}
	}
	if goEdges != 1 || deferEdges != 1 || plain != 1 {
		t.Errorf("edges go=%d defer=%d plain=%d, want 1/1/1", goEdges, deferEdges, plain)
	}
}

// TestFuncLitNodes: function literals are their own nodes; an
// immediately-invoked literal resolves to its node.
func TestFuncLitNodes(t *testing.T) {
	prog := load(t, `package p

var sink func()

func top() {
	f := func() {}
	sink = f
	func() {}()
}
`)
	g := callgraph.Build(prog)
	if len(g.ByLit) != 2 {
		t.Fatalf("got %d literal nodes, want 2", len(g.ByLit))
	}
	n := nodeByName(t, g, "top")
	resolvedLit := false
	for _, e := range n.Calls {
		for _, c := range e.Callees {
			if c.Lit != nil {
				resolvedLit = true
			}
		}
	}
	if !resolvedLit {
		t.Errorf("immediately-invoked literal was not resolved to its node")
	}
}

const ownershipSrc = `package p

type Res struct{ n int }

func (r *Res) Release() {}

var global *Res

func Alloc() *Res { return &Res{} }

func borrows(r *Res) int { return r.n }

func releases(r *Res) { r.Release() }

func releasesVia(r *Res) { releases(r) }

func mayRelease(r *Res, b bool) {
	if b {
		r.Release()
	}
}

func stores(r *Res) { global = r }

func allocsVia() *Res { return Alloc() }
`

// TestSummaries: the bottom-up fixpoint classifies borrowing, releasing
// (may and must), escaping, and acquiring helpers.
func TestSummaries(t *testing.T) {
	prog := load(t, ownershipSrc)
	g := callgraph.Build(prog)
	sums := g.Summaries()

	param := func(name string) callgraph.ParamSummary {
		s := sums[nodeByName(t, g, name)]
		if s == nil || len(s.Params) == 0 {
			t.Fatalf("%s: no param summary", name)
		}
		return s.Params[0]
	}

	if p := param("borrows"); !p.Borrowed() {
		t.Errorf("borrows: %+v, want borrowed", p)
	}
	if p := param("releases"); !p.Releases || !p.MustRelease {
		t.Errorf("releases: %+v, want must-release", p)
	}
	if p := param("releasesVia"); !p.Releases || !p.MustRelease {
		t.Errorf("releasesVia: %+v, want must-release through the chain", p)
	}
	if p := param("mayRelease"); !p.Releases || p.MustRelease {
		t.Errorf("mayRelease: %+v, want may-release but not must-release", p)
	}
	if p := param("stores"); !p.Escapes {
		t.Errorf("stores: %+v, want escaping", p)
	}

	// Alloc itself returns a fresh literal — callers recognize it by its
	// AcqNames name, so only the wrapper needs the summary fact.
	s := sums[nodeByName(t, g, "allocsVia")]
	if len(s.Acquires) != 1 || !s.Acquires[0] {
		t.Errorf("allocsVia: Acquires = %v, want [true]", s.Acquires)
	}
}

// TestSCCOrderAndNames: SCCs come out callees-first, mutual recursion
// lands in one component, and node names are diagnostic-friendly.
func TestSCCOrderAndNames(t *testing.T) {
	prog := load(t, `package p

func leaf() {}

func ping() { pong(); leaf() }

func pong() { ping() }

func top() {
	f := func() { leaf() }
	f()
}
`)
	g := callgraph.Build(prog)
	seen := map[*callgraph.Node]int{}
	var recursive []*callgraph.Node
	for i, comp := range g.SCCs() {
		if len(comp) == 2 {
			recursive = comp
		}
		for _, n := range comp {
			seen[n] = i
		}
	}
	if recursive == nil {
		t.Fatal("ping/pong did not form a two-node SCC")
	}
	names := map[string]bool{recursive[0].Name(): true, recursive[1].Name(): true}
	if !names["ping"] || !names["pong"] {
		t.Errorf("recursive SCC = %v, want {ping, pong}", names)
	}
	// Callees-before-callers: leaf's component precedes ping/pong's,
	// which precedes nothing that calls into it here.
	if seen[nodeByName(t, g, "leaf")] >= seen[nodeByName(t, g, "ping")] {
		t.Error("leaf's SCC does not precede its caller's SCC")
	}
	litNamed := false
	for lit, n := range g.ByLit {
		_ = lit
		if n.Name() == "func literal" {
			litNamed = true
		}
	}
	if !litNamed {
		t.Error("literal node missing its diagnostic name")
	}
}

// TestMergedParamSummary: callsite-edge facts merge across CHA
// candidates — a fact holds if any candidate has it.
func TestMergedParamSummary(t *testing.T) {
	prog := load(t, `package p

type Res struct{ n int }

func (r *Res) Release() {}

type Sink interface{ Take(r *Res) }

type Dropper struct{}

func (Dropper) Take(r *Res) { r.Release() }

type Keeper struct{}

var kept *Res

func (Keeper) Take(r *Res) { kept = r }

func hand(s Sink, r *Res) {
	s.Take(r)
}
`)
	g := callgraph.Build(prog)
	sums := g.Summaries()
	n := nodeByName(t, g, "hand")
	if len(n.Calls) != 1 {
		t.Fatalf("hand has %d edges, want 1", len(n.Calls))
	}
	// Param 1 of Take (0 is the receiver): Dropper releases it, Keeper
	// stores it — the merge must carry both facts.
	merged, ok := callgraph.MergedParamSummary(sums, n.Calls[0], 1)
	if !ok {
		t.Fatal("no resolved candidate summaries")
	}
	if !merged.Releases || !merged.Escapes {
		t.Errorf("merged = %+v, want Releases && Escapes", merged)
	}
	if _, ok := callgraph.MergedParamSummary(sums, n.Calls[0], 9); ok {
		t.Error("out-of-range param reported a summary")
	}
}

// TestSCCFixpoint: mutually recursive releasing helpers converge.
func TestSCCFixpoint(t *testing.T) {
	prog := load(t, `package p

type Res struct{ n int }

func (r *Res) Release() {}

func pingRelease(r *Res, depth int) {
	if depth == 0 {
		r.Release()
		return
	}
	pongRelease(r, depth-1)
}

func pongRelease(r *Res, depth int) {
	pingRelease(r, depth)
}
`)
	g := callgraph.Build(prog)
	sums := g.Summaries()
	for _, name := range []string{"pingRelease", "pongRelease"} {
		s := sums[nodeByName(t, g, name)]
		if !s.Params[0].Releases {
			t.Errorf("%s: %+v, want may-release through the recursion", name, s.Params[0])
		}
	}
}
