// Package fsynctest exercises fsyncorder against the shapes from
// internal/store: temp-write-sync-rename-syncdir chunk publishing,
// manifest-log appends, and discarded Sync/Close errors.
package fsynctest

import "os"

type store struct {
	log *os.File
	dir string
}

// appendRecord mirrors the manifest-log append: write then sync.
func (s *store) appendRecord(b []byte) error {
	if _, err := s.log.Write(b); err != nil {
		return err
	}
	return s.log.Sync()
}

// syncDir fsyncs a directory entry.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// writeChunkFile mirrors the store's durable publish helper: temp file,
// write, sync, close, rename, directory sync.
//
// durable: publishes-synced
func writeChunkFile(dir string, data []byte) error {
	f, err := os.CreateTemp(dir, "chunk-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close() // the write error wins; see return below
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(f.Name(), dir+"/chunk"); err != nil {
		return err
	}
	return syncDir(dir)
}

// goodSpill publishes through the durable helper, then commits.
func goodSpill(s *store, data, rec []byte) error {
	if err := writeChunkFile(s.dir, data); err != nil {
		return err
	}
	return s.appendRecord(rec)
}

// badCommitBeforeSync lets the log reference a chunk whose rename was
// never synced: a crash can replay a manifest pointing at nothing.
func badCommitBeforeSync(s *store, tmp, final string, rec []byte) error {
	if err := os.Rename(tmp, final); err != nil { // want `reaches the manifest-log append`
		return err
	}
	return s.appendRecord(rec)
}

// badSuccessBeforeSync reports durability that does not exist yet.
func badSuccessBeforeSync(tmp, final string) error {
	if err := os.Rename(tmp, final); err != nil { // want `reaches a success return`
		return err
	}
	return nil
}

// goodRenameSynced syncs the directory entry before reporting success.
func goodRenameSynced(dir, tmp, final string) error {
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return syncDir(dir)
}

// badDiscardedSync throws away the one error that reports a failed
// write-back. The Sync call still orders the publish (so the ordering
// checks stay quiet); the discarded error is its own finding.
func badDiscardedSync(f *os.File, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return err
	}
	f.Sync() // want `error from f.Sync\(\) is discarded`
	return nil
}

// suppressedPublish: the caller syncs, documented at the call site.
func suppressedPublish(tmp, final string) error {
	//lint:ignore fsyncorder the caller fsyncs the parent directory before commit
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return nil
}

// cleanReadPath: deferred Close on a read-only file is the accepted
// idiom, and reads publish nothing.
func cleanReadPath(name string, buf []byte) error {
	f, err := os.Open(name)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Read(buf)
	return err
}
