// Package atomictest exercises atomicfield: mixed plain/atomic access
// to fields and package variables, value copies of typed atomics, the
// suppression directive, and clean negatives.
package atomictest

import "sync/atomic"

type Counter struct {
	ops  int64  // accessed via atomic.AddInt64/LoadInt64
	gen  uint64 // accessed via atomic.AddUint64
	size int64  // plain on purpose; never touched atomically
}

func (c *Counter) bump()       { atomic.AddInt64(&c.ops, 1) }
func (c *Counter) read() int64 { return atomic.LoadInt64(&c.ops) }
func (c *Counter) bumpGen()    { atomic.AddUint64(&c.gen, 1) }

// badPlainRead mixes a plain load into an atomic field.
func (c *Counter) badPlainRead() int64 {
	return c.ops // want `plain access to ops`
}

// badPlainWrite mixes a plain store into an atomic field.
func (c *Counter) badPlainWrite() {
	c.gen = 0 // want `plain access to gen`
}

// goodPlainField: size is never accessed atomically, so plain access is
// fine.
func (c *Counter) goodPlainField() int64 { return c.size }

// newCounter documents the pre-publication plain write: the directive
// is load-bearing (deleting it fails the build gate).
func newCounter() *Counter {
	c := &Counter{}
	//lint:ignore atomicfield counter not yet published; no concurrent readers exist
	c.gen = 1
	return c
}

var hits int64

func addHit() { atomic.AddInt64(&hits, 1) }

// badVarRead: package-level vars are held to the same discipline.
func badVarRead() int64 {
	return hits // want `plain access to hits`
}

type Stats struct {
	n atomic.Int64
}

// ok uses the typed atomic through its methods: clean.
func (s *Stats) ok() int64 { return s.n.Load() }

// badCopyAssign copies a typed atomic by value.
func badCopyAssign(s *Stats) {
	n := s.n // want `copying sync/atomic.Int64`
	_ = n.Load()
}

func take(v atomic.Int64) int64 { return v.Load() }

// badCopyArg passes a typed atomic by value.
func badCopyArg(s *Stats) int64 {
	return take(s.n) // want `copying sync/atomic.Int64`
}

// goodPointerShare shares the atomic by pointer: clean.
func goodPointerShare(s *Stats) *atomic.Int64 { return &s.n }

// shardStat contains an atomic one struct deep — the range-copy check
// must see through the nesting.
type shardStat struct {
	name string
	s    Stats
}

// badRangeSlice copies each element — and its atomic — per iteration.
func badRangeSlice(stats []shardStat) int64 {
	var total int64
	for _, st := range stats { // want `range clause copies element .*shardStat containing sync/atomic.Int64`
		total += st.s.n.Load()
	}
	return total
}

// badRangeMapValue: map values are copied out per iteration too.
func badRangeMapValue(m map[string]Stats) {
	for _, v := range m { // want `range clause copies value .*Stats containing sync/atomic.Int64`
		_ = v
	}
}

// badRangeChan: receiving from a channel of atomics copies each element.
func badRangeChan(ch chan Stats) {
	for v := range ch { // want `range clause copies element .*Stats containing sync/atomic.Int64`
		_ = v
	}
}

// goodRangeIndex iterates by index: nothing is copied.
func goodRangeIndex(stats []shardStat) int64 {
	var total int64
	for i := range stats {
		total += stats[i].s.n.Load()
	}
	return total
}

// goodRangePointers ranges over pointers: the pointee is shared, not
// copied.
func goodRangePointers(stats []*shardStat) int64 {
	var total int64
	for _, st := range stats {
		total += st.s.n.Load()
	}
	return total
}
