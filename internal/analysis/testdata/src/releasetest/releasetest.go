// Package releasetest exercises releasecheck against the shapes that
// appear in internal/core and internal/snapshot: capture-then-release,
// capture-then-transfer, err-guarded acquisitions, early-return leaks.
package releasetest

import "errors"

// State mirrors snapshot.State: a refcounted handle.
type State struct{ refs int }

// Release drops a reference.
func (s *State) Release() {}

// Retain bumps the refcount (the bare-statement idiom).
func (s *State) Retain() {}

// Capture mirrors Tree.Capture: an acquisition with no error result.
func Capture() *State { return &State{refs: 1} }

// Alloc mirrors FrameAllocator.Alloc: acquisition with a paired error.
func Alloc() (*State, error) { return &State{refs: 1}, nil }

// registry gives register a real escape: the summary layer classifies a
// parameter as transferred only when the callee body actually stores or
// releases it, so an empty helper would (correctly) count as borrowing.
var registry []*State

func register(s *State) { registry = append(registry, s) }

// inspect merely reads the handle: its parameter summary is Borrowed,
// so passing a value to it discharges nothing.
func inspect(s *State) int { return s.refs }

// dispose releases its argument; callers must not release again.
func dispose(s *State) { s.Release() }

// disposeVia is a helper chain: dispose-through-one-more-hop. The
// summary fixpoint propagates Releases bottom-up through it.
func disposeVia(s *State) { dispose(s) }

var cond bool

// goodDefer releases via the defer-at-acquisition idiom.
func goodDefer() {
	s := Capture()
	defer s.Release()
	s.Retain()
}

// goodTransferReturn hands ownership to the caller.
func goodTransferReturn() *State {
	s := Capture()
	return s
}

// goodTransferCall hands ownership to a registry.
func goodTransferCall() {
	s := Capture()
	register(s)
}

// goodTransferLit escapes through a composite literal, as Tree.Capture
// itself does with the frozen address space.
func goodTransferLit() []*State {
	s := Capture()
	return []*State{s}
}

// goodErrGuard releases on success and is exempt on the error path.
func goodErrGuard() error {
	s, err := Alloc()
	if err != nil {
		return err
	}
	s.Release()
	return nil
}

// badEarlyReturn leaks on the early success return: the happy path
// releases, but the cond branch forgets.
func badEarlyReturn() error {
	s, err := Alloc() // want `neither released nor transferred`
	if err != nil {
		return err
	}
	if cond {
		return nil
	}
	s.Release()
	return nil
}

// badNoRelease leaks on every path.
func badNoRelease() {
	s := Capture() // want `neither released nor transferred`
	s.Retain()
}

// badErrorPathLeak releases on success but leaks on an unrelated error
// return after the acquisition succeeded.
func badErrorPathLeak() error {
	s := Capture() // want `neither released nor transferred`
	if cond {
		return errors.New("unrelated failure")
	}
	s.Release()
	return nil
}

// badDiscarded throws the handle away at the call site.
func badDiscarded() {
	Capture() // want `result of Capture is discarded`
}

// suppressedHandOff documents a hand-off the checker cannot see: only
// a field of the handle is touched, so without the directive this is a
// report.
func suppressedHandOff() {
	//lint:ownership transferred handle parked for an external harness to release
	s := Capture()
	_ = s.refs
}

// goodHelperRelease discharges through the dispose helper chain: the
// interprocedural summary knows disposeVia releases its argument.
func goodHelperRelease() {
	s := Capture()
	disposeVia(s)
}

// badBorrowingHelper leaks: inspect only borrows the handle, so the
// call is not a discharge.
func badBorrowingHelper() {
	s := Capture() // want `neither released nor transferred`
	inspect(s)
}

// badDoubleReleaseHelper releases through the helper chain and then
// again directly.
func badDoubleReleaseHelper() {
	s := Capture()
	disposeVia(s)
	s.Release() // want `released again`
}

// badDoubleReleaseDirect releases twice on one path.
func badDoubleReleaseDirect(s *State) {
	s.Release()
	if cond {
		s.Release() // want `released again`
	}
}

// badUseAfterRelease touches the handle after handing it to dispose.
func badUseAfterRelease() int {
	s := Capture()
	dispose(s)
	return inspect(s) // want `used after being released`
}

// goodBranchRelease releases on exactly one path per execution: no
// double release, no leak.
func goodBranchRelease() {
	s := Capture()
	if cond {
		s.Release()
		return
	}
	disposeVia(s)
}

// goodRebind releases, rebinds the variable to a fresh acquisition, and
// releases again — two values, one release each.
func goodRebind() {
	s := Capture()
	s.Release()
	s = Capture()
	s.Release()
}

// suppressedDoubleRelease documents a deliberate re-release (idempotent
// teardown) silenced with the general directive.
func suppressedDoubleRelease(s *State) {
	s.Release()
	//lint:ignore releasecheck Release is idempotent on this handle during teardown
	s.Release()
}

// cleanNoAcquisition has nothing to check.
func cleanNoAcquisition() int {
	x := 1
	if cond {
		return x
	}
	return 2 * x
}
