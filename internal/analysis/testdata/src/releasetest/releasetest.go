// Package releasetest exercises releasecheck against the shapes that
// appear in internal/core and internal/snapshot: capture-then-release,
// capture-then-transfer, err-guarded acquisitions, early-return leaks.
package releasetest

import "errors"

// State mirrors snapshot.State: a refcounted handle.
type State struct{ refs int }

// Release drops a reference.
func (s *State) Release() {}

// Retain bumps the refcount (the bare-statement idiom).
func (s *State) Retain() {}

// Capture mirrors Tree.Capture: an acquisition with no error result.
func Capture() *State { return &State{refs: 1} }

// Alloc mirrors FrameAllocator.Alloc: acquisition with a paired error.
func Alloc() (*State, error) { return &State{refs: 1}, nil }

func register(s *State) {}

var cond bool

// goodDefer releases via the defer-at-acquisition idiom.
func goodDefer() {
	s := Capture()
	defer s.Release()
	s.Retain()
}

// goodTransferReturn hands ownership to the caller.
func goodTransferReturn() *State {
	s := Capture()
	return s
}

// goodTransferCall hands ownership to a registry.
func goodTransferCall() {
	s := Capture()
	register(s)
}

// goodTransferLit escapes through a composite literal, as Tree.Capture
// itself does with the frozen address space.
func goodTransferLit() []*State {
	s := Capture()
	return []*State{s}
}

// goodErrGuard releases on success and is exempt on the error path.
func goodErrGuard() error {
	s, err := Alloc()
	if err != nil {
		return err
	}
	s.Release()
	return nil
}

// badEarlyReturn leaks on the early success return: the happy path
// releases, but the cond branch forgets.
func badEarlyReturn() error {
	s, err := Alloc() // want `neither released nor transferred`
	if err != nil {
		return err
	}
	if cond {
		return nil
	}
	s.Release()
	return nil
}

// badNoRelease leaks on every path.
func badNoRelease() {
	s := Capture() // want `neither released nor transferred`
	s.Retain()
}

// badErrorPathLeak releases on success but leaks on an unrelated error
// return after the acquisition succeeded.
func badErrorPathLeak() error {
	s := Capture() // want `neither released nor transferred`
	if cond {
		return errors.New("unrelated failure")
	}
	s.Release()
	return nil
}

// badDiscarded throws the handle away at the call site.
func badDiscarded() {
	Capture() // want `result of Capture is discarded`
}

// suppressedHandOff documents a hand-off the checker cannot see: only
// a field of the handle is touched, so without the directive this is a
// report.
func suppressedHandOff() {
	//lint:ownership transferred handle parked for an external harness to release
	s := Capture()
	_ = s.refs
}

// cleanNoAcquisition has nothing to check.
func cleanNoAcquisition() int {
	x := 1
	if cond {
		return x
	}
	return 2 * x
}
