// Package epochtest exercises flushcheck's epoch_boundary rule against
// the shapes from internal/mem's capture protocol: epoch-boundary
// functions (fork/capture) that must advance the snapshot epoch on every
// success path, bump-by-helper, deferred bumps, exempt error paths, and
// the deliberate suppression idiom.
package epochtest

import "errors"

type espace struct {
	epoch  uint64
	sealed bool
}

// AdvanceEpoch is recognized by name, like mem.AddressSpace.AdvanceEpoch.
//
// bumps_epoch
func (s *espace) AdvanceEpoch() uint64 {
	if s.sealed {
		return s.epoch
	}
	s.epoch++
	return s.epoch
}

// freshEpoch is a differently-named helper recognized via its annotation.
//
// bumps_epoch
func freshEpoch(s *espace) { s.epoch++ }

var errSealed = errors.New("sealed")

var cond bool

// goodFork bumps the epoch before sharing, like Fork.
//
// epoch_boundary
func goodFork(s *espace) *espace {
	s.AdvanceEpoch()
	return &espace{epoch: s.epoch + 1}
}

// goodViaHelper bumps through an annotated helper.
//
// epoch_boundary
func goodViaHelper(s *espace) {
	freshEpoch(s)
}

// goodErrPath skips the bump only on the error path, where no sharing
// ever happened.
//
// epoch_boundary
func goodErrPath(s *espace) error {
	if s.sealed {
		return errSealed
	}
	s.AdvanceEpoch()
	return nil
}

// goodDeferred bumps at every exit via defer.
//
// epoch_boundary
func goodDeferred(s *espace) {
	defer freshEpoch(s)
	if cond {
		return
	}
	s.sealed = true
}

// badNoBump shares without starting a new epoch — the deleted-bump bug
// the rule exists to catch: stale write-TLB entries cache private
// ownership into the shared era.
//
// epoch_boundary
func badNoBump(s *espace) *espace { // want `no snapshot-epoch advance`
	return &espace{epoch: s.epoch}
}

// badEarlySuccess bumps on the fallthrough path but returns success
// early without one.
//
// epoch_boundary
func badEarlySuccess(s *espace) error { // want `no snapshot-epoch advance`
	if cond {
		return nil
	}
	s.AdvanceEpoch()
	return nil
}

// suppressedBoundary documents why the bump is elided.
//
// epoch_boundary
//
//lint:ignore flushcheck the space is sealed, owns no write entries, and can never privatize a page
func suppressedBoundary(s *espace) {
	s.sealed = true
}

// cleanNotABoundary has no annotation and no obligation.
func cleanNotABoundary(s *espace) {
	s.sealed = true
}
