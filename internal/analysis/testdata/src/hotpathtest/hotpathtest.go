// Package hotpathtest exercises the hotpath analyzer: allocation,
// defer, blocking, boxing and call-discipline findings in hot_path:
// functions, blocking findings in cheap: bodies, the locks= escape,
// the deferred-unlock exemption, and the amortized-growth suppression.
package hotpathtest

import (
	"fmt"
	"sync"
	"sync/atomic"
)

type counter struct {
	mu   sync.Mutex
	n    uint64
	hits atomic.Uint64
	buf  []uint64
}

// hotOK is the clean negative: a short critical section of an allowed
// class, an atomic bump, and a hot leaf call.
// hot_path: locks=mu
func (c *counter) hotOK() uint64 {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	c.hits.Add(1)
	return n + leafHot(n)
}

// leafHot is a pure leaf.
// hot_path:
func leafHot(x uint64) uint64 { return x * 2654435761 }

// cheapFill refills the buffer; allocation is allowed in cheap bodies.
// cheap: locks=mu
func (c *counter) cheapFill() {
	c.mu.Lock()
	c.buf = append(make([]uint64, 0, 64), c.buf...)
	c.mu.Unlock()
}

// hotCallsCheap: hot may call cheap.
// hot_path:
func (c *counter) hotCallsCheap() {
	if len(c.buf) == 0 {
		c.cheapFill()
	}
}

// hotDeferUnlock uses the one allowed defer.
// hot_path: locks=mu
func (c *counter) hotDeferUnlock() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// hotPoll: a select with a default polls, not blocks.
// hot_path:
func hotPoll(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

// hotGrowSuppressed documents the amortized-growth escape; the
// suppression is load-bearing (delete it and this suite fails).
// hot_path:
func (c *counter) hotGrowSuppressed(v uint64) {
	//lint:ignore hotpath amortized: capacity doubles, growth is O(1)/op
	c.buf = append(c.buf, v)
}

// hot_path:
func hotAllocs() *counter {
	m := make(map[int]int) // want `heap allocation in hot path hotAllocs: make`
	_ = m
	q := &counter{} // want `heap allocation in hot path hotAllocs: &composite literal`
	_ = q
	return new(counter) // want `heap allocation in hot path hotAllocs: new`
}

// hot_path:
func (c *counter) hotAppend(v uint64) {
	c.buf = append(c.buf, v) // want `append in hot path hotAppend may grow its backing array`
}

// hot_path:
func hotSliceLit() []int {
	return []int{1, 2, 3} // want `heap allocation in hot path hotSliceLit: slice literal`
}

// hot_path:
func hotDefer(c *counter) {
	defer c.cheapFill() // want `defer in hot path hotDefer`
}

// hot_path:
func hotBlocks(ch chan int) {
	ch <- 1  // want `channel send in hot path hotBlocks blocks`
	<-ch     // want `channel receive in hot path hotBlocks blocks`
	select { // want `select without default in hot path hotBlocks blocks`
	case v := <-ch: // want `channel receive in hot path hotBlocks blocks`
		_ = v
	}
}

// hot_path:
func hotGo(c *counter) {
	go c.cheapFill() // want `go statement in hot path hotGo`
}

// hot_path:
func hotLock(c *counter) {
	c.mu.Lock() // want `acquiring mu in hot path hotLock blocks`
	c.mu.Unlock()
}

// hot_path:
func hotWG(wg *sync.WaitGroup) {
	wg.Add(1)
	wg.Done()
	wg.Wait() // want `WaitGroup.*Wait in hot path hotWG blocks`
}

// hot_path:
func hotClosure() func() {
	f := func() {} // want `closure literal in hot path hotClosure escapes`
	return f
}

// hotIIFE: an immediately-invoked literal's body is checked as hot.
// hot_path:
func hotIIFE(x uint64) uint64 {
	return func() uint64 {
		m := make([]byte, x) // want `heap allocation in hot path func literal: make`
		return uint64(len(m))
	}()
}

// hot_path:
func hotString(a, b string) string {
	return a + b // want `string concatenation in hot path hotString allocates`
}

// hot_path:
func hotConv(b []byte) string {
	return string(b) // want `string conversion in hot path hotConv allocates`
}

// hot_path:
func hotBox(v uint64) any {
	var x any = v // want `interface boxing in hot path hotBox: declaration allocates`
	_ = x
	return v // want `interface boxing in hot path hotBox: return allocates`
}

// hot_path:
func hotVariadic(v uint64) {
	_ = fmt.Sprint(v) // want `hot path hotVariadic calls fmt.Sprint` `variadic call in hot path hotVariadic allocates its argument slice`
}

func plain() {}

// hot_path:
func hotCallsPlain() {
	plain() // want `hot path hotCallsPlain calls plain, which is neither hot_path: nor cheap:`
}

// hot_path:
func hotFuncValue(f func()) {
	f() // want `call through a function value in hot path hotFuncValue`
}

// hot_path:
func hotMethodValue(c *counter) func() {
	return c.cheapFill // want `method value binding in hot path hotMethodValue allocates a closure`
}

// cheap: locks=mu
func (c *counter) cheapBlocks(ch chan int) {
	c.mu.Lock()
	c.mu.Unlock()
	<-ch // want `channel receive in cheap function cheapBlocks blocks`
}

// cheap:
func cheapLocksWrong(c *counter) {
	c.mu.Lock() // want `acquiring mu in cheap function cheapLocksWrong blocks`
	c.mu.Unlock()
}
