// Package locktest exercises lockguard against the sharded-map shapes
// from internal/service and internal/search: guarded_by fields,
// locks_held helper contracts, defer-unlock, and unlock-then-touch.
package locktest

import "sync"

type shard struct {
	mu sync.Mutex
	// guarded_by: mu
	entries map[int]int
	victim  int // guarded_by: mu
}

// goodLocked takes the shard lock around the access.
func goodLocked(sh *shard) int {
	sh.mu.Lock()
	v := sh.entries[1]
	sh.mu.Unlock()
	return v
}

// goodDeferUnlock uses the defer idiom: held state persists to the end.
func goodDeferUnlock(sh *shard) int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.victim++
	return sh.entries[2]
}

// goodHelper relies on the caller contract, like the lru helpers in
// internal/service.
//
// locks_held: mu
func goodHelper(sh *shard) int {
	return sh.entries[3]
}

// badUnlocked reads a guarded field with no lock anywhere in sight.
func badUnlocked(sh *shard) int {
	return sh.entries[4] // want `guarded_by: mu`
}

// badAfterUnlock touches the field after releasing the mutex.
func badAfterUnlock(sh *shard) int {
	sh.mu.Lock()
	v := sh.entries[5]
	sh.mu.Unlock()
	sh.victim = v // want `guarded_by: mu`
	return v
}

// badClosure: a function literal is its own scope — the lock held in
// the enclosing function does not carry into a goroutine body.
func badClosure(sh *shard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	go func() {
		sh.victim = 9 // want `guarded_by: mu`
	}()
}

// suppressedConstructor: single-threaded init is a documented exception.
func suppressedConstructor() *shard {
	sh := &shard{entries: map[int]int{}}
	//lint:ignore lockguard the shard is not yet published to other goroutines
	sh.entries[0] = 1
	return sh
}

// cleanUnguarded accesses a field with no annotation.
func cleanUnguarded(sh *shard) *sync.Mutex {
	return &sh.mu
}

// heldHelper documents the caller contract; its enclosed synchronous
// literal inherits it.
//
// locks_held: mu
func heldHelper(sh *shard) {
	run := func() {
		sh.victim = 1 // clean: synchronous literal under the contract
	}
	run()
}

// badGoFromHeld: a literal handed to `go` from a locks_held function
// runs after the caller may have released mu — the contract must not
// transfer.
//
// locks_held: mu
func badGoFromHeld(sh *shard) {
	sh.victim = 2 // clean: the contract covers the synchronous body
	go func() {
		sh.victim = 3 // want `guarded_by: mu`
	}()
}

// goodGoReacquires: the spawned literal takes the lock itself.
//
// locks_held: mu
func goodGoReacquires(sh *shard) {
	go func() {
		sh.mu.Lock()
		sh.victim = 4
		sh.mu.Unlock()
	}()
}

// goArgLiteral: a literal passed as an argument to the spawned call
// escapes to the goroutine just the same.
//
// locks_held: mu
func goArgLiteral(sh *shard, spawn func(fn func())) {
	go spawn(func() {
		sh.victim = 5 // want `guarded_by: mu`
	})
}
