// Package lockordertest exercises lockorder: rank inversions (direct,
// interprocedural, and via locks_held entry contracts), lock-order
// cycles, same-class nesting, no_block violations, and the suppression
// directive.
package lockordertest

import (
	"sync"
	"time"
)

type A struct {
	mu sync.Mutex // lock_rank: 10
}

type B struct {
	mu sync.Mutex // lock_rank: 20
}

// lock_rank: 30
var gmu sync.Mutex

type R1 struct {
	mu sync.Mutex // lock_rank: 5
}

type R2 struct {
	mu sync.Mutex // lock_rank: 6
}

type R3 struct {
	mu sync.Mutex // lock_rank: 7
}

type R4 struct {
	mu sync.Mutex // lock_rank: 8
}

type H struct {
	mu sync.Mutex // lock_rank: 50
}

type S1 struct {
	mu sync.Mutex // lock_rank: 100
}

type S2 struct {
	mu sync.Mutex // lock_rank: 90
}

// E and F are unranked: only cycle detection covers them.
type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

type N struct{ mu sync.Mutex }

type FastPath struct {
	mu sync.Mutex // no_block: hot-path lock; holders must not sleep or wait
}

var ch = make(chan int)

// goodOrder acquires in strictly increasing rank: clean.
func goodOrder(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// goodVarOrder: struct-field lock before a higher-ranked package var.
func goodVarOrder(b *B) {
	b.mu.Lock()
	gmu.Lock()
	gmu.Unlock()
	b.mu.Unlock()
}

// badOrderDirect inverts two ranked classes in one body.
func badOrderDirect(r1 *R1, r2 *R2) {
	r2.mu.Lock()
	r1.mu.Lock() // want `ranks must strictly increase`
	r1.mu.Unlock()
	r2.mu.Unlock()
}

func lockR3(r *R3) {
	r.mu.Lock()
	r.mu.Unlock()
}

// badOrderInterproc inverts through a helper: the callee's transitive
// acquisitions are charged to the callsite.
func badOrderInterproc(r3 *R3, r4 *R4) {
	r4.mu.Lock()
	lockR3(r3) // want `ranks must strictly increase`
	r4.mu.Unlock()
}

// heldMethod's caller contractually holds h.mu (rank 50), so acquiring
// the rank-10 class inside is an inversion.
//
// locks_held: mu
func (h *H) heldMethod(a *A) {
	a.mu.Lock() // want `ranks must strictly increase`
	a.mu.Unlock()
}

// cycleOne and cycleTwo take the unranked E/F pair in opposite orders;
// the cycle is reported at the earliest witnessing edge.
func cycleOne(e *E, f *F) {
	e.mu.Lock()
	f.mu.Lock() // want `lock-order cycle`
	f.mu.Unlock()
	e.mu.Unlock()
}

func cycleTwo(e *E, f *F) {
	f.mu.Lock()
	e.mu.Lock()
	e.mu.Unlock()
	f.mu.Unlock()
}

// selfNest acquires two instances of one class with no instance order.
func selfNest(m1, m2 *N) {
	m1.mu.Lock()
	m2.mu.Lock() // want `same class`
	m2.mu.Unlock()
	m1.mu.Unlock()
}

// suppressedInversion is a deliberate, documented inversion: the
// directive is load-bearing (deleting it fails the build gate).
func suppressedInversion(s1 *S1, s2 *S2) {
	s1.mu.Lock()
	//lint:ignore lockorder boot path runs before any second goroutine exists
	s2.mu.Lock()
	s2.mu.Unlock()
	s1.mu.Unlock()
}

// badSendUnderFast blocks on a bare channel send inside a no_block
// critical section.
func badSendUnderFast(fp *FastPath) {
	fp.mu.Lock()
	ch <- 1 // want `channel send while holding no_block lock`
	fp.mu.Unlock()
}

// goodTrySendUnderFast uses select-with-default: non-blocking, clean.
func goodTrySendUnderFast(fp *FastPath) {
	fp.mu.Lock()
	select {
	case ch <- 1:
	default:
	}
	fp.mu.Unlock()
}

func blocker() {
	time.Sleep(time.Millisecond)
}

// badCallUnderFast calls a function that may block while holding the
// no_block lock.
func badCallUnderFast(fp *FastPath) {
	fp.mu.Lock()
	blocker() // want `may block while holding no_block lock`
	fp.mu.Unlock()
}
