// Package flushtest exercises flushcheck against the shapes from
// internal/mem: sharing-boundary functions that must invalidate the TLB
// on every success path (fork, unmap, heap shrink), flush-by-helper,
// deferred flushes, and exempt error paths.
package flushtest

import "errors"

type tlb struct{ off bool }

func (t *tlb) flush()      {}
func (t *tlb) flushWrite() {}

type space struct {
	t      tlb
	frozen bool
}

var errFrozen = errors.New("frozen")

var cond bool

// goodLinear flushes before returning.
//
// sharing_boundary
func goodLinear(s *space) {
	s.t.flush()
}

// goodBothArms flushes on both branches.
//
// sharing_boundary
func goodBothArms(s *space) {
	if cond {
		s.t.flushWrite()
		return
	}
	s.t.flush()
}

// goodErrPath skips the flush only on the error path, where the sharing
// change never happened.
//
// sharing_boundary
func goodErrPath(s *space) error {
	if s.frozen {
		return errFrozen
	}
	s.t.flush()
	return nil
}

// invalidate is a helper that performs the invalidation.
//
// flushes_tlb
func invalidate(s *space) { s.t.flush() }

// goodViaHelper flushes through an annotated helper, like Brk's shrink
// path delegating to shrinkHeap.
//
// sharing_boundary
func goodViaHelper(s *space) {
	invalidate(s)
}

// goodDeferred flushes at every exit via defer.
//
// sharing_boundary
func goodDeferred(s *space) {
	defer s.t.flush()
	if cond {
		return
	}
	s.frozen = true
}

// sharing_boundary
func badNoFlush(s *space) { // want `no TLB invalidation`
	s.frozen = true
}

// badEarlySuccess flushes on the fallthrough path but returns success
// early without one — the Fork-without-flushWrite bug shape.
//
// sharing_boundary
func badEarlySuccess(s *space) error { // want `no TLB invalidation`
	if cond {
		return nil
	}
	s.t.flush()
	return nil
}

// suppressedBoundary documents why the flush is elided.
//
// sharing_boundary
//
//lint:ignore flushcheck the space is frozen and can never fault again
func suppressedBoundary(s *space) {
	s.frozen = true
}

// cleanNotABoundary has no annotation and no obligation.
func cleanNotABoundary(s *space) {
	s.frozen = true
}
