package reprolint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// Package is one loaded, typechecked package ready for analysis.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	GoFiles    []string
	Module     *struct{ Path, Dir string }
	DepsErrors []*struct{ Err string }
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") with the go tool and typechecks
// every matching package in the current module from source, importing
// dependencies (standard library included) from the compiler's export
// data — so no network and no out-of-module source access is needed.
// Test files are not loaded: the invariants gate production code; tests
// intentionally abuse lifecycles to prove the panics fire.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-deps", "-json=Dir,ImportPath,Export,Standard,GoFiles,Module,DepsErrors,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("reprolint: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("reprolint: decode go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("reprolint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && p.Module != nil {
			q := p
			targets = append(targets, &q)
		}
	}
	// -deps lists dependencies too; only packages matching the original
	// patterns should be analyzed. Re-list without -deps to get that set.
	matchOut, err := listImportPaths(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("reprolint: no export data for %q", path)
		}
		return os.Open(e)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, p := range targets {
		if !matchOut[p.ImportPath] {
			continue
		}
		pkg, err := typecheck(fset, imp, p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

func listImportPaths(dir string, patterns []string) (map[string]bool, error) {
	cmd := exec.Command("go", append([]string{"list"}, patterns...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("reprolint: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	m := map[string]bool{}
	for _, line := range bytes.Split(out, []byte("\n")) {
		if len(line) > 0 {
			m[string(line)] = true
		}
	}
	return m, nil
}

// typecheck parses and checks one package from source.
func typecheck(fset *token.FileSet, imp types.Importer, p *listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		af, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("reprolint: parse %s: %w", name, err)
		}
		files = append(files, af)
	}
	info := NewTypesInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("reprolint: typecheck %s: %w", p.ImportPath, err)
	}
	return &Package{
		ImportPath: p.ImportPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers use
// populated (shared with the test harness's loader).
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
