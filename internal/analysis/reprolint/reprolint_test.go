package reprolint_test

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/flushcheck"
	"repro/internal/analysis/fsyncorder"
	"repro/internal/analysis/lockguard"
	"repro/internal/analysis/releasecheck"
	"repro/internal/analysis/reprolint"
)

// writeModule materializes a one-package module under a temp dir so Main
// exercises the real loader path: `go list -export`, gc export-data
// imports, typechecking from source.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmpmod\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

const violatingSrc = `package tmpmod

import "sync"

type counter struct {
	mu sync.Mutex
	// guarded_by: mu
	n int
}

func (c *counter) bad() int {
	return c.n
}

func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) suppressed() int {
	//lint:ignore lockguard single-threaded in this test fixture
	return c.n
}

// sharing_boundary
func noFlush() {}

type res struct{ n int }

func (r *res) Release() {}

// Alloc returns an owned res.
func Alloc() *res { return &res{} }

func leak() {
	r := Alloc()
	_ = r.n
}
`

// TestMainReportsAndSuppresses drives the full pipeline — load, run,
// annotation collection, suppression, diagnostic printing, exit code —
// over a module with one violation per flow analyzer plus one suppressed
// access. fsyncorder rides along to prove DirFilter skips non-store
// packages.
func TestMainReportsAndSuppresses(t *testing.T) {
	dir := writeModule(t, violatingSrc)
	analyzers := []*reprolint.Analyzer{
		releasecheck.Analyzer,
		lockguard.Analyzer,
		flushcheck.Analyzer,
		fsyncorder.Analyzer,
	}
	var stdout, stderr bytes.Buffer
	code := reprolint.Main(&stdout, &stderr, dir, analyzers, nil)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"lockguard", "flushcheck", "releasecheck"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s finding in output:\n%s", want, out)
		}
	}
	if strings.Contains(out, "fsyncorder") {
		t.Errorf("fsyncorder ran outside its DirFilter:\n%s", out)
	}
	if n := strings.Count(out, "\n"); n != 3 {
		t.Errorf("%d findings, want exactly 3 (the suppressed access must be filtered):\n%s", n, out)
	}
}

// TestMainCleanModule: the same analyzers over violation-free code must
// exit 0 and print nothing.
func TestMainCleanModule(t *testing.T) {
	dir := writeModule(t, `package tmpmod

import "sync"

type counter struct {
	mu sync.Mutex
	// guarded_by: mu
	n int
}

func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
`)
	var stdout, stderr bytes.Buffer
	code := reprolint.Main(&stdout, &stderr, dir, []*reprolint.Analyzer{
		releasecheck.Analyzer, lockguard.Analyzer, flushcheck.Analyzer,
	}, []string{"./..."})
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean module produced output:\n%s", stdout.String())
	}
}

// TestMainLoadError: an unresolvable pattern is a loader error (exit 2),
// not findings.
func TestMainLoadError(t *testing.T) {
	dir := writeModule(t, "package tmpmod\n")
	var stdout, stderr bytes.Buffer
	code := reprolint.Main(&stdout, &stderr, dir, []*reprolint.Analyzer{lockguard.Analyzer}, []string{"./no/such/dir"})
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if stderr.Len() == 0 {
		t.Error("loader error printed nothing to stderr")
	}
}

// parseOne parses a snippet and returns its only function declaration.
func parseOne(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

// TestFuncAnnotationGrammar pins the directive grammar corners: prose
// after the directive word, comma lists, trailing parentheticals.
func TestFuncAnnotationGrammar(t *testing.T) {
	_, f := parseOne(t, `package p

// sharing_boundary: dropped frames may still be cached.
// flushes_tlb
// durable: publishes-synced
// locks_held: mu, tableMu (trivially: unpublished)
func x() {}

// sharing_boundaryX must NOT match the sharing_boundary directive.
func y() {}
`)
	fx := f.Decls[0].(*ast.FuncDecl)
	ann := reprolint.FuncAnnotation(fx)
	if !ann.SharingBoundary || !ann.FlushesTLB || !ann.DurablePublish {
		t.Errorf("directives not all parsed: %+v", ann)
	}
	if len(ann.LocksHeld) != 2 || ann.LocksHeld[0] != "mu" || ann.LocksHeld[1] != "tableMu" {
		t.Errorf("LocksHeld = %v, want [mu tableMu]", ann.LocksHeld)
	}
	fy := f.Decls[1].(*ast.FuncDecl)
	if reprolint.FuncAnnotation(fy).SharingBoundary {
		t.Error("sharing_boundaryX parsed as sharing_boundary")
	}
	if ann := reprolint.FuncAnnotation(nil); ann.SharingBoundary || ann.FlushesTLB || ann.DurablePublish || len(ann.LocksHeld) != 0 {
		t.Error("nil FuncDecl yielded annotations")
	}
}

// TestFieldGuards covers both annotation positions: doc comment above
// the field and trailing comment on its line.
func TestFieldGuards(t *testing.T) {
	_, f := parseOne(t, `package p

import "sync"

type s struct {
	mu sync.Mutex
	// guarded_by: mu
	a int
	b int // guarded_by: mu — with prose
	c int
}

var _ = sync.Mutex{}
`)
	st := f.Decls[1].(*ast.GenDecl).Specs[0].(*ast.TypeSpec).Type.(*ast.StructType)
	got := map[string][]string{}
	for _, fld := range st.Fields.List {
		got[fld.Names[0].Name] = reprolint.FieldGuards(fld)
	}
	if len(got["a"]) != 1 || got["a"][0] != "mu" {
		t.Errorf("a guards = %v", got["a"])
	}
	if len(got["b"]) != 1 || got["b"][0] != "mu" {
		t.Errorf("b guards = %v", got["b"])
	}
	if len(got["c"]) != 0 {
		t.Errorf("c guards = %v, want none", got["c"])
	}
}
