package reprolint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// ExprString renders an expression compactly — the syntactic identity
// used to match a lock's base expression against a guarded access's base
// (`sh.mu.Lock()` guards `sh.entries` because both bases print as "sh").
func ExprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, fset, e)
	return buf.String()
}

// FuncScope is one analyzable function body: a declaration or a literal.
// Function literals are independent scopes — a closure passed to another
// goroutine holds no caller locks, and its acquisitions are its own.
type FuncScope struct {
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	Body *ast.BlockStmt
	// Encl is the function declaration a literal is defined inside, if
	// any. Contract annotations (locks_held) extend to enclosed literals
	// — the synchronous-callback idiom (`m.refs(func(h) {...})`) runs
	// the literal under the caller's contract.
	Encl *ast.FuncDecl
}

// Name returns a human-readable name for diagnostics.
func (fs FuncScope) Name() string {
	if fs.Decl != nil {
		return fs.Decl.Name.Name
	}
	return "func literal"
}

// Pos returns the scope's position.
func (fs FuncScope) Pos() token.Pos {
	if fs.Decl != nil {
		return fs.Decl.Pos()
	}
	return fs.Lit.Pos()
}

// FuncScopes returns every function body in the file: declarations and
// (recursively) literals, each exactly once. Literals carry the
// declaration they are defined inside in Encl.
func FuncScopes(file *ast.File) []FuncScope {
	var out []FuncScope
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		out = append(out, FuncScope{Decl: fd, Body: fd.Body})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, FuncScope{Lit: lit, Body: lit.Body, Encl: fd})
			}
			return true
		})
	}
	// Literals outside any function declaration (package-level var
	// initializers).
	for _, d := range file.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok {
			continue
		}
		ast.Inspect(gd, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, FuncScope{Lit: lit, Body: lit.Body})
			}
			return true
		})
	}
	return out
}

// InspectShallow walks the statement tree rooted at n without descending
// into nested function literals (whose statements belong to a different
// scope).
func InspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return fn(m)
	})
}

// FuncDeclMap indexes the package's function declarations by their type
// object, so analyzers can resolve a call to the callee's annotations.
func FuncDeclMap(pass *Pass) map[*types.Func]*ast.FuncDecl {
	m := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				m[obj] = fd
			}
		}
	}
	return m
}

// CalleeFunc resolves a call expression to its *types.Func (method or
// function), or nil for indirect/builtin calls.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// IsErrorType reports whether t is the built-in error interface.
func IsErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// ErrorResultIndex returns the index of the trailing error result of
// sig, or -1.
func ErrorResultIndex(sig *types.Signature) int {
	res := sig.Results()
	if res.Len() == 0 {
		return -1
	}
	if IsErrorType(res.At(res.Len() - 1).Type()) {
		return res.Len() - 1
	}
	return -1
}

// IsNilIdent reports whether e is the predeclared nil.
func IsNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// SuccessReturn classifies ret against the enclosing function's
// signature: true when the function has no error result, or the error
// result position holds literal nil. A nil ret (the implicit return at
// the end of a body) is always a success. Naked returns of a named error
// result are treated as failures only if... they are not: named results
// are not used in this codebase's hot paths, and treating them as
// successes keeps the checks strict.
func SuccessReturn(ret *ast.ReturnStmt, sig *types.Signature) bool {
	if ret == nil {
		return true
	}
	i := ErrorResultIndex(sig)
	if i < 0 {
		return true
	}
	if len(ret.Results) <= i {
		return true // naked return: strict
	}
	return IsNilIdent(ret.Results[i])
}

// ScopeSignature returns the types.Signature of a scope.
func ScopeSignature(info *types.Info, fs FuncScope) *types.Signature {
	if fs.Decl != nil {
		if obj, ok := info.Defs[fs.Decl.Name].(*types.Func); ok {
			return obj.Signature()
		}
		return nil
	}
	if tv, ok := info.Types[fs.Lit]; ok {
		if sig, ok := tv.Type.(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// ErrGuardedNodes returns the set of nodes that execute only when errObj
// is known non-nil: the then-branch of `if err != nil` and the
// else-branch of `if err == nil`. Flow checks exempt returns inside them
// — when the paired error of an acquisition is non-nil, the acquired
// value does not exist.
func ErrGuardedNodes(body ast.Node, info *types.Info, errObj types.Object) map[ast.Node]bool {
	out := map[ast.Node]bool{}
	if errObj == nil {
		return out
	}
	mark := func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if m != nil {
				out[m] = true
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		bin, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
		if !ok {
			return true
		}
		var idSide, nilSide ast.Expr = bin.X, bin.Y
		if IsNilIdent(idSide) {
			idSide, nilSide = bin.Y, bin.X
		}
		if !IsNilIdent(nilSide) {
			return true
		}
		id, ok := ast.Unparen(idSide).(*ast.Ident)
		if !ok || info.Uses[id] != errObj {
			return true
		}
		switch bin.Op {
		case token.NEQ:
			mark(ifs.Body)
		case token.EQL:
			mark(ifs.Else)
		}
		return true
	})
	return out
}
