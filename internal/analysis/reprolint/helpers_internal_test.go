package reprolint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheckSrc parses and typechecks one import-free source file.
func typecheckSrc(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "h.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := NewTypesInfo()
	if _, err := (&types.Config{}).Check("h", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, f, info
}

func TestLockAnnotation(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "l.go", `package h

import "sync"

type s struct {
	ranked   sync.Mutex // lock_rank: 30 innermost table lock
	hot      sync.Mutex // no_block: hot path
	plain    sync.Mutex
	badRank  sync.Mutex // lock_rank: not-a-number
}
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	fields := f.Decls[1].(*ast.GenDecl).Specs[0].(*ast.TypeSpec).Type.(*ast.StructType).Fields.List
	byName := map[string]LockAnn{}
	for _, fd := range fields {
		byName[fd.Names[0].Name] = LockAnnotation(fd.Doc, fd.Comment)
	}
	if a := byName["ranked"]; !a.HasRank || a.Rank != 30 || a.NoBlock {
		t.Errorf("ranked = %+v, want rank 30", a)
	}
	if a := byName["hot"]; !a.NoBlock || a.HasRank {
		t.Errorf("hot = %+v, want no_block only", a)
	}
	if a := byName["plain"]; a.HasRank || a.NoBlock {
		t.Errorf("plain = %+v, want empty", a)
	}
	if a := byName["badRank"]; a.HasRank {
		t.Errorf("badRank = %+v, malformed rank must not parse", a)
	}
}

func TestSuccessReturnClassification(t *testing.T) {
	_, f, info := typecheckSrc(t, `package h

type boom struct{}

func (boom) Error() string { return "boom" }

var errBoom error = boom{}

func twoRes(ok bool) (int, error) {
	if ok {
		return 1, nil
	}
	return 0, errBoom
}

func noErr() int { return 7 }
`)
	sigOf := func(name string) *types.Signature {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return info.Defs[fd.Name].(*types.Func).Signature()
			}
		}
		t.Fatalf("no func %s", name)
		return nil
	}
	var rets []*ast.ReturnStmt
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Name.Name == "Error" {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if r, ok := n.(*ast.ReturnStmt); ok {
				rets = append(rets, r)
			}
			return true
		})
	}
	if len(rets) != 3 {
		t.Fatalf("found %d returns, want 3", len(rets))
	}
	two := sigOf("twoRes")
	if ErrorResultIndex(two) != 1 {
		t.Errorf("twoRes error index = %d, want 1", ErrorResultIndex(two))
	}
	if !SuccessReturn(rets[0], two) {
		t.Error("return 1, nil classified as failure")
	}
	if SuccessReturn(rets[1], two) {
		t.Error("return 0, errBoom classified as success")
	}
	none := sigOf("noErr")
	if ErrorResultIndex(none) != -1 {
		t.Error("noErr reported an error result")
	}
	if !SuccessReturn(rets[2], none) || !SuccessReturn(nil, two) {
		t.Error("error-free return or implicit return classified as failure")
	}
}

func TestErrGuardedNodes(t *testing.T) {
	_, f, info := typecheckSrc(t, `package h

type boom struct{}

func (boom) Error() string { return "x" }

func acq() (int, error) { return 1, boom{} }

func use() int {
	v, err := acq()
	if err != nil {
		return 0
	}
	if err == nil {
		v++
	} else {
		v--
	}
	return v
}
`)
	var body *ast.BlockStmt
	var errObj types.Object
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "use" {
			body = fd.Body
			assign := body.List[0].(*ast.AssignStmt)
			errObj = info.Defs[assign.Lhs[1].(*ast.Ident)]
		}
	}
	guarded := ErrGuardedNodes(body, info, errObj)
	// The then-branch of `if err != nil` and the else-branch of
	// `if err == nil` run only on failure; the nil-branch v++ does not.
	var zeroRet, decStmt, incStmt ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			if len(s.Results) == 1 {
				if bl, ok := s.Results[0].(*ast.BasicLit); ok && bl.Value == "0" {
					zeroRet = s
				}
			}
		case *ast.IncDecStmt:
			if s.Tok == token.DEC {
				decStmt = s
			} else {
				incStmt = s
			}
		}
		return true
	})
	if !guarded[zeroRet] || !guarded[decStmt] {
		t.Error("failure-only branches not marked err-guarded")
	}
	if guarded[incStmt] {
		t.Error("success branch wrongly marked err-guarded")
	}
	if len(ErrGuardedNodes(body, info, nil)) != 0 {
		t.Error("nil errObj must guard nothing")
	}
}

func TestIsNilIdentAndErrorType(t *testing.T) {
	_, f, info := typecheckSrc(t, `package h

var e error

var x = (interface{})(nil)
`)
	if !IsErrorType(info.Defs[f.Decls[0].(*ast.GenDecl).Specs[0].(*ast.ValueSpec).Names[0]].Type()) {
		t.Error("error var not recognized as error type")
	}
	spec := f.Decls[1].(*ast.GenDecl).Specs[0].(*ast.ValueSpec)
	call := spec.Values[0].(*ast.CallExpr)
	if !IsNilIdent(call.Args[0]) {
		t.Error("nil literal not recognized")
	}
	if IsNilIdent(spec.Names[0]) {
		t.Error("non-nil ident recognized as nil")
	}
}
