package reprolint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Annotation grammar (see DESIGN.md "Static analysis & invariants"):
//
//	//lint:ownership transferred [reason]
//	    On (or on the line above) a snapshot/frame acquisition: the
//	    value's ownership is handed off in a way releasecheck cannot
//	    see. Blessed suppression for releasecheck only.
//
//	//lint:ignore <analyzer> <reason>
//	    General escape hatch: suppresses that analyzer's findings on
//	    the same or the following line. A reason is required.
//
//	// guarded_by: <mutex-field>
//	    On a struct field: every read/write outside a function that
//	    syntactically holds the named sibling mutex (or is annotated
//	    locks_held) is a lockguard finding.
//
//	// locks_held: <mutex-field>[, <mutex-field>...]
//	    On a function: callers are contractually holding the named
//	    mutexes, so accesses to fields they guard are not re-checked.
//
//	// sharing_boundary
//	    On a function: every success path must invalidate the TLB
//	    (flushcheck).
//
//	// flushes_tlb
//	    On a function: calling it counts as a TLB invalidation.
//
//	// epoch_boundary
//	    On a function: it makes privately-owned pages shared (capture,
//	    fork), so every success path must advance the snapshot epoch
//	    (flushcheck).
//
//	// bumps_epoch
//	    On a function: calling it counts as a snapshot-epoch advance.
//
//	// durable: publishes-synced
//	    On a function: it renames/creates files AND syncs their
//	    directory entries internally, so calls to it are already-synced
//	    publishes for fsyncorder.
//
//	// lock_rank: <int> [prose]
//	    On a mutex field or package-level mutex var: its position in the
//	    global acquisition order. While a lock of rank r is held, only
//	    locks of strictly greater rank may be acquired (lockorder).
//	    Unranked locks are still covered by cycle detection.
//
//	// no_block: <reason>
//	    On a mutex field or package-level mutex var: its critical
//	    sections must not block — no channel send/receive outside a
//	    select with a default, no further Lock of any class, no file
//	    I/O, no Cond/WaitGroup waits, directly or through any resolved
//	    callee (lockorder).
//
//	// hot_path: [locks=<mutex>[,<mutex>...]] [prose]
//	    On a function: it is on a performance-critical path. hotpath
//	    forbids heap-allocation sites, defer (except a deferred Unlock
//	    of an allowed lock class), and blocking ops inside it, and
//	    requires every resolved callee to be hot_path, cheap, or on
//	    the stdlib cheap allowlist. The optional locks= list (no
//	    spaces, comma-separated field names) names the short
//	    critical-section classes the function may take. escapegate
//	    additionally cross-checks the compiler's escape analysis.
//
//	// cheap: [locks=<mutex>[,<mutex>...]] [prose]
//	    On a function: hot_path callers may call it. Its body is
//	    trusted to be amortized-cheap (allocation is allowed — e.g.
//	    the CoW fault path allocates the private copy by design) but
//	    hotpath still rejects direct blocking ops in it, with the
//	    same locks= escape for its own short critical sections.
//
//	// inline:
//	    On a function: escapegate asserts the compiler reports it
//	    inlinable (canInlineFunction); a declined inline is a finding.

// FuncAnn is the set of function-level directives.
type FuncAnn struct {
	SharingBoundary bool
	FlushesTLB      bool
	EpochBoundary   bool
	BumpsEpoch      bool
	DurablePublish  bool
	LocksHeld       []string

	// Performance-invariant directives (hotpath/escapegate).
	HotPath  bool
	Cheap    bool
	Inline   bool
	HotLocks []string // locks= classes a hot_path/cheap body may take
}

// FuncAnnotation parses fn's doc comment directives.
func FuncAnnotation(fn *ast.FuncDecl) FuncAnn {
	var a FuncAnn
	if fn == nil || fn.Doc == nil {
		return a
	}
	for _, c := range fn.Doc.List {
		line := directiveText(c.Text)
		switch {
		case directiveIs(line, "sharing_boundary"):
			a.SharingBoundary = true
		case directiveIs(line, "flushes_tlb"):
			a.FlushesTLB = true
		case directiveIs(line, "epoch_boundary"):
			a.EpochBoundary = true
		case directiveIs(line, "bumps_epoch"):
			a.BumpsEpoch = true
		case directiveIs(line, "durable") && strings.Contains(line, "publishes-synced"):
			a.DurablePublish = true
		case directiveIs(line, "locks_held"):
			a.LocksHeld = append(a.LocksHeld, parseNameList(line)...)
		// The performance directives require the colon form: "cheap"
		// and "inline" are ordinary words a doc comment may start with.
		case strings.HasPrefix(line, "hot_path:"):
			a.HotPath = true
			a.HotLocks = append(a.HotLocks, parseLocksList(line)...)
		case strings.HasPrefix(line, "cheap:"):
			a.Cheap = true
			a.HotLocks = append(a.HotLocks, parseLocksList(line)...)
		case strings.HasPrefix(line, "inline:"):
			a.Inline = true
		}
	}
	return a
}

// parseLocksList extracts the comma-separated (no spaces) identifier
// list after a "locks=" token, e.g. "hot_path: locks=closeMu,mu serves
// the shard hit path" yields [closeMu mu]. Trailing prose after the
// list is tolerated; a space ends the list.
func parseLocksList(line string) []string {
	_, rest, ok := strings.Cut(line, "locks=")
	if !ok {
		return nil
	}
	var out []string
	for _, part := range strings.Split(rest, ",") {
		name := identPrefix(part)
		if name == "" {
			break
		}
		out = append(out, name)
		// Prose after the name ends the list: "locks=mu then prose".
		if len(name) != len(part) {
			break
		}
	}
	return out
}

// FieldGuards returns the mutex names named by guarded_by directives on
// a struct field (doc comment or trailing line comment).
func FieldGuards(f *ast.Field) []string {
	var out []string
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			line := directiveText(c.Text)
			if directiveIs(line, "guarded_by") {
				out = append(out, parseNameList(line)...)
			}
		}
	}
	return out
}

// LockAnn is the set of lock-discipline directives on a mutex field or
// package-level mutex var declaration.
type LockAnn struct {
	Rank    int
	HasRank bool
	NoBlock bool
}

// LockAnnotation parses the lock-discipline directives out of the
// comment groups attached to a declaration (doc and trailing comment).
func LockAnnotation(groups ...*ast.CommentGroup) LockAnn {
	var a LockAnn
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			line := directiveText(c.Text)
			switch {
			case directiveIs(line, "lock_rank"):
				if _, rest, ok := strings.Cut(line, ":"); ok {
					fields := strings.Fields(rest)
					if len(fields) > 0 {
						if n, err := strconv.Atoi(fields[0]); err == nil {
							a.Rank, a.HasRank = n, true
						}
					}
				}
			case directiveIs(line, "no_block"):
				a.NoBlock = true
			}
		}
	}
	return a
}

// directiveText strips the comment markers and leading space.
func directiveText(text string) string {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSuffix(text, "*/")
	return strings.TrimSpace(text)
}

// directiveIs reports whether line starts with the directive word,
// optionally followed by ':' and an explanation.
func directiveIs(line, word string) bool {
	if !strings.HasPrefix(line, word) {
		return false
	}
	rest := line[len(word):]
	return rest == "" || strings.HasPrefix(rest, ":") || strings.HasPrefix(rest, " ") || strings.HasPrefix(rest, "\t")
}

// parseNameList extracts the comma-separated identifier list after the
// first ':' in a directive line, stopping each name at the first
// non-identifier rune (so trailing prose is tolerated).
func parseNameList(line string) []string {
	_, rest, ok := strings.Cut(line, ":")
	if !ok {
		return nil
	}
	var out []string
	for _, part := range strings.Split(rest, ",") {
		name := identPrefix(strings.TrimSpace(part))
		if name != "" {
			out = append(out, name)
		}
	}
	return out
}

func identPrefix(s string) string {
	for i, r := range s {
		if r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || i > 0 && r >= '0' && r <= '9' {
			continue
		}
		return s[:i]
	}
	return s
}

// Annotations indexes the suppression directives of one package.
type Annotations struct {
	// ignores maps filename -> line -> analyzer names suppressed there
	// ("*" = releasecheck's ownership-transferred blessing).
	ignores map[string]map[int][]string
}

// CollectAnnotations scans every comment in the files for //lint:
// suppression directives.
func CollectAnnotations(fset *token.FileSet, files []*ast.File) *Annotations {
	a := &Annotations{ignores: map[string]map[int][]string{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				var name string
				switch {
				case strings.HasPrefix(text, "lint:ownership"):
					rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:ownership"))
					if strings.HasPrefix(rest, "transferred") {
						name = "releasecheck"
					}
				case strings.HasPrefix(text, "lint:ignore"):
					fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
					if len(fields) >= 2 { // analyzer name plus a reason
						name = fields[0]
					}
				}
				if name == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				if a.ignores[pos.Filename] == nil {
					a.ignores[pos.Filename] = map[int][]string{}
				}
				a.ignores[pos.Filename][pos.Line] = append(a.ignores[pos.Filename][pos.Line], name)
			}
		}
	}
	return a
}

// Filter drops diagnostics suppressed by a //lint: directive, returning
// the survivors and the number suppressed. It is the exported form of
// filterIgnored for out-of-package analyzers (escapegate) that produce
// diagnostics outside the RunAnalyzers pipeline.
func (a *Annotations) Filter(diags []Diagnostic) ([]Diagnostic, int) {
	return a.filterIgnored(diags)
}

// filterIgnored drops diagnostics suppressed by a directive on their own
// line or the line directly above (the directive-on-its-own-line idiom),
// returning the survivors and the number suppressed.
func (a *Annotations) filterIgnored(diags []Diagnostic) ([]Diagnostic, int) {
	out := diags[:0]
	suppressed := 0
	for _, d := range diags {
		if a.suppressed(d) {
			suppressed++
			continue
		}
		out = append(out, d)
	}
	return out, suppressed
}

func (a *Annotations) suppressed(d Diagnostic) bool {
	m := a.ignores[d.Pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, name := range m[line] {
			if name == d.Analyzer {
				return true
			}
		}
	}
	return false
}
