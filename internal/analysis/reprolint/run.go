package reprolint

import (
	"fmt"
	"io"
)

// Main loads the packages matching patterns (relative to dir) and runs
// the given analyzers over each, honoring per-analyzer DirFilters.
// Diagnostics print to stdout, loader failures to stderr. The return
// value is the process exit code: 0 clean, 1 findings, 2 load/run error
// — so `go run ./cmd/reprolint ./...` is a usable CI gate.
func Main(stdout, stderr io.Writer, dir string, analyzers []*Analyzer, patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	found := 0
	for _, pkg := range pkgs {
		var active []*Analyzer
		for _, a := range analyzers {
			if a.matchesFilter(pkg.ImportPath) {
				active = append(active, a)
			}
		}
		if len(active) == 0 {
			continue
		}
		diags, err := RunAnalyzers(pkg, active)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(stderr, "reprolint: %d finding(s)\n", found)
		return 1
	}
	return 0
}
