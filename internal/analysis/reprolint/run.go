package reprolint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Options configures the driver beyond its defaults.
type Options struct {
	// JSONPath, when non-empty, writes a machine-readable report of the
	// run — per-finding analyzer/position/message plus the suppressed
	// count — to this file (CI archives it next to BENCH_ci.json).
	JSONPath string
	// Time prints per-analyzer cumulative wall time to stderr after the
	// run.
	Time bool
	// Jobs bounds the per-package worker pool; <=0 means GOMAXPROCS.
	Jobs int
}

// jsonFinding is one diagnostic in the -json report.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// jsonReport is the -json payload.
type jsonReport struct {
	Findings   []jsonFinding `json:"findings"`
	Suppressed int           `json:"suppressed"`
	Packages   int           `json:"packages"`
	Analyzers  []string      `json:"analyzers"`
}

// Main loads the packages matching patterns (relative to dir) and runs
// the given analyzers over each, honoring per-analyzer DirFilters.
// Diagnostics print to stdout, loader failures to stderr. The return
// value is the process exit code: 0 clean, 1 findings, 2 load/run error
// — so `go run ./cmd/reprolint ./...` is a usable CI gate.
func Main(stdout, stderr io.Writer, dir string, analyzers []*Analyzer, patterns []string) int {
	return MainOpts(stdout, stderr, dir, analyzers, patterns, Options{})
}

// MainOpts is Main with Options. Per-package analyzers run over the
// packages on a worker pool bounded by Options.Jobs (default
// GOMAXPROCS); whole-program analyzers run once over everything loaded.
// Diagnostics are emitted in deterministic order regardless of worker
// interleaving: per-package findings in package load order (each
// package's findings position-sorted), then whole-program findings
// position-sorted.
func MainOpts(stdout, stderr io.Writer, dir string, analyzers []*Analyzer, patterns []string, opts Options) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var perPkg, whole []*Analyzer
	for _, a := range analyzers {
		if a.RunProgram != nil {
			whole = append(whole, a)
		} else {
			perPkg = append(perPkg, a)
		}
	}

	var timingMu sync.Mutex
	timings := map[string]time.Duration{}
	timing := func(name string, d time.Duration) {
		timingMu.Lock()
		timings[name] += d
		timingMu.Unlock()
	}

	// Per-package phase: a bounded worker pool over the package list.
	// Results land in per-index slots so emission order is package load
	// order no matter which worker finished first.
	type pkgResult struct {
		diags      []Diagnostic
		suppressed int
		err        error
	}
	results := make([]pkgResult, len(pkgs))
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(pkgs) {
		jobs = len(pkgs)
	}
	if jobs < 1 {
		jobs = 1
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				pkg := pkgs[i]
				var active []*Analyzer
				for _, a := range perPkg {
					if a.matchesFilter(pkg.ImportPath) {
						active = append(active, a)
					}
				}
				if len(active) == 0 {
					continue
				}
				diags, suppressed, err := runAnalyzers(pkg, active, timing)
				results[i] = pkgResult{diags: diags, suppressed: suppressed, err: err}
			}
		}()
	}
	for i := range pkgs {
		work <- i
	}
	close(work)
	wg.Wait()

	var all []Diagnostic
	totalSuppressed := 0
	for _, r := range results {
		if r.err != nil {
			fmt.Fprintln(stderr, r.err)
			return 2
		}
		all = append(all, r.diags...)
		totalSuppressed += r.suppressed
	}

	// Whole-program phase.
	if len(whole) > 0 {
		prog := NewProgram(pkgs)
		diags, suppressed, err := RunWholeProgram(prog, whole, timing)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		all = append(all, diags...)
		totalSuppressed += suppressed
	}

	for _, d := range all {
		fmt.Fprintln(stdout, d)
	}

	if opts.Time {
		names := make([]string, 0, len(timings))
		for name := range timings {
			names = append(names, name)
		}
		sort.Slice(names, func(i, j int) bool { return timings[names[i]] > timings[names[j]] })
		for _, name := range names {
			fmt.Fprintf(stderr, "reprolint: %-14s %8.1fms\n", name, float64(timings[name].Microseconds())/1000)
		}
	}

	if opts.JSONPath != "" {
		report := jsonReport{
			Findings:   []jsonFinding{},
			Suppressed: totalSuppressed,
			Packages:   len(pkgs),
		}
		for _, a := range analyzers {
			report.Analyzers = append(report.Analyzers, a.Name)
		}
		for _, d := range all {
			report.Findings = append(report.Findings, jsonFinding{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
		}
		buf, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(opts.JSONPath, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "reprolint: writing %s: %v\n", opts.JSONPath, err)
			return 2
		}
	}

	if len(all) > 0 {
		fmt.Fprintf(stderr, "reprolint: %d finding(s)\n", len(all))
		return 1
	}
	return 0
}
