package reprolint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// TestIgnoreRequiresReason: a bare //lint:ignore with no reason does not
// suppress — the reason is part of the directive grammar.
func TestIgnoreRequiresReason(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", `package p

//lint:ignore lockguard
var a int

//lint:ignore lockguard because reasons
var b int
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ann := CollectAnnotations(fset, []*ast.File{f})
	mk := func(line int) Diagnostic {
		return Diagnostic{
			Pos:      token.Position{Filename: "x.go", Line: line},
			Analyzer: "lockguard",
		}
	}
	// Line 4 is `var a` (directive above lacks a reason); line 7 is `var b`.
	got, suppressed := ann.filterIgnored([]Diagnostic{mk(4), mk(7)})
	if len(got) != 1 || got[0].Pos.Line != 4 || suppressed != 1 {
		t.Errorf("filterIgnored = %v (suppressed %d), want only the reasonless line-4 diagnostic kept", got, suppressed)
	}
}

// TestOwnershipDirectiveMapsToReleasecheck: //lint:ownership transferred
// suppresses releasecheck findings on its own and the following line,
// and nothing else.
func TestOwnershipDirectiveMapsToReleasecheck(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", `package p

//lint:ownership transferred registered in a global table
var a int
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ann := CollectAnnotations(fset, []*ast.File{f})
	rel := Diagnostic{Pos: token.Position{Filename: "x.go", Line: 4}, Analyzer: "releasecheck"}
	other := Diagnostic{Pos: token.Position{Filename: "x.go", Line: 4}, Analyzer: "lockguard"}
	got, suppressed := ann.filterIgnored([]Diagnostic{rel, other})
	if len(got) != 1 || got[0].Analyzer != "lockguard" || suppressed != 1 {
		t.Errorf("filterIgnored = %v (suppressed %d), want only the lockguard diagnostic kept", got, suppressed)
	}
}
