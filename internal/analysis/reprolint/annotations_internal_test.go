package reprolint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// TestIgnoreRequiresReason: a bare //lint:ignore with no reason does not
// suppress — the reason is part of the directive grammar.
func TestIgnoreRequiresReason(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", `package p

//lint:ignore lockguard
var a int

//lint:ignore lockguard because reasons
var b int
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ann := CollectAnnotations(fset, []*ast.File{f})
	mk := func(line int) Diagnostic {
		return Diagnostic{
			Pos:      token.Position{Filename: "x.go", Line: line},
			Analyzer: "lockguard",
		}
	}
	// Line 4 is `var a` (directive above lacks a reason); line 7 is `var b`.
	got, suppressed := ann.filterIgnored([]Diagnostic{mk(4), mk(7)})
	if len(got) != 1 || got[0].Pos.Line != 4 || suppressed != 1 {
		t.Errorf("filterIgnored = %v (suppressed %d), want only the reasonless line-4 diagnostic kept", got, suppressed)
	}
}

// TestOwnershipDirectiveMapsToReleasecheck: //lint:ownership transferred
// suppresses releasecheck findings on its own and the following line,
// and nothing else.
func TestOwnershipDirectiveMapsToReleasecheck(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", `package p

//lint:ownership transferred registered in a global table
var a int
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ann := CollectAnnotations(fset, []*ast.File{f})
	rel := Diagnostic{Pos: token.Position{Filename: "x.go", Line: 4}, Analyzer: "releasecheck"}
	other := Diagnostic{Pos: token.Position{Filename: "x.go", Line: 4}, Analyzer: "lockguard"}
	got, suppressed := ann.filterIgnored([]Diagnostic{rel, other})
	if len(got) != 1 || got[0].Analyzer != "lockguard" || suppressed != 1 {
		t.Errorf("filterIgnored = %v (suppressed %d), want only the lockguard diagnostic kept", got, suppressed)
	}
}

// TestPerfDirectives: hot_path:/cheap:/inline: parse, including the
// no-space locks= list and its prose-terminated form. The colon is part
// of the grammar — a doc line merely starting with the word "cheap" or
// "inline" is prose, not a directive.
func TestPerfDirectives(t *testing.T) {
	parse := func(src string) FuncAnn {
		t.Helper()
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, "x.go", "package p\n\n"+src+"\nfunc f() {}\n", parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		return FuncAnnotation(f.Decls[0].(*ast.FuncDecl))
	}

	a := parse("// f does things.\n// hot_path: locks=closeMu,mu serves the shard hit path")
	if !a.HotPath || a.Cheap || a.Inline {
		t.Errorf("hot_path: got %+v", a)
	}
	if len(a.HotLocks) != 2 || a.HotLocks[0] != "closeMu" || a.HotLocks[1] != "mu" {
		t.Errorf("locks= list: got %v, want [closeMu mu]", a.HotLocks)
	}

	// Prose after a space ends the list: "then" is not a lock class.
	a = parse("// hot_path: locks=mu then some prose, with a comma")
	if len(a.HotLocks) != 1 || a.HotLocks[0] != "mu" {
		t.Errorf("prose-terminated locks=: got %v, want [mu]", a.HotLocks)
	}

	a = parse("// cheap: locks=mu amortized by pooling")
	if !a.Cheap || a.HotPath || len(a.HotLocks) != 1 || a.HotLocks[0] != "mu" {
		t.Errorf("cheap: got %+v", a)
	}

	a = parse("// f is tiny.\n// inline:")
	if !a.Inline {
		t.Errorf("inline: got %+v", a)
	}

	// Prose words without the colon are not directives.
	a = parse("// cheap to copy and inline the call\n// hot_path without a colon is prose too")
	if a.Cheap || a.Inline || a.HotPath {
		t.Errorf("prose misparsed as directives: %+v", a)
	}
}
