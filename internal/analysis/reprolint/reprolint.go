// Package reprolint is the project's static-analysis framework: a small,
// dependency-free mirror of the golang.org/x/tools/go/analysis API plus a
// package loader built on `go list -export` and the standard library's
// gc-export-data importer. The four project analyzers (releasecheck,
// lockguard, flushcheck, fsyncorder) run on it via cmd/reprolint, which
// CI enforces as a hard gate over ./...
//
// The shapes deliberately match go/analysis (Analyzer, Pass, Diagnostic,
// Reportf) so that, in an environment where golang.org/x/tools is
// fetchable, the analyzers can be lifted onto the real multichecker
// mechanically (see cmd/reprolint's build-tagged xtools driver).
package reprolint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:ignore
	// directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// DirFilter, when non-empty, restricts the analyzer (under the
	// driver; test harnesses run analyzers directly) to packages whose
	// import path ends in one of these suffixes.
	DirFilter []string
	// Run analyzes one package, reporting findings via pass.Report.
	// Exactly one of Run and RunProgram must be set.
	Run func(pass *Pass) error
	// RunProgram marks a whole-program analyzer: the driver invokes it
	// once with every loaded package (so cross-package facts — call
	// graphs, lock graphs, atomic-access sets — are visible), instead
	// of once per package. Test harnesses wrap a single package in a
	// one-package Program, which keeps per-package testdata suites
	// usable for whole-program analyzers too.
	RunProgram func(pass *ProgramPass) error
}

// Program is every loaded package together — the unit whole-program
// analyzers see. All packages share one FileSet.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
}

// NewProgram bundles pkgs (which must share a FileSet) into a Program.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{Pkgs: pkgs}
	if len(pkgs) > 0 {
		p.Fset = pkgs[0].Fset
	} else {
		p.Fset = token.NewFileSet()
	}
	return p
}

// ProgramPass carries the whole program to a whole-program analyzer.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) { *p.diags = append(*p.diags, d) }

// RunAnalyzers runs each analyzer over pkg and returns the surviving
// diagnostics: suppression directives (//lint:ignore, and the analyzers'
// own blessed annotations, which the analyzers honor themselves) have
// been applied, and the result is sorted by position. A whole-program
// analyzer in the list sees pkg wrapped as a one-package Program — the
// mode the per-package testdata harness relies on.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := runAnalyzers(pkg, analyzers, nil)
	return diags, err
}

// runAnalyzers is RunAnalyzers plus the suppressed-diagnostic count and
// an optional per-analyzer timing hook.
func runAnalyzers(pkg *Package, analyzers []*Analyzer, timing func(name string, d time.Duration)) ([]Diagnostic, int, error) {
	var diags []Diagnostic
	ann := CollectAnnotations(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		start := time.Now()
		var err error
		if a.RunProgram != nil {
			pass := &ProgramPass{Analyzer: a, Prog: NewProgram([]*Package{pkg}), diags: &diags}
			err = a.RunProgram(pass)
		} else {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			err = a.Run(pass)
		}
		if timing != nil {
			timing(a.Name, time.Since(start))
		}
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %s: %w", a.Name, pkg.Types.Path(), err)
		}
	}
	kept, suppressed := ann.filterIgnored(diags)
	sortDiags(kept)
	return kept, suppressed, nil
}

// RunWholeProgram runs whole-program analyzers once over prog,
// filtering suppressions against every package's annotations. It
// returns the surviving diagnostics (sorted) and the suppressed count.
func RunWholeProgram(prog *Program, analyzers []*Analyzer, timing func(name string, d time.Duration)) ([]Diagnostic, int, error) {
	var diags []Diagnostic
	var allFiles []*ast.File
	for _, pkg := range prog.Pkgs {
		allFiles = append(allFiles, pkg.Files...)
	}
	ann := CollectAnnotations(prog.Fset, allFiles)
	for _, a := range analyzers {
		if a.RunProgram == nil {
			return nil, 0, fmt.Errorf("%s: not a whole-program analyzer", a.Name)
		}
		start := time.Now()
		pass := &ProgramPass{Analyzer: a, Prog: prog, diags: &diags}
		err := a.RunProgram(pass)
		if timing != nil {
			timing(a.Name, time.Since(start))
		}
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	kept, suppressed := ann.filterIgnored(diags)
	sortDiags(kept)
	return kept, suppressed, nil
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// matchesFilter reports whether importPath passes the analyzer's
// DirFilter (an empty filter passes everything).
func (a *Analyzer) matchesFilter(importPath string) bool {
	if len(a.DirFilter) == 0 {
		return true
	}
	for _, suf := range a.DirFilter {
		if importPath == suf || strings.HasSuffix(importPath, "/"+suf) {
			return true
		}
	}
	return false
}
