// Package reprolint is the project's static-analysis framework: a small,
// dependency-free mirror of the golang.org/x/tools/go/analysis API plus a
// package loader built on `go list -export` and the standard library's
// gc-export-data importer. The four project analyzers (releasecheck,
// lockguard, flushcheck, fsyncorder) run on it via cmd/reprolint, which
// CI enforces as a hard gate over ./...
//
// The shapes deliberately match go/analysis (Analyzer, Pass, Diagnostic,
// Reportf) so that, in an environment where golang.org/x/tools is
// fetchable, the analyzers can be lifted onto the real multichecker
// mechanically (see cmd/reprolint's build-tagged xtools driver).
package reprolint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:ignore
	// directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// DirFilter, when non-empty, restricts the analyzer (under the
	// driver; test harnesses run analyzers directly) to packages whose
	// import path ends in one of these suffixes.
	DirFilter []string
	// Run analyzes one package, reporting findings via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) { *p.diags = append(*p.diags, d) }

// RunAnalyzers runs each analyzer over pkg and returns the surviving
// diagnostics: suppression directives (//lint:ignore, and the analyzers'
// own blessed annotations, which the analyzers honor themselves) have
// been applied, and the result is sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	ann := CollectAnnotations(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Types.Path(), err)
		}
	}
	diags = ann.filterIgnored(diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// matchesFilter reports whether importPath passes the analyzer's
// DirFilter (an empty filter passes everything).
func (a *Analyzer) matchesFilter(importPath string) bool {
	if len(a.DirFilter) == 0 {
		return true
	}
	for _, suf := range a.DirFilter {
		if importPath == suf || strings.HasSuffix(importPath, "/"+suf) {
			return true
		}
	}
	return false
}
