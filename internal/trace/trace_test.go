package trace

import (
	"strings"
	"testing"
	"time"
)

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "demo", Columns: []string{"name", "value"}}
	tb.AddRow("alpha", 42)
	tb.AddRow("b", 7.5)
	tb.AddRow("dur", 1500*time.Microsecond)
	out := tb.Render()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "42") {
		t.Error("missing cells")
	}
	if !strings.Contains(out, "7.50") {
		t.Error("float formatting")
	}
	if !strings.Contains(out, "1.50ms") {
		t.Errorf("duration formatting: %s", out)
	}
	// Alignment: the header and first row start columns at same offsets.
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Fatalf("lines = %d", len(lines))
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Nanosecond:   "500ns",
		1500 * time.Nanosecond:  "1.50µs",
		2500 * time.Microsecond: "2.50ms",
		1500 * time.Millisecond: "1.500s",
	}
	for d, want := range cases {
		if got := FormatDuration(d); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512B",
		2048:    "2.0KiB",
		3 << 20: "3.0MiB",
		5 << 30: "5.00GiB",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(2*time.Second, time.Second); got != "2.00x" {
		t.Errorf("Ratio = %q", got)
	}
	if got := Ratio(time.Second, 0); got != "n/a" {
		t.Errorf("Ratio zero = %q", got)
	}
}

func TestTime(t *testing.T) {
	d := Time(func() { time.Sleep(5 * time.Millisecond) })
	if d < 4*time.Millisecond {
		t.Errorf("Time measured %v", d)
	}
}
