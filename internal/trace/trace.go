// Package trace provides the measurement plumbing for the benchmark
// harness: fixed-width table rendering (the rows the experiment index in
// DESIGN.md promises) and small timing helpers.
package trace

import (
	"fmt"
	"strings"
	"time"
)

// Table is one experiment's output: a titled grid.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case time.Duration:
			row[i] = FormatDuration(v)
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the aligned textual table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&sb, "note: %s\n", t.Note)
	}
	return sb.String()
}

// FormatDuration renders a duration with 3 significant digits and a
// human-appropriate unit.
func FormatDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// FormatBytes renders a byte count with binary units.
func FormatBytes(n int64) string {
	switch {
	case n < 1<<10:
		return fmt.Sprintf("%dB", n)
	case n < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	case n < 1<<30:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	}
}

// Time runs fn and returns its wall-clock duration.
func Time(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// Ratio renders a/b with a sensible fallback for zero denominators.
func Ratio(a, b time.Duration) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", float64(a)/float64(b))
}
