// Package loadgen drives solversvc's binary protocol with a windowed
// generator: per connection, up to Depth requests stay in flight (the
// pipelining the protocol exists for), across Conns independent
// connections. The op mix — branch (extend a known reference), touch,
// release — is weighted and seeded; at depth 1 the op sequence is fully
// deterministic, while deeper pipelines consult live completion state
// (which ids are branchable or releasable), so only the weights are
// reproducible. Every request's latency is recorded, so one Run yields
// throughput and p50/p99/p999 tail latency for a (conns, depth) point.
package loadgen

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
	"repro/internal/service/wire"
)

// Mix weights the generated op kinds. Zero-valued weights disable an op;
// at least one weight must be positive.
type Mix struct {
	Branch  int // extend a known reference with a small random clause group
	Touch   int // LRU keep-alive on a known reference
	Release int // drop a known reference (the root is never released)
}

func (m Mix) total() int { return m.Branch + m.Touch + m.Release }

// String renders the mix in ParseMix's format.
func (m Mix) String() string {
	return fmt.Sprintf("branch=%d,touch=%d,release=%d", m.Branch, m.Touch, m.Release)
}

// DefaultMix keeps the tree growing while exercising every op: mostly
// branches, some touches, enough releases to bound the reference set.
var DefaultMix = Mix{Branch: 6, Touch: 3, Release: 1}

// ParseMix parses "branch=6,touch=3,release=1" (any subset; missing
// keys are zero).
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, found := strings.Cut(part, "=")
		if !found {
			return Mix{}, fmt.Errorf("loadgen: mix term %q: want key=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return Mix{}, fmt.Errorf("loadgen: mix weight %q: want a non-negative integer", val)
		}
		switch key {
		case "branch":
			m.Branch = w
		case "touch":
			m.Touch = w
		case "release":
			m.Release = w
		default:
			return Mix{}, fmt.Errorf("loadgen: unknown mix key %q", key)
		}
	}
	if m.total() <= 0 {
		return Mix{}, errors.New("loadgen: mix has no positive weight")
	}
	return m, nil
}

// Config is one load point.
type Config struct {
	Addr     string // server address (must already speak the binary protocol)
	Conns    int    // concurrent connections
	Depth    int    // max in-flight requests per connection (1 = serial)
	Requests int    // total requests across all connections
	Mix      Mix    // op weights (zero value → DefaultMix)
	Seed     int64  // generator seed; same seed → same op/operand sequence
	// KnownCap bounds each connection's set of parked references: at the
	// cap, branches give way to releases, so a long run cannot grow the
	// server's table without bound. 0 = a small default.
	KnownCap int
	// Vars is the variable universe for generated clauses (0 = default).
	// Small universes make branches cheap and uniform — the harness
	// measures the wire and dispatch path, not solver heuristics.
	Vars int
}

// Result aggregates one Run.
type Result struct {
	Requests int           // completed requests
	Errors   int           // server-refused requests (ServerError replies)
	Elapsed  time.Duration // first issue to last completion
	RPS      float64       // Requests / Elapsed
	P50      time.Duration
	P99      time.Duration
	P999     time.Duration
}

const (
	defaultKnownCap = 32
	defaultVars     = 16
)

// worker is one connection's generator state. The issue loop and the
// completion goroutines share it under mu.
type worker struct {
	mu       sync.Mutex
	rng      *rand.Rand // issue loop only
	known    []uint64   // usable reference ids; known[0] is always the root
	inflight map[uint64]int
	lats     []time.Duration
	errs     int
}

// pick returns a random known id, bumping its in-flight count so a
// concurrent release cannot pull it out from under the pipelined op.
func (w *worker) pick() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	id := w.known[w.rng.Intn(len(w.known))]
	w.inflight[id]++
	return id
}

// done marks an op on id complete.
func (w *worker) done(id uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.inflight[id]--; w.inflight[id] == 0 {
		delete(w.inflight, id)
	}
}

// takeReleasable removes and returns a non-root id with no in-flight
// ops. ok is false when every id is the root or busy — the caller falls
// back to a touch.
func (w *worker) takeReleasable() (uint64, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	// Random start keeps the released ids spread over the window.
	n := len(w.known)
	start := w.rng.Intn(n)
	for i := 0; i < n; i++ {
		j := (start + i) % n
		id := w.known[j]
		if id == 0 || w.inflight[id] > 0 {
			continue
		}
		w.known = append(w.known[:j], w.known[j+1:]...)
		return id, true
	}
	return 0, false
}

func (w *worker) addKnown(id uint64) {
	w.mu.Lock()
	w.known = append(w.known, id)
	w.mu.Unlock()
}

func (w *worker) knownLen() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.known)
}

func (w *worker) record(lat time.Duration, serverErr bool) {
	w.mu.Lock()
	w.lats = append(w.lats, lat)
	if serverErr {
		w.errs++
	}
	w.mu.Unlock()
}

// Run drives one load point and blocks until every request completes.
// Server-refused requests are counted, not fatal; transport failures
// abort the run. After the measured phase each connection releases the
// references it parked, so a well-behaved server ends the run with no
// extra live state.
func Run(ctx context.Context, cfg Config) (Result, error) {
	if cfg.Conns <= 0 || cfg.Depth <= 0 || cfg.Requests <= 0 {
		return Result{}, errors.New("loadgen: Conns, Depth, and Requests must be positive")
	}
	if cfg.Mix.total() <= 0 {
		cfg.Mix = DefaultMix
	}
	if cfg.KnownCap <= 0 {
		cfg.KnownCap = defaultKnownCap
	}
	if cfg.Vars <= 0 {
		cfg.Vars = defaultVars
	}

	workers := make([]*worker, cfg.Conns)
	clients := make([]*wire.Client, cfg.Conns)
	defer func() {
		for _, cli := range clients {
			if cli != nil {
				cli.Close()
			}
		}
	}()
	for i := range clients {
		conn, err := net.Dial("tcp", cfg.Addr)
		if err != nil {
			return Result{}, fmt.Errorf("loadgen: conn %d: %w", i, err)
		}
		cli, err := wire.Handshake(conn)
		if err != nil {
			conn.Close()
			return Result{}, fmt.Errorf("loadgen: conn %d: %w", i, err)
		}
		clients[i] = cli
		workers[i] = &worker{
			rng:      rand.New(rand.NewSource(cfg.Seed + int64(i))),
			known:    []uint64{0},
			inflight: make(map[uint64]int),
		}
	}

	// Split the request budget across connections, remainder to the front.
	per := make([]int, cfg.Conns)
	for i := 0; i < cfg.Requests; i++ {
		per[i%cfg.Conns]++
	}

	start := time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, cfg.Conns)
	for i := range clients {
		wg.Add(1)
		go func(w *worker, cli *wire.Client, n int) {
			defer wg.Done()
			if err := w.run(ctx, cli, n, cfg); err != nil {
				errc <- err
			}
		}(workers[i], clients[i], per[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errc)
	if err := <-errc; err != nil {
		return Result{}, err
	}

	// Cleanup (unmeasured): drop every parked reference.
	for i, w := range workers {
		for _, id := range w.known {
			if id == 0 {
				continue
			}
			if err := clients[i].Release(ctx, id); err != nil {
				return Result{}, fmt.Errorf("loadgen: cleanup release %d: %w", id, err)
			}
		}
	}

	var res Result
	var lats []time.Duration
	for _, w := range workers {
		lats = append(lats, w.lats...)
		res.Errors += w.errs
	}
	res.Requests = len(lats)
	res.Elapsed = elapsed
	if elapsed > 0 {
		res.RPS = float64(res.Requests) / elapsed.Seconds()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	res.P50 = percentile(lats, 0.50)
	res.P99 = percentile(lats, 0.99)
	res.P999 = percentile(lats, 0.999)
	return res, nil
}

// run is one connection's issue loop: a semaphore holds Depth permits,
// so up to Depth requests ride the wire concurrently — the pipelining
// under test. Depth 1 degenerates to strict request/reply.
func (w *worker) run(ctx context.Context, cli *wire.Client, n int, cfg Config) error {
	sem := make(chan struct{}, cfg.Depth)
	var inflight sync.WaitGroup
	var failed atomic.Bool
	var transportErr error // written once before failed flips; read after inflight.Wait
	var once sync.Once
	fail := func(err error) {
		once.Do(func() {
			transportErr = err
			failed.Store(true)
		})
	}

	for i := 0; i < n && ctx.Err() == nil && !failed.Load(); i++ {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}

		req, id, isBranch := w.next(cfg)
		issued := time.Now()
		call := cli.Go(req, nil)
		inflight.Add(1)
		go func() {
			defer inflight.Done()
			defer func() { <-sem }()
			<-call.Done
			w.done(id)
			if call.Err != nil {
				fail(call.Err)
				return
			}
			w.record(time.Since(issued), call.Resp.Err != "")
			if isBranch && call.Resp.Err == "" && len(call.Resp.Results) == 1 {
				w.addKnown(call.Resp.Results[0].ID)
			}
		}()
	}
	inflight.Wait()
	if failed.Load() {
		return transportErr
	}
	return ctx.Err()
}

// next builds the next request. The returned id is the operand whose
// in-flight count the completion must drop.
func (w *worker) next(cfg Config) (req wire.Request, id uint64, isBranch bool) {
	// At the known-reference cap, branches become releases so the run
	// cannot grow the server table without bound.
	op := w.rollOp(cfg.Mix)
	if op == opBranch && w.knownLen() >= cfg.KnownCap {
		op = opRelease
	}
	switch op {
	case opRelease:
		if rid, ok := w.takeReleasable(); ok {
			// The id left the known set at issue time, so no later op can
			// race against its release.
			return wire.Request{Op: wire.OpRelease, ID: rid}, rid, false
		}
		// Nothing releasable (all busy or only the root): touch instead.
		fallthrough
	case opTouch:
		tid := w.pick()
		return wire.Request{Op: wire.OpTouch, ID: tid}, tid, false
	default: // opBranch
		pid := w.pick()
		w.mu.Lock()
		lits := make([]int, 2)
		for j := range lits {
			v := 1 + w.rng.Intn(cfg.Vars)
			if w.rng.Intn(2) == 0 {
				v = -v
			}
			lits[j] = v
		}
		w.mu.Unlock()
		return wire.Request{Op: wire.OpExtend, ID: pid, Groups: [][][]int{{lits}}}, pid, true
	}
}

type opKind int

const (
	opBranch opKind = iota
	opTouch
	opRelease
)

func (w *worker) rollOp(m Mix) opKind {
	w.mu.Lock()
	roll := w.rng.Intn(m.total())
	w.mu.Unlock()
	switch {
	case roll < m.Branch:
		return opBranch
	case roll < m.Branch+m.Touch:
		return opTouch
	default:
		return opRelease
	}
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// ServeInProc starts a loopback TCP server speaking the negotiated
// binary protocol against svc — the in-process twin of `solversvc
// -listen` that the CI smoke and E16 measure against, sharing
// wire.Serve and wire.Dispatch with the real server. The returned
// shutdown blocks until every session has ended.
func ServeInProc(ctx context.Context, svc *service.Service, opts wire.ServeOptions) (addr string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	sctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				serveNegotiated(sctx, svc, conn, opts)
			}()
		}
	}()
	return ln.Addr().String(), func() {
		cancel()
		ln.Close()
		wg.Wait()
	}, nil
}

// serveNegotiated runs solversvc's negotiation prologue (banner, hello,
// accept) and then the binary session. Unlike solversvc there is no
// text fallback: this server exists for the binary-protocol harness.
func serveNegotiated(ctx context.Context, svc *service.Service, conn net.Conn, opts wire.ServeOptions) {
	br := bufio.NewReader(conn)
	fmt.Fprintf(conn, "loadgen in-process server\n")
	line, err := br.ReadString('\n')
	if err != nil {
		return
	}
	maxVer, ok := wire.ParseHello(line)
	if !ok {
		fmt.Fprintf(conn, "err: this server speaks only the binary protocol\n")
		return
	}
	ver, _ := wire.Negotiate(maxVer)
	fmt.Fprintf(conn, "%s\n", wire.Accept(ver))
	_ = wire.Serve(ctx, svc, conn, br, opts)
}
