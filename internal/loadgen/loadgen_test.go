package loadgen

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/service/wire"
)

func TestParseMix(t *testing.T) {
	m, err := ParseMix("branch=6,touch=3,release=1")
	if err != nil || m != (Mix{Branch: 6, Touch: 3, Release: 1}) {
		t.Fatalf("ParseMix: %+v, %v", m, err)
	}
	if m2, err := ParseMix(m.String()); err != nil || m2 != m {
		t.Errorf("Mix.String not parseable: %q → %+v, %v", m.String(), m2, err)
	}
	if m, err := ParseMix("branch=1"); err != nil || m != (Mix{Branch: 1}) {
		t.Errorf("subset mix: %+v, %v", m, err)
	}
	for _, bad := range []string{"", "branch=0,touch=0,release=0", "branch", "branch=-1", "branch=x", "frob=1"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix accepted %q", bad)
		}
	}
}

// TestRunAgainstInProcServer drives a small load point end to end: every
// request completes, none are refused, latencies are recorded, and after
// cleanup the server holds no state beyond the root.
func TestRunAgainstInProcServer(t *testing.T) {
	svc := service.New()
	defer svc.Close()
	ctx := context.Background()
	addr, shutdown, err := ServeInProc(ctx, svc, wire.ServeOptions{WriteTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	res, err := Run(ctx, Config{
		Addr:     addr,
		Conns:    2,
		Depth:    4,
		Requests: 200,
		Seed:     1,
		KnownCap: 8,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Requests != 200 {
		t.Errorf("completed %d requests, want 200", res.Requests)
	}
	if res.Errors != 0 {
		t.Errorf("%d server-refused requests; the generator must never race a release against a use", res.Errors)
	}
	if res.RPS <= 0 || res.Elapsed <= 0 {
		t.Errorf("degenerate throughput: %+v", res)
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.P999 < res.P99 {
		t.Errorf("percentiles not ordered: p50=%v p99=%v p999=%v", res.P50, res.P99, res.P999)
	}
	if n := svc.Refs(); n != 1 {
		t.Errorf("refs after cleanup: %d, want 1 (root only)", n)
	}
	if n := svc.LiveSnapshots(); n != 1 {
		t.Errorf("live snapshots after cleanup: %d, want 1 (root only)", n)
	}
}

// TestRunDeterministicOps: at depth 1 (serial, so op choice never
// depends on completion timing) two runs with one seed against fresh
// servers issue the same op sequence — pinned via the extend counter,
// which counts exactly the branch ops.
func TestRunDeterministicOps(t *testing.T) {
	extends := func(seed int64) uint64 {
		svc := service.New()
		defer svc.Close()
		ctx := context.Background()
		addr, shutdown, err := ServeInProc(ctx, svc, wire.ServeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer shutdown()
		if _, err := Run(ctx, Config{Addr: addr, Conns: 2, Depth: 1, Requests: 120, Seed: seed, KnownCap: 8}); err != nil {
			t.Fatal(err)
		}
		return svc.Stats().Extends
	}
	a, b := extends(7), extends(7)
	if a != b {
		t.Errorf("same seed, different op mixes: %d vs %d extends", a, b)
	}
	if a == 0 || a == 120 {
		t.Errorf("mix degenerate: %d extends of 120 requests", a)
	}
}

// TestRunCtxCancellation: a cancelled context aborts the run promptly
// with ctx.Err instead of hanging on unfinished requests.
func TestRunCtxCancellation(t *testing.T) {
	svc := service.New()
	defer svc.Close()
	addr, shutdown, err := ServeInProc(context.Background(), svc, wire.ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, Config{Addr: addr, Conns: 1, Depth: 2, Requests: 1 << 20, Seed: 1})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("run with cancelled ctx reported success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled run did not return")
	}
}

// TestServeInProcRefusesText: the in-process server exists for the
// binary harness; a text client gets an explanatory error instead of a
// hung connection.
func TestServeInProcRefusesText(t *testing.T) {
	svc := service.New()
	defer svc.Close()
	addr, shutdown, err := ServeInProc(context.Background(), svc, wire.ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	if _, err := br.ReadString('\n'); err != nil { // banner
		t.Fatal(err)
	}
	fmt.Fprintln(conn, "refs")
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "err:") {
		t.Errorf("text command answered %q, want an error line", line)
	}
}
