package vm_test

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/mem"
	"repro/internal/vm"
)

// run loads img and executes until the first trap.
func run(t *testing.T, img *guest.Image, fuel int64) (*vm.CPU, *vm.Trap) {
	t.Helper()
	as, regs, err := guest.Load(img, mem.NewFrameAllocator(0), guest.LoadOptions{})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	cpu := vm.New(as)
	cpu.Regs = regs
	return cpu, cpu.Run(fuel)
}

func TestMovArithmetic(t *testing.T) {
	b := guest.NewBuilder()
	b.Label("_start").
		MovI(vm.RAX, 10).
		MovI(vm.RBX, 3).
		Mov(vm.RCX, vm.RAX). // rcx = 10
		Add(vm.RAX, vm.RBX). // rax = 13
		SubI(vm.RAX, 1).     // 12
		Mul(vm.RAX, vm.RBX). // 36
		Div(vm.RAX, vm.RBX). // 12
		Mod(vm.RAX, vm.RCX). // 12 % 10 = 2
		ShlI(vm.RAX, 4).     // 32
		OrI(vm.RAX, 1).      // 33
		Hlt()
	cpu, trap := run(t, b.MustLink(), 0)
	if trap.Kind != vm.TrapHalt {
		t.Fatalf("trap = %v, want halt", trap)
	}
	if got := cpu.Regs.Get(vm.RAX); got != 33 {
		t.Errorf("rax = %d, want 33", got)
	}
	if cpu.Retired != 11 {
		t.Errorf("retired = %d, want 11", cpu.Retired)
	}
}

func TestFib(t *testing.T) {
	// Iterative Fibonacci: fib(20) = 6765.
	b := guest.NewBuilder()
	b.Label("_start").
		MovI(vm.RAX, 0). // a
		MovI(vm.RBX, 1). // b
		MovI(vm.RCX, 20).
		Label("loop").
		CmpI(vm.RCX, 0).
		Je("done").
		Mov(vm.RDX, vm.RBX).
		Add(vm.RBX, vm.RAX).
		Mov(vm.RAX, vm.RDX).
		Dec(vm.RCX).
		Jmp("loop").
		Label("done").
		Hlt()
	cpu, trap := run(t, b.MustLink(), 0)
	if trap.Kind != vm.TrapHalt {
		t.Fatalf("trap = %v", trap)
	}
	if got := cpu.Regs.Get(vm.RAX); got != 6765 {
		t.Errorf("fib(20) = %d, want 6765", got)
	}
}

func TestCallRetStack(t *testing.T) {
	// square(x) via call/ret plus push/pop save.
	b := guest.NewBuilder()
	b.Label("_start").
		MovI(vm.RDI, 9).
		Push(vm.RDI).
		Call("square").
		Pop(vm.RDI).
		Hlt().
		Label("square").
		Mov(vm.RAX, vm.RDI).
		Mul(vm.RAX, vm.RDI).
		Ret()
	cpu, trap := run(t, b.MustLink(), 0)
	if trap.Kind != vm.TrapHalt {
		t.Fatalf("trap = %v", trap)
	}
	if got := cpu.Regs.Get(vm.RAX); got != 81 {
		t.Errorf("square(9) = %d, want 81", got)
	}
	if got := cpu.Regs.Get(vm.RDI); got != 9 {
		t.Errorf("rdi clobbered: %d", got)
	}
	if got := cpu.Regs.Get(vm.RSP); got != guest.StackTop {
		t.Errorf("rsp = %#x, want %#x (balanced)", got, guest.StackTop)
	}
}

func TestMemoryOps(t *testing.T) {
	b := guest.NewBuilder()
	b.Data().Label("arr").Quad(11, 22, 33, 44).Label("bytes").Byte(0xaa, 0xbb)
	b.Text().Label("_start").
		MovLabel(vm.RSI, "arr").
		MovI(vm.RCX, 2).
		LoadX(vm.RAX, vm.RSI, vm.RCX, 8, 0). // arr[2] = 33
		Load(vm.RBX, vm.RSI, 8).             // arr[1] = 22
		Add(vm.RAX, vm.RBX).                 // 55
		Store(vm.RAX, vm.RSI, 24).           // arr[3] = 55
		Load(vm.RDX, vm.RSI, 24).
		MovLabel(vm.R8, "bytes").
		LoadB(vm.R9, vm.R8, 1). // 0xbb
		StoreB(vm.R9, vm.R8, 0).
		LoadB(vm.R10, vm.R8, 0). // now 0xbb
		Lea(vm.R11, vm.RSI, 16).
		Hlt()
	cpu, trap := run(t, b.MustLink(), 0)
	if trap.Kind != vm.TrapHalt {
		t.Fatalf("trap = %v", trap)
	}
	if got := cpu.Regs.Get(vm.RDX); got != 55 {
		t.Errorf("stored arr[3] = %d, want 55", got)
	}
	if got := cpu.Regs.Get(vm.R10); got != 0xbb {
		t.Errorf("byte store/load = %#x, want 0xbb", got)
	}
	if got := cpu.Regs.Get(vm.R11); got != guest.DataBase+16 {
		t.Errorf("lea = %#x, want %#x", got, guest.DataBase+16)
	}
}

func TestConditionalJumps(t *testing.T) {
	cases := []struct {
		name      string
		a, b      uint64
		jcc       func(bld *guest.Builder, label string) *guest.Builder
		wantTaken bool
	}{
		{"je-eq", 5, 5, func(b *guest.Builder, l string) *guest.Builder { return b.Je(l) }, true},
		{"je-ne", 5, 6, func(b *guest.Builder, l string) *guest.Builder { return b.Je(l) }, false},
		{"jne", 5, 6, func(b *guest.Builder, l string) *guest.Builder { return b.Jne(l) }, true},
		{"jl-signed", uint64(0xffffffffffffffff), 1, func(b *guest.Builder, l string) *guest.Builder { return b.Jl(l) }, true},    // -1 < 1
		{"jb-unsigned", uint64(0xffffffffffffffff), 1, func(b *guest.Builder, l string) *guest.Builder { return b.Jb(l) }, false}, // max > 1
		{"jg", 7, 3, func(b *guest.Builder, l string) *guest.Builder { return b.Jg(l) }, true},
		{"jge-eq", 3, 3, func(b *guest.Builder, l string) *guest.Builder { return b.Jge(l) }, true},
		{"jle-lt", 2, 3, func(b *guest.Builder, l string) *guest.Builder { return b.Jle(l) }, true},
		{"ja", 9, 4, func(b *guest.Builder, l string) *guest.Builder { return b.Ja(l) }, true},
		{"jae-eq", 4, 4, func(b *guest.Builder, l string) *guest.Builder { return b.Jae(l) }, true},
		{"jbe-gt", 9, 4, func(b *guest.Builder, l string) *guest.Builder { return b.Jbe(l) }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := guest.NewBuilder()
			b.Label("_start").MovI(vm.RAX, tc.a).MovI(vm.RBX, tc.b).Cmp(vm.RAX, vm.RBX)
			tc.jcc(b, "taken")
			b.MovI(vm.RCX, 0).Hlt().Label("taken").MovI(vm.RCX, 1).Hlt()
			cpu, trap := run(t, b.MustLink(), 0)
			if trap.Kind != vm.TrapHalt {
				t.Fatalf("trap = %v", trap)
			}
			got := cpu.Regs.Get(vm.RCX) == 1
			if got != tc.wantTaken {
				t.Errorf("taken = %v, want %v", got, tc.wantTaken)
			}
		})
	}
}

func TestSignedOverflowFlags(t *testing.T) {
	// INT64_MAX + 1 overflows signed: jl (SF!=OF) after cmp of result with 0
	// is subtle, so test OF directly via add path: max+1 → negative w/ OF.
	b := guest.NewBuilder()
	b.Label("_start").
		MovI(vm.RAX, 0x7fffffffffffffff).
		AddI(vm.RAX, 1). // overflow: SF=1, OF=1
		Jl("ov").        // SF!=OF → false (both set)
		MovI(vm.RBX, 100).
		Hlt().
		Label("ov").MovI(vm.RBX, 200).Hlt()
	cpu, trap := run(t, b.MustLink(), 0)
	if trap.Kind != vm.TrapHalt {
		t.Fatalf("trap = %v", trap)
	}
	if got := cpu.Regs.Get(vm.RBX); got != 100 {
		t.Errorf("rbx = %d, want 100 (SF==OF after overflow)", got)
	}
}

func TestSyscallTrap(t *testing.T) {
	b := guest.NewBuilder()
	b.Label("_start").
		MovI(vm.RAX, 42).
		MovI(vm.RDI, 7).
		Syscall().
		Mov(vm.RBX, vm.RAX). // observes the kernel-written result
		Hlt()
	as, regs, err := guest.Load(b.MustLink(), mem.NewFrameAllocator(0), guest.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cpu := vm.New(as)
	cpu.Regs = regs
	trap := cpu.Run(0)
	if trap.Kind != vm.TrapSyscall {
		t.Fatalf("trap = %v, want syscall", trap)
	}
	if cpu.Regs.Get(vm.SysNumReg) != 42 || cpu.Regs.Get(vm.SysArg0Reg) != 7 {
		t.Fatalf("syscall args: %v", cpu.Regs)
	}
	// Kernel handles it, writes result, resumes.
	cpu.Regs.Set(vm.SysRetReg, 1234)
	trap = cpu.Run(0)
	if trap.Kind != vm.TrapHalt {
		t.Fatalf("second trap = %v", trap)
	}
	if got := cpu.Regs.Get(vm.RBX); got != 1234 {
		t.Errorf("rbx = %d, want 1234", got)
	}
}

func TestFaultTraps(t *testing.T) {
	t.Run("load-unmapped", func(t *testing.T) {
		b := guest.NewBuilder()
		b.Label("_start").MovI(vm.RBX, 0x10).Load(vm.RAX, vm.RBX, 0).Hlt()
		_, trap := run(t, b.MustLink(), 0)
		if trap.Kind != vm.TrapFault || trap.Fault == nil || trap.Fault.Kind != mem.FaultNotMapped {
			t.Fatalf("trap = %v", trap)
		}
	})
	t.Run("store-to-text", func(t *testing.T) {
		b := guest.NewBuilder()
		b.Label("_start").MovI(vm.RBX, guest.CodeBase).Store(vm.RAX, vm.RBX, 0).Hlt()
		_, trap := run(t, b.MustLink(), 0)
		if trap.Kind != vm.TrapFault || trap.Fault == nil || trap.Fault.Kind != mem.FaultProtection {
			t.Fatalf("trap = %v", trap)
		}
	})
	t.Run("exec-data", func(t *testing.T) {
		b := guest.NewBuilder()
		b.Data().Label("d").Quad(0x9090909090909090)
		b.Text().Label("_start").Nop()
		img := b.MustLink()
		as, regs, err := guest.Load(img, mem.NewFrameAllocator(0), guest.LoadOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cpu := vm.New(as)
		cpu.Regs = regs
		cpu.Regs.RIP = guest.DataBase // jump into data
		trap := cpu.Run(0)
		if trap.Kind != vm.TrapFault || trap.Fault == nil || trap.Fault.Access != mem.AccessExec {
			t.Fatalf("trap = %v", trap)
		}
	})
	t.Run("div-zero", func(t *testing.T) {
		b := guest.NewBuilder()
		b.Label("_start").MovI(vm.RAX, 5).MovI(vm.RBX, 0).Div(vm.RAX, vm.RBX).Hlt()
		_, trap := run(t, b.MustLink(), 0)
		if trap.Kind != vm.TrapDivZero {
			t.Fatalf("trap = %v", trap)
		}
	})
	t.Run("invalid-opcode", func(t *testing.T) {
		// Jump to zeroed heap: opcode 0x00 is invalid by design.
		b := guest.NewBuilder()
		b.Label("_start").Nop()
		img := b.MustLink()
		as, regs, err := guest.Load(img, mem.NewFrameAllocator(0), guest.LoadOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Map an RX page of zeroes next to text.
		if err := as.Map(guest.CodeBase+0x10000, mem.PageSize, mem.PermRX, "zeroes"); err != nil {
			t.Fatal(err)
		}
		cpu := vm.New(as)
		cpu.Regs = regs
		cpu.Regs.RIP = guest.CodeBase + 0x10000
		trap := cpu.Run(0)
		if trap.Kind != vm.TrapInvalidOpcode {
			t.Fatalf("trap = %v", trap)
		}
	})
	t.Run("stack-overflow", func(t *testing.T) {
		b := guest.NewBuilder()
		b.Label("_start").Label("loop").Push(vm.RAX).Jmp("loop")
		_, trap := run(t, b.MustLink(), 0)
		if trap.Kind != vm.TrapFault || trap.Fault == nil || trap.Fault.Kind != mem.FaultNotMapped {
			t.Fatalf("trap = %v", trap)
		}
	})
}

func TestInstrLimit(t *testing.T) {
	b := guest.NewBuilder()
	b.Label("_start").Label("spin").Jmp("spin")
	_, trap := run(t, b.MustLink(), 1000)
	if trap.Kind != vm.TrapInstrLimit {
		t.Fatalf("trap = %v, want instr-limit", trap)
	}
}

func TestNegNotIncDec(t *testing.T) {
	b := guest.NewBuilder()
	b.Label("_start").
		MovI(vm.RAX, 5).Neg(vm.RAX).                         // -5
		MovI(vm.RBX, 0).Not(vm.RBX).                         // ^0
		MovI(vm.RCX, 7).Inc(vm.RCX).Inc(vm.RCX).Dec(vm.RCX). // 8
		Hlt()
	cpu, trap := run(t, b.MustLink(), 0)
	if trap.Kind != vm.TrapHalt {
		t.Fatalf("trap = %v", trap)
	}
	if int64(cpu.Regs.Get(vm.RAX)) != -5 {
		t.Errorf("neg: %d", int64(cpu.Regs.Get(vm.RAX)))
	}
	if cpu.Regs.Get(vm.RBX) != ^uint64(0) {
		t.Errorf("not: %#x", cpu.Regs.Get(vm.RBX))
	}
	if cpu.Regs.Get(vm.RCX) != 8 {
		t.Errorf("inc/dec: %d", cpu.Regs.Get(vm.RCX))
	}
}

func TestSarVsShr(t *testing.T) {
	b := guest.NewBuilder()
	b.Label("_start").
		MovI(vm.RAX, 0x8000000000000000).SarI(vm.RAX, 1).
		MovI(vm.RBX, 0x8000000000000000).ShrI(vm.RBX, 1).
		Hlt()
	cpu, trap := run(t, b.MustLink(), 0)
	if trap.Kind != vm.TrapHalt {
		t.Fatalf("trap = %v", trap)
	}
	if got := cpu.Regs.Get(vm.RAX); got != 0xc000000000000000 {
		t.Errorf("sar = %#x", got)
	}
	if got := cpu.Regs.Get(vm.RBX); got != 0x4000000000000000 {
		t.Errorf("shr = %#x", got)
	}
}

func TestInstrLen(t *testing.T) {
	if n := vm.InstrLen(vm.OpMovRI); n != 10 {
		t.Errorf("mov ri len = %d, want 10", n)
	}
	if n := vm.InstrLen(vm.OpRet); n != 1 {
		t.Errorf("ret len = %d, want 1", n)
	}
	if n := vm.InstrLen(vm.OpInvalid); n != 0 {
		t.Errorf("invalid len = %d, want 0", n)
	}
	if vm.MaxInstrLen != 10 {
		t.Errorf("MaxInstrLen = %d", vm.MaxInstrLen)
	}
}

func TestRegByName(t *testing.T) {
	r, ok := vm.RegByName("r13")
	if !ok || r != vm.R13 {
		t.Errorf("RegByName(r13) = %v, %v", r, ok)
	}
	if _, ok := vm.RegByName("bogus"); ok {
		t.Error("RegByName(bogus) succeeded")
	}
	if vm.R13.String() != "r13" || vm.RAX.String() != "rax" {
		t.Error("Reg.String broken")
	}
}
