// Package vm implements SVX64, the simulated CPU that candidate extension
// steps execute on. It stands in for x86-64 under VT-x in the paper's
// prototype: a 16-register machine with an x86-like flags model, a stack,
// and a SYSCALL trap, interpreting byte-encoded instructions fetched from a
// paged mem.AddressSpace. Guest state is exactly (registers, memory) — the
// two things a lightweight snapshot captures.
package vm

import "fmt"

// Reg names one of the 16 general-purpose registers. The numbering follows
// the x86-64 convention so the paper's calling discussion maps one-to-one.
type Reg uint8

// General-purpose registers.
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	// NumRegs is the register-file size.
	NumRegs
)

var regNames = [NumRegs]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

func (r Reg) String() string {
	if r < NumRegs {
		return regNames[r]
	}
	return fmt.Sprintf("reg(%d)", uint8(r))
}

// RegByName resolves an assembler register name (e.g. "rax", "r12").
func RegByName(name string) (Reg, bool) {
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	return 0, false
}

// Flag bits in Registers.Flags, mirroring RFLAGS semantics.
const (
	FlagZF uint64 = 1 << 0 // zero
	FlagSF uint64 = 1 << 1 // sign
	FlagCF uint64 = 1 << 2 // carry (unsigned overflow)
	FlagOF uint64 = 1 << 3 // overflow (signed overflow)
)

// Registers is the complete architectural register file. It is a plain
// value type: copying it is exactly the "copy of the register file" a
// lightweight snapshot takes.
type Registers struct {
	GPR   [NumRegs]uint64
	RIP   uint64
	Flags uint64
}

// Get returns the value of r.
func (rs *Registers) Get(r Reg) uint64 { return rs.GPR[r] }

// Set stores v into r.
func (rs *Registers) Set(r Reg, v uint64) { rs.GPR[r] = v }

func (rs *Registers) String() string {
	return fmt.Sprintf("rip=%#x rax=%#x rsp=%#x flags=%#x",
		rs.RIP, rs.GPR[RAX], rs.GPR[RSP], rs.Flags)
}

// Syscall argument convention (System V-like): number in RAX, arguments in
// RDI, RSI, RDX, R10; result in RAX.
const (
	SysNumReg  = RAX
	SysArg0Reg = RDI
	SysArg1Reg = RSI
	SysArg2Reg = RDX
	SysArg3Reg = R10
	SysRetReg  = RAX
)
