package vm

import (
	"encoding/binary"

	"repro/internal/mem"
)

// CPU interprets SVX64 code against one address space. A CPU is owned by a
// single worker; restoring a snapshot replaces Regs and the address space.
//
// The instruction-fetch path keeps a one-entry TLB over the current code
// page. This is sound because code regions are mapped W^X (the loader never
// grants write on executable pages), so a fetched frame cannot be CoW-
// replaced underneath us; the TLB is flushed whenever the address space is
// swapped or guest protections change.
type CPU struct {
	Regs Registers
	as   *mem.AddressSpace

	fetchPage  uint64 // page base of cached code page, or ^0 when empty
	fetchFrame *mem.Frame

	// Retired counts instructions executed since the CPU was created
	// (benchmark instrumentation, survives SetAS).
	Retired uint64
}

// New returns a CPU bound to as.
func New(as *mem.AddressSpace) *CPU {
	c := &CPU{as: as}
	c.fetchPage = ^uint64(0)
	return c
}

// AS returns the bound address space.
func (c *CPU) AS() *mem.AddressSpace { return c.as }

// SetAS rebinds the CPU to a new address space (snapshot restore) and
// flushes the fetch TLB.
func (c *CPU) SetAS(as *mem.AddressSpace) {
	c.as = as
	c.FlushTLB()
}

// FlushTLB invalidates the cached code page. Must be called after any
// guest-visible protection or mapping change.
func (c *CPU) FlushTLB() {
	c.fetchPage = ^uint64(0)
	c.fetchFrame = nil
}

// fetch reads n instruction bytes at addr into buf, going through the
// one-entry TLB when the bytes sit in the cached page.
func (c *CPU) fetch(buf []byte, addr uint64, n int) error {
	page := mem.PageFloor(addr)
	if page == c.fetchPage && addr+uint64(n) <= page+mem.PageSize {
		off := addr - page
		if c.fetchFrame == nil {
			clear(buf[:n])
		} else {
			copy(buf[:n], c.fetchFrame.Data[off:off+uint64(n)])
		}
		return nil
	}
	if err := c.as.FetchAt(buf[:n], addr); err != nil {
		return err
	}
	// Cache only when the access stays within a single page.
	if addr+uint64(n) <= page+mem.PageSize {
		c.fetchPage = page
		c.fetchFrame = c.as.FrameAt(addr)
	}
	return nil
}

// Step executes one instruction. It returns nil on normal retirement or a
// Trap describing the exit. RIP points at the *next* instruction for
// TrapSyscall (so resuming continues after the syscall) and at the trapping
// instruction for faults.
func (c *CPU) Step() *Trap {
	pc := c.Regs.RIP
	var op [1]byte
	if err := c.fetch(op[:], pc, 1); err != nil {
		f, _ := mem.IsFault(err)
		return &Trap{Kind: TrapFault, PC: pc, Fault: f}
	}
	opcode := Opcode(op[0])
	info, ok := instrTable[opcode]
	if !ok {
		return &Trap{Kind: TrapInvalidOpcode, PC: pc, Op: opcode}
	}
	opLen := operandLen(info.Enc)
	var operands [MaxInstrLen - 1]byte
	if opLen > 0 {
		if err := c.fetch(operands[:opLen], pc+1, opLen); err != nil {
			f, _ := mem.IsFault(err)
			return &Trap{Kind: TrapFault, PC: pc, Fault: f}
		}
	}
	next := pc + 1 + uint64(opLen)
	r := &c.Regs

	// Operand decoding helpers.
	reg := func(i int) Reg { return Reg(operands[i] & 0x0f) }
	imm64 := func(i int) uint64 { return binary.LittleEndian.Uint64(operands[i : i+8]) }
	imm32 := func(i int) uint64 { // sign-extended
		return uint64(int64(int32(binary.LittleEndian.Uint32(operands[i : i+4]))))
	}
	rel32 := func() uint64 {
		return next + uint64(int64(int32(binary.LittleEndian.Uint32(operands[0:4]))))
	}
	memAddr := func() uint64 { return r.GPR[reg(1)] + imm32(2) }
	idxAddr := func() uint64 {
		return r.GPR[reg(1)] + r.GPR[reg(2)]*uint64(operands[3]) + imm32(4)
	}

	memTrap := func(err error) *Trap {
		f, _ := mem.IsFault(err)
		return &Trap{Kind: TrapFault, PC: pc, Op: opcode, Fault: f}
	}

	c.Retired++
	switch opcode {
	case OpMovRI:
		r.GPR[reg(0)] = imm64(1)
	case OpMovRR:
		r.GPR[reg(0)] = r.GPR[reg(1)]
	case OpLea:
		r.GPR[reg(0)] = memAddr()
	case OpLoad:
		v, err := c.as.ReadU64(memAddr())
		if err != nil {
			return memTrap(err)
		}
		r.GPR[reg(0)] = v
	case OpStore:
		if err := c.as.WriteU64(memAddr(), r.GPR[reg(0)]); err != nil {
			return memTrap(err)
		}
	case OpLoadB:
		v, err := c.as.ReadU8(memAddr())
		if err != nil {
			return memTrap(err)
		}
		r.GPR[reg(0)] = uint64(v)
	case OpStorB:
		if err := c.as.WriteU8(memAddr(), byte(r.GPR[reg(0)])); err != nil {
			return memTrap(err)
		}
	case OpLoadX:
		v, err := c.as.ReadU64(idxAddr())
		if err != nil {
			return memTrap(err)
		}
		r.GPR[reg(0)] = v
	case OpStorX:
		if err := c.as.WriteU64(idxAddr(), r.GPR[reg(0)]); err != nil {
			return memTrap(err)
		}
	case OpLoadBX:
		v, err := c.as.ReadU8(idxAddr())
		if err != nil {
			return memTrap(err)
		}
		r.GPR[reg(0)] = uint64(v)
	case OpStorBX:
		if err := c.as.WriteU8(idxAddr(), byte(r.GPR[reg(0)])); err != nil {
			return memTrap(err)
		}

	case OpAddRR:
		c.add(reg(0), r.GPR[reg(1)])
	case OpAddRI:
		c.add(reg(0), imm32(1))
	case OpSubRR:
		c.sub(reg(0), r.GPR[reg(1)])
	case OpSubRI:
		c.sub(reg(0), imm32(1))
	case OpAndRR:
		c.logic(reg(0), r.GPR[reg(0)]&r.GPR[reg(1)])
	case OpAndRI:
		c.logic(reg(0), r.GPR[reg(0)]&imm32(1))
	case OpOrRR:
		c.logic(reg(0), r.GPR[reg(0)]|r.GPR[reg(1)])
	case OpOrRI:
		c.logic(reg(0), r.GPR[reg(0)]|imm32(1))
	case OpXorRR:
		c.logic(reg(0), r.GPR[reg(0)]^r.GPR[reg(1)])
	case OpXorRI:
		c.logic(reg(0), r.GPR[reg(0)]^imm32(1))
	case OpShlRR:
		c.logic(reg(0), r.GPR[reg(0)]<<(r.GPR[reg(1)]&63))
	case OpShlRI:
		c.logic(reg(0), r.GPR[reg(0)]<<(imm32(1)&63))
	case OpShrRR:
		c.logic(reg(0), r.GPR[reg(0)]>>(r.GPR[reg(1)]&63))
	case OpShrRI:
		c.logic(reg(0), r.GPR[reg(0)]>>(imm32(1)&63))
	case OpSarRR:
		c.logic(reg(0), uint64(int64(r.GPR[reg(0)])>>(r.GPR[reg(1)]&63)))
	case OpSarRI:
		c.logic(reg(0), uint64(int64(r.GPR[reg(0)])>>(imm32(1)&63)))
	case OpMulRR:
		c.logic(reg(0), r.GPR[reg(0)]*r.GPR[reg(1)])
	case OpMulRI:
		c.logic(reg(0), r.GPR[reg(0)]*imm32(1))
	case OpDivRR:
		d := r.GPR[reg(1)]
		if d == 0 {
			return &Trap{Kind: TrapDivZero, PC: pc, Op: opcode}
		}
		c.logic(reg(0), r.GPR[reg(0)]/d)
	case OpModRR:
		d := r.GPR[reg(1)]
		if d == 0 {
			return &Trap{Kind: TrapDivZero, PC: pc, Op: opcode}
		}
		c.logic(reg(0), r.GPR[reg(0)]%d)
	case OpNeg:
		c.sub0(reg(0))
	case OpNot:
		r.GPR[reg(0)] = ^r.GPR[reg(0)]
	case OpInc:
		c.add(reg(0), 1)
	case OpDec:
		c.sub(reg(0), 1)

	case OpCmpRR:
		c.cmp(r.GPR[reg(0)], r.GPR[reg(1)])
	case OpCmpRI:
		c.cmp(r.GPR[reg(0)], imm32(1))
	case OpTestRR:
		c.setZS(r.GPR[reg(0)] & r.GPR[reg(1)])
		r.Flags &^= FlagCF | FlagOF

	case OpJmp:
		r.RIP = rel32()
		return nil
	case OpJe, OpJne, OpJl, OpJle, OpJg, OpJge, OpJb, OpJbe, OpJa, OpJae:
		if c.cond(opcode) {
			r.RIP = rel32()
			return nil
		}

	case OpCall:
		r.GPR[RSP] -= 8
		if err := c.as.WriteU64(r.GPR[RSP], next); err != nil {
			r.GPR[RSP] += 8
			return memTrap(err)
		}
		r.RIP = rel32()
		return nil
	case OpRet:
		v, err := c.as.ReadU64(r.GPR[RSP])
		if err != nil {
			return memTrap(err)
		}
		r.GPR[RSP] += 8
		r.RIP = v
		return nil
	case OpPush:
		r.GPR[RSP] -= 8
		if err := c.as.WriteU64(r.GPR[RSP], r.GPR[reg(0)]); err != nil {
			r.GPR[RSP] += 8
			return memTrap(err)
		}
	case OpPop:
		v, err := c.as.ReadU64(r.GPR[RSP])
		if err != nil {
			return memTrap(err)
		}
		r.GPR[RSP] += 8
		r.GPR[reg(0)] = v

	case OpSyscall:
		r.RIP = next
		return &Trap{Kind: TrapSyscall, PC: pc, Op: opcode}
	case OpHlt:
		return &Trap{Kind: TrapHalt, PC: pc, Op: opcode}
	case OpNop:
	default:
		return &Trap{Kind: TrapInvalidOpcode, PC: pc, Op: opcode}
	}
	r.RIP = next
	return nil
}

// Run executes until a trap occurs or fuel instructions retire; fuel <= 0
// means unlimited. It never returns nil.
func (c *CPU) Run(fuel int64) *Trap {
	for n := int64(0); ; n++ {
		if fuel > 0 && n >= fuel {
			return &Trap{Kind: TrapInstrLimit, PC: c.Regs.RIP}
		}
		if t := c.Step(); t != nil {
			return t
		}
	}
}

// cond evaluates a conditional-jump predicate against the flags.
func (c *CPU) cond(op Opcode) bool {
	f := c.Regs.Flags
	zf := f&FlagZF != 0
	sf := f&FlagSF != 0
	cf := f&FlagCF != 0
	of := f&FlagOF != 0
	switch op {
	case OpJe:
		return zf
	case OpJne:
		return !zf
	case OpJl:
		return sf != of
	case OpJle:
		return zf || sf != of
	case OpJg:
		return !zf && sf == of
	case OpJge:
		return sf == of
	case OpJb:
		return cf
	case OpJbe:
		return cf || zf
	case OpJa:
		return !cf && !zf
	case OpJae:
		return !cf
	}
	return false
}

func (c *CPU) setZS(v uint64) {
	f := c.Regs.Flags &^ (FlagZF | FlagSF)
	if v == 0 {
		f |= FlagZF
	}
	if int64(v) < 0 {
		f |= FlagSF
	}
	c.Regs.Flags = f
}

// add computes dst += v with x86 ADD flag semantics.
func (c *CPU) add(dst Reg, v uint64) {
	a := c.Regs.GPR[dst]
	res := a + v
	c.Regs.GPR[dst] = res
	c.setZS(res)
	c.Regs.Flags &^= FlagCF | FlagOF
	if res < a {
		c.Regs.Flags |= FlagCF
	}
	if (a^v)&(1<<63) == 0 && (a^res)&(1<<63) != 0 {
		c.Regs.Flags |= FlagOF
	}
}

// sub computes dst -= v with x86 SUB/CMP flag semantics.
func (c *CPU) sub(dst Reg, v uint64) {
	a := c.Regs.GPR[dst]
	res := a - v
	c.Regs.GPR[dst] = res
	c.flagsSub(a, v, res)
}

// sub0 computes dst = 0 - dst (NEG).
func (c *CPU) sub0(dst Reg) {
	a := c.Regs.GPR[dst]
	res := -a
	c.Regs.GPR[dst] = res
	c.flagsSub(0, a, res)
}

// cmp sets flags from a-b without writing a register.
func (c *CPU) cmp(a, b uint64) { c.flagsSub(a, b, a-b) }

func (c *CPU) flagsSub(a, b, res uint64) {
	c.setZS(res)
	c.Regs.Flags &^= FlagCF | FlagOF
	if a < b {
		c.Regs.Flags |= FlagCF
	}
	if (a^b)&(1<<63) != 0 && (a^res)&(1<<63) != 0 {
		c.Regs.Flags |= FlagOF
	}
}

// logic writes v to dst and sets ZF/SF, clearing CF/OF (x86 logical-op
// convention; shifts/mul simplified to the same rule).
func (c *CPU) logic(dst Reg, v uint64) {
	c.Regs.GPR[dst] = v
	c.setZS(v)
	c.Regs.Flags &^= FlagCF | FlagOF
}
