package vm

import (
	"fmt"
	"strings"

	"repro/internal/mem"
)

// Disasm renders one decoded instruction in the assembler's input syntax,
// so Disasm(DecodeAt(...)) output re-assembles to the same bytes. pc is
// needed only to render branch targets as absolute addresses.
func Disasm(in Instr) string {
	info, ok := instrTable[in.Op]
	if !ok {
		return fmt.Sprintf(".byte %#02x", byte(in.Op))
	}
	memStr := func() string {
		var sb strings.Builder
		sb.WriteByte('[')
		sb.WriteString(in.R1.String())
		if d := int64(in.Imm); d != 0 {
			fmt.Fprintf(&sb, "%+d", d)
		}
		sb.WriteByte(']')
		return sb.String()
	}
	idxStr := func() string {
		var sb strings.Builder
		fmt.Fprintf(&sb, "[%s+%s*%d", in.R1, in.R2, in.Scale)
		if d := int64(in.Imm); d != 0 {
			fmt.Fprintf(&sb, "%+d", d)
		}
		sb.WriteByte(']')
		return sb.String()
	}
	switch info.Enc {
	case encNone:
		return info.Name
	case encR:
		return fmt.Sprintf("%s %s", info.Name, in.R0)
	case encRR:
		return fmt.Sprintf("%s %s, %s", info.Name, in.R0, in.R1)
	case encRI:
		return fmt.Sprintf("%s %s, %#x", info.Name, in.R0, in.Imm)
	case encRI32:
		return fmt.Sprintf("%s %s, %d", info.Name, in.R0, int64(in.Imm))
	case encMem:
		if in.Op == OpStore || in.Op == OpStorB {
			return fmt.Sprintf("%s %s, %s", info.Name, in.R0, memStr())
		}
		return fmt.Sprintf("%s %s, %s", info.Name, in.R0, memStr())
	case encIdx:
		return fmt.Sprintf("%s %s, %s", info.Name, in.R0, idxStr())
	case encRel:
		return fmt.Sprintf("%s %#x", info.Name, in.Imm)
	}
	return info.Name
}

// DisasmRange renders the instructions in [start, end), one per line with
// addresses — the objdump view used when debugging guest images.
func DisasmRange(as *mem.AddressSpace, start, end uint64) string {
	var sb strings.Builder
	for pc := start; pc < end; {
		in, err := DecodeAt(as, pc)
		if err != nil {
			fmt.Fprintf(&sb, "%#08x: <%v>\n", pc, err)
			pc++
			continue
		}
		fmt.Fprintf(&sb, "%#08x: %s\n", pc, Disasm(in))
		pc = in.Next(pc)
	}
	return sb.String()
}
