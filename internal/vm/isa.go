package vm

import "fmt"

// Opcode is the first byte of every SVX64 instruction. 0x00 is deliberately
// invalid so that execution of zero-filled memory traps immediately.
type Opcode byte

// The SVX64 instruction set. Operand layout is fixed per opcode:
//
//	ri  opcode reg imm64           (10 bytes)
//	ri32 opcode reg imm32          (6 bytes; imm sign-extended)
//	rr  opcode reg reg             (3 bytes)
//	r   opcode reg                 (2 bytes)
//	mem opcode reg base disp32     (7 bytes)
//	idx opcode reg base idx scale disp32 (9 bytes)
//	rel opcode rel32               (5 bytes; relative to next instruction)
//	none opcode                    (1 byte)
const (
	OpInvalid Opcode = 0x00

	OpMovRI  Opcode = 0x10 // ri:  dst = imm64
	OpMovRR  Opcode = 0x11 // rr:  dst = src
	OpLoad   Opcode = 0x12 // mem: dst = *(u64)(base+disp)
	OpStore  Opcode = 0x13 // mem: *(u64)(base+disp) = src
	OpLoadB  Opcode = 0x14 // mem: dst = *(u8)(base+disp), zero-extended
	OpStorB  Opcode = 0x15 // mem: *(u8)(base+disp) = src & 0xff
	OpLea    Opcode = 0x16 // mem: dst = base+disp
	OpLoadX  Opcode = 0x17 // idx: dst = *(u64)(base + idx*scale + disp)
	OpStorX  Opcode = 0x18 // idx: *(u64)(base + idx*scale + disp) = src
	OpLoadBX Opcode = 0x19 // idx: dst = *(u8)(base + idx*scale + disp)
	OpStorBX Opcode = 0x1A // idx: *(u8)(base + idx*scale + disp) = src & 0xff

	OpAddRR Opcode = 0x20 // rr
	OpAddRI Opcode = 0x21 // ri32
	OpSubRR Opcode = 0x22 // rr
	OpSubRI Opcode = 0x23 // ri32
	OpAndRR Opcode = 0x24 // rr
	OpAndRI Opcode = 0x25 // ri32
	OpOrRR  Opcode = 0x26 // rr
	OpOrRI  Opcode = 0x27 // ri32
	OpXorRR Opcode = 0x28 // rr
	OpXorRI Opcode = 0x29 // ri32
	OpShlRR Opcode = 0x2A // rr
	OpShlRI Opcode = 0x2B // ri32
	OpShrRR Opcode = 0x2C // rr
	OpShrRI Opcode = 0x2D // ri32
	OpMulRR Opcode = 0x2E // rr (low 64 bits)
	OpMulRI Opcode = 0x2F // ri32
	OpDivRR Opcode = 0x30 // rr: dst /= src (unsigned); src==0 traps
	OpModRR Opcode = 0x31 // rr: dst %= src (unsigned); src==0 traps
	OpNeg   Opcode = 0x32 // r
	OpNot   Opcode = 0x33 // r
	OpInc   Opcode = 0x34 // r
	OpDec   Opcode = 0x35 // r
	OpSarRR Opcode = 0x36 // rr (arithmetic shift right)
	OpSarRI Opcode = 0x37 // ri32

	OpCmpRR  Opcode = 0x40 // rr: flags from dst-src
	OpCmpRI  Opcode = 0x41 // ri32
	OpTestRR Opcode = 0x42 // rr: flags from dst&src

	OpJmp Opcode = 0x50 // rel
	OpJe  Opcode = 0x51 // rel: ZF
	OpJne Opcode = 0x52 // rel: !ZF
	OpJl  Opcode = 0x53 // rel: SF!=OF   (signed <)
	OpJle Opcode = 0x54 // rel: ZF || SF!=OF
	OpJg  Opcode = 0x55 // rel: !ZF && SF==OF
	OpJge Opcode = 0x56 // rel: SF==OF
	OpJb  Opcode = 0x57 // rel: CF       (unsigned <)
	OpJbe Opcode = 0x58 // rel: CF || ZF
	OpJa  Opcode = 0x59 // rel: !CF && !ZF
	OpJae Opcode = 0x5A // rel: !CF

	OpCall Opcode = 0x60 // rel: push return address, jump
	OpRet  Opcode = 0x61 // none: pop RIP
	OpPush Opcode = 0x62 // r
	OpPop  Opcode = 0x63 // r

	OpSyscall Opcode = 0x70 // none: trap to the libOS
	OpHlt     Opcode = 0x71 // none: terminate

	OpNop Opcode = 0x90 // none
)

// operand layout classes
type encoding uint8

const (
	encNone encoding = iota
	encR             // reg
	encRR            // reg, reg
	encRI            // reg, imm64
	encRI32          // reg, imm32 (sign-extended)
	encMem           // reg, base, disp32
	encIdx           // reg, base, idx, scale, disp32
	encRel           // rel32
)

// instrInfo describes one opcode for the decoder and the assembler.
type instrInfo struct {
	Name string
	Enc  encoding
}

var instrTable = map[Opcode]instrInfo{
	OpMovRI:  {"mov", encRI},
	OpMovRR:  {"mov", encRR},
	OpLoad:   {"load", encMem},
	OpStore:  {"store", encMem},
	OpLoadB:  {"loadb", encMem},
	OpStorB:  {"storeb", encMem},
	OpLea:    {"lea", encMem},
	OpLoadX:  {"loadx", encIdx},
	OpStorX:  {"storex", encIdx},
	OpLoadBX: {"loadbx", encIdx},
	OpStorBX: {"storebx", encIdx},

	OpAddRR: {"add", encRR},
	OpAddRI: {"add", encRI32},
	OpSubRR: {"sub", encRR},
	OpSubRI: {"sub", encRI32},
	OpAndRR: {"and", encRR},
	OpAndRI: {"and", encRI32},
	OpOrRR:  {"or", encRR},
	OpOrRI:  {"or", encRI32},
	OpXorRR: {"xor", encRR},
	OpXorRI: {"xor", encRI32},
	OpShlRR: {"shl", encRR},
	OpShlRI: {"shl", encRI32},
	OpShrRR: {"shr", encRR},
	OpShrRI: {"shr", encRI32},
	OpMulRR: {"mul", encRR},
	OpMulRI: {"mul", encRI32},
	OpDivRR: {"div", encRR},
	OpModRR: {"mod", encRR},
	OpNeg:   {"neg", encR},
	OpNot:   {"not", encR},
	OpInc:   {"inc", encR},
	OpDec:   {"dec", encR},
	OpSarRR: {"sar", encRR},
	OpSarRI: {"sar", encRI32},

	OpCmpRR:  {"cmp", encRR},
	OpCmpRI:  {"cmp", encRI32},
	OpTestRR: {"test", encRR},

	OpJmp: {"jmp", encRel},
	OpJe:  {"je", encRel},
	OpJne: {"jne", encRel},
	OpJl:  {"jl", encRel},
	OpJle: {"jle", encRel},
	OpJg:  {"jg", encRel},
	OpJge: {"jge", encRel},
	OpJb:  {"jb", encRel},
	OpJbe: {"jbe", encRel},
	OpJa:  {"ja", encRel},
	OpJae: {"jae", encRel},

	OpCall: {"call", encRel},
	OpRet:  {"ret", encNone},
	OpPush: {"push", encR},
	OpPop:  {"pop", encR},

	OpSyscall: {"syscall", encNone},
	OpHlt:     {"hlt", encNone},
	OpNop:     {"nop", encNone},
}

// operandLen returns the number of operand bytes following an opcode.
func operandLen(enc encoding) int {
	switch enc {
	case encNone:
		return 0
	case encR:
		return 1
	case encRR:
		return 2
	case encRI:
		return 9
	case encRI32:
		return 5
	case encMem:
		return 6
	case encIdx:
		return 8
	case encRel:
		return 4
	}
	panic("vm: unknown encoding")
}

// InstrLen returns the full encoded length of op, or 0 if op is invalid.
func InstrLen(op Opcode) int {
	info, ok := instrTable[op]
	if !ok {
		return 0
	}
	return 1 + operandLen(info.Enc)
}

// MaxInstrLen is the longest possible instruction encoding (mov reg, imm64).
const MaxInstrLen = 10

func (op Opcode) String() string {
	if info, ok := instrTable[op]; ok {
		return info.Name
	}
	return fmt.Sprintf("op(%#02x)", byte(op))
}
