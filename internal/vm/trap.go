package vm

import (
	"fmt"

	"repro/internal/mem"
)

// TrapKind classifies why the interpreter stopped. Traps are the VM-exit
// analogue: control transfers from guest code to the libOS, which decides
// how to proceed.
type TrapKind uint8

// Trap kinds.
const (
	// TrapSyscall: the guest executed SYSCALL. Registers hold the request.
	TrapSyscall TrapKind = iota
	// TrapHalt: the guest executed HLT (normal termination path).
	TrapHalt
	// TrapFault: a memory access faulted; Fault holds details.
	TrapFault
	// TrapInvalidOpcode: undefined instruction encoding.
	TrapInvalidOpcode
	// TrapDivZero: division or modulo by zero.
	TrapDivZero
	// TrapInstrLimit: the fuel budget given to Run was exhausted.
	TrapInstrLimit
)

func (k TrapKind) String() string {
	switch k {
	case TrapSyscall:
		return "syscall"
	case TrapHalt:
		return "halt"
	case TrapFault:
		return "fault"
	case TrapInvalidOpcode:
		return "invalid-opcode"
	case TrapDivZero:
		return "div-zero"
	case TrapInstrLimit:
		return "instr-limit"
	}
	return "trap?"
}

// Trap reports a guest exit to the libOS.
type Trap struct {
	Kind  TrapKind
	PC    uint64     // RIP of the trapping instruction
	Op    Opcode     // opcode at PC (when decodable)
	Fault *mem.Fault // set for TrapFault
}

func (t *Trap) String() string {
	if t.Fault != nil {
		return fmt.Sprintf("trap %s at %#x: %v", t.Kind, t.PC, t.Fault)
	}
	return fmt.Sprintf("trap %s at %#x (%s)", t.Kind, t.PC, t.Op)
}
