package vm_test

import (
	"strings"
	"testing"

	"repro/internal/guest"
	"repro/internal/mem"
	"repro/internal/vm"
)

// loadText assembles src and returns the address space plus text bounds.
func loadText(t *testing.T, src string) (*mem.AddressSpace, uint64, uint64) {
	t.Helper()
	b, err := guest.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	img, err := b.Link(guest.CodeBase, guest.DataBase)
	if err != nil {
		t.Fatal(err)
	}
	as, _, err := guest.Load(img, mem.NewFrameAllocator(0), guest.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var end uint64
	for _, seg := range img.Segments {
		if seg.Name == "text" {
			end = seg.Addr + uint64(len(seg.Data))
		}
	}
	return as, guest.CodeBase, end
}

// TestDecodeMatchesEncoding decodes every instruction form the assembler
// can emit and checks fields — a cross-check between the interpreter's
// inline decoder and DecodeAt (used by the symbolic executor).
func TestDecodeMatchesEncoding(t *testing.T) {
	as, start, end := loadText(t, `
_start:
    mov rax, 0x1122334455667788
    mov rbx, rcx
    load rdx, [rsi+16]
    store rdx, [rsi-8]
    loadb r8, [r9+1]
    storeb r8, [r9]
    lea r10, [r11+256]
    loadx r12, [r13+r14*8+32]
    storex r12, [r13+r14*4]
    add rax, 42
    sub rax, rbx
    cmp rax, -1
    test rax, rbx
    jne _start
    call _start
    push r15
    pop r15
    neg rax
    syscall
    ret
    hlt
    nop
`)
	defer as.Release()

	type want struct {
		op   vm.Opcode
		desc string
	}
	wants := []want{
		{vm.OpMovRI, "mov rax, 0x1122334455667788"},
		{vm.OpMovRR, "mov rbx, rcx"},
		{vm.OpLoad, "load rdx, [rsi+16]"},
		{vm.OpStore, "store rdx, [rsi-8]"},
		{vm.OpLoadB, "loadb r8, [r9+1]"},
		{vm.OpStorB, "storeb r8, [r9]"},
		{vm.OpLea, "lea r10, [r11+256]"},
		{vm.OpLoadX, "loadx r12, [r13+r14*8+32]"},
		{vm.OpStorX, "storex r12, [r13+r14*4]"},
		{vm.OpAddRI, "add rax, 42"},
		{vm.OpSubRR, "sub rax, rbx"},
		{vm.OpCmpRI, "cmp rax, -1"},
		{vm.OpTestRR, "test rax, rbx"},
		{vm.OpJne, ""},
		{vm.OpCall, ""},
		{vm.OpPush, "push r15"},
		{vm.OpPop, "pop r15"},
		{vm.OpNeg, "neg rax"},
		{vm.OpSyscall, "syscall"},
		{vm.OpRet, "ret"},
		{vm.OpHlt, "hlt"},
		{vm.OpNop, "nop"},
	}
	pc := start
	for i, w := range wants {
		in, err := vm.DecodeAt(as, pc)
		if err != nil {
			t.Fatalf("instr %d at %#x: %v", i, pc, err)
		}
		if in.Op != w.op {
			t.Fatalf("instr %d: op = %v, want %v", i, in.Op, w.op)
		}
		if w.desc != "" {
			if got := vm.Disasm(in); got != w.desc {
				t.Errorf("instr %d: disasm = %q, want %q", i, got, w.desc)
			}
		}
		pc = in.Next(pc)
	}
	if pc != end {
		t.Errorf("decode walked to %#x, text ends at %#x", pc, end)
	}
}

func TestDecodeBranchTargets(t *testing.T) {
	as, start, _ := loadText(t, `
_start:
    jmp target
    nop
target:
    hlt
`)
	defer as.Release()
	in, err := vm.DecodeAt(as, start)
	if err != nil {
		t.Fatal(err)
	}
	// jmp is 5 bytes, nop 1: target at start+6.
	if in.Target() != start+6 {
		t.Errorf("target = %#x, want %#x", in.Target(), start+6)
	}
}

func TestDecodeInvalid(t *testing.T) {
	as := mem.NewAddressSpace(mem.NewFrameAllocator(0))
	defer as.Release()
	if err := as.Map(0x1000, mem.PageSize, mem.PermRX, "zero"); err != nil {
		t.Fatal(err)
	}
	_, err := vm.DecodeAt(as, 0x1000) // opcode 0x00
	if _, ok := err.(*vm.InvalidOpcodeError); !ok {
		t.Errorf("err = %v, want InvalidOpcodeError", err)
	}
	_, err = vm.DecodeAt(as, 0x100000) // unmapped
	if _, ok := mem.IsFault(err); !ok {
		t.Errorf("err = %v, want fault", err)
	}
}

// TestDisasmRoundTrip disassembles a program and re-assembles the listing,
// checking the decoders and the assembler agree byte-for-byte on the ISA.
func TestDisasmRoundTrip(t *testing.T) {
	src := `
_start:
    mov rax, 500
    mov rdi, 8
    syscall
    cmp rax, 4
    jl _start
    loadx rbx, [rsi+rcx*8+16]
    add rbx, 7
    hlt
`
	as, start, end := loadText(t, src)
	defer as.Release()
	listing := vm.DisasmRange(as, start, end)
	if !strings.Contains(listing, "syscall") || !strings.Contains(listing, "loadx rbx, [rsi+rcx*8+16]") {
		t.Fatalf("listing:\n%s", listing)
	}
	// Strip addresses, replace branch targets with a label, re-assemble.
	var rebuilt strings.Builder
	rebuilt.WriteString("_start:\n")
	for _, line := range strings.Split(strings.TrimSpace(listing), "\n") {
		_, ins, ok := strings.Cut(line, ": ")
		if !ok {
			t.Fatalf("bad listing line %q", line)
		}
		if strings.HasPrefix(ins, "jl ") {
			ins = "jl _start"
		}
		rebuilt.WriteString(ins + "\n")
	}
	b2, err := guest.Assemble(rebuilt.String())
	if err != nil {
		t.Fatalf("re-assemble:\n%s\n%v", rebuilt.String(), err)
	}
	img2, err := b2.Link(guest.CodeBase, guest.DataBase)
	if err != nil {
		t.Fatal(err)
	}
	as2, _, err := guest.Load(img2, mem.NewFrameAllocator(0), guest.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer as2.Release()
	// Byte-for-byte comparison of the two text segments.
	n := int(end - start)
	b1 := make([]byte, n)
	b2b := make([]byte, n)
	if err := as.FetchAt(b1, start); err != nil {
		t.Fatal(err)
	}
	if err := as2.FetchAt(b2b, start); err != nil {
		t.Fatal(err)
	}
	for i := range b1 {
		if b1[i] != b2b[i] {
			t.Fatalf("byte %d differs: %#x vs %#x\nlisting:\n%s", i, b1[i], b2b[i], listing)
		}
	}
}
