package vm

import (
	"encoding/binary"

	"repro/internal/mem"
)

// Instr is one decoded SVX64 instruction, the form consumed by analysis
// tools (the symbolic executor) that need instruction semantics without the
// concrete interpreter loop.
type Instr struct {
	Op    Opcode
	R0    Reg    // dst / src register (first operand)
	R1    Reg    // src / base register
	R2    Reg    // index register (indexed addressing)
	Scale uint8  // index scale (indexed addressing)
	Imm   uint64 // imm64, sign-extended imm32/disp32, or branch target
	Len   int    // encoded length in bytes
}

// Target returns the absolute branch target (Imm) for rel-encoded ops.
func (in Instr) Target() uint64 { return in.Imm }

// Next returns the address of the following instruction.
func (in Instr) Next(pc uint64) uint64 { return pc + uint64(in.Len) }

// DecodeAt decodes the instruction at pc. Branch targets are resolved to
// absolute addresses. It returns a mem fault or an *Trap-worthy invalid
// opcode as an error.
func DecodeAt(as *mem.AddressSpace, pc uint64) (Instr, error) {
	var op [1]byte
	if err := as.FetchAt(op[:], pc); err != nil {
		return Instr{}, err
	}
	opcode := Opcode(op[0])
	info, ok := instrTable[opcode]
	if !ok {
		return Instr{Op: opcode, Len: 1}, &InvalidOpcodeError{PC: pc, Op: opcode}
	}
	n := operandLen(info.Enc)
	var buf [MaxInstrLen - 1]byte
	if n > 0 {
		if err := as.FetchAt(buf[:n], pc+1); err != nil {
			return Instr{}, err
		}
	}
	in := Instr{Op: opcode, Len: 1 + n}
	next := pc + uint64(in.Len)
	imm32 := func(off int) uint64 {
		return uint64(int64(int32(binary.LittleEndian.Uint32(buf[off : off+4]))))
	}
	switch info.Enc {
	case encNone:
	case encR:
		in.R0 = Reg(buf[0] & 0x0f)
	case encRR:
		in.R0, in.R1 = Reg(buf[0]&0x0f), Reg(buf[1]&0x0f)
	case encRI:
		in.R0 = Reg(buf[0] & 0x0f)
		in.Imm = binary.LittleEndian.Uint64(buf[1:9])
	case encRI32:
		in.R0 = Reg(buf[0] & 0x0f)
		in.Imm = imm32(1)
	case encMem:
		in.R0, in.R1 = Reg(buf[0]&0x0f), Reg(buf[1]&0x0f)
		in.Imm = imm32(2)
	case encIdx:
		in.R0, in.R1, in.R2 = Reg(buf[0]&0x0f), Reg(buf[1]&0x0f), Reg(buf[2]&0x0f)
		in.Scale = buf[3]
		in.Imm = imm32(4)
	case encRel:
		in.Imm = next + imm32(0)
	}
	return in, nil
}

// InvalidOpcodeError reports an undefined encoding to decoder callers.
type InvalidOpcodeError struct {
	PC uint64
	Op Opcode
}

func (e *InvalidOpcodeError) Error() string {
	return "vm: invalid opcode at " + fmtHex(e.PC)
}

func fmtHex(v uint64) string {
	const digits = "0123456789abcdef"
	buf := [18]byte{'0', 'x'}
	i := 2
	started := false
	for shift := 60; shift >= 0; shift -= 4 {
		d := byte(v >> uint(shift) & 0xf)
		if d != 0 || started || shift == 0 {
			buf[i] = digits[d]
			i++
			started = true
		}
	}
	return string(buf[:i])
}
