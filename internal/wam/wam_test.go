package wam

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustDB(t *testing.T, src string) *DB {
	t.Helper()
	db, err := NewPreludeDB()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Consult(src); err != nil {
		t.Fatalf("consult: %v", err)
	}
	return db
}

func allSolutions(t *testing.T, db *DB, query string) []map[string]string {
	t.Helper()
	m := NewMachine(db)
	m.MaxCalls = 5_000_000
	var out []map[string]string
	if _, err := m.SolveQuery(query, func(b map[string]string) bool {
		out = append(out, b)
		return true
	}); err != nil {
		t.Fatalf("query %q: %v", query, err)
	}
	return out
}

func TestParseAndPrint(t *testing.T) {
	cases := map[string]string{
		"foo(bar, 42)":     "foo(bar,42)",
		"[1,2,3]":          "[1,2,3]",
		"[H|T]":            "[_H|_T]",
		"[1,2|X]":          "[1,2|_X]",
		"f(g(h(x)))":       "f(g(h(x)))",
		"'quoted atom'(1)": "quoted atom(1)",
		"-5":               "-5",
	}
	for src, want := range cases {
		goal, _, err := ParseQuery(src)
		if err != nil {
			t.Errorf("parse %q: %v", src, err)
			continue
		}
		if got := goal.String(); got != want {
			t.Errorf("parse %q printed %q, want %q", src, got, want)
		}
	}
}

func TestParseClauses(t *testing.T) {
	cls, err := ParseProgram(`
% a comment
fact(0, 1).
fact(N, F) :- N > 0, N1 is N - 1, fact(N1, F1), F is N * F1.
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cls) != 2 {
		t.Fatalf("clauses = %d", len(cls))
	}
	if indicator(cls[0].Head) != "fact/2" {
		t.Errorf("head = %v", cls[0].Head)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"foo(",          // unclosed
		"foo(a) bar",    // junk
		"123.",          // integer clause head (not callable)
		"'unterminated", // quote
		"foo(a)",        // missing dot is only an error in ParseProgram
	} {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("ParseProgram(%q) succeeded", src)
		}
	}
}

func TestUnifyBasics(t *testing.T) {
	var tr Trail
	x, y := Var("X"), Var("Y")
	if !Unify(x, Int(3), &tr) {
		t.Fatal("var-int unify failed")
	}
	if Deref(x).Int != 3 {
		t.Fatal("binding lost")
	}
	if !Unify(y, x, &tr) || Deref(y).Int != 3 {
		t.Fatal("var-var chain failed")
	}
	if Unify(Int(1), Int(2), &tr) {
		t.Error("1 = 2 unified")
	}
	if Unify(Atom("a"), Atom("b"), &tr) {
		t.Error("a = b unified")
	}
	if !Unify(Struct("f", Var("A"), Int(2)), Struct("f", Int(1), Var("B")), &tr) {
		t.Error("struct unify failed")
	}
	mark := tr.Mark()
	z := Var("Z")
	Unify(z, Atom("bound"), &tr)
	tr.Undo(mark)
	if z.Ref != nil {
		t.Error("trail undo did not unbind")
	}
}

func TestQuickUnifyReflexive(t *testing.T) {
	// Any ground term unifies with itself and with a fresh variable.
	f := func(a int64, s uint8) bool {
		depth := int(s % 4)
		var build func(d int) *Term
		build = func(d int) *Term {
			if d == 0 {
				return Int(a)
			}
			return Struct("f", build(d-1), Atom("leaf"))
		}
		t1, t2 := build(depth), build(depth)
		var tr Trail
		if !Unify(t1, t2, &tr) {
			return false
		}
		v := Var("V")
		return Unify(v, t1, &tr) && structEqual(Deref(v), t2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArithmetic(t *testing.T) {
	db := mustDB(t, "")
	sols := allSolutions(t, db, "X is 2 + 3 * 4 - 10 // 2")
	if len(sols) != 1 || sols[0]["X"] != "9" {
		t.Errorf("X = %v", sols)
	}
	sols = allSolutions(t, db, "X is (2 + 3) * 4")
	if len(sols) != 1 || sols[0]["X"] != "20" {
		t.Errorf("parenthesized X = %v", sols)
	}
	sols = allSolutions(t, db, "X is -7 mod 3")
	if len(sols) != 1 || sols[0]["X"] != "2" {
		t.Errorf("mod X = %v", sols)
	}
	if len(allSolutions(t, db, "3 < 5, 5 >= 5, 4 =< 4, 2 =:= 2, 1 =\\= 2")) != 1 {
		t.Error("comparison chain failed")
	}
	m := NewMachine(db)
	if _, err := m.SolveQuery("X is 1 // 0", func(map[string]string) bool { return true }); err == nil {
		t.Error("division by zero succeeded")
	}
}

func TestListPredicates(t *testing.T) {
	db := mustDB(t, "")
	if got := allSolutions(t, db, "append([1,2], [3], X)"); len(got) != 1 || got[0]["X"] != "[1,2,3]" {
		t.Errorf("append = %v", got)
	}
	if got := allSolutions(t, db, "append(X, Y, [1,2])"); len(got) != 3 {
		t.Errorf("append splits = %d, want 3", len(got))
	}
	if got := allSolutions(t, db, "member(X, [a,b,c])"); len(got) != 3 {
		t.Errorf("member = %v", got)
	}
	if got := allSolutions(t, db, "select(X, [1,2,3], R)"); len(got) != 3 {
		t.Errorf("select = %v", got)
	}
	if got := allSolutions(t, db, "numlist(1, 5, L)"); len(got) != 1 || got[0]["L"] != "[1,2,3,4,5]" {
		t.Errorf("numlist = %v", got)
	}
	if got := allSolutions(t, db, "length([a,b,c,d], N)"); len(got) != 1 || got[0]["N"] != "4" {
		t.Errorf("length = %v", got)
	}
	if got := allSolutions(t, db, "reverse([1,2,3], R)"); len(got) != 1 || got[0]["R"] != "[3,2,1]" {
		t.Errorf("reverse = %v", got)
	}
}

func TestCut(t *testing.T) {
	db := mustDB(t, `
first(X, [X|_]) :- !.
first(X, [_|T]) :- first(X, T).

max(X, Y, X) :- X >= Y, !.
max(_, Y, Y).
`)
	if got := allSolutions(t, db, "first(X, [7,8,9])"); len(got) != 1 || got[0]["X"] != "7" {
		t.Errorf("cut did not commit: %v", got)
	}
	if got := allSolutions(t, db, "max(3, 5, M)"); len(got) != 1 || got[0]["M"] != "5" {
		t.Errorf("max(3,5) = %v", got)
	}
	if got := allSolutions(t, db, "max(5, 3, M)"); len(got) != 1 || got[0]["M"] != "5" {
		t.Errorf("max(5,3) = %v (cut must prune second clause)", got)
	}
}

func TestNegationAsFailure(t *testing.T) {
	db := mustDB(t, "p(1).\np(2).")
	if got := allSolutions(t, db, "\\+ p(3)"); len(got) != 1 {
		t.Errorf("\\+ p(3) = %d solutions", len(got))
	}
	if got := allSolutions(t, db, "\\+ p(1)"); len(got) != 0 {
		t.Errorf("\\+ p(1) = %d solutions", len(got))
	}
	// Bindings made inside \+ must not leak.
	if got := allSolutions(t, db, "\\+ (p(X), X =:= 99), p(X)"); len(got) != 2 {
		t.Errorf("bindings leaked from \\+: %v", got)
	}
}

func TestDisjunction(t *testing.T) {
	db := mustDB(t, "")
	got := allSolutions(t, db, "(X = 1 ; X = 2 ; X = 3)")
	if len(got) != 3 {
		t.Fatalf("disjunction = %v", got)
	}
	if got[0]["X"] != "1" || got[2]["X"] != "3" {
		t.Errorf("disjunction order = %v", got)
	}
}

func TestBetween(t *testing.T) {
	db := mustDB(t, "")
	if got := allSolutions(t, db, "between(2, 5, X), X mod 2 =:= 0"); len(got) != 2 {
		t.Errorf("between evens = %v", got)
	}
}

func TestWriteCapture(t *testing.T) {
	db := mustDB(t, "greet :- write(hello), write(' '), write([1,2]), nl.")
	m := NewMachine(db)
	if _, err := m.SolveQuery("greet", func(map[string]string) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if got := m.Out.String(); got != "hello   [1,2]\n" && !strings.Contains(got, "hello") {
		t.Errorf("out = %q", got)
	}
}

func TestUnknownPredicate(t *testing.T) {
	db := mustDB(t, "")
	m := NewMachine(db)
	_, err := m.SolveQuery("no_such_thing(1)", func(map[string]string) bool { return true })
	if _, ok := err.(*ErrUnknownPredicate); !ok {
		t.Errorf("err = %v, want ErrUnknownPredicate", err)
	}
}

func TestCallBudget(t *testing.T) {
	db := mustDB(t, "loop :- loop.")
	m := NewMachine(db)
	m.MaxCalls = 1000
	_, err := m.SolveQuery("loop", func(map[string]string) bool { return true })
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("err = %v", err)
	}
}

func TestStopEarly(t *testing.T) {
	db := mustDB(t, "")
	m := NewMachine(db)
	n, err := m.SolveQuery("member(X, [1,2,3,4,5])", func(map[string]string) bool { return false })
	if err != nil || n != 1 {
		t.Errorf("early stop n=%d err=%v", n, err)
	}
}

func TestStatsPopulated(t *testing.T) {
	db := mustDB(t, "")
	m := NewMachine(db)
	m.SolveQuery("append(X, Y, [1,2,3])", func(map[string]string) bool { return true })
	if m.Stats.Calls == 0 || m.Stats.ChoicePoints == 0 || m.Stats.Backtracks == 0 {
		t.Errorf("stats = %+v", m.Stats)
	}
}
