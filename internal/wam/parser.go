package wam

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// The parser accepts the Prolog subset the baseline programs need:
// clauses (Head :- Body. / Head.), conjunction ',', disjunction ';',
// negation '\+', lists with '|', integers (with unary minus), atoms,
// variables, compound terms, and the infix operators
// is  =  \=  ==  <  >  =<  >=  =:=  =\=  with arithmetic + - * // mod.

type tokKind uint8

const (
	tEOF tokKind = iota
	tAtom
	tVar
	tInt
	tPunct // ( ) [ ] , | . and operators
)

type token struct {
	kind tokKind
	text string
	ival int64
	pos  int
	end  int // byte offset just past the token (call-syntax adjacency)
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func isSymbolChar(r byte) bool {
	return strings.IndexByte("+-*/\\^<>=~:.?@#&", r) >= 0
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '%': // line comment
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '(' || c == ')' || c == '[' || c == ']' || c == ',' || c == '|' || c == '!' || c == ';':
			toks = append(toks, token{kind: tPunct, text: string(c), pos: i})
			i++
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			v, err := strconv.ParseInt(src[i:j], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("wam: bad integer at %d", i)
			}
			toks = append(toks, token{kind: tInt, ival: v, pos: i})
			i = j
		case c == '_' || unicode.IsUpper(rune(c)):
			j := i
			for j < len(src) && (src[j] == '_' || isAlnum(src[j])) {
				j++
			}
			toks = append(toks, token{kind: tVar, text: src[i:j], pos: i})
			i = j
		case unicode.IsLower(rune(c)):
			j := i
			for j < len(src) && (src[j] == '_' || isAlnum(src[j])) {
				j++
			}
			toks = append(toks, token{kind: tAtom, text: src[i:j], pos: i, end: j})
			i = j
		case c == '\'': // quoted atom
			j := i + 1
			for j < len(src) && src[j] != '\'' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("wam: unterminated quoted atom at %d", i)
			}
			toks = append(toks, token{kind: tAtom, text: src[i+1 : j], pos: i, end: j + 1})
			i = j + 1
		case isSymbolChar(c):
			j := i
			for j < len(src) && isSymbolChar(src[j]) {
				j++
			}
			text := src[i:j]
			// A '.' that ends a clause: symbol run of exactly "." followed
			// by whitespace/EOF.
			toks = append(toks, token{kind: tPunct, text: text, pos: i})
			i = j
		default:
			return nil, fmt.Errorf("wam: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{kind: tEOF, pos: len(src)})
	return toks, nil
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

type parser struct {
	toks []token
	i    int
	vars map[string]*Term // per-clause variable scope
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) expect(text string) error {
	t := p.next()
	if t.kind != tPunct || t.text != text {
		return fmt.Errorf("wam: expected %q at %d, got %q", text, t.pos, t.text)
	}
	return nil
}

// precedence levels (looser binds first): ;  ,  comparison  +-  */
const (
	precClause = 1200 // :-
	precSemi   = 1100
	precComma  = 1000
	precCmp    = 700
	precAdd    = 500
	precMul    = 400
)

var infixOps = map[string]int{
	":-": precClause,
	";":  precSemi,
	",":  precComma,
	"is": precCmp, "=": precCmp, "\\=": precCmp, "==": precCmp,
	"<": precCmp, ">": precCmp, "=<": precCmp, ">=": precCmp,
	"=:=": precCmp, "=\\=": precCmp,
	"+": precAdd, "-": precAdd,
	"*": precMul, "//": precMul, "mod": precMul,
}

// parseTerm parses a term with operators of precedence <= maxPrec.
func (p *parser) parseTerm(maxPrec int) (*Term, error) {
	left, err := p.parsePrimary(maxPrec)
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var opText string
		switch t.kind {
		case tPunct:
			opText = t.text
		case tAtom:
			opText = t.text // 'is', 'mod'
		default:
			return left, nil
		}
		prec, ok := infixOps[opText]
		if !ok || prec > maxPrec || opText == "." {
			return left, nil
		}
		p.next()
		// Right operand binds tighter (xfx/xfy approximation: use prec-1
		// for left-assoc arithmetic, prec for , and ;).
		sub := prec - 1
		if opText == "," || opText == ";" || opText == ":-" {
			sub = prec
		}
		right, err := p.parseTerm(sub)
		if err != nil {
			return nil, err
		}
		left = Struct(opText, left, right)
	}
}

func (p *parser) parsePrimary(maxPrec int) (*Term, error) {
	t := p.next()
	switch t.kind {
	case tInt:
		return Int(t.ival), nil
	case tVar:
		if t.text == "_" {
			return Var("_"), nil // each _ is fresh
		}
		if v, ok := p.vars[t.text]; ok {
			return v, nil
		}
		v := Var(t.text)
		p.vars[t.text] = v
		return v, nil
	case tAtom:
		name := t.text
		if p.peek().kind == tPunct && p.peek().text == "(" && p.peek().pos == t.end {
			p.next() // consume (
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return Struct(name, args...), nil
		}
		return Atom(name), nil
	case tPunct:
		switch t.text {
		case "(":
			inner, err := p.parseTerm(precClause)
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return inner, nil
		case "[":
			return p.parseList()
		case "-": // unary minus on integers
			n := p.peek()
			if n.kind == tInt {
				p.next()
				return Int(-n.ival), nil
			}
			operand, err := p.parseTerm(precMul)
			if err != nil {
				return nil, err
			}
			return Struct("-", Int(0), operand), nil
		case "\\+":
			operand, err := p.parseTerm(precComma - 1)
			if err != nil {
				return nil, err
			}
			return Struct("\\+", operand), nil
		case "!":
			return Atom("!"), nil
		}
	}
	return nil, fmt.Errorf("wam: unexpected token %q at %d", t.text, t.pos)
}

func (p *parser) parseArgs() ([]*Term, error) {
	var args []*Term
	for {
		a, err := p.parseTerm(precComma - 1)
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		t := p.next()
		if t.kind == tPunct && t.text == "," {
			continue
		}
		if t.kind == tPunct && t.text == ")" {
			return args, nil
		}
		return nil, fmt.Errorf("wam: expected , or ) at %d", t.pos)
	}
}

func (p *parser) parseList() (*Term, error) {
	if p.peek().kind == tPunct && p.peek().text == "]" {
		p.next()
		return atomNil, nil
	}
	var elems []*Term
	for {
		e, err := p.parseTerm(precComma - 1)
		if err != nil {
			return nil, err
		}
		elems = append(elems, e)
		t := p.next()
		if t.kind != tPunct {
			return nil, fmt.Errorf("wam: bad list at %d", t.pos)
		}
		switch t.text {
		case ",":
			continue
		case "|":
			tail, err := p.parseTerm(precComma - 1)
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			out := tail
			for i := len(elems) - 1; i >= 0; i-- {
				out = Cons(elems[i], out)
			}
			return out, nil
		case "]":
			return List(elems...), nil
		default:
			return nil, fmt.Errorf("wam: bad list separator %q at %d", t.text, t.pos)
		}
	}
}

// Clause is one database entry Head :- Body (Body == true for facts).
type Clause struct {
	Head *Term
	Body *Term
}

// ParseProgram parses a series of clauses terminated by '.'.
func ParseProgram(src string) ([]*Clause, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []*Clause
	for p.peek().kind != tEOF {
		p.vars = map[string]*Term{}
		t, err := p.parseTerm(precClause)
		if err != nil {
			return nil, err
		}
		if err := p.expect("."); err != nil {
			return nil, err
		}
		cl := &Clause{Head: t, Body: atomTrue}
		if t.Kind == KStruct && t.Functor == ":-" && len(t.Args) == 2 {
			cl.Head, cl.Body = t.Args[0], t.Args[1]
		}
		if indicator(cl.Head) == "" {
			return nil, fmt.Errorf("wam: clause head %s is not callable", cl.Head)
		}
		out = append(out, cl)
	}
	return out, nil
}

// ParseQuery parses a single goal term (no trailing dot required).
func ParseQuery(src string) (*Term, map[string]*Term, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, nil, err
	}
	p := &parser{toks: toks, vars: map[string]*Term{}}
	t, err := p.parseTerm(precClause)
	if err != nil {
		return nil, nil, err
	}
	if p.peek().kind == tPunct && p.peek().text == "." {
		p.next()
	}
	if p.peek().kind != tEOF {
		return nil, nil, fmt.Errorf("wam: trailing tokens in query at %d", p.peek().pos)
	}
	return t, p.vars, nil
}
