package wam

import (
	"fmt"
	"strings"
)

// DB is the clause database, indexed by functor/arity.
type DB struct {
	clauses map[string][]*Clause
	order   []string
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{clauses: map[string][]*Clause{}} }

// Assert appends a clause.
func (db *DB) Assert(cl *Clause) {
	key := indicator(cl.Head)
	if _, seen := db.clauses[key]; !seen {
		db.order = append(db.order, key)
	}
	db.clauses[key] = append(db.clauses[key], cl)
}

// Consult parses src and asserts every clause.
func (db *DB) Consult(src string) error {
	cls, err := ParseProgram(src)
	if err != nil {
		return err
	}
	for _, cl := range cls {
		db.Assert(cl)
	}
	return nil
}

// Predicates returns the defined predicate indicators in assert order.
func (db *DB) Predicates() []string { return append([]string(nil), db.order...) }

// Stats counts runtime events of one query.
type Stats struct {
	Calls        int64 // goal invocations
	ChoicePoints int64 // clause alternatives tried
	Backtracks   int64 // trail unwinds after a failed alternative
	MaxTrail     int64 // high-water binding count
}

// Machine executes queries against a database. Output from write/nl is
// captured in Out (the contained stdout of the comparison harness).
type Machine struct {
	DB    *DB
	Out   strings.Builder
	Stats Stats
	// MaxCalls bounds goal invocations (0 = unlimited); exceeding it
	// aborts the query with an error.
	MaxCalls int64

	trail Trail
	err   error
}

// NewMachine returns a machine over db.
func NewMachine(db *DB) *Machine { return &Machine{DB: db} }

// cutSignal is the cut barrier shared by the alternatives of one call.
type cutSignal struct{ cut bool }

// ErrUnknownPredicate reports a call to an undefined predicate.
type ErrUnknownPredicate struct{ Indicator string }

func (e *ErrUnknownPredicate) Error() string {
	return "wam: unknown predicate " + e.Indicator
}

// Solve runs the goal, invoking onSolution for each solution found (with
// bindings still in place — inspect via the query's variable map).
// onSolution returns true to continue searching. Solve returns the number
// of solutions found.
func (m *Machine) Solve(goal *Term, onSolution func() bool) (int, error) {
	found := 0
	m.err = nil
	bar := &cutSignal{}
	m.call(goal, bar, func() bool {
		found++
		return !onSolution() // k returns true to halt
	})
	m.trail.Undo(0)
	return found, m.err
}

// SolveQuery parses and runs a textual query, reporting each solution's
// bindings rendered as strings.
func (m *Machine) SolveQuery(src string, onSolution func(b map[string]string) bool) (int, error) {
	goal, vars, err := ParseQuery(src)
	if err != nil {
		return 0, err
	}
	return m.Solve(goal, func() bool {
		b := make(map[string]string, len(vars))
		for name, v := range vars {
			b[name] = Deref(v).String()
		}
		return onSolution(b)
	})
}

// call attempts goal; k is the success continuation and returns true to
// halt the entire search. call returns true when a halt propagated.
func (m *Machine) call(goal *Term, bar *cutSignal, k func() bool) bool {
	if m.err != nil {
		return true
	}
	m.Stats.Calls++
	if m.MaxCalls > 0 && m.Stats.Calls > m.MaxCalls {
		m.err = fmt.Errorf("wam: call budget %d exhausted", m.MaxCalls)
		return true
	}
	if n := int64(m.trail.Mark()); n > m.Stats.MaxTrail {
		m.Stats.MaxTrail = n
	}
	goal = deref(goal)

	switch goal.Kind {
	case KVar:
		m.err = fmt.Errorf("wam: unbound goal")
		return true
	case KInt:
		m.err = fmt.Errorf("wam: integer is not callable")
		return true
	}

	// Control constructs and builtins.
	switch {
	case goal.Kind == KAtom && goal.Functor == "true":
		return k()
	case goal.Kind == KAtom && (goal.Functor == "fail" || goal.Functor == "false"):
		return false
	case goal.Kind == KAtom && goal.Functor == "!":
		if k() {
			return true
		}
		bar.cut = true
		return false
	case goal.Kind == KAtom && goal.Functor == "nl":
		m.Out.WriteByte('\n')
		return k()
	case goal.Kind == KStruct && goal.Functor == "," && len(goal.Args) == 2:
		return m.call(goal.Args[0], bar, func() bool {
			return m.call(goal.Args[1], bar, k)
		})
	case goal.Kind == KStruct && goal.Functor == ";" && len(goal.Args) == 2:
		if m.call(goal.Args[0], bar, k) {
			return true
		}
		if bar.cut {
			return false
		}
		return m.call(goal.Args[1], bar, k)
	case goal.Kind == KStruct && goal.Functor == "\\+" && len(goal.Args) == 1:
		mark := m.trail.Mark()
		succeeded := false
		sub := &cutSignal{}
		m.call(goal.Args[0], sub, func() bool { succeeded = true; return true })
		m.trail.Undo(mark)
		if m.err != nil {
			return true
		}
		if succeeded {
			return false
		}
		return k()
	case goal.Kind == KStruct && goal.Functor == "call" && len(goal.Args) == 1:
		sub := &cutSignal{}
		return m.call(goal.Args[0], sub, k)
	case goal.Kind == KStruct && goal.Functor == "write" && len(goal.Args) == 1:
		m.Out.WriteString(Deref(goal.Args[0]).String())
		return k()
	case goal.Kind == KStruct && goal.Functor == "=" && len(goal.Args) == 2:
		mark := m.trail.Mark()
		if Unify(goal.Args[0], goal.Args[1], &m.trail) {
			if k() {
				return true
			}
		}
		m.trail.Undo(mark)
		return false
	case goal.Kind == KStruct && goal.Functor == "\\=" && len(goal.Args) == 2:
		mark := m.trail.Mark()
		ok := Unify(goal.Args[0], goal.Args[1], &m.trail)
		m.trail.Undo(mark)
		if ok {
			return false
		}
		return k()
	case goal.Kind == KStruct && goal.Functor == "==" && len(goal.Args) == 2:
		if structEqual(goal.Args[0], goal.Args[1]) {
			return k()
		}
		return false
	case goal.Kind == KStruct && goal.Functor == "is" && len(goal.Args) == 2:
		v, err := m.eval(goal.Args[1])
		if err != nil {
			m.err = err
			return true
		}
		mark := m.trail.Mark()
		if Unify(goal.Args[0], Int(v), &m.trail) {
			if k() {
				return true
			}
		}
		m.trail.Undo(mark)
		return false
	case goal.Kind == KStruct && len(goal.Args) == 2 && isCompareOp(goal.Functor):
		a, err := m.eval(goal.Args[0])
		if err != nil {
			m.err = err
			return true
		}
		b, err := m.eval(goal.Args[1])
		if err != nil {
			m.err = err
			return true
		}
		if compare(goal.Functor, a, b) {
			return k()
		}
		return false
	case goal.Kind == KStruct && goal.Functor == "between" && len(goal.Args) == 3:
		lo, err := m.eval(goal.Args[0])
		if err != nil {
			m.err = err
			return true
		}
		hi, err := m.eval(goal.Args[1])
		if err != nil {
			m.err = err
			return true
		}
		for v := lo; v <= hi; v++ {
			mark := m.trail.Mark()
			if Unify(goal.Args[2], Int(v), &m.trail) {
				if k() {
					return true
				}
			}
			m.trail.Undo(mark)
			m.Stats.Backtracks++
		}
		return false
	}

	// User-defined predicate resolution.
	key := indicator(goal)
	clauses, ok := m.DB.clauses[key]
	if !ok {
		m.err = &ErrUnknownPredicate{Indicator: key}
		return true
	}
	myBar := &cutSignal{}
	for _, cl := range clauses {
		m.Stats.ChoicePoints++
		mark := m.trail.Mark()
		mapping := map[*Term]*Term{}
		head := renameTerm(cl.Head, mapping)
		if Unify(goal, head, &m.trail) {
			body := renameTerm(cl.Body, mapping)
			if m.call(body, myBar, k) {
				return true
			}
		}
		m.trail.Undo(mark)
		m.Stats.Backtracks++
		if myBar.cut {
			break
		}
	}
	return false
}

func isCompareOp(op string) bool {
	switch op {
	case "<", ">", "=<", ">=", "=:=", "=\\=":
		return true
	}
	return false
}

func compare(op string, a, b int64) bool {
	switch op {
	case "<":
		return a < b
	case ">":
		return a > b
	case "=<":
		return a <= b
	case ">=":
		return a >= b
	case "=:=":
		return a == b
	case "=\\=":
		return a != b
	}
	return false
}

// eval computes an arithmetic expression.
func (m *Machine) eval(t *Term) (int64, error) {
	t = deref(t)
	switch t.Kind {
	case KInt:
		return t.Int, nil
	case KVar:
		return 0, fmt.Errorf("wam: unbound variable in arithmetic")
	case KStruct:
		if len(t.Args) == 2 {
			a, err := m.eval(t.Args[0])
			if err != nil {
				return 0, err
			}
			b, err := m.eval(t.Args[1])
			if err != nil {
				return 0, err
			}
			switch t.Functor {
			case "+":
				return a + b, nil
			case "-":
				return a - b, nil
			case "*":
				return a * b, nil
			case "//":
				if b == 0 {
					return 0, fmt.Errorf("wam: division by zero")
				}
				return a / b, nil
			case "mod":
				if b == 0 {
					return 0, fmt.Errorf("wam: mod by zero")
				}
				return ((a % b) + b) % b, nil
			}
		}
		if len(t.Args) == 1 && t.Functor == "abs" {
			a, err := m.eval(t.Args[0])
			if err != nil {
				return 0, err
			}
			if a < 0 {
				return -a, nil
			}
			return a, nil
		}
	}
	return 0, fmt.Errorf("wam: %s is not an arithmetic expression", t)
}

func structEqual(a, b *Term) bool {
	a, b = deref(a), deref(b)
	if a == b {
		return true
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KAtom:
		return a.Functor == b.Functor
	case KInt:
		return a.Int == b.Int
	case KStruct:
		if a.Functor != b.Functor || len(a.Args) != len(b.Args) {
			return false
		}
		for i := range a.Args {
			if !structEqual(a.Args[i], b.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Prelude is the library of list predicates the workloads use.
const Prelude = `
append([], Ys, Ys).
append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).

member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).

length([], 0).
length([_|T], N) :- length(T, N1), N is N1 + 1.

numlist(L, H, [L|T]) :- L =< H, L1 is L + 1, numlist(L1, H, T).
numlist(L, H, []) :- L > H.

reverse(Xs, Ys) :- rev_(Xs, [], Ys).
rev_([], Acc, Acc).
rev_([X|Xs], Acc, Ys) :- rev_(Xs, [X|Acc], Ys).
`

// NewPreludeDB returns a database preloaded with Prelude.
func NewPreludeDB() (*DB, error) {
	db := NewDB()
	if err := db.Consult(Prelude); err != nil {
		return nil, err
	}
	return db, nil
}
