// Package wam implements the Prolog comparator of the paper's §5 (the XSB
// baseline): a structure-sharing Prolog interpreter with unification,
// a binding trail, and choice-point backtracking — the WAM's runtime model
// interpreted over the source AST rather than compiled instructions. The
// paper's sys_guess corresponds to a WAM choice point; this package is the
// "language runtime does the backtracking" design that system-level
// snapshots are measured against.
package wam

import (
	"fmt"
	"strings"
)

// Kind tags a Term.
type Kind uint8

// Term kinds.
const (
	// KVar is a logic variable (possibly bound through Ref).
	KVar Kind = iota
	// KAtom is a symbolic constant.
	KAtom
	// KInt is a 64-bit integer.
	KInt
	// KStruct is a compound term: Functor(Args...).
	KStruct
)

// Term is a Prolog term. Variables bind through Ref (structure sharing);
// deref follows the chain. Atoms and struct shells are immutable.
type Term struct {
	Kind    Kind
	Functor string // atom name / struct functor / variable name
	Int     int64
	Args    []*Term
	Ref     *Term // variable binding; nil when unbound
}

// Commonly used atoms.
var (
	atomNil   = Atom("[]")
	atomTrue  = Atom("true")
	atomEmpty = Atom("")
)

// Var returns a fresh unbound variable named name (for printing only).
func Var(name string) *Term { return &Term{Kind: KVar, Functor: name} }

// Atom returns an atom term.
func Atom(name string) *Term { return &Term{Kind: KAtom, Functor: name} }

// Int returns an integer term.
func Int(v int64) *Term { return &Term{Kind: KInt, Int: v} }

// Struct returns a compound term.
func Struct(functor string, args ...*Term) *Term {
	return &Term{Kind: KStruct, Functor: functor, Args: args}
}

// Cons returns the list cell '.'(head, tail).
func Cons(head, tail *Term) *Term { return Struct(".", head, tail) }

// List builds a proper list from elements.
func List(elems ...*Term) *Term {
	out := atomNil
	for i := len(elems) - 1; i >= 0; i-- {
		out = Cons(elems[i], out)
	}
	return out
}

// deref follows variable bindings to the representative term.
func deref(t *Term) *Term {
	for t.Kind == KVar && t.Ref != nil {
		t = t.Ref
	}
	return t
}

// Deref exposes deref for callers inspecting solutions.
func Deref(t *Term) *Term { return deref(t) }

// indicator returns the functor/arity key used by the clause index.
func indicator(t *Term) string {
	t = deref(t)
	switch t.Kind {
	case KAtom:
		return t.Functor + "/0"
	case KStruct:
		return fmt.Sprintf("%s/%d", t.Functor, len(t.Args))
	default:
		return ""
	}
}

// String renders the term in canonical Prolog syntax, including proper
// list notation.
func (t *Term) String() string {
	var sb strings.Builder
	writeTerm(&sb, t, 0)
	return sb.String()
}

func writeTerm(sb *strings.Builder, t *Term, depth int) {
	if depth > 64 {
		sb.WriteString("...")
		return
	}
	t = deref(t)
	switch t.Kind {
	case KVar:
		if t.Functor != "" {
			sb.WriteString("_" + t.Functor)
		} else {
			fmt.Fprintf(sb, "_G%p", t)
		}
	case KAtom:
		sb.WriteString(t.Functor)
	case KInt:
		fmt.Fprintf(sb, "%d", t.Int)
	case KStruct:
		if t.Functor == "." && len(t.Args) == 2 {
			writeList(sb, t, depth)
			return
		}
		sb.WriteString(t.Functor)
		sb.WriteByte('(')
		for i, a := range t.Args {
			if i > 0 {
				sb.WriteByte(',')
			}
			writeTerm(sb, a, depth+1)
		}
		sb.WriteByte(')')
	}
}

func writeList(sb *strings.Builder, t *Term, depth int) {
	sb.WriteByte('[')
	first := true
	for {
		t = deref(t)
		if t.Kind == KStruct && t.Functor == "." && len(t.Args) == 2 {
			if !first {
				sb.WriteByte(',')
			}
			writeTerm(sb, t.Args[0], depth+1)
			first = false
			t = t.Args[1]
			continue
		}
		if t.Kind == KAtom && t.Functor == "[]" {
			break
		}
		sb.WriteByte('|')
		writeTerm(sb, t, depth+1)
		break
	}
	sb.WriteByte(']')
}

// Trail records variable bindings for backtracking, exactly the WAM trail.
type Trail struct {
	bound []*Term
}

// Mark returns the current trail position.
func (tr *Trail) Mark() int { return len(tr.bound) }

// Undo unbinds every variable bound after mark.
func (tr *Trail) Undo(mark int) {
	for i := len(tr.bound) - 1; i >= mark; i-- {
		tr.bound[i].Ref = nil
	}
	tr.bound = tr.bound[:mark]
}

// bind records v := t on the trail.
func (tr *Trail) bind(v, t *Term) {
	v.Ref = t
	tr.bound = append(tr.bound, v)
}

// Unify unifies a and b, trailing bindings; it returns false (with no
// cleanup — the caller unwinds via the trail mark) on mismatch.
func Unify(a, b *Term, tr *Trail) bool {
	a, b = deref(a), deref(b)
	if a == b {
		return true
	}
	if a.Kind == KVar {
		tr.bind(a, b)
		return true
	}
	if b.Kind == KVar {
		tr.bind(b, a)
		return true
	}
	switch {
	case a.Kind == KAtom && b.Kind == KAtom:
		return a.Functor == b.Functor
	case a.Kind == KInt && b.Kind == KInt:
		return a.Int == b.Int
	case a.Kind == KStruct && b.Kind == KStruct:
		if a.Functor != b.Functor || len(a.Args) != len(b.Args) {
			return false
		}
		for i := range a.Args {
			if !Unify(a.Args[i], b.Args[i], tr) {
				return false
			}
		}
		return true
	}
	return false
}

// renameTerm copies t with fresh variables (clause renaming).
func renameTerm(t *Term, mapping map[*Term]*Term) *Term {
	t = deref(t)
	switch t.Kind {
	case KVar:
		if nv, ok := mapping[t]; ok {
			return nv
		}
		nv := Var(t.Functor)
		mapping[t] = nv
		return nv
	case KStruct:
		args := make([]*Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = renameTerm(a, mapping)
		}
		return &Term{Kind: KStruct, Functor: t.Functor, Args: args}
	default:
		return t
	}
}
