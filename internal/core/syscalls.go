package core

import (
	"errors"
	"io"

	"repro/internal/fs"
	"repro/internal/interpose"
	"repro/internal/snapshot"
	"repro/internal/vm"
)

// maxIOBytes bounds a single guest read/write, like a kernel's per-call
// transfer cap; it keeps a buggy guest from asking the host for gigabytes.
const maxIOBytes = 1 << 20

// maxPathLen bounds guest-supplied path strings.
const maxPathLen = 4096

// handleSyscall implements the interposed POSIX subset over the candidate's
// contained state (§5 "system call interposition"). Everything it touches —
// guest memory, the file image, the output buffer, the program break — is
// part of the snapshot, so backtracking reverts it structurally; no undo
// log is needed on this path.
func handleSyscall(ctx *snapshot.Context, cpu *vm.CPU, nr uint64) uint64 {
	regs := &cpu.Regs
	a0 := regs.Get(vm.SysArg0Reg)
	a1 := regs.Get(vm.SysArg1Reg)
	a2 := regs.Get(vm.SysArg2Reg)

	switch nr {
	case interpose.SysWrite:
		fd := int(int64(a0))
		n := int(a2)
		if n < 0 || n > maxIOBytes {
			return interpose.ErrnoRet(interpose.EINVAL)
		}
		buf := make([]byte, n)
		if err := ctx.Mem.ReadAt(buf, a1); err != nil {
			return interpose.ErrnoRet(interpose.EFAULT)
		}
		switch fd {
		case 1, 2: // contained stdout/stderr
			ctx.Out = append(ctx.Out, buf...)
			return uint64(n)
		default:
			wn, err := ctx.FS.Write(fd, buf)
			if err != nil {
				return fsErrno(err)
			}
			return uint64(wn)
		}

	case interpose.SysRead:
		fd := int(int64(a0))
		n := int(a2)
		if n < 0 || n > maxIOBytes {
			return interpose.ErrnoRet(interpose.EINVAL)
		}
		if fd == 0 {
			return 0 // stdin is empty in the sandbox
		}
		buf := make([]byte, n)
		rn, err := ctx.FS.Read(fd, buf)
		if errors.Is(err, io.EOF) {
			return 0
		}
		if err != nil {
			return fsErrno(err)
		}
		if err := ctx.Mem.WriteAt(buf[:rn], a1); err != nil {
			return interpose.ErrnoRet(interpose.EFAULT)
		}
		return uint64(rn)

	case interpose.SysOpen:
		path, err := ctx.Mem.ReadCString(a0, maxPathLen)
		if err != nil {
			return interpose.ErrnoRet(interpose.EFAULT)
		}
		if !interpose.PathAllowed(path) {
			return interpose.ErrnoRet(interpose.ENOTSUP)
		}
		fd, ferr := ctx.FS.Open(path, int(a1))
		if ferr != nil {
			return fsErrno(ferr)
		}
		return uint64(fd)

	case interpose.SysClose:
		fd := int(int64(a0))
		if fd >= 0 && fd <= 2 {
			return 0 // closing stdio is a no-op
		}
		if err := ctx.FS.Close(fd); err != nil {
			return fsErrno(err)
		}
		return 0

	case interpose.SysSeek:
		off, err := ctx.FS.Seek(int(int64(a0)), int64(a1), int(a2))
		if err != nil {
			return fsErrno(err)
		}
		return uint64(off)

	case interpose.SysBrk:
		// The VMA list and break are part of the snapshot, so brk needs no
		// undo log: backtracking reverts it structurally.
		nb, err := ctx.Mem.Brk(a0)
		if err != nil {
			cur, _ := ctx.Mem.Brk(0)
			return cur // Linux brk reports the unchanged break on failure
		}
		return nb

	case interpose.SysGetTick:
		return cpu.Retired

	default:
		return interpose.ErrnoRet(interpose.ENOSYS)
	}
}

func fsErrno(err error) uint64 {
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return interpose.ErrnoRet(interpose.ENOENT)
	case errors.Is(err, fs.ErrBadFD):
		return interpose.ErrnoRet(interpose.EBADF)
	case errors.Is(err, fs.ErrPerm):
		return interpose.ErrnoRet(interpose.EACCES)
	case errors.Is(err, fs.ErrTooBig):
		return interpose.ErrnoRet(interpose.EFBIG)
	default:
		// fs.ErrInvalid (guest-controlled offsets out of range) and any
		// other rejection surface as EINVAL.
		return interpose.ErrnoRet(interpose.EINVAL)
	}
}
