package core

import "repro/internal/mem"

// Decision is returned by solution hooks to direct the engine after a
// solution surfaces.
type Decision uint8

// Decisions.
const (
	// Continue keeps searching.
	Continue Decision = iota
	// Stop halts the search: in-flight extension steps finish their current
	// machine resume, queued extensions are drained and their snapshot
	// references released, and Run returns the partial Result.
	Stop
)

func (d Decision) String() string {
	if d == Stop {
		return "stop"
	}
	return "continue"
}

// Observer receives engine telemetry from the hot loop — the seam for
// metrics export and multi-tenant serving. Implementations must be cheap
// and safe for concurrent calls: with Workers > 1 multiple extension steps
// report at once. A nil Observer in Config costs a single predictable
// branch per event.
type Observer interface {
	// OnGuess reports a sys_guess with the given fanout at depth.
	OnGuess(depth int, fanout uint64)
	// OnFail reports a dead path (sys_guess_fail or guess(0)) at depth.
	OnFail(depth int)
	// OnSolution reports a surfaced solution. The engine still owns
	// sol.Final (when KeepExitSnapshots is set); observers must not
	// retain or release it.
	OnSolution(sol Solution)
	// OnSnapshot reports a captured partial candidate.
	OnSnapshot(id uint64, depth int)
	// OnEvict reports a queued extension at the given depth dropped by a
	// memory-bounded strategy (SM-A*) to honor its capacity — the only
	// signal that a bounded run is silently losing candidates. The
	// evicted snapshot reference is already released when the callback
	// runs. Invoked under the scheduler lock: implementations must be
	// cheap and must not call back into the engine.
	OnEvict(depth int)
	// OnStepStats reports the memory-subsystem counters (CoW copies,
	// zero fills, node clones, software-TLB hits/misses) accumulated by
	// one completed extension evaluation — a run-through chain reports
	// once for the whole chain. The engine folds the same numbers into
	// Result.Stats; the callback exists for live hit-rate dashboards.
	OnStepStats(st mem.Stats)
}

// FuncObserver adapts optional callbacks to Observer; nil fields are
// no-ops, so callers can subscribe to a single event kind.
type FuncObserver struct {
	Guess     func(depth int, fanout uint64)
	Fail      func(depth int)
	Solution  func(sol Solution)
	Snapshot  func(id uint64, depth int)
	Evict     func(depth int)
	StepStats func(st mem.Stats)
}

// OnGuess implements Observer.
func (o *FuncObserver) OnGuess(depth int, fanout uint64) {
	if o.Guess != nil {
		o.Guess(depth, fanout)
	}
}

// OnFail implements Observer.
func (o *FuncObserver) OnFail(depth int) {
	if o.Fail != nil {
		o.Fail(depth)
	}
}

// OnSolution implements Observer.
func (o *FuncObserver) OnSolution(sol Solution) {
	if o.Solution != nil {
		o.Solution(sol)
	}
}

// OnSnapshot implements Observer.
func (o *FuncObserver) OnSnapshot(id uint64, depth int) {
	if o.Snapshot != nil {
		o.Snapshot(id, depth)
	}
}

// OnEvict implements Observer.
func (o *FuncObserver) OnEvict(depth int) {
	if o.Evict != nil {
		o.Evict(depth)
	}
}

// OnStepStats implements Observer.
func (o *FuncObserver) OnStepStats(st mem.Stats) {
	if o.StepStats != nil {
		o.StepStats(st)
	}
}
