// Package core implements system-level backtracking (§3 of the paper): the
// engine that gives guest programs the illusion that the operating system
// guessed the path to a solution.
//
// The pieces map one-to-one onto the paper's concepts:
//
//   - Partial candidates are snapshot.State values — lightweight immutable
//     execution snapshots organized in a refcounted tree.
//   - Candidate extension steps are (parent, choice) pairs scheduled by a
//     search.Strategy; evaluating one restores the parent and runs guest
//     code until the next sys_guess, a sys_guess_fail, or exit.
//   - The Machine interface abstracts *how* guest code runs: VMMachine
//     interprets arbitrary SVX64 machine code (the paper's "arbitrary x86
//     code" path, registers included), while HostedMachine runs Go step
//     functions whose cross-step state lives in the simulated address
//     space (the S2E "run until the next symbolic branch" shape).
//   - System calls issued by extensions are interposed so all visible side
//     effects — memory, files, output — stay contained in the candidate.
//
// The engine evaluates extensions on a pool of workers (the simulated CPU
// cores of the paper's Figure 2); snapshots are immutable, so parallel
// evaluation needs no further synchronization.
package core
