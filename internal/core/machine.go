package core

import (
	"fmt"

	"repro/internal/fs"
	"repro/internal/mem"
	"repro/internal/snapshot"
)

// Machine abstracts the execution of candidate extension steps. Resume
// continues the guest captured in ctx: retval is delivered as the result of
// the system call that suspended it (the sys_guess result, or the strategy
// acknowledgment); for a root context that has never run, retval is 0 and
// execution starts at the entry point.
//
// Resume runs until the guest produces a backtracking-relevant event and
// must leave ctx consistent for capture (registers stored back, output
// appended). A non-nil error reports an infrastructure failure, not a guest
// failure — guest crashes are EventError.
//
// Implementations must be safe for concurrent Resume calls on distinct
// contexts: the engine invokes one Resume per worker in parallel.
type Machine interface {
	Resume(ctx *snapshot.Context, retval uint64) (Event, error)
}

// Env is the system-call surface presented to hosted guests: typed access
// to the candidate's simulated memory, files, and output stream, plus the
// backtracking calls. All cross-step state must live in the simulated
// address space or filesystem — Go-level variables captured by the step
// closure are NOT part of the snapshot and must be treated as constants.
type Env struct {
	ctx     *snapshot.Context
	choice  uint64
	ev      Event
	decided bool
}

// Choice returns the extension number being evaluated — the value
// sys_guess appears to return. It is 0 for the root step.
func (e *Env) Choice() uint64 { return e.choice }

// Mem returns the candidate's mutable address space.
func (e *Env) Mem() *mem.AddressSpace { return e.ctx.Mem }

// FS returns the candidate's mutable filesystem view.
func (e *Env) FS() *fs.FS { return e.ctx.FS }

// Printf appends formatted text to the candidate's captured output, the
// contained stdout of §3.1.
func (e *Env) Printf(format string, args ...any) {
	e.ctx.Out = append(e.ctx.Out, fmt.Sprintf(format, args...)...)
}

// Write appends raw bytes to the candidate's captured output.
func (e *Env) Write(p []byte) (int, error) {
	e.ctx.Out = append(e.ctx.Out, p...)
	return len(p), nil
}

func (e *Env) decide(ev Event) {
	if e.decided {
		panic("core: hosted step decided twice (Guess/Fail/Exit must be called exactly once)")
	}
	e.decided = true
	e.ev = ev
}

// Guess suspends the step at a choice point with n extensions — the
// sys_guess system call. The step function must return immediately after.
func (e *Env) Guess(n uint64) { e.decide(Event{Kind: EventGuess, N: n}) }

// GuessHint is Guess with a goal-distance hint for A*/SM-A* strategies.
func (e *Env) GuessHint(n uint64, hint int64) {
	e.decide(Event{Kind: EventGuess, N: n, Hint: hint})
}

// Fail discards the current extension step — the sys_guess_fail call.
func (e *Env) Fail() { e.decide(Event{Kind: EventFail}) }

// Exit terminates this path with a status — a completed candidate.
func (e *Env) Exit(status uint64) { e.decide(Event{Kind: EventExit, Status: status}) }

// StepFunc is one hosted candidate-extension step: read the parent state
// from simulated memory, apply Choice, write the successor state, and call
// exactly one of Guess/GuessHint/Fail/Exit before returning. Returning an
// error marks the path as crashed (EventError).
type StepFunc func(env *Env) error

// HostedMachine runs hosted guests: each extension step is one StepFunc
// invocation. This matches the paper's S2E shape, where an extension
// evaluation runs the target until the next symbolic branch.
type HostedMachine struct {
	step StepFunc
}

// NewHostedMachine returns a Machine evaluating step per extension.
func NewHostedMachine(step StepFunc) *HostedMachine { return &HostedMachine{step: step} }

// Resume implements Machine.
func (m *HostedMachine) Resume(ctx *snapshot.Context, retval uint64) (Event, error) {
	env := &Env{ctx: ctx, choice: retval}
	if err := m.step(env); err != nil {
		return Event{Kind: EventError, Err: err}, nil
	}
	if !env.decided {
		return Event{}, fmt.Errorf("core: hosted step returned without calling Guess/Fail/Exit")
	}
	return env.ev, nil
}

// HostedHeapBase is where NewHostedContext maps the state heap.
const HostedHeapBase uint64 = 0x1000_0000

// NewHostedContext builds a root context for hosted guests: an address
// space with a zeroed read-write heap of heapBytes at HostedHeapBase and an
// empty filesystem. The caller owns the context (pass it to Engine.Run,
// which takes ownership).
func NewHostedContext(alloc *mem.FrameAllocator, heapBytes uint64) (*snapshot.Context, error) {
	as := mem.NewAddressSpace(alloc)
	size := mem.PageCeil(heapBytes)
	if size == 0 {
		size = mem.PageSize
	}
	if err := as.Map(HostedHeapBase, size, mem.PermRW, "heap"); err != nil {
		as.Release()
		return nil, err
	}
	as.InitBrk(HostedHeapBase + size)
	return &snapshot.Context{Mem: as, FS: fs.New()}, nil
}
