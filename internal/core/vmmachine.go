package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/interpose"
	"repro/internal/snapshot"
	"repro/internal/vm"
)

// VMMachine runs native SVX64 guests: arbitrary machine code making
// arbitrary system calls, with no backtracking bookkeeping in the guest —
// the paper's headline capability. Non-backtracking system calls are
// interposed inline (see syscalls.go); guess/fail/exit suspend the step.
type VMMachine struct {
	// Fuel bounds retired instructions per extension step (0 = unlimited);
	// exceeding it crashes the path with EventError, containing runaway
	// extensions the way the paper's execution timeouts would.
	Fuel int64

	// Syscalls counts interposed non-backtracking system calls (atomic).
	Syscalls atomic.Int64
	// Denied counts policy rejections (atomic).
	Denied atomic.Int64
}

// NewVMMachine returns a native-code Machine with the given per-step fuel.
func NewVMMachine(fuel int64) *VMMachine { return &VMMachine{Fuel: fuel} }

// Resume implements Machine. ctx.Regs must hold the register file captured
// at the suspending sys_guess (or the entry-point registers for the root).
func (m *VMMachine) Resume(ctx *snapshot.Context, retval uint64) (Event, error) {
	cpu := vm.New(ctx.Mem)
	cpu.Regs = ctx.Regs
	cpu.Regs.Set(vm.SysRetReg, retval)

	var pendingHint int64
	hintSet := false
	start := cpu.Retired

	for {
		fuel := int64(0)
		if m.Fuel > 0 {
			fuel = m.Fuel - int64(cpu.Retired-start)
			if fuel <= 0 {
				return Event{Kind: EventError, Err: fmt.Errorf("core: extension exceeded fuel %d", m.Fuel)}, nil
			}
		}
		trap := cpu.Run(fuel)
		switch trap.Kind {
		case vm.TrapSyscall:
			nr := cpu.Regs.Get(vm.SysNumReg)
			a0 := cpu.Regs.Get(vm.SysArg0Reg)
			switch nr {
			case interpose.SysGuess:
				ctx.Regs = cpu.Regs
				ev := Event{Kind: EventGuess, N: a0}
				if hintSet {
					ev.Hint = pendingHint
				}
				return ev, nil
			case interpose.SysGuessFail:
				ctx.Regs = cpu.Regs
				return Event{Kind: EventFail}, nil
			case interpose.SysExit:
				ctx.Regs = cpu.Regs
				return Event{Kind: EventExit, Status: a0}, nil
			case interpose.SysGuessStrategy:
				ctx.Regs = cpu.Regs
				return Event{Kind: EventStrategy, N: a0}, nil
			case interpose.SysGuessHint:
				pendingHint = int64(a0)
				hintSet = true
				cpu.Regs.Set(vm.SysRetReg, 0)
			default:
				m.Syscalls.Add(1)
				ret := handleSyscall(ctx, cpu, nr)
				if e, ok := interpose.IsErrnoRet(ret); ok && e == interpose.ENOTSUP {
					m.Denied.Add(1)
				}
				cpu.Regs.Set(vm.SysRetReg, ret)
			}
		case vm.TrapHalt:
			ctx.Regs = cpu.Regs
			return Event{Kind: EventExit, Status: cpu.Regs.Get(vm.RAX)}, nil
		case vm.TrapInstrLimit:
			return Event{Kind: EventError, Err: fmt.Errorf("core: extension exceeded fuel %d", m.Fuel)}, nil
		default: // faults, invalid opcode, div-zero
			ctx.Regs = cpu.Regs
			return Event{Kind: EventError, Err: fmt.Errorf("core: guest crashed: %v", trap)}, nil
		}
	}
}
