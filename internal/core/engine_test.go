package core_test

import (
	"context"

	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/guest"
	"repro/internal/mem"
	"repro/internal/queens"
	"repro/internal/search"
	"repro/internal/snapshot"
)

// hostedRun builds a hosted engine and runs it.
func hostedRun(t *testing.T, step core.StepFunc, heap uint64, cfg core.Config) *core.Result {
	t.Helper()
	alloc := mem.NewFrameAllocator(0)
	ctx, err := core.NewHostedContext(alloc, heap)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(core.NewHostedMachine(step), cfg)
	res, err := eng.Run(context.Background(), ctx)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if live := eng.Tree().Live(); live != 0 && !cfg.KeepExitSnapshots {
		t.Errorf("snapshot leak: %d live after run", live)
	}
	return res
}

// bitsStep enumerates 3-bit strings, exiting on those with even parity.
func bitsStep(env *core.Env) error {
	m := env.Mem()
	base := core.HostedHeapBase
	depth, _ := m.ReadU64(base)
	bits, _ := m.ReadU64(base + 8)
	started, _ := m.ReadU64(base + 16)
	if started == 0 {
		m.WriteU64(base+16, 1)
		env.Guess(2)
		return nil
	}
	bits = bits<<1 | env.Choice()
	depth++
	m.WriteU64(base, depth)
	m.WriteU64(base+8, bits)
	if depth < 3 {
		env.Guess(2)
		return nil
	}
	parity := bits ^ (bits >> 1) ^ (bits >> 2)
	if parity&1 == 0 {
		env.Printf("%03b\n", bits)
		env.Exit(bits)
		return nil
	}
	env.Fail()
	return nil
}

func TestHostedEnumeration(t *testing.T) {
	res := hostedRun(t, bitsStep, 4096, core.Config{})
	if len(res.Solutions) != 4 {
		t.Fatalf("solutions = %d, want 4 (even-parity 3-bit strings)", len(res.Solutions))
	}
	var got []string
	for _, s := range res.Solutions {
		if s.Kind != core.SolutionExit {
			t.Errorf("solution kind = %v", s.Kind)
		}
		got = append(got, strings.TrimSpace(string(s.Out)))
	}
	sort.Strings(got)
	want := []string{"000", "011", "101", "110"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("solution %d = %q, want %q", i, got[i], want[i])
		}
	}
	st := res.Stats
	// Nodes: root + 2 + 4 + 8 = 15 evaluations; guesses at depth 0,1,2 = 7.
	if st.Nodes != 14 || st.Guesses != 7 {
		t.Errorf("nodes=%d guesses=%d, want 14/7", st.Nodes, st.Guesses)
	}
	if st.Exits != 4 || st.Fails != 4 {
		t.Errorf("exits=%d fails=%d, want 4/4", st.Exits, st.Fails)
	}
	if st.MaxDepth != 3 {
		t.Errorf("max depth = %d, want 3", st.MaxDepth)
	}
}

func TestHostedQueensAllBackends(t *testing.T) {
	for _, n := range []int{4, 5, 6} {
		t.Run(fmt.Sprintf("hosted-n%d", n), func(t *testing.T) {
			alloc := mem.NewFrameAllocator(0)
			ctx, err := queens.NewHostedContext(alloc, n)
			if err != nil {
				t.Fatal(err)
			}
			eng := core.New(core.NewHostedMachine(queens.HostedStep(false)), core.Config{})
			res, err := eng.Run(context.Background(), ctx)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(res.Solutions); got != queens.Counts[n] {
				t.Errorf("n=%d solutions = %d, want %d", n, got, queens.Counts[n])
			}
			for _, s := range res.Solutions {
				if s.Kind != core.SolutionEmitted {
					t.Errorf("queens solutions surface via print-then-fail, got %v", s.Kind)
				}
			}
		})
	}
}

func TestNativeQueensFigure1(t *testing.T) {
	img, err := queens.Asm(6)
	if err != nil {
		t.Fatal(err)
	}
	as, regs, err := guest.Load(img, mem.NewFrameAllocator(0), guest.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &snapshot.Context{Mem: as, FS: fs.New(), Regs: regs}
	eng := core.New(core.NewVMMachine(0), core.Config{})
	res, err := eng.Run(context.Background(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "dfs" {
		t.Errorf("strategy = %q (guest selected DFS)", res.Strategy)
	}
	if got := len(res.Solutions); got != queens.Counts[6] {
		t.Fatalf("native n=6 solutions = %d, want %d; firstErr=%v",
			got, queens.Counts[6], res.FirstPathError)
	}
	// Cross-validate the printed boards against the hand-coded solver.
	want := map[string]bool{}
	queens.HandCoded(6, func(cols []int) {
		b := make([]byte, 6)
		for i, r := range cols {
			b[i] = byte('0' + r)
		}
		want[string(b)] = true
	})
	for _, s := range res.Solutions {
		line := strings.TrimSpace(string(s.Out))
		if !want[line] {
			t.Errorf("printed board %q is not a valid solution", line)
		}
		delete(want, line)
	}
	if len(want) != 0 {
		t.Errorf("missing boards: %v", want)
	}
	if res.Stats.Errors != 0 {
		t.Errorf("path errors: %d (%v)", res.Stats.Errors, res.FirstPathError)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	collect := func(workers int) []string {
		alloc := mem.NewFrameAllocator(0)
		ctx, err := queens.NewHostedContext(alloc, 6)
		if err != nil {
			t.Fatal(err)
		}
		eng := core.New(core.NewHostedMachine(queens.HostedStep(false)), core.Config{Workers: workers})
		res, err := eng.Run(context.Background(), ctx)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, s := range res.Solutions {
			out = append(out, strings.TrimSpace(string(s.Out)))
		}
		sort.Strings(out)
		return out
	}
	seq := collect(1)
	par := collect(4)
	if len(seq) != len(par) {
		t.Fatalf("sequential %d vs parallel %d solutions", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("solution set diverges at %d: %q vs %q", i, seq[i], par[i])
		}
	}
}

func TestStrategiesVisitOrder(t *testing.T) {
	// Depth-2 binary tree; each leaf prints its path and fails. DFS must
	// produce lexicographic order; BFS the same here (leaves are the only
	// printers, same depth), so distinguish via node evaluation order
	// embedded in output of inner nodes too.
	step := func(env *core.Env) error {
		m := env.Mem()
		base := core.HostedHeapBase
		depth, _ := m.ReadU64(base)
		path, _ := m.ReadU64(base + 8)
		started, _ := m.ReadU64(base + 16)
		if started == 0 {
			m.WriteU64(base+16, 1)
			env.Guess(2)
			return nil
		}
		depth++
		path = path<<1 | env.Choice()
		m.WriteU64(base, depth)
		m.WriteU64(base+8, path)
		if depth == 2 {
			env.Printf("%02b", path)
			env.Fail()
			return nil
		}
		env.Guess(2)
		return nil
	}
	runWith := func(st core.Strategy) string {
		alloc := mem.NewFrameAllocator(0)
		ctx, _ := core.NewHostedContext(alloc, 4096)
		eng := core.New(core.NewHostedMachine(step), core.Config{Strategy: st})
		res, err := eng.Run(context.Background(), ctx)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, s := range res.Solutions {
			sb.Write(s.Out)
			sb.WriteByte(' ')
		}
		return strings.TrimSpace(sb.String())
	}
	if got := runWith(search.NewDFS[*snapshot.State]()); got != "00 01 10 11" {
		t.Errorf("dfs leaf order = %q", got)
	}
	if got := runWith(search.NewBFS[*snapshot.State]()); got != "00 01 10 11" {
		t.Errorf("bfs leaf order = %q", got)
	}
	if got := runWith(search.NewRandom[*snapshot.State](42)); len(strings.Fields(got)) != 4 {
		t.Errorf("random visited %q", got)
	}
}

func TestAStarHintGuidesSearch(t *testing.T) {
	// Two-armed search: arm 0 is "far" (hint 100), arm 1 is "near"
	// (hint 0). A* must reach the near leaf first.
	step := func(env *core.Env) error {
		m := env.Mem()
		base := core.HostedHeapBase
		started, _ := m.ReadU64(base + 16)
		if started == 0 {
			m.WriteU64(base+16, 1)
			env.Guess(2) // root guess: no hint, both arms queued
			return nil
		}
		stage, _ := m.ReadU64(base)
		arm, _ := m.ReadU64(base + 8)
		if stage == 0 {
			m.WriteU64(base, 1)
			m.WriteU64(base+8, env.Choice())
			if env.Choice() == 0 {
				env.GuessHint(1, 100) // far
			} else {
				env.GuessHint(1, 0) // near
			}
			return nil
		}
		env.Printf("arm%d", arm)
		env.Fail()
		return nil
	}
	alloc := mem.NewFrameAllocator(0)
	ctx, _ := core.NewHostedContext(alloc, 4096)
	eng := core.New(core.NewHostedMachine(step),
		core.Config{Strategy: search.NewAStar[*snapshot.State](), MaxSolutions: 1})
	res, err := eng.Run(context.Background(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 || string(res.Solutions[0].Out) != "arm1" {
		t.Errorf("A* first solution = %v, want arm1", res.Solutions)
	}
}

func TestMaxSolutionsStopsEarly(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	ctx, _ := queens.NewHostedContext(alloc, 8)
	eng := core.New(core.NewHostedMachine(queens.HostedStep(false)), core.Config{MaxSolutions: 3})
	res, err := eng.Run(context.Background(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 3 {
		t.Errorf("solutions = %d, want 3", len(res.Solutions))
	}
	if eng.Tree().Live() != 0 {
		t.Errorf("snapshot leak after early stop: %d", eng.Tree().Live())
	}
}

func TestMaxNodesStops(t *testing.T) {
	res := hostedRun(t, bitsStep, 4096, core.Config{MaxNodes: 5})
	if res.Stats.Nodes > 6 {
		t.Errorf("nodes = %d, want <= 6", res.Stats.Nodes)
	}
}

func TestFanoutGuard(t *testing.T) {
	step := func(env *core.Env) error {
		env.Guess(1 << 40)
		return nil
	}
	res := hostedRun(t, step, 4096, core.Config{})
	if res.Stats.Errors != 1 {
		t.Errorf("errors = %d, want 1 (fanout bound)", res.Stats.Errors)
	}
	if res.FirstPathError == nil || !strings.Contains(res.FirstPathError.Error(), "fanout") {
		t.Errorf("FirstPathError = %v", res.FirstPathError)
	}
}

func TestGuessZeroIsFail(t *testing.T) {
	step := func(env *core.Env) error {
		m := env.Mem()
		started, _ := m.ReadU64(core.HostedHeapBase)
		if started == 0 {
			m.WriteU64(core.HostedHeapBase, 1)
			env.Printf("before")
			env.Guess(0)
			return nil
		}
		return errors.New("unreachable")
	}
	res := hostedRun(t, step, 4096, core.Config{})
	if res.Stats.Fails != 1 || res.Stats.Guesses != 0 {
		t.Errorf("fails=%d guesses=%d, want 1/0", res.Stats.Fails, res.Stats.Guesses)
	}
	// Output-bearing failed root still surfaces as an emission.
	if len(res.Solutions) != 1 || string(res.Solutions[0].Out) != "before" {
		t.Errorf("emissions = %v", res.Solutions)
	}
}

func TestHostedStepError(t *testing.T) {
	step := func(env *core.Env) error { return errors.New("boom") }
	res := hostedRun(t, step, 4096, core.Config{})
	if res.Stats.Errors != 1 || res.FirstPathError == nil {
		t.Errorf("errors=%d err=%v", res.Stats.Errors, res.FirstPathError)
	}
}

func TestKeepExitSnapshots(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	ctx, _ := queens.NewHostedContext(alloc, 5)
	eng := core.New(core.NewHostedMachine(queens.HostedStep(true)),
		core.Config{KeepExitSnapshots: true})
	res, err := eng.Run(context.Background(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) == 0 {
		t.Fatal("no solutions")
	}
	sol := res.Solutions[0]
	if sol.Final == nil {
		t.Fatal("Final snapshot missing")
	}
	// The final snapshot's memory holds the completed board: c == n.
	re := sol.Final.Restore()
	c, _ := re.Mem.ReadU64(core.HostedHeapBase)
	if c != 5 {
		t.Errorf("final snapshot c = %d, want 5", c)
	}
	re.Release()
	res.Release()
	if live := eng.Tree().Live(); live != 0 {
		t.Errorf("snapshot leak after Result.Release: %d", live)
	}
}

func TestEmittedDeltaOnly(t *testing.T) {
	// Parent prints "P"; both children print their own byte then fail. The
	// emissions must contain only the child bytes, not "P" twice.
	step := func(env *core.Env) error {
		m := env.Mem()
		started, _ := m.ReadU64(core.HostedHeapBase)
		if started == 0 {
			m.WriteU64(core.HostedHeapBase, 1)
			env.Printf("P")
			env.Guess(2)
			return nil
		}
		env.Printf("c%d", env.Choice())
		env.Fail()
		return nil
	}
	res := hostedRun(t, step, 4096, core.Config{})
	if len(res.Solutions) != 2 {
		t.Fatalf("emissions = %d, want 2", len(res.Solutions))
	}
	got := []string{string(res.Solutions[0].Out), string(res.Solutions[1].Out)}
	sort.Strings(got)
	if got[0] != "c0" || got[1] != "c1" {
		t.Errorf("emissions = %v, want [c0 c1]", got)
	}
}

func TestSMAStarBoundsQueue(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	ctx, _ := queens.NewHostedContext(alloc, 6)
	drop := func(it core.Ext) { it.Payload.Release() }
	st := search.NewSMAStar[*snapshot.State](8, drop)
	eng := core.New(core.NewHostedMachine(queens.HostedStep(false)),
		core.Config{Strategy: st})
	res, err := eng.Run(context.Background(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Evicted == 0 {
		t.Error("SM-A* never evicted despite capacity 8")
	}
	// Bounded memory necessarily loses solutions; it must still terminate
	// cleanly with no snapshot leak.
	if live := eng.Tree().Live(); live != 0 {
		t.Errorf("snapshot leak: %d", live)
	}
	if len(res.Solutions) > queens.Counts[6] {
		t.Errorf("more solutions than exist: %d", len(res.Solutions))
	}
}
