package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/search"
	"repro/internal/snapshot"
)

// sched is the engine's internal scheduling seam: the strategy queue plus
// the worker idle/termination protocol. Two implementations exist — a
// sharded work-stealing pool for order-insensitive policies (DFS, Random)
// and a single queue under a dedicated lock for order-sensitive ones
// (BFS, A*, SM-A*, External) — so the engine hot loop never touches the
// engine-state mutex to move work.
type sched interface {
	// push hands worker w's sibling batch to the scheduler. It returns
	// false when the scheduler is already stopped; the caller then still
	// owns the items (and their snapshot references).
	push(w int, items []Ext) bool
	// next blocks (or polls) until an extension is available for worker
	// w, returning false when the search is over: stopped, or no queued
	// work and no worker that could produce more. Every true return must
	// be paired with done after the item's evaluation — including the
	// pushes it performs — completes.
	next(w int) (Ext, bool)
	// done retires the item most recently handed to worker w.
	done(w int)
	// stop halts the scheduler and drains queued items into the drop
	// callback configured at construction. Idempotent, safe concurrently
	// with push/next/done.
	stop()
	// stats reports (steals, localPops) — zero for the global queue.
	stats() (steals, localPops int64)
}

// stealSched adapts search.Sharded to the sched seam: per-worker deques,
// steal-half rebalancing, and a polling idle loop with escalating backoff
// in place of a condvar. With work queued, next is one shard-local mutex
// acquisition; idle workers burn a few Gosched rounds, then sleep in
// microsecond steps, so both cancellation and new-work pickup latencies
// stay far below one extension step.
type stealSched struct {
	q         *search.Sharded[*snapshot.State]
	steals    atomic.Int64
	localPops atomic.Int64
}

func newStealSched(workers int, kind search.StealKind, seed uint64) *stealSched {
	return &stealSched{q: search.NewSharded[*snapshot.State](workers, kind, seed,
		func(it Ext) { it.Payload.Release() })}
}

func (s *stealSched) push(w int, items []Ext) bool { return s.q.Push(w, items) }

func (s *stealSched) next(w int) (Ext, bool) {
	spins := 0
	for {
		if s.q.Closed() {
			return Ext{}, false
		}
		if it, stolen, ok := s.q.Pop(w); ok {
			if stolen {
				s.steals.Add(1)
			} else {
				s.localPops.Add(1)
			}
			return it, true
		}
		if s.q.Quiescent() {
			return Ext{}, false
		}
		// Escalating backoff: stay hot for a few rounds (a victim is
		// usually mid-push), then nap in doubling steps up to 1ms so
		// workers idled by one long extension step don't pin their
		// cores polling. Cancellation and new-work latency stay bounded
		// by the cap, far below any step coarse enough to matter.
		spins++
		if spins < 8 {
			runtime.Gosched()
		} else {
			d := time.Microsecond << min(spins-8, 10)
			time.Sleep(d)
		}
	}
}

func (s *stealSched) done(w int) { s.q.Done(w) }

func (s *stealSched) stop() { s.q.Close() }

func (s *stealSched) stats() (int64, int64) { return s.steals.Load(), s.localPops.Load() }

// globalSched serializes one order-sensitive strategy under its own
// mutex + condvar — the scheduler "shard" dedicated to queue order, kept
// apart from the engine-state mutex so solution recording and stop paths
// never contend with Pop/PushAll.
type globalSched struct {
	mu      sync.Mutex // lock_rank: 20 — queue-order lock, inside Engine.mu
	cond    *sync.Cond
	st      Strategy
	drop    func(Ext)
	busy    int
	stopped bool
}

func newGlobalSched(st Strategy, drop func(Ext)) *globalSched {
	g := &globalSched{st: st, drop: drop}
	g.cond = sync.NewCond(&g.mu)
	return g
}

func (g *globalSched) push(w int, items []Ext) bool {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return false
	}
	g.st.PushAll(items)
	g.cond.Broadcast()
	g.mu.Unlock()
	return true
}

func (g *globalSched) next(w int) (Ext, bool) {
	g.mu.Lock()
	for !g.stopped && g.st.Len() == 0 && g.busy > 0 {
		g.cond.Wait()
	}
	if g.stopped || g.st.Len() == 0 {
		g.cond.Broadcast()
		g.mu.Unlock()
		return Ext{}, false
	}
	it, _ := g.st.Pop()
	g.busy++
	g.mu.Unlock()
	return it, true
}

func (g *globalSched) done(w int) {
	g.mu.Lock()
	g.busy--
	if g.busy == 0 && g.st.Len() == 0 {
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

func (g *globalSched) stop() {
	g.mu.Lock()
	if !g.stopped {
		g.stopped = true
		g.st.Drain(g.drop)
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

func (g *globalSched) stats() (int64, int64) { return 0, 0 }
