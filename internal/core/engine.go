package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/interpose"
	"repro/internal/search"
	"repro/internal/snapshot"
)

// Ext is one schedulable candidate extension step: a retained reference to
// the parent partial candidate plus the extension number.
type Ext = search.Item[*snapshot.State]

// Strategy is the search-policy type the engine schedules with.
type Strategy = search.Strategy[*snapshot.State]

// Config tunes an Engine. The zero value means: DFS, one worker, explore
// everything, honor guest strategy selection.
type Config struct {
	// Strategy schedules extension evaluation; nil means DFS.
	Strategy Strategy
	// Workers is the number of simulated CPU cores (Fig. 2); <=0 means 1.
	Workers int
	// MaxSolutions stops the search after this many recorded solutions
	// (exit or emitted); 0 means unlimited.
	MaxSolutions int
	// MaxNodes bounds evaluated extensions (safety net; 0 = unlimited).
	MaxNodes int64
	// MaxFanout bounds a single guess arity (0 means 4096).
	MaxFanout uint64
	// KeepExitSnapshots captures a final snapshot for every exiting path
	// and hands it to the caller via Solution.Final (used by the
	// incremental-solver service). The caller releases them via
	// Result.Release.
	KeepExitSnapshots bool
	// IgnoreGuestStrategy refuses sys_guess_strategy requests (ack 0).
	IgnoreGuestStrategy bool
	// SMACapacity is the queue bound handed to SM-A* when a guest selects
	// it (0 means 65536).
	SMACapacity int
	// RandomSeed seeds the Random strategy when a guest selects it.
	RandomSeed uint64
	// NoSteal forces the single global queue even for order-insensitive
	// policies (DFS, Random), instead of the sharded work-stealing pool —
	// the measured baseline for the E12 scaling experiment and an escape
	// hatch for strict single-queue pop order.
	NoSteal bool
	// NoRunThrough disables the DFS run-through optimization, in which the
	// worker that hits a guess keeps executing extension 0 in its live
	// context (no snapshot restore) and only the siblings are queued —
	// the same trick S2E plays when it continues the current state after
	// a fork. Under DFS the exploration order is identical; the savings
	// are one restore plus the first-write path copies per interior node.
	NoRunThrough bool
	// OnSolution, when non-nil, is invoked synchronously from the worker
	// that surfaced each solution, before it is appended to the Result.
	// Returning Stop halts the search. With Workers > 1 the hook may be
	// called concurrently. When DiscardSolutions is also set, the hook
	// owns Solution.Final and must release it.
	OnSolution func(Solution) Decision
	// Observer, when non-nil, receives telemetry callbacks from the hot
	// loop (see Observer). It runs in addition to OnSolution.
	Observer Observer
	// DiscardSolutions stops the engine from buffering solutions into
	// Result.Solutions — for streaming callers that consume them through
	// OnSolution (or Engine.Solutions) and don't want the run's full
	// answer set held in memory. MaxSolutions still counts.
	DiscardSolutions bool
	// Timeout bounds the whole run; when it elapses Run stops and returns
	// the partial Result with context.DeadlineExceeded. Zero means no
	// timeout. Applied on top of the Context passed to Run.
	Timeout time.Duration
	// Deadline is the absolute-time form of Timeout; the zero value means
	// no deadline. When both are set the earlier one wins.
	Deadline time.Time
}

// SolutionKind distinguishes how a solution surfaced.
type SolutionKind uint8

// Solution kinds.
const (
	// SolutionExit: the path terminated via exit/halt.
	SolutionExit SolutionKind = iota
	// SolutionEmitted: the path printed output and then failed — the
	// Prolog print-then-fail enumeration idiom of Fig. 1.
	SolutionEmitted
)

func (k SolutionKind) String() string {
	if k == SolutionEmitted {
		return "emitted"
	}
	return "exit"
}

// Solution is one surfaced answer.
type Solution struct {
	Kind   SolutionKind
	Out    []byte          // exit: the path's full output; emitted: the new output
	Status uint64          // exit status
	Depth  int             // guesses along the path
	Final  *snapshot.State // retained final snapshot when KeepExitSnapshots
}

// Stats aggregates engine-level counters for one run.
type Stats struct {
	Nodes      int64 // extension steps evaluated (never exceeds Config.MaxNodes)
	Guesses    int64
	Fails      int64
	Exits      int64
	Errors     int64 // crashed paths
	Emitted    int64
	Evicted    int64 // extensions dropped by a memory-bounded strategy (SM-A*)
	Snapshots  int64 // partial candidates captured
	CaptureNs  int64 // cumulative wall time inside Tree.Capture (capture stall budget)
	Epochs     int64 // snapshot-epoch advances across all extension contexts
	MaxDepth   int64
	CowCopies  int64
	ZeroFills  int64
	NodeClones int64
	TLBHits    int64 // software-TLB hits across all extension contexts
	TLBMisses  int64 // software-TLB misses (slow-path resolutions)
	Steals     int64 // work-stealing scheduler: items taken from other workers
	LocalPops  int64 // work-stealing scheduler: items popped from the own deque
}

// Result reports a completed search.
type Result struct {
	Solutions []Solution
	Stats     Stats
	Strategy  string
	// FirstPathError samples the first guest crash (diagnostics).
	FirstPathError error
}

// Release drops the references held by KeepExitSnapshots solutions.
func (r *Result) Release() {
	for i := range r.Solutions {
		if r.Solutions[i].Final != nil {
			r.Solutions[i].Final.Release()
			r.Solutions[i].Final = nil
		}
	}
}

// Engine evaluates candidate extension steps against a Machine under a
// search strategy — the libOS scheduler of the paper's Figure 2.
type Engine struct {
	machine Machine
	cfg     Config
	tree    *snapshot.Tree

	mu       sync.Mutex // lock_rank: 10 — engine state; sched.mu nests inside via stats
	strategy Strategy   // policy identity; scheduling goes through sched
	sched    sched      // fixed once workers start (swaps only during the root step)
	stopped  bool
	halted   atomic.Bool // mirrors stopped for lock-free reads

	runThrough bool // continue extension 0 in-place (DFS only)

	solutions []Solution
	recorded  int // surfaced solutions, whether or not buffered
	pathErr   error
	fatal     error

	ran atomic.Bool // Run already called (the contract allows one call)

	nodes      atomic.Int64
	guesses    atomic.Int64
	fails      atomic.Int64
	exits      atomic.Int64
	errors     atomic.Int64
	emitted    atomic.Int64
	evicted    atomic.Int64
	maxDepth   atomic.Int64
	cowCopies  atomic.Int64
	zeroFills  atomic.Int64
	nodeClones atomic.Int64
	epochs     atomic.Int64
	tlbHits    atomic.Int64
	tlbMisses  atomic.Int64
}

// ErrEngineReused is returned by Run (and surfaced by Solutions) when an
// Engine is asked to run a second search: an Engine's strategy and stop
// state are consumed by its first run, so each Engine drives at most one.
var ErrEngineReused = errors.New("core: Engine.Run may be called at most once per Engine")

// New returns an engine running guests on m.
func New(m Machine, cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxFanout == 0 {
		cfg.MaxFanout = 4096
	}
	if cfg.SMACapacity == 0 {
		cfg.SMACapacity = 65536
	}
	st := cfg.Strategy
	if st == nil {
		st = search.NewDFS[*snapshot.State]()
	}
	e := &Engine{machine: m, cfg: cfg, tree: snapshot.NewTree()}
	e.adoptStrategy(st)
	return e
}

// adoptStrategy installs st as the engine's policy: telemetry hooks, the
// run-through flag, and the matching scheduler (sharded work-stealing for
// order-insensitive policies, the dedicated global queue otherwise). Only
// called before workers exist — from New and from the root step's
// sys_guess_strategy handling — under e.mu when e.mu already guards state.
func (e *Engine) adoptStrategy(st Strategy) {
	if sm, ok := st.(*search.SMAStar[*snapshot.State]); ok {
		sm.SetEvictHook(func(it Ext) {
			e.evicted.Add(1)
			if e.cfg.Observer != nil {
				e.cfg.Observer.OnEvict(it.Depth)
			}
		})
	}
	e.strategy = st
	e.runThrough = st.Name() == "dfs" && !e.cfg.NoRunThrough
	if sb, ok := st.(search.Stealable); ok && !e.cfg.NoSteal {
		seed := e.cfg.RandomSeed
		if r, ok := st.(interface{ Seed() uint64 }); ok {
			seed = r.Seed()
		}
		e.sched = newStealSched(e.cfg.Workers, sb.StealKind(), seed)
	} else {
		e.sched = newGlobalSched(st, func(it Ext) { it.Payload.Release() })
	}
}

// Tree exposes the snapshot tree (statistics, service layers).
func (e *Engine) Tree() *snapshot.Tree { return e.tree }

// Run takes ownership of root and explores the guest's search space to
// exhaustion (or until a configured limit, or ctx is cancelled). It
// returns the recorded solutions and statistics. A non-nil error is
// either an infrastructure failure (Result is nil) or ctx's error —
// cancellation and deadline expiry return the *partial* Result alongside
// ctx.Err(), with every queued extension drained and its snapshot
// reference released. Guest crashes are counted in Stats.Errors and
// sampled in Result.FirstPathError. Run may be called at most once: a
// second call releases root and returns ErrEngineReused instead of
// silently reusing the first run's drained strategy and stopped state.
func (e *Engine) Run(ctx context.Context, root *snapshot.Context) (*Result, error) {
	if e.ran.Swap(true) {
		root.Release()
		return nil, ErrEngineReused
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if !e.cfg.Deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, e.cfg.Deadline)
		defer cancel()
	}
	if e.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.Timeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		root.Release()
		return &Result{Strategy: e.strategy.Name()}, err
	}

	// The watcher turns ctx cancellation into a stop: it drains the
	// scheduler (releasing the queued snapshot references) and wakes or
	// unparks idle workers, so a cancelled run returns within one
	// extension step. Run joins it before returning — the drain may
	// still be releasing references after every worker has exited.
	watchDone := make(chan struct{})
	watcherExited := make(chan struct{})
	go func() {
		defer close(watcherExited)
		select {
		case <-ctx.Done():
			e.stop(nil)
		case <-watchDone:
		}
	}()

	// Evaluate the root step synchronously: it may select the strategy
	// (and with it the scheduler) before any sibling is queued.
	e.evaluate(0, nil, root, 0)

	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e.worker(w)
		}(w)
	}
	wg.Wait()
	close(watchDone)
	// Join the watcher: if it is mid-stop, queued snapshot references
	// are still being released, and Run's contract (zero live snapshots
	// and frames on a cancelled return) holds only after that drain.
	<-watcherExited

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.fatal != nil {
		return nil, e.fatal
	}
	steals, localPops := e.sched.stats()
	res := &Result{
		Solutions:      e.solutions,
		Strategy:       e.strategy.Name(),
		FirstPathError: e.pathErr,
		Stats: Stats{
			Nodes:      e.nodes.Load(),
			Guesses:    e.guesses.Load(),
			Fails:      e.fails.Load(),
			Exits:      e.exits.Load(),
			Errors:     e.errors.Load(),
			Emitted:    e.emitted.Load(),
			Evicted:    e.evicted.Load(),
			Snapshots:  e.tree.Created(),
			CaptureNs:  e.tree.CaptureNs(),
			Epochs:     e.epochs.Load(),
			MaxDepth:   e.maxDepth.Load(),
			CowCopies:  e.cowCopies.Load(),
			ZeroFills:  e.zeroFills.Load(),
			NodeClones: e.nodeClones.Load(),
			TLBHits:    e.tlbHits.Load(),
			TLBMisses:  e.tlbMisses.Load(),
			Steals:     steals,
			LocalPops:  localPops,
		},
	}
	return res, ctx.Err()
}

// worker is one simulated core: pop, restore, evaluate, retire — with no
// shared engine lock on the hot path. The scheduler owns blocking and
// termination; countNode owns the MaxNodes budget.
func (e *Engine) worker(w int) {
	for {
		item, ok := e.sched.next(w)
		if !ok {
			return
		}
		// halted guards the pop-vs-stop race: an item popped while the
		// stop's drain sweeps the other shards must be released, not
		// evaluated — a stopped engine finishes in-flight steps but
		// never starts new ones (halted is set before the drain begins).
		if !e.halted.Load() && e.countNode() {
			ctx := item.Payload.Restore()
			e.evaluate(w, item.Payload, ctx, item.Choice)
		}
		item.Payload.Release()
		e.sched.done(w)
	}
}

// countNode reserves one extension evaluation against Config.MaxNodes,
// stopping the engine and returning false when the budget is exhausted.
// The reservation happens *before* the counter moves, so Stats.Nodes can
// never exceed the cap — with many workers racing, the CAS loop admits
// exactly MaxNodes evaluations and every later pop is rejected uncounted.
func (e *Engine) countNode() bool {
	if e.cfg.MaxNodes <= 0 {
		e.nodes.Add(1)
		return true
	}
	for {
		n := e.nodes.Load()
		if n >= e.cfg.MaxNodes {
			e.stop(nil)
			return false
		}
		if e.nodes.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// stop halts the search, draining queued extensions and releasing their
// candidate references. err, when non-nil, is fatal for the whole run.
func (e *Engine) stop(err error) {
	e.mu.Lock()
	if err != nil && e.fatal == nil {
		e.fatal = err
	}
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	e.halted.Store(true)
	s := e.sched
	e.mu.Unlock()
	s.stop()
}

// evaluate runs extension steps starting from ctx until the path dies or a
// guess hands all children to the scheduler (as worker w). Under DFS
// run-through, a guess instead queues only the siblings and the loop
// continues extension 0 in the live context, avoiding a restore and the
// first-write path copies for the spine of the search tree. evaluate
// consumes ctx.
func (e *Engine) evaluate(w int, parent *snapshot.State, ctx *snapshot.Context, retval uint64) {
	var held *snapshot.State // capture ref for the snapshot we ran through
	defer func() {
		if held != nil {
			held.Release()
		}
		st := ctx.Mem.Stats()
		e.cowCopies.Add(st.CowCopies)
		e.zeroFills.Add(st.ZeroFills)
		e.nodeClones.Add(st.NodeClones)
		e.epochs.Add(st.Epochs)
		e.tlbHits.Add(st.TLBHits)
		e.tlbMisses.Add(st.TLBMisses)
		if e.cfg.Observer != nil {
			e.cfg.Observer.OnStepStats(st)
		}
		ctx.Release()
	}()

	for {
		ev, err := e.machine.Resume(ctx, retval)
		if err != nil {
			e.stop(err)
			return
		}
		for ev.Kind == EventStrategy {
			ack := uint64(0)
			if parent == nil && held == nil && !e.cfg.IgnoreGuestStrategy {
				if st := e.strategyByID(ev.N); st != nil {
					// Only reachable from the root step, before the first
					// guess: nothing is queued and no worker is running, so
					// the scheduler can be swapped wholesale. A concurrent
					// watcher stop keeps the old (empty) scheduler.
					e.mu.Lock()
					if !e.stopped {
						e.adoptStrategy(st)
						ack = 1
					}
					e.mu.Unlock()
				}
			}
			ev, err = e.machine.Resume(ctx, ack)
			if err != nil {
				e.stop(err)
				return
			}
		}

		depth := 0
		if parent != nil {
			depth = parent.Depth() + 1
		}
		for {
			old := e.maxDepth.Load()
			if int64(depth) <= old || e.maxDepth.CompareAndSwap(old, int64(depth)) {
				break
			}
		}

		switch ev.Kind {
		case EventGuess:
			if ev.N == 0 { // sys_guess(0) ≡ sys_guess_fail
				e.fails.Add(1)
				if e.cfg.Observer != nil {
					e.cfg.Observer.OnFail(depth)
				}
				e.recordEmission(parent, ctx)
				return
			}
			if ev.N > e.cfg.MaxFanout {
				e.errors.Add(1)
				e.samplePathErr(fmt.Errorf("core: guess(%d) exceeds fanout bound %d", ev.N, e.cfg.MaxFanout))
				return
			}
			e.guesses.Add(1)
			snap := e.tree.Capture(ctx, parent)
			if e.cfg.Observer != nil {
				e.cfg.Observer.OnGuess(depth, ev.N)
				e.cfg.Observer.OnSnapshot(snap.ID(), snap.Depth())
			}
			runThrough := e.runThrough && !e.halted.Load()
			first := uint64(0)
			if runThrough {
				first = 1 // extension 0 continues in this worker
			}
			items := make([]Ext, 0, ev.N-first)
			for c := first; c < ev.N; c++ {
				snap.Retain()
				items = append(items, Ext{
					Payload:  snap,
					Choice:   c,
					Depth:    snap.Depth(),
					Priority: int64(snap.Depth()) + ev.Hint,
				})
			}
			if len(items) > 0 {
				if e.halted.Load() || !e.sched.push(w, items) {
					// Stopped: the scheduler refused the batch (or would
					// have); the sibling references are ours to drop.
					for range items {
						snap.Release()
					}
				}
			}
			if !runThrough {
				snap.Release() // the capture reference
				return
			}
			// Continue as extension 0 of the new candidate. The new
			// snapshot's parent link keeps earlier spine snapshots alive,
			// so our previous capture ref can go.
			if held != nil {
				held.Release()
			}
			held = snap
			parent = snap
			retval = 0
			if !e.countNode() {
				return
			}

		case EventExit:
			e.exits.Add(1)
			sol := Solution{
				Kind:   SolutionExit,
				Out:    append([]byte(nil), ctx.Out...),
				Status: ev.Status,
				Depth:  depth,
			}
			if e.cfg.KeepExitSnapshots {
				sol.Final = e.tree.Capture(ctx, parent)
				if e.cfg.Observer != nil {
					e.cfg.Observer.OnSnapshot(sol.Final.ID(), sol.Final.Depth())
				}
			}
			e.recordSolution(sol)
			return

		case EventFail:
			e.fails.Add(1)
			if e.cfg.Observer != nil {
				e.cfg.Observer.OnFail(depth)
			}
			e.recordEmission(parent, ctx)
			return

		case EventError:
			e.errors.Add(1)
			e.samplePathErr(ev.Err)
			return

		default:
			e.stop(fmt.Errorf("core: machine returned unexpected event %v", ev))
			return
		}
	}
}

// recordEmission surfaces output printed by a failing path (Fig. 1's
// print-then-fail idiom): the delta beyond the parent's frozen output.
func (e *Engine) recordEmission(parent *snapshot.State, ctx *snapshot.Context) {
	base := 0
	if parent != nil {
		base = len(parent.Out())
	}
	if len(ctx.Out) <= base {
		return
	}
	depth := 0
	if parent != nil {
		depth = parent.Depth() + 1
	}
	e.emitted.Add(1)
	e.recordSolution(Solution{
		Kind:  SolutionEmitted,
		Out:   append([]byte(nil), ctx.Out[base:]...),
		Depth: depth,
	})
}

func (e *Engine) recordSolution(sol Solution) {
	if e.cfg.Observer != nil {
		e.cfg.Observer.OnSolution(sol)
	}
	decision := Continue
	if e.cfg.OnSolution != nil {
		decision = e.cfg.OnSolution(sol)
	} else if e.cfg.DiscardSolutions && sol.Final != nil {
		// Nobody will ever see this solution; don't leak its snapshot.
		sol.Final.Release()
		sol.Final = nil
	}
	e.mu.Lock()
	e.recorded++
	if !e.cfg.DiscardSolutions {
		e.solutions = append(e.solutions, sol)
	}
	hitLimit := e.cfg.MaxSolutions > 0 && e.recorded >= e.cfg.MaxSolutions
	e.mu.Unlock()
	if hitLimit || decision == Stop {
		e.stop(nil)
	}
}

func (e *Engine) samplePathErr(err error) {
	e.mu.Lock()
	if e.pathErr == nil {
		e.pathErr = err
	}
	e.mu.Unlock()
}

// strategyByID maps a guest sys_guess_strategy id to a fresh strategy.
func (e *Engine) strategyByID(id uint64) Strategy {
	switch id {
	case interpose.StrategyDFS:
		return search.NewDFS[*snapshot.State]()
	case interpose.StrategyBFS:
		return search.NewBFS[*snapshot.State]()
	case interpose.StrategyAStar:
		return search.NewAStar[*snapshot.State]()
	case interpose.StrategySMAStar:
		return search.NewSMAStar[*snapshot.State](e.cfg.SMACapacity,
			func(it Ext) { it.Payload.Release() })
	case interpose.StrategyRandom:
		return search.NewRandom[*snapshot.State](e.cfg.RandomSeed)
	default:
		return nil
	}
}
