package core_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/queens"
)

// infiniteStep guesses forever: an unbounded search tree for cancellation
// tests. Depth is tracked in simulated memory.
func infiniteStep(env *core.Env) error {
	m := env.Mem()
	d, _ := m.ReadU64(core.HostedHeapBase)
	m.WriteU64(core.HostedHeapBase, d+1)
	env.Guess(2)
	return nil
}

// TestCancelMidSearchReleasesEverything cancels an unbounded run from an
// observer callback and asserts the partial result comes back with
// context.Canceled, zero live snapshots, and zero live frames.
func TestCancelMidSearchReleasesEverything(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	root, err := core.NewHostedContext(alloc, 4096)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var guesses atomic.Int64
	eng := core.New(core.NewHostedMachine(infiniteStep), core.Config{
		Workers: 2,
		Observer: &core.FuncObserver{
			Guess: func(depth int, fanout uint64) {
				if guesses.Add(1) == 50 {
					cancel()
				}
			},
		},
	})
	res, err := eng.Run(ctx, root)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run must return the partial result")
	}
	if res.Stats.Nodes == 0 || res.Stats.Guesses == 0 {
		t.Errorf("partial stats empty: %+v", res.Stats)
	}
	if live := eng.Tree().Live(); live != 0 {
		t.Errorf("snapshot leak after cancel: %d live", live)
	}
	if live := alloc.Live(); live != 0 {
		t.Errorf("frame leak after cancel: %d live", live)
	}
}

// TestDeadlineExpiryReturnsPartialResult bounds an unbounded run with
// Config.Timeout and expects context.DeadlineExceeded plus partial stats.
func TestDeadlineExpiryReturnsPartialResult(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	root, err := core.NewHostedContext(alloc, 4096)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(core.NewHostedMachine(infiniteStep), core.Config{Timeout: 30 * time.Millisecond})
	res, err := eng.Run(context.Background(), root)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res == nil || res.Stats.Nodes == 0 {
		t.Fatalf("want partial result with progress, got %+v", res)
	}
	if live := eng.Tree().Live(); live != 0 {
		t.Errorf("snapshot leak after deadline: %d live", live)
	}
	if live := alloc.Live(); live != 0 {
		t.Errorf("frame leak after deadline: %d live", live)
	}
}

// TestPreCancelledContext never starts the machine at all.
func TestPreCancelledContext(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	root, err := core.NewHostedContext(alloc, 4096)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stepped := false
	eng := core.New(core.NewHostedMachine(func(env *core.Env) error {
		stepped = true
		env.Fail()
		return nil
	}), core.Config{})
	res, err := eng.Run(ctx, root)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stepped {
		t.Error("machine resumed despite pre-cancelled context")
	}
	if res == nil || res.Stats.Nodes != 0 {
		t.Errorf("result = %+v, want empty", res)
	}
	if live := alloc.Live(); live != 0 {
		t.Errorf("frame leak: root not released (%d live)", live)
	}
}

// TestOnSolutionStopHaltsRun returns Stop from the hook after the first
// solution; the run halts with no error and no leaks.
func TestOnSolutionStopHaltsRun(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	root, err := queens.NewHostedContext(alloc, 6)
	if err != nil {
		t.Fatal(err)
	}
	var streamed atomic.Int64
	eng := core.New(core.NewHostedMachine(queens.HostedStep(false)), core.Config{
		OnSolution: func(core.Solution) core.Decision {
			streamed.Add(1)
			return core.Stop
		},
	})
	res, err := eng.Run(context.Background(), root)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Load() != 1 {
		t.Errorf("hook saw %d solutions, want 1", streamed.Load())
	}
	if len(res.Solutions) != 1 {
		t.Errorf("buffered %d solutions, want 1", len(res.Solutions))
	}
	if live := eng.Tree().Live(); live != 0 {
		t.Errorf("snapshot leak after Stop: %d live", live)
	}
	if live := alloc.Live(); live != 0 {
		t.Errorf("frame leak after Stop: %d live", live)
	}
}

// TestSolutionsIteratorEarlyBreak pulls one N-Queens solution and breaks;
// the break must stop the workers and release every snapshot and frame
// without exploring the whole space.
func TestSolutionsIteratorEarlyBreak(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	root, err := queens.NewHostedContext(alloc, 6)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(core.NewHostedMachine(queens.HostedStep(false)), core.Config{Workers: 4})
	got := 0
	for sol, err := range eng.Solutions(context.Background(), root) {
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		if len(sol.Out) == 0 {
			t.Error("streamed solution has no output")
		}
		got++
		break
	}
	if got != 1 {
		t.Fatalf("consumed %d solutions, want 1", got)
	}
	if live := eng.Tree().Live(); live != 0 {
		t.Errorf("snapshot leak after early break: %d live", live)
	}
	if live := alloc.Live(); live != 0 {
		t.Errorf("frame leak after early break: %d live", live)
	}
}

// TestSolutionsIteratorFullDrain consumes the stream to completion and
// must see every solution exactly once.
func TestSolutionsIteratorFullDrain(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	root, err := queens.NewHostedContext(alloc, 6)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(core.NewHostedMachine(queens.HostedStep(false)), core.Config{})
	got := 0
	for _, err := range eng.Solutions(context.Background(), root) {
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		got++
	}
	if got != queens.Counts[6] {
		t.Errorf("streamed %d solutions, want %d", got, queens.Counts[6])
	}
	if live := eng.Tree().Live(); live != 0 {
		t.Errorf("snapshot leak: %d live", live)
	}
}

// TestSolutionsIteratorCancelled reports the context error as the final
// yield instead of dropping it.
func TestSolutionsIteratorCancelled(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	root, err := core.NewHostedContext(alloc, 4096)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	eng := core.New(core.NewHostedMachine(infiniteStep), core.Config{})
	var last error
	for _, err := range eng.Solutions(ctx, root) {
		last = err
	}
	if !errors.Is(last, context.DeadlineExceeded) {
		t.Errorf("final stream error = %v, want context.DeadlineExceeded", last)
	}
	if live := alloc.Live(); live != 0 {
		t.Errorf("frame leak: %d live", live)
	}
}

// TestSolutionsIteratorKeepExitSnapshots streams with KeepExitSnapshots:
// yielded Final snapshots belong to the consumer, abandoned in-flight ones
// are released by the iterator, and an early break leaks nothing.
func TestSolutionsIteratorKeepExitSnapshots(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	root, err := queens.NewHostedContext(alloc, 6)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(core.NewHostedMachine(queens.HostedStep(true)),
		core.Config{Workers: 4, KeepExitSnapshots: true})
	got := 0
	for sol, err := range eng.Solutions(context.Background(), root) {
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		if sol.Final == nil {
			t.Fatal("KeepExitSnapshots solution streamed without Final")
		}
		sol.Final.Release() // consumer owns yielded snapshots
		if got++; got == 2 {
			break
		}
	}
	if got != 2 {
		t.Fatalf("consumed %d solutions, want 2", got)
	}
	if live := eng.Tree().Live(); live != 0 {
		t.Errorf("snapshot leak after early break: %d live", live)
	}
	if live := alloc.Live(); live != 0 {
		t.Errorf("frame leak after early break: %d live", live)
	}
}

// TestObserverCountsMatchStats cross-checks observer callback counts
// against the engine's own counters on a full enumeration.
func TestObserverCountsMatchStats(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	root, err := queens.NewHostedContext(alloc, 5)
	if err != nil {
		t.Fatal(err)
	}
	var guesses, fails, sols, snaps atomic.Int64
	eng := core.New(core.NewHostedMachine(queens.HostedStep(false)), core.Config{
		Observer: &core.FuncObserver{
			Guess:    func(int, uint64) { guesses.Add(1) },
			Fail:     func(int) { fails.Add(1) },
			Solution: func(core.Solution) { sols.Add(1) },
			Snapshot: func(uint64, int) { snaps.Add(1) },
		},
	})
	res, err := eng.Run(context.Background(), root)
	if err != nil {
		t.Fatal(err)
	}
	if guesses.Load() != res.Stats.Guesses {
		t.Errorf("observer guesses = %d, stats = %d", guesses.Load(), res.Stats.Guesses)
	}
	if fails.Load() != res.Stats.Fails {
		t.Errorf("observer fails = %d, stats = %d", fails.Load(), res.Stats.Fails)
	}
	if int(sols.Load()) != len(res.Solutions) {
		t.Errorf("observer solutions = %d, result = %d", sols.Load(), len(res.Solutions))
	}
	if snaps.Load() != res.Stats.Snapshots {
		t.Errorf("observer snapshots = %d, stats = %d", snaps.Load(), res.Stats.Snapshots)
	}
}

// TestDiscardSolutionsStillCounts streams via the hook with buffering off:
// MaxSolutions must still bound the run and the Result stays empty.
func TestDiscardSolutionsStillCounts(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	root, err := queens.NewHostedContext(alloc, 6)
	if err != nil {
		t.Fatal(err)
	}
	var streamed atomic.Int64
	eng := core.New(core.NewHostedMachine(queens.HostedStep(false)), core.Config{
		DiscardSolutions: true,
		MaxSolutions:     2,
		OnSolution:       func(core.Solution) core.Decision { streamed.Add(1); return core.Continue },
	})
	res, err := eng.Run(context.Background(), root)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 0 {
		t.Errorf("buffered %d solutions despite DiscardSolutions", len(res.Solutions))
	}
	if streamed.Load() != 2 {
		t.Errorf("hook saw %d solutions, want 2 (MaxSolutions)", streamed.Load())
	}
	if live := eng.Tree().Live(); live != 0 {
		t.Errorf("snapshot leak: %d live", live)
	}
}
