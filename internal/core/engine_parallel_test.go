package core_test

import (
	"context"
	"errors"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/queens"
	"repro/internal/search"
	"repro/internal/snapshot"
)

// wideStep builds a two-level tree with fanout 16 at every interior node:
// enough simultaneously queued work that, before the MaxNodes fix, four
// workers would all pop-then-count past the cap at once.
func wideStep(env *core.Env) error {
	m := env.Mem()
	base := core.HostedHeapBase
	depth, _ := m.ReadU64(base)
	started, _ := m.ReadU64(base + 8)
	if started == 0 {
		m.WriteU64(base+8, 1)
		env.Guess(16)
		return nil
	}
	depth++
	m.WriteU64(base, depth)
	if depth < 2 {
		env.Guess(16)
		return nil
	}
	env.Fail()
	return nil
}

// TestMaxNodesCapNeverExceededWorkers4 is the regression test for the
// MaxNodes overshoot: the budget must be reserved before the counter
// moves, so Stats.Nodes never exceeds the cap no matter how many workers
// race, and pop-then-stop items are not counted as evaluated.
func TestMaxNodesCapNeverExceededWorkers4(t *testing.T) {
	for _, maxNodes := range []int64{1, 7, 50} {
		alloc := mem.NewFrameAllocator(0)
		root, err := core.NewHostedContext(alloc, 4096)
		if err != nil {
			t.Fatal(err)
		}
		eng := core.New(core.NewHostedMachine(wideStep), core.Config{
			Workers:  4,
			MaxNodes: maxNodes,
		})
		res, err := eng.Run(context.Background(), root)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Nodes > maxNodes {
			t.Errorf("MaxNodes=%d: Stats.Nodes = %d exceeds the cap", maxNodes, res.Stats.Nodes)
		}
		if res.Stats.Nodes == 0 {
			t.Errorf("MaxNodes=%d: no nodes evaluated at all", maxNodes)
		}
		if live := eng.Tree().Live(); live != 0 {
			t.Errorf("MaxNodes=%d: snapshot leak: %d live", maxNodes, live)
		}
		if live := alloc.Live(); live != 0 {
			t.Errorf("MaxNodes=%d: frame leak: %d live", maxNodes, live)
		}
	}
}

// queensBoards runs hosted n-queens with the given config and returns the
// sorted printed boards.
func queensBoards(t *testing.T, n int, cfg core.Config) []string {
	t.Helper()
	alloc := mem.NewFrameAllocator(0)
	root, err := queens.NewHostedContext(alloc, n)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(core.NewHostedMachine(queens.HostedStep(false)), cfg)
	res, err := eng.Run(context.Background(), root)
	if err != nil {
		t.Fatal(err)
	}
	if live := eng.Tree().Live(); live != 0 {
		t.Fatalf("snapshot leak: %d live", live)
	}
	if live := alloc.Live(); live != 0 {
		t.Fatalf("frame leak: %d live", live)
	}
	var out []string
	for _, s := range res.Solutions {
		out = append(out, strings.TrimSpace(string(s.Out)))
	}
	sort.Strings(out)
	return out
}

// TestStealingSolutionSetsIdentical verifies the tentpole's correctness
// contract: the sharded work-stealing scheduler finds exactly the same
// solution set as the single global queue, at every worker count, for
// both stealable policies.
func TestStealingSolutionSetsIdentical(t *testing.T) {
	n := 6
	want := queensBoards(t, n, core.Config{Workers: 1, NoSteal: true})
	if len(want) != queens.Counts[n] {
		t.Fatalf("baseline found %d solutions, want %d", len(want), queens.Counts[n])
	}
	for _, workers := range []int{1, 2, 4} {
		for _, strat := range []core.Strategy{nil, search.NewRandom[*snapshot.State](99)} {
			name := "dfs"
			if strat != nil {
				name = strat.Name()
			}
			got := queensBoards(t, n, core.Config{Workers: workers, Strategy: strat})
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: %d solutions, want %d", name, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d: solution set diverges at %d: %q vs %q",
						name, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestStealSchedulerCountsWork: with several workers on a stealable
// policy, the scheduler's own counters must account for every pop, and
// at least some work must have arrived via the local deques.
func TestStealSchedulerCountsWork(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	root, err := queens.NewHostedContext(alloc, 6)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(core.NewHostedMachine(queens.HostedStep(false)), core.Config{Workers: 4})
	res, err := eng.Run(context.Background(), root)
	if err != nil {
		t.Fatal(err)
	}
	pops := res.Stats.Steals + res.Stats.LocalPops
	if pops == 0 {
		t.Fatal("work-stealing scheduler recorded no pops at all")
	}
	// Run-through evaluates spine nodes without a pop, so pops < Nodes;
	// every pop is either counted or rejected by the node budget, so
	// pops <= Nodes here (no budget configured).
	if pops > res.Stats.Nodes {
		t.Errorf("pops %d > nodes %d", pops, res.Stats.Nodes)
	}
}

// TestParallelCancelStopsStealingWorkers cancels a 4-worker unbounded
// run mid-search; the partial result must come back promptly with every
// snapshot and frame released — the drain path of the sharded scheduler.
func TestParallelCancelStopsStealingWorkers(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	root, err := core.NewHostedContext(alloc, 4096)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var guesses atomic.Int64
	eng := core.New(core.NewHostedMachine(infiniteStep), core.Config{
		Workers: 4,
		Observer: &core.FuncObserver{
			Guess: func(depth int, fanout uint64) {
				if guesses.Add(1) == 100 {
					cancel()
				}
			},
		},
	})
	res, err := eng.Run(ctx, root)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Stats.Nodes == 0 {
		t.Fatal("cancelled run must return partial progress")
	}
	if live := eng.Tree().Live(); live != 0 {
		t.Errorf("snapshot leak after cancel: %d live", live)
	}
	if live := alloc.Live(); live != 0 {
		t.Errorf("frame leak after cancel: %d live", live)
	}
}

// TestParallelMaxSolutionsEarlyStop bounds a 4-worker stealing run by
// solution count; the early stop must drain every deque with no leaked
// references.
func TestParallelMaxSolutionsEarlyStop(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	root, err := queens.NewHostedContext(alloc, 7)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(core.NewHostedMachine(queens.HostedStep(false)), core.Config{
		Workers:      4,
		MaxSolutions: 5,
	})
	res, err := eng.Run(context.Background(), root)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) < 5 {
		t.Errorf("solutions = %d, want >= 5", len(res.Solutions))
	}
	if live := eng.Tree().Live(); live != 0 {
		t.Errorf("snapshot leak after early stop: %d live", live)
	}
	if live := alloc.Live(); live != 0 {
		t.Errorf("frame leak after early stop: %d live", live)
	}
}

// TestParallelSMAStarEvictionVisible runs a memory-bounded 4-worker
// search and asserts the eviction satellite end to end: Stats.Evicted
// and the Observer's OnEvict agree, are nonzero, and eviction releases
// references (Tree accounting drops to zero).
func TestParallelSMAStarEvictionVisible(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	root, err := queens.NewHostedContext(alloc, 6)
	if err != nil {
		t.Fatal(err)
	}
	var observed atomic.Int64
	st := search.NewSMAStar[*snapshot.State](8, func(it core.Ext) { it.Payload.Release() })
	eng := core.New(core.NewHostedMachine(queens.HostedStep(false)), core.Config{
		Workers:  4,
		Strategy: st,
		Observer: &core.FuncObserver{Evict: func(depth int) { observed.Add(1) }},
	})
	res, err := eng.Run(context.Background(), root)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Evicted == 0 {
		t.Error("SM-A* with capacity 8 on queens-6 evicted nothing")
	}
	if observed.Load() != res.Stats.Evicted {
		t.Errorf("Observer saw %d evictions, Stats.Evicted = %d", observed.Load(), res.Stats.Evicted)
	}
	if st.Evicted != res.Stats.Evicted {
		t.Errorf("strategy counted %d evictions, Stats.Evicted = %d", st.Evicted, res.Stats.Evicted)
	}
	if live := eng.Tree().Live(); live != 0 {
		t.Errorf("snapshot leak: %d live", live)
	}
	if live := alloc.Live(); live != 0 {
		t.Errorf("frame leak: %d live", live)
	}
}

// TestParallelCombinedStress combines everything the scheduler must stay
// correct under at Workers>1: a solution bound, SM-A* eviction pressure,
// and an external cancel racing the natural stop, repeated to shake out
// interleavings (the -race build is the real assertion here).
func TestParallelCombinedStress(t *testing.T) {
	for i := 0; i < 8; i++ {
		alloc := mem.NewFrameAllocator(0)
		root, err := queens.NewHostedContext(alloc, 6)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		var fails atomic.Int64
		eng := core.New(core.NewHostedMachine(queens.HostedStep(false)), core.Config{
			Workers:      4,
			MaxSolutions: 3,
			Strategy: search.NewSMAStar[*snapshot.State](4,
				func(it core.Ext) { it.Payload.Release() }),
			Observer: &core.FuncObserver{
				Fail: func(int) {
					if fails.Add(1) == int64(20+i*10) {
						cancel()
					}
				},
			},
		})
		res, err := eng.Run(ctx, root)
		cancel()
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v", i, err)
		}
		if res == nil {
			t.Fatalf("iteration %d: nil result", i)
		}
		if live := eng.Tree().Live(); live != 0 {
			t.Fatalf("iteration %d: snapshot leak: %d live", i, live)
		}
		if live := alloc.Live(); live != 0 {
			t.Fatalf("iteration %d: frame leak: %d live", i, live)
		}
	}
}
