package core_test

import (
	"context"

	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/guest"
	"repro/internal/mem"
	"repro/internal/snapshot"
)

// runNative assembles src, runs it to completion under the engine, and
// returns the result plus the root context's released FS is inaccessible —
// so guests must surface evidence via output or exit status.
func runNative(t *testing.T, src string, cfg core.Config) (*core.Result, *core.VMMachine) {
	t.Helper()
	img, err := guest.AssembleImage(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	as, regs, err := guest.Load(img, mem.NewFrameAllocator(0), guest.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewVMMachine(0)
	eng := core.New(m, cfg)
	res, err := eng.Run(context.Background(), &snapshot.Context{Mem: as, FS: fs.New(), Regs: regs})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res, m
}

func TestGuestFileIO(t *testing.T) {
	res, m := runNative(t, `
.data
path: .asciz "/out.txt"
msg:  .asciz "hello-fs"
buf:  .space 16
.text
_start:
    mov rax, 2          ; open(path, O_CREAT|O_RDWR)
    mov rdi, =path
    mov rsi, 0x42
    syscall
    mov r12, rax        ; fd
    mov rax, 1          ; write(fd, msg, 8)
    mov rdi, r12
    mov rsi, =msg
    mov rdx, 8
    syscall
    mov rax, 8          ; lseek(fd, 0, SET)
    mov rdi, r12
    mov rsi, 0
    mov rdx, 0
    syscall
    mov rax, 0          ; read(fd, buf, 16)
    mov rdi, r12
    mov rsi, =buf
    mov rdx, 16
    syscall
    mov r13, rax        ; bytes read
    mov rax, 3          ; close(fd)
    mov rdi, r12
    syscall
    mov rax, 1          ; write(1, buf, r13) -- echo to stdout
    mov rdi, 1
    mov rsi, =buf
    mov rdx, r13
    syscall
    mov rax, 60
    mov rdi, 0
    syscall
`, core.Config{})
	if len(res.Solutions) != 1 {
		t.Fatalf("solutions = %d (err %v)", len(res.Solutions), res.FirstPathError)
	}
	if got := string(res.Solutions[0].Out); got != "hello-fs" {
		t.Errorf("echoed = %q, want hello-fs", got)
	}
	if m.Syscalls.Load() != 6 {
		t.Errorf("interposed syscalls = %d, want 6", m.Syscalls.Load())
	}
}

func TestGuestPolicyDenial(t *testing.T) {
	res, m := runNative(t, `
.data
path: .asciz "/dev/mem"
.text
_start:
    mov rax, 2
    mov rdi, =path
    mov rsi, 0x42
    syscall             ; must fail ENOTSUP (-95)
    mov rdi, rax
    mov rax, 60
    syscall             ; exit(open result)
`, core.Config{})
	if len(res.Solutions) != 1 {
		t.Fatalf("solutions = %d", len(res.Solutions))
	}
	if got := int64(res.Solutions[0].Status); got != -95 {
		t.Errorf("open(/dev/mem) = %d, want -95 (ENOTSUP)", got)
	}
	if m.Denied.Load() != 1 {
		t.Errorf("denied = %d, want 1", m.Denied.Load())
	}
}

func TestGuestBrk(t *testing.T) {
	res, _ := runNative(t, `
_start:
    mov rax, 12         ; brk(0) -> current
    mov rdi, 0
    syscall
    mov r12, rax
    mov rax, 12         ; brk(cur + 64KiB)
    mov rdi, r12
    add rdi, 65536
    syscall
    mov rbx, rax        ; new break
    storeb rbx, [rbx-1] ; touch the newly granted page
    loadb rcx, [rbx-1]
    mov rax, 60
    mov rdi, 0
    syscall
`, core.Config{})
	if len(res.Solutions) != 1 {
		t.Fatalf("solutions = %d, firstErr=%v", len(res.Solutions), res.FirstPathError)
	}
}

// TestBrkContainedByBacktracking verifies the §5 claim resolution: brk is
// address-space state, so backtracking reverts it with no undo log. The
// guest grows the heap in extension 0 and then fails; extension 1 checks
// the break is back to the parent's value.
func TestBrkContainedByBacktracking(t *testing.T) {
	res, _ := runNative(t, `
_start:
    mov rax, 12         ; r12 = initial brk
    mov rdi, 0
    syscall
    mov r12, rax
    mov rax, 500        ; guess(2)
    mov rdi, 2
    syscall
    cmp rax, 0
    jne check
    mov rax, 12         ; extension 0: grow brk by 1MiB, then fail
    mov rdi, r12
    add rdi, 1048576
    syscall
    mov rax, 501
    syscall
check:                  ; extension 1: brk must equal the snapshot value
    mov rax, 12
    mov rdi, 0
    syscall
    cmp rax, r12
    je ok
    mov rax, 60
    mov rdi, 1          ; exit(1) = leaked brk
    syscall
ok:
    mov rax, 60
    mov rdi, 0
    syscall
`, core.Config{})
	if len(res.Solutions) != 1 {
		t.Fatalf("solutions = %d", len(res.Solutions))
	}
	if res.Solutions[0].Status != 0 {
		t.Error("brk change leaked across backtracking")
	}
}

// TestFileWritesContained: a file written in a failing extension must not
// be visible in a sibling extension (the isolation property of §3.1).
func TestFileWritesContained(t *testing.T) {
	res, _ := runNative(t, `
.data
path: .asciz "/x"
.text
_start:
    mov rax, 500        ; guess(2)
    mov rdi, 2
    syscall
    cmp rax, 0
    jne sibling
    mov rax, 2          ; extension 0: create /x then fail
    mov rdi, =path
    mov rsi, 0x42
    syscall
    mov rax, 501
    syscall
sibling:                ; extension 1: open /x without O_CREAT must ENOENT
    mov rax, 2
    mov rdi, =path
    mov rsi, 2
    syscall
    mov rdi, rax
    mov rax, 60
    syscall
`, core.Config{})
	if len(res.Solutions) != 1 {
		t.Fatalf("solutions = %d", len(res.Solutions))
	}
	if got := int64(res.Solutions[0].Status); got != -2 {
		t.Errorf("sibling open = %d, want -2 (ENOENT): file leaked across candidates", got)
	}
}

func TestGuestCrashIsPathError(t *testing.T) {
	res, _ := runNative(t, `
_start:
    mov rax, 500
    mov rdi, 2
    syscall
    cmp rax, 0
    jne crash
    mov rax, 60         ; extension 0 exits cleanly
    mov rdi, 7
    syscall
crash:
    mov rbx, 0x10       ; extension 1 dereferences unmapped memory
    load rax, [rbx]
    hlt
`, core.Config{})
	if res.Stats.Errors != 1 {
		t.Errorf("errors = %d, want 1", res.Stats.Errors)
	}
	if res.FirstPathError == nil || !strings.Contains(res.FirstPathError.Error(), "fault") {
		t.Errorf("FirstPathError = %v", res.FirstPathError)
	}
	// The healthy sibling still completed.
	if len(res.Solutions) != 1 || res.Solutions[0].Status != 7 {
		t.Errorf("solutions = %v", res.Solutions)
	}
}

func TestVMFuelBudget(t *testing.T) {
	img, err := guest.AssembleImage(`
_start:
spin:
    jmp spin
`)
	if err != nil {
		t.Fatal(err)
	}
	as, regs, err := guest.Load(img, mem.NewFrameAllocator(0), guest.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(core.NewVMMachine(10_000), core.Config{})
	res, err := eng.Run(context.Background(), &snapshot.Context{Mem: as, FS: fs.New(), Regs: regs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Errors != 1 {
		t.Errorf("errors = %d, want 1 (fuel exhaustion)", res.Stats.Errors)
	}
	if res.FirstPathError == nil || !strings.Contains(res.FirstPathError.Error(), "fuel") {
		t.Errorf("FirstPathError = %v", res.FirstPathError)
	}
}

func TestUnknownSyscallENOSYS(t *testing.T) {
	res, _ := runNative(t, `
_start:
    mov rax, 9999
    syscall
    mov rdi, rax
    mov rax, 60
    syscall
`, core.Config{})
	if got := int64(res.Solutions[0].Status); got != -38 {
		t.Errorf("unknown syscall = %d, want -38 (ENOSYS)", got)
	}
}

func TestGetTickDeterministic(t *testing.T) {
	src := `
_start:
    nop
    nop
    mov rax, 96
    syscall
    mov rdi, rax
    mov rax, 60
    syscall
`
	r1, _ := runNative(t, src, core.Config{})
	r2, _ := runNative(t, src, core.Config{})
	if r1.Solutions[0].Status != r2.Solutions[0].Status {
		t.Errorf("gettick nondeterministic: %d vs %d",
			r1.Solutions[0].Status, r2.Solutions[0].Status)
	}
	if r1.Solutions[0].Status == 0 {
		t.Error("gettick returned 0 after retiring instructions")
	}
}

// TestGuestSeekWriteOffsetValidation is the regression test for
// guest-controlled file offsets (fs hardening): lseek far past the file
// bound fails EINVAL instead of parking a poisoned offset, and a write at
// the maximum legal position fails EFBIG instead of wrapping the block
// arithmetic and panicking the host.
func TestGuestSeekWriteOffsetValidation(t *testing.T) {
	res, _ := runNative(t, `
.data
path: .asciz "/f"
msg:  .asciz "xx"
.text
_start:
    mov rax, 2          ; open(path, O_CREAT|O_RDWR)
    mov rdi, =path
    mov rsi, 0x42
    syscall
    mov r12, rax        ; fd

    mov rax, 8          ; lseek(fd, 1<<62, SET) -> EINVAL
    mov rdi, r12
    mov rsi, 1
    shl rsi, 62
    mov rdx, 0
    syscall
    cmp rax, -22
    jne bad

    mov rax, 8          ; lseek(fd, 1<<30, SET) = MaxFileSize -> ok
    mov rdi, r12
    mov rsi, 1
    shl rsi, 30
    mov rdx, 0
    syscall
    mov r13, rax
    cmp r13, 0
    jl bad              ; must not be an errno

    mov rax, 1          ; write(fd, msg, 2) at MaxFileSize -> EFBIG
    mov rdi, r12
    mov rsi, =msg
    mov rdx, 2
    syscall
    cmp rax, -27
    jne bad

    mov rax, 60
    mov rdi, 0
    syscall
bad:
    mov rax, 60
    mov rdi, 1
    syscall
`, core.Config{})
	if len(res.Solutions) != 1 {
		t.Fatalf("solutions = %d, firstErr=%v", len(res.Solutions), res.FirstPathError)
	}
	if res.Solutions[0].Status != 0 {
		t.Errorf("guest observed wrong errnos for out-of-range offsets (exit=%d)",
			res.Solutions[0].Status)
	}
	if res.Stats.Errors != 0 {
		t.Errorf("host-side path errors: %v", res.FirstPathError)
	}
}
