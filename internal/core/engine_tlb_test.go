package core_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/queens"
)

// TestRunTwiceReturnsError enforces the documented "Run may be called at
// most once" contract: a second call must fail loudly instead of reusing
// the drained strategy and stopped state, and must release the root it
// took ownership of.
func TestRunTwiceReturnsError(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	root, err := core.NewHostedContext(alloc, 4096)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(core.NewHostedMachine(func(env *core.Env) error {
		env.Exit(0)
		return nil
	}), core.Config{})
	if _, err := eng.Run(context.Background(), root); err != nil {
		t.Fatalf("first Run: %v", err)
	}

	root2, err := core.NewHostedContext(alloc, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := root2.Mem.WriteU64(core.HostedHeapBase, 1); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), root2)
	if !errors.Is(err, core.ErrEngineReused) {
		t.Fatalf("second Run = %v, want ErrEngineReused", err)
	}
	if res != nil {
		t.Errorf("second Run returned a Result: %+v", res)
	}
	if live := alloc.Live(); live != 0 {
		t.Errorf("second Run leaked %d frames (root2 not released)", live)
	}
}

// TestStatsTLBCounters checks the counter plumbing end to end: the
// engine's aggregate TLB hit/miss numbers must equal the per-step stats
// delivered through the Observer, and a real workload must actually hit.
func TestStatsTLBCounters(t *testing.T) {
	var mu sync.Mutex
	var obsHits, obsMisses int64
	obs := &core.FuncObserver{
		StepStats: func(st mem.Stats) {
			mu.Lock()
			obsHits += st.TLBHits
			obsMisses += st.TLBMisses
			mu.Unlock()
		},
	}
	alloc := mem.NewFrameAllocator(0)
	root, err := queens.NewHostedContext(alloc, 6)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(core.NewHostedMachine(queens.HostedStep(false)),
		core.Config{Workers: 2, Observer: obs})
	res, err := eng.Run(context.Background(), root)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Solutions) != 4 {
		t.Fatalf("solutions = %d, want 4 (6-queens)", len(res.Solutions))
	}
	if res.Stats.TLBHits == 0 || res.Stats.TLBMisses == 0 {
		t.Fatalf("TLB counters empty: %+v", res.Stats)
	}
	mu.Lock()
	defer mu.Unlock()
	if obsHits != res.Stats.TLBHits || obsMisses != res.Stats.TLBMisses {
		t.Errorf("observer saw %d/%d, engine counted %d/%d",
			obsHits, obsMisses, res.Stats.TLBHits, res.Stats.TLBMisses)
	}
}
