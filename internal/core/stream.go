package core

import (
	"context"
	"iter"

	"repro/internal/snapshot"
)

// Solutions takes ownership of root and explores the guest's search space,
// yielding each solution as it surfaces — the pull-based streaming form of
// Run. A caller that wants only the first answer breaks out of the loop;
// the break cancels the underlying run, drains the strategy queues, and
// releases every retained snapshot before the iterator returns, so there
// is no MaxSolutions guesswork and no leaked frames.
//
// When the run ends abnormally — ctx cancelled, deadline expired, or an
// infrastructure failure — the final yield carries the zero Solution and a
// non-nil error. Solutions configures the engine's OnSolution hook and
// solution buffering for streaming (chaining any hook the caller already
// installed), so an Engine drives at most one Solutions or Run call over
// its lifetime.
//
// Snapshot ownership under KeepExitSnapshots: a yielded Solution's Final
// belongs to the consumer, who must Release it; solutions abandoned by an
// early break are released by the iterator. A chained caller hook must
// not release Final itself — the iterator manages ownership even when the
// hook returns Stop.
func (e *Engine) Solutions(ctx context.Context, root *snapshot.Context) iter.Seq2[Solution, error] {
	return func(yield func(Solution, error) bool) {
		if ctx == nil {
			ctx = context.Background()
		}
		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()

		sols := make(chan Solution)
		user := e.cfg.OnSolution
		e.cfg.OnSolution = func(s Solution) Decision {
			if user != nil && user(s) == Stop {
				if s.Final != nil {
					s.Final.Release()
				}
				return Stop
			}
			select {
			case sols <- s:
				return Continue
			case <-runCtx.Done():
				// The consumer broke out of the loop; this in-flight
				// solution is abandoned, so its snapshot is ours to drop.
				if s.Final != nil {
					s.Final.Release()
				}
				return Stop
			}
		}
		e.cfg.DiscardSolutions = true

		done := make(chan error, 1)
		go func() {
			_, err := e.Run(runCtx, root)
			done <- err
		}()
		for {
			select {
			case s := <-sols:
				if !yield(s, nil) {
					cancel()
					<-done // workers finished, queues drained, frames released
					return
				}
			case err := <-done:
				// Every hook send happens before Run returns, so no
				// solutions can be lost here.
				if err != nil {
					yield(Solution{}, err)
				}
				return
			}
		}
	}
}
