package core_test

import (
	"context"

	"testing"

	"repro/internal/core"
	"repro/internal/mem"
)

// benchParallelTree measures engine scaling on a binary tree whose steps
// spin the CPU without touching simulated memory: isolates scheduler
// overhead from memory-substrate effects.
func benchParallelTree(b *testing.B, workers, spin int) {
	benchParallelTreeCfg(b, core.Config{Workers: workers}, spin)
}

func benchParallelTreeCfg(b *testing.B, cfg core.Config, spin int) {
	b.Helper()
	step := func(env *core.Env) error {
		m := env.Mem()
		base := core.HostedHeapBase
		d, _ := m.ReadU64(base)
		started, _ := m.ReadU64(base + 8)
		if started == 0 {
			m.WriteU64(base+8, 1)
			env.Guess(2)
			return nil
		}
		x := uint64(1)
		for i := 0; i < spin; i++ {
			x = x*6364136223846793005 + 1
		}
		if x == 42 { // defeat dead-code elimination
			env.Printf("!")
		}
		d++
		m.WriteU64(base, d)
		if d < 9 {
			env.Guess(2)
		} else {
			env.Fail()
		}
		return nil
	}
	for i := 0; i < b.N; i++ {
		alloc := mem.NewFrameAllocator(0)
		ctx, err := core.NewHostedContext(alloc, 4096)
		if err != nil {
			b.Fatal(err)
		}
		eng := core.New(core.NewHostedMachine(step), cfg)
		if _, err := eng.Run(context.Background(), ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelSpinW1(b *testing.B) { benchParallelTree(b, 1, 50_000) }
func BenchmarkParallelSpinW2(b *testing.B) { benchParallelTree(b, 2, 50_000) }
func BenchmarkParallelSpinW4(b *testing.B) { benchParallelTree(b, 4, 50_000) }

// The NoSteal variants measure the same trees through the single global
// queue — the E12 contrast at the microbenchmark level.
func BenchmarkParallelSpinW2Global(b *testing.B) {
	benchParallelTreeCfg(b, core.Config{Workers: 2, NoSteal: true}, 50_000)
}
func BenchmarkParallelSpinW4Global(b *testing.B) {
	benchParallelTreeCfg(b, core.Config{Workers: 4, NoSteal: true}, 50_000)
}
