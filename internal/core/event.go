package core

import "fmt"

// EventKind classifies how a candidate extension step suspended.
type EventKind uint8

// Event kinds.
const (
	// EventGuess: the guest called sys_guess(n); a new partial candidate
	// must be captured and n extensions scheduled.
	EventGuess EventKind = iota
	// EventFail: the guest called sys_guess_fail(); the path is dead.
	EventFail
	// EventExit: the guest terminated normally (exit or halt).
	EventExit
	// EventStrategy: the guest called sys_guess_strategy(id); only honored
	// before the first guess.
	EventStrategy
	// EventError: the guest crashed (fault, invalid opcode, fuel
	// exhaustion, policy violation). The path is dead; Err explains.
	EventError
)

func (k EventKind) String() string {
	switch k {
	case EventGuess:
		return "guess"
	case EventFail:
		return "fail"
	case EventExit:
		return "exit"
	case EventStrategy:
		return "strategy"
	case EventError:
		return "error"
	}
	return "event?"
}

// Event is the backtracking-relevant outcome of resuming a guest.
type Event struct {
	Kind   EventKind
	N      uint64 // guess arity, or strategy id for EventStrategy
	Hint   int64  // goal-distance hint attached via sys_guess_hint
	Status uint64 // exit status for EventExit
	Err    error  // failure detail for EventError
}

func (e Event) String() string {
	switch e.Kind {
	case EventGuess:
		return fmt.Sprintf("guess(%d) hint=%d", e.N, e.Hint)
	case EventExit:
		return fmt.Sprintf("exit(%d)", e.Status)
	case EventError:
		return fmt.Sprintf("error: %v", e.Err)
	default:
		return e.Kind.String()
	}
}
