package solver

import "math/rand"

// Random3SAT generates a random 3-SAT instance with nVars variables and
// nClauses clauses, deterministically from seed. Clause/variable ratios
// near 4.26 sit at the phase transition; the incremental experiments use
// easier ratios so both arms finish.
func Random3SAT(nVars, nClauses int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]int, 0, nClauses)
	for len(out) < nClauses {
		cl := make([]int, 0, 3)
		used := map[int]bool{}
		for len(cl) < 3 {
			v := rng.Intn(nVars) + 1
			if used[v] {
				continue
			}
			used[v] = true
			if rng.Intn(2) == 0 {
				v = -v
			}
			cl = append(cl, v)
		}
		out = append(out, cl)
	}
	return out
}

// Pigeonhole generates the classic UNSAT pigeonhole principle PHP(n+1, n):
// n+1 pigeons into n holes. Variable p*(n)+h+1 means "pigeon p in hole h".
func Pigeonhole(holes int) [][]int {
	v := func(p, h int) int { return p*holes + h + 1 }
	var out [][]int
	// Every pigeon in some hole.
	for p := 0; p <= holes; p++ {
		cl := make([]int, holes)
		for h := 0; h < holes; h++ {
			cl[h] = v(p, h)
		}
		out = append(out, cl)
	}
	// No two pigeons share a hole.
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 <= holes; p1++ {
			for p2 := p1 + 1; p2 <= holes; p2++ {
				out = append(out, []int{-v(p1, h), -v(p2, h)})
			}
		}
	}
	return out
}

// MaxVar returns the largest variable index in a clause set.
func MaxVar(clauses [][]int) int {
	m := 0
	for _, cl := range clauses {
		for _, l := range cl {
			if l < 0 {
				l = -l
			}
			if l > m {
				m = l
			}
		}
	}
	return m
}

// BruteForce decides satisfiability by enumeration (≤ 24 vars), for
// cross-checking the CDCL solver in property tests.
func BruteForce(clauses [][]int) Status {
	n := MaxVar(clauses)
	if n > 24 {
		panic("solver: brute force limited to 24 vars")
	}
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		for _, cl := range clauses {
			sat := false
			for _, l := range cl {
				v := l
				if v < 0 {
					v = -v
				}
				if (mask>>(v-1))&1 == 1 == (l > 0) {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return Sat
		}
	}
	return Unsat
}
