package solver

import (
	"encoding/binary"
	"fmt"
)

// Marshal serializes the solver's persistent state — problem clauses,
// learned clauses, and saved phases — so a solved instance can live inside
// a candidate's simulated memory or file image. This is what lets the
// multi-path incremental solver service of §3.2 park "problem p, solved"
// behind an opaque snapshot reference and later extend it with q.
//
// Layout (little-endian): magic, nVars, then clause sections, then phases.
func (s *Solver) Marshal() []byte {
	s.cancelUntil(0)
	var buf []byte
	put64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	put64(solverMagic)
	put64(uint64(s.nVars))
	ok := uint64(0)
	if s.ok {
		ok = 1
	}
	put64(ok)
	writeClauses := func(cs [][]lit) {
		put64(uint64(len(cs)))
		for _, cl := range cs {
			put64(uint64(len(cl)))
			for _, l := range cl {
				put64(uint64(int64(l.ext())))
			}
		}
	}
	writeClauses(s.clauses)
	writeClauses(s.learnts)
	// Level-0 facts (the trail bottom) and phases.
	put64(uint64(len(s.trail)))
	for _, l := range s.trail {
		put64(uint64(int64(l.ext())))
	}
	for v := 1; v <= s.nVars; v++ {
		put64(uint64(int64(s.phase[v])))
	}
	return buf
}

const solverMagic = 0x53415453_4e415053 // "SNAPSATS"

// Unmarshal reconstructs a solver from Marshal output.
func Unmarshal(data []byte) (*Solver, error) {
	off := 0
	get64 := func() (uint64, error) {
		if off+8 > len(data) {
			return 0, fmt.Errorf("solver: truncated state at %d", off)
		}
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return v, nil
	}
	magic, err := get64()
	if err != nil || magic != solverMagic {
		return nil, fmt.Errorf("solver: bad state magic")
	}
	nv, err := get64()
	if err != nil {
		return nil, err
	}
	okFlag, err := get64()
	if err != nil {
		return nil, err
	}
	s := New(int(nv))
	readClauses := func(addLearnt bool) error {
		n, err := get64()
		if err != nil {
			return err
		}
		for i := uint64(0); i < n; i++ {
			ln, err := get64()
			if err != nil {
				return err
			}
			ext := make([]int, ln)
			for j := range ext {
				v, err := get64()
				if err != nil {
					return err
				}
				ext[j] = int(int64(v))
			}
			if err := s.AddClause(ext...); err != nil {
				return err
			}
		}
		return nil
	}
	if err := readClauses(false); err != nil {
		return nil, err
	}
	// Learned clauses re-enter as ordinary clauses: they are logical
	// consequences, so correctness is unaffected and their propagation
	// power is preserved.
	if err := readClauses(true); err != nil {
		return nil, err
	}
	nFacts, err := get64()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nFacts; i++ {
		v, err := get64()
		if err != nil {
			return nil, err
		}
		if err := s.AddClause(int(int64(v))); err != nil {
			return nil, err
		}
	}
	for v := 1; v <= int(nv); v++ {
		ph, err := get64()
		if err != nil {
			return nil, err
		}
		if v < len(s.phase) {
			s.phase[v] = int8(int64(ph))
		}
	}
	if okFlag == 0 {
		s.ok = false
	}
	return s, nil
}
