package solver

import (
	"encoding/binary"
	"fmt"
	"slices"
)

// Marshal serializes the solver's persistent state — problem clauses,
// learned clauses, and saved phases — so a solved instance can live inside
// a candidate's simulated memory or file image. This is what lets the
// multi-path incremental solver service of §3.2 park "problem p, solved"
// behind an opaque snapshot reference and later extend it with q.
//
// The byte layout is built for block-level CoW sharing between a parked
// parent state and its extensions (fs.UpdateFile): the most stable bytes
// come first and everything volatile sits at the end.
//
//   - Sections, in order (all words little-endian uint64): problem-clause
//     data, learned-clause data, level-0 trail literals, phases, then a
//     fixed-size footer [nClauses, nLearnts, nFacts, nVars, ok, magic].
//     An extension appends clauses, so the parent's clause bytes are a
//     bytewise prefix of the child's and their shared blocks stay shared.
//   - No section begins with its own count — counts live in the footer —
//     so adding a clause shifts nothing before the learnt section.
//   - Literals are emitted in canonical (sorted) order: propagation swaps
//     watched literals inside clauses, so without canonicalization two
//     solvers holding the same logical clauses would marshal to different
//     bytes. Unmarshal rebuilds watches through AddClause, which accepts
//     any literal order, so this changes no semantics.
func (s *Solver) Marshal() []byte {
	s.cancelUntil(0)
	var buf []byte
	put64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	writeClauses := func(cs [][]lit) {
		var tmp []int64
		for _, cl := range cs {
			put64(uint64(len(cl)))
			tmp = tmp[:0]
			for _, l := range cl {
				tmp = append(tmp, int64(l.ext()))
			}
			slices.Sort(tmp)
			for _, v := range tmp {
				put64(uint64(v))
			}
		}
	}
	writeClauses(s.clauses)
	writeClauses(s.learnts)
	// Level-0 facts (the trail bottom) and phases.
	for _, l := range s.trail {
		put64(uint64(int64(l.ext())))
	}
	for v := 1; v <= s.nVars; v++ {
		put64(uint64(int64(s.phase[v])))
	}
	// Footer.
	put64(uint64(len(s.clauses)))
	put64(uint64(len(s.learnts)))
	put64(uint64(len(s.trail)))
	put64(uint64(s.nVars))
	ok := uint64(0)
	if s.ok {
		ok = 1
	}
	put64(ok)
	put64(solverMagic)
	return buf
}

const solverMagic = 0x53415453_4e415053 // "SNAPSATS"

// footerWords is the fixed trailer size of the Marshal format.
const footerWords = 6

// Unmarshal reconstructs a solver from Marshal output.
func Unmarshal(data []byte) (*Solver, error) {
	if len(data) < footerWords*8 || len(data)%8 != 0 {
		return nil, fmt.Errorf("solver: truncated state (%d bytes)", len(data))
	}
	foot := len(data) - footerWords*8
	ftr := func(i int) uint64 { return binary.LittleEndian.Uint64(data[foot+8*i:]) }
	nClauses, nLearnts, nFacts := ftr(0), ftr(1), ftr(2)
	nv, okFlag, magic := ftr(3), ftr(4), ftr(5)
	if magic != solverMagic {
		return nil, fmt.Errorf("solver: bad state magic")
	}
	// Every count must fit the body it describes: the phases section alone
	// needs nv words, and each clause/fact at least one. Rejecting here
	// keeps a corrupt footer from sizing the solver (New allocates O(nv))
	// or the section loops off untrusted numbers.
	if nv > uint64(foot)/8 || nClauses > uint64(foot)/8 || nLearnts > uint64(foot)/8 || nFacts > uint64(foot)/8 {
		return nil, fmt.Errorf("solver: footer counts exceed state size")
	}

	off := 0
	get64 := func() (uint64, error) {
		if off+8 > foot {
			return 0, fmt.Errorf("solver: truncated state at %d", off)
		}
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return v, nil
	}
	s := New(int(nv))
	readClauses := func(n uint64) error {
		for i := uint64(0); i < n; i++ {
			ln, err := get64()
			if err != nil {
				return err
			}
			if ln > uint64(foot-off)/8 {
				return fmt.Errorf("solver: clause length %d overruns state", ln)
			}
			ext := make([]int, ln)
			for j := range ext {
				v, err := get64()
				if err != nil {
					return err
				}
				l := int64(v)
				// A well-formed state never names a variable beyond
				// nVars (Marshal's nVars covers every clause); an
				// out-of-range literal would make AddClause allocate
				// O(|literal|) off corrupt bytes.
				if l == 0 || l > int64(nv) || l < -int64(nv) {
					return fmt.Errorf("solver: literal %d out of range for %d vars", l, nv)
				}
				ext[j] = int(l)
			}
			if err := s.AddClause(ext...); err != nil {
				return err
			}
		}
		return nil
	}
	if err := readClauses(nClauses); err != nil {
		return nil, err
	}
	// Learned clauses re-enter as ordinary clauses: they are logical
	// consequences, so correctness is unaffected and their propagation
	// power is preserved.
	if err := readClauses(nLearnts); err != nil {
		return nil, err
	}
	for i := uint64(0); i < nFacts; i++ {
		v, err := get64()
		if err != nil {
			return nil, err
		}
		l := int64(v)
		if l == 0 || l > int64(nv) || l < -int64(nv) {
			return nil, fmt.Errorf("solver: fact literal %d out of range for %d vars", l, nv)
		}
		if err := s.AddClause(int(l)); err != nil {
			return nil, err
		}
	}
	for v := 1; v <= int(nv); v++ {
		ph, err := get64()
		if err != nil {
			return nil, err
		}
		if v < len(s.phase) {
			s.phase[v] = int8(int64(ph))
		}
	}
	// The footer counts must account for every body byte: trailing data
	// means the counts are inconsistent with the sections, and a solver
	// silently missing constraints could answer sat for an unsat problem.
	if off != foot {
		return nil, fmt.Errorf("solver: %d state bytes unaccounted for by footer counts", foot-off)
	}
	if okFlag == 0 {
		s.ok = false
	}
	return s, nil
}
