package solver

import "testing"

func TestMarshalRoundTrip(t *testing.T) {
	s := New(0)
	clauses := Random3SAT(40, 120, 17)
	for _, cl := range clauses {
		s.AddClause(cl...)
	}
	v1 := s.Solve(0)

	re, err := Unmarshal(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if re.NumVars() != s.NumVars() {
		t.Errorf("vars %d vs %d", re.NumVars(), s.NumVars())
	}
	if got := re.Solve(0); got != v1 {
		t.Errorf("verdict after round trip = %v, want %v", got, v1)
	}
	if v1 == Sat {
		if err := Verify(re.Model(), clauses); err != nil {
			t.Errorf("restored model invalid: %v", err)
		}
	}
	// Extending the restored solver agrees with extending the original.
	extra := Random3SAT(40, 30, 18)
	for _, cl := range extra {
		s.AddClause(cl...)
		re.AddClause(cl...)
	}
	if a, b := s.Solve(0), re.Solve(0); a != b {
		t.Errorf("post-extension verdicts diverge: %v vs %v", a, b)
	}
}

func TestMarshalPreservesUnsat(t *testing.T) {
	s := New(1)
	s.AddClause(1)
	s.AddClause(-1)
	if s.Solve(0) != Unsat {
		t.Fatal("setup")
	}
	re, err := Unmarshal(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if re.Solve(0) != Unsat {
		t.Error("unsat lost in round trip")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil data accepted")
	}
	if _, err := Unmarshal([]byte("garbage not long enough")); err == nil {
		t.Error("garbage accepted")
	}
	s := New(3)
	s.AddClause(1, 2)
	data := s.Marshal()
	if _, err := Unmarshal(data[:len(data)-4]); err == nil {
		t.Error("truncated data accepted")
	}
}
