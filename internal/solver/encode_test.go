package solver

import (
	"encoding/binary"
	"testing"
)

func TestMarshalRoundTrip(t *testing.T) {
	s := New(0)
	clauses := Random3SAT(40, 120, 17)
	for _, cl := range clauses {
		s.AddClause(cl...)
	}
	v1 := s.Solve(0)

	re, err := Unmarshal(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if re.NumVars() != s.NumVars() {
		t.Errorf("vars %d vs %d", re.NumVars(), s.NumVars())
	}
	if got := re.Solve(0); got != v1 {
		t.Errorf("verdict after round trip = %v, want %v", got, v1)
	}
	if v1 == Sat {
		if err := Verify(re.Model(), clauses); err != nil {
			t.Errorf("restored model invalid: %v", err)
		}
	}
	// Extending the restored solver agrees with extending the original.
	extra := Random3SAT(40, 30, 18)
	for _, cl := range extra {
		s.AddClause(cl...)
		re.AddClause(cl...)
	}
	if a, b := s.Solve(0), re.Solve(0); a != b {
		t.Errorf("post-extension verdicts diverge: %v vs %v", a, b)
	}
}

func TestMarshalPreservesUnsat(t *testing.T) {
	s := New(1)
	s.AddClause(1)
	s.AddClause(-1)
	if s.Solve(0) != Unsat {
		t.Fatal("setup")
	}
	re, err := Unmarshal(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if re.Solve(0) != Unsat {
		t.Error("unsat lost in round trip")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil data accepted")
	}
	if _, err := Unmarshal([]byte("garbage not long enough")); err == nil {
		t.Error("garbage accepted")
	}
	s := New(3)
	s.AddClause(1, 2)
	data := s.Marshal()
	if _, err := Unmarshal(data[:len(data)-4]); err == nil {
		t.Error("truncated data accepted")
	}
}

// TestUnmarshalCorruptFooter: footer words inconsistent with the body must
// error out, not panic, OOM, or silently drop constraints — a solversvc
// state file is long-lived and a corrupt one must fail the Extend cleanly.
func TestUnmarshalCorruptFooter(t *testing.T) {
	s := New(3)
	s.AddClause(1, 2)
	s.AddClause(-1, 3)
	s.Solve(0)
	good := s.Marshal()

	corrupt := func(word int, v uint64) []byte {
		d := append([]byte{}, good...)
		binary.LittleEndian.PutUint64(d[len(d)-6*8+word*8:], v)
		return d
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"huge nVars", corrupt(3, 1<<50)},
		{"huge nClauses", corrupt(0, 1<<50)},
		{"huge nFacts", corrupt(2, 1<<50)},
		{"undercounted clauses (trailing bytes)", corrupt(0, 0)},
	}
	for _, tc := range cases {
		if _, err := Unmarshal(tc.data); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	// An out-of-range literal in the body (first clause word after the
	// two-literal header... first clause begins at word 0: len=2).
	d := append([]byte{}, good...)
	binary.LittleEndian.PutUint64(d[8:], uint64(1)<<50) // first literal
	if _, err := Unmarshal(d); err == nil {
		t.Error("out-of-range literal accepted")
	}

	if _, err := Unmarshal(good); err != nil {
		t.Errorf("pristine state rejected: %v", err)
	}
}
