// Package solver implements a CDCL SAT solver with watched literals,
// first-UIP conflict learning, phase saving, and activity-ordered
// decisions: the stand-in for Z3 in the paper's incremental-solving
// argument (§2). Clause addition is monotonic — exactly the p, then p∧q
// pattern — so a solved instance extends incrementally: learned clauses and
// saved phases carry over, which is the "leverage the intermediate data
// structures of previously solved constraints" behaviour the paper's
// lightweight snapshots capture wholesale.
package solver

import (
	"errors"
	"fmt"
	"sort"
)

// Status is a solver verdict.
type Status int8

// Verdicts.
const (
	// Unknown: the conflict budget expired before a verdict.
	Unknown Status = iota
	// Sat: a satisfying assignment was found (see Model).
	Sat
	// Unsat: the clause set is unsatisfiable.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

// Stats counts solver work.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Learned      int64
	Restarts     int64
}

// lit encoding: variable v (1-based) → 2v for +v, 2v+1 for ¬v.
type lit int32

func toLit(l int) lit {
	if l > 0 {
		return lit(2 * l)
	}
	return lit(-2*l + 1)
}

func (l lit) neg() lit      { return l ^ 1 }
func (l lit) variable() int { return int(l >> 1) }
func (l lit) sign() bool    { return l&1 == 0 } // true for positive
func (l lit) ext() int {
	if l.sign() {
		return l.variable()
	}
	return -l.variable()
}

// clause reference: index into clauses (>=0) or learnts (enc -1-i).
type cref int32

const crefNone cref = -1 << 30

type watch struct {
	c       cref
	blocker lit
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	nVars   int
	clauses [][]lit
	learnts [][]lit
	ok      bool // false once an empty clause is derived at level 0

	watches  [][]watch // indexed by lit
	assign   []int8    // by var: 0 unset, +1 true, -1 false
	level    []int32   // by var
	reason   []cref    // by var
	phase    []int8    // saved phase by var
	activity []float64 // by var
	varInc   float64

	trail    []lit
	trailLim []int
	qhead    int

	seen  []bool // scratch for conflict analysis
	Stats Stats
}

// New returns a solver over variables 1..nVars (growable via AddVar).
func New(nVars int) *Solver {
	s := &Solver{ok: true, varInc: 1}
	s.grow(nVars)
	return s
}

// NumVars returns the current variable count.
func (s *Solver) NumVars() int { return s.nVars }

// NumClauses returns the number of problem clauses.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NumLearnts returns the number of retained learned clauses.
func (s *Solver) NumLearnts() int { return len(s.learnts) }

func (s *Solver) grow(nVars int) {
	if nVars <= s.nVars {
		return
	}
	s.nVars = nVars
	for len(s.watches) < 2*nVars+2 {
		s.watches = append(s.watches, nil)
	}
	for len(s.assign) < nVars+1 {
		s.assign = append(s.assign, 0)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, crefNone)
		s.phase = append(s.phase, -1)
		s.activity = append(s.activity, 0)
		s.seen = append(s.seen, false)
	}
}

// AddVar ensures variable v exists.
func (s *Solver) AddVar(v int) { s.grow(v) }

func (s *Solver) valueLit(l lit) int8 {
	v := s.assign[l.variable()]
	if v == 0 {
		return 0
	}
	if l.sign() {
		return v
	}
	return -v
}

// AddClause adds a clause of external literals (±var). It returns an error
// on malformed input. Adding clauses resets the solver to decision level 0
// but keeps learned clauses and phases (monotonic incrementality).
func (s *Solver) AddClause(extLits ...int) error {
	if !s.ok {
		return nil // already UNSAT; additional clauses are irrelevant
	}
	s.cancelUntil(0)
	cl := make([]lit, 0, len(extLits))
	for _, e := range extLits {
		if e == 0 {
			return errors.New("solver: literal 0")
		}
		v := e
		if v < 0 {
			v = -v
		}
		s.grow(v)
		cl = append(cl, toLit(e))
	}
	// Normalize: sort, dedupe, drop tautologies, drop false lits at L0.
	sort.Slice(cl, func(i, j int) bool { return cl[i] < cl[j] })
	out := cl[:0]
	var prev lit = -1
	for _, l := range cl {
		if l == prev {
			continue
		}
		if prev >= 0 && l == prev.neg() {
			return nil // tautology: x ∨ ¬x
		}
		switch s.valueLit(l) {
		case 1:
			return nil // satisfied at level 0
		case -1:
			continue // falsified at level 0: drop the literal
		}
		out = append(out, l)
		prev = l
	}
	cl = out
	switch len(cl) {
	case 0:
		s.ok = false
		return nil
	case 1:
		s.enqueue(cl[0], crefNone)
		if s.propagate() != crefNone {
			s.ok = false
		}
		return nil
	}
	s.attach(cref(len(s.clauses)), cl)
	s.clauses = append(s.clauses, cl)
	return nil
}

func (s *Solver) clauseAt(c cref) []lit {
	if c >= 0 {
		return s.clauses[c]
	}
	return s.learnts[-1-int(c)]
}

func (s *Solver) attach(c cref, cl []lit) {
	s.watches[cl[0].neg()] = append(s.watches[cl[0].neg()], watch{c: c, blocker: cl[1]})
	s.watches[cl[1].neg()] = append(s.watches[cl[1].neg()], watch{c: c, blocker: cl[0]})
}

func (s *Solver) enqueue(l lit, from cref) {
	v := l.variable()
	if l.sign() {
		s.assign[v] = 1
	} else {
		s.assign[v] = -1
	}
	s.level[v] = int32(len(s.trailLim))
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns the conflicting clause
// reference or crefNone.
func (s *Solver) propagate() cref {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++
		ws := s.watches[p]
		kept := ws[:0]
		var conflict cref = crefNone
		for wi := 0; wi < len(ws); wi++ {
			w := ws[wi]
			if conflict != crefNone {
				kept = append(kept, ws[wi:]...)
				break
			}
			if s.valueLit(w.blocker) == 1 {
				kept = append(kept, w)
				continue
			}
			cl := s.clauseAt(w.c)
			// Ensure cl[1] is the falsified watch (p is ¬cl[i]).
			if cl[0].neg() == p {
				cl[0], cl[1] = cl[1], cl[0]
			}
			if s.valueLit(cl[0]) == 1 {
				kept = append(kept, watch{c: w.c, blocker: cl[0]})
				continue
			}
			// Find a new literal to watch.
			found := false
			for i := 2; i < len(cl); i++ {
				if s.valueLit(cl[i]) != -1 {
					cl[1], cl[i] = cl[i], cl[1]
					s.watches[cl[1].neg()] = append(s.watches[cl[1].neg()], watch{c: w.c, blocker: cl[0]})
					found = true
					break
				}
			}
			if found {
				continue // watch moved; drop from this list
			}
			kept = append(kept, w)
			if s.valueLit(cl[0]) == -1 {
				conflict = w.c // conflict
			} else {
				s.enqueue(cl[0], w.c) // unit
			}
		}
		s.watches[p] = kept
		if conflict != crefNone {
			return conflict
		}
	}
	return crefNone
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].variable()
		s.phase[v] = s.assign[v] // phase saving
		s.assign[v] = 0
		s.reason[v] = crefNone
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

// analyze performs first-UIP learning; returns the learned clause (with the
// asserting literal first) and the backjump level.
func (s *Solver) analyze(conflict cref) ([]lit, int) {
	learned := []lit{0} // slot for the asserting literal
	counter := 0
	var p lit = -1
	idx := len(s.trail) - 1

	c := conflict
	for {
		cl := s.clauseAt(c)
		start := 0
		if p != -1 {
			start = 1 // skip the asserting literal of the reason
		}
		for _, q := range cl[start:] {
			v := q.variable()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if int(s.level[v]) == s.decisionLevel() {
				counter++
			} else {
				learned = append(learned, q)
			}
		}
		// Pick the next trail literal seen in the conflict graph.
		for !s.seen[s.trail[idx].variable()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.variable()
		s.seen[v] = false
		counter--
		if counter == 0 {
			break
		}
		c = s.reason[v]
	}
	learned[0] = p.neg()
	// Compute backjump level = max level among the other literals.
	back := 0
	for i := 1; i < len(learned); i++ {
		if int(s.level[learned[i].variable()]) > back {
			back = int(s.level[learned[i].variable()])
		}
	}
	// Move a literal of the backjump level into watch position 1.
	for i := 1; i < len(learned); i++ {
		if int(s.level[learned[i].variable()]) == back {
			learned[1], learned[i] = learned[i], learned[1]
			break
		}
	}
	for i := 1; i < len(learned); i++ {
		s.seen[learned[i].variable()] = false
	}
	return learned, back
}

func (s *Solver) pickBranchVar() int {
	best, bestAct := 0, -1.0
	for v := 1; v <= s.nVars; v++ {
		if s.assign[v] == 0 && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	return best
}

// Solve searches for a verdict within maxConflicts (0 = unlimited).
func (s *Solver) Solve(maxConflicts int64) Status {
	if !s.ok {
		return Unsat
	}
	s.cancelUntil(0)
	if s.propagate() != crefNone {
		s.ok = false
		return Unsat
	}
	conflicts := int64(0)
	restartAt := int64(100)
	for {
		conflict := s.propagate()
		if conflict != crefNone {
			s.Stats.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learned, back := s.analyze(conflict)
			s.cancelUntil(back)
			if len(learned) == 1 {
				s.enqueue(learned[0], crefNone)
			} else {
				c := cref(-1 - len(s.learnts))
				s.learnts = append(s.learnts, learned)
				s.attach(c, learned)
				s.enqueue(learned[0], c)
				s.Stats.Learned++
			}
			s.varInc *= 1.0 / 0.95
			if maxConflicts > 0 && conflicts >= maxConflicts {
				s.cancelUntil(0)
				return Unknown
			}
			if conflicts >= restartAt {
				restartAt += restartAt / 2
				s.Stats.Restarts++
				s.cancelUntil(0)
			}
			continue
		}
		v := s.pickBranchVar()
		if v == 0 {
			return Sat // complete assignment
		}
		s.Stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		l := toLit(v)
		if s.phase[v] == -1 {
			l = l.neg()
		}
		s.enqueue(l, crefNone)
	}
}

// Model returns the satisfying assignment after Sat: index = var, value =
// assignment. Index 0 is unused.
func (s *Solver) Model() []bool {
	m := make([]bool, s.nVars+1)
	for v := 1; v <= s.nVars; v++ {
		m[v] = s.assign[v] == 1
	}
	return m
}

// Verify checks a model against a clause set (external literals).
func Verify(model []bool, clauses [][]int) error {
	for i, cl := range clauses {
		ok := false
		for _, l := range cl {
			v := l
			if v < 0 {
				v = -v
			}
			if v < len(model) && (l > 0) == model[v] {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("solver: clause %d unsatisfied", i)
		}
	}
	return nil
}
