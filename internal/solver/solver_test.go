package solver

import (
	"math/rand"
	"strings"
	"testing"
)

func solveClauses(t *testing.T, clauses [][]int) (*Solver, Status) {
	t.Helper()
	s := New(MaxVar(clauses))
	for _, cl := range clauses {
		if err := s.AddClause(cl...); err != nil {
			t.Fatalf("AddClause(%v): %v", cl, err)
		}
	}
	return s, s.Solve(0)
}

func TestTrivial(t *testing.T) {
	s := New(2)
	s.AddClause(1)
	s.AddClause(-1, 2)
	if got := s.Solve(0); got != Sat {
		t.Fatalf("status = %v", got)
	}
	m := s.Model()
	if !m[1] || !m[2] {
		t.Errorf("model = %v", m)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New(1)
	s.AddClause(1)
	s.AddClause(-1)
	if got := s.Solve(0); got != Unsat {
		t.Fatalf("x ∧ ¬x = %v", got)
	}
	// Adding after UNSAT stays UNSAT.
	s.AddClause(2)
	if got := s.Solve(0); got != Unsat {
		t.Fatalf("post-unsat = %v", got)
	}
}

func TestTautologyDropped(t *testing.T) {
	s := New(2)
	if err := s.AddClause(1, -1); err != nil {
		t.Fatal(err)
	}
	if s.NumClauses() != 0 {
		t.Errorf("tautology stored")
	}
	if got := s.Solve(0); got != Sat {
		t.Errorf("status = %v", got)
	}
}

func TestBadLiteral(t *testing.T) {
	s := New(1)
	if err := s.AddClause(0); err == nil {
		t.Error("literal 0 accepted")
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	for holes := 2; holes <= 5; holes++ {
		_, got := solveClauses(t, Pigeonhole(holes))
		if got != Unsat {
			t.Errorf("PHP(%d+1,%d) = %v, want unsat", holes, holes, got)
		}
	}
}

func TestGraphColoringStyle(t *testing.T) {
	// Triangle 2-colorable? No. Encode: each node one of 2 colors, adjacent
	// differ. v(n,c) = 2n+c+1 for n in 0..2, c in 0..1.
	v := func(n, c int) int { return 2*n + c + 1 }
	var cls [][]int
	for n := 0; n < 3; n++ {
		cls = append(cls, []int{v(n, 0), v(n, 1)})
		cls = append(cls, []int{-v(n, 0), -v(n, 1)})
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		for c := 0; c < 2; c++ {
			cls = append(cls, []int{-v(e[0], c), -v(e[1], c)})
		}
	}
	if _, got := solveClauses(t, cls); got != Unsat {
		t.Error("triangle 2-coloring should be unsat")
	}
}

func TestModelVerifies(t *testing.T) {
	clauses := Random3SAT(50, 150, 7)
	s, got := solveClauses(t, clauses)
	if got == Sat {
		if err := Verify(s.Model(), clauses); err != nil {
			t.Fatalf("model fails: %v", err)
		}
	}
}

func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		nVars := rng.Intn(10) + 3
		nClauses := rng.Intn(40) + 5
		clauses := Random3SAT(nVars, nClauses, rng.Int63())
		want := BruteForce(clauses)
		s, got := solveClauses(t, clauses)
		if got != want {
			t.Fatalf("trial %d: cdcl=%v brute=%v (%v)", trial, got, want, clauses)
		}
		if got == Sat {
			if err := Verify(s.Model(), clauses); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

func TestIncrementalMonotonic(t *testing.T) {
	// Solve p, then add q clauses one batch at a time; verdicts must match
	// solving from scratch, and learned clauses accumulate.
	base := Random3SAT(40, 100, 3)
	extra := Random3SAT(40, 60, 4)

	inc := New(40)
	for _, cl := range base {
		inc.AddClause(cl...)
	}
	st1 := inc.Solve(0)
	learnedAfterP := inc.NumLearnts()

	for i := 0; i < len(extra); i += 10 {
		for _, cl := range extra[i:min(i+10, len(extra))] {
			inc.AddClause(cl...)
		}
		got := inc.Solve(0)
		scratch := New(40)
		for _, cl := range base {
			scratch.AddClause(cl...)
		}
		for _, cl := range extra[:min(i+10, len(extra))] {
			scratch.AddClause(cl...)
		}
		want := scratch.Solve(0)
		if got != want {
			t.Fatalf("batch %d: incremental=%v scratch=%v", i, got, want)
		}
	}
	_ = st1
	_ = learnedAfterP
}

func TestConflictBudget(t *testing.T) {
	s := New(0)
	for _, cl := range Pigeonhole(7) {
		s.AddClause(cl...)
	}
	if got := s.Solve(5); got != Unknown {
		// PHP(8,7) takes far more than 5 conflicts for a resolution solver.
		t.Errorf("budgeted solve = %v, want unknown", got)
	}
	if got := s.Solve(0); got != Unsat {
		t.Errorf("full solve = %v", got)
	}
}

func TestStatsAccumulate(t *testing.T) {
	s, got := solveClauses(t, Pigeonhole(4))
	if got != Unsat {
		t.Fatal("php4 not unsat")
	}
	if s.Stats.Conflicts == 0 || s.Stats.Decisions == 0 || s.Stats.Propagations == 0 {
		t.Errorf("stats = %+v", s.Stats)
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	clauses := Random3SAT(20, 50, 9)
	var sb strings.Builder
	if err := WriteDIMACS(&sb, 20, clauses); err != nil {
		t.Fatal(err)
	}
	nVars, parsed, err := ParseDIMACS(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if nVars != 20 || len(parsed) != len(clauses) {
		t.Fatalf("nVars=%d clauses=%d", nVars, len(parsed))
	}
	for i := range clauses {
		if len(parsed[i]) != len(clauses[i]) {
			t.Fatalf("clause %d differs", i)
		}
		for j := range clauses[i] {
			if parsed[i][j] != clauses[i][j] {
				t.Fatalf("clause %d lit %d: %d vs %d", i, j, parsed[i][j], clauses[i][j])
			}
		}
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	for _, src := range []string{
		"p cnf x 3\n1 0\n",
		"p dnf 3 1\n1 0\n",
		"p cnf 3 1\n1 z 0\n",
	} {
		if _, _, err := ParseDIMACS(strings.NewReader(src)); err == nil {
			t.Errorf("ParseDIMACS(%q) succeeded", src)
		}
	}
	// Comments and missing trailing zero tolerated.
	n, cls, err := ParseDIMACS(strings.NewReader("c hi\np cnf 2 1\n1 -2"))
	if err != nil || n != 2 || len(cls) != 1 {
		t.Errorf("lenient parse: %d %v %v", n, cls, err)
	}
}

func TestGrowOnTheFly(t *testing.T) {
	s := New(0)
	s.AddClause(5, -7)
	if s.NumVars() < 7 {
		t.Errorf("nVars = %d", s.NumVars())
	}
	if got := s.Solve(0); got != Sat {
		t.Errorf("status = %v", got)
	}
}
