package solver

import (
	"bytes"
	"testing"
)

// FuzzSolverUnmarshal fuzzes the solver-state decoder with a corpus
// seeded from real Marshal output. The contract under fuzzing: corrupt
// input errors — it never panics, hangs, or allocates far beyond the
// input size (footer counts are validated against the body before they
// size anything) — and accepted input must survive a Marshal/Unmarshal
// round-trip bit-exactly (Marshal canonicalizes, so a second round trip
// is a fixed point).
func FuzzSolverUnmarshal(f *testing.F) {
	f.Add([]byte{})
	f.Add(New(0).Marshal())

	s := New(4)
	for _, cl := range [][]int{{1, 2}, {-1, 3}, {-2, -3, 4}, {2, -4}} {
		if err := s.AddClause(cl...); err != nil {
			f.Fatal(err)
		}
	}
	if got := s.Solve(0); got != Sat {
		f.Fatalf("seed solve = %v", got)
	}
	f.Add(s.Marshal())

	// A solved random instance with learned clauses and saved phases.
	r := New(30)
	for _, cl := range Random3SAT(30, 120, 11) {
		if err := r.AddClause(cl...); err != nil {
			f.Fatal(err)
		}
	}
	r.Solve(0)
	f.Add(r.Marshal())

	// An unsat instance (ok flag exercised).
	u := New(1)
	u.AddClause(1)
	u.AddClause(-1)
	u.Solve(0)
	f.Add(u.Marshal())

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Accepted state must be internally consistent enough to
		// re-marshal, and the canonical form must be a fixed point.
		once := s.Marshal()
		s2, err := Unmarshal(once)
		if err != nil {
			t.Fatalf("re-unmarshal of accepted state failed: %v", err)
		}
		twice := s2.Marshal()
		if !bytes.Equal(once, twice) {
			t.Fatal("canonical marshal is not a fixed point")
		}
	})
}
