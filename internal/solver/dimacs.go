package solver

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a CNF formula in DIMACS format.
func ParseDIMACS(r io.Reader) (nVars int, clauses [][]int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var cur []int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return 0, nil, fmt.Errorf("solver: bad problem line %q", line)
			}
			if nVars, err = strconv.Atoi(fields[2]); err != nil {
				return 0, nil, fmt.Errorf("solver: bad var count: %v", err)
			}
			continue
		}
		for _, f := range strings.Fields(line) {
			v, err := strconv.Atoi(f)
			if err != nil {
				return 0, nil, fmt.Errorf("solver: bad literal %q", f)
			}
			if v == 0 {
				clauses = append(clauses, cur)
				cur = nil
				continue
			}
			cur = append(cur, v)
		}
	}
	if len(cur) > 0 {
		clauses = append(clauses, cur)
	}
	if n := MaxVar(clauses); n > nVars {
		nVars = n
	}
	return nVars, clauses, sc.Err()
}

// WriteDIMACS renders a CNF formula in DIMACS format.
func WriteDIMACS(w io.Writer, nVars int, clauses [][]int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p cnf %d %d\n", nVars, len(clauses))
	for _, cl := range clauses {
		for _, l := range cl {
			fmt.Fprintf(bw, "%d ", l)
		}
		fmt.Fprintln(bw, 0)
	}
	return bw.Flush()
}
