package symexec

import (
	"fmt"

	"repro/internal/interpose"
	"repro/internal/snapshot"
	"repro/internal/vm"
)

// sval is a register value: concrete unless e is non-nil.
type sval struct {
	c uint64
	e *Expr
}

func conc(v uint64) sval { return sval{c: v} }

func symv(e *Expr) sval {
	if v, ok := e.IsConst(); ok {
		return sval{c: v}
	}
	return sval{e: e}
}

func (v sval) isConc() bool { return v.e == nil }

func (v sval) expr() *Expr {
	if v.e != nil {
		return v.e
	}
	return Const(v.c)
}

// eventKind classifies why symbolic execution of one segment stopped.
type eventKind uint8

const (
	evExit eventKind = iota
	evBranch
	evError
	evInfeasible
)

// event is the outcome of running a state to its next stop.
type event struct {
	kind   eventKind
	status uint64 // exit status
	cond   Cond   // branch condition (taken arm)
	taken  uint64 // branch target when cond holds
	fall   uint64 // fall-through address
	err    error
}

// symCPU interprets SVX64 with symbolic register and memory state layered
// over a concrete snapshot context. Concrete state (including all memory
// the program never made symbolic) lives in ctx and is captured by
// lightweight snapshots; symbolic state is the small overlay the explorer
// carries per path.
type symCPU struct {
	ctx     *snapshot.Context
	regs    [vm.NumRegs]sval
	overlay map[uint64]*Expr // 8-byte-aligned cell → expression

	// Comparison record for symbolic flag resolution.
	cmpA, cmpB sval
	cmpValid   bool
	flagsConc  uint64 // concrete flags when cmpValid is false
	flagsOK    bool   // concrete flags are meaningful

	nSym    int // fresh symbolic inputs created
	retired uint64
}

// newSymCPU builds an interpreter over ctx. sregs, when non-nil, re-applies
// the symbolic register values the path carried across a fork (snapshots
// freeze only the concrete register file).
func newSymCPU(ctx *snapshot.Context, overlay map[uint64]*Expr, sregs *[vm.NumRegs]*Expr) *symCPU {
	sc := &symCPU{ctx: ctx, overlay: overlay, flagsOK: true}
	for i := range sc.regs {
		sc.regs[i] = conc(ctx.Regs.GPR[i])
		if sregs != nil && sregs[i] != nil {
			sc.regs[i] = symv(sregs[i])
		}
	}
	sc.flagsConc = ctx.Regs.Flags
	return sc
}

// symRegs extracts the symbolic register overlay for fork capture.
func (sc *symCPU) symRegs() *[vm.NumRegs]*Expr {
	var out [vm.NumRegs]*Expr
	any := false
	for i := range sc.regs {
		if sc.regs[i].e != nil {
			out[i] = sc.regs[i].e
			any = true
		}
	}
	if !any {
		return nil
	}
	return &out
}

// syncRegs writes concrete register state back into ctx for capture.
// Symbolic registers store their last concrete witness (unused on restore;
// the overlay-carrying pending item re-applies symbolic values).
func (sc *symCPU) syncRegs() {
	for i := range sc.regs {
		sc.ctx.Regs.GPR[i] = sc.regs[i].c
	}
	sc.ctx.Regs.Flags = sc.flagsConc
}

func (sc *symCPU) fault(pc uint64, err error) event {
	return event{kind: evError, err: fmt.Errorf("symexec: at %#x: %w", pc, err)}
}

// loadCell reads the 8-byte-aligned cell containing addr.
func (sc *symCPU) loadCell(cell uint64) (sval, error) {
	if e, ok := sc.overlay[cell]; ok {
		return symv(e), nil
	}
	v, err := sc.ctx.Mem.ReadU64(cell)
	if err != nil {
		return sval{}, err
	}
	return conc(v), nil
}

// load64 performs an 8-byte load at addr (must be 8-aligned for symbolic
// cells; unaligned loads touching the overlay are rejected).
func (sc *symCPU) load64(addr uint64) (sval, error) {
	if addr&7 == 0 {
		return sc.loadCell(addr)
	}
	// Unaligned: reject if it overlaps symbolic cells.
	if sc.overlapsOverlay(addr, 8) {
		return sval{}, fmt.Errorf("unaligned load overlapping symbolic memory at %#x", addr)
	}
	v, err := sc.ctx.Mem.ReadU64(addr)
	return conc(v), err
}

func (sc *symCPU) loadByte(addr uint64) (sval, error) {
	cell := addr &^ 7
	if e, ok := sc.overlay[cell]; ok {
		shift := (addr & 7) * 8
		return symv(And(Shr(e, shift), Const(0xff))), nil
	}
	b, err := sc.ctx.Mem.ReadU8(addr)
	return conc(uint64(b)), err
}

func (sc *symCPU) overlapsOverlay(addr uint64, n int) bool {
	if len(sc.overlay) == 0 {
		return false
	}
	first := addr &^ 7
	last := (addr + uint64(n) - 1) &^ 7
	for c := first; c <= last; c += 8 {
		if _, ok := sc.overlay[c]; ok {
			return true
		}
	}
	return false
}

// store64 performs an 8-byte store.
func (sc *symCPU) store64(addr uint64, v sval) error {
	if addr&7 != 0 {
		if sc.overlapsOverlay(addr, 8) || !v.isConc() {
			return fmt.Errorf("unaligned symbolic store at %#x", addr)
		}
		return sc.ctx.Mem.WriteU64(addr, v.c)
	}
	if v.isConc() {
		delete(sc.overlay, addr)
		return sc.ctx.Mem.WriteU64(addr, v.c)
	}
	// Keep protection semantics: a symbolic store still needs the page
	// writable; probe with the concrete write of a witness value.
	if err := sc.ctx.Mem.WriteU64(addr, v.c); err != nil {
		return err
	}
	sc.overlay[addr] = v.e
	return nil
}

func (sc *symCPU) storeByte(addr uint64, v sval) error {
	cell := addr &^ 7
	shift := (addr & 7) * 8
	if e, ok := sc.overlay[cell]; ok {
		mask := ^(uint64(0xff) << shift)
		composed := Or(And(e, Const(mask)), Shl(And(v.expr(), Const(0xff)), shift))
		if cv, isC := composed.IsConst(); isC {
			delete(sc.overlay, cell)
			return sc.ctx.Mem.WriteU64(cell, cv)
		}
		if err := sc.ctx.Mem.WriteU8(addr, byte(v.c)); err != nil {
			return err
		}
		sc.overlay[cell] = composed
		return nil
	}
	if v.isConc() {
		return sc.ctx.Mem.WriteU8(addr, byte(v.c))
	}
	// Symbolic byte into concrete cell: promote the cell.
	old, err := sc.ctx.Mem.ReadU64(cell)
	if err != nil {
		return err
	}
	if err := sc.ctx.Mem.WriteU8(addr, byte(v.c)); err != nil {
		return err
	}
	mask := ^(uint64(0xff) << shift)
	sc.overlay[cell] = Or(Const(old&mask), Shl(And(v.expr(), Const(0xff)), shift))
	return nil
}

// alu applies a binary operation, staying concrete when possible.
func (sc *symCPU) alu(op vm.Opcode, a, b sval) (sval, error) {
	if a.isConc() && b.isConc() {
		var r uint64
		switch op {
		case vm.OpAddRR, vm.OpAddRI:
			r = a.c + b.c
		case vm.OpSubRR, vm.OpSubRI:
			r = a.c - b.c
		case vm.OpAndRR, vm.OpAndRI:
			r = a.c & b.c
		case vm.OpOrRR, vm.OpOrRI:
			r = a.c | b.c
		case vm.OpXorRR, vm.OpXorRI:
			r = a.c ^ b.c
		case vm.OpShlRR, vm.OpShlRI:
			r = a.c << (b.c & 63)
		case vm.OpShrRR, vm.OpShrRI:
			r = a.c >> (b.c & 63)
		case vm.OpSarRR, vm.OpSarRI:
			r = uint64(int64(a.c) >> (b.c & 63))
		case vm.OpMulRR, vm.OpMulRI:
			r = a.c * b.c
		case vm.OpDivRR:
			if b.c == 0 {
				return sval{}, fmt.Errorf("division by zero")
			}
			r = a.c / b.c
		case vm.OpModRR:
			if b.c == 0 {
				return sval{}, fmt.Errorf("mod by zero")
			}
			r = a.c % b.c
		}
		return conc(r), nil
	}
	switch op {
	case vm.OpAddRR, vm.OpAddRI:
		return symv(Add(a.expr(), b.expr())), nil
	case vm.OpSubRR, vm.OpSubRI:
		return symv(Sub(a.expr(), b.expr())), nil
	case vm.OpAndRR, vm.OpAndRI:
		return symv(And(a.expr(), b.expr())), nil
	case vm.OpOrRR, vm.OpOrRI:
		return symv(Or(a.expr(), b.expr())), nil
	case vm.OpXorRR, vm.OpXorRI:
		return symv(Xor(a.expr(), b.expr())), nil
	case vm.OpShlRR, vm.OpShlRI:
		if !b.isConc() {
			return sval{}, fmt.Errorf("symbolic shift amount")
		}
		return symv(Shl(a.expr(), b.c&63)), nil
	case vm.OpShrRR, vm.OpShrRI:
		if !b.isConc() {
			return sval{}, fmt.Errorf("symbolic shift amount")
		}
		return symv(Shr(a.expr(), b.c&63)), nil
	case vm.OpMulRR, vm.OpMulRI:
		switch {
		case b.isConc():
			return symv(MulK(a.expr(), b.c)), nil
		case a.isConc():
			return symv(MulK(b.expr(), a.c)), nil
		default:
			return sval{}, fmt.Errorf("symbolic multiplication of two symbolic values")
		}
	}
	return sval{}, fmt.Errorf("unsupported symbolic op %v", op)
}

// concreteFlags replicates vm.CPU's CMP flag semantics.
func cmpFlags(a, b uint64) uint64 {
	res := a - b
	var f uint64
	if res == 0 {
		f |= vm.FlagZF
	}
	if int64(res) < 0 {
		f |= vm.FlagSF
	}
	if a < b {
		f |= vm.FlagCF
	}
	if (a^b)&(1<<63) != 0 && (a^res)&(1<<63) != 0 {
		f |= vm.FlagOF
	}
	return f
}

// branchCond maps a Jcc opcode to the condition over the recorded compare.
func branchCond(op vm.Opcode, a, b *Expr) (Cond, error) {
	switch op {
	case vm.OpJe:
		return Cond{Op: CondEq, A: a, B: b}, nil
	case vm.OpJne:
		return Cond{Op: CondEq, A: a, B: b, Neg: true}, nil
	case vm.OpJl:
		return Cond{Op: CondSLt, A: a, B: b}, nil
	case vm.OpJle:
		return Cond{Op: CondSLe, A: a, B: b}, nil
	case vm.OpJg:
		return Cond{Op: CondSLe, A: a, B: b, Neg: true}, nil
	case vm.OpJge:
		return Cond{Op: CondSLt, A: a, B: b, Neg: true}, nil
	case vm.OpJb:
		return Cond{Op: CondULt, A: a, B: b}, nil
	case vm.OpJbe:
		return Cond{Op: CondULe, A: a, B: b}, nil
	case vm.OpJa:
		return Cond{Op: CondULe, A: a, B: b, Neg: true}, nil
	case vm.OpJae:
		return Cond{Op: CondULt, A: a, B: b, Neg: true}, nil
	}
	return Cond{}, fmt.Errorf("not a conditional branch: %v", op)
}

// run executes until the next symbolic branch, exit, or error. fuel bounds
// retired instructions for this segment (0 = unlimited).
func (sc *symCPU) run(fuel int64) event {
	r := sc.regs[:]
	for n := int64(0); ; n++ {
		if fuel > 0 && n >= fuel {
			return event{kind: evError, err: fmt.Errorf("symexec: segment fuel %d exhausted", fuel)}
		}
		pc := sc.ctx.Regs.RIP
		in, err := vm.DecodeAt(sc.ctx.Mem, pc)
		if err != nil {
			return sc.fault(pc, err)
		}
		next := in.Next(pc)
		sc.retired++
		memAddr := func() (uint64, error) {
			base := r[in.R1]
			if !base.isConc() {
				return 0, fmt.Errorf("symbolic address (base %s)", in.R1)
			}
			return base.c + in.Imm, nil
		}
		idxAddr := func() (uint64, error) {
			base, idx := r[in.R1], r[in.R2]
			if !base.isConc() || !idx.isConc() {
				return 0, fmt.Errorf("symbolic address (indexed)")
			}
			return base.c + idx.c*uint64(in.Scale) + in.Imm, nil
		}

		switch in.Op {
		case vm.OpNop:
		case vm.OpMovRI:
			r[in.R0] = conc(in.Imm)
		case vm.OpMovRR:
			r[in.R0] = r[in.R1]
		case vm.OpLea:
			a, err := memAddr()
			if err != nil {
				return sc.fault(pc, err)
			}
			r[in.R0] = conc(a)

		case vm.OpLoad, vm.OpLoadX:
			var a uint64
			if in.Op == vm.OpLoad {
				a, err = memAddr()
			} else {
				a, err = idxAddr()
			}
			if err != nil {
				return sc.fault(pc, err)
			}
			v, err := sc.load64(a)
			if err != nil {
				return sc.fault(pc, err)
			}
			r[in.R0] = v
		case vm.OpStore, vm.OpStorX:
			var a uint64
			if in.Op == vm.OpStore {
				a, err = memAddr()
			} else {
				a, err = idxAddr()
			}
			if err != nil {
				return sc.fault(pc, err)
			}
			if err := sc.store64(a, r[in.R0]); err != nil {
				return sc.fault(pc, err)
			}
		case vm.OpLoadB, vm.OpLoadBX:
			var a uint64
			if in.Op == vm.OpLoadB {
				a, err = memAddr()
			} else {
				a, err = idxAddr()
			}
			if err != nil {
				return sc.fault(pc, err)
			}
			v, err := sc.loadByte(a)
			if err != nil {
				return sc.fault(pc, err)
			}
			r[in.R0] = v
		case vm.OpStorB, vm.OpStorBX:
			var a uint64
			if in.Op == vm.OpStorB {
				a, err = memAddr()
			} else {
				a, err = idxAddr()
			}
			if err != nil {
				return sc.fault(pc, err)
			}
			if err := sc.storeByte(a, r[in.R0]); err != nil {
				return sc.fault(pc, err)
			}

		case vm.OpAddRR, vm.OpSubRR, vm.OpAndRR, vm.OpOrRR, vm.OpXorRR,
			vm.OpShlRR, vm.OpShrRR, vm.OpSarRR, vm.OpMulRR, vm.OpDivRR, vm.OpModRR:
			v, err := sc.alu(in.Op, r[in.R0], r[in.R1])
			if err != nil {
				return sc.fault(pc, err)
			}
			sc.setALUFlags(r[in.R0], r[in.R1], v, in.Op)
			r[in.R0] = v
		case vm.OpAddRI, vm.OpSubRI, vm.OpAndRI, vm.OpOrRI, vm.OpXorRI,
			vm.OpShlRI, vm.OpShrRI, vm.OpSarRI, vm.OpMulRI:
			v, err := sc.alu(in.Op, r[in.R0], conc(in.Imm))
			if err != nil {
				return sc.fault(pc, err)
			}
			sc.setALUFlags(r[in.R0], conc(in.Imm), v, in.Op)
			r[in.R0] = v
		case vm.OpNeg:
			v, err := sc.alu(vm.OpSubRR, conc(0), r[in.R0])
			if err != nil {
				return sc.fault(pc, err)
			}
			sc.setALUFlags(conc(0), r[in.R0], v, vm.OpSubRR)
			r[in.R0] = v
		case vm.OpNot:
			if r[in.R0].isConc() {
				r[in.R0] = conc(^r[in.R0].c)
			} else {
				r[in.R0] = symv(Not(r[in.R0].expr()))
			}
		case vm.OpInc:
			v, _ := sc.alu(vm.OpAddRR, r[in.R0], conc(1))
			sc.setALUFlags(r[in.R0], conc(1), v, vm.OpAddRR)
			r[in.R0] = v
		case vm.OpDec:
			v, _ := sc.alu(vm.OpSubRR, r[in.R0], conc(1))
			sc.setALUFlags(r[in.R0], conc(1), v, vm.OpSubRR)
			r[in.R0] = v

		case vm.OpCmpRR:
			sc.recordCmp(r[in.R0], r[in.R1])
		case vm.OpCmpRI:
			sc.recordCmp(r[in.R0], conc(in.Imm))
		case vm.OpTestRR:
			av, bv := r[in.R0], r[in.R1]
			if av.isConc() && bv.isConc() {
				sc.recordCmpConcrete(av.c&bv.c, 0)
			} else {
				sc.recordCmp(symv(And(av.expr(), bv.expr())), conc(0))
			}

		case vm.OpJmp:
			sc.ctx.Regs.RIP = in.Target()
			continue
		case vm.OpJe, vm.OpJne, vm.OpJl, vm.OpJle, vm.OpJg, vm.OpJge,
			vm.OpJb, vm.OpJbe, vm.OpJa, vm.OpJae:
			if sc.cmpValid {
				cond, err := branchCond(in.Op, sc.cmpA.expr(), sc.cmpB.expr())
				if err != nil {
					return sc.fault(pc, err)
				}
				if taken, isConc := cond.Concrete(); isConc {
					if taken {
						sc.ctx.Regs.RIP = in.Target()
					} else {
						sc.ctx.Regs.RIP = next
					}
					continue
				}
				return event{kind: evBranch, cond: cond, taken: in.Target(), fall: next}
			}
			if !sc.flagsOK {
				return sc.fault(pc, fmt.Errorf("branch on symbolic flags from non-compare"))
			}
			saved := sc.ctx.Regs.Flags
			sc.ctx.Regs.Flags = sc.flagsConc
			taken := evalCond(in.Op, sc.flagsConc)
			sc.ctx.Regs.Flags = saved
			if taken {
				sc.ctx.Regs.RIP = in.Target()
			} else {
				sc.ctx.Regs.RIP = next
			}
			continue

		case vm.OpCall:
			sp := r[vm.RSP]
			if !sp.isConc() {
				return sc.fault(pc, fmt.Errorf("symbolic stack pointer"))
			}
			sp.c -= 8
			if err := sc.store64(sp.c, conc(next)); err != nil {
				return sc.fault(pc, err)
			}
			r[vm.RSP] = sp
			sc.ctx.Regs.RIP = in.Target()
			continue
		case vm.OpRet:
			sp := r[vm.RSP]
			if !sp.isConc() {
				return sc.fault(pc, fmt.Errorf("symbolic stack pointer"))
			}
			v, err := sc.load64(sp.c)
			if err != nil {
				return sc.fault(pc, err)
			}
			if !v.isConc() {
				return sc.fault(pc, fmt.Errorf("symbolic return address"))
			}
			r[vm.RSP] = conc(sp.c + 8)
			sc.ctx.Regs.RIP = v.c
			continue
		case vm.OpPush:
			sp := r[vm.RSP]
			if !sp.isConc() {
				return sc.fault(pc, fmt.Errorf("symbolic stack pointer"))
			}
			sp.c -= 8
			if err := sc.store64(sp.c, r[in.R0]); err != nil {
				return sc.fault(pc, err)
			}
			r[vm.RSP] = sp
		case vm.OpPop:
			sp := r[vm.RSP]
			if !sp.isConc() {
				return sc.fault(pc, fmt.Errorf("symbolic stack pointer"))
			}
			v, err := sc.load64(sp.c)
			if err != nil {
				return sc.fault(pc, err)
			}
			r[in.R0] = v
			r[vm.RSP] = conc(sp.c + 8)

		case vm.OpSyscall:
			ev, handled, err := sc.syscall(next)
			if err != nil {
				return sc.fault(pc, err)
			}
			if handled {
				sc.ctx.Regs.RIP = next
				continue
			}
			return ev
		case vm.OpHlt:
			status := uint64(0)
			if r[vm.RAX].isConc() {
				status = r[vm.RAX].c
			}
			return event{kind: evExit, status: status}
		default:
			return sc.fault(pc, fmt.Errorf("invalid opcode %v", in.Op))
		}
		sc.ctx.Regs.RIP = next
	}
}

func (sc *symCPU) recordCmp(a, b sval) {
	if a.isConc() && b.isConc() {
		sc.recordCmpConcrete(a.c, b.c)
		return
	}
	sc.cmpA, sc.cmpB = a, b
	sc.cmpValid = true
	sc.flagsOK = false
}

func (sc *symCPU) recordCmpConcrete(a, b uint64) {
	sc.flagsConc = cmpFlags(a, b)
	sc.flagsOK = true
	sc.cmpValid = false
}

// setALUFlags tracks flags for the non-compare ALU ops: concrete results
// give exact concrete flags; symbolic results poison the flags until the
// next compare (branching on them is reported as an unsupported pattern).
func (sc *symCPU) setALUFlags(a, b, res sval, op vm.Opcode) {
	if res.isConc() {
		var f uint64
		if res.c == 0 {
			f |= vm.FlagZF
		}
		if int64(res.c) < 0 {
			f |= vm.FlagSF
		}
		// CF/OF for add/sub mirror the concrete CPU; other ops clear them.
		switch op {
		case vm.OpAddRR, vm.OpAddRI:
			if a.isConc() && res.c < a.c {
				f |= vm.FlagCF
			}
			if a.isConc() && b.isConc() && (a.c^b.c)&(1<<63) == 0 && (a.c^res.c)&(1<<63) != 0 {
				f |= vm.FlagOF
			}
		case vm.OpSubRR, vm.OpSubRI:
			if a.isConc() && b.isConc() {
				f = cmpFlags(a.c, b.c)
			}
		}
		sc.flagsConc = f
		sc.flagsOK = true
		sc.cmpValid = false
		return
	}
	sc.flagsOK = false
	sc.cmpValid = false
}

func evalCond(op vm.Opcode, flags uint64) bool {
	zf := flags&vm.FlagZF != 0
	sf := flags&vm.FlagSF != 0
	cf := flags&vm.FlagCF != 0
	of := flags&vm.FlagOF != 0
	switch op {
	case vm.OpJe:
		return zf
	case vm.OpJne:
		return !zf
	case vm.OpJl:
		return sf != of
	case vm.OpJle:
		return zf || sf != of
	case vm.OpJg:
		return !zf && sf == of
	case vm.OpJge:
		return sf == of
	case vm.OpJb:
		return cf
	case vm.OpJbe:
		return cf || zf
	case vm.OpJa:
		return !cf && !zf
	case vm.OpJae:
		return !cf
	}
	return false
}

// syscall handles the analysis-relevant subset. It returns handled=true
// when execution should continue, or an exit/assume event.
func (sc *symCPU) syscall(next uint64) (event, bool, error) {
	nr := sc.regs[vm.SysNumReg]
	if !nr.isConc() {
		return event{}, false, fmt.Errorf("symbolic syscall number")
	}
	a0 := sc.regs[vm.SysArg0Reg]
	switch nr.c {
	case interpose.SysExit:
		if !a0.isConc() {
			// A symbolic exit status is legal: expose its witness value.
			return event{kind: evExit, status: a0.c}, false, nil
		}
		return event{kind: evExit, status: a0.c}, false, nil

	case interpose.SysMakeSymbolic:
		tag := uint64(sc.nSym)
		if a0.isConc() {
			tag = a0.c
		}
		sc.nSym++
		name := fmt.Sprintf("in%d", tag)
		sc.regs[vm.SysRetReg] = symv(Fresh(name))
		return event{}, true, nil

	case interpose.SysAssume:
		// assume(x != 0): adds a path constraint; the explorer checks
		// feasibility and kills infeasible paths.
		cond := Cond{Op: CondEq, A: a0.expr(), B: Const(0), Neg: true}
		if v, ok := cond.Concrete(); ok {
			if v {
				sc.regs[vm.SysRetReg] = conc(0)
				return event{}, true, nil
			}
			return event{kind: evInfeasible}, false, nil
		}
		return event{kind: evBranch, cond: cond, taken: next, fall: 0}, false, nil

	case interpose.SysWrite:
		fd := a0
		buf := sc.regs[vm.SysArg1Reg]
		cnt := sc.regs[vm.SysArg2Reg]
		if !fd.isConc() || !buf.isConc() || !cnt.isConc() {
			return event{}, false, fmt.Errorf("symbolic write arguments")
		}
		n := int(cnt.c)
		if n < 0 || n > 1<<20 {
			sc.regs[vm.SysRetReg] = conc(interpose.ErrnoRet(interpose.EINVAL))
			return event{}, true, nil
		}
		if sc.overlapsOverlay(buf.c, n) {
			return event{}, false, fmt.Errorf("write of symbolic bytes")
		}
		data := make([]byte, n)
		if err := sc.ctx.Mem.ReadAt(data, buf.c); err != nil {
			sc.regs[vm.SysRetReg] = conc(interpose.ErrnoRet(interpose.EFAULT))
			return event{}, true, nil
		}
		if fd.c == 1 || fd.c == 2 {
			sc.ctx.Out = append(sc.ctx.Out, data...)
		}
		sc.regs[vm.SysRetReg] = conc(uint64(n))
		return event{}, true, nil

	case interpose.SysGetTick:
		sc.regs[vm.SysRetReg] = conc(sc.retired)
		return event{}, true, nil

	default:
		return event{}, false, fmt.Errorf("syscall %d not supported under symbolic execution", nr.c)
	}
}
