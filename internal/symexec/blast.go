package symexec

import (
	"fmt"

	"repro/internal/solver"
)

// blaster lowers bitvector expressions to CNF over a solver instance —
// the decision-procedure layer that stands in for Z3/KLEE's solver stack.
//
// Bits are represented as blit: 0 = constant false, 1 = constant true,
// otherwise a DIMACS-style literal (±var) in the underlying SAT solver.
type blit int

const (
	bFalse blit = 0
	bTrue  blit = 1
)

func (b blit) isConst() bool { return b == bFalse || b == bTrue }

type blaster struct {
	s       *solver.Solver
	nextVar int
	memo    map[*Expr]*[64]blit
	vars    map[string]*[64]blit // symbolic input bits
	// SolverCalls is incremented by the owner per SAT query.
}

func newBlaster() *blaster {
	// Solver variable 1 is never used: blit(1) is the bTrue constant.
	return &blaster{
		s:       solver.New(0),
		nextVar: 2,
		memo:    map[*Expr]*[64]blit{},
		vars:    map[string]*[64]blit{},
	}
}

func (bl *blaster) fresh() blit {
	v := bl.nextVar
	bl.nextVar++
	bl.s.AddVar(v)
	return blit(v)
}

func neg(b blit) blit {
	switch b {
	case bFalse:
		return bTrue
	case bTrue:
		return bFalse
	}
	return -b
}

// clause emits a clause of blits, folding constants.
func (bl *blaster) clause(lits ...blit) {
	out := make([]int, 0, len(lits))
	for _, l := range lits {
		switch l {
		case bTrue:
			return // satisfied
		case bFalse:
			continue
		default:
			out = append(out, int(l))
		}
	}
	if len(out) == 0 {
		// Empty clause: force UNSAT via x ∧ ¬x on a fresh var.
		v := bl.fresh()
		bl.s.AddClause(int(v))
		bl.s.AddClause(int(neg(v)))
		return
	}
	bl.s.AddClause(out...)
}

// gates (Tseitin encodings). Each returns the output blit.

func (bl *blaster) and2(a, b blit) blit {
	if a == bFalse || b == bFalse {
		return bFalse
	}
	if a == bTrue {
		return b
	}
	if b == bTrue {
		return a
	}
	o := bl.fresh()
	bl.clause(neg(o), a)
	bl.clause(neg(o), b)
	bl.clause(o, neg(a), neg(b))
	return o
}

func (bl *blaster) or2(a, b blit) blit {
	return neg(bl.and2(neg(a), neg(b)))
}

func (bl *blaster) xor2(a, b blit) blit {
	if a.isConst() && b.isConst() {
		if a != b {
			return bTrue
		}
		return bFalse
	}
	if a == bFalse {
		return b
	}
	if b == bFalse {
		return a
	}
	if a == bTrue {
		return neg(b)
	}
	if b == bTrue {
		return neg(a)
	}
	o := bl.fresh()
	bl.clause(neg(o), a, b)
	bl.clause(neg(o), neg(a), neg(b))
	bl.clause(o, neg(a), b)
	bl.clause(o, a, neg(b))
	return o
}

// adder returns sum and carry-out of a+b+cin.
func (bl *blaster) adder(a, b, cin blit) (sum, cout blit) {
	sum = bl.xor2(bl.xor2(a, b), cin)
	cout = bl.or2(bl.and2(a, b), bl.and2(cin, bl.xor2(a, b)))
	return
}

// bits returns the 64 blits of e, memoized.
func (bl *blaster) bits(e *Expr) *[64]blit {
	if got, ok := bl.memo[e]; ok {
		return got
	}
	var out [64]blit
	switch e.Op {
	case OpConst:
		for i := 0; i < 64; i++ {
			if e.K>>i&1 == 1 {
				out[i] = bTrue
			} else {
				out[i] = bFalse
			}
		}
	case OpVar:
		v, ok := bl.vars[e.Name]
		if !ok {
			v = new([64]blit)
			for i := range v {
				v[i] = bl.fresh()
			}
			bl.vars[e.Name] = v
		}
		out = *v
	case OpNot:
		a := bl.bits(e.A)
		for i := range out {
			out[i] = neg(a[i])
		}
	case OpAnd, OpOr, OpXor:
		a, b := bl.bits(e.A), bl.bits(e.B)
		for i := range out {
			switch e.Op {
			case OpAnd:
				out[i] = bl.and2(a[i], b[i])
			case OpOr:
				out[i] = bl.or2(a[i], b[i])
			default:
				out[i] = bl.xor2(a[i], b[i])
			}
		}
	case OpAdd, OpSub:
		a, b := bl.bits(e.A), bl.bits(e.B)
		carry := bFalse
		bb := *b
		if e.Op == OpSub { // a - b = a + ~b + 1
			for i := range bb {
				bb[i] = neg(bb[i])
			}
			carry = bTrue
		}
		for i := 0; i < 64; i++ {
			out[i], carry = bl.adder(a[i], bb[i], carry)
		}
	case OpShl:
		a := bl.bits(e.A)
		for i := range out {
			out[i] = bFalse
		}
		for i := int(e.K); i < 64; i++ {
			out[i] = a[i-int(e.K)]
		}
	case OpShr:
		a := bl.bits(e.A)
		for i := range out {
			out[i] = bFalse
		}
		for i := 0; i < 64-int(e.K); i++ {
			out[i] = a[i+int(e.K)]
		}
	case OpMulK:
		// Shift-add over the set bits of K.
		acc := bl.bits(Const(0))
		a := bl.bits(e.A)
		current := *a
		accv := *acc
		for bit := 0; bit < 64; bit++ {
			if e.K>>bit&1 == 1 {
				carry := bFalse
				var next [64]blit
				for i := 0; i < 64; i++ {
					next[i], carry = bl.adder(accv[i], current[i], carry)
				}
				accv = next
			}
			// current <<= 1 (shift from the top down: in-place)
			for i := 63; i >= 1; i-- {
				current[i] = current[i-1]
			}
			current[0] = bFalse
		}
		out = accv
	default:
		panic(fmt.Sprintf("symexec: blast of op %d", e.Op))
	}
	p := new([64]blit)
	*p = out
	bl.memo[e] = p
	return p
}

// condBit returns the blit representing cond (before Neg).
func (bl *blaster) condBit(c Cond) blit {
	a, b := bl.bits(c.A), bl.bits(c.B)
	var o blit
	switch c.Op {
	case CondEq:
		o = bTrue
		for i := 0; i < 64; i++ {
			o = bl.and2(o, neg(bl.xor2(a[i], b[i])))
		}
	case CondULt, CondULe:
		// a < b  ⇔  ¬carryOut(a + ~b + 1); a <= b ⇔ a < b+... use
		// a <= b ⇔ ¬(b < a).
		lt := func(x, y *[64]blit) blit {
			carry := bTrue
			for i := 0; i < 64; i++ {
				_, carry = bl.adder(x[i], neg(y[i]), carry)
			}
			return neg(carry)
		}
		if c.Op == CondULt {
			o = lt(a, b)
		} else {
			o = neg(lt(b, a))
		}
	case CondSLt, CondSLe:
		// Signed compare: flip sign bits and compare unsigned.
		af, bf := *a, *b
		af[63] = neg(af[63])
		bf[63] = neg(bf[63])
		lt := func(x, y *[64]blit) blit {
			carry := bTrue
			for i := 0; i < 64; i++ {
				_, carry = bl.adder(x[i], neg(y[i]), carry)
			}
			return neg(carry)
		}
		if c.Op == CondSLt {
			o = lt(&af, &bf)
		} else {
			o = neg(lt(&bf, &af))
		}
	}
	if c.Neg {
		o = neg(o)
	}
	return o
}

// assert adds cond as a hard constraint.
func (bl *blaster) assert(c Cond) {
	bl.clause(bl.condBit(c))
}

// CheckResult is a satisfiability verdict with a witness.
type CheckResult struct {
	Status solver.Status
	// Inputs assigns each symbolic input a concrete value (Sat only).
	Inputs map[string]uint64
	// Conflicts is the solver effort spent.
	Conflicts int64
}

// Check decides the conjunction of conds, returning a witness when SAT.
// maxConflicts bounds solver effort (0 = unlimited).
func Check(conds []Cond, maxConflicts int64) CheckResult {
	bl := newBlaster()
	for _, c := range conds {
		if v, ok := c.Concrete(); ok {
			if !v {
				return CheckResult{Status: solver.Unsat}
			}
			continue
		}
		bl.assert(c)
	}
	st := bl.s.Solve(maxConflicts)
	res := CheckResult{Status: st, Conflicts: bl.s.Stats.Conflicts}
	if st == solver.Sat {
		model := bl.s.Model()
		res.Inputs = map[string]uint64{}
		for name, bits := range bl.vars {
			var v uint64
			for i := 0; i < 64; i++ {
				b := bits[i]
				switch {
				case b == bTrue:
					v |= 1 << i
				case b == bFalse:
				case b > 0 && int(b) < len(model) && model[b]:
					v |= 1 << i
				case b < 0 && int(-b) < len(model) && !model[-b]:
					v |= 1 << i
				}
			}
			res.Inputs[name] = v
		}
	}
	return res
}
