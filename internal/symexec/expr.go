// Package symexec is the S2E analogue of the reproduction: a multi-path
// symbolic executor for SVX64 binaries. It runs guest code concretely until
// a branch depends on symbolic input, decides both arms with the CDCL
// solver (path constraints bit-blasted to CNF), and forks the VM state —
// concrete registers, memory, files, output — as a lightweight snapshot,
// exactly the "conceptual fork of the entire state of the VM" that §2
// describes, minus the ad-hoc copy-on-write plumbing S2E had to graft onto
// QEMU.
package symexec

import (
	"fmt"
	"strings"
)

// Op is a 64-bit bitvector expression operator.
type Op uint8

// Expression operators. Shift amounts and Mul operands must be constants.
const (
	OpConst Op = iota // K
	OpVar             // Name (a symbolic input)
	OpAdd             // A + B
	OpSub             // A - B
	OpAnd             // A & B
	OpOr              // A | B
	OpXor             // A ^ B
	OpNot             // ^A
	OpShl             // A << K
	OpShr             // A >> K (logical)
	OpMulK            // A * K (constant multiplier)
)

// Expr is an immutable 64-bit bitvector expression. Constants fold at
// construction, so a nil-free tree with OpConst at the root is fully
// concrete.
type Expr struct {
	Op   Op
	A, B *Expr
	K    uint64
	Name string
}

// Const returns a constant expression.
func Const(v uint64) *Expr { return &Expr{Op: OpConst, K: v} }

// Fresh returns a new symbolic input variable.
func Fresh(name string) *Expr { return &Expr{Op: OpVar, Name: name} }

// IsConst reports whether e is a constant, and its value.
func (e *Expr) IsConst() (uint64, bool) {
	if e.Op == OpConst {
		return e.K, true
	}
	return 0, false
}

func bin(op Op, a, b *Expr) *Expr {
	av, aok := a.IsConst()
	bv, bok := b.IsConst()
	if aok && bok {
		switch op {
		case OpAdd:
			return Const(av + bv)
		case OpSub:
			return Const(av - bv)
		case OpAnd:
			return Const(av & bv)
		case OpOr:
			return Const(av | bv)
		case OpXor:
			return Const(av ^ bv)
		}
	}
	// Cheap identities keep trees small.
	switch op {
	case OpAdd:
		if aok && av == 0 {
			return b
		}
		if bok && bv == 0 {
			return a
		}
	case OpSub:
		if bok && bv == 0 {
			return a
		}
		if a == b {
			return Const(0)
		}
	case OpAnd:
		if aok && av == 0 || bok && bv == 0 {
			return Const(0)
		}
		if aok && av == ^uint64(0) {
			return b
		}
		if bok && bv == ^uint64(0) {
			return a
		}
	case OpOr, OpXor:
		if aok && av == 0 {
			return b
		}
		if bok && bv == 0 {
			return a
		}
	}
	return &Expr{Op: op, A: a, B: b}
}

// Add returns a+b with constant folding.
func Add(a, b *Expr) *Expr { return bin(OpAdd, a, b) }

// Sub returns a-b with constant folding.
func Sub(a, b *Expr) *Expr { return bin(OpSub, a, b) }

// And returns a&b with constant folding.
func And(a, b *Expr) *Expr { return bin(OpAnd, a, b) }

// Or returns a|b with constant folding.
func Or(a, b *Expr) *Expr { return bin(OpOr, a, b) }

// Xor returns a^b with constant folding.
func Xor(a, b *Expr) *Expr { return bin(OpXor, a, b) }

// Not returns ^a.
func Not(a *Expr) *Expr {
	if v, ok := a.IsConst(); ok {
		return Const(^v)
	}
	return &Expr{Op: OpNot, A: a}
}

// Shl returns a << k.
func Shl(a *Expr, k uint64) *Expr {
	k &= 63
	if k == 0 {
		return a
	}
	if v, ok := a.IsConst(); ok {
		return Const(v << k)
	}
	return &Expr{Op: OpShl, A: a, K: k}
}

// Shr returns a >> k (logical).
func Shr(a *Expr, k uint64) *Expr {
	k &= 63
	if k == 0 {
		return a
	}
	if v, ok := a.IsConst(); ok {
		return Const(v >> k)
	}
	return &Expr{Op: OpShr, A: a, K: k}
}

// MulK returns a * k for a constant multiplier (shift-add decomposition
// happens at blast time).
func MulK(a *Expr, k uint64) *Expr {
	if v, ok := a.IsConst(); ok {
		return Const(v * k)
	}
	switch k {
	case 0:
		return Const(0)
	case 1:
		return a
	}
	return &Expr{Op: OpMulK, A: a, K: k}
}

func (e *Expr) String() string {
	var sb strings.Builder
	e.write(&sb, 0)
	return sb.String()
}

func (e *Expr) write(sb *strings.Builder, depth int) {
	if depth > 16 {
		sb.WriteString("…")
		return
	}
	switch e.Op {
	case OpConst:
		fmt.Fprintf(sb, "%#x", e.K)
	case OpVar:
		sb.WriteString(e.Name)
	case OpNot:
		sb.WriteString("~")
		e.A.write(sb, depth+1)
	case OpShl, OpShr, OpMulK:
		sym := map[Op]string{OpShl: "<<", OpShr: ">>", OpMulK: "*"}[e.Op]
		sb.WriteByte('(')
		e.A.write(sb, depth+1)
		fmt.Fprintf(sb, " %s %d)", sym, e.K)
	default:
		sym := map[Op]string{OpAdd: "+", OpSub: "-", OpAnd: "&", OpOr: "|", OpXor: "^"}[e.Op]
		sb.WriteByte('(')
		e.A.write(sb, depth+1)
		fmt.Fprintf(sb, " %s ", sym)
		e.B.write(sb, depth+1)
		sb.WriteByte(')')
	}
}

// Eval computes e under an assignment of symbolic inputs.
func (e *Expr) Eval(inputs map[string]uint64) uint64 {
	switch e.Op {
	case OpConst:
		return e.K
	case OpVar:
		return inputs[e.Name]
	case OpAdd:
		return e.A.Eval(inputs) + e.B.Eval(inputs)
	case OpSub:
		return e.A.Eval(inputs) - e.B.Eval(inputs)
	case OpAnd:
		return e.A.Eval(inputs) & e.B.Eval(inputs)
	case OpOr:
		return e.A.Eval(inputs) | e.B.Eval(inputs)
	case OpXor:
		return e.A.Eval(inputs) ^ e.B.Eval(inputs)
	case OpNot:
		return ^e.A.Eval(inputs)
	case OpShl:
		return e.A.Eval(inputs) << e.K
	case OpShr:
		return e.A.Eval(inputs) >> e.K
	case OpMulK:
		return e.A.Eval(inputs) * e.K
	}
	panic("symexec: bad expr op")
}

// CondOp compares two bitvector expressions.
type CondOp uint8

// Condition operators.
const (
	CondEq CondOp = iota
	CondULt
	CondULe
	CondSLt
	CondSLe
)

// Cond is one path-constraint atom: A op B, possibly negated.
type Cond struct {
	Op   CondOp
	A, B *Expr
	Neg  bool
}

// Negate returns the logical complement.
func (c Cond) Negate() Cond { c.Neg = !c.Neg; return c }

// Concrete reports whether the condition has no symbolic operands, and its
// truth value when so.
func (c Cond) Concrete() (bool, bool) {
	av, aok := c.A.IsConst()
	bv, bok := c.B.IsConst()
	if !aok || !bok {
		return false, false
	}
	var r bool
	switch c.Op {
	case CondEq:
		r = av == bv
	case CondULt:
		r = av < bv
	case CondULe:
		r = av <= bv
	case CondSLt:
		r = int64(av) < int64(bv)
	case CondSLe:
		r = int64(av) <= int64(bv)
	}
	if c.Neg {
		r = !r
	}
	return r, true
}

// Eval computes the condition's truth under an input assignment.
func (c Cond) Eval(inputs map[string]uint64) bool {
	a, b := c.A.Eval(inputs), c.B.Eval(inputs)
	var r bool
	switch c.Op {
	case CondEq:
		r = a == b
	case CondULt:
		r = a < b
	case CondULe:
		r = a <= b
	case CondSLt:
		r = int64(a) < int64(b)
	case CondSLe:
		r = int64(a) <= int64(b)
	}
	if c.Neg {
		r = !r
	}
	return r
}

func (c Cond) String() string {
	sym := map[CondOp]string{CondEq: "==", CondULt: "<u", CondULe: "<=u", CondSLt: "<s", CondSLe: "<=s"}[c.Op]
	s := fmt.Sprintf("%s %s %s", c.A, sym, c.B)
	if c.Neg {
		return "!(" + s + ")"
	}
	return s
}
