package symexec

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/fs"
	"repro/internal/guest"
	"repro/internal/mem"
	"repro/internal/search"
	"repro/internal/snapshot"
	"repro/internal/solver"
	"repro/internal/vm"
)

// PathStatus classifies a completed execution path.
type PathStatus uint8

// Path statuses.
const (
	// PathExited: the guest exited; ExitStatus holds the status.
	PathExited PathStatus = iota
	// PathError: execution failed (fault, unsupported pattern, fuel).
	PathError
	// PathInfeasible: an assume() contradiction killed the path.
	PathInfeasible
)

func (s PathStatus) String() string {
	switch s {
	case PathExited:
		return "exited"
	case PathError:
		return "error"
	case PathInfeasible:
		return "infeasible"
	}
	return "path?"
}

// Path is one fully explored execution path, with a concrete witness for
// its symbolic inputs — the generated test case, KLEE-style.
type Path struct {
	Status      PathStatus
	ExitStatus  uint64
	Out         []byte
	Inputs      map[string]uint64
	Constraints []Cond
	Forks       int
	Err         error
}

// Stats counts explorer work.
type Stats struct {
	Paths        int64
	Forks        int64
	SolverCalls  int64
	Conflicts    int64
	Instructions uint64
	Snapshots    int64
	PeakStates   int
}

// Report is the outcome of an exploration.
type Report struct {
	Paths []Path
	Stats Stats
}

// Bugs returns the paths that exited with a non-zero status (the
// "analyzer found a property violation" signal).
func (r *Report) Bugs() []Path {
	var out []Path
	for _, p := range r.Paths {
		if p.Status == PathExited && p.ExitStatus != 0 {
			out = append(out, p)
		}
	}
	return out
}

// Options tunes an exploration.
type Options struct {
	// Strategy: "dfs" (default), "bfs", or "random".
	Strategy string
	// RandomSeed seeds the random strategy.
	RandomSeed uint64
	// MaxPaths bounds completed paths (0 = unlimited).
	MaxPaths int
	// MaxForks bounds state forks (0 = unlimited).
	MaxForks int64
	// FuelPerSegment bounds instructions between stops (default 10M).
	FuelPerSegment int64
	// MaxConflicts bounds SAT effort per feasibility query (default 100k).
	MaxConflicts int64
	// EagerCopy forks states by full-copy checkpointing instead of
	// lightweight snapshots — the E6 ablation representing the software
	// state-copying S2E grafts onto QEMU.
	EagerCopy bool
}

// pending is a schedulable symbolic state: the concrete part as either a
// lightweight snapshot or an eager checkpoint, plus the symbolic overlay
// and path constraints.
type pending struct {
	// Exactly one of snap/eager is set.
	snap  *snapshot.State
	eager *eagerState

	overlay map[uint64]*Expr
	sregs   *[vm.NumRegs]*Expr // symbolic register overlay (may be nil)
	pcs     []Cond
	rip     uint64
	forks   int
}

type eagerState struct {
	img  *checkpoint.Image
	fsn  *fs.Snapshot
	regs vm.Registers
	out  []byte
}

// Explorer drives multi-path symbolic execution of one SVX64 image.
type Explorer struct {
	alloc *mem.FrameAllocator
	tree  *snapshot.Tree
	opts  Options
	stats Stats

	strategy search.Strategy[*pending]
	rootCtx  *snapshot.Context
}

// NewExplorer loads img and prepares an exploration.
func NewExplorer(img *guest.Image, opts Options) (*Explorer, error) {
	if opts.FuelPerSegment == 0 {
		opts.FuelPerSegment = 10_000_000
	}
	if opts.MaxConflicts == 0 {
		opts.MaxConflicts = 100_000
	}
	alloc := mem.NewFrameAllocator(0)
	as, regs, err := guest.Load(img, alloc, guest.LoadOptions{})
	if err != nil {
		return nil, err
	}
	ex := &Explorer{alloc: alloc, tree: snapshot.NewTree(), opts: opts}
	ex.rootCtx = &snapshot.Context{Mem: as, FS: fs.New(), Regs: regs}
	switch opts.Strategy {
	case "", "dfs":
		ex.strategy = search.NewDFS[*pending]()
	case "bfs":
		ex.strategy = search.NewBFS[*pending]()
	case "random":
		ex.strategy = search.NewRandom[*pending](opts.RandomSeed)
	default:
		return nil, fmt.Errorf("symexec: unknown strategy %q", opts.Strategy)
	}
	return ex, nil
}

// Tree exposes snapshot-tree statistics.
func (ex *Explorer) Tree() *snapshot.Tree { return ex.tree }

// Alloc exposes the frame allocator (memory accounting in benches).
func (ex *Explorer) Alloc() *mem.FrameAllocator { return ex.alloc }

func (ex *Explorer) release(p *pending) {
	if p.snap != nil {
		p.snap.Release()
	}
}

// restore materializes a pending state into a runnable context.
func (ex *Explorer) restore(p *pending) (*snapshot.Context, error) {
	if p.snap != nil {
		ctx := p.snap.Restore()
		ctx.Regs.RIP = p.rip
		return ctx, nil
	}
	as, err := checkpoint.Restore(p.eager.img, ex.alloc)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(p.eager.out))
	copy(out, p.eager.out)
	ctx := &snapshot.Context{Mem: as, FS: p.eager.fsn.Materialize(), Regs: p.eager.regs, Out: out}
	ctx.Regs.RIP = p.rip
	return ctx, nil
}

// capture freezes ctx for two pending children.
func (ex *Explorer) capture(ctx *snapshot.Context) (*pending, *pending) {
	a, b := &pending{}, &pending{}
	if ex.opts.EagerCopy {
		es := &eagerState{
			img:  checkpoint.Capture(ctx.Mem),
			fsn:  ctx.FS.Snapshot(),
			regs: ctx.Regs,
			out:  append([]byte(nil), ctx.Out...),
		}
		a.eager, b.eager = es, es
		return a, b
	}
	snap := ex.tree.Capture(ctx, nil)
	ex.stats.Snapshots++
	a.snap = snap
	b.snap = snap.Retain()
	return a, b
}

func cloneOverlay(o map[uint64]*Expr) map[uint64]*Expr {
	out := make(map[uint64]*Expr, len(o))
	for k, v := range o {
		out[k] = v
	}
	return out
}

// Run explores the program and returns the per-path report.
func (ex *Explorer) Run() (*Report, error) {
	report := &Report{}
	type live struct {
		ctx     *snapshot.Context
		overlay map[uint64]*Expr
		sregs   *[vm.NumRegs]*Expr
		pcs     []Cond
		forks   int
	}
	// Seed with the root.
	cur := &live{ctx: ex.rootCtx, overlay: map[uint64]*Expr{}}
	ex.rootCtx = nil

	finish := func(l *live, p Path) {
		p.Constraints = l.pcs
		p.Forks = l.forks
		p.Out = append([]byte(nil), l.ctx.Out...)
		if p.Status == PathExited && p.Inputs == nil {
			res := ex.check(l.pcs)
			if res.Status == solver.Sat {
				p.Inputs = res.Inputs
			}
		}
		report.Paths = append(report.Paths, p)
		ex.stats.Paths++
		l.ctx.Release()
	}

	for cur != nil {
		sc := newSymCPU(cur.ctx, cur.overlay, cur.sregs)
	segment:
		for {
			ev := sc.run(ex.opts.FuelPerSegment)
			ex.stats.Instructions += sc.retired
			sc.retired = 0
			switch ev.kind {
			case evExit:
				sc.syncRegs()
				finish(cur, Path{Status: PathExited, ExitStatus: ev.status})
				cur = nil
				break segment

			case evError:
				sc.syncRegs()
				finish(cur, Path{Status: PathError, Err: ev.err})
				cur = nil
				break segment

			case evInfeasible:
				finish(cur, Path{Status: PathInfeasible})
				cur = nil
				break segment

			case evBranch:
				takenPCS := append(append([]Cond(nil), cur.pcs...), ev.cond)
				fallPCS := append(append([]Cond(nil), cur.pcs...), ev.cond.Negate())
				takenRes := ex.check(takenPCS)
				var fallRes CheckResult
				isAssume := ev.fall == 0 // sys_assume has no fall-through
				if !isAssume {
					fallRes = ex.check(fallPCS)
				}
				takenOK := takenRes.Status == solver.Sat
				fallOK := !isAssume && fallRes.Status == solver.Sat

				switch {
				case takenOK && fallOK:
					// Genuine fork: freeze once, schedule both arms.
					if ex.opts.MaxForks > 0 && ex.stats.Forks >= ex.opts.MaxForks {
						finish(cur, Path{Status: PathError,
							Err: fmt.Errorf("symexec: fork budget exhausted")})
						cur = nil
						break segment
					}
					ex.stats.Forks++
					sc.syncRegs()
					sregs := sc.symRegs()
					pa, pb := ex.capture(cur.ctx)
					pa.overlay = cloneOverlay(cur.overlay)
					pa.sregs = sregs
					pa.pcs = takenPCS
					pa.rip = ev.taken
					pa.forks = cur.forks + 1
					pb.overlay = cloneOverlay(cur.overlay)
					pb.sregs = sregs
					pb.pcs = fallPCS
					pb.rip = ev.fall
					pb.forks = cur.forks + 1
					ex.strategy.PushAll([]search.Item[*pending]{
						{Payload: pa, Choice: 0, Depth: pa.forks},
						{Payload: pb, Choice: 1, Depth: pb.forks},
					})
					if n := ex.strategy.Len(); n > ex.stats.PeakStates {
						ex.stats.PeakStates = n
					}
					cur.ctx.Release()
					cur = nil
					break segment

				case takenOK:
					cur.pcs = takenPCS
					cur.ctx.Regs.RIP = ev.taken
					continue

				case fallOK:
					cur.pcs = fallPCS
					cur.ctx.Regs.RIP = ev.fall
					continue

				default:
					finish(cur, Path{Status: PathInfeasible})
					cur = nil
					break segment
				}
			}
		}

		if ex.opts.MaxPaths > 0 && len(report.Paths) >= ex.opts.MaxPaths {
			break
		}
		// Schedule the next pending state.
		if cur == nil {
			item, ok := ex.strategy.Pop()
			if !ok {
				break
			}
			p := item.Payload
			ctx, err := ex.restore(p)
			ex.release(p)
			if err != nil {
				return nil, err
			}
			cur = &live{ctx: ctx, overlay: p.overlay, sregs: p.sregs, pcs: p.pcs, forks: p.forks}
		}
	}
	// Drain anything left (MaxPaths stop).
	ex.strategy.Drain(func(it search.Item[*pending]) { ex.release(it.Payload) })
	if cur != nil {
		cur.ctx.Release()
	}
	report.Stats = ex.stats
	return report, nil
}

func (ex *Explorer) check(pcs []Cond) CheckResult {
	ex.stats.SolverCalls++
	res := Check(pcs, ex.opts.MaxConflicts)
	ex.stats.Conflicts += res.Conflicts
	return res
}
