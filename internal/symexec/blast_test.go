package symexec

import (
	"math/rand"
	"testing"

	"repro/internal/solver"
)

func TestExprFolding(t *testing.T) {
	x := Fresh("x")
	if v, ok := Add(Const(2), Const(3)).IsConst(); !ok || v != 5 {
		t.Error("const add did not fold")
	}
	if Add(x, Const(0)) != x {
		t.Error("x+0 != x")
	}
	if Sub(x, x).Op != OpConst {
		t.Error("x-x did not fold to 0")
	}
	if v, _ := And(x, Const(0)).IsConst(); v != 0 {
		t.Error("x&0 != 0")
	}
	if And(x, Const(^uint64(0))) != x {
		t.Error("x&~0 != x")
	}
	if MulK(x, 1) != x {
		t.Error("x*1 != x")
	}
	if Shl(x, 0) != x {
		t.Error("x<<0 != x")
	}
	if v, _ := Shr(Const(0x100), 4).IsConst(); v != 0x10 {
		t.Error("const shr")
	}
}

func TestExprEval(t *testing.T) {
	x, y := Fresh("x"), Fresh("y")
	e := Add(MulK(x, 3), Xor(y, Const(0xff)))
	in := map[string]uint64{"x": 7, "y": 0x0f}
	if got := e.Eval(in); got != 21+(0x0f^0xff) {
		t.Errorf("eval = %d", got)
	}
}

func TestCondConcrete(t *testing.T) {
	c := Cond{Op: CondULt, A: Const(3), B: Const(5)}
	v, ok := c.Concrete()
	if !ok || !v {
		t.Error("3 <u 5 not concrete-true")
	}
	v, _ = c.Negate().Concrete()
	if v {
		t.Error("negation wrong")
	}
	sym := Cond{Op: CondEq, A: Fresh("x"), B: Const(1)}
	if _, ok := sym.Concrete(); ok {
		t.Error("symbolic cond claimed concrete")
	}
	// Signed comparison.
	c = Cond{Op: CondSLt, A: Const(^uint64(0)), B: Const(1)} // -1 < 1
	if v, _ := c.Concrete(); !v {
		t.Error("-1 <s 1 false")
	}
	c = Cond{Op: CondULt, A: Const(^uint64(0)), B: Const(1)} // max <u 1
	if v, _ := c.Concrete(); v {
		t.Error("max <u 1 true")
	}
}

func checkSat(t *testing.T, conds []Cond) CheckResult {
	t.Helper()
	res := Check(conds, 0)
	if res.Status == solver.Sat {
		// Every witness must actually satisfy the constraints.
		for _, c := range conds {
			if !c.Eval(res.Inputs) {
				t.Fatalf("witness %v violates %v", res.Inputs, c)
			}
		}
	}
	return res
}

func TestCheckSimpleEquality(t *testing.T) {
	x := Fresh("x")
	res := checkSat(t, []Cond{{Op: CondEq, A: Add(x, Const(1)), B: Const(10)}})
	if res.Status != solver.Sat || res.Inputs["x"] != 9 {
		t.Errorf("x+1==10: %v %v", res.Status, res.Inputs)
	}
}

func TestCheckUnsat(t *testing.T) {
	x := Fresh("x")
	res := Check([]Cond{
		{Op: CondULt, A: x, B: Const(2)},
		{Op: CondULt, A: Const(5), B: x},
	}, 0)
	if res.Status != solver.Unsat {
		t.Errorf("x<2 ∧ 5<x = %v", res.Status)
	}
}

func TestCheckMulK(t *testing.T) {
	x := Fresh("x")
	res := checkSat(t, []Cond{
		{Op: CondEq, A: MulK(x, 3), B: Const(12)},
		{Op: CondULt, A: x, B: Const(100)},
	})
	if res.Status != solver.Sat {
		t.Fatalf("3x==12: %v", res.Status)
	}
	if res.Inputs["x"]*3 != 12 {
		t.Errorf("witness x = %d", res.Inputs["x"])
	}
}

func TestCheckSigned(t *testing.T) {
	x := Fresh("x")
	// x <s 0 ∧ x >u 100: negative as signed, large as unsigned — any
	// negative 64-bit value works.
	res := checkSat(t, []Cond{
		{Op: CondSLt, A: x, B: Const(0)},
		{Op: CondULt, A: Const(100), B: x},
	})
	if res.Status != solver.Sat {
		t.Fatalf("status = %v", res.Status)
	}
	if int64(res.Inputs["x"]) >= 0 {
		t.Errorf("witness not negative: %#x", res.Inputs["x"])
	}
}

func TestCheckShiftAndMask(t *testing.T) {
	x := Fresh("x")
	// ((x >> 8) & 0xff) == 0x42 ∧ (x & 0xff) == 0x43
	res := checkSat(t, []Cond{
		{Op: CondEq, A: And(Shr(x, 8), Const(0xff)), B: Const(0x42)},
		{Op: CondEq, A: And(x, Const(0xff)), B: Const(0x43)},
	})
	if res.Status != solver.Sat {
		t.Fatalf("status = %v", res.Status)
	}
	v := res.Inputs["x"]
	if (v>>8)&0xff != 0x42 || v&0xff != 0x43 {
		t.Errorf("witness %#x", v)
	}
}

func TestCheckXorSubNot(t *testing.T) {
	x, y := Fresh("x"), Fresh("y")
	// For odd x, x-1 flips only the low bit, so x^y==1 ∧ x-y==1 ∧ x odd
	// is satisfiable; demanding x^y==0xdead instead would be UNSAT.
	res := checkSat(t, []Cond{
		{Op: CondEq, A: Xor(x, y), B: Const(1)},
		{Op: CondEq, A: Sub(x, y), B: Const(1)},
		{Op: CondEq, A: And(Not(x), Const(1)), B: Const(0)}, // x odd
	})
	if res.Status != solver.Sat {
		t.Fatalf("status = %v", res.Status)
	}
	unsat := Check([]Cond{
		{Op: CondEq, A: Xor(x, y), B: Const(0xdead)},
		{Op: CondEq, A: Sub(x, y), B: Const(1)},
		{Op: CondEq, A: And(Not(x), Const(1)), B: Const(0)},
	}, 0)
	if unsat.Status != solver.Unsat {
		t.Errorf("xor=0xdead variant = %v, want unsat", unsat.Status)
	}
}

// TestQuickBlastMatchesEval cross-checks the bit-blaster against direct
// expression evaluation on random expressions and inputs.
func TestQuickBlastMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x, y := Fresh("x"), Fresh("y")
	randExpr := func() *Expr {
		e := x
		for i := 0; i < rng.Intn(5)+1; i++ {
			switch rng.Intn(8) {
			case 0:
				e = Add(e, y)
			case 1:
				e = Sub(e, Const(uint64(rng.Intn(1000))))
			case 2:
				e = And(e, Const(rng.Uint64()))
			case 3:
				e = Or(e, y)
			case 4:
				e = Xor(e, Const(rng.Uint64()))
			case 5:
				e = Shl(e, uint64(rng.Intn(16)))
			case 6:
				e = Shr(e, uint64(rng.Intn(16)))
			case 7:
				e = MulK(e, uint64(rng.Intn(7)+1))
			}
		}
		return e
	}
	for trial := 0; trial < 25; trial++ {
		e := randExpr()
		xv, yv := rng.Uint64(), rng.Uint64()
		want := e.Eval(map[string]uint64{"x": xv, "y": yv})
		// Constrain x, y to the chosen values and e to its evaluation:
		// must be SAT. Then constrain e != evaluation: must be UNSAT.
		base := []Cond{
			{Op: CondEq, A: x, B: Const(xv)},
			{Op: CondEq, A: y, B: Const(yv)},
		}
		sat := Check(append(base, Cond{Op: CondEq, A: e, B: Const(want)}), 0)
		if sat.Status != solver.Sat {
			t.Fatalf("trial %d: e == eval(e) unsat (%s)", trial, e)
		}
		unsat := Check(append(base, Cond{Op: CondEq, A: e, B: Const(want), Neg: true}), 0)
		if unsat.Status != solver.Unsat {
			t.Fatalf("trial %d: e != eval(e) sat (%s)", trial, e)
		}
	}
}

func TestCheckULeSLe(t *testing.T) {
	x := Fresh("x")
	res := checkSat(t, []Cond{
		{Op: CondULe, A: x, B: Const(10)},
		{Op: CondULe, A: Const(10), B: x},
	})
	if res.Status != solver.Sat || res.Inputs["x"] != 10 {
		t.Errorf("ULe sandwich: %v %v", res.Status, res.Inputs)
	}
	res2 := checkSat(t, []Cond{
		{Op: CondSLe, A: x, B: Const(0)},
		{Op: CondSLe, A: Const(0), B: x},
	})
	if res2.Status != solver.Sat || res2.Inputs["x"] != 0 {
		t.Errorf("SLe sandwich: %v %v", res2.Status, res2.Inputs)
	}
}
