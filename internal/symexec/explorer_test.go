package symexec

import (
	"strings"
	"testing"

	"repro/internal/guest"
)

func explore(t *testing.T, src string, opts Options) *Report {
	t.Helper()
	img, err := guest.AssembleImage(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	ex, err := NewExplorer(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ex.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if live := ex.Tree().Live(); live != 0 {
		t.Errorf("snapshot leak: %d live", live)
	}
	return rep
}

const twoPathSrc = `
_start:
    mov rax, 600        ; make_symbolic -> rax
    mov rdi, 0
    syscall
    cmp rax, 42
    jne miss
    mov rdi, 1          ; bug path
    mov rax, 60
    syscall
miss:
    mov rdi, 0
    mov rax, 60
    syscall
`

func TestTwoPathFork(t *testing.T) {
	rep := explore(t, twoPathSrc, Options{})
	if len(rep.Paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(rep.Paths))
	}
	bugs := rep.Bugs()
	if len(bugs) != 1 {
		t.Fatalf("bugs = %d, want 1", len(bugs))
	}
	// The generated test case must trigger the bug arm.
	if got := bugs[0].Inputs["in0"]; got != 42 {
		t.Errorf("bug witness in0 = %d, want 42", got)
	}
	if rep.Stats.Forks != 1 || rep.Stats.SolverCalls == 0 {
		t.Errorf("stats = %+v", rep.Stats)
	}
}

func TestEagerCopyAblationMatches(t *testing.T) {
	a := explore(t, twoPathSrc, Options{})
	b := explore(t, twoPathSrc, Options{EagerCopy: true})
	if len(a.Paths) != len(b.Paths) {
		t.Fatalf("snapshot %d vs eager %d paths", len(a.Paths), len(b.Paths))
	}
	if len(a.Bugs()) != len(b.Bugs()) {
		t.Error("bug counts differ between fork mechanisms")
	}
}

func TestTwoInputsLinearConstraint(t *testing.T) {
	rep := explore(t, `
_start:
    mov rax, 600
    mov rdi, 0
    syscall
    mov r12, rax        ; x
    mov rax, 600
    mov rdi, 1
    syscall
    mov r13, rax        ; y
    mov rbx, r12
    add rbx, r13
    cmp rbx, 100
    jne no
    cmp r12, 10
    jae no
    mov rdi, 7          ; x+y==100 && x<10
    mov rax, 60
    syscall
no:
    mov rdi, 0
    mov rax, 60
    syscall
`, Options{})
	var hit *Path
	for i := range rep.Paths {
		if rep.Paths[i].Status == PathExited && rep.Paths[i].ExitStatus == 7 {
			hit = &rep.Paths[i]
		}
	}
	if hit == nil {
		t.Fatalf("deep path not found; paths=%d", len(rep.Paths))
	}
	x, y := hit.Inputs["in0"], hit.Inputs["in1"]
	if x+y != 100 || x >= 10 {
		t.Errorf("witness x=%d y=%d", x, y)
	}
}

func TestPasswordBytes(t *testing.T) {
	// The KLEE demo: symbolic 8 bytes checked one at a time; symbolic
	// execution must reconstruct the password from the constraints.
	rep := explore(t, `
.data
buf: .space 8
pw:  .asciz "SESAME!"
.text
_start:
    mov rax, 600        ; one symbolic 64-bit word = 8 symbolic bytes
    mov rdi, 0
    syscall
    mov rbx, =buf
    store rax, [rbx]
    mov rsi, =pw
    mov rcx, 0
loop:
    loadbx rdx, [rbx + rcx*1]
    loadbx r8, [rsi + rcx*1]
    cmp rdx, r8
    jne reject
    inc rcx
    cmp rcx, 8          ; compare including the NUL
    jl loop
    mov rdi, 1          ; full match
    mov rax, 60
    syscall
reject:
    mov rdi, 0
    mov rax, 60
    syscall
`, Options{})
	// 8 reject paths (first mismatch at byte 0..7) + 1 accept path.
	if len(rep.Paths) != 9 {
		t.Fatalf("paths = %d, want 9", len(rep.Paths))
	}
	bugs := rep.Bugs()
	if len(bugs) != 1 {
		t.Fatalf("accept paths = %d", len(bugs))
	}
	v := bugs[0].Inputs["in0"]
	got := make([]byte, 8)
	for i := range got {
		got[i] = byte(v >> (8 * i))
	}
	if string(got[:7]) != "SESAME!" || got[7] != 0 {
		t.Errorf("recovered password %q (%#x)", got, v)
	}
}

func TestAssumeKillsContradiction(t *testing.T) {
	rep := explore(t, `
_start:
    mov rax, 600
    mov rdi, 0
    syscall
    mov r12, rax
    mov rbx, rax
    and rbx, 1
    mov rdi, rbx
    mov rax, 601        ; assume(x & 1) -- x odd
    syscall
    cmp r12, 2          ; x == 2 contradicts oddness: arm infeasible
    jne odd
    mov rdi, 99
    mov rax, 60
    syscall
odd:
    mov rdi, 0
    mov rax, 60
    syscall
`, Options{})
	for _, p := range rep.Paths {
		if p.Status == PathExited && p.ExitStatus == 99 {
			t.Error("infeasible arm executed")
		}
		if p.Status == PathExited {
			if p.Inputs["in0"]&1 != 1 {
				t.Errorf("witness violates assume: %#x", p.Inputs["in0"])
			}
		}
	}
	if rep.Stats.Forks != 0 {
		t.Errorf("forks = %d, want 0 (one arm infeasible)", rep.Stats.Forks)
	}
}

func TestConcreteProgramSinglePath(t *testing.T) {
	rep := explore(t, `
.data
msg: .asciz "plain"
.text
_start:
    mov rax, 1
    mov rdi, 1
    mov rsi, =msg
    mov rdx, 5
    syscall
    mov rdi, 0
    mov rax, 60
    syscall
`, Options{})
	if len(rep.Paths) != 1 || rep.Stats.Forks != 0 {
		t.Fatalf("paths=%d forks=%d", len(rep.Paths), rep.Stats.Forks)
	}
	if string(rep.Paths[0].Out) != "plain" {
		t.Errorf("out = %q", rep.Paths[0].Out)
	}
}

func TestBranchTreeDepth(t *testing.T) {
	// 4 sequential symbolic branches → 16 paths.
	rep := explore(t, `
_start:
    mov rax, 600
    mov rdi, 0
    syscall
    mov r12, rax
    mov r13, 0
    mov rbx, r12
    and rbx, 1
    cmp rbx, 0
    je b1
    add r13, 1
b1:
    mov rbx, r12
    shr rbx, 1
    and rbx, 1
    cmp rbx, 0
    je b2
    add r13, 2
b2:
    mov rbx, r12
    shr rbx, 2
    and rbx, 1
    cmp rbx, 0
    je b3
    add r13, 4
b3:
    mov rbx, r12
    shr rbx, 3
    and rbx, 1
    cmp rbx, 0
    je b4
    add r13, 8
b4:
    mov rdi, r13
    mov rax, 60
    syscall
`, Options{})
	if len(rep.Paths) != 16 {
		t.Fatalf("paths = %d, want 16", len(rep.Paths))
	}
	if rep.Stats.Forks != 15 {
		t.Errorf("forks = %d, want 15", rep.Stats.Forks)
	}
	// Each path's exit status equals in0's low nibble in its witness.
	seen := map[uint64]bool{}
	for _, p := range rep.Paths {
		if p.Status != PathExited {
			t.Fatalf("path error: %v", p.Err)
		}
		if p.Inputs["in0"]&0xf != p.ExitStatus {
			t.Errorf("witness %#x does not reproduce status %d", p.Inputs["in0"], p.ExitStatus)
		}
		seen[p.ExitStatus] = true
	}
	if len(seen) != 16 {
		t.Errorf("distinct statuses = %d", len(seen))
	}
}

func TestStrategiesCoverSamePaths(t *testing.T) {
	count := func(strategy string) int {
		rep := explore(t, twoPathSrc, Options{Strategy: strategy, RandomSeed: 3})
		return len(rep.Paths)
	}
	if d, b, r := count("dfs"), count("bfs"), count("random"); d != 2 || b != 2 || r != 2 {
		t.Errorf("paths dfs=%d bfs=%d random=%d", d, b, r)
	}
	img, _ := guest.AssembleImage(twoPathSrc)
	if _, err := NewExplorer(img, Options{Strategy: "alien"}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestMaxPathsStops(t *testing.T) {
	rep := explore(t, `
_start:
    mov rax, 600
    mov rdi, 0
    syscall
    mov r12, rax
    mov rcx, 0
loop:
    mov rbx, r12
    shr rbx, rcx
    and rbx, 1
    cmp rbx, 0
    je skip
    nop
skip:
    inc rcx
    cmp rcx, 20
    jl loop
    mov rdi, 0
    mov rax, 60
    syscall
`, Options{MaxPaths: 5})
	if len(rep.Paths) > 5 {
		t.Errorf("paths = %d, want <= 5", len(rep.Paths))
	}
}

func TestUnsupportedPatternIsPathError(t *testing.T) {
	// Symbolic address dereference.
	rep := explore(t, `
_start:
    mov rax, 600
    mov rdi, 0
    syscall
    load rbx, [rax+0]
    hlt
`, Options{})
	if len(rep.Paths) != 1 || rep.Paths[0].Status != PathError {
		t.Fatalf("paths = %+v", rep.Paths)
	}
	if !strings.Contains(rep.Paths[0].Err.Error(), "symbolic address") {
		t.Errorf("err = %v", rep.Paths[0].Err)
	}
}
