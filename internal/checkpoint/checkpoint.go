// Package checkpoint implements the baselines the paper positions
// lightweight snapshots against:
//
//   - Full copy ([14] libckpt-style): every resident page is copied out at
//     capture and copied back at restore — O(resident) both ways.
//   - Incremental: only pages dirtied since the previous capture are
//     copied, with dirty detection keyed off snapshot epochs: each capture
//     advances the space's epoch, and a page is dirty iff its frame was
//     stamped at or after the previous capture's epoch.
//   - EagerFork: the naive sys_fork cost model of §3 — a complete eager
//     duplication of the address space per exploration branch.
//   - ScanSnapshot: the D1 ablation — snapshot creation that walks every
//     resident PTE (scan-and-mark-RO) instead of sharing the root in O(1).
package checkpoint

import (
	"fmt"

	"repro/internal/mem"
)

// Page is one copied-out page.
type Page struct {
	Addr uint64
	Data [mem.PageSize]byte
}

// Image is a classic checkpoint: region table, break, and page copies.
type Image struct {
	VMAs  []mem.VMA
	Brk   uint64
	Pages []Page
}

// Bytes returns the checkpoint payload size.
func (img *Image) Bytes() int64 { return int64(len(img.Pages)) * mem.PageSize }

// Capture copies every resident page of as out of the address space —
// the full-copy checkpoint baseline.
func Capture(as *mem.AddressSpace) *Image {
	img := &Image{VMAs: as.VMAs()}
	img.Brk, _ = as.Brk(0)
	as.ForEachPage(func(addr uint64, f *mem.Frame) {
		p := Page{Addr: addr}
		p.Data = f.Data
		img.Pages = append(img.Pages, p)
	})
	return img
}

// Restore materializes a fresh address space from the checkpoint.
func Restore(img *Image, alloc *mem.FrameAllocator) (*mem.AddressSpace, error) {
	as := mem.NewAddressSpace(alloc)
	for _, v := range img.VMAs {
		if err := as.Map(v.Start, v.Size(), v.Perm, v.Name); err != nil {
			as.Release()
			return nil, fmt.Errorf("checkpoint: restore %s: %w", v.Name, err)
		}
	}
	as.InitBrk(img.Brk)
	for i := range img.Pages {
		p := &img.Pages[i]
		if err := as.WriteForce(p.Data[:], p.Addr); err != nil {
			as.Release()
			return nil, fmt.Errorf("checkpoint: restore page %#x: %w", p.Addr, err)
		}
	}
	return as, nil
}

// EagerFork duplicates as completely — a new address space with private
// copies of every resident page. This is the naive fork-per-extension cost
// model that §3 argues against.
func EagerFork(as *mem.AddressSpace, alloc *mem.FrameAllocator) (*mem.AddressSpace, error) {
	out := mem.NewAddressSpace(alloc)
	for _, v := range as.VMAs() {
		if err := out.Map(v.Start, v.Size(), v.Perm, v.Name); err != nil {
			out.Release()
			return nil, err
		}
	}
	if brk, err := as.Brk(0); err == nil {
		out.InitBrk(brk)
	}
	var werr error
	as.ForEachPage(func(addr uint64, f *mem.Frame) {
		if werr == nil {
			werr = out.WriteForce(f.Data[:], addr)
		}
	})
	if werr != nil {
		out.Release()
		return nil, werr
	}
	return out, nil
}

// ScanSnapshot is the D1 ablation: it produces the same CoW-shared fork as
// AddressSpace.Fork but first walks every resident page, modelling the
// scan-and-mark-read-only snapshot design whose creation cost is
// O(resident pages) instead of O(1).
func ScanSnapshot(as *mem.AddressSpace) (*mem.AddressSpace, int) {
	scanned := 0
	as.ForEachPage(func(addr uint64, f *mem.Frame) {
		// Touch the PTE the way an mprotect sweep would.
		_ = f
		scanned++
	})
	return as.Fork(), scanned
}

// Incremental checkpoints a live address space repeatedly, copying only
// pages dirtied since the previous capture. Dirty detection keys off
// snapshot epochs instead of the old freeze-point fork: every slow-path
// write stamps the frame with the space's current epoch token, so "written
// since the last capture" is simply a stamp at or after that capture's
// epoch. Each Capture then advances the epoch, which stales the space's
// write-TLB entries in O(1) and forces the next write per page back
// through the stamping fault path — no CoW reference fork, no O(resident)
// baseline to retain between captures.
type Incremental struct {
	epoch  uint64 // epoch token issued by the previous Capture; 0 = none yet
	layers []*Image
}

// NewIncremental starts an incremental checkpoint series.
func NewIncremental() *Incremental { return &Incremental{} }

// Capture records pages changed since the last Capture (everything, the
// first time) and returns the delta image.
func (inc *Incremental) Capture(as *mem.AddressSpace) *Image {
	img := &Image{VMAs: as.VMAs()}
	img.Brk, _ = as.Brk(0)
	as.ForEachPage(func(addr uint64, f *mem.Frame) {
		if inc.epoch != 0 && f.Epoch() < inc.epoch {
			return // not written since the previous capture's epoch
		}
		p := Page{Addr: addr}
		p.Data = f.Data
		img.Pages = append(img.Pages, p)
	})
	inc.epoch = as.AdvanceEpoch()
	inc.layers = append(inc.layers, img)
	return img
}

// Layers returns the captured deltas in order. Entries freed by
// ReleaseLayer are nil.
func (inc *Incremental) Layers() []*Image { return inc.layers }

// ReleaseLayer frees the page payload of one captured delta — memory
// reclamation for a series whose early deltas have been shipped or
// superseded. The chain is left with a hole: Restore refuses to run until
// the series is re-captured from scratch, because replaying around a
// missing delta would silently rebuild an image with stale (or zero)
// pages where the released layer's writes belonged.
func (inc *Incremental) ReleaseLayer(i int) error {
	if i < 0 || i >= len(inc.layers) {
		return fmt.Errorf("checkpoint: no layer %d (have %d)", i, len(inc.layers))
	}
	inc.layers[i] = nil
	return nil
}

// Restore rebuilds the state as of the latest capture by replaying every
// layer in order. A chain holed by ReleaseLayer errors instead of
// restoring: every layer's pages are needed, since a page written in
// layer k and untouched afterwards exists nowhere else.
func (inc *Incremental) Restore(alloc *mem.FrameAllocator) (*mem.AddressSpace, error) {
	if len(inc.layers) == 0 {
		return nil, fmt.Errorf("checkpoint: no layers")
	}
	for i, layer := range inc.layers {
		if layer == nil {
			return nil, fmt.Errorf("checkpoint: layer %d of %d released; image incomplete", i, len(inc.layers))
		}
	}
	latest := inc.layers[len(inc.layers)-1]
	as := mem.NewAddressSpace(alloc)
	for _, v := range latest.VMAs {
		if err := as.Map(v.Start, v.Size(), v.Perm, v.Name); err != nil {
			as.Release()
			return nil, err
		}
	}
	as.InitBrk(latest.Brk)
	for _, layer := range inc.layers {
		for i := range layer.Pages {
			p := &layer.Pages[i]
			// Pages may have been unmapped later; skip those.
			if err := as.WriteForce(p.Data[:], p.Addr); err != nil {
				if _, ok := mem.IsFault(err); ok {
					continue
				}
				as.Release()
				return nil, err
			}
		}
	}
	return as, nil
}

// Release ends the incremental series. The epoch-keyed dirty walk holds no
// memory reference point, so this only resets the series state; it is kept
// so call sites releasing a checkpoint source stay uniform.
func (inc *Incremental) Release() {
	inc.epoch = 0
}
