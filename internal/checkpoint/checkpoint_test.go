package checkpoint

import (
	"testing"

	"repro/internal/mem"
)

func buildSpace(t *testing.T, alloc *mem.FrameAllocator, pages int) *mem.AddressSpace {
	t.Helper()
	as := mem.NewAddressSpace(alloc)
	if err := as.Map(0x10000, uint64(pages)*mem.PageSize, mem.PermRW, "heap"); err != nil {
		t.Fatal(err)
	}
	as.InitBrk(0x10000)
	for i := 0; i < pages; i++ {
		if err := as.WriteU64(0x10000+uint64(i)*mem.PageSize, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return as
}

func TestFullCaptureRestore(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	as := buildSpace(t, alloc, 16)
	defer as.Release()
	img := Capture(as)
	if len(img.Pages) != 16 {
		t.Fatalf("captured %d pages", len(img.Pages))
	}
	if img.Bytes() != 16*mem.PageSize {
		t.Errorf("Bytes = %d", img.Bytes())
	}
	// Mutate the original after capture.
	as.WriteU64(0x10000, 999)

	re, err := Restore(img, alloc)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Release()
	for i := 0; i < 16; i++ {
		v, err := re.ReadU64(0x10000 + uint64(i)*mem.PageSize)
		if err != nil || v != uint64(i+1) {
			t.Errorf("page %d = %d, %v", i, v, err)
		}
	}
	if len(re.VMAs()) != 1 || re.VMAs()[0].Name != "heap" {
		t.Errorf("VMAs = %v", re.VMAs())
	}
}

func TestEagerForkIndependent(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	as := buildSpace(t, alloc, 8)
	defer as.Release()
	live0 := alloc.Live()
	cp, err := EagerFork(as, alloc)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Release()
	// Eager: all pages were physically duplicated up front.
	if got := alloc.Live() - live0; got != 8 {
		t.Errorf("eager fork allocated %d frames, want 8", got)
	}
	cp.WriteU64(0x10000, 42)
	if v, _ := as.ReadU64(0x10000); v != 1 {
		t.Error("eager fork aliases original")
	}
}

func TestScanSnapshot(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	as := buildSpace(t, alloc, 12)
	defer as.Release()
	snap, scanned := ScanSnapshot(as)
	defer snap.Release()
	if scanned != 12 {
		t.Errorf("scanned %d, want 12", scanned)
	}
	as.WriteU64(0x10000, 77)
	if v, _ := snap.ReadU64(0x10000); v != 1 {
		t.Error("scan snapshot not isolated")
	}
}

func TestIncrementalDeltas(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	as := buildSpace(t, alloc, 10)
	defer as.Release()
	inc := NewIncremental()
	defer inc.Release()

	first := inc.Capture(as)
	if len(first.Pages) != 10 {
		t.Fatalf("first capture = %d pages, want 10 (everything)", len(first.Pages))
	}
	// Touch 3 pages.
	for i := 0; i < 3; i++ {
		as.WriteU64(0x10000+uint64(i)*mem.PageSize, uint64(100+i))
	}
	second := inc.Capture(as)
	if len(second.Pages) != 3 {
		t.Fatalf("second capture = %d pages, want 3 (dirty only)", len(second.Pages))
	}
	// No writes → empty delta.
	third := inc.Capture(as)
	if len(third.Pages) != 0 {
		t.Fatalf("third capture = %d pages, want 0", len(third.Pages))
	}
	// Restore replays layers to the latest state.
	re, err := inc.Restore(alloc)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Release()
	for i := 0; i < 10; i++ {
		want := uint64(i + 1)
		if i < 3 {
			want = uint64(100 + i)
		}
		v, _ := re.ReadU64(0x10000 + uint64(i)*mem.PageSize)
		if v != want {
			t.Errorf("restored page %d = %d, want %d", i, v, want)
		}
	}
}

func TestIncrementalEmptyRestore(t *testing.T) {
	inc := NewIncremental()
	if _, err := inc.Restore(mem.NewFrameAllocator(0)); err == nil {
		t.Error("restore of empty series succeeded")
	}
}

func TestRestorePreservesBrk(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	as := buildSpace(t, alloc, 4)
	defer as.Release()
	if _, err := as.Brk(0x10000 + 2*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	img := Capture(as)
	re, err := Restore(img, alloc)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Release()
	b, _ := re.Brk(0)
	if b != 0x10000+2*mem.PageSize {
		t.Errorf("restored brk = %#x", b)
	}
}

// TestRestoreAfterMidChainReleaseErrors is the regression test for the
// hole-punched-image bug: releasing a mid-chain delta and then restoring
// must error cleanly — the released layer's pages exist nowhere else, so
// a "successful" restore would silently contain stale data.
func TestRestoreAfterMidChainReleaseErrors(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	as := buildSpace(t, alloc, 6)
	defer as.Release()
	inc := NewIncremental()
	defer inc.Release()

	inc.Capture(as)
	// Layer 1 carries page 0's only copy of value 200.
	as.WriteU64(0x10000, 200)
	inc.Capture(as)
	// Layer 2 touches a different page, so layer 1 stays load-bearing.
	as.WriteU64(0x10000+mem.PageSize, 300)
	inc.Capture(as)

	if err := inc.ReleaseLayer(1); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Restore(alloc); err == nil {
		t.Fatal("Restore over a released mid-chain layer succeeded; want error")
	}
	if got := inc.Layers()[1]; got != nil {
		t.Errorf("released layer still present: %v", got)
	}
	// Out-of-range release is rejected.
	if err := inc.ReleaseLayer(7); err == nil {
		t.Error("ReleaseLayer(7) accepted")
	}
	if err := inc.ReleaseLayer(-1); err == nil {
		t.Error("ReleaseLayer(-1) accepted")
	}
}
