// Package store is the persistence tier under the snapshot tree: a
// durable, content-addressed snapshot store that turns capacity eviction
// into demotion instead of loss. A demoted snapshot.State is serialized
// as a manifest (registers, depth, parent hash, address-space shape, file
// image, descriptor table) plus chunks — memory pages and file blocks —
// keyed by SHA-256 of their content, so sibling states share identical
// chunks on disk exactly the way fs.UpdateFile shares blocks in memory.
//
// Writing a spill reuses checkpoint.Incremental's dirty-page detection:
// a page whose backing frame is identical to the parent's (FrameAt
// pointer equality, the CoW layer's "not dirtied since the fork" signal)
// reuses the parent's recorded hash instead of being re-hashed, so a
// spill costs work proportional to pages changed since the parent, and a
// chunk that is already resident on disk is never rewritten.
//
// Durability is an append-only manifest log: each record is a framed,
// checksummed put or delete. Open replays the log (truncating a torn
// tail), so a restarted process recovers every manifest and can answer
// previously-parked references — the service layer reloads them on
// access, promote-on-demand.
package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/fs"
	"repro/internal/mem"
	"repro/internal/snapshot"
)

// ErrNotFound reports an id the store has no manifest for.
var ErrNotFound = errors.New("store: unknown snapshot id")

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("store: closed")

// Log record framing.
const (
	logMagic = uint32(0x4F545353) // "SSTO"
	opPut    = byte(1)
	opDelete = byte(2)
	// opIDMark persists a service-id high-water mark (8-byte payload):
	// every id at or below it may already have been issued to a client,
	// even if no manifest for it survived (its spill failed, or it was
	// released before demotion). Replay keeps the max, so a restarted
	// service can never re-issue such an id for a different problem.
	opIDMark    = byte(3)
	logName     = "manifests.log"
	chunkDir    = "chunks"
	u64Payload  = 8
	recHdrBytes = 4 + 1 + 4 // magic, op, payload length
)

// hashCacheCap bounds the page-hash cache (per live ancestor state); each
// entry is one map of page hashes, so this caps memory, not correctness —
// a missing entry just re-hashes.
const hashCacheCap = 4096

// Stats is a point-in-time summary of the cold tier.
type Stats struct {
	// Manifests is the number of demoted snapshots resident in the store.
	Manifests int
	// Chunks is the number of distinct content-addressed chunks.
	Chunks int
	// ColdBytes is the physical chunk payload size on disk (trailing
	// zeroes trimmed), excluding the manifest log.
	ColdBytes int64
	// LogicalBytes prices the same snapshots as full copies: chunkSize
	// for every chunk reference across every manifest.
	LogicalBytes int64
	// UniqueBytes is chunkSize for every distinct chunk: LogicalBytes
	// after content-addressed dedup but before zero-trimming.
	UniqueBytes int64
}

// DedupRatio is the fraction of referenced chunk bytes that dedup onto
// chunks shared with other manifests — the on-disk analogue of the
// service's in-memory SharedRatio.
func (st Stats) DedupRatio() float64 {
	if st.LogicalBytes == 0 {
		return 0
	}
	return 1 - float64(st.UniqueBytes)/float64(st.LogicalBytes)
}

// Store is a durable content-addressed snapshot store rooted at one
// directory. Safe for concurrent use.
type Store struct {
	dir string

	mu sync.Mutex // lock_rank: 40 — innermost durable-store lock; nothing nests inside
	// guarded_by: mu
	closed bool
	// guarded_by: mu
	log *os.File
	// guarded_by: mu
	manifests map[uint64]*Manifest
	// guarded_by: mu
	chunkRefs map[Hash]int
	// guarded_by: mu
	chunkSize map[Hash]int64 // trimmed on-disk payload bytes
	// guarded_by: mu
	coldBytes int64
	refChunks int64  // guarded_by: mu — chunk references across all manifests
	idMark    uint64 // guarded_by: mu — durable service-id high-water mark (ReserveIDs)

	// pageHashes caches per-state page hashes keyed by the state's
	// process-global sequence number (snapshot.State.Seq), so sibling
	// spills off one live parent hash the shared pages once. The key must
	// be the seq, not the tree-local id: the store outlives a service, and
	// a successor service's tree reuses ids 1,2,3..., so an id-keyed cache
	// would hand a new tree's spill a dead tree's hashes.
	// guarded_by: mu
	pageHashes map[uint64]map[uint64]Hash
}

// Open creates or reopens a store rooted at dir, replaying the manifest
// log. A torn final record (crash mid-append) is discarded and the log
// truncated to the last intact record; a corrupt record elsewhere fails
// Open, since everything after it is unaccounted for.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, chunkDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	logPath := filepath.Join(dir, logName)
	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open log: %w", err)
	}
	// Make the store's own entries (chunks/, manifests.log) durable on
	// first creation, completing the chunk-file dir-sync chain.
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: sync store dir: %w", err)
	}
	s := &Store{
		dir:        dir,
		log:        f,
		manifests:  make(map[uint64]*Manifest),
		chunkRefs:  make(map[Hash]int),
		chunkSize:  make(map[Hash]int64),
		pageHashes: make(map[uint64]map[uint64]Hash),
	}
	good, err := s.replay(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Drop a torn tail so future appends extend an intact log.
	if fi, err := f.Stat(); err == nil && fi.Size() > good {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncate torn log tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seek log: %w", err)
	}
	// Account chunk payload sizes for manifests that survived replay.
	//lint:ignore lockguard the store is not yet published to any other goroutine
	for _, m := range s.manifests {
		s.accountManifest(m, +1)
	}
	// Sweep debris from spills that crashed or failed between publishing
	// chunk files and committing their manifest.
	s.sweepOrphans()
	return s, nil
}

// sweepOrphans removes chunk files no replayed manifest references, plus
// stray temp files from interrupted publishes. Such orphans are debris
// from a Spill that failed or crashed after writing chunks but before its
// manifest committed; nothing will ever reference them again, and they
// are invisible to Stats, so without the sweep they accumulate forever.
// Best-effort (an undeletable orphan only costs disk); runs
// single-threaded in Open before the store is shared.
//
// locks_held: mu (trivially: the store is not yet published)
func (s *Store) sweepOrphans() {
	root := filepath.Join(s.dir, chunkDir)
	subs, err := os.ReadDir(root)
	if err != nil {
		return
	}
	for _, sub := range subs {
		if !sub.IsDir() {
			continue
		}
		ents, err := os.ReadDir(filepath.Join(root, sub.Name()))
		if err != nil {
			continue
		}
		for _, e := range ents {
			path := filepath.Join(root, sub.Name(), e.Name())
			if strings.HasPrefix(e.Name(), ".chunk-") {
				os.Remove(path) // CreateTemp debris from a crashed publish
				continue
			}
			raw, err := hex.DecodeString(sub.Name() + e.Name())
			if err != nil || len(raw) != len(Hash{}) {
				continue // not a chunk file; leave it alone
			}
			var h Hash
			copy(h[:], raw)
			if _, ok := s.chunkRefs[h]; !ok {
				os.Remove(path)
			}
		}
	}
}

// replay applies the manifest log to the in-memory tables and returns the
// offset of the last intact record. A record that is merely truncated
// (torn tail) stops replay cleanly; a record that frames correctly but
// fails its checksum is corruption and errors. Runs single-threaded in
// Open before the store is shared.
//
// locks_held: mu (trivially: the store is not yet published)
func (s *Store) replay(f *os.File) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("store: seek log: %w", err)
	}
	r := bufio.NewReaderSize(f, 1<<20)
	var off int64
	hdr := make([]byte, recHdrBytes)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return off, nil // clean end or torn header
			}
			return 0, fmt.Errorf("store: read log: %w", err)
		}
		if binary.LittleEndian.Uint32(hdr) != logMagic {
			return 0, fmt.Errorf("%w: log record magic %#x at offset %d", ErrCorrupt, binary.LittleEndian.Uint32(hdr), off)
		}
		op := hdr[4]
		n := binary.LittleEndian.Uint32(hdr[5:])
		if n > maxManifestBytes {
			return 0, fmt.Errorf("%w: log record of %d bytes at offset %d", ErrCorrupt, n, off)
		}
		payload := make([]byte, int(n)+sha256.Size)
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return off, nil // torn payload: crash mid-append
			}
			return 0, fmt.Errorf("store: read log: %w", err)
		}
		body, want := payload[:n], payload[n:]
		if sum := sha256.Sum256(body); string(sum[:]) != string(want) {
			return 0, fmt.Errorf("%w: log record checksum at offset %d", ErrCorrupt, off)
		}
		switch op {
		case opPut:
			m, err := decodeManifest(body)
			if err != nil {
				return 0, fmt.Errorf("store: replay offset %d: %w", off, err)
			}
			s.manifests[m.ID] = m
		case opDelete:
			if len(body) != u64Payload {
				return 0, fmt.Errorf("%w: delete record of %d bytes at offset %d", ErrCorrupt, len(body), off)
			}
			delete(s.manifests, binary.LittleEndian.Uint64(body))
		case opIDMark:
			if len(body) != u64Payload {
				return 0, fmt.Errorf("%w: id-mark record of %d bytes at offset %d", ErrCorrupt, len(body), off)
			}
			if v := binary.LittleEndian.Uint64(body); v > s.idMark {
				s.idMark = v
			}
		default:
			return 0, fmt.Errorf("%w: log op %d at offset %d", ErrCorrupt, op, off)
		}
		off += int64(recHdrBytes) + int64(n) + sha256.Size
	}
}

// accountManifest adjusts the chunk reference tables by delta (+1/-1) for
// every chunk m references, removing unreferenced chunk files on the way
// down. Callers hold s.mu (or are single-threaded in Open).
//
// locks_held: mu
func (s *Store) accountManifest(m *Manifest, delta int) {
	m.refs(func(h Hash) {
		s.refChunks += int64(delta)
		s.chunkRefs[h] += delta
		if s.chunkRefs[h] <= 0 {
			delete(s.chunkRefs, h)
			if sz, ok := s.chunkSize[h]; ok {
				s.coldBytes -= sz
				delete(s.chunkSize, h)
			}
			os.Remove(s.chunkPath(h))
		} else if delta > 0 {
			if _, ok := s.chunkSize[h]; !ok {
				// Replayed manifest: size the chunk from disk lazily.
				if fi, err := os.Stat(s.chunkPath(h)); err == nil {
					s.chunkSize[h] = fi.Size()
					s.coldBytes += fi.Size()
				}
			}
		}
	})
}

func (s *Store) chunkPath(h Hash) string {
	hex := fmt.Sprintf("%x", h[:])
	return filepath.Join(s.dir, chunkDir, hex[:2], hex[2:])
}

// appendRecord frames, checksums, appends, and syncs one log record.
// Callers hold s.mu: the log is a shared append-only file, and commit
// order must match table mutation order.
//
// locks_held: mu
func (s *Store) appendRecord(op byte, payload []byte) error {
	hdr := make([]byte, recHdrBytes)
	binary.LittleEndian.PutUint32(hdr, logMagic)
	hdr[4] = op
	binary.LittleEndian.PutUint32(hdr[5:], uint32(len(payload)))
	sum := sha256.Sum256(payload)
	rec := make([]byte, 0, len(hdr)+len(payload)+len(sum))
	rec = append(rec, hdr...)
	rec = append(rec, payload...)
	rec = append(rec, sum[:]...)
	if _, err := s.log.Write(rec); err != nil {
		return fmt.Errorf("store: append log: %w", err)
	}
	if err := s.log.Sync(); err != nil {
		return fmt.Errorf("store: sync log: %w", err)
	}
	return nil
}

// chunkKnown reports whether h is already tracked in the chunk tables.
func (s *Store) chunkKnown(h Hash) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.chunkRefs[h]; ok {
		return true
	}
	_, ok := s.chunkSize[h]
	return ok
}

// writeChunkFile publishes h's payload (content data, logical chunkSize)
// via a temp file + rename, so a crash never leaves a half-written chunk
// under its final name, and returns the trimmed on-disk size. Idempotent
// and safe for concurrent writers of the same content: every writer
// renames identical bytes onto the same path. Does not touch the chunk
// tables — callers account separately under s.mu.
//
// durable: publishes-synced
func (s *Store) writeChunkFile(h Hash, data []byte) (int64, error) {
	path := s.chunkPath(h)
	trimmed := trimZeroes(data)
	if fi, err := os.Stat(path); err == nil && fi.Size() == int64(len(trimmed)) {
		return fi.Size(), nil
	}
	dir := filepath.Dir(path)
	_, statErr := os.Stat(dir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("store: chunk dir: %w", err)
	}
	if statErr != nil {
		// First chunk under this prefix: make the subdirectory's own
		// entry durable too.
		if err := syncDir(filepath.Dir(dir)); err != nil {
			return 0, fmt.Errorf("store: sync chunk root: %w", err)
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".chunk-*")
	if err != nil {
		return 0, fmt.Errorf("store: chunk temp: %w", err)
	}
	if _, err := tmp.Write(trimmed); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("store: write chunk: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("store: close chunk: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("store: publish chunk: %w", err)
	}
	// Make the rename durable before any manifest commit can fsync a log
	// record referencing it: without the directory sync, a crash could
	// persist the (fsynced) manifest while the chunk's directory entry
	// never reached disk — a recovered manifest pointing at nothing.
	if err := syncDir(dir); err != nil {
		return 0, fmt.Errorf("store: sync chunk dir: %w", err)
	}
	return int64(len(trimmed)), nil
}

// syncDir fsyncs a directory so a just-renamed or just-created entry in
// it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// readChunk loads and validates the chunk for h, returning the full
// logical chunkSize bytes.
func (s *Store) readChunk(h Hash) ([]byte, error) {
	f, err := os.Open(s.chunkPath(h))
	if err != nil {
		return nil, fmt.Errorf("store: chunk %x: %w", h[:8], err)
	}
	defer f.Close()
	// One byte past the logical size proves oversize without reading an
	// unbounded file into memory.
	payload, err := io.ReadAll(io.LimitReader(f, chunkSize+1))
	if err != nil {
		return nil, fmt.Errorf("store: chunk %x: %w", h[:8], err)
	}
	return decodeChunk(payload, h)
}

// cacheHashes remembers a state's page hashes for sibling spills, bounding
// total cache entries. seq is the state's process-global sequence number
// (snapshot.State.Seq) — never a tree-local id, which a successor tree
// would reuse. Callers hold s.mu.
//
// locks_held: mu
func (s *Store) cacheHashes(seq uint64, hashes map[uint64]Hash) {
	if len(s.pageHashes) >= hashCacheCap {
		for k := range s.pageHashes {
			delete(s.pageHashes, k)
			if len(s.pageHashes) < hashCacheCap {
				break
			}
		}
	}
	s.pageHashes[seq] = hashes
}

// hashPages content-hashes every resident page of a frozen address space.
func hashPages(as *mem.AddressSpace) map[uint64]Hash {
	out := make(map[uint64]Hash)
	as.ForEachPage(func(addr uint64, f *mem.Frame) {
		out[addr] = sha256.Sum256(f.Data[:])
	})
	return out
}

// discardWritten removes chunk files a failed spill published but never
// committed, skipping any chunk that became referenced or accounted in
// the meantime (a concurrent spill of shared content may have committed
// it; a concurrent spill still in flight re-verifies at its own commit
// and rewrites what this removes). Callers hold s.mu.
//
// locks_held: mu
func (s *Store) discardWritten(written map[Hash]struct{}) {
	for h := range written {
		if _, ok := s.chunkRefs[h]; ok {
			continue
		}
		if _, ok := s.chunkSize[h]; ok {
			continue
		}
		os.Remove(s.chunkPath(h))
	}
}

// rollbackSpill undoes the accounting a failed spill added for the chunks
// it sized, then removes its uncommitted chunk files. Callers hold s.mu.
//
// locks_held: mu
func (s *Store) rollbackSpill(sized []Hash, written map[Hash]struct{}) {
	for _, h := range sized {
		s.coldBytes -= s.chunkSize[h]
		delete(s.chunkSize, h)
	}
	s.discardWritten(written)
}

// spillTestHook, when set, runs between a Spill's off-lock chunk publish
// and its commit — a seam for tests that need a deterministic concurrent
// Delete in that window.
var spillTestHook func()

// Spill demotes state to disk under the given service id: chunks are
// written (deduplicating against everything already resident), then the
// manifest is appended to the log. Spilling an id the store already holds
// is a no-op — states are immutable and ids are never reused, so the
// resident manifest is authoritative and a demote-after-promote is free.
//
// The page walk is incremental against the live parent, mirroring
// checkpoint.Incremental: a page whose frame is identical to the parent's
// reuses the parent's cached hash, so only pages dirtied since the fork
// are re-hashed (and only chunks absent from disk are written).
//
// The expensive work — hashing and chunk-file writes — runs outside
// s.mu, so concurrent Has/Load/Stats callers are not serialized behind a
// demotion's disk walk; only the log append (one fsync) and the table
// updates commit atomically under the lock.
func (s *Store) Spill(id uint64, state *snapshot.State) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if _, ok := s.manifests[id]; ok {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	m := &Manifest{
		ID:    id,
		Depth: uint64(state.Depth()),
		Regs:  state.Regs(),
		Out:   append([]byte(nil), state.Out()...),
	}
	as := state.Mem()
	m.VMAs = as.VMAs()
	m.Brk, _ = as.Brk(0)
	m.FSHash = state.FS().ContentHash()
	if p := state.Parent(); p != nil {
		m.ParentHash = p.FS().ContentHash()
	}
	for _, v := range m.VMAs {
		if len(v.Name) > maxNameBytes {
			return fmt.Errorf("store: spill %d: vma name of %d bytes unencodable", id, len(v.Name))
		}
	}

	// Pages: dirty-walk against the parent's frozen space.
	var parentAS *mem.AddressSpace
	var parentHashes map[uint64]Hash
	if p := state.Parent(); p != nil {
		parentAS = p.Mem()
		s.mu.Lock()
		parentHashes = s.pageHashes[p.Seq()]
		s.mu.Unlock()
		if parentHashes == nil {
			parentHashes = hashPages(parentAS)
			s.mu.Lock()
			s.cacheHashes(p.Seq(), parentHashes)
			s.mu.Unlock()
		}
	}
	myHashes := make(map[uint64]Hash)
	// chunks maps every chunk the manifest references to its payload. The
	// payload aliases the state's own frame/block storage, which the
	// caller's retained state keeps alive for the duration of the spill.
	// Every referenced chunk keeps its payload — not only the ones absent
	// from disk right now — so the commit can re-verify each one under the
	// lock and rewrite any whose file a concurrent Delete GC'd between
	// this walk and the commit.
	chunks := make(map[Hash][]byte)
	need := func(h Hash, data []byte) {
		if _, ok := chunks[h]; !ok {
			chunks[h] = data
		}
	}
	as.ForEachPage(func(addr uint64, f *mem.Frame) {
		h, ok := Hash{}, false
		if parentAS != nil && parentAS.FrameAt(addr) == f {
			h, ok = parentHashes[addr]
		}
		if !ok {
			h = sha256.Sum256(f.Data[:])
		}
		myHashes[addr] = h
		m.Pages = append(m.Pages, PageRef{Addr: addr, Hash: h})
		need(h, f.Data[:])
	})

	// File image: every resident block becomes a chunk; identical blocks
	// across siblings (fs.UpdateFile's shared prefixes) land on the same
	// content address and are written once.
	for _, fi := range state.FS().Export() {
		if len(fi.Path) > maxNameBytes {
			return fmt.Errorf("store: spill %d: path of %d bytes unencodable", id, len(fi.Path))
		}
		fr := FileRef{Path: fi.Path, Size: fi.Size, Blocks: make([]BlockRef, len(fi.Blocks))}
		for i, b := range fi.Blocks {
			if b == nil {
				continue
			}
			h := sha256.Sum256(b[:])
			fr.Blocks[i] = BlockRef{Present: true, Hash: h}
			need(h, b[:])
		}
		m.Files = append(m.Files, fr)
	}
	m.FDs = state.FS().FDs()
	for _, fd := range m.FDs {
		if len(fd.Path) > maxNameBytes {
			return fmt.Errorf("store: spill %d: fd path of %d bytes unencodable", id, len(fd.Path))
		}
	}
	payload := encodeManifest(m)
	if len(payload) > maxManifestBytes {
		// An oversized record would replay as corruption and poison the
		// whole log; refuse here so the caller falls back to a plain
		// eviction instead.
		return fmt.Errorf("store: spill %d: manifest of %d bytes exceeds limit", id, len(payload))
	}

	// Publish chunk payloads off-lock (content-addressed: concurrent
	// duplicate writers are benign). Chunks already resident skip the
	// write here; every chunk is re-verified at commit regardless.
	written := make(map[Hash]struct{}, len(chunks))
	for h, data := range chunks {
		if s.chunkKnown(h) {
			continue
		}
		if _, err := s.writeChunkFile(h, data); err != nil {
			s.mu.Lock()
			s.discardWritten(written)
			s.mu.Unlock()
			return err
		}
		written[h] = struct{}{}
	}
	if hook := spillTestHook; hook != nil {
		hook()
	}

	// Commit: log record and tables move together, so replay order can
	// never disagree with in-memory state.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.discardWritten(written)
		return ErrClosed
	}
	if _, ok := s.manifests[id]; ok {
		return nil
	}
	// Re-verify every referenced chunk not pinned by a live manifest:
	// between the off-lock walk and this commit its last reference may
	// have died and a concurrent Delete GC'd the file — including chunks
	// this spill never wrote because they were resident at walk time.
	// writeChunkFile stats first, so an intact file costs one stat and a
	// missing one is rewritten. Delete also holds s.mu, so a chunk
	// verified here stays pinned once accounted below. `sized` tracks
	// accounting added for this manifest so a failed commit can undo it.
	var sized []Hash
	for h, data := range chunks {
		if s.chunkRefs[h] > 0 {
			continue // another live manifest pins it while we hold s.mu
		}
		sz, err := s.writeChunkFile(h, data)
		if err != nil {
			s.rollbackSpill(sized, written)
			return err
		}
		written[h] = struct{}{}
		if _, ok := s.chunkSize[h]; !ok {
			s.chunkSize[h] = sz
			s.coldBytes += sz
			sized = append(sized, h)
		}
	}
	if err := s.appendRecord(opPut, payload); err != nil {
		s.rollbackSpill(sized, written)
		return err
	}
	s.manifests[id] = m
	s.accountManifest(m, +1)
	s.cacheHashes(state.Seq(), myHashes)
	return nil
}

// Load rebuilds the demoted snapshot behind id as a fresh mutable context
// plus its recorded depth. The caller owns the context (Capture it, then
// Release it). Chunks are verified against their content address on read.
func (s *Store) Load(id uint64, alloc *mem.FrameAllocator) (*snapshot.Context, int, error) {
	s.mu.Lock()
	m, ok := s.manifests[id]
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, 0, ErrClosed
	}
	if !ok {
		return nil, 0, fmt.Errorf("store: id %d: %w", id, ErrNotFound)
	}

	as := mem.NewAddressSpace(alloc)
	fail := func(err error) (*snapshot.Context, int, error) {
		as.Release()
		return nil, 0, err
	}
	for _, v := range m.VMAs {
		if err := as.Map(v.Start, v.Size(), v.Perm, v.Name); err != nil {
			return fail(fmt.Errorf("store: load %d: map %s: %w", id, v.Name, err))
		}
	}
	as.InitBrk(m.Brk)
	for _, p := range m.Pages {
		data, err := s.readChunk(p.Hash)
		if err != nil {
			return fail(fmt.Errorf("store: load %d: page %#x: %w", id, p.Addr, err))
		}
		if err := as.WriteForce(data, p.Addr); err != nil {
			return fail(fmt.Errorf("store: load %d: page %#x: %w", id, p.Addr, err))
		}
	}

	fsys := fs.New()
	failFS := func(err error) (*snapshot.Context, int, error) {
		fsys.Release()
		return fail(err)
	}
	for _, fr := range m.Files {
		// Rebuild block-by-block via ImportFile so holes stay holes: a
		// sparse file reloads at its resident footprint, never as a
		// logical-size buffer of materialized zero blocks.
		img := fs.FileImage{Path: fr.Path, Size: fr.Size, Blocks: make([]*[fs.BlockSize]byte, len(fr.Blocks))}
		for i, b := range fr.Blocks {
			if !b.Present {
				continue
			}
			data, err := s.readChunk(b.Hash)
			if err != nil {
				return failFS(fmt.Errorf("store: load %d: %s block %d: %w", id, fr.Path, i, err))
			}
			img.Blocks[i] = (*[fs.BlockSize]byte)(data)
		}
		if err := fsys.ImportFile(img); err != nil {
			return failFS(fmt.Errorf("store: load %d: %s: %w", id, fr.Path, err))
		}
	}
	fsys.SetFDs(m.FDs)

	ctx := &snapshot.Context{
		Mem:  as,
		FS:   fsys,
		Regs: m.Regs,
		Out:  append([]byte(nil), m.Out...),
	}
	return ctx, int(m.Depth), nil
}

// Has reports whether the store holds a manifest for id.
func (s *Store) Has(id uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.manifests[id]
	return ok
}

// Manifest returns the resident manifest for id (read-only; diagnostics
// and tests).
func (s *Store) Manifest(id uint64) (*Manifest, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.manifests[id]
	return m, ok
}

// Delete drops id's manifest and garbage-collects chunks no other
// manifest references. Deleting an absent id is a no-op.
func (s *Store) Delete(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	m, ok := s.manifests[id]
	if !ok {
		return nil
	}
	payload := make([]byte, u64Payload)
	binary.LittleEndian.PutUint64(payload, id)
	if err := s.appendRecord(opDelete, payload); err != nil {
		return err
	}
	delete(s.manifests, id)
	s.accountManifest(m, -1)
	return nil
}

// IDs returns the demoted ids in ascending order.
func (s *Store) IDs() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, len(s.manifests))
	for id := range s.manifests {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MaxID returns the largest id known to have been issued against this
// store (0 when empty and unmarked): the max over resident manifests and
// the durable id high-water mark (ReserveIDs) — the floor a restarted
// service must start issuing fresh ids above. The mark matters for ids
// that left no manifest behind (their spill failed, or they were released
// before demotion): without it a restarted service would re-issue such an
// id, and a client still holding it would silently get answers for a
// different problem.
func (s *Store) MaxID() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	max := s.idMark
	for id := range s.manifests {
		if id > max {
			max = id
		}
	}
	return max
}

// ReserveIDs durably records that service ids up to and including upTo
// may have been issued, raising the high-water mark MaxID reports after a
// restart. Monotonic and idempotent: a mark at or below the current one
// appends nothing. Each raise costs one fsynced log record, so callers
// batch (the service reserves ~a thousand ids per call).
func (s *Store) ReserveIDs(upTo uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if upTo <= s.idMark {
		return nil
	}
	payload := make([]byte, u64Payload)
	binary.LittleEndian.PutUint64(payload, upTo)
	if err := s.appendRecord(opIDMark, payload); err != nil {
		return err
	}
	s.idMark = upTo
	return nil
}

// Stats summarizes the cold tier.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Manifests:    len(s.manifests),
		Chunks:       len(s.chunkRefs),
		ColdBytes:    s.coldBytes,
		LogicalBytes: s.refChunks * chunkSize,
		UniqueBytes:  int64(len(s.chunkRefs)) * chunkSize,
	}
}

// Close flushes and closes the manifest log. Further operations return
// ErrClosed. Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.pageHashes = nil
	err := s.log.Sync()
	if cerr := s.log.Close(); err == nil {
		err = cerr
	}
	return err
}
