package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/fs"
	"repro/internal/mem"
	"repro/internal/vm"
)

// Hash is the content address of one chunk (SHA-256 of the full logical
// chunk: PageSize bytes with trailing zeroes included).
type Hash [32]byte

// ErrCorrupt reports a manifest or chunk that failed validation. Every
// decode error wraps it, so callers can distinguish damaged cold state
// (re-derive the problem) from I/O failures (retry, alert).
var ErrCorrupt = fmt.Errorf("store: corrupt data")

const (
	// manifestMagic opens every serialized manifest ("SNAPSTO1").
	manifestMagic = uint64(0x314F5453_50414E53)
	// chunkSize is the logical size of every chunk: one memory page or one
	// file block. The two layers share a granularity by construction; the
	// compile-time assertion below keeps them from drifting apart.
	chunkSize = mem.PageSize
	// maxManifestBytes bounds one manifest record (a 1 GiB state at 40
	// bytes per page reference is ~10 MiB; 256 MiB is far past any real
	// manifest and keeps a corrupt length field from sizing a huge read).
	maxManifestBytes = 256 << 20
	// maxNameBytes bounds encodable strings (paths, VMA names): putStr's
	// length prefix is a uint16, so Spill validates before encoding —
	// silent truncation would produce a checksum-valid record the decoder
	// rejects, poisoning the log.
	maxNameBytes = 1<<16 - 1
)

// The store chunks memory pages and file blocks interchangeably: one
// granularity, one hash space, so a page and a block with equal bytes
// deduplicate against each other.
var _ [0]struct{} = [chunkSize - fs.BlockSize]struct{}{}

// PageRef names one resident page of a demoted address space.
type PageRef struct {
	Addr uint64
	Hash Hash
}

// BlockRef names one block of a demoted file. Absent blocks are holes and
// read as zeroes.
type BlockRef struct {
	Present bool
	Hash    Hash
}

// FileRef is one file of a demoted image.
type FileRef struct {
	Path   string
	Size   int64
	Blocks []BlockRef
}

// Manifest is the durable description of one demoted snapshot: everything
// needed to rebuild the candidate except the chunk payloads it references.
// The layout mirrors what snapshot.State freezes — registers, output,
// address-space shape plus page chunks, file image plus block chunks, and
// the descriptor table.
type Manifest struct {
	// ID is the service reference the snapshot was parked behind; a
	// restarted server answers this id by reloading the manifest.
	ID uint64
	// Depth is the snapshot's distance from the root candidate.
	Depth uint64
	// ParentHash is the parent's file-image content hash at spill time
	// (zero for a root child): a provenance link letting an auditor chain
	// manifests the way snapshot parents chain in memory.
	ParentHash [32]byte
	// FSHash is this snapshot's own file-image content hash, re-checkable
	// after a reload round-trip.
	FSHash [32]byte

	Regs vm.Registers
	Out  []byte

	Brk   uint64
	VMAs  []mem.VMA
	Pages []PageRef

	Files []FileRef
	FDs   []fs.FD
}

// refs calls fn for every chunk reference in the manifest.
func (m *Manifest) refs(fn func(Hash)) {
	for _, p := range m.Pages {
		fn(p.Hash)
	}
	for _, f := range m.Files {
		for _, b := range f.Blocks {
			if b.Present {
				fn(b.Hash)
			}
		}
	}
}

// encodeManifest serializes m with a trailing SHA-256 of the body, so a
// torn or bit-flipped record is detected before it can resurrect a wrong
// candidate.
func encodeManifest(m *Manifest) []byte {
	var buf []byte
	put64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	put32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	// putStr requires len(s) <= maxNameBytes — Spill validates every
	// encodable string before building the record.
	putStr := func(s string) {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
		buf = append(buf, s...)
	}
	put64(manifestMagic)
	put64(m.ID)
	put64(m.Depth)
	buf = append(buf, m.ParentHash[:]...)
	buf = append(buf, m.FSHash[:]...)
	for _, r := range m.Regs.GPR {
		put64(r)
	}
	put64(m.Regs.RIP)
	put64(m.Regs.Flags)
	put64(m.Brk)
	put32(uint32(len(m.Out)))
	buf = append(buf, m.Out...)
	put32(uint32(len(m.VMAs)))
	for _, v := range m.VMAs {
		put64(v.Start)
		put64(v.End)
		buf = append(buf, byte(v.Perm))
		putStr(v.Name)
	}
	put32(uint32(len(m.Pages)))
	for _, p := range m.Pages {
		put64(p.Addr)
		buf = append(buf, p.Hash[:]...)
	}
	put32(uint32(len(m.Files)))
	for _, f := range m.Files {
		putStr(f.Path)
		put64(uint64(f.Size))
		put32(uint32(len(f.Blocks)))
		for _, b := range f.Blocks {
			if b.Present {
				buf = append(buf, 1)
				buf = append(buf, b.Hash[:]...)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	put32(uint32(len(m.FDs)))
	for _, fd := range m.FDs {
		putStr(fd.Path)
		put64(uint64(fd.Off))
		put32(uint32(fd.Flags))
		if fd.Open {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// cursor is a bounds-checked reader over untrusted manifest bytes. Every
// accessor fails cleanly past the end — decode must never panic or let a
// corrupt count size an allocation (fuzzed by FuzzStoreLoad).
type cursor struct {
	data []byte
	off  int
	err  error
}

func (c *cursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, fmt.Sprintf(format, args...), c.off)
	}
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || n > len(c.data)-c.off {
		c.fail("truncated (%d bytes wanted)", n)
		return nil
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b
}

func (c *cursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (c *cursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *cursor) u16() uint16 {
	b := c.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (c *cursor) u8() byte {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *cursor) hash() (h Hash) {
	b := c.take(len(h))
	copy(h[:], b)
	return h
}

func (c *cursor) str() string { return string(c.take(int(c.u16()))) }

// count reads an element count and validates it against the bytes left,
// given a per-element floor — the guard that keeps a corrupt u32 from
// driving a make() of gigabytes.
func (c *cursor) count(minElemBytes int) int {
	n := c.u32()
	if c.err != nil {
		return 0
	}
	if int64(n)*int64(minElemBytes) > int64(len(c.data)-c.off) {
		c.fail("count %d exceeds remaining %d bytes", n, len(c.data)-c.off)
		return 0
	}
	return int(n)
}

// decodeManifest parses and validates one serialized manifest. Corrupt
// input of any shape returns an error wrapping ErrCorrupt; it never
// panics and never allocates more than O(len(data)).
func decodeManifest(data []byte) (*Manifest, error) {
	if len(data) > maxManifestBytes {
		return nil, fmt.Errorf("%w: manifest of %d bytes exceeds limit", ErrCorrupt, len(data))
	}
	const sumLen = sha256.Size
	if len(data) < sumLen+8 {
		return nil, fmt.Errorf("%w: manifest of %d bytes too short", ErrCorrupt, len(data))
	}
	body, want := data[:len(data)-sumLen], data[len(data)-sumLen:]
	if sum := sha256.Sum256(body); string(sum[:]) != string(want) {
		return nil, fmt.Errorf("%w: manifest checksum mismatch", ErrCorrupt)
	}
	c := &cursor{data: body}
	if magic := c.u64(); c.err == nil && magic != manifestMagic {
		return nil, fmt.Errorf("%w: bad manifest magic %#x", ErrCorrupt, magic)
	}
	m := &Manifest{ID: c.u64(), Depth: c.u64()}
	copy(m.ParentHash[:], c.take(32))
	copy(m.FSHash[:], c.take(32))
	for i := range m.Regs.GPR {
		m.Regs.GPR[i] = c.u64()
	}
	m.Regs.RIP = c.u64()
	m.Regs.Flags = c.u64()
	m.Brk = c.u64()
	if n := c.u32(); c.err == nil {
		m.Out = append([]byte(nil), c.take(int(n))...)
	}
	if n := c.count(17); n > 0 {
		m.VMAs = make([]mem.VMA, 0, n)
		for i := 0; i < n && c.err == nil; i++ {
			v := mem.VMA{Start: c.u64(), End: c.u64(), Perm: mem.Perm(c.u8()), Name: c.str()}
			if c.err == nil && (v.End < v.Start || v.Start%mem.PageSize != 0 || v.End%mem.PageSize != 0) {
				c.fail("vma [%#x,%#x) malformed", v.Start, v.End)
			}
			m.VMAs = append(m.VMAs, v)
		}
	}
	if n := c.count(8 + 32); n > 0 {
		m.Pages = make([]PageRef, 0, n)
		for i := 0; i < n && c.err == nil; i++ {
			p := PageRef{Addr: c.u64(), Hash: c.hash()}
			if c.err == nil && p.Addr%mem.PageSize != 0 {
				c.fail("page address %#x unaligned", p.Addr)
			}
			m.Pages = append(m.Pages, p)
		}
	}
	if n := c.count(2 + 8 + 4); n > 0 {
		m.Files = make([]FileRef, 0, n)
		for i := 0; i < n && c.err == nil; i++ {
			f := FileRef{Path: c.str(), Size: int64(c.u64())}
			if c.err == nil && (f.Size < 0 || f.Size > fs.MaxFileSize) {
				c.fail("file %q size %d out of range", f.Path, f.Size)
			}
			nb := c.count(1)
			if c.err == nil && int64(nb) != (f.Size+chunkSize-1)/chunkSize {
				c.fail("file %q: %d blocks inconsistent with size %d", f.Path, nb, f.Size)
			}
			if nb > 0 && c.err == nil {
				f.Blocks = make([]BlockRef, 0, nb)
				for j := 0; j < nb && c.err == nil; j++ {
					var b BlockRef
					if c.u8() != 0 {
						b = BlockRef{Present: true, Hash: c.hash()}
					}
					f.Blocks = append(f.Blocks, b)
				}
			}
			m.Files = append(m.Files, f)
		}
	}
	if n := c.count(2 + 8 + 4 + 1); n > 0 {
		m.FDs = make([]fs.FD, 0, n)
		for i := 0; i < n && c.err == nil; i++ {
			fd := fs.FD{Path: c.str(), Off: int64(c.u64()), Flags: int(c.u32()), Open: c.u8() != 0}
			m.FDs = append(m.FDs, fd)
		}
	}
	if c.err != nil {
		return nil, c.err
	}
	if c.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing manifest bytes", ErrCorrupt, len(body)-c.off)
	}
	return m, nil
}

// decodeChunk validates a chunk payload read from disk against its content
// address and rehydrates the logical chunk: stored bytes are trimmed of
// trailing zeroes, so the payload is zero-extended to chunkSize before the
// hash is checked.
func decodeChunk(payload []byte, want Hash) ([]byte, error) {
	if len(payload) > chunkSize {
		return nil, fmt.Errorf("%w: chunk of %d bytes exceeds %d", ErrCorrupt, len(payload), chunkSize)
	}
	full := make([]byte, chunkSize)
	copy(full, payload)
	if sum := sha256.Sum256(full); Hash(sum) != want {
		return nil, fmt.Errorf("%w: chunk %x content mismatch", ErrCorrupt, want[:8])
	}
	return full, nil
}

// trimZeroes returns data without its trailing zero bytes — the on-disk
// form of a chunk. Pages and file blocks are commonly zero-tailed (demand
// -zero heaps, short final blocks), so this is free compression that the
// content hash, taken over the full logical chunk, is oblivious to.
func trimZeroes(data []byte) []byte {
	n := len(data)
	for n > 0 && data[n-1] == 0 {
		n--
	}
	return data[:n]
}
