package store

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fs"
	"repro/internal/mem"
	"repro/internal/snapshot"
	"repro/internal/vm"
)

// buildState captures a state with resident pages, files, open fds, regs,
// and output, returning it plus the tree and allocator for leak checks.
func buildState(t *testing.T, mutate func(*snapshot.Context)) (*snapshot.Tree, *mem.FrameAllocator, *snapshot.State) {
	t.Helper()
	alloc := mem.NewFrameAllocator(0)
	as := mem.NewAddressSpace(alloc)
	if err := as.Map(0x1000, 16*mem.PageSize, mem.PermRead|mem.PermWrite, "heap"); err != nil {
		t.Fatal(err)
	}
	ctx := &snapshot.Context{Mem: as, FS: fs.New()}
	if mutate != nil {
		mutate(ctx)
	}
	tree := snapshot.NewTree()
	st := tree.Capture(ctx, nil)
	ctx.Release()
	return tree, alloc, st
}

func mustWriteU64(t *testing.T, as *mem.AddressSpace, addr, v uint64) {
	t.Helper()
	if err := as.WriteU64(addr, v); err != nil {
		t.Fatal(err)
	}
}

// TestSpillLoadRoundTrip demotes a state with memory, files, fds, regs,
// and output, reloads it from a fresh Open (forcing log replay), and
// checks every observable facet survived.
func TestSpillLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tree, alloc, st := buildState(t, func(ctx *snapshot.Context) {
		mustWriteU64(t, ctx.Mem, 0x1000, 0xdeadbeef)
		mustWriteU64(t, ctx.Mem, 0x1000+8*mem.PageSize, 42)
		if err := ctx.FS.WriteFile("/a.txt", bytes.Repeat([]byte("ab"), 3000)); err != nil {
			t.Fatal(err)
		}
		if err := ctx.FS.WriteFile("/empty", nil); err != nil {
			t.Fatal(err)
		}
		fd, err := ctx.FS.Open("/a.txt", fs.ORdWr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ctx.FS.Seek(fd, 100, fs.SeekSet); err != nil {
			t.Fatal(err)
		}
		ctx.Regs.RIP = 0xcafe
		ctx.Regs.GPR[vm.RAX] = 7
		ctx.Out = []byte("hello from the path")
	})

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Spill(17, st); err != nil {
		t.Fatal(err)
	}
	wantFSHash := st.FS().ContentHash()
	st.Release()
	if live := tree.Live(); live != 0 {
		t.Fatalf("%d snapshots live after release", live)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Fresh Open replays the manifest log — the restart path.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Has(17) || s2.MaxID() != 17 {
		t.Fatalf("replayed store: Has(17)=%v MaxID=%d", s2.Has(17), s2.MaxID())
	}
	ctx, depth, err := s2.Load(17, alloc)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Release()
	if depth != 0 {
		t.Errorf("depth = %d, want 0", depth)
	}
	if v, err := ctx.Mem.ReadU64(0x1000); err != nil || v != 0xdeadbeef {
		t.Errorf("page 0 = %#x, %v", v, err)
	}
	if v, err := ctx.Mem.ReadU64(0x1000 + 8*mem.PageSize); err != nil || v != 42 {
		t.Errorf("page 8 = %#x, %v", v, err)
	}
	if data, err := ctx.FS.ReadFile("/a.txt"); err != nil || !bytes.Equal(data, bytes.Repeat([]byte("ab"), 3000)) {
		t.Errorf("/a.txt: %d bytes, %v", len(data), err)
	}
	if sz, err := ctx.FS.Stat("/empty"); err != nil || sz != 0 {
		t.Errorf("/empty: %d, %v", sz, err)
	}
	if ctx.Regs.RIP != 0xcafe || ctx.Regs.GPR[vm.RAX] != 7 {
		t.Errorf("regs = %+v", ctx.Regs)
	}
	if string(ctx.Out) != "hello from the path" {
		t.Errorf("out = %q", ctx.Out)
	}
	// The descriptor table survived: fd 3 still open at offset 100.
	if n, err := ctx.FS.Seek(3, 0, fs.SeekCur); err != nil || n != 100 {
		t.Errorf("fd 3 offset = %d, %v", n, err)
	}
	// Content hash of the rebuilt image matches the manifest's record.
	sn := ctx.FS.Snapshot()
	defer sn.Release()
	if got := sn.ContentHash(); got != wantFSHash {
		t.Error("reloaded fs content hash differs from spilled image")
	}
}

// TestSpillDeltaSharesParentChunks spills a parent and two children that
// each dirty one page: the unchanged pages must dedup onto the parent's
// chunks (content addressing), and the dedup ratio must reflect it.
func TestSpillDeltaSharesParentChunks(t *testing.T) {
	dir := t.TempDir()
	alloc := mem.NewFrameAllocator(0)
	as := mem.NewAddressSpace(alloc)
	const pages = 12
	if err := as.Map(0x1000, pages*mem.PageSize, mem.PermRead|mem.PermWrite, "heap"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		mustWriteU64(t, as, 0x1000+uint64(i)*mem.PageSize, uint64(i)+1)
	}
	ctx := &snapshot.Context{Mem: as, FS: fs.New()}
	tree := snapshot.NewTree()
	parent := tree.Capture(ctx, nil)

	children := make([]*snapshot.State, 2)
	for c := range children {
		child := parent.Restore()
		mustWriteU64(t, child.Mem, 0x1000+uint64(c)*mem.PageSize, 0x9000+uint64(c))
		children[c] = tree.Capture(child, parent)
		child.Release()
	}
	ctx.Release()

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Spill(1, parent); err != nil {
		t.Fatal(err)
	}
	base := s.Stats()
	for c, child := range children {
		if err := s.Spill(uint64(2+c), child); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	// Each child shares pages-1 chunks with the parent and adds one.
	wantChunks := base.Chunks + 2
	if st.Chunks != wantChunks {
		t.Errorf("chunks = %d, want %d (children must dedup onto parent pages)", st.Chunks, wantChunks)
	}
	if st.LogicalBytes != int64(3*pages)*chunkSize {
		t.Errorf("logical = %d, want %d", st.LogicalBytes, int64(3*pages)*chunkSize)
	}
	if r := st.DedupRatio(); r < 0.6 {
		t.Errorf("dedup ratio = %.2f, want sibling sharing", r)
	}

	// Chain linkage: each child manifest records the parent's fs hash.
	pm, _ := s.Manifest(1)
	cm, _ := s.Manifest(2)
	if cm.ParentHash != pm.FSHash {
		t.Error("child manifest ParentHash != parent manifest FSHash")
	}

	for _, c := range children {
		c.Release()
	}
	parent.Release()
	if tree.Live() != 0 || alloc.Live() != 0 {
		t.Fatalf("leak: %d snapshots, %d frames", tree.Live(), alloc.Live())
	}
}

// TestDeleteGarbageCollectsChunks verifies manifest deletion drops
// unshared chunks from disk but keeps chunks another manifest references.
func TestDeleteGarbageCollectsChunks(t *testing.T) {
	dir := t.TempDir()
	tree, _, st := buildState(t, func(ctx *snapshot.Context) {
		if err := ctx.FS.WriteFile("/shared", bytes.Repeat([]byte{7}, 2*chunkSize)); err != nil {
			t.Fatal(err)
		}
	})
	defer func() {
		st.Release()
		if tree.Live() != 0 {
			t.Errorf("%d snapshots live", tree.Live())
		}
	}()

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Spill(1, st); err != nil {
		t.Fatal(err)
	}
	if err := s.Spill(2, st); err != nil { // same content under a second id
		t.Fatal(err)
	}
	full := s.Stats()
	if full.Manifests != 2 {
		t.Fatalf("manifests = %d", full.Manifests)
	}
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats(); got.Chunks != full.Chunks || got.ColdBytes != full.ColdBytes {
		t.Errorf("delete of a fully-shared manifest changed chunks: %+v vs %+v", got, full)
	}
	if err := s.Delete(2); err != nil {
		t.Fatal(err)
	}
	got := s.Stats()
	if got.Manifests != 0 || got.Chunks != 0 || got.ColdBytes != 0 {
		t.Errorf("after deleting all manifests: %+v", got)
	}
	// Chunk files physically gone.
	ents, err := os.ReadDir(filepath.Join(dir, chunkDir))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		sub, _ := os.ReadDir(filepath.Join(dir, chunkDir, e.Name()))
		if len(sub) != 0 {
			t.Errorf("chunk files left under %s", e.Name())
		}
	}
	// Deletion is durable: a reopened store no longer answers either id.
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Has(1) || s2.Has(2) {
		t.Error("deleted ids resurrected by replay")
	}
}

// TestSpillIdempotent re-spilling a resident id is a no-op.
func TestSpillIdempotent(t *testing.T) {
	tree, _, st := buildState(t, nil)
	defer func() { st.Release(); _ = tree }()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Spill(5, st); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	if err := s.Spill(5, st); err != nil {
		t.Fatal(err)
	}
	if after := s.Stats(); after != before {
		t.Errorf("re-spill changed stats: %+v vs %+v", after, before)
	}
}

// TestTornLogTailRecovered appends garbage (a torn half-record) to the
// log: Open must recover every intact record and truncate the tail so
// future appends extend a clean log.
func TestTornLogTailRecovered(t *testing.T) {
	dir := t.TempDir()
	tree, _, st := buildState(t, func(ctx *snapshot.Context) {
		if err := ctx.FS.WriteFile("/f", []byte("payload")); err != nil {
			t.Fatal(err)
		}
	})
	defer func() { st.Release(); _ = tree }()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Spill(9, st); err != nil {
		t.Fatal(err)
	}
	s.Close()

	logPath := filepath.Join(dir, logName)
	intact, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// A torn append: a valid header promising more payload than exists.
	torn := append(append([]byte{}, intact...), intact[:recHdrBytes+3]...)
	if err := os.WriteFile(logPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("open over torn tail: %v", err)
	}
	if !s2.Has(9) {
		t.Fatal("intact record lost")
	}
	// The torn tail is gone: spill another id, then a third Open sees both.
	if err := s2.Spill(10, st); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if !s3.Has(9) || !s3.Has(10) {
		t.Errorf("after truncate+append: Has(9)=%v Has(10)=%v", s3.Has(9), s3.Has(10))
	}
}

// TestCorruptRecordFailsOpen flips a byte inside a checksummed record:
// Open must refuse the log rather than replay damaged state.
func TestCorruptRecordFailsOpen(t *testing.T) {
	dir := t.TempDir()
	tree, _, st := buildState(t, nil)
	defer func() { st.Release(); _ = tree }()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Spill(3, st); err != nil {
		t.Fatal(err)
	}
	if err := s.Spill(4, st); err != nil {
		t.Fatal(err)
	}
	s.Close()
	logPath := filepath.Join(dir, logName)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	data[recHdrBytes+10] ^= 0xff // inside the first record's payload
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over corrupt record = %v, want ErrCorrupt", err)
	}
}

// TestCorruptChunkFailsLoad damages a chunk payload on disk: Load must
// report corruption, not hand back wrong bytes.
func TestCorruptChunkFailsLoad(t *testing.T) {
	dir := t.TempDir()
	tree, alloc, st := buildState(t, func(ctx *snapshot.Context) {
		if err := ctx.FS.WriteFile("/f", bytes.Repeat([]byte{9}, chunkSize)); err != nil {
			t.Fatal(err)
		}
	})
	defer func() { st.Release(); _ = tree }()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Spill(8, st); err != nil {
		t.Fatal(err)
	}
	h := sha256.Sum256(bytes.Repeat([]byte{9}, chunkSize))
	path := s.chunkPath(Hash(h))
	if err := os.WriteFile(path, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(8, alloc); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load with damaged chunk = %v, want ErrCorrupt", err)
	}
}

// TestLoadUnknownID asks for an id the store never held.
func TestLoadUnknownID(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, _, err := s.Load(99, mem.NewFrameAllocator(0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Load(99) = %v, want ErrNotFound", err)
	}
	if s.Has(99) || s.MaxID() != 0 {
		t.Error("empty store claims content")
	}
}

// TestManifestRoundTrip exercises encode/decode equality directly.
func TestManifestRoundTrip(t *testing.T) {
	m := &Manifest{
		ID:    12,
		Depth: 4,
		Regs:  vm.Registers{RIP: 1, Flags: 2, GPR: [16]uint64{3, 4, 5}},
		Out:   []byte("output bytes"),
		Brk:   0x8000,
		VMAs:  []mem.VMA{{Start: 0x1000, End: 0x3000, Perm: 3, Name: "heap"}},
		Pages: []PageRef{{Addr: 0x1000, Hash: Hash{1, 2}}, {Addr: 0x2000, Hash: Hash{3}}},
		Files: []FileRef{
			{Path: "/x", Size: chunkSize + 1, Blocks: []BlockRef{{Present: true, Hash: Hash{9}}, {}}},
			{Path: "/empty", Size: 0},
		},
		FDs: []fs.FD{{Path: "/x", Off: 33, Flags: fs.ORdWr, Open: true}},
	}
	m.ParentHash[0] = 0xaa
	m.FSHash[0] = 0xbb
	got, err := decodeManifest(encodeManifest(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != m.ID || got.Depth != m.Depth || got.Regs != m.Regs ||
		string(got.Out) != string(m.Out) || got.Brk != m.Brk ||
		got.ParentHash != m.ParentHash || got.FSHash != m.FSHash {
		t.Errorf("scalar fields: %+v", got)
	}
	if len(got.VMAs) != 1 || got.VMAs[0] != m.VMAs[0] {
		t.Errorf("vmas: %+v", got.VMAs)
	}
	if len(got.Pages) != 2 || got.Pages[0] != m.Pages[0] || got.Pages[1] != m.Pages[1] {
		t.Errorf("pages: %+v", got.Pages)
	}
	if len(got.Files) != 2 || got.Files[0].Path != "/x" || got.Files[0].Size != chunkSize+1 ||
		len(got.Files[0].Blocks) != 2 || !got.Files[0].Blocks[0].Present || got.Files[0].Blocks[1].Present {
		t.Errorf("files: %+v", got.Files)
	}
	if len(got.FDs) != 1 || got.FDs[0] != m.FDs[0] {
		t.Errorf("fds: %+v", got.FDs)
	}
}

// TestDecodeManifestRejectsCorruption flips every byte position in a small
// manifest one at a time: decode must error (the checksum catches all
// single-byte corruption) and never panic.
func TestDecodeManifestRejectsCorruption(t *testing.T) {
	m := &Manifest{ID: 1, Files: []FileRef{{Path: "/f", Size: 10, Blocks: []BlockRef{{Present: true}}}}}
	enc := encodeManifest(m)
	for i := range enc {
		bad := append([]byte{}, enc...)
		bad[i] ^= 0x41
		if _, err := decodeManifest(bad); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
	for _, n := range []int{0, 1, 8, len(enc) - 1} {
		if _, err := decodeManifest(enc[:n]); err == nil {
			t.Fatalf("truncation to %d accepted", n)
		}
	}
}

// TestClosedStore verifies post-Close operations fail with ErrClosed.
func TestClosedStore(t *testing.T) {
	tree, alloc, st := buildState(t, nil)
	defer func() { st.Release(); _ = tree }()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close not idempotent:", err)
	}
	if err := s.Spill(1, st); !errors.Is(err, ErrClosed) {
		t.Errorf("Spill after Close = %v", err)
	}
	if _, _, err := s.Load(1, alloc); !errors.Is(err, ErrClosed) {
		t.Errorf("Load after Close = %v", err)
	}
	if err := s.Delete(1); !errors.Is(err, ErrClosed) {
		t.Errorf("Delete after Close = %v", err)
	}
}
