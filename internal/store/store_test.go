package store

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fs"
	"repro/internal/mem"
	"repro/internal/snapshot"
	"repro/internal/vm"
)

// buildState captures a state with resident pages, files, open fds, regs,
// and output, returning it plus the tree and allocator for leak checks.
func buildState(t *testing.T, mutate func(*snapshot.Context)) (*snapshot.Tree, *mem.FrameAllocator, *snapshot.State) {
	t.Helper()
	alloc := mem.NewFrameAllocator(0)
	as := mem.NewAddressSpace(alloc)
	if err := as.Map(0x1000, 16*mem.PageSize, mem.PermRead|mem.PermWrite, "heap"); err != nil {
		t.Fatal(err)
	}
	ctx := &snapshot.Context{Mem: as, FS: fs.New()}
	if mutate != nil {
		mutate(ctx)
	}
	tree := snapshot.NewTree()
	st := tree.Capture(ctx, nil)
	ctx.Release()
	return tree, alloc, st
}

func mustWriteU64(t *testing.T, as *mem.AddressSpace, addr, v uint64) {
	t.Helper()
	if err := as.WriteU64(addr, v); err != nil {
		t.Fatal(err)
	}
}

// TestSpillLoadRoundTrip demotes a state with memory, files, fds, regs,
// and output, reloads it from a fresh Open (forcing log replay), and
// checks every observable facet survived.
func TestSpillLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tree, alloc, st := buildState(t, func(ctx *snapshot.Context) {
		mustWriteU64(t, ctx.Mem, 0x1000, 0xdeadbeef)
		mustWriteU64(t, ctx.Mem, 0x1000+8*mem.PageSize, 42)
		if err := ctx.FS.WriteFile("/a.txt", bytes.Repeat([]byte("ab"), 3000)); err != nil {
			t.Fatal(err)
		}
		if err := ctx.FS.WriteFile("/empty", nil); err != nil {
			t.Fatal(err)
		}
		fd, err := ctx.FS.Open("/a.txt", fs.ORdWr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ctx.FS.Seek(fd, 100, fs.SeekSet); err != nil {
			t.Fatal(err)
		}
		ctx.Regs.RIP = 0xcafe
		ctx.Regs.GPR[vm.RAX] = 7
		ctx.Out = []byte("hello from the path")
	})

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Spill(17, st); err != nil {
		t.Fatal(err)
	}
	wantFSHash := st.FS().ContentHash()
	st.Release()
	if live := tree.Live(); live != 0 {
		t.Fatalf("%d snapshots live after release", live)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Fresh Open replays the manifest log — the restart path.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Has(17) || s2.MaxID() != 17 {
		t.Fatalf("replayed store: Has(17)=%v MaxID=%d", s2.Has(17), s2.MaxID())
	}
	ctx, depth, err := s2.Load(17, alloc)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Release()
	if depth != 0 {
		t.Errorf("depth = %d, want 0", depth)
	}
	if v, err := ctx.Mem.ReadU64(0x1000); err != nil || v != 0xdeadbeef {
		t.Errorf("page 0 = %#x, %v", v, err)
	}
	if v, err := ctx.Mem.ReadU64(0x1000 + 8*mem.PageSize); err != nil || v != 42 {
		t.Errorf("page 8 = %#x, %v", v, err)
	}
	if data, err := ctx.FS.ReadFile("/a.txt"); err != nil || !bytes.Equal(data, bytes.Repeat([]byte("ab"), 3000)) {
		t.Errorf("/a.txt: %d bytes, %v", len(data), err)
	}
	if sz, err := ctx.FS.Stat("/empty"); err != nil || sz != 0 {
		t.Errorf("/empty: %d, %v", sz, err)
	}
	if ctx.Regs.RIP != 0xcafe || ctx.Regs.GPR[vm.RAX] != 7 {
		t.Errorf("regs = %+v", ctx.Regs)
	}
	if string(ctx.Out) != "hello from the path" {
		t.Errorf("out = %q", ctx.Out)
	}
	// The descriptor table survived: fd 3 still open at offset 100.
	if n, err := ctx.FS.Seek(3, 0, fs.SeekCur); err != nil || n != 100 {
		t.Errorf("fd 3 offset = %d, %v", n, err)
	}
	// Content hash of the rebuilt image matches the manifest's record.
	sn := ctx.FS.Snapshot()
	defer sn.Release()
	if got := sn.ContentHash(); got != wantFSHash {
		t.Error("reloaded fs content hash differs from spilled image")
	}
}

// TestSpillDeltaSharesParentChunks spills a parent and two children that
// each dirty one page: the unchanged pages must dedup onto the parent's
// chunks (content addressing), and the dedup ratio must reflect it.
func TestSpillDeltaSharesParentChunks(t *testing.T) {
	dir := t.TempDir()
	alloc := mem.NewFrameAllocator(0)
	as := mem.NewAddressSpace(alloc)
	const pages = 12
	if err := as.Map(0x1000, pages*mem.PageSize, mem.PermRead|mem.PermWrite, "heap"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		mustWriteU64(t, as, 0x1000+uint64(i)*mem.PageSize, uint64(i)+1)
	}
	ctx := &snapshot.Context{Mem: as, FS: fs.New()}
	tree := snapshot.NewTree()
	parent := tree.Capture(ctx, nil)

	children := make([]*snapshot.State, 2)
	for c := range children {
		child := parent.Restore()
		mustWriteU64(t, child.Mem, 0x1000+uint64(c)*mem.PageSize, 0x9000+uint64(c))
		children[c] = tree.Capture(child, parent)
		child.Release()
	}
	ctx.Release()

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Spill(1, parent); err != nil {
		t.Fatal(err)
	}
	base := s.Stats()
	for c, child := range children {
		if err := s.Spill(uint64(2+c), child); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	// Each child shares pages-1 chunks with the parent and adds one.
	wantChunks := base.Chunks + 2
	if st.Chunks != wantChunks {
		t.Errorf("chunks = %d, want %d (children must dedup onto parent pages)", st.Chunks, wantChunks)
	}
	if st.LogicalBytes != int64(3*pages)*chunkSize {
		t.Errorf("logical = %d, want %d", st.LogicalBytes, int64(3*pages)*chunkSize)
	}
	if r := st.DedupRatio(); r < 0.6 {
		t.Errorf("dedup ratio = %.2f, want sibling sharing", r)
	}

	// Chain linkage: each child manifest records the parent's fs hash.
	pm, _ := s.Manifest(1)
	cm, _ := s.Manifest(2)
	if cm.ParentHash != pm.FSHash {
		t.Error("child manifest ParentHash != parent manifest FSHash")
	}

	for _, c := range children {
		c.Release()
	}
	parent.Release()
	if tree.Live() != 0 || alloc.Live() != 0 {
		t.Fatalf("leak: %d snapshots, %d frames", tree.Live(), alloc.Live())
	}
}

// TestDeleteGarbageCollectsChunks verifies manifest deletion drops
// unshared chunks from disk but keeps chunks another manifest references.
func TestDeleteGarbageCollectsChunks(t *testing.T) {
	dir := t.TempDir()
	tree, _, st := buildState(t, func(ctx *snapshot.Context) {
		if err := ctx.FS.WriteFile("/shared", bytes.Repeat([]byte{7}, 2*chunkSize)); err != nil {
			t.Fatal(err)
		}
	})
	defer func() {
		st.Release()
		if tree.Live() != 0 {
			t.Errorf("%d snapshots live", tree.Live())
		}
	}()

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Spill(1, st); err != nil {
		t.Fatal(err)
	}
	if err := s.Spill(2, st); err != nil { // same content under a second id
		t.Fatal(err)
	}
	full := s.Stats()
	if full.Manifests != 2 {
		t.Fatalf("manifests = %d", full.Manifests)
	}
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats(); got.Chunks != full.Chunks || got.ColdBytes != full.ColdBytes {
		t.Errorf("delete of a fully-shared manifest changed chunks: %+v vs %+v", got, full)
	}
	if err := s.Delete(2); err != nil {
		t.Fatal(err)
	}
	got := s.Stats()
	if got.Manifests != 0 || got.Chunks != 0 || got.ColdBytes != 0 {
		t.Errorf("after deleting all manifests: %+v", got)
	}
	// Chunk files physically gone.
	ents, err := os.ReadDir(filepath.Join(dir, chunkDir))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		sub, _ := os.ReadDir(filepath.Join(dir, chunkDir, e.Name()))
		if len(sub) != 0 {
			t.Errorf("chunk files left under %s", e.Name())
		}
	}
	// Deletion is durable: a reopened store no longer answers either id.
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Has(1) || s2.Has(2) {
		t.Error("deleted ids resurrected by replay")
	}
}

// TestPageHashCacheNotReusedAcrossTrees guards the page-hash cache's key:
// the store outlives a service, and a successor service's snapshot tree
// reuses tree-local ids 1,2,3..., so the cache must key on the process-
// global state sequence, never the tree id. With an id-keyed cache, the
// second tree's child spill below would look up the FIRST tree's hashes,
// record the old content's hash for an unchanged-since-fork page, and a
// later Load would silently reconstruct the old bytes.
func TestPageHashCacheNotReusedAcrossTrees(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	alloc := mem.NewFrameAllocator(0)
	const addr = 0x1000

	// build captures a parent whose one resident page holds v, plus a
	// child that leaves the page untouched (frame shared with the parent,
	// the dirty-walk's "reuse the parent's hash" signal). Each call uses a
	// fresh tree, so the parents of successive calls share tree-local ids.
	build := func(v uint64) (*snapshot.Tree, *snapshot.State, *snapshot.State) {
		as := mem.NewAddressSpace(alloc)
		if err := as.Map(addr, 4*mem.PageSize, mem.PermRead|mem.PermWrite, "heap"); err != nil {
			t.Fatal(err)
		}
		mustWriteU64(t, as, addr, v)
		tree := snapshot.NewTree()
		ctx := &snapshot.Context{Mem: as, FS: fs.New()}
		parent := tree.Capture(ctx, nil)
		ctx.Release()
		cctx := parent.Restore()
		child := tree.Capture(cctx, parent)
		cctx.Release()
		return tree, parent, child
	}

	treeA, pA, cA := build(0xAAAA)
	if pA.ID() != 1 {
		t.Fatalf("tree A parent id = %d, want 1", pA.ID())
	}
	// Spilling the first tree's parent populates the hash cache for it.
	if err := s.Spill(1, pA); err != nil {
		t.Fatal(err)
	}

	treeB, pB, cB := build(0xBBBB)
	if pB.ID() != pA.ID() {
		t.Fatalf("tree-local ids diverged: %d vs %d", pB.ID(), pA.ID())
	}
	// Spill the second tree's child WITHOUT spilling its parent: the walk
	// consults the parent-hash cache, where a tree-id key would now hit
	// the first tree's stale entry.
	if err := s.Spill(2, cB); err != nil {
		t.Fatal(err)
	}
	ctx, _, err := s.Load(2, alloc)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := ctx.Mem.ReadU64(addr); err != nil || v != 0xBBBB {
		t.Fatalf("reloaded page = %#x, %v; want %#x (stale cross-tree hash cache)", v, err, 0xBBBB)
	}
	ctx.Release()

	for _, st := range []*snapshot.State{cA, pA, cB, pB} {
		st.Release()
	}
	if treeA.Live() != 0 || treeB.Live() != 0 {
		t.Fatalf("leak: %d + %d snapshots live", treeA.Live(), treeB.Live())
	}
}

// TestSpillSurvivesDeleteOfSharedChunkMidFlight pins the commit-time
// re-verify: a chunk that was resident at walk time (so the spill never
// wrote it) can lose its last reference to a concurrent Delete before the
// spill commits — the GC removes the file, and without the re-verify the
// committed manifest would reference a chunk that no longer exists,
// breaking every future Load of the id.
func TestSpillSurvivesDeleteOfSharedChunkMidFlight(t *testing.T) {
	content := bytes.Repeat([]byte{7}, chunkSize)
	mkState := func() (*snapshot.Tree, *mem.FrameAllocator, *snapshot.State) {
		return buildState(t, func(ctx *snapshot.Context) {
			if err := ctx.FS.WriteFile("/shared", content); err != nil {
				t.Fatal(err)
			}
		})
	}
	tree1, _, st1 := mkState()
	tree2, alloc2, st2 := mkState()
	defer func() {
		st1.Release()
		st2.Release()
		if tree1.Live() != 0 || tree2.Live() != 0 {
			t.Errorf("leak: %d + %d snapshots live", tree1.Live(), tree2.Live())
		}
	}()

	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Spill(1, st1); err != nil {
		t.Fatal(err)
	}
	// Between Spill(2)'s walk (which sees the shared chunk resident and
	// skips writing it) and its commit, drop the only manifest pinning
	// that chunk: the GC removes the chunk file.
	spillTestHook = func() {
		if err := s.Delete(1); err != nil {
			t.Error(err)
		}
	}
	defer func() { spillTestHook = nil }()
	if err := s.Spill(2, st2); err != nil {
		t.Fatal(err)
	}
	spillTestHook = nil

	ctx, _, err := s.Load(2, alloc2)
	if err != nil {
		t.Fatalf("load after mid-flight delete of shared chunk: %v", err)
	}
	defer ctx.Release()
	if data, err := ctx.FS.ReadFile("/shared"); err != nil || !bytes.Equal(data, content) {
		t.Fatalf("/shared: %d bytes, %v", len(data), err)
	}
}

// TestOpenSweepsOrphanChunks plants an unreferenced chunk file and a
// stray publish temp file (the debris a crashed mid-spill process leaves)
// and verifies a fresh Open removes both while keeping referenced chunks.
func TestOpenSweepsOrphanChunks(t *testing.T) {
	dir := t.TempDir()
	refContent := bytes.Repeat([]byte{9}, chunkSize)
	tree, alloc, st := buildState(t, func(ctx *snapshot.Context) {
		if err := ctx.FS.WriteFile("/f", refContent); err != nil {
			t.Fatal(err)
		}
	})
	defer func() { st.Release(); _ = tree }()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Spill(1, st); err != nil {
		t.Fatal(err)
	}
	refPath := s.chunkPath(Hash(sha256.Sum256(refContent)))
	orphanPath := s.chunkPath(Hash(sha256.Sum256([]byte("never committed"))))
	s.Close()

	if err := os.MkdirAll(filepath.Dir(orphanPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(orphanPath, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	tmpPath := filepath.Join(filepath.Dir(orphanPath), ".chunk-1234567")
	if err := os.WriteFile(tmpPath, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := os.Stat(orphanPath); !os.IsNotExist(err) {
		t.Errorf("orphan chunk survived Open sweep: %v", err)
	}
	if _, err := os.Stat(tmpPath); !os.IsNotExist(err) {
		t.Errorf("publish temp file survived Open sweep: %v", err)
	}
	if _, err := os.Stat(refPath); err != nil {
		t.Errorf("referenced chunk swept: %v", err)
	}
	ctx, _, err := s2.Load(1, alloc)
	if err != nil {
		t.Fatalf("load after sweep: %v", err)
	}
	defer ctx.Release()
	if data, err := ctx.FS.ReadFile("/f"); err != nil || !bytes.Equal(data, refContent) {
		t.Fatalf("/f after sweep: %d bytes, %v", len(data), err)
	}
}

// TestReserveIDsRaisesMaxIDAcrossReopen: the durable id high-water mark
// is monotonic, survives a replay, and folds into MaxID alongside
// manifest ids.
func TestReserveIDsRaisesMaxIDAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.MaxID(); got != 0 {
		t.Fatalf("fresh store MaxID = %d", got)
	}
	if err := s.ReserveIDs(100); err != nil {
		t.Fatal(err)
	}
	if err := s.ReserveIDs(50); err != nil { // below the mark: no-op
		t.Fatal(err)
	}
	if got := s.MaxID(); got != 100 {
		t.Fatalf("MaxID after ReserveIDs(100) = %d", got)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.MaxID(); got != 100 {
		t.Fatalf("MaxID after replay = %d, want 100 (mark lost)", got)
	}
	tree, _, st := buildState(t, nil)
	defer func() { st.Release(); _ = tree }()
	if err := s2.Spill(200, st); err != nil {
		t.Fatal(err)
	}
	if got := s2.MaxID(); got != 200 {
		t.Fatalf("MaxID with manifest above mark = %d, want 200", got)
	}
}

// TestSpillIdempotent re-spilling a resident id is a no-op.
func TestSpillIdempotent(t *testing.T) {
	tree, _, st := buildState(t, nil)
	defer func() { st.Release(); _ = tree }()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Spill(5, st); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	if err := s.Spill(5, st); err != nil {
		t.Fatal(err)
	}
	if after := s.Stats(); after != before {
		t.Errorf("re-spill changed stats: %+v vs %+v", after, before)
	}
}

// TestTornLogTailRecovered appends garbage (a torn half-record) to the
// log: Open must recover every intact record and truncate the tail so
// future appends extend a clean log.
func TestTornLogTailRecovered(t *testing.T) {
	dir := t.TempDir()
	tree, _, st := buildState(t, func(ctx *snapshot.Context) {
		if err := ctx.FS.WriteFile("/f", []byte("payload")); err != nil {
			t.Fatal(err)
		}
	})
	defer func() { st.Release(); _ = tree }()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Spill(9, st); err != nil {
		t.Fatal(err)
	}
	s.Close()

	logPath := filepath.Join(dir, logName)
	intact, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// A torn append: a valid header promising more payload than exists.
	torn := append(append([]byte{}, intact...), intact[:recHdrBytes+3]...)
	if err := os.WriteFile(logPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("open over torn tail: %v", err)
	}
	if !s2.Has(9) {
		t.Fatal("intact record lost")
	}
	// The torn tail is gone: spill another id, then a third Open sees both.
	if err := s2.Spill(10, st); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if !s3.Has(9) || !s3.Has(10) {
		t.Errorf("after truncate+append: Has(9)=%v Has(10)=%v", s3.Has(9), s3.Has(10))
	}
}

// TestCorruptRecordFailsOpen flips a byte inside a checksummed record:
// Open must refuse the log rather than replay damaged state.
func TestCorruptRecordFailsOpen(t *testing.T) {
	dir := t.TempDir()
	tree, _, st := buildState(t, nil)
	defer func() { st.Release(); _ = tree }()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Spill(3, st); err != nil {
		t.Fatal(err)
	}
	if err := s.Spill(4, st); err != nil {
		t.Fatal(err)
	}
	s.Close()
	logPath := filepath.Join(dir, logName)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	data[recHdrBytes+10] ^= 0xff // inside the first record's payload
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over corrupt record = %v, want ErrCorrupt", err)
	}
}

// TestCorruptChunkFailsLoad damages a chunk payload on disk: Load must
// report corruption, not hand back wrong bytes.
func TestCorruptChunkFailsLoad(t *testing.T) {
	dir := t.TempDir()
	tree, alloc, st := buildState(t, func(ctx *snapshot.Context) {
		if err := ctx.FS.WriteFile("/f", bytes.Repeat([]byte{9}, chunkSize)); err != nil {
			t.Fatal(err)
		}
	})
	defer func() { st.Release(); _ = tree }()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Spill(8, st); err != nil {
		t.Fatal(err)
	}
	h := sha256.Sum256(bytes.Repeat([]byte{9}, chunkSize))
	path := s.chunkPath(Hash(h))
	if err := os.WriteFile(path, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(8, alloc); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load with damaged chunk = %v, want ErrCorrupt", err)
	}
}

// TestSparseFileRoundTrip spills a file with a hole (guest Seek past the
// end, then Write): the reload must keep the hole — resident footprint
// stays O(written blocks), not O(logical size) — and the rebuilt image's
// ContentHash must match the manifest's recorded FSHash.
func TestSparseFileRoundTrip(t *testing.T) {
	const holeBlocks = 64
	tree, alloc, st := buildState(t, func(ctx *snapshot.Context) {
		fd, err := ctx.FS.Open("/sparse", fs.OWrOnly|fs.OCreate)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ctx.FS.Seek(fd, holeBlocks*fs.BlockSize, fs.SeekSet); err != nil {
			t.Fatal(err)
		}
		if _, err := ctx.FS.Write(fd, []byte("tail")); err != nil {
			t.Fatal(err)
		}
	})
	defer func() { st.Release(); _ = tree }()
	wantHash := st.FS().ContentHash()
	priv, shared := st.FS().Footprint()
	wantResident := priv + shared

	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Spill(1, st); err != nil {
		t.Fatal(err)
	}
	ctx, _, err := s.Load(1, alloc)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Release()
	sz, err := ctx.FS.Stat("/sparse")
	if err != nil || sz != holeBlocks*fs.BlockSize+4 {
		t.Fatalf("size = %d, %v", sz, err)
	}
	sn := ctx.FS.Snapshot()
	defer sn.Release()
	if got := sn.ContentHash(); got != wantHash {
		t.Error("reloaded sparse image hash differs from spilled image")
	}
	gotPriv, gotShared := sn.Footprint()
	if got := gotPriv + gotShared; got != wantResident {
		t.Errorf("reloaded resident bytes = %d, want %d (holes materialized?)", got, wantResident)
	}
	// The hole still reads as zeroes and the tail survived.
	data, err := ctx.FS.ReadFile("/sparse")
	if err != nil || len(data) != holeBlocks*fs.BlockSize+4 {
		t.Fatalf("read: %d bytes, %v", len(data), err)
	}
	for i := 0; i < holeBlocks*fs.BlockSize; i++ {
		if data[i] != 0 {
			t.Fatalf("hole byte %d = %#x", i, data[i])
		}
	}
	if string(data[holeBlocks*fs.BlockSize:]) != "tail" {
		t.Fatalf("tail = %q", data[holeBlocks*fs.BlockSize:])
	}
}

// TestLoadUnknownID asks for an id the store never held.
func TestLoadUnknownID(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, _, err := s.Load(99, mem.NewFrameAllocator(0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Load(99) = %v, want ErrNotFound", err)
	}
	if s.Has(99) || s.MaxID() != 0 {
		t.Error("empty store claims content")
	}
}

// TestManifestRoundTrip exercises encode/decode equality directly.
func TestManifestRoundTrip(t *testing.T) {
	m := &Manifest{
		ID:    12,
		Depth: 4,
		Regs:  vm.Registers{RIP: 1, Flags: 2, GPR: [16]uint64{3, 4, 5}},
		Out:   []byte("output bytes"),
		Brk:   0x8000,
		VMAs:  []mem.VMA{{Start: 0x1000, End: 0x3000, Perm: 3, Name: "heap"}},
		Pages: []PageRef{{Addr: 0x1000, Hash: Hash{1, 2}}, {Addr: 0x2000, Hash: Hash{3}}},
		Files: []FileRef{
			{Path: "/x", Size: chunkSize + 1, Blocks: []BlockRef{{Present: true, Hash: Hash{9}}, {}}},
			{Path: "/empty", Size: 0},
		},
		FDs: []fs.FD{{Path: "/x", Off: 33, Flags: fs.ORdWr, Open: true}},
	}
	m.ParentHash[0] = 0xaa
	m.FSHash[0] = 0xbb
	got, err := decodeManifest(encodeManifest(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != m.ID || got.Depth != m.Depth || got.Regs != m.Regs ||
		string(got.Out) != string(m.Out) || got.Brk != m.Brk ||
		got.ParentHash != m.ParentHash || got.FSHash != m.FSHash {
		t.Errorf("scalar fields: %+v", got)
	}
	if len(got.VMAs) != 1 || got.VMAs[0] != m.VMAs[0] {
		t.Errorf("vmas: %+v", got.VMAs)
	}
	if len(got.Pages) != 2 || got.Pages[0] != m.Pages[0] || got.Pages[1] != m.Pages[1] {
		t.Errorf("pages: %+v", got.Pages)
	}
	if len(got.Files) != 2 || got.Files[0].Path != "/x" || got.Files[0].Size != chunkSize+1 ||
		len(got.Files[0].Blocks) != 2 || !got.Files[0].Blocks[0].Present || got.Files[0].Blocks[1].Present {
		t.Errorf("files: %+v", got.Files)
	}
	if len(got.FDs) != 1 || got.FDs[0] != m.FDs[0] {
		t.Errorf("fds: %+v", got.FDs)
	}
}

// TestDecodeManifestRejectsCorruption flips every byte position in a small
// manifest one at a time: decode must error (the checksum catches all
// single-byte corruption) and never panic.
func TestDecodeManifestRejectsCorruption(t *testing.T) {
	m := &Manifest{ID: 1, Files: []FileRef{{Path: "/f", Size: 10, Blocks: []BlockRef{{Present: true}}}}}
	enc := encodeManifest(m)
	for i := range enc {
		bad := append([]byte{}, enc...)
		bad[i] ^= 0x41
		if _, err := decodeManifest(bad); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
	for _, n := range []int{0, 1, 8, len(enc) - 1} {
		if _, err := decodeManifest(enc[:n]); err == nil {
			t.Fatalf("truncation to %d accepted", n)
		}
	}
}

// TestClosedStore verifies post-Close operations fail with ErrClosed.
func TestClosedStore(t *testing.T) {
	tree, alloc, st := buildState(t, nil)
	defer func() { st.Release(); _ = tree }()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close not idempotent:", err)
	}
	if err := s.Spill(1, st); !errors.Is(err, ErrClosed) {
		t.Errorf("Spill after Close = %v", err)
	}
	if _, _, err := s.Load(1, alloc); !errors.Is(err, ErrClosed) {
		t.Errorf("Load after Close = %v", err)
	}
	if err := s.Delete(1); !errors.Is(err, ErrClosed) {
		t.Errorf("Delete after Close = %v", err)
	}
}
