package store

import (
	"crypto/sha256"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fs"
	"repro/internal/mem"
	"repro/internal/snapshot"
)

// fuzzSeedManifests builds a few realistic encoded manifests so the fuzzer
// starts from valid structure rather than pure noise.
func fuzzSeedManifests(tb testing.TB) [][]byte {
	tb.Helper()
	var out [][]byte
	add := func(m *Manifest) { out = append(out, encodeManifest(m)) }
	add(&Manifest{ID: 1})
	add(&Manifest{
		ID:    2,
		Depth: 3,
		Out:   []byte("path output"),
		Brk:   0x9000,
		VMAs:  []mem.VMA{{Start: 0x1000, End: 0x5000, Perm: mem.PermRW, Name: "heap"}},
		Pages: []PageRef{{Addr: 0x1000, Hash: Hash{1}}, {Addr: 0x4000, Hash: Hash{2}}},
		Files: []FileRef{
			{Path: "/solver.state", Size: chunkSize + 7, Blocks: []BlockRef{{Present: true, Hash: Hash{3}}, {Present: true, Hash: Hash{4}}}},
			{Path: "/sparse", Size: 2 * chunkSize, Blocks: []BlockRef{{}, {Present: true, Hash: Hash{5}}}},
		},
		FDs: []fs.FD{{Path: "/solver.state", Off: 12, Flags: fs.ORdWr, Open: true}},
	})

	// A real spill's manifest, including one produced through the full
	// state-capture path.
	alloc := mem.NewFrameAllocator(0)
	as := mem.NewAddressSpace(alloc)
	if err := as.Map(0x1000, 4*mem.PageSize, mem.PermRW, "heap"); err != nil {
		tb.Fatal(err)
	}
	if err := as.WriteU64(0x1000, 77); err != nil {
		tb.Fatal(err)
	}
	ctx := &snapshot.Context{Mem: as, FS: fs.New()}
	if err := ctx.FS.WriteFile("/f", []byte("seed content")); err != nil {
		tb.Fatal(err)
	}
	tree := snapshot.NewTree()
	st := tree.Capture(ctx, nil)
	ctx.Release()
	dir := tb.(*testing.F).TempDir()
	s, err := Open(dir)
	if err != nil {
		tb.Fatal(err)
	}
	if err := s.Spill(3, st); err != nil {
		tb.Fatal(err)
	}
	st.Release()
	m, _ := s.Manifest(3)
	add(m)
	s.Close()
	return out
}

// FuzzStoreLoad fuzzes the store's untrusted-input surfaces: manifest
// decoding, chunk decoding, and manifest-log replay. Corrupt input of any
// shape must produce an error — never a panic, hang, or outsized
// allocation. (Chunk payloads larger than the logical chunk size are
// rejected before allocation; manifest counts are validated against the
// record length before slices are sized.)
func FuzzStoreLoad(f *testing.F) {
	for _, seed := range fuzzSeedManifests(f) {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add(make([]byte, 300))

	logDir := f.TempDir()
	f.Fuzz(func(t *testing.T, data []byte) {
		// Manifest decode: must error or round-trip, never panic.
		if m, err := decodeManifest(data); err == nil {
			re, err := decodeManifest(encodeManifest(m))
			if err != nil {
				t.Fatalf("re-decode of accepted manifest failed: %v", err)
			}
			if re.ID != m.ID || len(re.Pages) != len(m.Pages) || len(re.Files) != len(m.Files) {
				t.Fatalf("round-trip drift: %+v vs %+v", re, m)
			}
		}

		// Chunk decode: wrong hash must be rejected; the matching hash of
		// the zero-extended payload must be accepted.
		if _, err := decodeChunk(data, Hash{}); err == nil && len(data) > 0 {
			// Only the all-zero chunk hashes to the digest of zeroes —
			// and Hash{} is not that digest, so acceptance means a bug.
			t.Fatal("decodeChunk accepted a zero hash")
		}
		if len(data) <= chunkSize {
			full := make([]byte, chunkSize)
			copy(full, data)
			if _, err := decodeChunk(data, sha256.Sum256(full)); err != nil {
				t.Fatalf("decodeChunk rejected its own content hash: %v", err)
			}
		}

		// Log replay: an arbitrary byte stream as manifests.log must open
		// cleanly (torn tail) or fail with an error — never panic. Use a
		// per-iteration subdirectory so parallel fuzz workers don't race.
		dir, err := os.MkdirTemp(logDir, "fz")
		if err != nil {
			t.Fatal(err)
		}
		defer os.RemoveAll(dir)
		if err := os.MkdirAll(filepath.Join(dir, chunkDir), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if s, err := Open(dir); err == nil {
			s.Close()
		}
	})
}
