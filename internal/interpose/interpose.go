// Package interpose defines the guest/libOS system-call boundary: the
// syscall numbers (including the paper's three new backtracking calls),
// errno encoding, the containment policy for file paths, and the classic
// log-and-undo machinery that the paper's §5 describes — kept here both as
// a fallback for calls not subsumed by snapshot immutability and as the
// baseline for the interposition-cost experiment (E10).
package interpose

import "strings"

// Guest system-call numbers. The POSIX subset reuses Linux numbering so
// guest code reads naturally; the backtracking extension calls live at 500+.
const (
	SysRead  = 0
	SysWrite = 1
	SysOpen  = 2
	SysClose = 3
	SysSeek  = 8
	SysBrk   = 12
	SysExit  = 60
	// SysGetTick returns a deterministic per-path tick (retired instruction
	// count), the sandbox-safe stand-in for clock syscalls.
	SysGetTick = 96

	// SysGuess creates a lightweight snapshot (a partial candidate) and
	// returns an extension number in [0, n). Fig. 1's "a little magic".
	SysGuess = 500
	// SysGuessFail discards the currently executing extension step and
	// never returns (Prolog fail).
	SysGuessFail = 501
	// SysGuessStrategy selects the search strategy; honored only before
	// the first SysGuess. Returns 1 when the strategy is supported.
	SysGuessStrategy = 502
	// SysGuessHint attaches a goal-distance hint to the next SysGuess (the
	// "extended guess" of §3.1 that A*/SM-A* require).
	SysGuessHint = 503

	// SysMakeSymbolic returns a fresh 64-bit symbolic input (S2E-style
	// in-vivo instrumentation; only meaningful under internal/symexec).
	SysMakeSymbolic = 600
	// SysAssume constrains the path with arg0 != 0, killing the path when
	// the constraint is infeasible.
	SysAssume = 601
)

// Strategy identifiers for SysGuessStrategy.
const (
	StrategyDFS = iota
	StrategyBFS
	StrategyAStar
	StrategySMAStar
	StrategyRandom
)

// Errno values reported to guests (Linux numbering).
const (
	ENOENT  = 2
	EBADF   = 9
	ENOMEM  = 12
	EACCES  = 13
	EFAULT  = 14
	EINVAL  = 22
	EFBIG   = 27
	ENOSYS  = 38
	ENOTSUP = 95
)

// ErrnoRet encodes errno e as a negative syscall return value.
func ErrnoRet(e int) uint64 { return uint64(-int64(e)) }

// IsErrnoRet reports whether a syscall return value encodes an errno, and
// which.
func IsErrnoRet(v uint64) (int, bool) {
	if int64(v) < 0 && int64(v) > -4096 {
		return int(-int64(v)), true
	}
	return 0, false
}

// PathAllowed implements the paper's soundness-over-completeness policy
// (§5): only regular file paths are admitted; device nodes, proc entries,
// and anything naming a transport endpoint fail with ENOTSUP.
func PathAllowed(path string) bool {
	if path == "" || strings.Contains(path, ":") {
		return false
	}
	for _, forbidden := range []string{"/dev/", "/proc/", "/sys/", "/tmp/sock"} {
		if strings.HasPrefix(path, forbidden) || path == strings.TrimSuffix(forbidden, "/") {
			return false
		}
	}
	return true
}

// Counters tallies interposed system calls for the E10 experiment.
type Counters struct {
	Total    int64
	ByNumber map[uint64]int64
	Denied   int64 // policy rejections
}

// NewCounters returns zeroed counters.
func NewCounters() *Counters { return &Counters{ByNumber: make(map[uint64]int64)} }

// Record notes one interposed call.
func (c *Counters) Record(nr uint64) {
	c.Total++
	c.ByNumber[nr]++
}

// UndoOp is one reversible side effect in the classic log-and-undo design.
type UndoOp struct {
	// Undo reverses the side effect.
	Undo func() error
	// Name describes the logged call ("brk", "open", ...).
	Name string
}

// UndoLog is the classic alternative to structural immutability: every
// address-space-changing call is logged and reversed on backtracking
// ([14]-style). Our snapshot design subsumes this (the VMA list and break
// are part of the captured state), so the log exists as the measured
// baseline in E10 and as the extension point for calls that cannot be
// contained structurally.
type UndoLog struct {
	ops []UndoOp
}

// Log appends a reversible operation.
func (l *UndoLog) Log(name string, undo func() error) {
	l.ops = append(l.ops, UndoOp{Undo: undo, Name: name})
}

// Len returns the number of logged operations.
func (l *UndoLog) Len() int { return len(l.ops) }

// Rollback undoes every logged operation in reverse order, returning the
// first error but attempting all.
func (l *UndoLog) Rollback() error {
	var first error
	for i := len(l.ops) - 1; i >= 0; i-- {
		if err := l.ops[i].Undo(); err != nil && first == nil {
			first = err
		}
	}
	l.ops = l.ops[:0]
	return first
}

// Mark returns a position for partial rollback.
func (l *UndoLog) Mark() int { return len(l.ops) }

// RollbackTo undoes operations logged after mark.
func (l *UndoLog) RollbackTo(mark int) error {
	var first error
	for i := len(l.ops) - 1; i >= mark; i-- {
		if err := l.ops[i].Undo(); err != nil && first == nil {
			first = err
		}
	}
	l.ops = l.ops[:mark]
	return first
}
