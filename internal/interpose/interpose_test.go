package interpose

import (
	"errors"
	"testing"
)

func TestErrnoRoundTrip(t *testing.T) {
	for _, e := range []int{ENOENT, EBADF, ENOMEM, EACCES, EFAULT, EINVAL, ENOSYS, ENOTSUP} {
		v := ErrnoRet(e)
		got, ok := IsErrnoRet(v)
		if !ok || got != e {
			t.Errorf("errno %d round-trip = %d, %v", e, got, ok)
		}
	}
	if _, ok := IsErrnoRet(0); ok {
		t.Error("0 decoded as errno")
	}
	if _, ok := IsErrnoRet(42); ok {
		t.Error("42 decoded as errno")
	}
	if _, ok := IsErrnoRet(^uint64(0) - 10000); ok {
		t.Error("large negative decoded as errno")
	}
}

func TestPathPolicy(t *testing.T) {
	allowed := []string{"/home/x/file.txt", "/out.txt", "/a/b/c", "relative/ok"}
	denied := []string{"", "/dev/mem", "/dev/null", "/proc/self/mem", "/sys/kernel",
		"tcp:127.0.0.1:80", "unix:/tmp/sock", "/dev"}
	for _, p := range allowed {
		if !PathAllowed(p) {
			t.Errorf("PathAllowed(%q) = false, want true", p)
		}
	}
	for _, p := range denied {
		if PathAllowed(p) {
			t.Errorf("PathAllowed(%q) = true, want false", p)
		}
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Record(SysWrite)
	c.Record(SysWrite)
	c.Record(SysBrk)
	if c.Total != 3 || c.ByNumber[SysWrite] != 2 || c.ByNumber[SysBrk] != 1 {
		t.Errorf("counters = %+v", c)
	}
}

func TestUndoLogRollback(t *testing.T) {
	var log UndoLog
	var trace []string
	log.Log("a", func() error { trace = append(trace, "a"); return nil })
	log.Log("b", func() error { trace = append(trace, "b"); return nil })
	log.Log("c", func() error { trace = append(trace, "c"); return errors.New("c failed") })
	if log.Len() != 3 {
		t.Fatalf("len = %d", log.Len())
	}
	err := log.Rollback()
	if err == nil || err.Error() != "c failed" {
		t.Errorf("rollback err = %v", err)
	}
	// Reverse order, all attempted despite the error.
	if len(trace) != 3 || trace[0] != "c" || trace[1] != "b" || trace[2] != "a" {
		t.Errorf("trace = %v", trace)
	}
	if log.Len() != 0 {
		t.Errorf("len after rollback = %d", log.Len())
	}
}

func TestUndoLogPartialRollback(t *testing.T) {
	var log UndoLog
	var n int
	log.Log("keep", func() error { n += 100; return nil })
	mark := log.Mark()
	log.Log("x", func() error { n++; return nil })
	log.Log("y", func() error { n++; return nil })
	if err := log.RollbackTo(mark); err != nil {
		t.Fatal(err)
	}
	if n != 2 || log.Len() != 1 {
		t.Errorf("n=%d len=%d, want 2/1", n, log.Len())
	}
}
