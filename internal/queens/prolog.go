package queens

import (
	"fmt"

	"repro/internal/wam"
)

// PrologProgram is the classic select/attack n-queens formulation, the
// program run on the Prolog comparator of §5.
const PrologProgram = `
queens(N, Qs) :- numlist(1, N, Ns), place(Ns, [], Qs).
place([], Qs, Qs).
place(Unplaced, Safe, Qs) :-
    select(Q, Unplaced, Rest),
    \+ attack(Q, Safe),
    place(Rest, [Q|Safe], Qs).
attack(X, Xs) :- attack_(X, 1, Xs).
attack_(X, N, [Y|_]) :- X =:= Y + N.
attack_(X, N, [Y|_]) :- X =:= Y - N.
attack_(X, N, [_|Ys]) :- N1 is N + 1, attack_(X, N1, Ys).
`

// NewPrologMachine returns a machine loaded with the prelude and the
// n-queens program.
func NewPrologMachine() (*wam.Machine, error) {
	db, err := wam.NewPreludeDB()
	if err != nil {
		return nil, err
	}
	if err := db.Consult(PrologProgram); err != nil {
		return nil, err
	}
	return wam.NewMachine(db), nil
}

// PrologCount counts all n-queens solutions on the Prolog engine.
func PrologCount(n int, maxCalls int64) (int, wam.Stats, error) {
	m, err := NewPrologMachine()
	if err != nil {
		return 0, wam.Stats{}, err
	}
	m.MaxCalls = maxCalls
	count, err := m.SolveQuery(fmt.Sprintf("queens(%d, Qs)", n),
		func(map[string]string) bool { return true })
	return count, m.Stats, err
}
