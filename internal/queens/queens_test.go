package queens_test

import (
	"context"

	"testing"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/guest"
	"repro/internal/mem"
	"repro/internal/queens"
	"repro/internal/snapshot"
)

func TestHandCodedCounts(t *testing.T) {
	for n := 1; n <= 9; n++ {
		if got := queens.HandCoded(n, nil); got != queens.Counts[n] {
			t.Errorf("HandCoded(%d) = %d, want %d", n, got, queens.Counts[n])
		}
	}
}

func TestHandCodedBoardsValid(t *testing.T) {
	n := 6
	count := 0
	queens.HandCoded(n, func(cols []int) {
		count++
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if cols[a] == cols[b] {
					t.Fatalf("row conflict in %v", cols)
				}
				if cols[a]-cols[b] == a-b || cols[a]-cols[b] == b-a {
					t.Fatalf("diagonal conflict in %v", cols)
				}
			}
		}
	})
	if count != queens.Counts[n] {
		t.Errorf("boards = %d", count)
	}
}

func TestPrologCounts(t *testing.T) {
	for n := 4; n <= 6; n++ {
		got, stats, err := queens.PrologCount(n, 50_000_000)
		if err != nil {
			t.Fatalf("PrologCount(%d): %v", n, err)
		}
		if got != queens.Counts[n] {
			t.Errorf("PrologCount(%d) = %d, want %d", n, got, queens.Counts[n])
		}
		if stats.ChoicePoints == 0 {
			t.Error("no choice points recorded")
		}
	}
}

// TestThreeImplementationsAgree is the E1 correctness cross-check: the
// snapshot engine (both backends), the hand-coded solver, and the Prolog
// engine must all find the same number of solutions.
func TestThreeImplementationsAgree(t *testing.T) {
	const n = 6
	want := queens.HandCoded(n, nil)

	// Hosted snapshot backend.
	alloc := mem.NewFrameAllocator(0)
	ctx, err := queens.NewHostedContext(alloc, n)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(core.NewHostedMachine(queens.HostedStep(false)), core.Config{})
	res, err := eng.Run(context.Background(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != want {
		t.Errorf("hosted = %d, want %d", len(res.Solutions), want)
	}

	// Native VM backend.
	img, err := queens.Asm(n)
	if err != nil {
		t.Fatal(err)
	}
	as, regs, err := guest.Load(img, mem.NewFrameAllocator(0), guest.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vmEng := core.New(core.NewVMMachine(0), core.Config{})
	vmRes, err := vmEng.Run(context.Background(), &snapshot.Context{Mem: as, FS: fs.New(), Regs: regs})
	if err != nil {
		t.Fatal(err)
	}
	if len(vmRes.Solutions) != want {
		t.Errorf("native = %d, want %d", len(vmRes.Solutions), want)
	}

	// Prolog comparator.
	pc, _, err := queens.PrologCount(n, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if pc != want {
		t.Errorf("prolog = %d, want %d", pc, want)
	}
}

func TestAsmRange(t *testing.T) {
	if _, err := queens.Asm(0); err == nil {
		t.Error("Asm(0) succeeded")
	}
	if _, err := queens.Asm(10); err == nil {
		t.Error("Asm(10) succeeded")
	}
	for n := 1; n <= 9; n++ {
		if _, err := queens.Asm(n); err != nil {
			t.Errorf("Asm(%d): %v", n, err)
		}
	}
}

func TestHostedFirstSolutionMode(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	ctx, err := queens.NewHostedContext(alloc, 8)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(core.NewHostedMachine(queens.HostedStep(true)), core.Config{MaxSolutions: 1})
	res, err := eng.Run(context.Background(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 || res.Solutions[0].Kind != core.SolutionExit {
		t.Fatalf("solutions = %v", res.Solutions)
	}
	// A first solution requires far fewer nodes than the full tree.
	if res.Stats.Nodes > 2000 {
		t.Errorf("first-solution nodes = %d (suspiciously many)", res.Stats.Nodes)
	}
}
