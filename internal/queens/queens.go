// Package queens provides the n-queens workload of the paper's Figure 1 in
// three forms used throughout the evaluation (E1):
//
//   - Asm: the native SVX64 translation of Figure 1 — arbitrary machine
//     code using sys_guess/sys_guess_fail with no backtracking bookkeeping.
//   - HostedStep: the same search as a hosted step machine whose state
//     lives in the simulated address space.
//   - HandCoded: the hand-written recursive solver with O(1) undo that §5
//     expects to win on this trivially-sized problem.
package queens

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/mem"
	"repro/internal/snapshot"
)

// Counts of all n-queens solutions for checking results (index = n).
var Counts = []int{1, 1, 0, 0, 2, 10, 4, 40, 92, 352, 724}

// HandCoded counts all solutions with the classic hand-coded backtracking
// loop: stack recursion, in-place state, O(1) undo per level. boards, when
// non-nil, receives each solution as row indices per column.
func HandCoded(n int, boards func(cols []int)) int {
	col := make([]int, n)
	row := make([]bool, n)
	ld := make([]bool, 2*n)
	rd := make([]bool, 2*n)
	count := 0
	var rec func(c int)
	rec = func(c int) {
		if c == n {
			count++
			if boards != nil {
				boards(col)
			}
			return
		}
		for r := 0; r < n; r++ {
			if row[r] || ld[r+c] || rd[n+r-c] {
				continue
			}
			col[c], row[r], ld[r+c], rd[n+r-c] = r, true, true, true
			rec(c + 1)
			row[r], ld[r+c], rd[n+r-c] = false, false, false
		}
	}
	rec(0)
	return count
}

// Hosted state layout (offsets from core.HostedHeapBase).
const (
	offC       = 0
	offN       = 8
	offStarted = 16
	offCol     = 32
)

// NewHostedContext builds the root context for the hosted solver: the
// heap holds c, n, the started flag, and the col/row/ld/rd arrays.
func NewHostedContext(alloc *mem.FrameAllocator, n int) (*snapshot.Context, error) {
	need := uint64(offCol + 8*(n+n+2*n+2*n))
	ctx, err := core.NewHostedContext(alloc, need)
	if err != nil {
		return nil, err
	}
	if err := ctx.Mem.WriteU64(core.HostedHeapBase+offN, uint64(n)); err != nil {
		ctx.Release()
		return nil, err
	}
	return ctx, nil
}

// HostedStep returns the step function implementing Figure 1 as a hosted
// guest. When exitOnFirst is true a completed board exits (first-solution
// mode); otherwise it prints the board and fails, enumerating all
// solutions exactly like the paper's main().
func HostedStep(exitOnFirst bool) core.StepFunc {
	return func(env *core.Env) error {
		m := env.Mem()
		base := core.HostedHeapBase
		rd8 := func(off uint64) uint64 {
			v, err := m.ReadU64(base + off)
			if err != nil {
				panic(err) // heap is always mapped; a fault is a harness bug
			}
			return v
		}
		wr8 := func(off, v uint64) {
			if err := m.WriteU64(base+off, v); err != nil {
				panic(err)
			}
		}
		n := rd8(offN)
		colOff := uint64(offCol)
		rowOff := colOff + 8*n
		ldOff := rowOff + 8*n
		rdOff := ldOff + 16*n

		if rd8(offStarted) == 0 { // root step: main() up to the first guess
			wr8(offStarted, 1)
			env.Guess(n)
			return nil
		}
		c := rd8(offC)
		r := env.Choice()
		if rd8(rowOff+8*r) != 0 || rd8(ldOff+8*(r+c)) != 0 || rd8(rdOff+8*(n+r-c)) != 0 {
			env.Fail()
			return nil
		}
		wr8(colOff+8*c, r)
		wr8(rowOff+8*r, 1)
		wr8(ldOff+8*(r+c), 1)
		wr8(rdOff+8*(n+r-c), 1)
		c++
		wr8(offC, c)
		if c < n {
			env.Guess(n)
			return nil
		}
		var sb strings.Builder
		for i := uint64(0); i < n; i++ {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d", rd8(colOff+8*i))
		}
		sb.WriteByte('\n')
		env.Printf("%s", sb.String())
		if exitOnFirst {
			env.Exit(0)
		} else {
			env.Fail() // print all answers, as in Figure 1's main()
		}
		return nil
	}
}

// Asm returns the native SVX64 image of Figure 1 for n in [1, 9]:
// single digits keep the board printer trivial. The program selects DFS via
// sys_guess_strategy, guesses a row per column, fails on conflicts, prints
// each complete board, and backtracks to enumerate every solution.
func Asm(n int) (*guest.Image, error) {
	if n < 1 || n > 9 {
		return nil, fmt.Errorf("queens: native n=%d out of range [1,9]", n)
	}
	src := fmt.Sprintf(`
.equ N, %d
.data
col: .space %d
row: .space %d
ld:  .space %d
rd:  .space %d
buf: .space %d
.text
_start:
    mov rax, 502        ; sys_guess_strategy
    mov rdi, 0          ; DFS
    syscall
    cmp rax, 1
    jne exit
    mov r12, 0          ; c = 0
col_loop:
    mov rax, 500        ; sys_guess
    mov rdi, N
    syscall             ; rax = r, "a little magic"
    mov r13, rax
    mov rbx, =row       ; row[r]?
    loadx rcx, [rbx + r13*8]
    cmp rcx, 0
    jne fail
    mov r14, r13        ; ld[r+c]?
    add r14, r12
    mov rbx, =ld
    loadx rcx, [rbx + r14*8]
    cmp rcx, 0
    jne fail
    mov r15, r13        ; rd[N+r-c]?
    add r15, N
    sub r15, r12
    mov rbx, =rd
    loadx rcx, [rbx + r15*8]
    cmp rcx, 0
    jne fail
    mov rbx, =col       ; place the queen
    storex r13, [rbx + r12*8]
    mov rcx, 1
    mov rbx, =row
    storex rcx, [rbx + r13*8]
    mov rbx, =ld
    storex rcx, [rbx + r14*8]
    mov rbx, =rd
    storex rcx, [rbx + r15*8]
    inc r12
    cmp r12, N
    jl col_loop
    mov rbx, =col       ; printboard(N)
    mov r9, =buf
    mov rcx, 0
fill:
    loadx rax, [rbx + rcx*8]
    add rax, 48
    storebx rax, [r9 + rcx*1]
    inc rcx
    cmp rcx, N
    jl fill
    mov rax, 10
    storebx rax, [r9 + rcx*1]
    mov rax, 1          ; write(1, buf, N+1)
    mov rdi, 1
    mov rsi, =buf
    mov rdx, N
    add rdx, 1
    syscall
fail:
    mov rax, 501        ; sys_guess_fail -- backtrack
    syscall
exit:
    mov rax, 60
    mov rdi, 0
    syscall
`, n, 8*n, 8*n, 16*n, 16*n, n+1)
	return guest.AssembleImage(src)
}
