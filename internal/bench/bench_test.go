package bench

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/mem"
)

// TestAllExperimentsQuick runs every experiment at quick scale: the harness
// must produce a non-empty, well-formed table for each row of the index.
func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			tb, err := e.Run(Options{Quick: true})
			if err != nil {
				t.Fatalf("E%d: %v", e.ID, err)
			}
			if len(tb.Rows) == 0 {
				t.Fatalf("E%d produced no rows", e.ID)
			}
			out := tb.Render()
			if !strings.Contains(out, "==") {
				t.Errorf("E%d render missing title: %q", e.ID, out[:min(80, len(out))])
			}
			for _, row := range tb.Rows {
				if len(row) != len(tb.Columns) {
					t.Errorf("E%d row width %d != %d columns", e.ID, len(row), len(tb.Columns))
				}
			}
		})
	}
}

// BenchmarkE11Quick keeps the TLB experiment wired into `go test -bench`
// (and the CI one-iteration smoke): a regression that breaks the TLB win
// or its counter plumbing fails here, not just in a manual snapbench run.
func BenchmarkE11Quick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := E11(Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatal("E11 produced no rows")
		}
	}
}

// BenchmarkE12Quick keeps the work-stealing scaling experiment wired into
// `go test -bench` (and the CI one-iteration smoke): it also re-verifies
// solution-set identity across worker counts on every run.
func BenchmarkE12Quick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := E12(Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatal("E12 produced no rows")
		}
	}
}

// BenchmarkE13Quick keeps the concurrent-service experiment wired into
// `go test -bench` (and the CI one-iteration smoke): every iteration
// re-verifies verdict identity against the serial run, the eviction cap,
// and the zero-leak teardown.
func BenchmarkE13Quick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := E13(Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatal("E13 produced no rows")
		}
	}
}

// BenchmarkE14Quick keeps the persistent-store experiment wired into
// `go test -bench` (and the CI one-iteration smoke): every iteration
// re-verifies verdict identity for demoted and restart-recovered ids, the
// ≥0.85 on-disk dedup floor, and the zero-leak teardown.
func BenchmarkE14Quick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := E14(Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatal("E14 produced no rows")
		}
	}
}

// BenchmarkE15Quick keeps the asynchronous-capture experiment wired into
// `go test -bench` (and the CI one-iteration smoke): every iteration
// re-asserts the O(1) capture-latency flatness, the bounded writer
// degradation under 0/1/4/8 concurrent capturers, and verdict identity
// under a capture storm.
func BenchmarkE15Quick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := E15(Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatal("E15 produced no rows")
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID(4)
	if err != nil || e.ID != 4 {
		t.Fatalf("ByID(4) = %v, %v", e, err)
	}
	if _, err := ByID(99); err == nil {
		t.Error("ByID(99) succeeded")
	}
}

// TestTimeItForkErrorReleasesChild is the regression test for a leak
// releasecheck found in E3's snapshot arm: the forked child was released
// only on the closure's success path, so a WriteU64 error leaked the
// child's CoW frames every remaining iteration. The fix is the
// `defer child.Release()` idiom; this test drives the same
// fork-write-fail shape through timeIt and asserts the allocator's live
// frame count returns to zero after the parent is released.
func TestTimeItForkErrorReleasesChild(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	base := uint64(0x100000)
	as := mem.NewAddressSpace(alloc)
	if err := as.Map(base, 4*mem.PageSize, mem.PermRW, "heap"); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4; i++ {
		as.WriteU64(base+i*mem.PageSize, i)
	}
	_, _, err := timeIt(8, func() error {
		child := as.Fork()
		defer child.Release()
		// Dirty one page so the child owns a private CoW frame, then fail
		// the way E3's arm can: a write outside the mapped range.
		if err := child.WriteU64(base+8, 1); err != nil {
			return err
		}
		return child.WriteU64(base+64*mem.PageSize, 1)
	})
	if err == nil {
		t.Fatal("out-of-range write unexpectedly succeeded")
	}
	as.Release()
	if live := alloc.Live(); live != 0 {
		t.Fatalf("%d frames still live after release: the failing iteration leaked its forked child", live)
	}
}

// TestE1Ordering asserts the paper's §5 ordering at quick scale: the
// hand-coded solver beats the snapshot engine, which beats Prolog.
func TestE1Ordering(t *testing.T) {
	tb, err := E1(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Columns: n, solutions, hand, hosted, native, prolog, ...; compare the
	// last row (largest n) by re-parsing is brittle — rely on the ratio
	// columns being > 1.
	last := tb.Rows[len(tb.Rows)-1]
	snapOverHand := last[6]
	prologOverSnap := last[7]
	if !strings.HasSuffix(snapOverHand, "x") || !strings.HasSuffix(prologOverSnap, "x") {
		t.Fatalf("ratio cells = %q, %q", snapOverHand, prologOverSnap)
	}
	parse := func(s string) float64 {
		var v float64
		if _, err := fmt.Sscanf(s, "%f", &v); err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	if v := parse(snapOverHand); v <= 1 {
		t.Errorf("snapshots faster than hand-coded (%.2fx)? paper expects slower", v)
	}
	if v := parse(prologOverSnap); v <= 1 {
		t.Logf("warning: Prolog beat snapshots at quick scale (%.2fx); full scale expected > 1", v)
	}
}
