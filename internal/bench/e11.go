package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/queens"
	"repro/internal/trace"
)

// E11 measures the software TLB added to the CoW pager: the per-access
// page-table walk is the hot loop of the whole system (capture/restore is
// O(1); the write path pays for sharing lazily), and the TLB collapses the
// common case — repeated access to a page the space already privately owns
// — to one mask+compare. The sweep varies write locality: a working set
// within TLB reach should approach a 100% hit rate and a multiple of the
// walk-per-access baseline's throughput; a set far beyond TLB reach
// degrades toward it.
func E11(o Options) (*trace.Table, error) {
	writes := 1 << 20
	sets := []int{1, 8, 64, 512, 4096}
	queensN := 8
	if o.Quick {
		writes = 1 << 16
		sets = []int{1, 64, 4096}
		queensN = 6
	}
	t := &trace.Table{
		Title:   fmt.Sprintf("E11: software-TLB write locality (%d writes)", writes),
		Columns: []string{"workload", "pages", "tlb ns/op", "walk ns/op", "walk/tlb", "hit rate"},
		Note:    "tlb = software TLB (default); walk = TLB disabled, radix walk per access",
	}

	base := uint64(0x100000)
	build := func(pages int, enabled bool) (*mem.AddressSpace, error) {
		as := mem.NewAddressSpace(mem.NewFrameAllocator(0))
		as.SetTLBEnabled(enabled)
		if err := as.Map(base, uint64(pages)*mem.PageSize, mem.PermRW, "data"); err != nil {
			return nil, err
		}
		// Pre-touch so the sweep measures steady-state stores, not the
		// first-fault zero fills.
		for i := 0; i < pages; i++ {
			if err := as.WriteU64(base+uint64(i)*mem.PageSize, 1); err != nil {
				return nil, err
			}
		}
		as.ResetStats()
		return as, nil
	}
	sweep := func(pages int, enabled bool) (time.Duration, mem.Stats, error) {
		as, err := build(pages, enabled)
		if err != nil {
			return 0, mem.Stats{}, err
		}
		defer as.Release()
		start := time.Now()
		for i := 0; i < writes; i++ {
			// Round-robin over the working set, stores spread within the
			// page — the shape of constraint-propagation updates.
			addr := base + uint64(i%pages)*mem.PageSize + uint64(i%512)*8
			if err := as.WriteU64(addr, uint64(i)); err != nil {
				return 0, mem.Stats{}, err
			}
		}
		return time.Since(start), as.Stats(), nil
	}

	for _, pages := range sets {
		tlbTotal, st, err := sweep(pages, true)
		if err != nil {
			return nil, err
		}
		walkTotal, _, err := sweep(pages, false)
		if err != nil {
			return nil, err
		}
		hitRate := float64(st.TLBHits) / float64(st.TLBHits+st.TLBMisses)
		t.AddRow("write-loop", pages,
			fmt.Sprintf("%.1f", float64(tlbTotal.Nanoseconds())/float64(writes)),
			fmt.Sprintf("%.1f", float64(walkTotal.Nanoseconds())/float64(writes)),
			trace.Ratio(walkTotal, tlbTotal),
			fmt.Sprintf("%.1f%%", 100*hitRate))
	}

	// End-to-end row: a full engine run, its TLB traffic observed through
	// the Observer seam and cross-checked against Result.Stats — the whole
	// mem.Stats → core.Stats → Observer plumbing in one line.
	var obsHits, obsMisses int64
	obs := &core.FuncObserver{StepStats: func(st mem.Stats) {
		obsHits += st.TLBHits
		obsMisses += st.TLBMisses
	}}
	alloc := mem.NewFrameAllocator(0)
	root, err := queens.NewHostedContext(alloc, queensN)
	if err != nil {
		return nil, err
	}
	eng := core.New(core.NewHostedMachine(queens.HostedStep(false)), core.Config{Observer: obs})
	res, err := eng.Run(context.Background(), root)
	if err != nil {
		return nil, err
	}
	if obsHits != res.Stats.TLBHits || obsMisses != res.Stats.TLBMisses {
		return nil, fmt.Errorf("bench: observer TLB counters %d/%d != engine %d/%d",
			obsHits, obsMisses, res.Stats.TLBHits, res.Stats.TLBMisses)
	}
	total := res.Stats.TLBHits + res.Stats.TLBMisses
	t.AddRow(fmt.Sprintf("queens-%d engine", queensN), "-", "-", "-", "-",
		fmt.Sprintf("%.1f%%", 100*float64(res.Stats.TLBHits)/float64(max(total, 1))))
	return t, nil
}
