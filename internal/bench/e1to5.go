package bench

import (
	"context"

	"fmt"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/queens"
	"repro/internal/solver"
	"repro/internal/trace"
)

// E1 reproduces the paper's only quantitative claim (§5): on toy n-queens,
// system-level backtracking is substantially slower than a hand-coded
// solver but faster than a Prolog implementation.
func E1(o Options) (*trace.Table, error) {
	ns := []int{6, 7, 8}
	if o.Quick {
		ns = []int{5, 6}
	}
	t := &trace.Table{
		Title:   "E1: n-queens, all solutions — hand-coded vs snapshots vs Prolog",
		Columns: []string{"n", "solutions", "hand-coded", "snap-hosted", "snap-native", "prolog", "snap/hand", "prolog/snap"},
		Note:    "paper §5 expects hand-coded < snapshots < Prolog",
	}
	for _, n := range ns {
		var count int
		handT := trace.Time(func() { count = queens.HandCoded(n, nil) })

		var hostedT time.Duration
		{
			alloc := mem.NewFrameAllocator(0)
			ctx, err := queens.NewHostedContext(alloc, n)
			if err != nil {
				return nil, err
			}
			eng := core.New(core.NewHostedMachine(queens.HostedStep(false)), core.Config{})
			var res *core.Result
			hostedT = trace.Time(func() { res, err = eng.Run(context.Background(), ctx) })
			if err != nil {
				return nil, err
			}
			if len(res.Solutions) != count {
				return nil, fmt.Errorf("E1: hosted found %d, want %d", len(res.Solutions), count)
			}
		}

		var nativeT time.Duration
		{
			img, err := queens.Asm(n)
			if err != nil {
				return nil, err
			}
			var res *core.Result
			nativeT = trace.Time(func() { res, err = runNativeEngine(img, core.Config{}) })
			if err != nil {
				return nil, err
			}
			if len(res.Solutions) != count {
				return nil, fmt.Errorf("E1: native found %d, want %d", len(res.Solutions), count)
			}
		}

		var prologT time.Duration
		{
			var got int
			var err error
			prologT = trace.Time(func() { got, _, err = queens.PrologCount(n, 0) })
			if err != nil {
				return nil, err
			}
			if got != count {
				return nil, fmt.Errorf("E1: prolog found %d, want %d", got, count)
			}
		}

		t.AddRow(n, count, handT, hostedT, nativeT, prologT,
			trace.Ratio(hostedT, handT), trace.Ratio(prologT, hostedT))
	}
	return t, nil
}

// E2 sweeps work per extension step (§5 "problem granularity"): the
// snapshot machinery's per-step cost is flat, so its relative overhead
// against a hand-coded solver falls as steps do more work.
func E2(o Options) (*trace.Table, error) {
	works := []int{1, 10, 100, 1000}
	depth := 10
	if o.Quick {
		works = []int{1, 100}
		depth = 6
	}
	t := &trace.Table{
		Title:   "E2: per-step work sweep (binary tree, depth " + fmt.Sprint(depth) + ")",
		Columns: []string{"work/step", "steps", "snap/step", "hand/step", "overhead"},
		Note:    "overhead = snapshot time per step / hand-coded time per step",
	}
	const stateWords = 512 // state fits one page: granularity only
	for _, w := range works {
		w := w
		// Snapshot arm: hosted step machine over simulated memory.
		step := func(env *core.Env) error {
			m := env.Mem()
			base := core.HostedHeapBase
			d, _ := m.ReadU64(base)
			started, _ := m.ReadU64(base + 8)
			if started == 0 {
				m.WriteU64(base+8, 1)
				env.Guess(2)
				return nil
			}
			// The work: w read-modify-writes within the state page.
			for i := 0; i < w; i++ {
				off := base + 16 + uint64(i%stateWords)*8
				v, _ := m.ReadU64(off)
				m.WriteU64(off, v*6364136223846793005+env.Choice()+1)
			}
			d++
			m.WriteU64(base, d)
			if d < uint64(depth) {
				env.Guess(2)
			} else {
				env.Fail()
			}
			return nil
		}
		alloc := mem.NewFrameAllocator(0)
		ctx, err := core.NewHostedContext(alloc, 16+stateWords*8)
		if err != nil {
			return nil, err
		}
		eng := core.New(core.NewHostedMachine(step), core.Config{})
		var res *core.Result
		snapT := trace.Time(func() { res, err = eng.Run(context.Background(), ctx) })
		if err != nil {
			return nil, err
		}
		steps := res.Stats.Nodes

		// Hand-coded arm: the same tree walk and work on a Go slice.
		state := make([]uint64, stateWords)
		var rec func(d int, choice uint64)
		rec = func(d int, choice uint64) {
			for i := 0; i < w; i++ {
				state[i%stateWords] = state[i%stateWords]*6364136223846793005 + choice + 1
			}
			if d >= depth {
				return
			}
			rec(d+1, 0)
			rec(d+1, 1)
		}
		handT := trace.Time(func() { rec(1, 0); rec(1, 1) })

		perSnap := snapT / time.Duration(max(steps, 1))
		perHand := handT / time.Duration(max(int64(1), steps))
		t.AddRow(w, steps, perSnap, perHand, trace.Ratio(perSnap, perHand))
	}
	return t, nil
}

// E3 sweeps pages touched per extension step against a fixed state size
// (§5 "page-level memory locality"): lightweight snapshots pay CoW faults
// proportional to touched pages, while a full-copy checkpoint pays for the
// whole state every step.
func E3(o Options) (*trace.Table, error) {
	statePages := 1024 // 4 MiB
	touches := []int{1, 4, 16, 64, 256, 1024}
	steps := 64
	if o.Quick {
		statePages = 128
		touches = []int{1, 16, 128}
		steps = 16
	}
	t := &trace.Table{
		Title:   fmt.Sprintf("E3: pages touched per step (state = %d pages)", statePages),
		Columns: []string{"touched", "cow/step", "snap µs/step", "fullcopy µs/step", "fullcopy/snap"},
		Note:    "snapshot cost tracks touched pages; full copy pays the whole state",
	}
	base := uint64(0x100000)
	build := func() *mem.AddressSpace {
		as := mem.NewAddressSpace(mem.NewFrameAllocator(0))
		if err := as.Map(base, uint64(statePages)*mem.PageSize, mem.PermRW, "heap"); err != nil {
			panic(err)
		}
		as.InitBrk(base)
		for i := 0; i < statePages; i++ {
			as.WriteU64(base+uint64(i)*mem.PageSize, uint64(i))
		}
		return as
	}
	for _, p := range touches {
		if p > statePages {
			continue
		}
		// Snapshot arm: fork, touch p pages, release.
		as := build()
		var cow int64
		snapTotal, snapPer, err := timeIt(steps, func() error {
			child := as.Fork()
			defer child.Release()
			for i := 0; i < p; i++ {
				if err := child.WriteU64(base+uint64(i)*mem.PageSize+8, 1); err != nil {
					return err
				}
			}
			cow += child.Stats().CowCopies
			return nil
		})
		if err != nil {
			return nil, err
		}
		as.Release()

		// Full-copy arm: capture the whole state, touch p pages in the copy.
		as2 := build()
		alloc2 := as2.Alloc()
		_, fullPer, err := timeIt(steps, func() error {
			img := checkpoint.Capture(as2)
			re, err := checkpoint.Restore(img, alloc2)
			if err != nil {
				return err
			}
			for i := 0; i < p; i++ {
				re.WriteU64(base+uint64(i)*mem.PageSize+8, 1)
			}
			re.Release()
			return nil
		})
		if err != nil {
			return nil, err
		}
		as2.Release()
		_ = snapTotal
		t.AddRow(p, cow/int64(steps),
			fmt.Sprintf("%.2f", float64(snapPer.Nanoseconds())/1e3),
			fmt.Sprintf("%.2f", float64(fullPer.Nanoseconds())/1e3),
			trace.Ratio(fullPer, snapPer))
	}
	return t, nil
}

// E4 measures snapshot capture+restore latency against address-space size
// for four designs: path-copying lightweight snapshots (ours), the
// scan-the-page-table ablation (D1), libckpt-style full checkpoints, and
// eager fork (§3's naive baseline).
func E4(o Options) (*trace.Table, error) {
	sizesMiB := []int{1, 4, 16, 64}
	reps := 32
	if o.Quick {
		sizesMiB = []int{1, 4}
		reps = 8
	}
	t := &trace.Table{
		Title:   "E4: snapshot+restore latency vs resident size",
		Columns: []string{"resident", "lightweight", "scan-RO", "full-ckpt", "eager-fork", "ckpt/light"},
		Note:    "lightweight is O(1); the others scale with resident pages",
	}
	base := uint64(0x100000)
	for _, mib := range sizesMiB {
		pages := mib << 20 / mem.PageSize
		alloc := mem.NewFrameAllocator(0)
		as := mem.NewAddressSpace(alloc)
		if err := as.Map(base, uint64(pages)*mem.PageSize, mem.PermRW, "heap"); err != nil {
			return nil, err
		}
		as.InitBrk(base)
		for i := 0; i < pages; i++ {
			as.WriteU64(base+uint64(i)*mem.PageSize, uint64(i))
		}

		_, lightPer, err := timeIt(reps, func() error {
			snap := as.Fork() // capture
			re := snap.Fork() // restore view
			re.Release()
			snap.Release()
			return nil
		})
		if err != nil {
			return nil, err
		}
		_, scanPer, err := timeIt(reps, func() error {
			snap, _ := checkpoint.ScanSnapshot(as)
			snap.Release()
			return nil
		})
		if err != nil {
			return nil, err
		}
		_, ckptPer, err := timeIt(reps, func() error {
			img := checkpoint.Capture(as)
			re, err := checkpoint.Restore(img, alloc)
			if err != nil {
				return err
			}
			re.Release()
			return nil
		})
		if err != nil {
			return nil, err
		}
		_, forkPer, err := timeIt(reps, func() error {
			cp, err := checkpoint.EagerFork(as, alloc)
			if err != nil {
				return err
			}
			cp.Release()
			return nil
		})
		if err != nil {
			return nil, err
		}
		as.Release()
		t.AddRow(trace.FormatBytes(int64(mib)<<20), lightPer, scanPer, ckptPer, forkPer,
			trace.Ratio(ckptPer, lightPer))
	}
	return t, nil
}

// E5 reproduces the incremental-solving argument (§2): solving p and then
// p∧q from p's retained state beats solving p∧q from scratch. Three arms:
// from-scratch, in-process incremental, and the snapshot-service shape
// that serializes solver state into the candidate (what cmd/solversvc does).
func E5(o Options) (*trace.Table, error) {
	nVars, nBase, batch, nBatches := 150, 520, 25, 5
	if o.Quick {
		nVars, nBase, batch, nBatches = 60, 200, 10, 3
	}
	t := &trace.Table{
		Title:   fmt.Sprintf("E5: incremental SAT — base %dv/%dc + %d×%d clauses", nVars, nBase, nBatches, batch),
		Columns: []string{"step", "verdict", "scratch", "incremental", "snapshot-svc", "scratch/incr"},
		Note:    "incremental retains learned clauses and phases across steps",
	}
	baseClauses := solver.Random3SAT(nVars, nBase, 42)
	extra := solver.Random3SAT(nVars, batch*nBatches, 43)

	// Incremental arm state.
	inc := solver.New(nVars)
	for _, cl := range baseClauses {
		inc.AddClause(cl...)
	}
	incBaseT := trace.Time(func() { inc.Solve(0) })

	// Snapshot-service arm: solver state parked as serialized bytes (the
	// candidate's "memory image"), reloaded per request.
	svcState := []byte(nil)
	{
		s := solver.New(nVars)
		for _, cl := range baseClauses {
			s.AddClause(cl...)
		}
		s.Solve(0)
		svcState = s.Marshal()
	}

	// Step 0: the base problem p itself.
	scratchBaseT := trace.Time(func() {
		s := solver.New(nVars)
		for _, cl := range baseClauses {
			s.AddClause(cl...)
		}
		s.Solve(0)
	})
	t.AddRow("p", "sat", scratchBaseT, incBaseT, "-", trace.Ratio(scratchBaseT, incBaseT))

	accum := append([][]int(nil), baseClauses...)
	for b := 0; b < nBatches; b++ {
		chunk := extra[b*batch : (b+1)*batch]
		accum = append(accum, chunk...)

		var verdict solver.Status
		scratchT := trace.Time(func() {
			s := solver.New(nVars)
			for _, cl := range accum {
				s.AddClause(cl...)
			}
			verdict = s.Solve(0)
		})
		incT := trace.Time(func() {
			for _, cl := range chunk {
				inc.AddClause(cl...)
			}
			if got := inc.Solve(0); got != verdict {
				panic(fmt.Sprintf("E5: incremental verdict %v != scratch %v", got, verdict))
			}
		})
		var svcT time.Duration
		{
			svcT = trace.Time(func() {
				s, err := solver.Unmarshal(svcState)
				if err != nil {
					panic(err)
				}
				for _, cl := range chunk {
					s.AddClause(cl...)
				}
				if got := s.Solve(0); got != verdict {
					panic(fmt.Sprintf("E5: service verdict %v != scratch %v", got, verdict))
				}
				svcState = s.Marshal()
			})
		}
		t.AddRow(fmt.Sprintf("p∧q%d", b+1), verdict.String(), scratchT, incT, svcT,
			trace.Ratio(scratchT, incT))
		if verdict == solver.Unsat {
			break
		}
	}
	return t, nil
}
