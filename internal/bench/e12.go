package bench

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/guest"
	"repro/internal/mem"
	"repro/internal/queens"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// symGuessProgram builds the symexec-shaped E12 guest: depth sequential
// sys_guess(2) forks over a dataMiB data segment, every extension step
// CoW-dirtying one page of it, every leaf exiting with its path id — the
// state-forking shape of multi-path symbolic execution (E6) expressed
// through the engine's backtracking calls so worker scaling applies.
func symGuessProgram(depth, dataMiB int) (*guest.Image, error) {
	return guest.AssembleImage(fmt.Sprintf(`
.data
blob: .space %d
.text
_start:
    mov r13, 0          ; acc = path id
    mov r14, 0          ; level
loop:
    mov rax, 500        ; sys_guess(2)
    mov rdi, 2
    syscall
    shl r13, 1
    add r13, rax        ; acc = acc*2 + choice
    mov rbx, r14
    mul rbx, 4096
    mov r15, =blob
    add r15, rbx
    store r13, [r15]    ; dirty one page per level (CoW work per restore)
    add r14, 1
    cmp r14, %d
    jl loop
    mov rdi, r13
    mov rax, 60
    syscall
`, dataMiB<<20, depth))
}

// E12 measures the sharded work-stealing scheduler (per-worker deques,
// steal-half, polling termination) against worker count on two workloads:
// fine-grained hosted n-queens (the Fig. 1/Fig. 2 staple) and the
// coarser symexec-shaped native guest. Every run's solution set is
// checked for identity against the 1-worker baseline — scaling that
// changes the answer set would be a scheduler bug, not a result — and
// the single-queue scheduler (NoSteal) is measured at the highest worker
// count as the contrast row the tentpole replaced.
func E12(o Options) (*trace.Table, error) {
	queensN := 8
	workers := []int{1, 2, 4, 8}
	symDepth := 10
	dataMiB := 2
	if o.Quick {
		queensN = 6
		workers = []int{1, 2, 4}
		symDepth = 6
		dataMiB = 1
	}
	t := &trace.Table{
		Title: fmt.Sprintf("E12: work-stealing worker scaling (queens n=%d; sym depth=%d, %d MiB; GOMAXPROCS=%d)",
			queensN, symDepth, dataMiB, runtime.GOMAXPROCS(0)),
		Columns: []string{"workload", "workers", "sched", "time", "knodes/s", "speedup", "steals"},
		Note:    "identical solution sets verified at every worker count; global = single-queue baseline",
	}

	// runQueens returns duration, result, and the sorted board set.
	runQueens := func(w int, noSteal bool) (time.Duration, *core.Result, []string, error) {
		alloc := mem.NewFrameAllocator(0)
		root, err := queens.NewHostedContext(alloc, queensN)
		if err != nil {
			return 0, nil, nil, err
		}
		eng := core.New(core.NewHostedMachine(queens.HostedStep(false)),
			core.Config{Workers: w, NoSteal: noSteal})
		var res *core.Result
		dur := trace.Time(func() { res, err = eng.Run(context.Background(), root) })
		if err != nil {
			return 0, nil, nil, err
		}
		if eng.Tree().Live() != 0 || alloc.Live() != 0 {
			return 0, nil, nil, fmt.Errorf("E12: leak at %d workers: %d snapshots, %d frames",
				w, eng.Tree().Live(), alloc.Live())
		}
		boards := make([]string, 0, len(res.Solutions))
		for _, s := range res.Solutions {
			boards = append(boards, strings.TrimSpace(string(s.Out)))
		}
		sort.Strings(boards)
		return dur, res, boards, nil
	}

	runSym := func(w int) (time.Duration, *core.Result, []uint64, error) {
		img, err := symGuessProgram(symDepth, dataMiB)
		if err != nil {
			return 0, nil, nil, err
		}
		alloc := mem.NewFrameAllocator(0)
		as, regs, err := guest.Load(img, alloc, guest.LoadOptions{})
		if err != nil {
			return 0, nil, nil, err
		}
		eng := core.New(core.NewVMMachine(0), core.Config{Workers: w})
		var res *core.Result
		dur := trace.Time(func() {
			res, err = eng.Run(context.Background(),
				&snapshot.Context{Mem: as, FS: fs.New(), Regs: regs})
		})
		if err != nil {
			return 0, nil, nil, err
		}
		if res.Stats.Errors != 0 {
			return 0, nil, nil, fmt.Errorf("E12 sym: guest crashed: %v", res.FirstPathError)
		}
		if eng.Tree().Live() != 0 || alloc.Live() != 0 {
			return 0, nil, nil, fmt.Errorf("E12 sym: leak at %d workers: %d snapshots, %d frames",
				w, eng.Tree().Live(), alloc.Live())
		}
		ids := make([]uint64, 0, len(res.Solutions))
		for _, s := range res.Solutions {
			ids = append(ids, s.Status)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return dur, res, ids, nil
	}

	knps := func(res *core.Result, dur time.Duration) string {
		return fmt.Sprintf("%.0f", float64(res.Stats.Nodes)/dur.Seconds()/1e3)
	}

	// Queens sweep.
	var qBase time.Duration
	var qBaseBoards []string
	for _, w := range workers {
		dur, res, boards, err := runQueens(w, false)
		if err != nil {
			return nil, err
		}
		if w == workers[0] {
			qBase, qBaseBoards = dur, boards
			if len(boards) != queens.Counts[queensN] {
				return nil, fmt.Errorf("E12: baseline found %d boards, want %d",
					len(boards), queens.Counts[queensN])
			}
		} else if !slices.Equal(boards, qBaseBoards) {
			return nil, fmt.Errorf("E12: solution set diverged at %d workers", w)
		}
		t.AddRow("queens-dfs", w, "steal", dur, knps(res, dur),
			trace.Ratio(qBase, dur), res.Stats.Steals)
	}
	// Single-queue contrast at the widest worker count.
	wMax := workers[len(workers)-1]
	dur, res, boards, err := runQueens(wMax, true)
	if err != nil {
		return nil, err
	}
	if !slices.Equal(boards, qBaseBoards) {
		return nil, fmt.Errorf("E12: NoSteal solution set diverged")
	}
	t.AddRow("queens-dfs", wMax, "global", dur, knps(res, dur),
		trace.Ratio(qBase, dur), "-")

	// Symexec-shaped sweep.
	var sBase time.Duration
	var sBaseIDs []uint64
	for _, w := range workers {
		dur, res, ids, err := runSym(w)
		if err != nil {
			return nil, err
		}
		if w == workers[0] {
			sBase, sBaseIDs = dur, ids
			if len(ids) != 1<<symDepth {
				return nil, fmt.Errorf("E12 sym: %d paths, want %d", len(ids), 1<<symDepth)
			}
		} else if !slices.Equal(ids, sBaseIDs) {
			return nil, fmt.Errorf("E12 sym: path set diverged at %d workers", w)
		}
		t.AddRow("sym-guess", w, "steal", dur, knps(res, dur),
			trace.Ratio(sBase, dur), res.Stats.Steals)
	}
	return t, nil
}
