package bench

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
	"repro/internal/solver"
	"repro/internal/trace"
)

// E13 measures the concurrent solver service (sharded reference table,
// off-lock solves, LRU capacity eviction) under the workload the paper's
// §3.2 describes: C concurrent clients branching one shared solved base
// problem, every sibling physically sharing the base's unmodified state.
// Each client owns a deterministic chain of extensions, so its verdict
// sequence must be identical to a serial run regardless of interleaving —
// concurrency that changed answers would be a table bug, not a result.
// The table reports throughput against client count, the bytes-shared
// ratio of the parked sibling set, and an eviction row demonstrating the
// capacity bound holding under load with the root and pinned base intact.
func E13(o Options) (*trace.Table, error) {
	clientCounts := []int{1, 2, 4, 8}
	steps := 12
	baseVars, baseClauses := 150, 560
	stepClauses := 6
	if o.Quick {
		clientCounts = []int{1, 2, 4}
		steps = 6
		baseVars, baseClauses = 60, 200
		stepClauses = 4
	}
	maxC := clientCounts[len(clientCounts)-1]

	baseProblem := solver.Random3SAT(baseVars, baseClauses, 7)
	// batch is the deterministic clause load of client c's step k.
	batch := func(c, k int) [][]int {
		return solver.Random3SAT(baseVars, stepClauses, int64(1009+257*c+k))
	}

	t := &trace.Table{
		Title: fmt.Sprintf("E13: concurrent service scaling (base %dv/%dc; %d steps/client; GOMAXPROCS=%d)",
			baseVars, baseClauses, steps, runtime.GOMAXPROCS(0)),
		Columns: []string{"clients", "extends", "time", "ext/s", "speedup", "shared", "evictions"},
		Note:    "per-client verdict chains identical to the serial run; zero live snapshots after every teardown",
	}

	// runClients executes the workload with C client goroutines against a
	// fresh service and returns elapsed time, per-client verdicts, and the
	// parked sharing ratio sampled before teardown.
	runClients := func(C int, cfg service.Config) (time.Duration, [][]solver.Status, service.Stats, error) {
		svc := service.NewWithConfig(cfg)
		defer svc.Close()
		base, err := svc.Extend(context.Background(), 0, baseProblem)
		if err != nil {
			return 0, nil, service.Stats{}, err
		}
		if err := svc.Pin(base.ID); err != nil {
			return 0, nil, service.Stats{}, err
		}
		verdicts := make([][]solver.Status, C)
		errs := make([]error, C)
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < C; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				prev := base.ID
				for k := 0; k < steps; k++ {
					r, err := svc.Extend(context.Background(), prev, batch(c, k))
					if err != nil {
						errs[c] = fmt.Errorf("client %d step %d: %w", c, k, err)
						return
					}
					verdicts[c] = append(verdicts[c], r.Verdict)
					prev = r.ID
				}
			}(c)
		}
		wg.Wait()
		dur := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return 0, nil, service.Stats{}, err
			}
		}
		stats := svc.Stats()
		svc.Close()
		if live := svc.LiveSnapshots(); live != 0 {
			return 0, nil, service.Stats{}, fmt.Errorf("E13: %d snapshots leaked after Close", live)
		}
		return dur, verdicts, stats, nil
	}

	// Serial reference: every client's chain run to completion by one
	// goroutine, one chain after another. Chains are independent (each
	// hangs off the shared base), so this is the ground truth every
	// concurrent interleaving must reproduce exactly.
	serial := make([][]solver.Status, maxC)
	chainDur := make([]time.Duration, maxC)
	{
		svc := service.New()
		base, err := svc.Extend(context.Background(), 0, baseProblem)
		if err != nil {
			return nil, err
		}
		for c := 0; c < maxC; c++ {
			chainStart := time.Now()
			prev := base.ID
			for k := 0; k < steps; k++ {
				r, err := svc.Extend(context.Background(), prev, batch(c, k))
				if err != nil {
					return nil, fmt.Errorf("E13 serial: client %d step %d: %w", c, k, err)
				}
				serial[c] = append(serial[c], r.Verdict)
				prev = r.ID
			}
			chainDur[c] = time.Since(chainStart)
		}
		svc.Close()
		if live := svc.LiveSnapshots(); live != 0 {
			return nil, fmt.Errorf("E13: %d snapshots leaked after serial run", live)
		}
	}

	for _, C := range clientCounts {
		dur, verdicts, stats, err := runClients(C, service.Config{})
		if err != nil {
			return nil, err
		}
		for c := 0; c < C; c++ {
			if len(verdicts[c]) != steps {
				return nil, fmt.Errorf("E13: client %d finished %d/%d steps", c, len(verdicts[c]), steps)
			}
			for k, v := range verdicts[c] {
				if v != serial[c][k] {
					return nil, fmt.Errorf("E13: client %d step %d verdict %v != serial %v (concurrency changed an answer)",
						c, k, v, serial[c][k])
				}
			}
		}
		extends := C * steps // the base extend precedes the timed window
		// Speedup compares against the SAME C chains run serially (chains
		// differ in hardness, so cross-C comparisons would mix workloads).
		var serialC time.Duration
		for _, d := range chainDur[:C] {
			serialC += d
		}
		t.AddRow(C, extends, dur,
			fmt.Sprintf("%.0f", float64(extends)/dur.Seconds()),
			trace.Ratio(serialC, dur),
			fmt.Sprintf("%.2f", stats.SharedRatio()),
			stats.Evictions)
	}

	// Eviction under load: a small cap, all clients hammering the shared
	// pinned base. The bound must hold at every sample, the root and the
	// pinned base must survive, and evicted ids must answer ErrEvicted.
	capRefs := 2 * maxC
	{
		svc := service.NewWithConfig(service.Config{Capacity: capRefs})
		defer svc.Close()
		base, err := svc.Extend(context.Background(), 0, baseProblem)
		if err != nil {
			return nil, err
		}
		if err := svc.Pin(base.ID); err != nil {
			return nil, err
		}
		var firstID atomic.Uint64
		var overCap atomic.Int64
		errs := make([]error, maxC)
		var wg sync.WaitGroup
		// The cap bound is asserted by a dedicated sampler polling the
		// cheap Counts accessor while the clients run — keeping the
		// expensive footprint walk (and its all-shard serialization) out
		// of the timed region whose ext/s lands in the table.
		samplerStop := make(chan struct{})
		samplerDone := make(chan struct{})
		go func() {
			defer close(samplerDone)
			for {
				refs, pinned := svc.Counts()
				if unpinned := refs - pinned; unpinned > capRefs {
					overCap.Store(int64(unpinned))
				}
				select {
				case <-samplerStop:
					return
				case <-time.After(100 * time.Microsecond):
					// Backoff: sampling must not monopolize the shard
					// locks (or the only core) inside the timed region.
				}
			}
		}()
		start := time.Now()
		for c := 0; c < maxC; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for k := 0; k < steps; k++ {
					r, err := svc.Extend(context.Background(), base.ID, batch(c, k))
					if err != nil {
						errs[c] = fmt.Errorf("evict client %d step %d: %w", c, k, err)
						return
					}
					firstID.CompareAndSwap(0, r.ID)
				}
			}(c)
		}
		wg.Wait()
		dur := time.Since(start)
		close(samplerStop)
		<-samplerDone
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		if n := overCap.Load(); n != 0 {
			return nil, fmt.Errorf("E13: %d unpinned refs parked, cap %d", n, capRefs)
		}
		if err := svc.Touch(0); err != nil {
			return nil, fmt.Errorf("E13: root evicted: %v", err)
		}
		if err := svc.Touch(base.ID); err != nil {
			return nil, fmt.Errorf("E13: pinned base evicted: %v", err)
		}
		stats := svc.Stats()
		if stats.Evictions == 0 {
			return nil, fmt.Errorf("E13: no evictions under cap %d with %d parks", capRefs, maxC*steps)
		}
		// The earliest parked sibling has long aged out of a cap this small.
		if err := svc.Touch(firstID.Load()); !errors.Is(err, service.ErrEvicted) {
			return nil, fmt.Errorf("E13: first sibling %d = %v, want ErrEvicted", firstID.Load(), err)
		}
		extends := maxC * steps // the base extend precedes the timed window
		svc.Close()
		if live := svc.LiveSnapshots(); live != 0 {
			return nil, fmt.Errorf("E13: %d snapshots leaked after evicting Close", live)
		}
		t.AddRow(fmt.Sprintf("%d cap=%d", maxC, capRefs), extends, dur,
			fmt.Sprintf("%.0f", float64(extends)/dur.Seconds()),
			"-",
			fmt.Sprintf("%.2f", stats.SharedRatio()),
			stats.Evictions)
	}
	return t, nil
}
