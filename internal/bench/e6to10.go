package bench

import (
	"context"

	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/guest"
	"repro/internal/interpose"
	"repro/internal/mem"
	"repro/internal/queens"
	"repro/internal/search"
	"repro/internal/snapshot"
	"repro/internal/symexec"
	"repro/internal/trace"
)

// symTreeProgram builds an SVX64 program with depth sequential symbolic
// branches over a dataMiB-sized data segment (so eager state copies hurt).
func symTreeProgram(depth, dataMiB int) (*guest.Image, error) {
	var sb strings.Builder
	sb.WriteString(".data\nblob: .space ")
	fmt.Fprintf(&sb, "%d\n", dataMiB<<20)
	sb.WriteString(`.text
_start:
    mov rax, 600
    mov rdi, 0
    syscall
    mov r12, rax
    mov r13, 0
`)
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&sb, `
    mov rbx, r12
    shr rbx, %d
    and rbx, 1
    cmp rbx, 0
    je skip%d
    add r13, %d
skip%d:
`, i, i, 1<<i, i)
	}
	sb.WriteString(`
    mov rdi, r13
    mov rax, 60
    syscall
`)
	return guest.AssembleImage(sb.String())
}

// E6 compares state forking by lightweight snapshot against eager full
// copy in the symbolic executor — the §2 argument that S2E's hand-rolled
// state copying is what system-level snapshots replace.
func E6(o Options) (*trace.Table, error) {
	depths := []int{4, 6, 8}
	dataMiB := 2
	if o.Quick {
		depths = []int{3, 4}
		dataMiB = 1
	}
	t := &trace.Table{
		Title:   fmt.Sprintf("E6: symbolic-execution forking (%d MiB guest data)", dataMiB),
		Columns: []string{"branches", "paths", "snapshot", "eager-copy", "eager/snap"},
		Note:    "same exploration; only the state-fork mechanism differs",
	}
	for _, d := range depths {
		img, err := symTreeProgram(d, dataMiB)
		if err != nil {
			return nil, err
		}
		run := func(eager bool) (time.Duration, int, error) {
			ex, err := symexec.NewExplorer(img, symexec.Options{EagerCopy: eager})
			if err != nil {
				return 0, 0, err
			}
			var rep *symexec.Report
			dur := trace.Time(func() { rep, err = ex.Run() })
			if err != nil {
				return 0, 0, err
			}
			return dur, len(rep.Paths), nil
		}
		snapT, paths, err := run(false)
		if err != nil {
			return nil, err
		}
		eagerT, paths2, err := run(true)
		if err != nil {
			return nil, err
		}
		if paths != paths2 || paths != 1<<d {
			return nil, fmt.Errorf("E6: paths %d vs %d, want %d", paths, paths2, 1<<d)
		}
		t.AddRow(d, paths, snapT, eagerT, trace.Ratio(eagerT, snapT))
	}
	return t, nil
}

// lockStep is the E7 workload: a combination lock of given depth/fanout
// with exactly one opening combination; A* receives a goal-distance hint.
func lockStep(depth int, fanout uint64, goal []uint64) core.StepFunc {
	return func(env *core.Env) error {
		m := env.Mem()
		base := core.HostedHeapBase
		d, _ := m.ReadU64(base)
		okSoFar, _ := m.ReadU64(base + 8)
		started, _ := m.ReadU64(base + 16)
		if started == 0 {
			m.WriteU64(base+16, 1)
			m.WriteU64(base+8, 1)
			env.GuessHint(fanout, int64(depth))
			return nil
		}
		c := env.Choice()
		if okSoFar == 1 && c != goal[d] {
			m.WriteU64(base+8, 0)
			okSoFar = 0
		}
		d++
		m.WriteU64(base, d)
		if d == uint64(depth) {
			if okSoFar == 1 {
				env.Printf("open")
				env.Exit(0)
			} else {
				env.Fail()
			}
			return nil
		}
		hint := int64(depth) - int64(d)
		if okSoFar == 0 {
			hint += 1000 // off the goal prefix: discourage A*
		}
		env.GuessHint(fanout, hint)
		return nil
	}
}

// E7 compares search strategies on the combination lock: nodes expanded to
// the first solution under each §3.1 policy.
func E7(o Options) (*trace.Table, error) {
	depth, fanout := 6, uint64(4)
	if o.Quick {
		depth, fanout = 4, 3
	}
	goal := make([]uint64, depth)
	for i := range goal {
		goal[i] = uint64((i*7 + 3)) % fanout
	}
	t := &trace.Table{
		Title:   fmt.Sprintf("E7: strategies on a %d-digit base-%d lock", depth, fanout),
		Columns: []string{"strategy", "nodes", "snapshots", "time", "found"},
		Note:    "A* follows the goal-distance hints; DFS/BFS/Random are uninformed",
	}
	strategies := []struct {
		name string
		make func() core.Strategy
	}{
		{"dfs", func() core.Strategy { return search.NewDFS[*snapshot.State]() }},
		{"bfs", func() core.Strategy { return search.NewBFS[*snapshot.State]() }},
		{"astar", func() core.Strategy { return search.NewAStar[*snapshot.State]() }},
		{"random", func() core.Strategy { return search.NewRandom[*snapshot.State](12345) }},
	}
	for _, st := range strategies {
		alloc := mem.NewFrameAllocator(0)
		ctx, err := core.NewHostedContext(alloc, 4096)
		if err != nil {
			return nil, err
		}
		eng := core.New(core.NewHostedMachine(lockStep(depth, fanout, goal)),
			core.Config{Strategy: st.make(), MaxSolutions: 1})
		var res *core.Result
		dur := trace.Time(func() { res, err = eng.Run(context.Background(), ctx) })
		if err != nil {
			return nil, err
		}
		found := len(res.Solutions) == 1
		t.AddRow(st.name, res.Stats.Nodes, res.Stats.Snapshots, dur, found)
	}
	return t, nil
}

// E8 measures raw snapshot-tree throughput: deep chains (capture after
// each mutation) and wide fanout (many children of one parent), plus the
// physical sharing the tree achieves.
func E8(o Options) (*trace.Table, error) {
	n := 5000
	statePages := 256
	if o.Quick {
		n = 500
		statePages = 64
	}
	t := &trace.Table{
		Title:   "E8: snapshot tree operations",
		Columns: []string{"shape", "ops", "ops/sec", "private", "shared"},
		Note:    "state = " + trace.FormatBytes(int64(statePages)*mem.PageSize) + " resident",
	}
	base := uint64(0x100000)
	mk := func() (*snapshot.Tree, *snapshot.Context) {
		alloc := mem.NewFrameAllocator(0)
		as := mem.NewAddressSpace(alloc)
		if err := as.Map(base, uint64(statePages)*mem.PageSize, mem.PermRW, "heap"); err != nil {
			panic(err)
		}
		for i := 0; i < statePages; i++ {
			as.WriteU64(base+uint64(i)*mem.PageSize, uint64(i))
		}
		ctx := &snapshot.Context{Mem: as, FS: fs.New()}
		return snapshot.NewTree(), ctx
	}

	// Deep chain: mutate one page, capture, repeat; children keep parents
	// alive, so the chain is n snapshots deep.
	{
		tree, ctx := mk()
		var last *snapshot.State
		dur := trace.Time(func() {
			for i := 0; i < n; i++ {
				ctx.Mem.WriteU64(base+uint64(i%statePages)*mem.PageSize, uint64(i))
				s := tree.Capture(ctx, last)
				if last != nil {
					last.Release()
				}
				last = s
			}
		})
		fp := last.Footprint()
		t.AddRow("deep-chain", n, fmt.Sprintf("%.0f", float64(n)/dur.Seconds()),
			trace.FormatBytes(fp.PrivateBytes()), trace.FormatBytes(fp.SharedBytes()))
		last.Release()
		ctx.Release()
	}

	// Wide fanout: n children captured from one parent state.
	{
		tree, ctx := mk()
		children := make([]*snapshot.State, 0, n)
		dur := trace.Time(func() {
			for i := 0; i < n; i++ {
				children = append(children, tree.Capture(ctx, nil))
			}
		})
		fp := children[0].Footprint()
		t.AddRow("wide-fanout", n, fmt.Sprintf("%.0f", float64(n)/dur.Seconds()),
			trace.FormatBytes(fp.PrivateBytes()), trace.FormatBytes(fp.SharedBytes()))
		relT := trace.Time(func() {
			for _, c := range children {
				c.Release()
			}
		})
		t.AddRow("release-wide", n, fmt.Sprintf("%.0f", float64(n)/relT.Seconds()), "-", "-")
		ctx.Release()
	}
	return t, nil
}

// E9 scales worker count on the Fig. 2 architecture, on two workloads:
// fine-grained extensions (n-queens checks, microseconds per step) and
// coarse-grained ones (heavy per-step computation). The contrast is the
// paper's granularity argument applied to parallelism: scheduling and
// restore costs swamp tiny steps, while coarse steps scale with cores.
func E9(o Options) (*trace.Table, error) {
	n := 8
	workers := []int{1, 2, 4}
	coarseWork := 4000
	treeDepth := 9
	if o.Quick {
		n = 6
		workers = []int{1, 2}
		coarseWork = 500
		treeDepth = 6
	}
	t := &trace.Table{
		Title:   fmt.Sprintf("E9: parallel extension evaluation (fine: queens n=%d; coarse: %d work units/step)", n, coarseWork),
		Columns: []string{"workers", "fine time", "fine speedup", "coarse time", "coarse speedup"},
		Note:    "immutable snapshots need no locks; only coarse steps amortize scheduling",
	}

	runFine := func(w int) (time.Duration, error) {
		alloc := mem.NewFrameAllocator(0)
		ctx, err := queens.NewHostedContext(alloc, n)
		if err != nil {
			return 0, err
		}
		eng := core.New(core.NewHostedMachine(queens.HostedStep(false)), core.Config{Workers: w})
		var res *core.Result
		dur := trace.Time(func() { res, err = eng.Run(context.Background(), ctx) })
		if err != nil {
			return 0, err
		}
		if len(res.Solutions) != queens.Counts[n] {
			return 0, fmt.Errorf("E9: %d workers found %d solutions", w, len(res.Solutions))
		}
		return dur, nil
	}

	// Coarse workload: full binary tree; each step burns coarseWork
	// read-modify-writes in simulated memory before guessing again.
	coarseStep := func(env *core.Env) error {
		m := env.Mem()
		base := core.HostedHeapBase
		d, _ := m.ReadU64(base)
		started, _ := m.ReadU64(base + 8)
		if started == 0 {
			m.WriteU64(base+8, 1)
			env.Guess(2)
			return nil
		}
		for i := 0; i < coarseWork; i++ {
			off := base + 16 + uint64(i%256)*8
			v, _ := m.ReadU64(off)
			m.WriteU64(off, v*6364136223846793005+env.Choice()+1)
		}
		d++
		m.WriteU64(base, d)
		if d < uint64(treeDepth) {
			env.Guess(2)
		} else {
			env.Fail()
		}
		return nil
	}
	runCoarse := func(w int) (time.Duration, error) {
		alloc := mem.NewFrameAllocator(0)
		ctx, err := core.NewHostedContext(alloc, 16+256*8)
		if err != nil {
			return 0, err
		}
		eng := core.New(core.NewHostedMachine(coarseStep), core.Config{Workers: w})
		var res *core.Result
		dur := trace.Time(func() { res, err = eng.Run(context.Background(), ctx) })
		if err != nil {
			return 0, err
		}
		if res.Stats.Errors != 0 {
			return 0, fmt.Errorf("E9 coarse: %v", res.FirstPathError)
		}
		return dur, nil
	}

	var fineBase, coarseBase time.Duration
	for _, w := range workers {
		fine, err := runFine(w)
		if err != nil {
			return nil, err
		}
		coarse, err := runCoarse(w)
		if err != nil {
			return nil, err
		}
		if w == workers[0] {
			fineBase, coarseBase = fine, coarse
		}
		t.AddRow(w, fine, trace.Ratio(fineBase, fine), coarse, trace.Ratio(coarseBase, coarse))
	}
	return t, nil
}

// E10 measures interposed system-call cost (§5): the null syscall
// (gettick), contained stdout writes, brk (structurally reverted — no undo
// log needed), and the classic log-and-undo alternative for comparison.
func E10(o Options) (*trace.Table, error) {
	iters := 200_000
	if o.Quick {
		iters = 20_000
	}
	t := &trace.Table{
		Title:   "E10: system-call interposition cost",
		Columns: []string{"call", "iters", "ns/call"},
		Note:    "brk containment is structural (snapshotted VMAs); undo-log shown for contrast",
	}
	run := func(src string) (time.Duration, error) {
		img, err := guest.AssembleImage(src)
		if err != nil {
			return 0, err
		}
		var res *core.Result
		dur := trace.Time(func() { res, err = runNativeEngine(img, core.Config{}) })
		if err != nil {
			return 0, err
		}
		if res.Stats.Errors != 0 {
			return 0, fmt.Errorf("E10: guest crashed: %v", res.FirstPathError)
		}
		return dur, nil
	}
	loop := func(body string) string {
		return fmt.Sprintf(`
_start:
    mov r12, %d
loop:
%s
    dec r12
    cmp r12, 0
    jne loop
    mov rax, 60
    mov rdi, 0
    syscall
`, iters, body)
	}

	// Baseline: the same loop with a nop instead of a syscall.
	nopT, err := run(loop("    nop"))
	if err != nil {
		return nil, err
	}
	t.AddRow("loop-nop (baseline)", iters, fmt.Sprintf("%.0f", float64(nopT.Nanoseconds())/float64(iters)))

	tickT, err := run(loop("    mov rax, 96\n    syscall"))
	if err != nil {
		return nil, err
	}
	t.AddRow("gettick (null syscall)", iters, fmt.Sprintf("%.0f", float64((tickT).Nanoseconds())/float64(iters)))

	writeT, err := run(loop(`    mov rax, 1
    mov rdi, 2
    mov rsi, 4096
    mov rdx, 0
    syscall`)) // write(2, ptr, 0): zero-length contained write
	if err != nil {
		return nil, err
	}
	t.AddRow("write(2, …, 0)", iters, fmt.Sprintf("%.0f", float64(writeT.Nanoseconds())/float64(iters)))

	brkT, err := run(loop(`    mov rax, 12
    mov rdi, 0
    syscall`))
	if err != nil {
		return nil, err
	}
	t.AddRow("brk(0) query", iters, fmt.Sprintf("%.0f", float64(brkT.Nanoseconds())/float64(iters)))

	// The classic alternative: log an undo record per state-changing call.
	var log interpose.UndoLog
	val := 0
	undoT := trace.Time(func() {
		for i := 0; i < iters; i++ {
			prev := val
			val = i
			log.Log("brk", func() error { val = prev; return nil })
		}
		log.Rollback()
	})
	t.AddRow("undo-log append+rollback", iters, fmt.Sprintf("%.0f", float64(undoT.Nanoseconds())/float64(iters)))
	return t, nil
}
