// Package bench implements the reproduction's experiment harness: one
// function per experiment in DESIGN.md's index (E1–E16), each returning a
// rendered table with the same rows the paper's claims are judged against.
// cmd/snapbench and the root benchmark suite both drive these.
package bench

import (
	"context"

	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/guest"
	"repro/internal/mem"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// Options tunes experiment scale. Quick shrinks problem sizes so the whole
// suite runs in seconds (used by tests); the full sizes match EXPERIMENTS.md.
type Options struct {
	Quick bool
}

// Experiment is one reproducible table.
type Experiment struct {
	ID    int
	Name  string
	Claim string // the paper anchor being tested
	Run   func(Options) (*trace.Table, error)
}

// All returns the experiments in index order.
func All() []Experiment {
	return []Experiment{
		{1, "nqueens-three-ways", "§5: worse than hand-coded, better than Prolog", E1},
		{2, "granularity", "§5: overhead amortizes with work per extension", E2},
		{3, "locality", "§5: CoW cost tracks pages touched, not state size", E3},
		{4, "snapshot-latency", "§1/§4: O(1) snapshots vs O(n) checkpoints/forks", E4},
		{5, "incremental-solving", "§2: p then p∧q beats solving p∧q from scratch", E5},
		{6, "symexec-forking", "§2: snapshot state forking vs eager state copy", E6},
		{7, "strategies", "§3.1: pluggable DFS/BFS/A*/Random policies", E7},
		{8, "snapshot-trees", "§1: rapid creation/destruction of snapshot trees", E8},
		{9, "parallel-cores", "Fig.2: extension evaluation across CPU cores", E9},
		{10, "interposition", "§5: system-call interposition cost", E10},
		{11, "tlb-write-locality", "§4: software TLB makes the hot write path O(1), not O(radix)", E11},
		{12, "work-stealing", "Fig.2: sharded scheduler scales extension evaluation across cores", E12},
		{13, "concurrent-service", "§3.2: concurrent clients branch one shared base; the sharded table keeps solves off-lock and the cap bounds parked state", E13},
		{14, "persistent-store", "§3.2 scaled out: eviction becomes demotion to a content-addressed disk tier; spilled ids reload transparently, siblings dedup on disk, and a restarted server answers old ids", E14},
		{15, "async-capture", "§1/§4: capture is an O(1) epoch bump — cost independent of resident set, mutators never stall, verdicts identical to the synchronous path", E15},
		{16, "wire-pipelining", "§3.2 as a network service: pipelined framed requests with out-of-order completion beat request/reply throughput, with verdict streams identical to the serial ground truth", E16},
	}
}

// ByID returns the experiment with the given id.
func ByID(id int) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: no experiment %d", id)
}

// runNativeEngine loads img and runs it to exhaustion under the engine.
func runNativeEngine(img *guest.Image, cfg core.Config) (*core.Result, error) {
	as, regs, err := guest.Load(img, mem.NewFrameAllocator(0), guest.LoadOptions{})
	if err != nil {
		return nil, err
	}
	eng := core.New(core.NewVMMachine(0), cfg)
	return eng.Run(context.Background(), &snapshot.Context{Mem: as, FS: fs.New(), Regs: regs})
}

// timeIt runs fn n times and returns total duration and per-op time.
func timeIt(n int, fn func() error) (time.Duration, time.Duration, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(); err != nil {
			return 0, 0, err
		}
	}
	total := time.Since(start)
	return total, total / time.Duration(n), nil
}
