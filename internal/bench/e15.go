package bench

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/mem"
	"repro/internal/queens"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// E15 measures the asynchronous capture protocol: Capture is an O(1)
// epoch bump (fork + seal), never a stop-the-mutator freeze, so its cost
// must be independent of the resident-set size, a writer's throughput
// under a storm of concurrent capturers on the same lineage must degrade
// by at most a bounded constant, and the verdicts of a search running
// under a capture storm must be identical to an undisturbed run.
//
// The assertions are deliberately generous (large ratios plus absolute
// slack): they exist to catch an O(resident) regression in the capture
// path or a capture/extend serialization, not to benchmark the host.
func E15(o Options) (*trace.Table, error) {
	sizes := []int{256, 1024, 8192}
	captures := 256
	writerWindow := 200 * time.Millisecond
	stormPages := 1024
	queensN := 8
	wantSolutions := 92
	if o.Quick {
		sizes = []int{64, 512}
		captures = 96
		writerWindow = 40 * time.Millisecond
		stormPages = 256
		queensN = 6
		wantSolutions = 4
	}
	t := &trace.Table{
		Title:   "E15: asynchronous non-freezing capture (epoch protocol)",
		Columns: []string{"phase", "config", "metric", "value", "note"},
		Note:    "capture = Tree.Capture (fork + epoch bump + seal); storm = concurrent Restore+Capture of the same lineage",
	}

	// Phase 1: capture latency vs resident-set size. The mutator keeps
	// writing between captures so every capture starts a fresh epoch with
	// real dirty state behind it.
	p50s := make([]time.Duration, 0, len(sizes))
	p99s := make([]time.Duration, 0, len(sizes))
	for _, pages := range sizes {
		alloc := mem.NewFrameAllocator(0)
		ctx, err := e15Context(alloc, pages)
		if err != nil {
			return nil, err
		}
		tree := snapshot.NewTree()
		lat := make([]time.Duration, 0, captures)
		for i := 0; i < captures; i++ {
			// Dirty a handful of pages so the capture is not a no-op.
			for j := 0; j < 16; j++ {
				addr := e15Base + uint64((i*16+j)%pages)*mem.PageSize
				if err := ctx.Mem.WriteU64(addr, uint64(i)); err != nil {
					return nil, err
				}
			}
			start := time.Now()
			s := tree.Capture(ctx, nil)
			lat = append(lat, time.Since(start))
			s.Release()
		}
		ctx.Release()
		if live := alloc.Live(); live != 0 {
			return nil, fmt.Errorf("bench: E15 latency sweep leaked %d frames (pages=%d)", live, pages)
		}
		p50, p99 := percentile(lat, 50), percentile(lat, 99)
		p50s = append(p50s, p50)
		p99s = append(p99s, p99)
		t.AddRow("capture-latency", fmt.Sprintf("%d pages", pages), "p50 / p99",
			fmt.Sprintf("%v / %v", p50, p99), "flat across resident sizes")
	}
	// O(1) assertion: the largest resident set must not cost a
	// resident-proportional multiple of the smallest. The 8x/10x ratios
	// plus absolute slack absorb timer and GC noise; a capture that walks
	// the resident set would blow through them at the top size.
	small, large := 0, len(sizes)-1
	if p50s[large] > 8*p50s[small]+20*time.Microsecond {
		return nil, fmt.Errorf("bench: E15 capture p50 grows with resident set: %v @%dpg vs %v @%dpg",
			p50s[small], sizes[small], p50s[large], sizes[large])
	}
	if p99s[large] > 10*p99s[small]+500*time.Microsecond {
		return nil, fmt.Errorf("bench: E15 capture p99 grows with resident set: %v @%dpg vs %v @%dpg",
			p99s[small], sizes[small], p99s[large], sizes[large])
	}

	// Phase 2: mutator write throughput with 0/1/4/8 concurrent capturers
	// branching the same lineage. The writer also captures its own context
	// periodically — the hot-state-being-branched shape from the service.
	var solo float64
	for _, nCap := range []int{0, 1, 4, 8} {
		rate, err := e15WriterStorm(stormPages, nCap, writerWindow)
		if err != nil {
			return nil, err
		}
		if nCap == 0 {
			solo = rate
		}
		factor := solo / rate
		t.AddRow("writer-throughput", fmt.Sprintf("%d capturers", nCap), "writes/s",
			fmt.Sprintf("%.2fM", rate/1e6), fmt.Sprintf("%.2fx vs solo", factor))
		// Bounded-degradation assertion: a capture/extend serialization
		// (or captures re-freezing the writer's TLB wholesale) would slow
		// the writer proportionally to capture rate; a bounded constant
		// (CoW refaults per epoch + CPU sharing) stays within 6x even on
		// single-core CI machines, since the capturers are throttled.
		if rate < solo/6 {
			return nil, fmt.Errorf("bench: E15 writer throughput under %d capturers degraded %.1fx (%.0f vs %.0f writes/s)",
				nCap, factor, rate, solo)
		}
	}

	// Phase 3: verdict identity. A full queens search run twice — once
	// undisturbed, once with a storm goroutine restoring and re-capturing
	// every surfaced final state mid-search — must produce the identical
	// solution multiset. The undisturbed run doubles as the pinned
	// synchronous-path baseline: its verdict set is exactly what the old
	// freeze-based capture produced (and the expected count pins both).
	baseline, err := e15Verdicts(queensN, false)
	if err != nil {
		return nil, err
	}
	stormed, err := e15Verdicts(queensN, true)
	if err != nil {
		return nil, err
	}
	if len(baseline) != wantSolutions || len(stormed) != wantSolutions {
		return nil, fmt.Errorf("bench: E15 queens-%d solutions: baseline %d, storm %d, want %d",
			queensN, len(baseline), len(stormed), wantSolutions)
	}
	for out, n := range baseline {
		if stormed[out] != n {
			return nil, fmt.Errorf("bench: E15 verdict mismatch under capture storm: %q seen %d vs %d", out, stormed[out], n)
		}
	}
	t.AddRow("verdict-identity", fmt.Sprintf("queens-%d", queensN), "solutions",
		fmt.Sprintf("%d == %d", len(stormed), len(baseline)), "storm run identical to synchronous baseline")
	return t, nil
}

const e15Base = uint64(0x100000)

// e15Context builds a context with pages resident pages of data.
func e15Context(alloc *mem.FrameAllocator, pages int) (*snapshot.Context, error) {
	as := mem.NewAddressSpace(alloc)
	if err := as.Map(e15Base, uint64(pages)*mem.PageSize, mem.PermRW, "data"); err != nil {
		as.Release()
		return nil, err
	}
	for i := 0; i < pages; i++ {
		if err := as.WriteU64(e15Base+uint64(i)*mem.PageSize, uint64(i)); err != nil {
			as.Release()
			return nil, err
		}
	}
	return &snapshot.Context{Mem: as, FS: fs.New()}, nil
}

// e15WriterStorm runs one writer hammering a working set (and branching
// its own lineage every few hundred writes) for the given window, while
// nCap throttled capturers concurrently restore the shared base state,
// write a little, and capture their own forks — the "siblings branch a
// hot state" pattern. Returns the writer's achieved writes/second.
func e15WriterStorm(pages, nCap int, window time.Duration) (float64, error) {
	alloc := mem.NewFrameAllocator(0)
	root, err := e15Context(alloc, pages)
	if err != nil {
		return 0, err
	}
	tree := snapshot.NewTree()
	base := tree.Capture(root, nil)
	root.Release()

	done := make(chan struct{})
	var wg sync.WaitGroup
	var stormErr atomic.Value
	for c := 0; c < nCap; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				ctx := base.Restore()
				if err := ctx.Mem.WriteU64(e15Base, 1); err != nil {
					stormErr.Store(err)
					ctx.Release()
					return
				}
				s := tree.Capture(ctx, base)
				// Read through the sealed view, like an inspector.
				if _, err := s.Mem().ReadU64(e15Base); err != nil {
					stormErr.Store(err)
					s.Release()
					ctx.Release()
					return
				}
				s.Release()
				ctx.Release()
				// Throttle: the experiment measures serialization, not CPU
				// contention — a capturer is a client branching a state,
				// not a busy loop.
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}

	wctx := base.Restore()
	var writes int64
	start := time.Now()
	for time.Since(start) < window {
		for i := 0; i < 256; i++ {
			addr := e15Base + uint64(int(writes)%64)*mem.PageSize + uint64(writes%512)*8
			if err := wctx.Mem.WriteU64(addr, uint64(writes)); err != nil {
				close(done)
				wg.Wait()
				wctx.Release()
				base.Release()
				return 0, err
			}
			writes++
		}
		// Branch the writer's own lineage: the capture the old protocol
		// stalled on.
		s := tree.Capture(wctx, base)
		s.Release()
	}
	elapsed := time.Since(start)
	close(done)
	wg.Wait()
	wctx.Release()
	base.Release()
	if err, ok := stormErr.Load().(error); ok && err != nil {
		return 0, err
	}
	if live := alloc.Live(); live != 0 {
		return 0, fmt.Errorf("bench: E15 storm (%d capturers) leaked %d frames", nCap, live)
	}
	if tree.Live() != 0 {
		return 0, fmt.Errorf("bench: E15 storm (%d capturers) leaked %d snapshots", nCap, tree.Live())
	}
	return float64(writes) / elapsed.Seconds(), nil
}

// e15Verdicts runs hosted queens-n and returns its solution multiset.
// With storm set, a background goroutine restores and re-captures every
// surfaced final state while the search is still running.
func e15Verdicts(n int, storm bool) (map[string]int, error) {
	alloc := mem.NewFrameAllocator(0)
	root, err := queens.NewHostedContext(alloc, n)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{Workers: 4}
	var wg sync.WaitGroup
	var stormErr atomic.Value
	states := make(chan *snapshot.State, 64)
	if storm {
		cfg.KeepExitSnapshots = true
		cfg.OnSolution = func(sol core.Solution) core.Decision {
			if sol.Final != nil {
				// Retain before the select: the send value is evaluated
				// even when default fires, so retaining inline would leak
				// every skipped state.
				s := sol.Final.Retain()
				select {
				case states <- s:
				default: // storm saturated; skip this one
					s.Release()
				}
			}
			return core.Continue
		}
	}
	eng := core.New(core.NewHostedMachine(queens.HostedStep(false)), cfg)
	if storm {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range states {
				ctx := s.Restore()
				if err := ctx.Mem.WriteU64(core.HostedHeapBase, 1); err != nil {
					stormErr.Store(err)
				} else {
					// Re-capture onto the live search's own tree, so the
					// storm's states share its lineage accounting.
					snap := eng.Tree().Capture(ctx, s)
					snap.Release()
				}
				ctx.Release()
				s.Release()
			}
		}()
	}
	res, err := eng.Run(context.Background(), root)
	if storm {
		close(states)
		wg.Wait()
	}
	if err != nil {
		return nil, err
	}
	if serr, ok := stormErr.Load().(error); ok && serr != nil {
		return nil, serr
	}
	out := make(map[string]int, len(res.Solutions))
	for _, sol := range res.Solutions {
		out[string(sol.Out)]++
	}
	res.Release()
	if live := alloc.Live(); live != 0 {
		return nil, fmt.Errorf("bench: E15 verdict run (storm=%v) leaked %d frames", storm, live)
	}
	return out, nil
}

// percentile returns the p-th percentile (nearest-rank) of lat.
func percentile(lat []time.Duration, p int) time.Duration {
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (len(s)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return s[idx]
}
