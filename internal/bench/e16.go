package bench

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"time"

	"repro/internal/loadgen"
	"repro/internal/service"
	"repro/internal/service/wire"
	"repro/internal/solver"
	"repro/internal/trace"
)

// E16 measures the binary wire protocol's pipelining (§3.2's service as
// a network server): a loadgen matrix over connections × pipeline depth
// against an in-process loopback server, where depth 1 is strict
// request/reply and depth 8 keeps the connection's window full. The
// experiment hard-fails unless depth 8 beats depth 1 throughput on a
// single connection — the protocol's reason to exist — and unless a
// pipelined, out-of-order verdict stream is elementwise identical to
// the serial ground truth (both request-at-a-time and as one batched
// extend). Tail latencies land in the table for the benchdiff gate.
func E16(o Options) (*trace.Table, error) {
	connCounts := []int{1, 2}
	depths := []int{1, 8}
	requests := 4000
	idVars, idClauses, idGroups := 40, 168, 40
	if o.Quick {
		requests = 800
		idVars, idClauses, idGroups = 25, 105, 20
	}
	// The single-connection pipelining win that must survive on any
	// hardware: depth 8 amortizes round-trip and scheduling gaps that
	// depth 1 pays per request, so even one core clears this bar. The
	// observed win is 1.2–1.5x on a single core and grows with cores;
	// the bar sits below the worst observed run, not at the mean.
	const minSpeedup = 1.10

	t := &trace.Table{
		Title: fmt.Sprintf("E16: wire pipelining (loopback TCP; %d requests/point; GOMAXPROCS=%d)",
			requests, runtime.GOMAXPROCS(0)),
		Columns: []string{"phase", "conns", "depth", "requests", "errors", "req/s", "p50", "p99", "p999", "check"},
		Note:    "depth 1 = strict request/reply; verdict streams identical to the serial ground truth",
	}
	ctx := context.Background()

	// Phase 1: throughput/latency matrix against one shared server —
	// connections share the snapshot tree exactly as solversvc sessions do.
	svc := service.New()
	defer svc.Close()
	addr, shutdown, err := loadgen.ServeInProc(ctx, svc, wire.ServeOptions{WriteTimeout: 10 * time.Second})
	if err != nil {
		return nil, err
	}
	defer shutdown()
	rps := map[[2]int]float64{}
	for _, c := range connCounts {
		for _, d := range depths {
			res, err := loadgen.Run(ctx, loadgen.Config{
				Addr: addr, Conns: c, Depth: d, Requests: requests,
				Seed: 1, KnownCap: 32,
			})
			if err != nil {
				return nil, fmt.Errorf("E16: conns=%d depth=%d: %w", c, d, err)
			}
			if res.Errors != 0 {
				return nil, fmt.Errorf("E16: conns=%d depth=%d: %d refused requests (generator raced a release?)", c, d, res.Errors)
			}
			if res.Requests != requests {
				return nil, fmt.Errorf("E16: conns=%d depth=%d: %d/%d requests completed", c, d, res.Requests, requests)
			}
			rps[[2]int{c, d}] = res.RPS
			t.AddRow("pipeline", c, d, res.Requests, res.Errors,
				fmt.Sprintf("%.0f", res.RPS),
				trace.FormatDuration(res.P50),
				trace.FormatDuration(res.P99),
				trace.FormatDuration(res.P999),
				"-")
		}
	}
	if live := svc.LiveSnapshots(); live != 1 {
		return nil, fmt.Errorf("E16: %d live snapshots after the matrix, want 1 (root)", live)
	}
	d1, d8 := rps[[2]int{1, 1}], rps[[2]int{1, 8}]
	if d8 < d1*minSpeedup {
		return nil, fmt.Errorf("E16: pipelining win lost: depth 8 %.0f req/s vs depth 1 %.0f req/s (< %.2fx) on one connection",
			d8, d1, minSpeedup)
	}

	// Phase 2: verdict identity. Serial ground truth first.
	groups := make([][][]int, idGroups)
	for i := range groups {
		groups[i] = solver.Random3SAT(idVars, idClauses, int64(4001+i))
	}
	serial := make([]solver.Status, idGroups)
	{
		ssvc := service.New()
		for i, g := range groups {
			res, err := ssvc.Extend(ctx, 0, g)
			if err != nil {
				ssvc.Close()
				return nil, fmt.Errorf("E16 serial group %d: %w", i, err)
			}
			serial[i] = res.Verdict
			if err := ssvc.Release(res.ID); err != nil {
				ssvc.Close()
				return nil, err
			}
		}
		ssvc.Close()
		if live := ssvc.LiveSnapshots(); live != 0 {
			return nil, fmt.Errorf("E16: %d snapshots leaked after serial run", live)
		}
	}

	// Pipelined: every group in flight at once through one connection
	// against a window-8 server, so completion order is whatever the
	// scheduler makes of it — replies must still land on the right
	// request ids and carry the serial verdicts.
	psvc := service.New()
	defer psvc.Close()
	paddr, pshutdown, err := loadgen.ServeInProc(ctx, psvc, wire.ServeOptions{MaxInflight: 8})
	if err != nil {
		return nil, err
	}
	defer pshutdown()
	conn, err := net.Dial("tcp", paddr)
	if err != nil {
		return nil, err
	}
	cli, err := wire.Handshake(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	defer cli.Close()

	calls := make([]*wire.Call, idGroups)
	for i, g := range groups {
		calls[i] = cli.Go(wire.Request{Op: wire.OpExtend, ID: 0, Groups: [][][]int{g}}, nil)
	}
	matches := 0
	for i, call := range calls {
		<-call.Done
		if call.Err != nil {
			return nil, fmt.Errorf("E16 pipelined group %d: %w", i, call.Err)
		}
		if call.Resp.Err != "" || len(call.Resp.Results) != 1 {
			return nil, fmt.Errorf("E16 pipelined group %d: %+v", i, call.Resp)
		}
		r := call.Resp.Results[0]
		if r.Verdict != serial[i] {
			return nil, fmt.Errorf("E16: pipelined group %d verdict %v != serial %v (pipelining changed an answer)",
				i, r.Verdict, serial[i])
		}
		matches++
		if err := cli.Release(ctx, r.ID); err != nil {
			return nil, err
		}
	}

	// Batched: the same groups as ONE request — N siblings in a single
	// round trip — must reproduce the stream again.
	batched, err := cli.Extend(ctx, 0, groups)
	if err != nil {
		return nil, fmt.Errorf("E16 batched extend: %w", err)
	}
	for i, r := range batched {
		if r.Verdict != serial[i] {
			return nil, fmt.Errorf("E16: batched group %d verdict %v != serial %v", i, r.Verdict, serial[i])
		}
		if err := cli.Release(ctx, r.ID); err != nil {
			return nil, err
		}
	}
	if live := psvc.LiveSnapshots(); live != 1 {
		return nil, fmt.Errorf("E16: %d live snapshots after verdict phase, want 1 (root)", live)
	}

	t.AddRow("verdict-identity", 1, 8, idGroups, 0, "-", "-", "-", "-",
		fmt.Sprintf("%d == %d", matches, idGroups))
	t.AddRow("verdict-identity-batched", 1, 1, idGroups, 0, "-", "-", "-", "-",
		fmt.Sprintf("%d == %d", len(batched), idGroups))
	return t, nil
}
