package bench

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/service"
	"repro/internal/solver"
	"repro/internal/store"
	"repro/internal/trace"
)

// scratchDir allocates a throwaway store directory for one E14 phase.
func scratchDir(name string) (string, error) {
	return os.MkdirTemp("", "snapbench-"+name+"-")
}

// E14 measures the persistent snapshot store as the service's demotion
// tier, at a deliberately tiny hot capacity (16 parked references) so the
// cold tier carries the working set:
//
//   - chains: the E13 chain workload, plus a revisit pass over long-cold
//     mid-chain ids. Every verdict must match a serial unbounded run, and
//     no id may answer ErrEvicted — eviction is demotion, not loss.
//   - siblings: a wide sibling set off one pinned base, then a full
//     demote (Close). Content-addressed chunking must dedup ≥ 0.85 of the
//     on-disk references — the cold twin of E13's in-memory SharedRatio.
//   - restart: the chain store is closed and reopened from disk (manifest
//     log replay); a fresh service must answer the old leaf ids with
//     verdicts identical to the pre-restart ground truth.
//
// Every phase also asserts the zero-leak teardown (LiveSnapshots == 0).
func E14(o Options) (*trace.Table, error) {
	clients, steps := 8, 12
	chainVars, chainClauses := 150, 560
	// The sibling base is deliberately large and under-constrained
	// (ratio 3.0): production-shaped parked state is tens of KiB, and an
	// easy base keeps per-sibling learned clauses — private bytes by
	// construction — from eroding the shared prefix.
	sibVars, sibClauses, sibs := 900, 2700, 96
	if o.Quick {
		clients, steps = 4, 6
		chainVars, chainClauses = 60, 200
		sibVars, sibClauses, sibs = 600, 1800, 24
	}
	const hotCap = 16
	stepClauses := 4

	chainBase := solver.Random3SAT(chainVars, chainClauses, 7)
	chainBatch := func(c, k int) [][]int {
		return solver.Random3SAT(chainVars, stepClauses, int64(1009+257*c+k))
	}
	revisitBatch := func(c int) [][]int {
		return solver.Random3SAT(chainVars, stepClauses, int64(5003+31*c))
	}
	restartBatch := func(c int) [][]int {
		return solver.Random3SAT(chainVars, stepClauses, int64(9001+17*c))
	}

	t := &trace.Table{
		Title: fmt.Sprintf("E14: persistent spill tier (cap=%d; %d clients × %d steps; %d siblings of %dv/%dc base; GOMAXPROCS=%d)",
			hotCap, clients, steps, sibs, sibVars, sibClauses, runtime.GOMAXPROCS(0)),
		Columns: []string{"phase", "extends", "time", "ext/s", "spills", "reloads", "dedup", "cold-KiB"},
		Note:    "all verdicts identical to serial ground truth; zero ErrEvicted; zero live snapshots after every teardown",
	}

	// ---- Serial ground truth (unbounded, storeless). -------------------
	type chainRef struct {
		verdicts []solver.Status
		revisit  solver.Status
		restart  solver.Status
	}
	serial := make([]chainRef, clients)
	{
		svc := service.New()
		base, err := svc.Extend(context.Background(), 0, chainBase)
		if err != nil {
			return nil, err
		}
		for c := 0; c < clients; c++ {
			prev, mid := base.ID, base.ID
			for k := 0; k < steps; k++ {
				r, err := svc.Extend(context.Background(), prev, chainBatch(c, k))
				if err != nil {
					return nil, fmt.Errorf("E14 serial: client %d step %d: %w", c, k, err)
				}
				serial[c].verdicts = append(serial[c].verdicts, r.Verdict)
				prev = r.ID
				if k == steps/2 {
					mid = r.ID
				}
			}
			rv, err := svc.Extend(context.Background(), mid, revisitBatch(c))
			if err != nil {
				return nil, fmt.Errorf("E14 serial revisit %d: %w", c, err)
			}
			serial[c].revisit = rv.Verdict
			rs, err := svc.Extend(context.Background(), prev, restartBatch(c))
			if err != nil {
				return nil, fmt.Errorf("E14 serial restart-ref %d: %w", c, err)
			}
			serial[c].restart = rs.Verdict
		}
		svc.Close()
		if live := svc.LiveSnapshots(); live != 0 {
			return nil, fmt.Errorf("E14: %d snapshots leaked after serial run", live)
		}
	}

	addRow := func(phase string, extends int, dur time.Duration, st service.Stats) {
		t.AddRow(phase, extends, dur,
			fmt.Sprintf("%.0f", float64(extends)/dur.Seconds()),
			st.Spills, st.Reloads,
			fmt.Sprintf("%.2f", st.ColdSharedRatio),
			st.ColdBytes>>10)
	}

	// ---- Phase 1: chains under cap 16 with demotion. -------------------
	chainDir, err := scratchDir("e14-chains")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(chainDir)
	leafIDs := make([]uint64, clients)
	{
		cold, err := store.Open(chainDir)
		if err != nil {
			return nil, err
		}
		svc := service.NewWithConfig(service.Config{Capacity: hotCap, Store: cold})
		base, err := svc.Extend(context.Background(), 0, chainBase)
		if err != nil {
			return nil, err
		}
		if err := svc.Pin(base.ID); err != nil {
			return nil, err
		}
		midIDs := make([]uint64, clients)
		errs := make([]error, clients)
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				prev, mid := base.ID, base.ID
				for k := 0; k < steps; k++ {
					r, err := svc.Extend(context.Background(), prev, chainBatch(c, k))
					if err != nil {
						errs[c] = fmt.Errorf("client %d step %d: %w", c, k, err)
						return
					}
					if r.Verdict != serial[c].verdicts[k] {
						errs[c] = fmt.Errorf("client %d step %d verdict %v != serial %v", c, k, r.Verdict, serial[c].verdicts[k])
						return
					}
					prev = r.ID
					if k == steps/2 {
						mid = r.ID
					}
				}
				leafIDs[c], midIDs[c] = prev, mid
			}(c)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("E14 chains: %w", err)
			}
		}
		// Revisit pass: the mid-chain ids have long been demoted (cap 16
		// against clients×steps parked refs); extending them must promote
		// transparently — zero ErrEvicted with a store attached.
		for c := 0; c < clients; c++ {
			r, err := svc.Extend(context.Background(), midIDs[c], revisitBatch(c))
			if err != nil {
				return nil, fmt.Errorf("E14 revisit of demoted id %d: %w", midIDs[c], err)
			}
			if r.Verdict != serial[c].revisit {
				return nil, fmt.Errorf("E14 revisit %d: verdict %v != serial %v", c, r.Verdict, serial[c].revisit)
			}
		}
		dur := time.Since(start)
		st := svc.Stats()
		if st.Spills == 0 {
			return nil, fmt.Errorf("E14 chains: no demotions at cap %d with %d parks", hotCap, clients*steps)
		}
		if st.Reloads == 0 {
			return nil, fmt.Errorf("E14 chains: revisits promoted nothing")
		}
		extends := clients*steps + clients
		svc.Close() // demotes every live reference for the restart phase
		if live := svc.LiveSnapshots(); live != 0 {
			return nil, fmt.Errorf("E14 chains: %d snapshots leaked", live)
		}
		if err := cold.Close(); err != nil {
			return nil, err
		}
		addRow(fmt.Sprintf("chains C=%d", clients), extends, dur, st)
	}

	// ---- Phase 2: sibling set, full demote, on-disk dedup. -------------
	{
		sibDir, err := scratchDir("e14-siblings")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(sibDir)
		cold, err := store.Open(sibDir)
		if err != nil {
			return nil, err
		}
		defer cold.Close()
		svc := service.NewWithConfig(service.Config{Capacity: hotCap, Store: cold})
		sibBase := solver.Random3SAT(sibVars, sibClauses, 11)
		base, err := svc.Extend(context.Background(), 0, sibBase)
		if err != nil {
			return nil, err
		}
		if err := svc.Pin(base.ID); err != nil {
			return nil, err
		}
		// Serial sibling ground truth on the side (same service shape as
		// the E13 eviction row, so one unbounded reference service).
		ref := service.New()
		rbase, err := ref.Extend(context.Background(), 0, sibBase)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < sibs; i++ {
			batch := solver.Random3SAT(sibVars, 3, int64(7777+i))
			want, err := ref.Extend(context.Background(), rbase.ID, batch)
			if err != nil {
				return nil, fmt.Errorf("E14 sibling ref %d: %w", i, err)
			}
			got, err := svc.Extend(context.Background(), base.ID, batch)
			if err != nil {
				return nil, fmt.Errorf("E14 sibling %d: %w", i, err)
			}
			if got.Verdict != want.Verdict {
				return nil, fmt.Errorf("E14 sibling %d: verdict %v != serial %v", i, got.Verdict, want.Verdict)
			}
		}
		dur := time.Since(start)
		ref.Close()
		svc.Close() // demote the full sibling set
		if live := svc.LiveSnapshots(); live != 0 {
			return nil, fmt.Errorf("E14 siblings: %d snapshots leaked", live)
		}
		cs := cold.Stats()
		st := svc.Stats()
		if cs.Manifests < sibs {
			return nil, fmt.Errorf("E14 siblings: only %d of %d+1 states demoted", cs.Manifests, sibs)
		}
		if cs.DedupRatio() < 0.85 {
			return nil, fmt.Errorf("E14 siblings: on-disk chunk dedup %.3f < 0.85 (unique %d KiB of %d KiB referenced)",
				cs.DedupRatio(), cs.UniqueBytes>>10, cs.LogicalBytes>>10)
		}
		addRow(fmt.Sprintf("siblings n=%d", sibs), sibs, dur, st)
	}

	// ---- Phase 3: restart — reopen the chain store from disk. ----------
	{
		cold, err := store.Open(chainDir)
		if err != nil {
			return nil, fmt.Errorf("E14 restart: reopen: %w", err)
		}
		defer cold.Close()
		svc := service.NewWithConfig(service.Config{Capacity: hotCap, Store: cold})
		start := time.Now()
		for c := 0; c < clients; c++ {
			r, err := svc.Extend(context.Background(), leafIDs[c], restartBatch(c))
			if err != nil {
				return nil, fmt.Errorf("E14 restart: leaf %d: %w", leafIDs[c], err)
			}
			if r.Verdict != serial[c].restart {
				return nil, fmt.Errorf("E14 restart: client %d verdict %v != serial %v", c, r.Verdict, serial[c].restart)
			}
		}
		dur := time.Since(start)
		st := svc.Stats()
		if st.Reloads == 0 {
			return nil, fmt.Errorf("E14 restart: nothing reloaded from the replayed store")
		}
		svc.Close()
		if live := svc.LiveSnapshots(); live != 0 {
			return nil, fmt.Errorf("E14 restart: %d snapshots leaked", live)
		}
		addRow("restart", clients, dur, st)
	}
	return t, nil
}
