package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fs"
	"repro/internal/solver"
)

// TestConcurrentExtendAcrossShards drives many clients branching one
// shared base concurrently (the E13 shape) and asserts verdict stability,
// the capacity bound, and zero live snapshots after Close. Run with -race:
// the point is that lookups/parks on different references touch different
// shards and the solve runs entirely off-lock.
func TestConcurrentExtendAcrossShards(t *testing.T) {
	const (
		clients = 8
		steps   = 12
		capRefs = 24
	)
	s := NewWithConfig(Config{Capacity: capRefs, Shards: 8})
	base, err := s.Extend(context.Background(), 0, [][]int{{1, 2}, {-1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Pin(base.ID); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var overCap atomic.Int64
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			prev := base.ID
			for k := 0; k < steps; k++ {
				r, err := s.Extend(context.Background(), prev, [][]int{{c + 4, -(k + 4)}})
				if errors.Is(err, ErrEvicted) {
					// Our chain tip aged out under the shared cap:
					// restart from the pinned base, as a client would.
					prev = base.ID
					continue
				}
				if err != nil {
					errs[c] = err
					return
				}
				prev = r.ID
				refs, pinned := s.Counts()
				if unpinned := refs - pinned; unpinned > capRefs {
					overCap.Store(int64(unpinned))
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	if n := overCap.Load(); n != 0 {
		t.Errorf("unpinned refs reached %d, cap %d", n, capRefs)
	}
	if err := s.Touch(0); err != nil {
		t.Errorf("root after load: %v", err)
	}
	if err := s.Touch(base.ID); err != nil {
		t.Errorf("pinned base after load: %v", err)
	}
	s.Close()
	if live := s.LiveSnapshots(); live != 0 {
		t.Errorf("live snapshots after Close = %d, want 0", live)
	}
}

// TestConcurrentExtendReleaseClose races Extend, Release, Pin/Unpin and a
// mid-flight Close. Every operation must either succeed or fail with a
// defined error, and Close must leave zero live snapshots regardless of
// interleaving.
func TestConcurrentExtendReleaseClose(t *testing.T) {
	s := NewWithConfig(Config{Capacity: 16, Shards: 4})
	var wg sync.WaitGroup
	var ids sync.Map // id → struct{} of parked refs, racing with Release
	stop := make(chan struct{})

	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				r, err := s.Extend(context.Background(), 0, [][]int{{c + 1, k%5 + 1}})
				if errors.Is(err, ErrClosed) {
					return
				}
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				ids.Store(r.ID, struct{}{})
				if k%3 == 0 {
					if err := s.Pin(r.ID); err != nil && !errors.Is(err, ErrEvicted) && !errors.Is(err, ErrUnknownRef) && !errors.Is(err, ErrClosed) {
						t.Errorf("pin: %v", err)
					}
					if err := s.Unpin(r.ID); err != nil && !errors.Is(err, ErrEvicted) && !errors.Is(err, ErrUnknownRef) && !errors.Is(err, ErrClosed) {
						t.Errorf("unpin: %v", err)
					}
				}
			}
		}(c)
	}
	// A releaser racing the extenders.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ids.Range(func(k, _ any) bool {
				id := k.(uint64)
				ids.Delete(id)
				err := s.Release(id)
				if err != nil && !errors.Is(err, ErrEvicted) && !errors.Is(err, ErrUnknownRef) && !errors.Is(err, ErrClosed) {
					t.Errorf("release %d: %v", id, err)
				}
				return false
			})
		}
	}()
	// A stats poller (footprint walk while extends are in flight).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = s.Stats()
			}
		}
	}()

	// Let the storm run, then close mid-flight. (Poll with the cheap
	// Counts-style accessor and a breather, not a footprint-walking spin.)
	for s.Stats().Extends < 60 {
		time.Sleep(200 * time.Microsecond)
	}
	s.Close()
	close(stop)
	wg.Wait()

	if live := s.LiveSnapshots(); live != 0 {
		t.Errorf("live snapshots after Close = %d, want 0", live)
	}
	if s.Refs() != 0 {
		t.Errorf("refs after Close = %d, want 0", s.Refs())
	}
	if _, err := s.Extend(context.Background(), 0, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("extend after Close = %v, want ErrClosed", err)
	}
	s.Close() // idempotent under repetition
}

// TestOversizedStateUnderConcurrency exercises the WriteFile failure path
// while other extends succeed: a failed park must not disturb siblings.
func TestOversizedStateUnderConcurrency(t *testing.T) {
	orig := marshalState
	defer func() { marshalState = orig }()
	var flip atomic.Int64
	// One shared oversized buffer: it is only ever length-checked (the fs
	// bound rejects before reading), and per-call 1 GiB allocations make
	// the test dominate the package's runtime.
	huge := make([]byte, fs.MaxFileSize+1)
	marshalState = func(sol *solver.Solver) []byte {
		if flip.Add(1)%4 == 0 {
			return huge
		}
		return orig(sol)
	}
	s := New()
	var wg sync.WaitGroup
	var okCount, bigCount atomic.Int64
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				_, err := s.Extend(context.Background(), 0, [][]int{{c + 1}})
				switch {
				case err == nil:
					okCount.Add(1)
				case errors.Is(err, fs.ErrTooBig):
					bigCount.Add(1)
				default:
					t.Errorf("client %d: %v", c, err)
				}
			}
		}(c)
	}
	wg.Wait()
	if okCount.Load() == 0 || bigCount.Load() == 0 {
		t.Fatalf("want both outcomes, got ok=%d big=%d", okCount.Load(), bigCount.Load())
	}
	if got := s.Refs(); int64(got) != okCount.Load()+1 {
		t.Errorf("refs = %d, want %d successful parks + root", got, okCount.Load())
	}
	s.Close()
	if live := s.LiveSnapshots(); live != 0 {
		t.Errorf("live snapshots after Close = %d, want 0", live)
	}
}
