package wire

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/service"
)

// DefaultMaxInflight caps a connection's concurrently executing
// requests when ServeOptions.MaxInflight is zero. Reads stall once the
// window is full, so a client pipelining deeper sees backpressure, not
// unbounded server goroutines.
const DefaultMaxInflight = 64

// ServeOptions tunes one binary session.
type ServeOptions struct {
	// ReqTimeout bounds each extend's solve (0 = none), matching
	// solversvc's -req-timeout.
	ReqTimeout time.Duration
	// WriteTimeout arms a write deadline before every reply frame when
	// the transport supports deadlines (net.Conn does): a peer that
	// stops reading fails the session instead of parking its writer
	// goroutine forever. 0 disables.
	WriteTimeout time.Duration
	// MaxInflight caps concurrently executing requests (0 = DefaultMaxInflight).
	MaxInflight int
}

// writeDeadliner is the slice of net.Conn the reply writer needs;
// transports without deadlines (pipes to a subprocess) still work, they
// just cannot be protected from a stalled reader.
type writeDeadliner interface {
	SetWriteDeadline(t time.Time) error
}

// Serve speaks one already-negotiated binary session over rw until the
// peer closes, a protocol violation, a write failure, or ctx
// cancellation. Reads come from br when non-nil (negotiation may have
// buffered bytes past the accept line); otherwise rw is read directly.
//
// Requests execute concurrently up to the in-flight cap and complete
// out of order; a per-connection writer goroutine serializes reply
// frames, so replies interleave at frame granularity only. A write or
// flush failure — a half-closed or stalled peer — cancels the session
// context, which aborts in-flight solves instead of leaving the session
// solving into a broken pipe.
//
// The returned error is nil for a clean EOF or cancellation.
func Serve(ctx context.Context, svc *service.Service, rw io.ReadWriter, br io.Reader, opts ServeOptions) error {
	if br == nil {
		br = bufio.NewReader(rw)
	}
	maxInflight := opts.MaxInflight
	if maxInflight <= 0 {
		maxInflight = DefaultMaxInflight
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Unblock a reader parked in ReadFrame when the session dies from the
	// write side (stalled peer past WriteTimeout): cancellation alone
	// cannot interrupt a blocking Read, so arm an already-expired read
	// deadline. The deferred cancel fires this on every exit path; by
	// then the session is over, so poisoning future reads is fine.
	if rd, ok := rw.(interface{ SetReadDeadline(time.Time) error }); ok {
		go func() {
			<-sctx.Done()
			rd.SetReadDeadline(time.Now())
		}()
	}

	// Reply writer: the only goroutine touching rw's write side. After a
	// write failure it keeps draining the channel (so no handler blocks)
	// but stops writing, and the cancelled session context unwinds the
	// reader and every in-flight solve.
	replies := make(chan []byte, maxInflight)
	writerDone := make(chan struct{})
	var writeErr error
	go func() {
		defer close(writerDone)
		ds, hasDeadline := rw.(writeDeadliner)
		for frame := range replies {
			if writeErr != nil {
				continue
			}
			if opts.WriteTimeout > 0 && hasDeadline {
				if err := ds.SetWriteDeadline(time.Now().Add(opts.WriteTimeout)); err != nil {
					writeErr = fmt.Errorf("wire: arming write deadline: %w", err)
					cancel()
					continue
				}
			}
			if _, err := rw.Write(frame); err != nil {
				writeErr = fmt.Errorf("wire: write: %w", err)
				cancel()
			}
		}
	}()

	sem := make(chan struct{}, maxInflight)
	var handlers sync.WaitGroup
	var readErr error
reading:
	for sctx.Err() == nil {
		frame, err := ReadFrame(br)
		if err != nil {
			if err != io.EOF && sctx.Err() == nil {
				readErr = fmt.Errorf("wire: read: %w", err)
			}
			break
		}
		req, err := DecodeRequest(frame)
		if err != nil {
			// A malformed frame means the stream can no longer be framed;
			// terminating beats resynchronising heuristically.
			readErr = err
			break
		}
		select {
		case sem <- struct{}{}:
		case <-sctx.Done():
			break reading
		}
		handlers.Add(1)
		go func(req Request) {
			defer handlers.Done()
			defer func() { <-sem }()
			frame, err := EncodeResponse(Dispatch(sctx, svc, req, opts.ReqTimeout))
			if err != nil {
				// Reply too large to frame (a batch of huge models): the
				// request still gets an answer, just an error one.
				frame, err = EncodeResponse(Response{Op: req.Op, ReqID: req.ReqID, Err: "server: " + err.Error()})
				if err != nil {
					return
				}
			}
			// Never blocks forever: the writer drains until the channel
			// closes, which happens only after every handler returns.
			replies <- frame
		}(req)
	}
	handlers.Wait()
	close(replies)
	<-writerDone
	if writeErr != nil {
		return writeErr
	}
	return readErr
}

// Dispatch executes one decoded request against svc and builds its
// reply. It is the seam shared by solversvc's binary sessions and the
// in-process servers the load harness and E16 spin up, so every path
// serves identical semantics.
//
// An extend batch is atomic: group i extends req.ID (all groups are
// siblings of one parent); on the first failure the siblings already
// parked are released and the whole batch reports the error.
func Dispatch(ctx context.Context, svc *service.Service, req Request, reqTimeout time.Duration) Response {
	resp := Response{Op: req.Op, ReqID: req.ReqID}
	switch req.Op {
	case OpExtend:
		results := make([]ExtendResult, 0, len(req.Groups))
		for gi, g := range req.Groups {
			rctx, rcancel := ctx, context.CancelFunc(func() {})
			if reqTimeout > 0 {
				rctx, rcancel = context.WithTimeout(ctx, reqTimeout)
			}
			res, err := svc.Extend(rctx, req.ID, g)
			rcancel()
			if err != nil {
				for _, r := range results {
					// Best-effort rollback keeps the batch atomic; a
					// failure here (say, closing mid-batch) leaves an
					// unreferenced sibling for Close to reap.
					_ = svc.Release(r.ID)
				}
				resp.Err = fmt.Sprintf("group %d: %v", gi, err)
				return resp
			}
			results = append(results, ExtendResult{ID: res.ID, Verdict: res.Verdict, Model: res.Model})
		}
		resp.Results = results
	case OpRelease:
		if err := svc.Release(req.ID); err != nil {
			resp.Err = err.Error()
		}
	case OpPin:
		if err := svc.Pin(req.ID); err != nil {
			resp.Err = err.Error()
		}
	case OpUnpin:
		if err := svc.Unpin(req.ID); err != nil {
			resp.Err = err.Error()
		}
	case OpTouch:
		if err := svc.Touch(req.ID); err != nil {
			resp.Err = err.Error()
		}
	case OpStats:
		resp.Text = svc.Stats().Line()
	default:
		resp.Err = fmt.Sprintf("unknown op %d", req.Op)
	}
	return resp
}
