// Package wire implements solversvc's length-prefixed binary protocol:
// framed requests carrying client-chosen request ids, pipelining with
// out-of-order completion (replies are matched to requests by id, never
// by arrival order), and batched extends — N literal groups against one
// parent yield N sibling references in a single round trip.
//
// A connection starts in the newline-delimited text protocol; a client
// upgrades by sending the hello line "binary <maxver>" as its first
// command and waiting for the server's "proto binary <ver>" accept line
// (see Hello/ParseAccept). A server that predates the binary protocol
// answers the hello with a text error, which is the fallback signal:
// the client simply keeps speaking text.
//
// Frame layout (all integers big-endian):
//
//	frame    := u32 payloadLen | payload              (payloadLen ≤ MaxFrameBytes)
//	request  := u8 op | u64 reqID | body
//	response := u8 op | u64 reqID | u8 status | body  (status 0 = ok, 1 = error)
//
// Request bodies:
//
//	extend   := u64 parent | u32 nGroups | nGroups × group
//	group    := u32 nClauses | nClauses × clause
//	clause   := u32 nLits | nLits × i32 literal       (literal ≠ 0)
//	release/pin/unpin/touch := u64 id
//	stats    := (empty)
//
// Response bodies (ok):
//
//	extend   := u32 nResults | nResults × result
//	result   := u64 id | u8 verdict | [u32 modelLen | ⌈modelLen/8⌉ bitset]  (model iff verdict = sat)
//	release/pin/unpin/touch := (empty)
//	stats    := u32 len | len × byte                  (UTF-8 counters line)
//
// Response body (error): u32 len | len × byte (UTF-8 message, non-empty).
//
// Decoding is strict: counts are bounded against the bytes actually
// remaining before any allocation is sized, unused bitset padding must
// be zero, verdicts and status bytes must be in range, and trailing
// bytes after a well-formed message are rejected. Every accepted frame
// re-encodes to exactly the bytes that were decoded, so the codec has a
// canonical fixed point (FuzzWireDecode pins this).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/solver"
)

// Version is the highest binary protocol version this package speaks.
const Version = 1

// MaxFrameBytes bounds one frame's payload — the binary twin of the
// text protocol's 8 MiB line limit, doubled because a batch carries
// several groups.
const MaxFrameBytes = 16 << 20

// maxErrBytes bounds an error reply's message.
const maxErrBytes = 64 << 10

// Codec errors. Decode errors mean the peer violated the protocol: the
// framing can no longer be trusted, so sessions terminate on them.
var (
	ErrFrameTooBig = errors.New("wire: frame exceeds size limit")
	ErrTrailing    = errors.New("wire: trailing bytes after message")
)

// Op identifies a request kind.
type Op uint8

// Request opcodes.
const (
	OpExtend  Op = 1 // batched extend: N groups → N sibling ids
	OpRelease Op = 2
	OpPin     Op = 3
	OpUnpin   Op = 4
	OpTouch   Op = 5
	OpStats   Op = 6
)

func (o Op) String() string {
	switch o {
	case OpExtend:
		return "extend"
	case OpRelease:
		return "release"
	case OpPin:
		return "pin"
	case OpUnpin:
		return "unpin"
	case OpTouch:
		return "touch"
	case OpStats:
		return "stats"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Request is one decoded client request.
type Request struct {
	Op Op
	// ReqID is chosen by the client and echoed verbatim in the reply;
	// it must be unique among the connection's in-flight requests.
	ReqID uint64
	// ID is the extend parent, or the target of release/pin/unpin/touch.
	ID uint64
	// Groups carries an extend's clause groups: group i independently
	// extends ID and yields the i-th result — N siblings per round trip.
	Groups [][][]int
}

// ExtendResult is one parked sibling in an extend reply.
type ExtendResult struct {
	ID      uint64
	Verdict solver.Status
	// Model is the satisfying assignment (index = variable, 0 unused),
	// present only for Sat verdicts.
	Model []bool
}

// Response is one decoded server reply.
type Response struct {
	Op    Op
	ReqID uint64
	// Err is the server-reported failure; when non-empty the other
	// payload fields are meaningless.
	Err string
	// Results holds an extend's siblings, in group order.
	Results []ExtendResult
	// Text is the stats reply's counters line.
	Text string
}

// ServerError is a failure the server reported in a reply — the request
// was transported and dispatched, but refused (unknown reference,
// evicted id, solver error). Distinct from transport errors, which
// poison the whole connection.
type ServerError string

func (e ServerError) Error() string { return string(e) }

// ReadFrame reads one length-prefixed payload. io.EOF surfaces only at
// a clean frame boundary; a frame cut short is io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// EncodeRequest renders req as a complete frame (length prefix included).
func EncodeRequest(req Request) ([]byte, error) {
	b := make([]byte, 4, 64)
	b = append(b, byte(req.Op))
	b = binary.BigEndian.AppendUint64(b, req.ReqID)
	switch req.Op {
	case OpExtend:
		b = binary.BigEndian.AppendUint64(b, req.ID)
		if len(req.Groups) == 0 {
			return nil, errors.New("wire: extend with zero groups")
		}
		if len(req.Groups) > math.MaxUint32 {
			return nil, errors.New("wire: too many groups")
		}
		b = binary.BigEndian.AppendUint32(b, uint32(len(req.Groups)))
		for _, g := range req.Groups {
			b = binary.BigEndian.AppendUint32(b, uint32(len(g)))
			for _, cl := range g {
				b = binary.BigEndian.AppendUint32(b, uint32(len(cl)))
				for _, lit := range cl {
					if lit == 0 || lit < math.MinInt32 || lit > math.MaxInt32 {
						return nil, fmt.Errorf("wire: literal %d out of range", lit)
					}
					b = binary.BigEndian.AppendUint32(b, uint32(int32(lit)))
				}
			}
		}
	case OpRelease, OpPin, OpUnpin, OpTouch:
		b = binary.BigEndian.AppendUint64(b, req.ID)
	case OpStats:
	default:
		return nil, fmt.Errorf("wire: unknown request op %d", req.Op)
	}
	return sealFrame(b)
}

// EncodeResponse renders resp as a complete frame (length prefix included).
func EncodeResponse(resp Response) ([]byte, error) {
	b := make([]byte, 4, 64)
	b = append(b, byte(resp.Op))
	b = binary.BigEndian.AppendUint64(b, resp.ReqID)
	if resp.Err != "" {
		if len(resp.Err) > maxErrBytes {
			resp.Err = resp.Err[:maxErrBytes]
		}
		b = append(b, 1)
		b = binary.BigEndian.AppendUint32(b, uint32(len(resp.Err)))
		b = append(b, resp.Err...)
		return sealFrame(b)
	}
	b = append(b, 0)
	switch resp.Op {
	case OpExtend:
		if len(resp.Results) > math.MaxUint32 {
			return nil, errors.New("wire: too many results")
		}
		b = binary.BigEndian.AppendUint32(b, uint32(len(resp.Results)))
		for _, r := range resp.Results {
			b = binary.BigEndian.AppendUint64(b, r.ID)
			if r.Verdict != solver.Sat && r.Verdict != solver.Unsat && r.Verdict != solver.Unknown {
				return nil, fmt.Errorf("wire: verdict %d out of range", r.Verdict)
			}
			b = append(b, byte(r.Verdict))
			if r.Verdict == solver.Sat {
				b = binary.BigEndian.AppendUint32(b, uint32(len(r.Model)))
				bits := make([]byte, (len(r.Model)+7)/8)
				for i, v := range r.Model {
					if v {
						bits[i/8] |= 1 << (i % 8)
					}
				}
				b = append(b, bits...)
			}
		}
	case OpRelease, OpPin, OpUnpin, OpTouch:
	case OpStats:
		b = binary.BigEndian.AppendUint32(b, uint32(len(resp.Text)))
		b = append(b, resp.Text...)
	default:
		return nil, fmt.Errorf("wire: unknown response op %d", resp.Op)
	}
	return sealFrame(b)
}

// sealFrame stamps the length prefix reserved at b[:4].
func sealFrame(b []byte) ([]byte, error) {
	if len(b)-4 > MaxFrameBytes {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, len(b)-4)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	return b, nil
}

// dec is a bounds-checked cursor over one frame payload. The first
// failed read latches err; subsequent reads return zeros.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated %s at byte %d", what, d.off)
	}
}

func (d *dec) rem() int { return len(d.b) - d.off }

func (d *dec) u8(what string) uint8 {
	if d.err != nil || d.rem() < 1 {
		d.fail(what)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u32(what string) uint32 {
	if d.err != nil || d.rem() < 4 {
		d.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64(what string) uint64 {
	if d.err != nil || d.rem() < 8 {
		d.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) bytes(n int, what string) []byte {
	if d.err != nil || d.rem() < n {
		d.fail(what)
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

// count reads a u32 element count and rejects it unless n*minElemBytes
// bytes can still be present — the bound that keeps a hostile count from
// sizing a huge allocation out of a tiny frame.
func (d *dec) count(minElemBytes int, what string) int {
	n := d.u32(what)
	if d.err != nil {
		return 0
	}
	if int64(n)*int64(minElemBytes) > int64(d.rem()) {
		d.err = fmt.Errorf("wire: %s count %d exceeds remaining %d bytes", what, n, d.rem())
		return 0
	}
	return int(n)
}

// DecodeRequest parses one request payload (frame body, length prefix
// already stripped). Trailing bytes are a protocol violation.
func DecodeRequest(payload []byte) (Request, error) {
	d := &dec{b: payload}
	req := Request{Op: Op(d.u8("op")), ReqID: d.u64("reqID")}
	switch req.Op {
	case OpExtend:
		req.ID = d.u64("parent")
		ng := d.count(4, "group")
		if d.err == nil && ng == 0 {
			d.err = errors.New("wire: extend with zero groups")
		}
		if d.err == nil {
			req.Groups = make([][][]int, 0, ng)
		}
		for g := 0; g < ng && d.err == nil; g++ {
			nc := d.count(4, "clause")
			group := make([][]int, 0, nc)
			for c := 0; c < nc && d.err == nil; c++ {
				nl := d.count(4, "literal")
				clause := make([]int, 0, nl)
				for l := 0; l < nl && d.err == nil; l++ {
					lit := int32(d.u32("literal"))
					if lit == 0 && d.err == nil {
						d.err = errors.New("wire: zero literal")
					}
					clause = append(clause, int(lit))
				}
				group = append(group, clause)
			}
			req.Groups = append(req.Groups, group)
		}
	case OpRelease, OpPin, OpUnpin, OpTouch:
		req.ID = d.u64("id")
	case OpStats:
	default:
		if d.err == nil {
			d.err = fmt.Errorf("wire: unknown request op %d", req.Op)
		}
	}
	if d.err != nil {
		return Request{}, d.err
	}
	if d.rem() != 0 {
		return Request{}, fmt.Errorf("%w: %d", ErrTrailing, d.rem())
	}
	return req, nil
}

// DecodeResponse parses one response payload. Trailing bytes are a
// protocol violation.
func DecodeResponse(payload []byte) (Response, error) {
	d := &dec{b: payload}
	resp := Response{Op: Op(d.u8("op")), ReqID: d.u64("reqID")}
	switch resp.Op {
	case OpExtend, OpRelease, OpPin, OpUnpin, OpTouch, OpStats:
	default:
		if d.err == nil {
			d.err = fmt.Errorf("wire: unknown response op %d", resp.Op)
		}
	}
	status := d.u8("status")
	if d.err == nil && status > 1 {
		d.err = fmt.Errorf("wire: status byte %d out of range", status)
	}
	if d.err == nil && status == 1 {
		n := d.count(1, "error message")
		if d.err == nil && n == 0 {
			d.err = errors.New("wire: empty error message")
		}
		if d.err == nil && n > maxErrBytes {
			// The encoder truncates at maxErrBytes, so anything longer
			// could not round-trip to a fixed point.
			d.err = fmt.Errorf("wire: error message %d bytes exceeds %d", n, maxErrBytes)
		}
		resp.Err = string(d.bytes(n, "error message"))
		if d.err != nil {
			return Response{}, d.err
		}
		if d.rem() != 0 {
			return Response{}, fmt.Errorf("%w: %d", ErrTrailing, d.rem())
		}
		return resp, nil
	}
	switch resp.Op {
	case OpExtend:
		nr := d.count(9, "result")
		if d.err == nil {
			resp.Results = make([]ExtendResult, 0, nr)
		}
		for i := 0; i < nr && d.err == nil; i++ {
			r := ExtendResult{ID: d.u64("result id")}
			v := d.u8("verdict")
			if d.err == nil && v > uint8(solver.Unsat) {
				d.err = fmt.Errorf("wire: verdict %d out of range", v)
				break
			}
			r.Verdict = solver.Status(v)
			if r.Verdict == solver.Sat {
				ml := d.u32("model length")
				if d.err == nil && int64(ml) > 8*int64(d.rem()) {
					d.err = fmt.Errorf("wire: model length %d exceeds remaining %d bytes", ml, d.rem())
					break
				}
				bits := d.bytes((int(ml)+7)/8, "model bitset")
				if d.err != nil {
					break
				}
				r.Model = make([]bool, ml)
				for j := range r.Model {
					r.Model[j] = bits[j/8]&(1<<(j%8)) != 0
				}
				// Canonical form: padding bits beyond modelLen are zero,
				// so decode∘encode is the identity on accepted frames.
				for j := int(ml); j < 8*len(bits); j++ {
					if bits[j/8]&(1<<(j%8)) != 0 {
						d.err = errors.New("wire: nonzero model padding bits")
					}
				}
			}
			resp.Results = append(resp.Results, r)
		}
	case OpRelease, OpPin, OpUnpin, OpTouch:
	case OpStats:
		n := d.count(1, "stats text")
		resp.Text = string(d.bytes(n, "stats text"))
	}
	if d.err != nil {
		return Response{}, d.err
	}
	if d.rem() != 0 {
		return Response{}, fmt.Errorf("%w: %d", ErrTrailing, d.rem())
	}
	return resp, nil
}

// Hello is the text line a client sends to negotiate the binary
// protocol, carrying the highest version it speaks.
func Hello(maxVer int) string { return fmt.Sprintf("binary %d", maxVer) }

// ParseHello recognizes a client hello line; ok is false for anything
// else (including malformed versions), which servers treat as plain
// text.
func ParseHello(line string) (maxVer int, ok bool) {
	fields := strings.Fields(strings.TrimSuffix(strings.TrimSpace(line), "\r"))
	if len(fields) != 2 || fields[0] != "binary" {
		return 0, false
	}
	v, err := strconv.Atoi(fields[1])
	if err != nil || v < 1 {
		return 0, false
	}
	return v, true
}

// Accept is the server's negotiation reply naming the version the
// session will speak; the bytes after its newline are binary frames.
func Accept(ver int) string { return fmt.Sprintf("proto binary %d", ver) }

// ParseAccept recognizes a server accept line.
func ParseAccept(line string) (ver int, ok bool) {
	rest, found := strings.CutPrefix(strings.TrimSuffix(strings.TrimSpace(line), "\r"), "proto binary ")
	if !found {
		return 0, false
	}
	v, err := strconv.Atoi(rest)
	if err != nil || v < 1 {
		return 0, false
	}
	return v, true
}

// Negotiate picks the version a server serves for a client maximum:
// the highest version both sides speak.
func Negotiate(clientMax int) (ver int, ok bool) {
	if clientMax < 1 {
		return 0, false
	}
	if clientMax > Version {
		return Version, true
	}
	return clientMax, true
}
