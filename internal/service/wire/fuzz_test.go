package wire

import (
	"bytes"
	"testing"

	"repro/internal/solver"
)

// FuzzWireDecode pins the codec's safety contract on arbitrary bytes:
// decoding never panics or over-allocates (counts are bounded against
// the bytes actually present before any allocation is sized), and every
// accepted payload is a canonical fixed point — re-encoding reproduces
// the input bytes exactly, so there are no two encodings of one message.
// The input is fuzzed as both a request and a response payload.
func FuzzWireDecode(f *testing.F) {
	// Seed with encoder output so the fuzzer starts inside the accepted
	// grammar and mutates outward from it.
	seedReqs := []Request{
		{Op: OpExtend, ReqID: 1, ID: 0, Groups: [][][]int{{{1, 2}}}},
		{Op: OpExtend, ReqID: 2, ID: 9, Groups: [][][]int{{{1, -2}, {-1}}, {{3}}, {}}},
		{Op: OpRelease, ReqID: 3, ID: 4},
		{Op: OpPin, ReqID: 4, ID: 5},
		{Op: OpUnpin, ReqID: 5, ID: 6},
		{Op: OpTouch, ReqID: 6, ID: 7},
		{Op: OpStats, ReqID: 7},
	}
	for _, req := range seedReqs {
		frame, err := EncodeRequest(req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	seedResps := []Response{
		{Op: OpExtend, ReqID: 1, Results: []ExtendResult{
			{ID: 1, Verdict: solver.Sat, Model: []bool{false, true, true}},
			{ID: 2, Verdict: solver.Unsat},
		}},
		{Op: OpExtend, ReqID: 2, Results: []ExtendResult{
			{ID: 3, Verdict: solver.Sat, Model: []bool{true, false, true, true, false, true, false, true, true}},
		}},
		{Op: OpRelease, ReqID: 3},
		{Op: OpStats, ReqID: 4, Text: "extends=1 refs=2"},
		{Op: OpTouch, ReqID: 5, Err: "service: unknown problem reference 9"},
	}
	for _, resp := range seedResps {
		frame, err := EncodeResponse(resp)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}

	f.Fuzz(func(t *testing.T, payload []byte) {
		if req, err := DecodeRequest(payload); err == nil {
			frame, err := EncodeRequest(req)
			if err != nil {
				t.Fatalf("accepted request %+v does not re-encode: %v", req, err)
			}
			if !bytes.Equal(frame[4:], payload) {
				t.Fatalf("request not canonical:\n in  %x\n out %x", payload, frame[4:])
			}
			// Trailing bytes after a valid message must be rejected.
			if _, err := DecodeRequest(append(append([]byte{}, payload...), 0)); err == nil {
				t.Fatal("request with trailing byte accepted")
			}
		}
		if resp, err := DecodeResponse(payload); err == nil {
			frame, err := EncodeResponse(resp)
			if err != nil {
				t.Fatalf("accepted response %+v does not re-encode: %v", resp, err)
			}
			if !bytes.Equal(frame[4:], payload) {
				t.Fatalf("response not canonical:\n in  %x\n out %x", payload, frame[4:])
			}
			if _, err := DecodeResponse(append(append([]byte{}, payload...), 0)); err == nil {
				t.Fatal("response with trailing byte accepted")
			}
		}
	})
}
