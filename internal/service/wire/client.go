package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrClientClosed reports a call issued on (or outlived by) a closed
// client.
var ErrClientClosed = errors.New("wire: client closed")

// Call is one in-flight request. Done receives the call when the reply
// arrives or the connection fails; channels passed to Go must be
// buffered.
type Call struct {
	Req  Request
	Resp Response
	// Err is a transport- or protocol-level failure; a server-side
	// refusal travels in Resp.Err instead.
	Err  error
	Done chan *Call
}

// Client speaks the binary protocol over one connection, pipelining
// requests: any number may be in flight (the server throttles beyond
// its window), replies complete out of order and are matched to calls
// by request id.
type Client struct {
	rw     io.ReadWriter
	nextID atomic.Uint64

	wmu sync.Mutex // serializes request frames onto rw

	mu sync.Mutex
	// guarded_by: mu
	pending map[uint64]*Call
	failed  error // guarded_by: mu — set once; poisons every later call
}

// NewClient wraps an already-negotiated binary connection. br, when
// non-nil, must be the buffered reader used during negotiation (it may
// hold bytes past the accept line).
func NewClient(rw io.ReadWriter, br io.Reader) *Client {
	if br == nil {
		br = bufio.NewReader(rw)
	}
	c := &Client{rw: rw, pending: make(map[uint64]*Call)}
	go c.readLoop(br)
	return c
}

// Handshake negotiates the binary protocol on a fresh text-mode server
// connection: it consumes the banner line, sends the hello, and checks
// the accept. A pre-binary server answers the hello with a text error
// line, reported here as an error — the caller's cue to fall back to
// the text protocol on a new connection.
func Handshake(rw io.ReadWriter) (*Client, error) {
	br := bufio.NewReader(rw)
	if _, err := br.ReadString('\n'); err != nil { // banner
		return nil, fmt.Errorf("wire: reading banner: %w", err)
	}
	if _, err := io.WriteString(rw, Hello(Version)+"\n"); err != nil {
		return nil, fmt.Errorf("wire: sending hello: %w", err)
	}
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("wire: reading accept: %w", err)
	}
	ver, ok := ParseAccept(line)
	if !ok {
		return nil, fmt.Errorf("wire: server declined binary protocol: %q", strings.TrimSpace(line))
	}
	if ver != Version {
		return nil, fmt.Errorf("wire: server negotiated unsupported version %d", ver)
	}
	return NewClient(rw, br), nil
}

// Go issues req without waiting. A zero ReqID is auto-assigned;
// explicit ids must be unique among the connection's in-flight calls.
// done may be nil (a fresh buffered channel is made) but must be
// buffered when provided.
func (c *Client) Go(req Request, done chan *Call) *Call {
	if done == nil {
		done = make(chan *Call, 1)
	}
	if req.ReqID == 0 {
		req.ReqID = c.nextID.Add(1)
	}
	call := &Call{Req: req, Done: done}
	frame, err := EncodeRequest(req)
	if err != nil {
		call.Err = err
		call.Done <- call
		return call
	}
	c.mu.Lock()
	if c.failed != nil {
		err := c.failed
		c.mu.Unlock()
		call.Err = err
		call.Done <- call
		return call
	}
	if _, dup := c.pending[req.ReqID]; dup {
		c.mu.Unlock()
		call.Err = fmt.Errorf("wire: request id %d already in flight", req.ReqID)
		call.Done <- call
		return call
	}
	c.pending[req.ReqID] = call
	c.mu.Unlock()

	c.wmu.Lock()
	_, err = c.rw.Write(frame)
	c.wmu.Unlock()
	if err != nil {
		// fail delivers this call too (it is pending); every other
		// in-flight call dies with the same connection error.
		c.fail(fmt.Errorf("wire: write: %w", err))
	}
	return call
}

// Do issues req and waits for its reply or ctx. A server-side refusal
// is returned as a ServerError alongside the raw response.
func (c *Client) Do(ctx context.Context, req Request) (Response, error) {
	call := c.Go(req, nil)
	select {
	case <-ctx.Done():
		c.forget(call)
		return Response{}, ctx.Err()
	case <-call.Done:
	}
	if call.Err != nil {
		return Response{}, call.Err
	}
	if call.Resp.Err != "" {
		return call.Resp, ServerError(call.Resp.Err)
	}
	return call.Resp, nil
}

// forget drops an abandoned call so a late reply is discarded instead
// of failing the connection as an unmatched request id.
func (c *Client) forget(call *Call) {
	c.mu.Lock()
	if cur, ok := c.pending[call.Req.ReqID]; ok && cur == call {
		delete(c.pending, call.Req.ReqID)
	}
	c.mu.Unlock()
}

// Extend runs one batched extend: each group independently extends
// parent, yielding len(groups) sibling results in one round trip.
func (c *Client) Extend(ctx context.Context, parent uint64, groups [][][]int) ([]ExtendResult, error) {
	resp, err := c.Do(ctx, Request{Op: OpExtend, ID: parent, Groups: groups})
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(groups) {
		return nil, fmt.Errorf("wire: %d results for %d groups", len(resp.Results), len(groups))
	}
	return resp.Results, nil
}

// ExtendOne extends parent with a single clause group.
func (c *Client) ExtendOne(ctx context.Context, parent uint64, clauses [][]int) (ExtendResult, error) {
	res, err := c.Extend(ctx, parent, [][][]int{clauses})
	if err != nil {
		return ExtendResult{}, err
	}
	return res[0], nil
}

// Release drops the reference behind id.
func (c *Client) Release(ctx context.Context, id uint64) error {
	_, err := c.Do(ctx, Request{Op: OpRelease, ID: id})
	return err
}

// Pin exempts id from capacity eviction.
func (c *Client) Pin(ctx context.Context, id uint64) error {
	_, err := c.Do(ctx, Request{Op: OpPin, ID: id})
	return err
}

// Unpin makes id evictable again.
func (c *Client) Unpin(ctx context.Context, id uint64) error {
	_, err := c.Do(ctx, Request{Op: OpUnpin, ID: id})
	return err
}

// Touch bumps id's LRU clock (keep-alive / liveness probe).
func (c *Client) Touch(ctx context.Context, id uint64) error {
	_, err := c.Do(ctx, Request{Op: OpTouch, ID: id})
	return err
}

// Stats fetches the service counters line.
func (c *Client) Stats(ctx context.Context) (string, error) {
	resp, err := c.Do(ctx, Request{Op: OpStats})
	if err != nil {
		return "", err
	}
	return resp.Text, nil
}

// Close fails every in-flight call with ErrClientClosed and closes the
// underlying connection when it is closable.
func (c *Client) Close() error {
	c.fail(ErrClientClosed)
	if cl, ok := c.rw.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// fail latches the first connection-level error and delivers it to
// every pending call; later Go calls fail immediately with it.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.failed == nil {
		c.failed = err
	}
	dead := make([]*Call, 0, len(c.pending))
	for id, call := range c.pending {
		dead = append(dead, call)
		delete(c.pending, id)
	}
	err = c.failed
	c.mu.Unlock()
	for _, call := range dead {
		call.Err = err
		call.Done <- call
	}
}

// readLoop demultiplexes reply frames onto pending calls by request id
// until the connection fails or closes.
func (c *Client) readLoop(br io.Reader) {
	for {
		frame, err := ReadFrame(br)
		if err != nil {
			if err == io.EOF {
				err = ErrClientClosed
			}
			c.fail(err)
			return
		}
		resp, err := DecodeResponse(frame)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		call, ok := c.pending[resp.ReqID]
		delete(c.pending, resp.ReqID)
		c.mu.Unlock()
		if !ok {
			// A reply for a call Do abandoned on ctx cancellation: late,
			// not a protocol violation. Discard it.
			continue
		}
		call.Resp = resp
		call.Done <- call
	}
}
