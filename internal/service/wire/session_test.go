package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/solver"
)

// startSession wires a Client to a Serve loop over an in-memory pipe and
// returns them plus a wait-for-serve-exit function.
func startSession(t *testing.T, svc *service.Service, opts ServeOptions) (*Client, func() error) {
	t.Helper()
	cconn, sconn := net.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- Serve(ctx, svc, sconn, nil, opts) }()
	cli := NewClient(cconn, nil)
	t.Cleanup(func() {
		cli.Close()
		cancel()
		sconn.Close()
		<-errc
	})
	return cli, func() error {
		cli.Close()
		err := <-errc
		errc <- err
		return err
	}
}

// TestSessionEndToEnd drives every opcode through a full client/server
// session: batched extend, release, pin/unpin, touch, stats.
func TestSessionEndToEnd(t *testing.T) {
	svc := service.New()
	defer svc.Close()
	cli, wait := startSession(t, svc, ServeOptions{})
	ctx := context.Background()

	res, err := cli.Extend(ctx, 0, [][][]int{
		{{1, 2}},    // sat
		{{-1}},      // sat
		{{3}, {-3}}, // unsat
	})
	if err != nil {
		t.Fatalf("batched extend: %v", err)
	}
	want := []solver.Status{solver.Sat, solver.Sat, solver.Unsat}
	for i, r := range res {
		if r.Verdict != want[i] {
			t.Errorf("group %d: verdict %v, want %v", i, r.Verdict, want[i])
		}
		if (r.Verdict == solver.Sat) != (r.Model != nil) {
			t.Errorf("group %d: model presence inconsistent", i)
		}
	}

	// Branch a batch sibling: the parked references are real.
	child, err := cli.ExtendOne(ctx, res[0].ID, [][]int{{-2}})
	if err != nil {
		t.Fatalf("extend of batch sibling: %v", err)
	}
	if child.Verdict != solver.Sat || !child.Model[1] || child.Model[2] {
		t.Errorf("child of (1∨2)∧¬2: verdict=%v model=%v", child.Verdict, child.Model)
	}

	if err := cli.Pin(ctx, res[0].ID); err != nil {
		t.Errorf("pin: %v", err)
	}
	if err := cli.Unpin(ctx, res[0].ID); err != nil {
		t.Errorf("unpin: %v", err)
	}
	if err := cli.Touch(ctx, res[1].ID); err != nil {
		t.Errorf("touch: %v", err)
	}
	line, err := cli.Stats(ctx)
	if err != nil || !strings.Contains(line, "extends=4") {
		t.Errorf("stats: %q, %v", line, err)
	}
	for _, r := range res {
		if err := cli.Release(ctx, r.ID); err != nil {
			t.Errorf("release %d: %v", r.ID, err)
		}
	}
	if err := cli.Release(ctx, child.ID); err != nil {
		t.Errorf("release child: %v", err)
	}

	// Clean client close must end Serve without error.
	if err := wait(); err != nil {
		t.Errorf("Serve after client close: %v", err)
	}
	if n := svc.Refs(); n != 1 { // root only
		t.Errorf("refs after session: %d, want 1", n)
	}
}

// TestSessionPipelining issues a window of concurrent requests through
// Go and verifies every reply lands on the call that issued it —
// replies are matched by request id, not arrival order.
func TestSessionPipelining(t *testing.T) {
	svc := service.New()
	defer svc.Close()
	cli, _ := startSession(t, svc, ServeOptions{MaxInflight: 8})

	const n = 32
	calls := make([]*Call, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			// Even slots: extend root with (v_{i+1}), trivially sat.
			calls[i] = cli.Go(Request{Op: OpExtend, ID: 0, Groups: [][][]int{{{i + 1}}}}, nil)
		} else {
			calls[i] = cli.Go(Request{Op: OpTouch, ID: 0}, nil)
		}
	}
	ids := map[uint64]bool{}
	for i, call := range calls {
		select {
		case <-call.Done:
		case <-time.After(10 * time.Second):
			t.Fatalf("call %d never completed", i)
		}
		if call.Err != nil {
			t.Fatalf("call %d: %v", i, call.Err)
		}
		if call.Resp.ReqID != call.Req.ReqID {
			t.Fatalf("call %d: reply for id %d delivered to id %d", i, call.Resp.ReqID, call.Req.ReqID)
		}
		if call.Resp.Err != "" {
			t.Fatalf("call %d: server error %q", i, call.Resp.Err)
		}
		if i%2 == 0 {
			if len(call.Resp.Results) != 1 || call.Resp.Results[0].Verdict != solver.Sat {
				t.Errorf("call %d: results %+v", i, call.Resp.Results)
			}
			ids[call.Resp.Results[0].ID] = true
		}
	}
	if len(ids) != n/2 {
		t.Errorf("%d distinct ids for %d extends", len(ids), n/2)
	}
	ctx := context.Background()
	for id := range ids {
		if err := cli.Release(ctx, id); err != nil {
			t.Errorf("release %d: %v", id, err)
		}
	}
}

// TestServerErrorKeepsSessionAlive: a refused request (unknown
// reference) answers with a ServerError and the connection keeps
// working.
func TestServerErrorKeepsSessionAlive(t *testing.T) {
	svc := service.New()
	defer svc.Close()
	cli, _ := startSession(t, svc, ServeOptions{})
	ctx := context.Background()

	err := cli.Release(ctx, 12345)
	var serr ServerError
	if !errors.As(err, &serr) || !strings.Contains(err.Error(), "unknown problem reference") {
		t.Fatalf("release of unknown id: %v, want ServerError", err)
	}
	if err := cli.Touch(ctx, 0); err != nil {
		t.Fatalf("session dead after server error: %v", err)
	}
}

// TestDispatchBatchRollback: when group k of a batch fails, the
// siblings groups 0..k-1 already parked are released — the batch is
// atomic and nothing leaks. Literal 0 passes encode-free Dispatch and
// fails in the solver, making group 1 the deterministic failure point.
func TestDispatchBatchRollback(t *testing.T) {
	svc := service.New()
	defer svc.Close()
	refs, live := svc.Refs(), svc.LiveSnapshots()

	resp := Dispatch(context.Background(), svc, Request{
		Op: OpExtend, ReqID: 1, ID: 0,
		Groups: [][][]int{{{1}}, {{0}}},
	}, 0)
	if resp.Err == "" || !strings.Contains(resp.Err, "group 1") {
		t.Fatalf("batch with failing group 1: err=%q, want group attribution", resp.Err)
	}
	if len(resp.Results) != 0 {
		t.Errorf("failed batch returned %d results", len(resp.Results))
	}
	if svc.Refs() != refs || svc.LiveSnapshots() != live {
		t.Errorf("failed batch leaked: refs %d→%d, snapshots %d→%d",
			refs, svc.Refs(), live, svc.LiveSnapshots())
	}
}

// TestDispatchUnknownOp: an unrecognized opcode gets an error reply, not
// a dropped request.
func TestDispatchUnknownOp(t *testing.T) {
	svc := service.New()
	defer svc.Close()
	resp := Dispatch(context.Background(), svc, Request{Op: Op(99), ReqID: 5}, 0)
	if resp.Err == "" || resp.ReqID != 5 {
		t.Errorf("unknown op reply: %+v", resp)
	}
}

// TestMalformedFrameTerminatesSession: once framing is violated the
// stream cannot be trusted; Serve must return an error rather than
// resynchronise heuristically.
func TestMalformedFrameTerminatesSession(t *testing.T) {
	svc := service.New()
	defer svc.Close()
	cconn, sconn := net.Pipe()
	defer cconn.Close()
	errc := make(chan error, 1)
	go func() { errc <- Serve(context.Background(), svc, sconn, nil, ServeOptions{}) }()

	// A framed payload with an unknown opcode (op 0xFF, reqID 1).
	if _, err := cconn.Write([]byte{0, 0, 0, 9, 0xFF, 0, 0, 0, 0, 0, 0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err == nil || !strings.Contains(err.Error(), "unknown request op") {
			t.Fatalf("Serve: %v, want unknown-op error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not terminate on a malformed frame")
	}
}

// TestServeWriteTimeoutStalledClient: the binary path's stalled-reader
// protection. The client sends a request and never reads the reply;
// net.Pipe is unbuffered, so the reply write blocks until the deadline
// fires and Serve returns a timeout instead of wedging its writer.
func TestServeWriteTimeoutStalledClient(t *testing.T) {
	svc := service.New()
	defer svc.Close()
	cconn, sconn := net.Pipe()
	defer cconn.Close()
	errc := make(chan error, 1)
	go func() {
		errc <- Serve(context.Background(), svc, sconn, nil, ServeOptions{WriteTimeout: 50 * time.Millisecond})
	}()

	frame, err := EncodeRequest(Request{Op: OpStats, ReqID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cconn.Write(frame); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		var nerr net.Error
		if !errors.As(err, &nerr) || !nerr.Timeout() {
			t.Fatalf("stalled binary client: %v, want net timeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve still blocked on a stalled reader; write deadline did not fire")
	}
}

// TestClientDoCtxCancellation: an abandoned call frees its pending slot,
// and the late reply is discarded without failing the connection.
func TestClientDoCtxCancellation(t *testing.T) {
	cconn, sconn := net.Pipe()
	defer sconn.Close()
	cli := NewClient(cconn, nil)
	defer cli.Close()

	// Manual server: read the request but reply only after being told to.
	gotReq := make(chan Request, 1)
	release := make(chan struct{})
	go func() {
		payload, err := ReadFrame(sconn)
		if err != nil {
			return
		}
		req, err := DecodeRequest(payload)
		if err != nil {
			return
		}
		gotReq <- req
		<-release
		frame, _ := EncodeResponse(Response{Op: req.Op, ReqID: req.ReqID})
		sconn.Write(frame)
	}()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cli.Do(ctx, Request{Op: OpTouch, ID: 0})
		done <- err
	}()
	req := <-gotReq
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Do: %v", err)
	}

	// Deliver the late reply; the client must discard it silently.
	close(release)
	time.Sleep(20 * time.Millisecond)
	cli.mu.Lock()
	failed := cli.failed
	pending := len(cli.pending)
	cli.mu.Unlock()
	if failed != nil {
		t.Fatalf("late reply for req %d poisoned the connection: %v", req.ReqID, failed)
	}
	if pending != 0 {
		t.Fatalf("%d calls still pending after cancellation", pending)
	}
}

// TestClientDuplicateReqID: an explicit id colliding with an in-flight
// call fails the new call, not the session.
func TestClientDuplicateReqID(t *testing.T) {
	cconn, sconn := net.Pipe()
	defer sconn.Close()
	cli := NewClient(cconn, nil)
	defer cli.Close()

	// Manual server: accept one frame, reply later.
	var wg sync.WaitGroup
	wg.Add(1)
	release := make(chan struct{})
	go func() {
		defer wg.Done()
		payload, err := ReadFrame(sconn)
		if err != nil {
			return
		}
		req, _ := DecodeRequest(payload)
		<-release
		frame, _ := EncodeResponse(Response{Op: req.Op, ReqID: req.ReqID})
		sconn.Write(frame)
	}()

	first := cli.Go(Request{Op: OpTouch, ReqID: 7, ID: 0}, nil)
	dup := cli.Go(Request{Op: OpTouch, ReqID: 7, ID: 0}, nil)
	<-dup.Done
	if dup.Err == nil || !strings.Contains(dup.Err.Error(), "already in flight") {
		t.Fatalf("duplicate id: %v", dup.Err)
	}
	close(release)
	<-first.Done
	if first.Err != nil {
		t.Fatalf("original call poisoned by duplicate: %v", first.Err)
	}
	wg.Wait()
}

// TestClientConnectionFailurePoisonsPending: a transport failure fails
// every in-flight call and every later one with the same error.
func TestClientConnectionFailurePoisonsPending(t *testing.T) {
	cconn, sconn := net.Pipe()
	cli := NewClient(cconn, nil)
	defer cli.Close()

	// One in-flight call (server reads it, never replies)…
	go func() { ReadFrame(sconn) }()
	call := cli.Go(Request{Op: OpTouch, ID: 0}, nil)
	// …then the connection dies.
	sconn.Close()
	select {
	case <-call.Done:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call not failed by connection loss")
	}
	if call.Err == nil {
		t.Fatal("in-flight call completed without error on a dead connection")
	}
	if _, err := cli.Do(context.Background(), Request{Op: OpStats}); err == nil {
		t.Fatal("call on a failed client succeeded")
	}
}

// TestNegotiateOverPipe exercises Handshake against a scripted text
// server: banner, accept, then binary frames.
func TestNegotiateOverPipe(t *testing.T) {
	cconn, sconn := net.Pipe()
	defer sconn.Close()
	svc := service.New()
	defer svc.Close()

	// Scripted server. net.Pipe writes block until read, so the exchange
	// must interleave exactly as Handshake does: banner, hello, accept.
	go func() {
		sbr := bufio.NewReader(sconn)
		fmt.Fprintln(sconn, "banner line")
		line, err := sbr.ReadString('\n')
		if err != nil {
			return
		}
		if _, ok := ParseHello(line); !ok {
			return
		}
		fmt.Fprintln(sconn, Accept(Version))
		Serve(context.Background(), svc, sconn, sbr, ServeOptions{})
	}()

	cli, err := Handshake(cconn)
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	defer cli.Close()
	if err := cli.Touch(context.Background(), 0); err != nil {
		t.Fatalf("first binary request after handshake: %v", err)
	}
}

// TestHandshakeFallbackSignal: a text-error reply to the hello (what a
// pre-binary server sends) must surface as an error, not hang.
func TestHandshakeFallbackSignal(t *testing.T) {
	cconn, sconn := net.Pipe()
	defer sconn.Close()
	go func() {
		sbr := bufio.NewReader(sconn)
		fmt.Fprintln(sconn, "banner line")
		if _, err := sbr.ReadString('\n'); err != nil { // the hello
			return
		}
		fmt.Fprintln(sconn, "err: unknown command \"binary\"")
	}()
	if _, err := Handshake(cconn); err == nil || !strings.Contains(err.Error(), "declined") {
		t.Fatalf("handshake against pre-binary server: %v, want decline error", err)
	}
}
